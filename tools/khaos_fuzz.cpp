//===- tools/khaos_fuzz.cpp - Differential obfuscation fuzzer CLI -----------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front-end of the DifferentialFuzzer. Verdict lines and
/// repro files are byte-identical for a given (--seed, --budget, --modes)
/// at any --threads and across reruns; telemetry goes to stderr.
///
///   khaos-fuzz [--seed S] [--budget N] [--threads N] [--modes A,B,...]
///              [--no-shrink] [--repro-dir DIR] [--store-max-bytes B]
///              [--quiet] [--vm reference|precompiled] [--cross-vm]
///              [--list-steps MODE] [--replay FILE] [--connect SOCKET]
///
/// --connect ships the batch to a running khaos-evald daemon (same
/// socket the benches use) and prints the daemon's verdict stream;
/// stdout matches a local run of the same (--seed, --budget, --vm).
/// Flags the wire request cannot carry (--repro-dir, --modes,
/// --no-shrink) are refused with --connect rather than silently ignored.
///
/// --vm selects the engine every run executes under; --cross-vm runs each
/// check on BOTH engines and reports any disagreement as its own
/// "engine-mismatch" divergence kind. --replay honors both flags (repro
/// files record the engine that found them, but replay deliberately takes
/// the engine from the command line so old repros run on either engine)
/// and prints which engine produced the verdict.
///
/// Exit status: 0 = no divergence, 1 = divergences found (or a replayed
/// repro still reproduces), 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "harness/DifferentialFuzzer.h"
#include "harness/EvalService.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace khaos;

namespace {

/// The fuzzer's own flags, declared in the same table form the shared
/// scheduler flags use (BenchFlagSpec); usage text renders from both
/// tables, so every flag is documented where it is parsed.
std::vector<BenchFlagSpec>
fuzzerFlagSpecs(DifferentialFuzzer::Config &Cfg, std::string &ModesSpec,
                std::string &ListStepsMode, std::string &ReplayPath,
                bool &Help) {
  return {
      {"--budget", "N", "fuzz cases to generate (required)",
       [&Cfg](const char *V) {
         Cfg.Budget = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
       }},
      {"--modes", "A,B,...", "restrict the obfuscation modes exercised",
       [&ModesSpec](const char *V) { ModesSpec = V; }},
      {"--repro-dir", "DIR", "write divergence repro files here",
       [&Cfg](const char *V) { Cfg.ReproDir = V; }},
      {"--list-steps", "MODE", "print MODE's obfuscation steps and exit",
       [&ListStepsMode](const char *V) { ListStepsMode = V; }},
      {"--replay", "FILE", "re-run one repro file and exit",
       [&ReplayPath](const char *V) { ReplayPath = V; }},
      {"--no-shrink", nullptr, "keep divergent cases unshrunk",
       [&Cfg](const char *) { Cfg.Shrink = false; }},
      {"--quiet", nullptr, "suppress per-case progress on stderr",
       [&Cfg](const char *) { Cfg.Verbose = false; }},
      {"--cross-vm", nullptr, "run each check on BOTH engines",
       [&Cfg](const char *) { Cfg.CrossVM = true; }},
      {"--help", nullptr, "print this usage text",
       [&Help](const char *) { Help = true; }},
  };
}

int usage() {
  EvalScheduler::Config Sched;
  DifferentialFuzzer::Config Cfg;
  std::string S1, S2, S3, S4, S5, S6;
  bool Help = false;
  std::fprintf(stderr,
               "usage: khaos-fuzz [flags]\nfuzzer flags:\n%sshared "
               "scheduler flags:\n%s",
               benchFlagUsage(fuzzerFlagSpecs(Cfg, S1, S2, S3, Help)).c_str(),
               benchFlagUsage(
                   schedulerFlagSpecs(Sched, "khaos-fuzz", S4, S5, S6))
                   .c_str());
  return 2;
}

/// --connect mode: ship the whole batch to a running khaos-evald and
/// print its verdict stream. The daemon runs the identical deterministic
/// batch, so stdout matches a local run of the same (--seed, --budget).
int runRemote(const std::string &SocketPath,
              const DifferentialFuzzer::Config &Cfg) {
  EvalClient Client;
  std::string Err;
  if (!Client.connect(SocketPath, Err)) {
    std::fprintf(stderr, "khaos-fuzz: %s\n", Err.c_str());
    return 2;
  }
  EvalRequest Req;
  Req.Kind = EvalWireKind::FuzzBatch;
  Req.FuzzSeed = Cfg.Seed;
  Req.FuzzBudget = Cfg.Budget;
  Req.FuzzEngine = static_cast<uint8_t>(Cfg.Engine);
  Req.FuzzCrossVM = Cfg.CrossVM ? 1 : 0;
  Req.FuzzVerbose = Cfg.Verbose ? 1 : 0;
  EvalResponse Resp;
  if (!Client.call(Req, Resp, Err)) {
    std::fprintf(stderr, "khaos-fuzz: daemon call failed: %s\n",
                 Err.c_str());
    return 2;
  }
  if (!Resp.Ok) {
    std::fprintf(stderr, "khaos-fuzz: daemon error: %s\n",
                 Resp.Error.c_str());
    return 2;
  }
  std::fwrite(Resp.Text.data(), 1, Resp.Text.size(), stdout);
  std::fprintf(stderr,
               "[khaos-fuzz] cases=%u cells=%u divergences=%u "
               "baseline-errors=%u (via %s)\n",
               Resp.Cases, Resp.Cells, Resp.DivergenceCount,
               Resp.BaselineErrors, SocketPath.c_str());
  return Resp.DivergenceCount == 0 ? 0 : 1;
}

int listSteps(const std::string &ModeName) {
  ObfuscationMode Mode;
  if (!parseObfuscationModeName(ModeName, Mode)) {
    std::fprintf(stderr, "khaos-fuzz: unknown mode '%s'\n",
                 ModeName.c_str());
    return 2;
  }
  std::vector<std::string> Steps = obfuscationStepNames(Mode);
  std::printf("mode %s: %zu steps\n", obfuscationModeName(Mode),
              Steps.size());
  for (size_t I = 0; I != Steps.size(); ++I)
    std::printf("  %2zu %s\n", I + 1, Steps[I].c_str());
  return 0;
}

int replay(const std::string &Path, VMEngine Engine, bool CrossVM) {
  std::ifstream File(Path, std::ios::binary);
  if (!File) {
    std::fprintf(stderr, "khaos-fuzz: cannot read '%s'\n", Path.c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << File.rdbuf();
  std::string Error;
  DivergenceKind Kind =
      DifferentialFuzzer::replayRepro(Buf.str(), Error, Engine, CrossVM);
  const char *Verdict = CrossVM ? "cross-vm" : vmEngineName(Engine);
  if (Kind == DivergenceKind::None && !Error.empty() &&
      Error.find("repro") != std::string::npos) {
    std::fprintf(stderr, "khaos-fuzz: %s\n", Error.c_str());
    return 2;
  }
  if (Kind == DivergenceKind::None) {
    std::printf("replay %s: engine=%s no divergence (bug no longer "
                "reproduces)\n",
                Path.c_str(), Verdict);
    return 0;
  }
  std::printf("replay %s: engine=%s kind=%s : %s\n", Path.c_str(), Verdict,
              divergenceKindName(Kind), Error.c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  // --threads/--seed/--store-max-bytes/--vm share the bench flag grammar.
  EvalScheduler::Config Sched = parseSchedulerArgs(argc, argv);
  DifferentialFuzzer::Config Cfg;
  Cfg.Seed = Sched.Seed;
  Cfg.Threads = Sched.Threads;
  Cfg.Engine = Sched.Engine;
  Cfg.StoreMaxBytes = Sched.StoreMaxBytes ? Sched.StoreMaxBytes
                                          : Cfg.StoreMaxBytes;

  std::string ModesSpec, ListStepsMode, ReplayPath;
  bool Help = false;
  applyBenchFlags(argc, argv,
                  fuzzerFlagSpecs(Cfg, ModesSpec, ListStepsMode, ReplayPath,
                                  Help));
  if (Help || hasBenchFlag(argc, argv, "-h"))
    return usage();

  if (!ListStepsMode.empty())
    return listSteps(ListStepsMode);
  if (!ReplayPath.empty())
    return replay(ReplayPath, Cfg.Engine, Cfg.CrossVM);

  if (!Sched.ConnectPath.empty()) {
    // The FuzzBatch wire request carries (seed, budget, engine, cross-vm,
    // verbose) only; flags that would silently change the batch locally
    // but not remotely are refused instead of ignored.
    if (!Cfg.ReproDir.empty() || !ModesSpec.empty() || !Cfg.Shrink) {
      std::fprintf(stderr,
                   "khaos-fuzz: --repro-dir/--modes/--no-shrink cannot be "
                   "combined with --connect (the daemon runs the batch "
                   "with its own defaults)\n");
      return 2;
    }
    if (Cfg.Budget == 0)
      return usage();
    return runRemote(Sched.ConnectPath, Cfg);
  }

  if (!ModesSpec.empty()) {
    for (const std::string &Name : split(ModesSpec, ',')) {
      if (Name.empty())
        continue;
      ObfuscationMode Mode;
      if (!parseObfuscationModeName(Name, Mode)) {
        std::fprintf(stderr, "khaos-fuzz: unknown mode '%s' in --modes\n",
                     Name.c_str());
        return usage();
      }
      Cfg.Modes.push_back(Mode);
    }
    if (Cfg.Modes.empty())
      return usage();
  }
  if (Cfg.Budget == 0)
    return usage();

  DifferentialFuzzer Fuzzer(Cfg);
  FuzzReport Report = Fuzzer.run();
  std::fprintf(stderr,
               "[khaos-fuzz] cases=%u cells=%u divergences=%zu "
               "baseline-errors=%u\n",
               Report.Cases, Report.Cells, Report.Divergences.size(),
               Report.BaselineErrors);
  return Report.Divergences.empty() ? 0 : 1;
}
