//===- tools/khaos_evald.cpp - Long-lived eval/diff daemon ------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The khaos-evald front-end: binds an EvalServer on a Unix-domain socket
/// and serves eval/diff/fuzz-batch requests from many concurrent clients
/// against ONE shared warm EvalPipeline — compiles, images and diff
/// outcomes are paid once per daemon (and, with --cache-dir, once per
/// machine) instead of once per bench process.
///
///   khaos-evald --socket PATH [--vm reference|precompiled] [--no-cache]
///               [--store-max-bytes B] [--cache-dir DIR]
///               [--disk-max-bytes B] [--tool-timeout-ms T]
///               [--baseline-opt LEVEL] [--codegen T[,T...]]
///               [--compiler-style clang|gcc]
///
/// Clients are the benches and khaos-fuzz run with `--connect PATH`;
/// their stdout is byte-identical to in-process runs (the client refuses
/// a daemon whose engine/cache or baseline build configuration differs
/// from its own — a client wanting O0 cells against a daemon warmed at O2
/// aborts loudly instead of comparing incomparable results).
///
/// Lifecycle: prints one "[khaos-evald] listening on PATH" line to stderr
/// once ready (scripts wait for it), then serves until SIGINT/SIGTERM,
/// which drains cleanly: stop accepting, close every connection, join all
/// threads, unlink the socket. Exit status: 0 on a signalled shutdown,
/// 1 when the socket cannot be bound, 2 on a usage error.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "harness/EvalService.h"

#include <csignal>
#include <cstdio>

#include <unistd.h>

using namespace khaos;

namespace {

volatile std::sig_atomic_t SignalSeen = 0;

void onSignal(int) { SignalSeen = 1; }

int usage() {
  EvalScheduler::Config Sched;
  std::string S1, S2, S3;
  std::fprintf(stderr,
               "usage: khaos-evald --socket PATH [flags]\nshared scheduler "
               "flags (--shards/--shard-index/--connect are client-side):\n"
               "%s",
               benchFlagUsage(
                   schedulerFlagSpecs(Sched, "khaos-evald", S1, S2, S3))
                   .c_str());
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  // --vm/--no-cache/--store-max-bytes/--cache-dir/--disk-max-bytes/
  // --tool-timeout-ms share the bench flag grammar (and the validated
  // byte-count parsing).
  EvalScheduler::Config Sched = parseSchedulerArgs(argc, argv);

  std::string SocketPath;
  bool Help = false;
  applyBenchFlags(
      argc, argv,
      {{"--socket", "PATH", "Unix-domain socket to bind (required)",
        [&SocketPath](const char *V) { SocketPath = V; }},
       {"--help", nullptr, "print this usage text",
        [&Help](const char *) { Help = true; }}});
  if (Help || hasBenchFlag(argc, argv, "-h"))
    return usage();
  if (SocketPath.empty()) {
    std::fprintf(stderr, "khaos-evald: --socket PATH is required\n");
    return usage();
  }
  if (!Sched.ConnectPath.empty()) {
    std::fprintf(stderr,
                 "khaos-evald: --connect is a client flag; the daemon "
                 "serves, it does not forward\n");
    return usage();
  }

  EvalServer Server(EvalServer::Config{
      SocketPath,
      EvalPipeline::Config{Sched.CacheEnabled, Sched.StoreMaxBytes,
                           Sched.Engine, Sched.CacheDir, Sched.DiskMaxBytes,
                           Sched.Baseline}});
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "khaos-evald: %s\n", Err.c_str());
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // EvalServer::start already installed SIG_IGN for SIGPIPE, but the
  // daemon's survival must not hinge on a library detail: a client that
  // disconnects while its response frame is in flight turns the write
  // into EPIPE, and the default SIGPIPE disposition would kill us.
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "[khaos-evald] listening on %s engine=%s cache=%s disk=%s "
               "baseline=%s\n",
               SocketPath.c_str(), vmEngineName(Sched.Engine),
               Sched.CacheEnabled ? "on" : "off",
               Sched.CacheDir.empty() ? "(none)" : Sched.CacheDir.c_str(),
               Sched.Baseline.name().c_str());

  while (!SignalSeen)
    ::pause();

  std::fprintf(stderr, "[khaos-evald] shutting down (%llu requests served)\n",
               static_cast<unsigned long long>(Server.requestsServed()));
  Server.stop();
  return 0;
}
