//===- tools/khaos_diff_worker.cpp - Out-of-process diff worker -----------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `khaos-diff-worker`: serves the in-process diffing tools over the
/// DiffWorkerProtocol (stdin = requests, stdout = responses). This is the
/// reference implementation of the worker side — an external model binary
/// (a jTrans-style transformer) implements the same loop — and it is what
/// the pre-registered `safe-oop` backend runs, proving the subprocess
/// adapter end-to-end with bit-identical results to in-process "SAFE".
///
///   khaos-diff-worker [--tool NAME] [--list-tools] [--test-hang]
///                     [--test-crash-flag F]
///
///   --tool NAME          Serve only NAME; other requests get an error
///                        response (the harness pins one tool per pool).
///   --list-tools         Print the servable tool names (the in-process
///                        registry minus the subprocess-backed entries,
///                        which would recurse) and exit 0.
///   --test-hang          Test hook: read a request, then sleep instead
///                        of answering (exercises the harness timeout).
///   --test-crash-flag F  Test hook: on the first request, if file F does
///                        not exist, create it and _exit(3) without
///                        answering (exercises respawn + retry — the
///                        respawned worker sees F and serves normally).
///
/// Exit status: 0 on clean EOF (the harness closed our stdin), 1 on a
/// transport/protocol failure (desynced stream).
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffWorkerProtocol.h"
#include "diffing/SubprocessDiffTool.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace khaos;

namespace {

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

void touch(const std::string &Path) {
  if (FILE *F = std::fopen(Path.c_str(), "w"))
    std::fclose(F);
}

DiffWireResponse serve(const DiffWireRequest &Req,
                       const std::string &Restrict) {
  DiffWireResponse Resp;
  if (!Restrict.empty() && Req.Tool != Restrict) {
    Resp.Error = "this worker serves only '" + Restrict + "', not '" +
                 Req.Tool + "'";
    return Resp;
  }
  // A subprocess-backed name would spawn another worker from inside this
  // one — refuse instead of recursing.
  if (isSubprocessDiffTool(Req.Tool)) {
    Resp.Error = "refusing to serve subprocess-backed tool '" + Req.Tool +
                 "' (would recurse)";
    return Resp;
  }
  std::unique_ptr<DiffTool> Tool = tryCreateDiffTool(Req.Tool);
  if (!Tool) {
    Resp.Error = "unknown tool '" + Req.Tool + "'";
    return Resp;
  }
  try {
    Resp.Result = Tool->diff(Req.A, Req.FA, Req.B, Req.FB);
    Resp.Ok = true;
  } catch (const std::exception &E) {
    Resp.Error = std::string("tool threw: ") + E.what();
  }
  return Resp;
}

} // namespace

int main(int argc, char **argv) {
  std::string Restrict;
  std::string CrashFlag;
  bool Hang = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--tool" && I + 1 < argc)
      Restrict = argv[++I];
    else if (Arg == "--list-tools") {
      for (const std::string &Name : registeredToolNames())
        if (!isSubprocessDiffTool(Name))
          std::printf("%s\n", Name.c_str());
      return 0;
    } else if (Arg == "--test-hang")
      Hang = true;
    else if (Arg == "--test-crash-flag" && I + 1 < argc)
      CrashFlag = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: khaos-diff-worker [--tool NAME] [--list-tools] "
                   "[--test-hang] [--test-crash-flag FILE]\n");
      return 2;
    }
  }

  for (;;) {
    std::vector<uint8_t> Payload;
    std::string Err;
    FrameIOResult R = readDiffFrame(0, Payload, /*TimeoutMs=*/-1, Err);
    if (R == FrameIOResult::Eof && Err.empty())
      return 0; // Harness closed the pipe: clean shutdown.
    if (R != FrameIOResult::Ok) {
      std::fprintf(stderr, "khaos-diff-worker: read failed (%s): %s\n",
                   frameIOResultName(R), Err.c_str());
      return 1;
    }

    if (!CrashFlag.empty() && !fileExists(CrashFlag)) {
      // First request ever for this flag file: die without answering. The
      // respawned worker finds the file and serves normally.
      touch(CrashFlag);
      _exit(3);
    }
    if (Hang) {
      // Never answer; the harness must SIGKILL us on its timeout.
      for (;;)
        ::sleep(3600);
    }

    DiffWireRequest Req;
    DiffWireResponse Resp;
    if (!decodeDiffRequest(Payload, Req, Err)) {
      Resp.Ok = false;
      Resp.Error = "malformed request: " + Err;
    } else {
      Resp = serve(Req, Restrict);
    }

    std::vector<uint8_t> Out = encodeDiffResponse(Resp);
    R = writeDiffFrame(1, Out, /*TimeoutMs=*/-1, Err);
    if (R != FrameIOResult::Ok) {
      std::fprintf(stderr, "khaos-diff-worker: write failed (%s): %s\n",
                   frameIOResultName(R), Err.c_str());
      return 1;
    }
  }
}
