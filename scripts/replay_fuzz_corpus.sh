#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
# Replays every committed fuzz-corpus repro through `khaos-fuzz --replay`
# and asserts the recorded verdict still holds.
#
#   scripts/replay_fuzz_corpus.sh <path-to-khaos-fuzz> [corpus-dir]
#
# Each repro records its verdict in a `# kind:` header line: `none` means
# the divergence was fixed (replay must exit 0); any other kind means the
# divergence must still reproduce (replay must exit 1). Replays run
# --cross-vm so every file doubles as an A/B probe of the precompiled
# engine against the reference interpreter. Exit 0 when every file agrees
# with its recorded verdict, 1 otherwise, 2 on usage errors.
#===------------------------------------------------------------------------===#
set -u

FUZZ="${1:-}"
CORPUS="${2:-$(dirname "$0")/../fuzz-corpus}"

if [ -z "$FUZZ" ] || [ ! -x "$FUZZ" ]; then
  echo "usage: $0 <path-to-khaos-fuzz> [corpus-dir]" >&2
  exit 2
fi
if [ ! -d "$CORPUS" ]; then
  echo "replay_fuzz_corpus: corpus directory '$CORPUS' not found" >&2
  exit 2
fi

shopt -s nullglob
FILES=("$CORPUS"/*.repro)
if [ ${#FILES[@]} -eq 0 ]; then
  echo "replay_fuzz_corpus: no .repro files in '$CORPUS'" >&2
  exit 2
fi

FAILURES=0
for FILE in "${FILES[@]}"; do
  KIND=$(sed -n 's/^# kind: //p' "$FILE" | head -1)
  if [ -z "$KIND" ]; then
    echo "FAIL $FILE: missing '# kind:' header" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  "$FUZZ" --replay "$FILE" --cross-vm
  GOT=$?
  if [ "$KIND" = "none" ]; then WANT=0; else WANT=1; fi
  if [ "$GOT" -ne "$WANT" ]; then
    echo "FAIL $FILE: recorded kind '$KIND' expects replay exit $WANT," \
         "got $GOT" >&2
    FAILURES=$((FAILURES + 1))
  fi
done

echo "replay_fuzz_corpus: ${#FILES[@]} repros, $FAILURES disagreements"
[ "$FAILURES" -eq 0 ]
