#!/usr/bin/env python3
"""Perf-regression gate over the committed VM-engine trajectory.

Compares a fresh `bench_vm_engines --json` result against a committed
baseline (BENCH_vm_quick.json for the PR gate, BENCH_vm.json for the
nightly full run) and fails when the precompiled engine regressed.

The gated metric is the *speedup* (precompiled steps/sec over reference
steps/sec), not absolute steps/sec: both engines run the same sweep on
the same machine in the same process, so their ratio cancels the CI
runner's speed-of-the-day while a real dispatch-loop regression still
moves it. Correctness travels along: the current result must report
all_match=true (every workload's precompiled observation equal to the
reference interpreter's) and must not have silently dropped workloads.

    check_vm_regression.py --current NEW.json --baseline OLD.json \
        [--tolerance 0.35]

Exit 0 = no regression, 1 = regression or correctness failure,
2 = malformed inputs.
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_vm_regression: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def require(cond, message):
    if not cond:
        print(f"check_vm_regression: {message}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", required=True,
                    help="fresh bench_vm_engines --json output")
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_vm*.json baseline")
    ap.add_argument("--tolerance", type=float, default=0.35,
                    help="allowed fractional speedup drop (default 0.35; "
                         "quick-mode runs are noisy)")
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)

    for tag, doc in (("current", cur), ("baseline", base)):
        require(doc.get("bench") == "vm_engines",
                f"{tag} is not a vm_engines result")
        # A timed-out or broken bench run can emit zero/NaN rates; gating
        # a ratio of those would either crash (divide by zero) or pass
        # vacuously (floor of 0). Reject the input instead of guessing.
        for field in ("reference_steps_per_sec",
                      "precompiled_steps_per_sec", "speedup"):
            value = doc.get(field)
            require(isinstance(value, (int, float))
                    and not isinstance(value, bool),
                    f"{tag} has no numeric {field} field "
                    f"(truncated or non-bench JSON?)")
            require(math.isfinite(value) and value > 0,
                    f"{tag} has unusable {field}={value!r}; the bench run "
                    f"that produced it measured nothing — rerun it")
    require(cur.get("quick") == base.get("quick"),
            "quick/full mode mismatch between current and baseline "
            "(gate quick runs against BENCH_vm_quick.json, full runs "
            "against BENCH_vm.json)")

    failures = []
    if not cur.get("all_match", False):
        failures.append(
            "correctness: precompiled engine disagreed with the reference "
            "interpreter on at least one workload (all_match=false)")
    if cur.get("workloads_measured", 0) < base.get("workloads_measured", 0):
        failures.append(
            f"coverage: measured {cur.get('workloads_measured')} workloads, "
            f"baseline has {base.get('workloads_measured')}")

    floor = base["speedup"] * (1.0 - args.tolerance)
    verdict = (f"speedup {cur['speedup']:.3f}x vs baseline "
               f"{base['speedup']:.3f}x (floor {floor:.3f}x at "
               f"{args.tolerance:.0%} tolerance)")
    if cur["speedup"] < floor:
        failures.append(f"performance: {verdict}")
    else:
        print(f"check_vm_regression: OK — {verdict}")

    for failure in failures:
        print(f"check_vm_regression: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
