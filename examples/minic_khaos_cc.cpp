//===- examples/minic_khaos_cc.cpp - Command-line compiler driver --------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A clang-like driver for the MiniC → KIR → Khaos → binary pipeline:
///
///   minic_khaos_cc FILE.c [-obf MODE] [-O0|-O1|-O2|-O3] [-emit-ir]
///                  [-emit-asm] [-run]
///
/// MODE is one of: none sub bog fla fla10 fission fusion fufi.sep
/// fufi.ori fufi.all. Without a FILE, a built-in demo program is used.
///
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "frontend/IRGen.h"
#include "ir/CFGExport.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "obfuscation/KhaosDriver.h"
#include "vm/Interpreter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace khaos;

namespace {

const char *Demo = R"(
int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
int main() { printf("gcd(462, 1071) = %d\n", gcd(462, 1071)); return 0; }
)";

bool parseMode(const std::string &S, ObfuscationMode &Out) {
  if (S == "none")
    Out = ObfuscationMode::None;
  else if (S == "sub")
    Out = ObfuscationMode::Sub;
  else if (S == "bog")
    Out = ObfuscationMode::Bog;
  else if (S == "fla")
    Out = ObfuscationMode::Fla;
  else if (S == "fla10")
    Out = ObfuscationMode::Fla10;
  else if (S == "fission")
    Out = ObfuscationMode::Fission;
  else if (S == "fusion")
    Out = ObfuscationMode::Fusion;
  else if (S == "fufi.sep")
    Out = ObfuscationMode::FuFiSep;
  else if (S == "fufi.ori")
    Out = ObfuscationMode::FuFiOri;
  else if (S == "fufi.all")
    Out = ObfuscationMode::FuFiAll;
  else
    return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string Source = Demo;
  std::string InputName = "<demo>";
  ObfuscationMode Mode = ObfuscationMode::FuFiAll;
  OptLevel Level = OptLevel::O2;
  bool EmitIR = false, EmitAsm = false, Run = false;
  bool EmitCFG = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-obf" && I + 1 < argc) {
      if (!parseMode(argv[++I], Mode)) {
        std::fprintf(stderr, "error: unknown obfuscation mode '%s'\n",
                     argv[I]);
        return 1;
      }
    } else if (Arg == "-O0") {
      Level = OptLevel::O0;
    } else if (Arg == "-O1") {
      Level = OptLevel::O1;
    } else if (Arg == "-O2") {
      Level = OptLevel::O2;
    } else if (Arg == "-O3") {
      Level = OptLevel::O3;
    } else if (Arg == "-emit-ir") {
      EmitIR = true;
    } else if (Arg == "-emit-cfg") {
      EmitCFG = true;
    } else if (Arg == "-emit-asm") {
      EmitAsm = true;
    } else if (Arg == "-run") {
      Run = true;
    } else if (Arg[0] != '-') {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "error: cannot open '%s'\n", Arg.c_str());
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Source = SS.str();
      InputName = Arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s [FILE.c] [-obf MODE] [-O0..-O3] [-emit-ir] "
                   "[-emit-cfg] [-emit-asm] [-run]\n",
                   argv[0]);
      return 1;
    }
  }
  if (!EmitIR && !EmitAsm && !Run)
    EmitAsm = Run = true; // Sensible default.

  Context Ctx;
  std::string Error;
  auto M = compileMiniC(Source, Ctx, InputName, Error);
  if (!M) {
    std::fprintf(stderr, "%s: %s\n", InputName.c_str(), Error.c_str());
    return 1;
  }

  KhaosOptions Opts;
  Opts.PostOptLevel = Level;
  obfuscateModule(*M, Mode, Opts);

  std::printf("; %s | obf=%s | opt=O%d\n", InputName.c_str(),
              obfuscationModeName(Mode), (int)Level);
  if (EmitIR)
    std::printf("%s\n", printModule(*M).c_str());
  if (EmitCFG) {
    std::printf("%s", exportCallGraph(*M).c_str());
    for (const auto &F : M->functions())
      if (!F->isDeclaration())
        std::printf("%s", exportCFG(*F).c_str());
  }
  if (EmitAsm)
    std::printf("%s\n", lowerToBinary(*M).disassemble().c_str());
  if (Run) {
    ExecResult R = runModule(*M);
    if (!R.Ok) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("%s[exit %lld, %llu steps, %llu cost]\n", R.Stdout.c_str(),
                (long long)R.ExitValue, (unsigned long long)R.Steps,
                (unsigned long long)R.Cost);
  }
  return 0;
}
