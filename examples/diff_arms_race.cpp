//===- examples/diff_arms_race.cpp - Obfuscation vs diffing matrix -------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arms race in one matrix: every obfuscation mode against every
/// diffing tool on one SPEC-like workload, with the runtime overhead next
/// to the accuracy — the trade-off at the heart of the paper.
///
//===----------------------------------------------------------------------===//

#include "harness/Evaluator.h"
#include "harness/TableRenderer.h"

#include <cstdio>

using namespace khaos;

int main(int argc, char **argv) {
  std::vector<Workload> Suite = specCpu2006Suite();
  std::string Name = argc > 1 ? argv[1] : "458.sjeng";
  const Workload *W = nullptr;
  for (const Workload &Cand : Suite)
    if (Cand.Name == Name)
      W = &Cand;
  if (!W) {
    std::fprintf(stderr, "unknown benchmark '%s'; available:\n",
                 Name.c_str());
    for (const Workload &Cand : Suite)
      std::fprintf(stderr, "  %s\n", Cand.Name.c_str());
    return 1;
  }

  std::printf("workload: %s\n\n", W->Name.c_str());
  EvalPipeline Pipe;
  auto Tools = createAllDiffTools();

  // Tool columns come from the registry, so new backends (including the
  // subprocess-backed ones, e.g. safe-oop) show up automatically.
  std::vector<std::string> Header{"mode", "overhead"};
  for (const auto &Tool : Tools)
    Header.push_back(Tool->getName());
  TableRenderer Table(std::move(Header));
  for (ObfuscationMode Mode : allObfuscationModes()) {
    std::vector<std::string> Row{obfuscationModeName(Mode)};
    double Ov = 0.0;
    Row.push_back(Pipe.overheadPercent(*W, Mode, Ov)
                      ? TableRenderer::fmtPercent(Ov)
                      : "n/a");
    DiffImages Imgs = Pipe.diffImages(*W, Mode);
    for (const auto &Tool : Tools)
      Row.push_back(Imgs.Ok ? TableRenderer::fmtRatio(
                                  Pipe.runDiffTool(*Tool, Imgs).Precision)
                            : "n/a");
    Table.addRow(std::move(Row));
  }
  Table.print();
  std::printf("\nColumns are Precision@1 under the paper's relaxed pairing "
              "judgment.\nKhaos (Fission/Fusion/FuFi.*) trades single-digit "
              "overhead for large accuracy drops;\nO-LLVM's intra-procedural "
              "passes leave the tools mostly intact.\n");
  return 0;
}
