//===- examples/quickstart.cpp - Five-minute tour of the library ---------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a small C program, apply Khaos (fission + fusion),
/// show the IR before/after, prove behaviour is unchanged in the VM, and
/// disassemble the obfuscated binary image.
///
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "frontend/IRGen.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "obfuscation/KhaosDriver.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace khaos;

static const char *Program = R"(
// A tiny "application": counts collatz steps and hashes a string.
int collatz_steps(int n) {
  int steps = 0;
  while (n != 1 && steps < 200) {
    if (n % 2 == 0) n = n / 2;
    else n = 3 * n + 1;
    steps++;
  }
  return steps;
}

int djb2(char* s) {
  int h = 5381;
  for (int i = 0; s[i] != '\0'; i++) h = h * 33 + s[i];
  return h;
}

int main() {
  int total = 0;
  for (int i = 1; i <= 40; i++) total += collatz_steps(i);
  printf("collatz total: %d\n", total);
  printf("hash: %d\n", djb2("khaos quickstart") & 65535);
  return total & 127;
}
)";

int main() {
  // 1. Compile MiniC to KIR.
  Context Ctx;
  std::string Error;
  std::unique_ptr<Module> M = compileMiniC(Program, Ctx, "quickstart",
                                           Error);
  if (!M) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("=== original IR (un-optimized) ===\n%s\n",
              printModule(*M).c_str());

  // 2. Run it: this is the reference behaviour.
  ExecResult Before = runModule(*M);
  std::printf("=== reference run ===\n%sexit=%lld cost=%llu\n\n",
              Before.Stdout.c_str(), (long long)Before.ExitValue,
              (unsigned long long)Before.Cost);

  // 3. Obfuscate with the strongest mode: fission, then fusion of the
  //    sepFuncs and the untouched originals (FuFi.all), then O2.
  ObfuscationResult Stats = obfuscateModule(*M, ObfuscationMode::FuFiAll);
  std::printf("=== Khaos applied ===\n"
              "sepFuncs created : %u\n"
              "fusFunc pairs    : %u\n"
              "trampolines      : %u\n"
              "params compressed: %u\n\n",
              Stats.Fission.SepFuncs, Stats.Fusion.Pairs,
              Stats.Fusion.Trampolines, Stats.Fusion.CompressedParams);
  std::printf("=== obfuscated IR ===\n%s\n", printModule(*M).c_str());

  // 4. Same behaviour?
  ExecResult After = runModule(*M);
  std::printf("=== obfuscated run ===\n%sexit=%lld cost=%llu\n",
              After.Stdout.c_str(), (long long)After.ExitValue,
              (unsigned long long)After.Cost);
  bool Same = After.Ok && After.Stdout == Before.Stdout &&
              After.ExitValue == Before.ExitValue;
  std::printf("behaviour preserved: %s\n\n", Same ? "YES" : "NO");

  // 5. Lower to the synthetic binary and disassemble.
  BinaryImage Image = lowerToBinary(*M);
  std::printf("=== obfuscated binary (first 40 lines) ===\n");
  std::string Disasm = Image.disassemble();
  size_t Pos = 0;
  for (int Line = 0; Line < 40 && Pos != std::string::npos; ++Line) {
    size_t Next = Disasm.find('\n', Pos);
    std::printf("%s\n", Disasm.substr(Pos, Next - Pos).c_str());
    Pos = Next == std::string::npos ? Next : Next + 1;
  }
  return Same ? 0 : 1;
}
