//===- workloads/SyntheticProgram.cpp - MiniC program synthesis ------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/SyntheticProgram.h"

#include "support/RNG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace khaos;

namespace {

/// Builds one program. All emitted arithmetic is trap-free: divisions are
/// guarded with `| 1`, shifts masked, array indices masked to power-of-two
/// sizes, recursion depth bounded by construction.
class ProgramBuilder {
public:
  explicit ProgramBuilder(const ProgramSpec &Spec)
      : Spec(Spec), Rng(RNG::fromName(Spec.Name, Spec.Seed)) {}

  std::string run();

private:
  struct FnInfo {
    std::string Name;
    unsigned NumIntParams = 2;
    bool IsFP = false;        ///< double-returning flavour.
    bool IsRecursive = false;
    bool MayThrow = false;
    bool IsBinOp = false; ///< (int,int)->int family for pointer tables.
  };

  // Source emission helpers.
  void line(const std::string &S) {
    Out.append(IndentLevel * 2, ' ');
    Out += S;
    Out += '\n';
  }
  void open(const std::string &S) {
    line(S + " {");
    ++IndentLevel;
  }
  void close() {
    --IndentLevel;
    line("}");
  }

  // Expression generation.
  /// Call layer of a function index: 0 = leaf, 2 = top.
  unsigned layerOf(size_t Index) const {
    size_t N = std::max<size_t>(Fns.size(), 1);
    return static_cast<unsigned>(Index * 3 / N);
  }

  /// A local that is safe to mutate (never a frozen control variable).
  std::string pickAssignable() {
    for (int Tries = 0; Tries != 6; ++Tries) {
      const std::string &V = Rng.pick(IntVars);
      if (!Frozen.count(V))
        return V;
    }
    return "acc";
  }

  std::string intLeaf();
  std::string intExpr(unsigned Depth);
  std::string fpExpr(unsigned Depth);
  std::string intCall(size_t MaxCallee);

  /// A fresh literal from the safe charset (never braces or quotes, so
  /// the shrinker's per-line brace counting stays exact).
  std::string makeStringLiteral();

  // Statement generation.
  void emitStatements(const FnInfo &F, unsigned Budget, unsigned LoopDepth);
  void emitFunction(size_t Index);
  void emitMain();

  // Adversarial idiom emitters (ProgramSpec knobs, default off).
  void emitSwitchDispatcher();
  void emitGotoMaze();
  void emitStringBlender();

  const ProgramSpec &Spec;
  RNG Rng;
  std::string Out;
  int IndentLevel = 0;

  std::vector<FnInfo> Fns;
  size_t CurIndex = 0;
  std::vector<std::string> IntVars; ///< In-scope int locals of current fn.
  std::vector<std::string> FPVars;
  /// Variables that must never be assignment targets: the recursion depth
  /// parameter and active loop counters (termination depends on them).
  std::set<std::string> Frozen;
  unsigned VarCounter = 0;
  unsigned LoopCounter = 0;
  unsigned CurLoopDepth = 0;
};

} // namespace

std::string ProgramBuilder::intLeaf() {
  switch (Rng.nextBelow(5)) {
  case 0:
  case 1:
    return Rng.pick(IntVars);
  case 2:
    // Function-distinctive constants (real code is full of them).
    return std::to_string(Rng.nextRange(17, 19993));
  case 3:
    return "g_state";
  default:
    return formatStr("g_table[%s & 31]", Rng.pick(IntVars).c_str());
  }
}

std::string ProgramBuilder::intCall(size_t MaxCallee) {
  // Layered call discipline: a function may only call functions in a
  // strictly lower layer. This keeps the dynamic call tree polynomial —
  // an unrestricted acyclic call DAG explodes exponentially.
  unsigned MyLayer = layerOf(MaxCallee);
  bool AmRecursive = MaxCallee < Fns.size() && Fns[MaxCallee].IsRecursive;
  std::vector<size_t> Candidates;
  for (size_t I = 0; I < MaxCallee; ++I) {
    if (Fns[I].IsFP || Fns[I].MayThrow) // Throwers only inside try.
      continue;
    if (layerOf(I) >= MyLayer)
      continue;
    if (AmRecursive && Fns[I].IsRecursive)
      continue; // Recursion must not stack multiplicatively.
    Candidates.push_back(I);
  }
  if (Candidates.empty())
    return intLeaf();
  const FnInfo &Callee = Fns[Candidates[Rng.nextBelow(Candidates.size())]];
  std::vector<std::string> Args;
  for (unsigned I = 0; I != Callee.NumIntParams; ++I)
    Args.push_back(formatStr("(%s & 63)", intLeaf().c_str()));
  if (Callee.IsRecursive)
    Args[0] = std::to_string(Rng.nextRange(2, 5)); // Bounded depth.
  return Callee.Name + "(" + join(Args, ", ") + ")";
}

std::string ProgramBuilder::intExpr(unsigned Depth) {
  if (Depth == 0 || Rng.nextBool(0.3))
    return intLeaf();
  static const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
  switch (Rng.nextBelow(8)) {
  case 0:
    return formatStr("(%s %s %s)", intExpr(Depth - 1).c_str(),
                     Ops[Rng.nextBelow(6)], intExpr(Depth - 1).c_str());
  case 1:
    return formatStr("(%s >> %d)", intExpr(Depth - 1).c_str(),
                     (int)Rng.nextRange(1, 5));
  case 2:
    return formatStr("(%s << %d)", intExpr(Depth - 1).c_str(),
                     (int)Rng.nextRange(1, 3));
  case 3:
    return formatStr("(%s / ((%s & 7) | 1))", intExpr(Depth - 1).c_str(),
                     intLeaf().c_str());
  case 4:
    return formatStr("(%s %% ((%s & 15) | 1))", intExpr(Depth - 1).c_str(),
                     intLeaf().c_str());
  case 5:
    return formatStr("(%s > %s ? %s : %s)", intLeaf().c_str(),
                     intLeaf().c_str(), intExpr(Depth - 1).c_str(),
                     intLeaf().c_str());
  case 6:
    if (CurIndex > 0 && CurLoopDepth <= 1 && Rng.nextBool(0.45))
      return intCall(CurIndex);
    return intLeaf();
  default:
    return formatStr("(%s %s %s)", intExpr(Depth - 1).c_str(),
                     Ops[Rng.nextBelow(6)], intLeaf().c_str());
  }
}

std::string ProgramBuilder::fpExpr(unsigned Depth) {
  if (FPVars.empty() || Depth == 0)
    return formatStr("%d.%d", (int)Rng.nextRange(0, 9),
                     (int)Rng.nextRange(1, 99));
  static const char *Ops[] = {"+", "-", "*"};
  switch (Rng.nextBelow(4)) {
  case 0:
    return Rng.pick(FPVars);
  case 1:
    return formatStr("(%s %s %s)", fpExpr(Depth - 1).c_str(),
                     Ops[Rng.nextBelow(3)], fpExpr(Depth - 1).c_str());
  case 2:
    return formatStr("(%s / (%s + 1.5))", fpExpr(Depth - 1).c_str(),
                     Rng.pick(FPVars).c_str());
  default:
    return formatStr("((double)(%s & 255))", intLeaf().c_str());
  }
}

std::string ProgramBuilder::makeStringLiteral() {
  static const char Charset[] = "abcdefghijklmnopqrstuvwxyz0123456789_";
  std::string S;
  for (unsigned I = 0, E = 4 + (unsigned)Rng.nextBelow(16); I != E; ++I)
    S += Charset[Rng.nextBelow(sizeof(Charset) - 1)];
  return S;
}

/// Switch-dense state machine: one big dispatcher loop whose switch has
/// 16 distinct cases — the shape Fla turns into select chains and SplitBB
/// carves up, and the Chakravyuha test corpus is full of.
void ProgramBuilder::emitSwitchDispatcher() {
  open("int dispatch_sm(int s, int n)");
  line("int acc = 0;");
  open("for (int k = 0; k < n; k++)");
  open("switch (s & 15)");
  for (int C = 0; C != 15; ++C) {
    line(formatStr("case %d:", C));
    ++IndentLevel;
    line(formatStr("s = s * %d + %d; acc += %d; break;",
                   (int)Rng.nextRange(3, 9), (int)Rng.nextRange(1, 31),
                   (int)Rng.nextRange(1, 15)));
    --IndentLevel;
  }
  line("default:");
  ++IndentLevel;
  line(formatStr("s = s ^ %d; acc += 1; break;",
                 (int)Rng.nextRange(1, 255)));
  --IndentLevel;
  close(); // switch
  close(); // for
  line("return acc + (s & 1023);");
  close();
  Out += "\n";
}

/// Goto-dense CFG maze: every label decrements the fuel counter and exits
/// when it runs out, so any jump pattern terminates. This is the
/// unstructured-CFG shape that caught Flattening's unchecked id lookup.
/// Control always falls through label to label (plus random conditional
/// cross jumps), so every block stays reachable — the verifier rejects
/// uses in unreachable blocks.
void ProgramBuilder::emitGotoMaze() {
  const unsigned Labels = 6;
  open("int goto_maze(int x, int n)");
  line("int acc = x & 255;");
  line("goto L0;");
  for (unsigned L = 0; L != Labels; ++L) {
    line(formatStr("L%u:", L));
    line("n = n - 1;");
    line("if (n <= 0) goto Ldone;");
    line(formatStr("acc = acc + %d;", (int)Rng.nextRange(1, 63)));
    unsigned A = (unsigned)Rng.nextBelow(Labels);
    unsigned B = (unsigned)Rng.nextBelow(Labels);
    line(formatStr("if (acc & %d) goto L%u;", 1 << Rng.nextBelow(3), A));
    line(formatStr("if (acc & %d) goto L%u;", 1 << Rng.nextBelow(3), B));
    if (L + 1 == Labels)
      line("goto Ldone;");
  }
  line("Ldone:");
  line("return acc;");
  close();
  Out += "\n";
}

/// String-heavy helper: feeds distinctive literals through strlen and
/// (observably, via puts) stdout — StrEnc must decode them bit-exactly.
void ProgramBuilder::emitStringBlender() {
  std::vector<std::string> Pool;
  for (unsigned I = 0, E = 3 + (unsigned)Rng.nextBelow(4); I != E; ++I)
    Pool.push_back(makeStringLiteral());
  open("int str_blend(int k)");
  line("int t = k & 15;");
  for (const std::string &S : Pool)
    line(formatStr("t += (int)strlen(\"%s\");", S.c_str()));
  open(formatStr("if ((k & 7) == %d)", (int)Rng.nextBelow(8)));
  line(formatStr("puts(\"%s\");", Pool[Rng.nextBelow(Pool.size())].c_str()));
  close();
  line("return t;");
  close();
  Out += "\n";
}

void ProgramBuilder::emitStatements(const FnInfo &F, unsigned Budget,
                                    unsigned LoopDepth) {
  while (Budget > 0) {
    --Budget;
    // String-heavy filler rides its own gated draw so a zero ratio leaves
    // the RNG stream (and every existing program) untouched.
    if (Spec.StringRatio > 0.0 && Rng.nextBool(Spec.StringRatio * 0.25)) {
      line(formatStr("%s += (int)strlen(\"%s\");",
                     pickAssignable().c_str(), makeStringLiteral().c_str()));
      continue;
    }
    unsigned Kind = Rng.nextBelow(10);
    switch (Kind) {
    case 0: { // New local.
      std::string V = formatStr("v%u", VarCounter++);
      line(formatStr("int %s = %s;", V.c_str(), intExpr(2).c_str()));
      IntVars.push_back(V);
      break;
    }
    case 1: // Assignment.
      line(formatStr("%s = %s;", pickAssignable().c_str(),
                     intExpr(2).c_str()));
      break;
    case 2: { // If/else with cold branch.
      size_t Mark = IntVars.size(), FMark = FPVars.size();
      open(formatStr("if (%s > %d)", Rng.pick(IntVars).c_str(),
                     (int)Rng.nextRange(5, 60)));
      emitStatements(F, 2, LoopDepth);
      close();
      IntVars.resize(Mark);
      FPVars.resize(FMark);
      if (Rng.nextBool(0.5)) {
        open("else");
        emitStatements(F, 1, LoopDepth);
        close();
        IntVars.resize(Mark);
        FPVars.resize(FMark);
      }
      break;
    }
    case 3: { // Counted loop (hot region).
      if (LoopDepth >= Spec.MaxLoopDepth)
        break;
      size_t Mark = IntVars.size(), FMark = FPVars.size();
      std::string I = formatStr("i%u", LoopCounter++);
      open(formatStr("for (int %s = 0; %s < %d; %s++)", I.c_str(),
                     I.c_str(),
                     (int)(LoopDepth == 0 ? Rng.nextRange(4, 12)
                                          : Rng.nextRange(3, 6)),
                     I.c_str()));
      IntVars.push_back(I);
      Frozen.insert(I);
      ++CurLoopDepth;
      emitStatements(F, 2, LoopDepth + 1);
      --CurLoopDepth;
      close();
      Frozen.erase(I);
      IntVars.resize(Mark);
      FPVars.resize(FMark);
      break;
    }
    case 4: // Global table update.
      line(formatStr("g_table[%s & 31] = %s;",
                     Rng.pick(IntVars).c_str(), intExpr(1).c_str()));
      break;
    case 5: { // Switch.
      std::string V = pickAssignable();
      open(formatStr("switch (%s & 3)", V.c_str()));
      for (int C = 0; C != 3; ++C) {
        line(formatStr("case %d:", C));
        ++IndentLevel;
        line(formatStr("%s = %s; break;", V.c_str(),
                       intExpr(1).c_str()));
        --IndentLevel;
      }
      line("default:");
      ++IndentLevel;
      line(formatStr("%s = %s ^ %d; break;", V.c_str(), V.c_str(),
                     (int)Rng.nextRange(1, 255)));
      --IndentLevel;
      close();
      break;
    }
    case 6: // FP statement in FP functions.
      if (F.IsFP && !FPVars.empty()) {
        line(formatStr("%s = %s;", Rng.pick(FPVars).c_str(),
                       fpExpr(2).c_str()));
      } else {
        line(formatStr("g_state = g_state + (%s & 255);",
                       Rng.pick(IntVars).c_str()));
      }
      break;
    case 7: { // try/catch around a throwing call.
      if (!Spec.UseExceptions || CurIndex == 0)
        break;
      std::vector<size_t> Throwers;
      for (size_t I = 0; I < CurIndex; ++I)
        if (Fns[I].MayThrow)
          Throwers.push_back(I);
      if (Throwers.empty())
        break;
      const FnInfo &T = Fns[Throwers[Rng.nextBelow(Throwers.size())]];
      std::string V = pickAssignable();
      open("try");
      std::vector<std::string> Args;
      for (unsigned I = 0; I != T.NumIntParams; ++I)
        Args.push_back(formatStr("(%s & 63)", intLeaf().c_str()));
      line(formatStr("%s += %s(%s);", V.c_str(), T.Name.c_str(),
                     join(Args, ", ").c_str()));
      close();
      open("catch (int ex)");
      line(formatStr("%s += ex & 31;", V.c_str()));
      close();
      break;
    }
    case 8: // Local array round trip.
      line(formatStr("buf[%s & 15] = %s;", Rng.pick(IntVars).c_str(),
                     intExpr(1).c_str()));
      line(formatStr("%s += buf[%s & 15];", pickAssignable().c_str(),
                     Rng.pick(IntVars).c_str()));
      break;
    default: // Plain accumulate (most common filler).
      line(formatStr("%s += %s;", pickAssignable().c_str(),
                     intExpr(2).c_str()));
      break;
    }
  }
}

void ProgramBuilder::emitFunction(size_t Index) {
  CurIndex = Index;
  FnInfo &F = Fns[Index];
  IntVars.clear();
  FPVars.clear();
  Frozen.clear();
  VarCounter = 0;
  if (F.IsRecursive)
    Frozen.insert("p0");

  std::vector<std::string> Params;
  for (unsigned I = 0; I != F.NumIntParams; ++I) {
    std::string P = formatStr("p%u", I);
    Params.push_back("int " + P);
    IntVars.push_back(P);
  }
  const char *Ret = F.IsFP ? "double" : "int";
  // Named (CVE) functions model exported library symbols: they survive
  // LTO and get trampolines under fusion, exactly like the real packages.
  bool Exported = Index < Spec.NamedFunctions.size();
  open(formatStr("%s%s %s(%s)", Exported ? "__export " : "", Ret,
                 F.Name.c_str(), join(Params, ", ").c_str()));

  if (F.IsRecursive) {
    // p0 is the depth; bounded by construction at every call site.
    line("if (p0 <= 0) return " +
         std::string(F.IsFP ? "1.0;" : "1;"));
  }
  if (F.MayThrow)
    line(formatStr("if (p0 == %d) throw p0 + %d;",
                   (int)Rng.nextRange(50, 63), (int)Rng.nextRange(1, 9)));

  line("int buf[16];");
  line(formatStr("int acc = p0 * %d;", (int)Rng.nextRange(1, 9)));
  // A distinctive constant fingerprint: real functions carry unique
  // magic numbers, table sizes and offsets that diffing tools key on.
  for (int K = 0, E = 2 + (int)Rng.nextBelow(3); K != E; ++K)
    line(formatStr("acc = acc ^ %d;", (int)Rng.nextRange(1000, 999983)));
  IntVars.push_back("acc");
  if (F.IsFP) {
    line("double facc = (double)p0 * 0.5;");
    FPVars.push_back("facc");
  }

  emitStatements(F, 2 + Rng.nextBelow(12), 0);

  if (F.IsRecursive) {
    std::vector<std::string> SelfArgs = {"p0 - 1"};
    for (unsigned I = 1; I != F.NumIntParams; ++I)
      SelfArgs.push_back(formatStr("(acc + %u) & 31", I));
    line(formatStr("acc += %s(%s);", F.Name.c_str(),
                   join(SelfArgs, ", ").c_str()));
  }

  line("g_check += acc;");
  if (F.IsFP)
    line("return facc + (double)(acc & 1023);");
  else
    line("return acc;");
  close();
  Out += "\n";
}

void ProgramBuilder::emitMain() {
  CurIndex = Fns.size();
  IntVars = {"iter", "x"};
  open("int main()");
  line("long total = 0;");
  line("int x = 7;");

  // Function-pointer table dispatch (exercises fusion's tagged pointers).
  bool HasTable = false;
  if (Spec.UseIndirectCalls) {
    unsigned BinOps = 0;
    for (const FnInfo &F : Fns)
      if (F.IsBinOp)
        ++BinOps;
    HasTable = BinOps >= 2;
  }

  open(formatStr("for (int iter = 0; iter < %u; iter++)",
                 Spec.MainIterations));
  // Call every top-layer function (they transitively keep the lower
  // layers alive through LTO-style dead code elimination), capped to
  // bound the workload.
  std::vector<size_t> Tops;
  for (size_t I = 0; I != Fns.size(); ++I)
    if (!Fns[I].IsBinOp && layerOf(I) == 2)
      Tops.push_back(I);
  if (Tops.size() > 14)
    Tops.resize(14);
  // Named (CVE) functions must stay reachable regardless of their layer.
  for (size_t I = 0;
       I != Fns.size() && I < Spec.NamedFunctions.size(); ++I)
    if (std::find(Tops.begin(), Tops.end(), I) == Tops.end())
      Tops.push_back(I);
  for (size_t TI : Tops) {
    const FnInfo &F = Fns[TI];
    std::vector<std::string> Args;
    for (unsigned I = 0; I != F.NumIntParams; ++I)
      Args.push_back(formatStr("((iter * %d + %d) & 63)",
                               (int)Rng.nextRange(1, 5),
                               (int)Rng.nextRange(0, 31)));
    if (F.IsRecursive)
      Args[0] = std::to_string(Rng.nextRange(3, 6));
    if (F.MayThrow) {
      open("try");
      line(formatStr("total += (long)%s(%s);", F.Name.c_str(),
                     join(Args, ", ").c_str()));
      close();
      open("catch (int e)");
      line("total += e;");
      close();
    } else if (F.IsFP) {
      line(formatStr("total += (long)%s(%s);", F.Name.c_str(),
                     join(Args, ", ").c_str()));
    } else {
      line(formatStr("total += %s(%s);", F.Name.c_str(),
                     join(Args, ", ").c_str()));
    }
  }
  if (HasTable)
    line("x = op_table[iter & 3](x & 1023, iter & 63);");
  if (Spec.UseSwitchDispatch)
    line("total += dispatch_sm(x + iter, 9);");
  if (Spec.UseGotos)
    line("total += goto_maze(x ^ iter, 25);");
  if (Spec.StringRatio > 0.0)
    line("total += str_blend(iter);");
  close(); // for

  if (Spec.UseSetjmp) {
    line("int jr = setjmp(g_jb);");
    open("if (jr == 0)");
    line("deep_jump(6);");
    close();
    line("total += jr;");
  }

  line("total += g_check + g_state + x;");
  line("printf(\"%ld\\n\", total);");
  line("return (int)(total & 127L);");
  close();
}

std::string ProgramBuilder::run() {
  // Globals.
  line(formatStr("// %s — synthetic workload (deterministic, seed %llu)",
                 Spec.Name.c_str(), (unsigned long long)Spec.Seed));
  line("long g_check = 0;");
  line("int g_state = 1;");
  line("int g_table[32];");
  if (Spec.UseSetjmp)
    line("long g_jb[8];");
  Out += "\n";

  // Plan the functions.
  unsigned N = std::max(3u, Spec.NumFunctions);
  for (unsigned I = 0; I != N; ++I) {
    FnInfo F;
    if (I < Spec.NamedFunctions.size())
      F.Name = Spec.NamedFunctions[I];
    else
      F.Name = formatStr("fn_%s_%u",
                         std::to_string(Spec.Seed % 97).c_str(), I);
    F.NumIntParams = 1 + Rng.nextBelow(3);
    F.IsFP = Rng.nextBool(Spec.FloatRatio);
    F.IsRecursive = !F.IsFP && Rng.nextBool(Spec.RecursionRatio);
    F.MayThrow = Spec.UseExceptions && !F.IsFP && Rng.nextBool(0.15);
    Fns.push_back(F);
  }
  // A binop family for the function-pointer table.
  if (Spec.UseIndirectCalls) {
    for (unsigned K = 0; K != 4; ++K) {
      FnInfo F;
      F.Name = formatStr("op_%u", K);
      F.NumIntParams = 2;
      F.IsBinOp = true;
      Fns.push_back(F);
    }
  }

  // Emit binop family first (simple, one block — fission-unprocessed).
  for (size_t I = 0; I != Fns.size(); ++I) {
    if (!Fns[I].IsBinOp)
      continue;
    static const char *Ops[] = {"+", "-", "^", "*"};
    open(formatStr("int %s(int a, int b)", Fns[I].Name.c_str()));
    line(formatStr("return (a %s b) + %d;",
                   Ops[Rng.nextBelow(4)], (int)Rng.nextRange(0, 9)));
    close();
    Out += "\n";
  }
  if (Spec.UseIndirectCalls) {
    std::vector<std::string> Names;
    for (const FnInfo &F : Fns)
      if (F.IsBinOp)
        Names.push_back(F.Name);
    if (Names.size() >= 4)
      line(formatStr("int (*op_table[4])(int, int) = {%s};",
                     join(Names, ", ").c_str()));
    Out += "\n";
  }

  if (Spec.UseSetjmp) {
    open("void deep_jump(int d)");
    line("if (d <= 0) longjmp(g_jb, 5);");
    line("deep_jump(d - 1);");
    close();
    Out += "\n";
  }

  // Adversarial idiom helpers (each gated, so disabled knobs draw nothing).
  if (Spec.UseSwitchDispatch)
    emitSwitchDispatcher();
  if (Spec.UseGotos)
    emitGotoMaze();
  if (Spec.StringRatio > 0.0)
    emitStringBlender();

  for (size_t I = 0; I != Fns.size(); ++I)
    if (!Fns[I].IsBinOp)
      emitFunction(I);

  emitMain();
  return Out;
}

std::string khaos::generateMiniCProgram(const ProgramSpec &Spec) {
  return ProgramBuilder(Spec).run();
}
