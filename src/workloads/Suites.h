//===- workloads/Suites.h - Evaluation test suites --------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's three test suites (§4, "Test Suites"):
///  T-I : all C/C++ SPEC CPU 2006 & 2017 benchmarks (one synthetic stand-in
///        per benchmark name, traits matching the real workload's flavour),
///  T-II: the 108 CoreUtils 8.32 programs,
///  T-III: five embedded packages containing the CVE functions of Table 3
///        (JerryScript, QuickJS, BusyBox, OpenSSL, libcurl).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_WORKLOADS_SUITES_H
#define KHAOS_WORKLOADS_SUITES_H

#include <string>
#include <vector>

namespace khaos {

/// One workload: a named MiniC program plus its vulnerable functions (only
/// populated in T-III).
struct Workload {
  std::string Name;
  std::string Source;
  std::vector<std::string> VulnFunctions;
  std::vector<std::string> VulnCVEs; ///< Parallel to VulnFunctions.
};

/// T-I part 1: the 19 SPEC CPU 2006 C/C++ benchmarks.
std::vector<Workload> specCpu2006Suite();

/// T-I part 2: the 28 SPEC CPU 2017 C/C++ benchmarks.
std::vector<Workload> specCpu2017Suite();

/// T-II: 108 CoreUtils-like programs.
std::vector<Workload> coreUtilsSuite();

/// T-III: the five vulnerable packages of Table 3.
std::vector<Workload> vulnerableSuite();

/// The paper reduces DeepBinDiff's input to programs under 40k lines; this
/// returns the small subset of T-I + T-II used for that tool.
std::vector<Workload> deepBinDiffSubset();

} // namespace khaos

#endif // KHAOS_WORKLOADS_SUITES_H
