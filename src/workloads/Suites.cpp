//===- workloads/Suites.cpp - Evaluation test suites -----------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"

#include "workloads/SyntheticProgram.h"

using namespace khaos;

namespace {

/// Trait rows for the SPEC stand-ins. FP-heavy, indirect-call-heavy and
/// EH-using benchmarks follow the real suites (C++ benchmarks get
/// exceptions; interpreters get indirect calls; solvers get FP).
struct SpecRow {
  const char *Name;
  unsigned Funcs;
  double Float;
  double Recursion;
  bool Indirect;
  bool EH;
  unsigned Iters;
};

const SpecRow Spec2006Rows[] = {
    {"400.perlbench", 74, 0.05, 0.20, true, false, 18},
    {"401.bzip2", 44, 0.05, 0.05, false, false, 22},
    {"403.gcc", 95, 0.02, 0.25, true, false, 15},
    {"429.mcf", 30, 0.05, 0.10, false, false, 24},
    {"433.milc", 47, 0.55, 0.02, false, false, 20},
    {"444.namd", 40, 0.60, 0.02, false, false, 20},
    {"445.gobmk", 68, 0.02, 0.22, false, false, 16},
    {"447.dealll", 61, 0.45, 0.08, false, true, 15},
    {"450.soplex", 51, 0.40, 0.06, false, true, 17},
    {"453.povray", 57, 0.50, 0.08, true, true, 15},
    {"456.hmmer", 44, 0.25, 0.04, false, false, 20},
    {"458.sjeng", 51, 0.02, 0.28, false, false, 18},
    {"462.libquantum", 27, 0.30, 0.05, false, false, 24},
    {"464.h264ref", 64, 0.20, 0.04, true, false, 17},
    {"470.lbm", 23, 0.65, 0.02, false, false, 26},
    {"471.omnetpp", 57, 0.08, 0.10, true, true, 16},
    {"473.astar", 34, 0.15, 0.15, false, true, 22},
    {"482.sphinx3", 47, 0.45, 0.05, false, false, 19},
    {"483.xalancbmk", 81, 0.03, 0.12, true, true, 14},
};

const SpecRow Spec2017Rows[] = {
    {"500.perlbench_r", 78, 0.05, 0.20, true, false, 17},
    {"502.gcc_r", 98, 0.02, 0.26, true, false, 14},
    {"505.mcf_r", 30, 0.05, 0.10, false, false, 24},
    {"508.namd_r", 44, 0.60, 0.02, false, false, 20},
    {"510.parest_r", 64, 0.50, 0.05, false, true, 15},
    {"511.povray_r", 57, 0.50, 0.08, true, true, 15},
    {"519.lbm_r", 23, 0.65, 0.02, false, false, 26},
    {"520.omnetpp_r", 61, 0.08, 0.10, true, true, 15},
    {"523.xalancbmk_r", 81, 0.03, 0.12, true, true, 14},
    {"525.x264_r", 61, 0.25, 0.05, true, false, 17},
    {"526.blender_r", 88, 0.40, 0.08, true, true, 13},
    {"531.deepsjeng_r", 47, 0.02, 0.30, false, false, 19},
    {"538.imagick_r", 68, 0.50, 0.04, false, false, 15},
    {"541.leela_r", 51, 0.15, 0.20, false, true, 17},
    {"544.nab_r", 44, 0.55, 0.04, false, false, 19},
    {"557.xz_r", 40, 0.04, 0.10, false, false, 22},
    {"600.perlbench_s", 78, 0.05, 0.20, true, false, 17},
    {"602.gcc_s", 98, 0.02, 0.26, true, false, 14},
    {"605.mcf_s", 30, 0.05, 0.10, false, false, 24},
    {"619.lbm_s", 23, 0.65, 0.02, false, false, 26},
    {"620.omnetpp_s", 61, 0.08, 0.10, true, true, 15},
    {"623.xalancbmk_s", 81, 0.03, 0.12, true, true, 14},
    {"625.x264_s", 61, 0.25, 0.05, true, false, 17},
    {"631.deepsjeng_s", 47, 0.02, 0.30, false, false, 19},
    {"638.imagick_s", 68, 0.50, 0.04, false, false, 15},
    {"641.leela_s", 51, 0.15, 0.20, false, true, 17},
    {"644.nab_s", 44, 0.55, 0.04, false, false, 19},
    {"657.xz_s", 40, 0.04, 0.10, false, false, 22},
};

Workload buildSpec(const SpecRow &Row, uint64_t SeedSalt) {
  ProgramSpec S;
  S.Name = Row.Name;
  S.NumFunctions = Row.Funcs;
  S.FloatRatio = Row.Float;
  S.RecursionRatio = Row.Recursion;
  S.UseIndirectCalls = Row.Indirect;
  S.UseExceptions = Row.EH;
  S.UseSetjmp = false;
  S.MainIterations = Row.Iters;
  S.Seed = SeedSalt;
  Workload W;
  W.Name = Row.Name;
  W.Source = generateMiniCProgram(S);
  return W;
}

/// The 108 programs of CoreUtils 8.32.
const char *CoreUtilsNames[] = {
    "arch",      "b2sum",     "base32",    "base64",    "basename",
    "basenc",    "cat",       "chcon",     "chgrp",     "chmod",
    "chown",     "chroot",    "cksum",     "comm",      "cp",
    "csplit",    "cut",       "date",      "dd",        "df",
    "dir",       "dircolors", "dirname",   "du",        "echo",
    "env",       "expand",    "expr",      "factor",    "false",
    "fmt",       "fold",      "groups",    "head",      "hostid",
    "id",        "install",   "join",      "kill",      "link",
    "ln",        "logname",   "ls",        "md5sum",    "mkdir",
    "mkfifo",    "mknod",     "mktemp",    "mv",        "nice",
    "nl",        "nohup",     "nproc",     "numfmt",    "od",
    "paste",     "pathchk",   "pinky",     "pr",        "printenv",
    "printf",    "ptx",       "pwd",       "readlink",  "realpath",
    "rm",        "rmdir",     "runcon",    "seq",       "sha1sum",
    "sha224sum", "sha256sum", "sha384sum", "sha512sum", "shred",
    "shuf",      "sleep",     "sort",      "split",     "stat",
    "stdbuf",    "stty",      "sum",       "sync",      "tac",
    "tail",      "tee",       "test",      "timeout",   "touch",
    "tr",        "true",      "truncate",  "tsort",     "tty",
    "uname",     "unexpand",  "uniq",      "unlink",    "uptime",
    "users",     "vdir",      "wc",        "who",       "whoami",
    "yes",       "[",         "numsum",
};

} // namespace

std::vector<Workload> khaos::specCpu2006Suite() {
  std::vector<Workload> Out;
  for (const SpecRow &Row : Spec2006Rows)
    Out.push_back(buildSpec(Row, 2006));
  return Out;
}

std::vector<Workload> khaos::specCpu2017Suite() {
  std::vector<Workload> Out;
  for (const SpecRow &Row : Spec2017Rows)
    Out.push_back(buildSpec(Row, 2017));
  return Out;
}

std::vector<Workload> khaos::coreUtilsSuite() {
  std::vector<Workload> Out;
  unsigned Idx = 0;
  for (const char *Name : CoreUtilsNames) {
    ProgramSpec S;
    S.Name = std::string("coreutils.") + (Name[0] == '[' ? "bracket"
                                                         : Name);
    S.NumFunctions = 8 + (Idx % 7);
    S.FloatRatio = (Idx % 9 == 3) ? 0.2 : 0.0;
    S.RecursionRatio = 0.08;
    S.UseIndirectCalls = Idx % 4 == 1;
    S.UseExceptions = false;
    S.UseSetjmp = Idx % 17 == 5; // A few use error-recovery longjmps.
    S.MainIterations = 18;
    S.Seed = 832 + Idx;
    Workload W;
    W.Name = S.Name;
    W.Source = generateMiniCProgram(S);
    Out.push_back(std::move(W));
    ++Idx;
  }
  return Out;
}

std::vector<Workload> khaos::vulnerableSuite() {
  struct VulnRow {
    const char *Package;
    unsigned Funcs;
    double Float;
    bool Indirect;
    bool EH;
    std::vector<std::pair<const char *, const char *>> Vulns;
  };
  const VulnRow Rows[] = {
      {"jerryscript",
       240,
       0.05,
       true,
       false,
       {{"opfunc_spread_arguments", "CVE-2020-13991"}}},
      {"quickjs",
       260,
       0.05,
       true,
       false,
       {{"compute_stack_size_rec", "CVE-2020-22876"}}},
      {"busybox-1.33.1",
       270,
       0.02,
       true,
       false,
       {{"getvar_s", "CVE-2021-42382"},
        {"handle_special", "CVE-2021-42384"}}},
      {"openssl-1.1.1",
       290,
       0.10,
       true,
       false,
       {{"init_sig_algs", "CVE-2021-3449"},
        {"EC_GROUP_set_generator", "CVE-2019-1547"}}},
      {"libcurl-7.34.0",
       280,
       0.04,
       true,
       false,
       {{"suboption", "CVE-2021-22925"},
        {"init_wc_data", "CVE-2020-8285"},
        {"conn_is_conn", "CVE-2020-8231"},
        {"tftp_connect", "CVE-2019-5482"},
        {"ftp_state_list", "CVE-2018-1000120"},
        {"alloc_addbyter", "CVE-2016-8618"},
        {"Curl_cookie_getlist", "CVE-2016-8623"},
        {"ConnectionExists", "CVE-2016-8616"}}},
  };

  std::vector<Workload> Out;
  uint64_t Salt = 3;
  for (const VulnRow &Row : Rows) {
    ProgramSpec S;
    S.Name = Row.Package;
    S.NumFunctions = Row.Funcs;
    S.FloatRatio = Row.Float;
    S.RecursionRatio = 0.12;
    S.UseIndirectCalls = Row.Indirect;
    S.UseExceptions = Row.EH;
    S.MainIterations = 10;
    S.Seed = 7000 + Salt++;
    for (const auto &[Fn, CVE] : Row.Vulns)
      S.NamedFunctions.push_back(Fn);
    Workload W;
    W.Name = Row.Package;
    W.Source = generateMiniCProgram(S);
    for (const auto &[Fn, CVE] : Row.Vulns) {
      W.VulnFunctions.push_back(Fn);
      W.VulnCVEs.push_back(CVE);
    }
    Out.push_back(std::move(W));
  }
  return Out;
}

std::vector<Workload> khaos::deepBinDiffSubset() {
  // Small programs only, mirroring the paper's <40k-line restriction.
  std::vector<Workload> Out;
  for (Workload &W : specCpu2006Suite())
    if (W.Name == "429.mcf" || W.Name == "470.lbm" ||
        W.Name == "462.libquantum")
      Out.push_back(std::move(W));
  std::vector<Workload> CU = coreUtilsSuite();
  for (size_t I = 0; I < CU.size() && Out.size() < 12; I += 12)
    Out.push_back(std::move(CU[I]));
  return Out;
}
