//===- workloads/SyntheticProgram.h - MiniC program synthesis ---*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of runnable MiniC programs. Each benchmark name
/// seeds a generator whose knobs (function count, FP mix, recursion,
/// indirect calls, EH, loop nesting) model the character of the real
/// workload it stands in for. All generated programs terminate, never
/// trap (guarded division, masked indexing, bounded recursion) and print
/// a checksum so the VM can compare behaviour across obfuscations.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_WORKLOADS_SYNTHETICPROGRAM_H
#define KHAOS_WORKLOADS_SYNTHETICPROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

/// Shape parameters of one synthetic program.
struct ProgramSpec {
  std::string Name;
  unsigned NumFunctions = 20;
  double FloatRatio = 0.2;     ///< Fraction of FP-flavoured functions.
  double RecursionRatio = 0.1; ///< Fraction of self-recursive functions.
  bool UseIndirectCalls = true;
  bool UseExceptions = false;
  bool UseSetjmp = false;
  unsigned MaxLoopDepth = 2;
  unsigned MainIterations = 40; ///< Outer workload loop in main().
  uint64_t Seed = 1;
  // Adversarial idioms aimed at the obfuscation passes' weak spots. All
  // default off, and a disabled knob consumes no RNG draws, so existing
  // specs keep generating byte-identical sources.
  double StringRatio = 0.0;       ///< String-heavy data (StrEnc stress).
  bool UseSwitchDispatch = false; ///< Switch-dense state machine (Fla).
  bool UseGotos = false;          ///< Goto-dense CFG maze (Fla id map).
  /// Function names that must exist with substantial bodies (the CVE
  /// functions of the paper's Table 3).
  std::vector<std::string> NamedFunctions;
};

/// Generates the MiniC source for \p Spec.
std::string generateMiniCProgram(const ProgramSpec &Spec);

} // namespace khaos

#endif // KHAOS_WORKLOADS_SYNTHETICPROGRAM_H
