//===- vm/PrecompiledInterpreter.h - Direct-threaded engine -----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes bytecode produced by Bytecode.h with direct-threaded
/// (computed-goto) dispatch on GCC/Clang, falling back to a portable switch
/// loop when KHAOS_VM_PORTABLE_DISPATCH is defined or the compiler lacks
/// the labels-as-values extension.
///
/// The engine shares all machine state with the reference interpreter
/// through VMRuntime, so ExitValue, Stdout, Steps, Cost, and trap messages
/// (including "(in <fn>:<block>)" fault context) are byte-identical — the
/// invariant the cross-VM oracle enforces.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_VM_PRECOMPILEDINTERPRETER_H
#define KHAOS_VM_PRECOMPILEDINTERPRETER_H

#include "vm/Bytecode.h"
#include "vm/Interpreter.h"

namespace khaos {

/// Executes @main() of a precompiled module. \p BM is read-only here, so
/// one BytecodeModule may serve concurrent runs (and the evaluation
/// pipeline caches it as an artifact).
ExecResult runPrecompiled(const BytecodeModule &BM,
                          const ExecOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_VM_PRECOMPILEDINTERPRETER_H
