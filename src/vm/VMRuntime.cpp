//===- vm/VMRuntime.cpp - Shared execution-engine substrate -----------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "vm/VMRuntime.h"

#include "ir/Module.h"
#include "support/StringUtils.h"

#include <cctype>

using namespace khaos;

void khaos::computeAddressMap(
    const Module &M, std::map<const Function *, uint64_t> &FuncAddrs,
    std::map<const GlobalVariable *, uint64_t> &GlobalAddrs) {
  uint64_t NextFunc = VMFuncBase;
  for (const auto &F : M.functions()) {
    FuncAddrs[F.get()] = NextFunc;
    NextFunc += VMFuncStride;
  }
  uint64_t Next = VMGlobalBase;
  for (const auto &G : M.globals()) {
    uint64_t Size = G->getValueType()->getStoreSize();
    // 8-byte align every global.
    Next = (Next + 7) & ~7ull;
    GlobalAddrs[G.get()] = Next;
    Next += Size;
  }
}

//===----------------------------------------------------------------------===//
// Memory access
//===----------------------------------------------------------------------===//

bool VMRuntime::loadBytes(uint64_t Addr, void *Out, uint64_t Size) {
  if (!validRange(Addr, Size))
    return trap(formatStr("invalid load of %llu bytes at 0x%llx",
                          (unsigned long long)Size,
                          (unsigned long long)Addr));
  std::memcpy(Out, Mem.data() + Addr, Size);
  return true;
}

bool VMRuntime::storeBytes(uint64_t Addr, const void *In, uint64_t Size) {
  if (!validRange(Addr, Size))
    return trap(formatStr("invalid store of %llu bytes at 0x%llx",
                          (unsigned long long)Size,
                          (unsigned long long)Addr));
  std::memcpy(Mem.data() + Addr, In, Size);
  return true;
}

bool VMRuntime::loadKinded(uint64_t Addr, TypeKind K, Slot &Out) {
  Out.I = 0;
  switch (K) {
  case TypeKind::Int1:
  case TypeKind::Int8: {
    int8_t V = 0;
    if (!loadBytes(Addr, &V, 1))
      return false;
    Out.I = V;
    return true;
  }
  case TypeKind::Int32: {
    int32_t V = 0;
    if (!loadBytes(Addr, &V, 4))
      return false;
    Out.I = V;
    return true;
  }
  case TypeKind::Int64:
  case TypeKind::Pointer: {
    int64_t V = 0;
    if (!loadBytes(Addr, &V, 8))
      return false;
    Out.I = V;
    return true;
  }
  case TypeKind::Float: {
    float V = 0;
    if (!loadBytes(Addr, &V, 4))
      return false;
    Out.F = V;
    return true;
  }
  case TypeKind::Double: {
    double V = 0;
    if (!loadBytes(Addr, &V, 8))
      return false;
    Out.F = V;
    return true;
  }
  default:
    return trap("load of unsupported type");
  }
}

bool VMRuntime::storeKinded(uint64_t Addr, TypeKind K, Slot V) {
  switch (K) {
  case TypeKind::Int1:
  case TypeKind::Int8: {
    int8_t B = static_cast<int8_t>(V.I);
    return storeBytes(Addr, &B, 1);
  }
  case TypeKind::Int32: {
    int32_t W = static_cast<int32_t>(V.I);
    return storeBytes(Addr, &W, 4);
  }
  case TypeKind::Int64:
  case TypeKind::Pointer:
    return storeBytes(Addr, &V.I, 8);
  case TypeKind::Float: {
    float F = static_cast<float>(V.F);
    return storeBytes(Addr, &F, 4);
  }
  case TypeKind::Double:
    return storeBytes(Addr, &V.F, 8);
  default:
    return trap("store of unsupported type");
  }
}

bool VMRuntime::loadTyped(uint64_t Addr, const Type *Ty, Slot &Out) {
  return loadKinded(Addr, Ty->getKind(), Out);
}

bool VMRuntime::storeTyped(uint64_t Addr, const Type *Ty, Slot V) {
  return storeKinded(Addr, Ty->getKind(), V);
}

bool VMRuntime::trap(const std::string &Msg) {
  if (!Trapped) {
    Trapped = true;
    TrapMessage = Msg;
    // Stamp the faulting location so divergence repros are actionable:
    // traps outside function execution (global layout) carry none.
    std::string Fn, Blk;
    currentLocation(Fn, Blk);
    if (!Fn.empty()) {
      TrapFunction = Fn;
      TrapBlock = Blk;
      TrapMessage += " (in " + TrapFunction + ":" +
                     (TrapBlock.empty() ? "?" : TrapBlock) + ")";
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

int64_t VMRuntime::constantValue(const Constant *C) {
  if (const auto *CI = dyn_cast<ConstantInt>(C))
    return CI->getValue();
  if (isa<ConstantNull>(C))
    return 0;
  if (const auto *TF = dyn_cast<ConstantTaggedFunc>(C))
    return static_cast<int64_t>(FuncAddrs[TF->getFunction()] |
                                TF->getTag());
  return 0; // FP handled by caller.
}

bool VMRuntime::layoutGlobals() {
  Mem.assign(Opts.MemoryBytes, 0);

  // Function address space first (tagged constants in initializers need
  // addresses).
  computeAddressMap(M, FuncAddrs, GlobalAddrs);
  for (const auto &Entry : FuncAddrs)
    AddrFuncs[Entry.second] = Entry.first;

  uint64_t Next = VMGlobalBase;
  for (const auto &G : M.globals()) {
    Type *VT = G->getValueType();
    uint64_t Size = VT->getStoreSize();
    Next = GlobalAddrs[G.get()];
    if (Next + Size > Mem.size() / 4)
      return trap("global segment overflow");

    // Write the initializer.
    const std::vector<Constant *> &Init = G->getInitializer();
    if (!Init.empty()) {
      Type *ElemTy = VT;
      uint64_t Stride = VT->getStoreSize();
      if (auto *AT = dyn_cast<ArrayType>(VT)) {
        ElemTy = AT->getElementType();
        Stride = ElemTy->getStoreSize();
      }
      uint64_t Addr = Next;
      for (const Constant *C : Init) {
        Slot V;
        if (const auto *CF = dyn_cast<ConstantFP>(C))
          V.F = CF->getValue();
        else
          V.I = constantValue(C);
        if (!storeTyped(Addr, ElemTy, V))
          return false;
        Addr += Stride;
      }
    }
    Next += Size;
  }

  // Stack after globals, heap in the upper half.
  StackPtr = (Next + 63) & ~63ull;
  HeapPtr = Mem.size() / 2;
  HeapEnd = Mem.size();
  return true;
}

//===----------------------------------------------------------------------===//
// Intrinsics
//===----------------------------------------------------------------------===//

std::string VMRuntime::readCString(uint64_t Addr) {
  std::string Out;
  while (validRange(Addr, 1)) {
    char C = static_cast<char>(Mem[Addr]);
    if (!C)
      return Out;
    Out += C;
    ++Addr;
    if (Out.size() > 1u << 16)
      break;
  }
  trap("unterminated or invalid C string");
  return Out;
}

bool VMRuntime::formatPrintf(const std::string &Fmt,
                             const std::vector<Slot> &Args,
                             const std::vector<const Type *> &ArgTys,
                             std::string &Out) {
  size_t ArgIdx = 0;
  for (size_t I = 0; I < Fmt.size(); ++I) {
    char C = Fmt[I];
    if (C != '%') {
      Out += C;
      continue;
    }
    ++I;
    if (I >= Fmt.size())
      break;
    // Skip width/precision digits and 'l' length modifiers.
    std::string Spec;
    while (I < Fmt.size() && (std::isdigit((unsigned char)Fmt[I]) ||
                              Fmt[I] == '.' || Fmt[I] == '-'))
      Spec += Fmt[I++];
    bool LongMod = false;
    while (I < Fmt.size() && Fmt[I] == 'l') {
      LongMod = true;
      ++I;
    }
    if (I >= Fmt.size())
      break;
    char Conv = Fmt[I];
    if (Conv == '%') {
      Out += '%';
      continue;
    }
    if (ArgIdx >= Args.size())
      return trap("printf: too few arguments");
    Slot A = Args[ArgIdx];
    const Type *ATy =
        ArgIdx < ArgTys.size() ? ArgTys[ArgIdx] : nullptr;
    ++ArgIdx;
    switch (Conv) {
    case 'd':
    case 'i':
      if (LongMod)
        Out += formatStr(("%" + Spec + "lld").c_str(), (long long)A.I);
      else
        Out += formatStr(("%" + Spec + "d").c_str(), (int)A.I);
      break;
    case 'u':
      Out += formatStr(("%" + Spec + "llu").c_str(),
                       (unsigned long long)A.I);
      break;
    case 'x':
      Out += formatStr(("%" + Spec + "llx").c_str(),
                       (unsigned long long)A.I);
      break;
    case 'c':
      Out += static_cast<char>(A.I);
      break;
    case 'f':
    case 'g':
    case 'e': {
      double D = (ATy && ATy->isFloatingPoint()) ? A.F : (double)A.I;
      std::string F(1, Conv);
      Out += formatStr(("%" + Spec + F).c_str(), D);
      break;
    }
    case 's':
      Out += readCString(static_cast<uint64_t>(A.I));
      if (Trapped)
        return false;
      break;
    case 'p':
      Out += formatStr("0x%llx", (unsigned long long)A.I);
      break;
    default:
      return trap(formatStr("printf: unsupported conversion '%%%c'", Conv));
    }
  }
  return true;
}

VMRuntime::Flow VMRuntime::runIntrinsic(const Function *F,
                                        const std::vector<Slot> &Args,
                                        const std::vector<const Type *> &ArgTys) {
  Flow R;
  R.Kind = FlowKind::Return;
  const std::string &Name = F->getName();

  if (Name == "printf") {
    Cost += 20 + 2 * Args.size();
    std::string Fmt = readCString(static_cast<uint64_t>(Args[0].I));
    if (Trapped) {
      R.Kind = FlowKind::Trap;
      return R;
    }
    std::vector<Slot> Rest(Args.begin() + 1, Args.end());
    std::vector<const Type *> RestTys(
        ArgTys.size() > 1 ? std::vector<const Type *>(ArgTys.begin() + 1,
                                                      ArgTys.end())
                          : std::vector<const Type *>());
    std::string Out;
    if (!formatPrintf(Fmt, Rest, RestTys, Out)) {
      R.Kind = FlowKind::Trap;
      return R;
    }
    StdoutBuf += Out;
    R.RetVal.I = static_cast<int64_t>(Out.size());
    return R;
  }
  if (Name == "putchar") {
    Cost += 3;
    StdoutBuf += static_cast<char>(Args[0].I);
    R.RetVal.I = Args[0].I;
    return R;
  }
  if (Name == "puts") {
    Cost += 10;
    StdoutBuf += readCString(static_cast<uint64_t>(Args[0].I));
    StdoutBuf += '\n';
    R.RetVal.I = 0;
    if (Trapped)
      R.Kind = FlowKind::Trap;
    return R;
  }
  if (Name == "strlen") {
    std::string S = readCString(static_cast<uint64_t>(Args[0].I));
    Cost += 2 + S.size() / 4;
    R.RetVal.I = static_cast<int64_t>(S.size());
    if (Trapped)
      R.Kind = FlowKind::Trap;
    return R;
  }
  if (Name == "malloc") {
    Cost += 10;
    uint64_t Size = (static_cast<uint64_t>(Args[0].I) + 15) & ~15ull;
    if (HeapPtr + Size > HeapEnd) {
      trap("out of heap memory");
      R.Kind = FlowKind::Trap;
      return R;
    }
    R.RetVal.I = static_cast<int64_t>(HeapPtr);
    HeapPtr += Size;
    return R;
  }
  if (Name == "free") {
    Cost += 2; // Bump allocator: no-op.
    return R;
  }
  if (Name == "abs") {
    Cost += 2;
    int32_t V = static_cast<int32_t>(Args[0].I);
    R.RetVal.I = V < 0 ? -V : V;
    return R;
  }
  if (Name == "__khaos_throw") {
    Cost += Opts.Costs.Throw;
    R.Kind = FlowKind::Exception;
    R.ExcPayload = Args[0].I;
    return R;
  }
  trap("unknown intrinsic '" + Name + "'");
  R.Kind = FlowKind::Trap;
  return R;
}

//===----------------------------------------------------------------------===//
// Result mapping
//===----------------------------------------------------------------------===//

ExecResult VMRuntime::finishRun(const Flow &R) {
  ExecResult Res;
  Res.Steps = Steps;
  Res.Cost = Cost;
  Res.Stdout = std::move(StdoutBuf);
  switch (R.Kind) {
  case FlowKind::Return:
    Res.Ok = true;
    Res.ExitValue = R.RetVal.I;
    break;
  case FlowKind::Exception:
    Res.Error = formatStr("uncaught exception (payload %lld)",
                          (long long)R.ExcPayload);
    break;
  case FlowKind::LongJmp:
    Res.Error = "longjmp without matching setjmp";
    break;
  default:
    Res.Error = TrapMessage.empty() ? "abnormal termination" : TrapMessage;
    Res.FaultFunction = TrapFunction;
    Res.FaultBlock = TrapBlock;
    break;
  }
  return Res;
}
