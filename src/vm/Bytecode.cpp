//===- vm/Bytecode.cpp - KIR-to-bytecode precompiler ------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include "ir/Module.h"
#include "vm/VMRuntime.h"

#include <cstring>

using namespace khaos;

namespace {

/// How the interpreter must treat a call to \p F. Name checks first, to
/// mirror the reference interpreter's dispatch order exactly.
BCCallKind callKindOf(const Function &F) {
  if (F.getName() == "setjmp" && F.isIntrinsic())
    return BCCallKind::Setjmp;
  if (F.getName() == "longjmp" && F.isIntrinsic())
    return BCCallKind::Longjmp;
  if (F.isIntrinsic() || F.isDeclaration())
    return BCCallKind::Intrinsic;
  return BCCallKind::Normal;
}

/// True when the reference interpreter would assign a register for \p I.
bool producesValue(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Alloca:
  case Opcode::Load:
  case Opcode::BinOp:
  case Opcode::Cmp:
  case Opcode::Cast:
  case Opcode::GEP:
  case Opcode::Select:
  case Opcode::LandingPad:
    return true;
  case Opcode::Call:
  case Opcode::Invoke:
    return I->getType() && !I->getType()->isVoid();
  default:
    return false;
  }
}

struct FunctionDecoder {
  const PrecompileOptions &PO;
  const std::map<const Function *, uint32_t> &FuncIdx;
  const std::map<const Function *, uint64_t> &FuncAddrs;
  const std::map<const GlobalVariable *, uint64_t> &GlobalAddrs;
  BCFunction &BF;

  std::map<const Value *, uint32_t> RegMap;
  std::map<uint64_t, uint32_t> ConstMap;
  std::map<const BasicBlock *, uint32_t> BlockIdx;

  void decode(const Function &F);

  BCInst &emit(BC Op) {
    BF.Code.emplace_back();
    BF.Code.back().Op = Op;
    return BF.Code.back();
  }

  uint32_t constSlot(uint64_t Bits) {
    auto It = ConstMap.find(Bits);
    if (It != ConstMap.end())
      return BF.NumRegs + It->second;
    uint32_t K = static_cast<uint32_t>(BF.ConstPool.size());
    ConstMap.emplace(Bits, K);
    BF.ConstPool.push_back(static_cast<int64_t>(Bits));
    return BF.NumRegs + K;
  }

  uint32_t slotOf(const Value *V) {
    switch (V->getValueKind()) {
    case ValueKind::ConstantInt:
      return constSlot(
          static_cast<uint64_t>(cast<ConstantInt>(V)->getValue()));
    case ValueKind::ConstantFP: {
      double D = cast<ConstantFP>(V)->getValue();
      uint64_t Bits = 0;
      std::memcpy(&Bits, &D, sizeof(Bits));
      return constSlot(Bits);
    }
    case ValueKind::ConstantNull:
      return constSlot(0);
    case ValueKind::ConstantTaggedFunc: {
      const auto *TF = cast<ConstantTaggedFunc>(V);
      return constSlot(addrOf(FuncAddrs, TF->getFunction()) | TF->getTag());
    }
    case ValueKind::GlobalVariable:
      return constSlot(addrOf(GlobalAddrs, cast<GlobalVariable>(V)));
    case ValueKind::Function:
      return constSlot(addrOf(FuncAddrs, cast<Function>(V)));
    case ValueKind::Argument:
    case ValueKind::Instruction: {
      auto It = RegMap.find(V);
      // Verified IR guarantees every use resolves; a reference into another
      // function (malformed IR) reads a zero constant instead.
      if (It == RegMap.end())
        return constSlot(0);
      return It->second;
    }
    }
    return constSlot(0);
  }

  template <typename KeyT>
  static uint64_t addrOf(const std::map<const KeyT *, uint64_t> &Map,
                         const KeyT *K) {
    auto It = Map.find(K);
    return It == Map.end() ? 0 : It->second;
  }

  bool tryFuseCmpBr(const BasicBlock *BB, size_t I);
  bool tryFuseLoadBinStore(const BasicBlock *BB, size_t I);
  void emitInst(const Instruction *I);
  void emitCall(const CallInst *CI);
  void fixupTargets();
};

bool FunctionDecoder::tryFuseCmpBr(const BasicBlock *BB, size_t I) {
  const auto *CI = dyn_cast<CmpInst>(BB->getInst(I));
  if (!CI || CI->getNumUses() != 1)
    return false;
  const auto *BR = dyn_cast<BranchInst>(BB->getInst(I + 1));
  if (!BR || !BR->isConditional() || BR->getCondition() != CI)
    return false;
  BCInst &In = emit(CI->getLHS()->getType()->isFloatingPoint() ? BC::CmpBrF
                                                               : BC::CmpBrI);
  In.Sub = static_cast<uint8_t>(CI->getPredicate());
  In.A = slotOf(CI->getLHS());
  In.B = slotOf(CI->getRHS());
  In.C = BlockIdx[BR->getTrueDest()];
  In.Aux = BlockIdx[BR->getFalseDest()];
  return true;
}

bool FunctionDecoder::tryFuseLoadBinStore(const BasicBlock *BB, size_t I) {
  const auto *LD = dyn_cast<LoadInst>(BB->getInst(I));
  if (!LD || LD->getNumUses() != 1)
    return false;
  const auto *BO = dyn_cast<BinaryInst>(BB->getInst(I + 1));
  if (!BO || BO->isFloatOp() || BO->isDivRem() || BO->getNumUses() != 1)
    return false;
  const auto *ST = dyn_cast<StoreInst>(BB->getInst(I + 2));
  if (!ST || ST->getStoredValue() != BO)
    return false;
  bool LoadIsLHS = BO->getLHS() == LD;
  bool LoadIsRHS = BO->getRHS() == LD;
  if (!LoadIsLHS && !LoadIsRHS)
    return false; // The load's one use is not this binop.
  BCInst &In = emit(BC::LoadBinStoreI);
  In.Sub = static_cast<uint8_t>(BO->getBinOp());
  In.A = slotOf(LD->getPointer());
  In.B = slotOf(LoadIsLHS ? BO->getRHS() : BO->getLHS());
  In.C = slotOf(ST->getPointer());
  In.N = static_cast<uint16_t>(
      (static_cast<uint16_t>(LD->getType()->getKind()) << 8) |
      static_cast<uint8_t>(BO->getType()->getKind()));
  In.Imm = LoadIsRHS ? 1 : 0;
  return true;
}

void FunctionDecoder::emitCall(const CallInst *CI) {
  const auto *IV = dyn_cast<InvokeInst>(CI);
  const Function *Callee = CI->getCalledFunction();
  uint32_t Dest = BCNoReg;
  if (CI->getType() && !CI->getType()->isVoid())
    Dest = RegMap[CI];
  unsigned Argc = CI->getNumArgs();

  if (PO.Superinstructions && !IV && Callee && Argc <= 4 &&
      callKindOf(*Callee) == BCCallKind::Normal) {
    uint32_t S[4] = {0, 0, 0, 0};
    for (unsigned A = 0; A != Argc; ++A)
      S[A] = slotOf(CI->getArg(A));
    BCInst &In = emit(BC::CallDirect4);
    In.A = Dest;
    In.B = FuncIdx.at(Callee);
    In.N = static_cast<uint16_t>(Argc);
    In.C = S[0];
    In.Aux = S[1];
    In.Imm = static_cast<uint64_t>(S[2]) | (static_cast<uint64_t>(S[3]) << 32);
    return;
  }

  uint32_t PoolStart = static_cast<uint32_t>(BF.ArgPool.size());
  for (unsigned A = 0; A != Argc; ++A)
    BF.ArgPool.push_back({slotOf(CI->getArg(A)), CI->getArg(A)->getType()});
  BCInst &In = emit(BC::CallOp);
  In.A = Dest;
  In.N = static_cast<uint16_t>(Argc);
  In.Aux = PoolStart;
  if (Callee) {
    In.B = FuncIdx.at(Callee);
  } else {
    In.Sub |= 2;
    In.B = slotOf(CI->getCallee());
  }
  if (IV) {
    In.Sub |= 1;
    In.C = BlockIdx[IV->getNormalDest()];
    In.Imm = BlockIdx[IV->getUnwindDest()];
  }
}

void FunctionDecoder::emitInst(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Alloca: {
    const auto *AI = cast<AllocaInst>(I);
    BCInst &In = emit(BC::AllocaOp);
    In.A = RegMap[I];
    In.Imm = (AI->getAllocatedType()->getStoreSize() + 7) & ~7ull;
    break;
  }
  case Opcode::Load: {
    BCInst &In = emit(BC::LoadOp);
    In.A = RegMap[I];
    In.B = slotOf(I->getOperand(0));
    In.Sub = static_cast<uint8_t>(I->getType()->getKind());
    break;
  }
  case Opcode::Store: {
    BCInst &In = emit(BC::StoreOp);
    In.A = slotOf(I->getOperand(0));
    In.B = slotOf(I->getOperand(1));
    In.Sub = static_cast<uint8_t>(I->getOperand(0)->getType()->getKind());
    break;
  }
  case Opcode::BinOp: {
    const auto *BO = cast<BinaryInst>(I);
    static const BC OpFor[] = {BC::AddI, BC::SubI,  BC::MulI,  BC::DivI,
                               BC::RemI, BC::AndI,  BC::OrI,   BC::XorI,
                               BC::ShlI, BC::AShrI, BC::LShrI, BC::AddF,
                               BC::SubF, BC::MulF,  BC::DivF};
    BCInst &In = emit(OpFor[static_cast<unsigned>(BO->getBinOp())]);
    In.A = RegMap[I];
    In.B = slotOf(BO->getLHS());
    In.C = slotOf(BO->getRHS());
    In.Sub = static_cast<uint8_t>(I->getType()->getKind());
    break;
  }
  case Opcode::Cmp: {
    const auto *CI = cast<CmpInst>(I);
    BCInst &In = emit(
        CI->getLHS()->getType()->isFloatingPoint() ? BC::CmpFOp : BC::CmpIOp);
    In.A = RegMap[I];
    In.B = slotOf(CI->getLHS());
    In.C = slotOf(CI->getRHS());
    In.Sub = static_cast<uint8_t>(CI->getPredicate());
    break;
  }
  case Opcode::Cast: {
    const auto *CI = cast<CastInst>(I);
    BCInst &In = emit(BC::CastOp);
    In.A = RegMap[I];
    In.B = slotOf(CI->getSource());
    In.Sub = static_cast<uint8_t>(CI->getCastKind());
    In.N = static_cast<uint16_t>(
        (static_cast<uint16_t>(CI->getSource()->getType()->getKind()) << 8) |
        static_cast<uint8_t>(I->getType()->getKind()));
    break;
  }
  case Opcode::GEP: {
    const auto *G = cast<GEPInst>(I);
    BCInst &In = emit(BC::GEPOp);
    In.A = RegMap[I];
    In.B = slotOf(G->getPointer());
    In.C = slotOf(G->getIndex());
    In.Imm = G->getElementSize();
    break;
  }
  case Opcode::Select: {
    BCInst &In = emit(BC::SelectOp);
    In.A = RegMap[I];
    In.B = slotOf(I->getOperand(0));
    In.C = slotOf(I->getOperand(1));
    In.Aux = slotOf(I->getOperand(2));
    break;
  }
  case Opcode::LandingPad: {
    BCInst &In = emit(BC::LandingPadOp);
    In.A = RegMap[I];
    break;
  }
  case Opcode::Call:
  case Opcode::Invoke:
    emitCall(cast<CallInst>(I));
    break;
  case Opcode::Br: {
    const auto *BR = cast<BranchInst>(I);
    if (BR->isConditional()) {
      BCInst &In = emit(BC::BrCond);
      In.A = slotOf(BR->getCondition());
      In.B = BlockIdx[BR->getTrueDest()];
      In.C = BlockIdx[BR->getFalseDest()];
    } else {
      BCInst &In = emit(BC::Jmp);
      In.A = BlockIdx[BR->getSuccessor(0)];
    }
    break;
  }
  case Opcode::Switch: {
    const auto *SW = cast<SwitchInst>(I);
    BCInst &In = emit(BC::SwitchOp);
    In.A = slotOf(SW->getCondition());
    In.B = BlockIdx[SW->getDefaultDest()];
    In.N = static_cast<uint16_t>(SW->getNumCases());
    In.Aux = static_cast<uint32_t>(BF.Cases.size());
    for (unsigned K = 0, E = SW->getNumCases(); K != E; ++K)
      BF.Cases.push_back({SW->getCaseValue(K), BlockIdx[SW->getCaseDest(K)]});
    break;
  }
  case Opcode::Ret: {
    const auto *RI = cast<ReturnInst>(I);
    if (RI->hasReturnValue()) {
      BCInst &In = emit(BC::RetVal);
      In.A = slotOf(RI->getReturnValue());
    } else {
      emit(BC::RetVoid);
    }
    break;
  }
  case Opcode::Throw: {
    BCInst &In = emit(BC::ThrowOp);
    In.A = slotOf(I->getOperand(0));
    break;
  }
  case Opcode::Unreachable:
    emit(BC::UnreachableOp);
    break;
  }
}

void FunctionDecoder::fixupTargets() {
  auto PcOf = [this](uint32_t Blk) { return BF.BlockStartPc[Blk]; };
  for (BCInst &In : BF.Code) {
    switch (In.Op) {
    case BC::Jmp:
      In.A = PcOf(In.A);
      break;
    case BC::BrCond:
      In.B = PcOf(In.B);
      In.C = PcOf(In.C);
      break;
    case BC::CmpBrI:
    case BC::CmpBrF:
      In.C = PcOf(In.C);
      In.Aux = PcOf(In.Aux);
      break;
    case BC::SwitchOp:
      In.B = PcOf(In.B);
      for (uint32_t K = In.Aux, E = In.Aux + In.N; K != E; ++K)
        BF.Cases[K].Target = PcOf(BF.Cases[K].Target);
      break;
    case BC::CallOp:
      if (In.Sub & 1) {
        In.C = PcOf(In.C);
        In.Imm = PcOf(static_cast<uint32_t>(In.Imm));
      }
      break;
    default:
      break;
    }
  }
}

void FunctionDecoder::decode(const Function &F) {
  BF.F = &F;
  BF.Kind = callKindOf(F);
  BF.NumArgs = F.arg_size();
  if (F.isDeclaration()) {
    BF.NumRegs = BF.NumArgs;
    BF.FrameSlots = BF.NumArgs;
    return;
  }

  // Pass A: assign register slots to arguments and every value-producing
  // instruction in layout order. Layout order need not be dominance order,
  // so all slots exist before any operand is resolved.
  uint32_t Next = 0;
  for (unsigned I = 0, E = F.arg_size(); I != E; ++I)
    RegMap[F.getArg(I)] = Next++;
  for (const auto &BB : F.blocks())
    for (size_t I = 0, E = BB->size(); I != E; ++I)
      if (producesValue(BB->getInst(I)))
        RegMap[BB->getInst(I)] = Next++;
  BF.NumRegs = Next;

  uint32_t NB = 0;
  for (const auto &BB : F.blocks()) {
    BlockIdx[BB.get()] = NB++;
    BF.BlockNames.push_back(BB->getName());
  }

  // Pass B: emit, fusing superinstructions over adjacent single-use chains.
  for (const auto &BBp : F.blocks()) {
    const BasicBlock *BB = BBp.get();
    BF.BlockStartPc.push_back(static_cast<uint32_t>(BF.Code.size()));
    size_t E = BB->size();
    size_t I = 0;
    while (I != E) {
      if (PO.Superinstructions) {
        if (I + 1 < E && tryFuseCmpBr(BB, I)) {
          I += 2;
          continue;
        }
        if (I + 2 < E && tryFuseLoadBinStore(BB, I)) {
          I += 3;
          continue;
        }
      }
      emitInst(BB->getInst(I));
      ++I;
    }
    // Where the reference interpreter would walk past the last instruction
    // and trap, trap explicitly.
    if (E == 0 || !BB->getInst(E - 1)->isTerminator()) {
      BCInst &In = emit(BC::FellOff);
      In.A = BlockIdx[BB];
    }
  }

  fixupTargets();
  BF.FrameSlots = BF.NumRegs + static_cast<uint32_t>(BF.ConstPool.size());
}

} // namespace

bool BytecodeModule::funcForAddr(uint64_t Addr, uint32_t &Idx) const {
  if (Addr < VMFuncBase)
    return false;
  uint64_t Off = Addr - VMFuncBase;
  if (Off % VMFuncStride)
    return false;
  if (Off / VMFuncStride >= Funcs.size())
    return false;
  Idx = static_cast<uint32_t>(Off / VMFuncStride);
  return true;
}

void khaos::precompileModule(const Module &M, BytecodeModule &Out,
                             const PrecompileOptions &PO) {
  Out.M = &M;
  Out.Funcs.clear();
  Out.MainIndex = BCNoReg;
  Out.CodeBytes = 0;

  std::map<const Function *, uint64_t> FuncAddrs;
  std::map<const GlobalVariable *, uint64_t> GlobalAddrs;
  computeAddressMap(M, FuncAddrs, GlobalAddrs);

  std::map<const Function *, uint32_t> FuncIdx;
  uint32_t N = 0;
  for (const auto &F : M.functions())
    FuncIdx[F.get()] = N++;

  Out.Funcs.resize(N);
  N = 0;
  for (const auto &F : M.functions()) {
    FunctionDecoder D{PO, FuncIdx, FuncAddrs, GlobalAddrs, Out.Funcs[N],
                      {},  {},      {}};
    D.decode(*F);
    ++N;
  }

  const Function *Main = M.getFunction("main");
  if (Main && !Main->isDeclaration())
    Out.MainIndex = FuncIdx[Main];

  for (const BCFunction &BF : Out.Funcs)
    Out.CodeBytes += BF.Code.size() * sizeof(BCInst) +
                     BF.ConstPool.size() * sizeof(int64_t) +
                     BF.ArgPool.size() * sizeof(BCArg) +
                     BF.Cases.size() * sizeof(BCCase);
}
