//===- vm/Bytecode.h - KIR-to-bytecode precompiler --------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers each Function once into a dense instruction array the precompiled
/// interpreter can execute without ever touching a Value*, use-list, or
/// std::map:
///
///  - operands are resolved at decode time to virtual-register slot indices
///    (arguments first, then every value-producing instruction in layout
///    order) or constant-pool slots appended after the registers;
///  - block targets become instruction indices;
///  - direct callees become function indices; indirect callees resolve at
///    run time with a range/alignment check against the function address
///    space (VMFuncBase + i * VMFuncStride);
///  - types are reduced to the TypeKind needed for memory access and
///    integer narrowing.
///
/// The decoder optionally fuses superinstructions for the hot patterns the
/// workloads execute (cmp+br, load+arith+store, direct call with <= 4
/// args). Fused instructions charge their constituents' steps and costs one
/// by one, so Steps/Cost — and the step at which a step-limit trap fires —
/// are identical with fusion on or off, and identical to the reference
/// interpreter.
///
/// Soundness note: slot-indexed reads assume every use is dominated by its
/// def, which the Verifier enforces. On unverified IR the reference
/// interpreter traps "use of undefined value" where the precompiled engine
/// reads a zero-initialized slot; every module the pipeline runs is
/// verified first.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_VM_BYTECODE_H
#define KHAOS_VM_BYTECODE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace khaos {

class Function;
class Module;
class Type;

/// Bytecode opcodes. Dispatch is direct-threaded (one jump-table entry per
/// opcode), so keep this enum dense and in sync with the handler table in
/// PrecompiledInterpreter.cpp.
enum class BC : uint8_t {
  // A = dest, Imm = 8-byte-aligned size.
  AllocaOp,
  // A = dest, B = pointer, Sub = TypeKind.
  LoadOp,
  // A = value, B = pointer, Sub = TypeKind of the stored value.
  StoreOp,
  // Integer binops: A = dest, B = lhs, C = rhs, Sub = result TypeKind
  // (narrowing).
  AddI,
  SubI,
  MulI,
  DivI,
  RemI,
  AndI,
  OrI,
  XorI,
  ShlI,
  AShrI,
  LShrI,
  // FP binops: A = dest, B = lhs, C = rhs, Sub = result TypeKind.
  AddF,
  SubF,
  MulF,
  DivF,
  // A = dest, B = lhs, C = rhs, Sub = CmpPred.
  CmpIOp,
  CmpFOp,
  // A = dest, B = src, Sub = CastKind, N = (src TypeKind << 8) | dst kind.
  CastOp,
  // A = dest, B = pointer, C = index, Imm = element size.
  GEPOp,
  // A = dest, B = cond, C = true value, Aux = false value.
  SelectOp,
  // A = dest (reads the frame's current exception).
  LandingPadOp,
  // A = target pc.
  Jmp,
  // A = cond, B = true pc, C = false pc.
  BrCond,
  // A = cond, B = default pc, N = case count, Aux = first case index.
  SwitchOp,
  RetVoid,
  // A = value.
  RetVal,
  // A = payload.
  ThrowOp,
  UnreachableOp,
  // Decode-time materialization of the reference interpreter's "fell off
  // the end of block" trap (emitted where a block lacks a terminator).
  // A = block index.
  FellOff,
  // Sub bit0 = invoke (then C = normal pc, Imm = unwind pc), bit1 =
  // indirect (then B = callee slot; else B = callee function index).
  // A = dest (BCNoReg = none), N = arg count, Aux = first BCArg index.
  CallOp,
  // Superinstructions --------------------------------------------------
  // cmp fused with the conditional branch consuming it. Sub = CmpPred,
  // A = lhs, B = rhs, C = true pc, Aux = false pc.
  CmpBrI,
  CmpBrF,
  // load; int binop; store over consecutive single-use values. Sub =
  // BinOp kind, A = load pointer, B = the other operand, C = store
  // pointer, N = (load TypeKind << 8) | result TypeKind, Imm bit0 = the
  // loaded value is the rhs.
  LoadBinStoreI,
  // Direct non-invoke call to a defined function with <= 4 args held
  // inline: B = callee function index, A = dest (BCNoReg = none), N =
  // argc, args in C, Aux, Imm low, Imm high.
  CallDirect4,
  NumOpcodes,
};

/// "No destination register" marker for call results.
constexpr uint32_t BCNoReg = 0xFFFFFFFFu;

/// One decoded instruction. 32 bytes; field meaning per opcode above.
struct BCInst {
  BC Op = BC::UnreachableOp;
  uint8_t Sub = 0;
  uint16_t N = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  uint32_t Aux = 0;
  uint64_t Imm = 0;
};

/// Call argument: source slot plus the static type (intrinsics like printf
/// need it to pick int vs FP formatting).
struct BCArg {
  uint32_t Slot = 0;
  const Type *Ty = nullptr;
};

/// One switch case (value -> target pc after fixup).
struct BCCase {
  int64_t Val = 0;
  uint32_t Target = 0;
};

/// How a call into a function behaves; mirrors the reference interpreter's
/// dispatch order (setjmp/longjmp by name first, then intrinsic or
/// declaration, then a normal KIR body).
enum class BCCallKind : uint8_t { Normal, Intrinsic, Setjmp, Longjmp };

/// One lowered function.
struct BCFunction {
  const Function *F = nullptr;
  BCCallKind Kind = BCCallKind::Normal;
  uint32_t NumArgs = 0;
  /// Register slots: arguments first, then instruction results.
  uint32_t NumRegs = 0;
  /// NumRegs register slots + the constant pool (copied in at entry).
  uint32_t FrameSlots = 0;
  std::vector<BCInst> Code;
  /// Deduplicated 64-bit constant bit patterns; constant k lives in frame
  /// slot NumRegs + k.
  std::vector<int64_t> ConstPool;
  std::vector<BCArg> ArgPool;
  std::vector<BCCase> Cases;
  /// First pc of each block (ascending) and its name, for trap attribution.
  std::vector<uint32_t> BlockStartPc;
  std::vector<std::string> BlockNames;
};

/// Decoder knobs. Superinstructions default on; the A/B step-parity tests
/// turn them off to pin that fusion never changes Steps.
struct PrecompileOptions {
  bool Superinstructions = true;
};

/// A whole module lowered for execution. Holds pointers into \p M (types,
/// functions); the Module must outlive it.
struct BytecodeModule {
  const Module *M = nullptr;
  std::vector<BCFunction> Funcs;
  uint32_t MainIndex = BCNoReg; ///< Index of a defined main(), or BCNoReg.
  uint64_t CodeBytes = 0;       ///< Decoded footprint, for cache accounting.

  /// Resolves a runtime address to a function index; false for anything
  /// outside the function address space or with tag bits set.
  bool funcForAddr(uint64_t Addr, uint32_t &Idx) const;
};

/// Lowers every function of \p M. Total: decode itself cannot fail (the
/// reference interpreter's dynamic traps are materialized as trap
/// instructions).
void precompileModule(const Module &M, BytecodeModule &Out,
                      const PrecompileOptions &PO = {});

} // namespace khaos

#endif // KHAOS_VM_BYTECODE_H
