//===- vm/Interpreter.cpp - KIR interpreter -------------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "ir/Module.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstring>
#include <map>
#include <vector>

using namespace khaos;

namespace {

/// One 64-bit machine slot; typed access is chosen by the IR type.
union Slot {
  int64_t I;
  double F;
};

/// How a nested execution finished.
enum class FlowKind : uint8_t { Normal, Return, Exception, LongJmp, Trap };

struct Flow {
  FlowKind Kind = FlowKind::Normal;
  Slot RetVal{0};
  int64_t ExcPayload = 0;
  uint64_t JmpToken = 0;
  int64_t JmpValue = 0;
};

/// Address-space layout.
constexpr uint64_t GlobalBase = 0x1000;
constexpr uint64_t FuncBase = 0x70000000;
constexpr uint64_t FuncStride = 16;

class VM {
public:
  VM(const Module &M, const ExecOptions &Opts) : M(M), Opts(Opts) {}

  ExecResult run();

private:
  // -- Memory ------------------------------------------------------------
  bool validRange(uint64_t Addr, uint64_t Size) const {
    return Addr >= GlobalBase && Addr + Size <= Mem.size();
  }
  bool loadBytes(uint64_t Addr, void *Out, uint64_t Size) {
    if (!validRange(Addr, Size))
      return trap(formatStr("invalid load of %llu bytes at 0x%llx",
                            (unsigned long long)Size,
                            (unsigned long long)Addr));
    std::memcpy(Out, Mem.data() + Addr, Size);
    return true;
  }
  bool storeBytes(uint64_t Addr, const void *In, uint64_t Size) {
    if (!validRange(Addr, Size))
      return trap(formatStr("invalid store of %llu bytes at 0x%llx",
                            (unsigned long long)Size,
                            (unsigned long long)Addr));
    std::memcpy(Mem.data() + Addr, In, Size);
    return true;
  }
  bool loadTyped(uint64_t Addr, const Type *Ty, Slot &Out);
  bool storeTyped(uint64_t Addr, const Type *Ty, Slot V);

  bool trap(const std::string &Msg) {
    if (!Trapped) {
      Trapped = true;
      TrapMessage = Msg;
      // Stamp the faulting location so divergence repros are actionable:
      // traps outside function execution (global layout) carry none.
      if (CurFunc) {
        TrapFunction = CurFunc->getName();
        if (CurBlock)
          TrapBlock = CurBlock->getName();
        TrapMessage += " (in " + TrapFunction + ":" +
                       (TrapBlock.empty() ? "?" : TrapBlock) + ")";
      }
    }
    return false;
  }

  // -- Setup ---------------------------------------------------------------
  bool layoutGlobals();
  int64_t constantValue(const Constant *C);

  // -- Execution -----------------------------------------------------------
  struct Frame {
    std::map<const Value *, Slot> Regs;
    uint64_t StackMark = 0;
    /// Active setjmp records: token -> (block, index of setjmp call).
    std::map<uint64_t, std::pair<const BasicBlock *, size_t>> Jumps;
  };

  Flow execFunction(const Function *F, const std::vector<Slot> &Args);
  bool evalOperand(Frame &FR, const Value *V, Slot &Out);
  Flow callTarget(const Function *Callee, const std::vector<Slot> &Args,
                  const std::vector<const Type *> &ArgTys,
                  Frame &CallerFrame);
  Flow runIntrinsic(const Function *F, const std::vector<Slot> &Args,
                    const std::vector<const Type *> &ArgTys,
                    Frame &CallerFrame);
  std::string readCString(uint64_t Addr);
  bool formatPrintf(const std::string &Fmt, const std::vector<Slot> &Args,
                    const std::vector<const Type *> &ArgTys,
                    std::string &Out);

  bool charge(uint64_t C) {
    Cost += C;
    ++Steps;
    if (Steps > Opts.MaxSteps)
      return trap("step limit exceeded");
    return true;
  }

  const Module &M;
  const ExecOptions &Opts;
  std::vector<uint8_t> Mem;
  uint64_t StackPtr = 0;
  uint64_t HeapPtr = 0;
  uint64_t HeapEnd = 0;

  std::map<const GlobalVariable *, uint64_t> GlobalAddrs;
  std::map<const Function *, uint64_t> FuncAddrs;
  std::map<uint64_t, const Function *> AddrFuncs;

  std::string StdoutBuf;
  uint64_t Steps = 0;
  uint64_t Cost = 0;
  unsigned CallDepth = 0;
  uint64_t NextJmpToken = 1;
  bool Trapped = false;
  std::string TrapMessage;
  /// Execution cursor for trap attribution (updated by execFunction).
  const Function *CurFunc = nullptr;
  const BasicBlock *CurBlock = nullptr;
  std::string TrapFunction;
  std::string TrapBlock;
};

} // namespace

//===----------------------------------------------------------------------===//
// Memory access
//===----------------------------------------------------------------------===//

bool VM::loadTyped(uint64_t Addr, const Type *Ty, Slot &Out) {
  Out.I = 0;
  switch (Ty->getKind()) {
  case TypeKind::Int1:
  case TypeKind::Int8: {
    int8_t V = 0;
    if (!loadBytes(Addr, &V, 1))
      return false;
    Out.I = V;
    return true;
  }
  case TypeKind::Int32: {
    int32_t V = 0;
    if (!loadBytes(Addr, &V, 4))
      return false;
    Out.I = V;
    return true;
  }
  case TypeKind::Int64:
  case TypeKind::Pointer: {
    int64_t V = 0;
    if (!loadBytes(Addr, &V, 8))
      return false;
    Out.I = V;
    return true;
  }
  case TypeKind::Float: {
    float V = 0;
    if (!loadBytes(Addr, &V, 4))
      return false;
    Out.F = V;
    return true;
  }
  case TypeKind::Double: {
    double V = 0;
    if (!loadBytes(Addr, &V, 8))
      return false;
    Out.F = V;
    return true;
  }
  default:
    return trap("load of unsupported type");
  }
}

bool VM::storeTyped(uint64_t Addr, const Type *Ty, Slot V) {
  switch (Ty->getKind()) {
  case TypeKind::Int1:
  case TypeKind::Int8: {
    int8_t B = static_cast<int8_t>(V.I);
    return storeBytes(Addr, &B, 1);
  }
  case TypeKind::Int32: {
    int32_t W = static_cast<int32_t>(V.I);
    return storeBytes(Addr, &W, 4);
  }
  case TypeKind::Int64:
  case TypeKind::Pointer:
    return storeBytes(Addr, &V.I, 8);
  case TypeKind::Float: {
    float F = static_cast<float>(V.F);
    return storeBytes(Addr, &F, 4);
  }
  case TypeKind::Double:
    return storeBytes(Addr, &V.F, 8);
  default:
    return trap("store of unsupported type");
  }
}

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

int64_t VM::constantValue(const Constant *C) {
  if (const auto *CI = dyn_cast<ConstantInt>(C))
    return CI->getValue();
  if (isa<ConstantNull>(C))
    return 0;
  if (const auto *TF = dyn_cast<ConstantTaggedFunc>(C))
    return static_cast<int64_t>(FuncAddrs[TF->getFunction()] |
                                TF->getTag());
  return 0; // FP handled by caller.
}

bool VM::layoutGlobals() {
  Mem.assign(Opts.MemoryBytes, 0);

  // Function address space first (tagged constants in initializers need
  // addresses).
  uint64_t NextFunc = FuncBase;
  for (const auto &F : M.functions()) {
    FuncAddrs[F.get()] = NextFunc;
    AddrFuncs[NextFunc] = F.get();
    NextFunc += FuncStride;
  }

  uint64_t Next = GlobalBase;
  for (const auto &G : M.globals()) {
    Type *VT = G->getValueType();
    uint64_t Size = VT->getStoreSize();
    // 8-byte align every global.
    Next = (Next + 7) & ~7ull;
    GlobalAddrs[G.get()] = Next;
    if (Next + Size > Mem.size() / 4)
      return trap("global segment overflow");

    // Write the initializer.
    const std::vector<Constant *> &Init = G->getInitializer();
    if (!Init.empty()) {
      Type *ElemTy = VT;
      uint64_t Stride = VT->getStoreSize();
      if (auto *AT = dyn_cast<ArrayType>(VT)) {
        ElemTy = AT->getElementType();
        Stride = ElemTy->getStoreSize();
      }
      uint64_t Addr = Next;
      for (const Constant *C : Init) {
        Slot V;
        if (const auto *CF = dyn_cast<ConstantFP>(C))
          V.F = CF->getValue();
        else
          V.I = constantValue(C);
        if (!storeTyped(Addr, ElemTy, V))
          return false;
        Addr += Stride;
      }
    }
    Next += Size;
  }

  // Stack after globals, heap in the upper half.
  StackPtr = (Next + 63) & ~63ull;
  HeapPtr = Mem.size() / 2;
  HeapEnd = Mem.size();
  return true;
}

//===----------------------------------------------------------------------===//
// Operand evaluation
//===----------------------------------------------------------------------===//

bool VM::evalOperand(Frame &FR, const Value *V, Slot &Out) {
  switch (V->getValueKind()) {
  case ValueKind::ConstantInt:
    Out.I = cast<ConstantInt>(V)->getValue();
    return true;
  case ValueKind::ConstantFP:
    Out.F = cast<ConstantFP>(V)->getValue();
    return true;
  case ValueKind::ConstantNull:
    Out.I = 0;
    return true;
  case ValueKind::ConstantTaggedFunc: {
    const auto *TF = cast<ConstantTaggedFunc>(V);
    Out.I = static_cast<int64_t>(FuncAddrs[TF->getFunction()] |
                                 TF->getTag());
    return true;
  }
  case ValueKind::GlobalVariable:
    Out.I = static_cast<int64_t>(GlobalAddrs[cast<GlobalVariable>(V)]);
    return true;
  case ValueKind::Function:
    Out.I = static_cast<int64_t>(FuncAddrs[cast<Function>(V)]);
    return true;
  case ValueKind::Argument:
  case ValueKind::Instruction: {
    auto It = FR.Regs.find(V);
    if (It == FR.Regs.end())
      return trap("use of undefined value '" + V->getName() + "'");
    Out = It->second;
    return true;
  }
  }
  return trap("unknown operand kind");
}

//===----------------------------------------------------------------------===//
// Intrinsics
//===----------------------------------------------------------------------===//

std::string VM::readCString(uint64_t Addr) {
  std::string Out;
  while (validRange(Addr, 1)) {
    char C = static_cast<char>(Mem[Addr]);
    if (!C)
      return Out;
    Out += C;
    ++Addr;
    if (Out.size() > 1u << 16)
      break;
  }
  trap("unterminated or invalid C string");
  return Out;
}

bool VM::formatPrintf(const std::string &Fmt, const std::vector<Slot> &Args,
                      const std::vector<const Type *> &ArgTys,
                      std::string &Out) {
  size_t ArgIdx = 0;
  for (size_t I = 0; I < Fmt.size(); ++I) {
    char C = Fmt[I];
    if (C != '%') {
      Out += C;
      continue;
    }
    ++I;
    if (I >= Fmt.size())
      break;
    // Skip width/precision digits and 'l' length modifiers.
    std::string Spec;
    while (I < Fmt.size() && (std::isdigit((unsigned char)Fmt[I]) ||
                              Fmt[I] == '.' || Fmt[I] == '-'))
      Spec += Fmt[I++];
    bool LongMod = false;
    while (I < Fmt.size() && Fmt[I] == 'l') {
      LongMod = true;
      ++I;
    }
    if (I >= Fmt.size())
      break;
    char Conv = Fmt[I];
    if (Conv == '%') {
      Out += '%';
      continue;
    }
    if (ArgIdx >= Args.size())
      return trap("printf: too few arguments");
    Slot A = Args[ArgIdx];
    const Type *ATy =
        ArgIdx < ArgTys.size() ? ArgTys[ArgIdx] : nullptr;
    ++ArgIdx;
    switch (Conv) {
    case 'd':
    case 'i':
      if (LongMod)
        Out += formatStr(("%" + Spec + "lld").c_str(), (long long)A.I);
      else
        Out += formatStr(("%" + Spec + "d").c_str(), (int)A.I);
      break;
    case 'u':
      Out += formatStr(("%" + Spec + "llu").c_str(),
                       (unsigned long long)A.I);
      break;
    case 'x':
      Out += formatStr(("%" + Spec + "llx").c_str(),
                       (unsigned long long)A.I);
      break;
    case 'c':
      Out += static_cast<char>(A.I);
      break;
    case 'f':
    case 'g':
    case 'e': {
      double D = (ATy && ATy->isFloatingPoint()) ? A.F : (double)A.I;
      std::string F(1, Conv);
      Out += formatStr(("%" + Spec + F).c_str(), D);
      break;
    }
    case 's':
      Out += readCString(static_cast<uint64_t>(A.I));
      if (Trapped)
        return false;
      break;
    case 'p':
      Out += formatStr("0x%llx", (unsigned long long)A.I);
      break;
    default:
      return trap(formatStr("printf: unsupported conversion '%%%c'", Conv));
    }
  }
  return true;
}

Flow VM::runIntrinsic(const Function *F, const std::vector<Slot> &Args,
                      const std::vector<const Type *> &ArgTys,
                      Frame &CallerFrame) {
  (void)CallerFrame;
  Flow R;
  R.Kind = FlowKind::Return;
  const std::string &Name = F->getName();

  if (Name == "printf") {
    Cost += 20 + 2 * Args.size();
    std::string Fmt = readCString(static_cast<uint64_t>(Args[0].I));
    if (Trapped) {
      R.Kind = FlowKind::Trap;
      return R;
    }
    std::vector<Slot> Rest(Args.begin() + 1, Args.end());
    std::vector<const Type *> RestTys(
        ArgTys.size() > 1 ? std::vector<const Type *>(ArgTys.begin() + 1,
                                                      ArgTys.end())
                          : std::vector<const Type *>());
    std::string Out;
    if (!formatPrintf(Fmt, Rest, RestTys, Out)) {
      R.Kind = FlowKind::Trap;
      return R;
    }
    StdoutBuf += Out;
    R.RetVal.I = static_cast<int64_t>(Out.size());
    return R;
  }
  if (Name == "putchar") {
    Cost += 3;
    StdoutBuf += static_cast<char>(Args[0].I);
    R.RetVal.I = Args[0].I;
    return R;
  }
  if (Name == "puts") {
    Cost += 10;
    StdoutBuf += readCString(static_cast<uint64_t>(Args[0].I));
    StdoutBuf += '\n';
    R.RetVal.I = 0;
    if (Trapped)
      R.Kind = FlowKind::Trap;
    return R;
  }
  if (Name == "strlen") {
    std::string S = readCString(static_cast<uint64_t>(Args[0].I));
    Cost += 2 + S.size() / 4;
    R.RetVal.I = static_cast<int64_t>(S.size());
    if (Trapped)
      R.Kind = FlowKind::Trap;
    return R;
  }
  if (Name == "malloc") {
    Cost += 10;
    uint64_t Size = (static_cast<uint64_t>(Args[0].I) + 15) & ~15ull;
    if (HeapPtr + Size > HeapEnd) {
      trap("out of heap memory");
      R.Kind = FlowKind::Trap;
      return R;
    }
    R.RetVal.I = static_cast<int64_t>(HeapPtr);
    HeapPtr += Size;
    return R;
  }
  if (Name == "free") {
    Cost += 2; // Bump allocator: no-op.
    return R;
  }
  if (Name == "abs") {
    Cost += 2;
    int32_t V = static_cast<int32_t>(Args[0].I);
    R.RetVal.I = V < 0 ? -V : V;
    return R;
  }
  if (Name == "__khaos_throw") {
    Cost += Opts.Costs.Throw;
    R.Kind = FlowKind::Exception;
    R.ExcPayload = Args[0].I;
    return R;
  }
  trap("unknown intrinsic '" + Name + "'");
  R.Kind = FlowKind::Trap;
  return R;
}

//===----------------------------------------------------------------------===//
// Function execution
//===----------------------------------------------------------------------===//

Flow VM::callTarget(const Function *Callee, const std::vector<Slot> &Args,
                    const std::vector<const Type *> &ArgTys,
                    Frame &CallerFrame) {
  if (Callee->isIntrinsic() || Callee->isDeclaration()) {
    // setjmp/longjmp are handled by the caller's instruction loop (they
    // need frame context); everything else is a plain intrinsic.
    return runIntrinsic(Callee, Args, ArgTys, CallerFrame);
  }
  return execFunction(Callee, Args);
}

Flow VM::execFunction(const Function *F, const std::vector<Slot> &Args) {
  Flow Bad;
  Bad.Kind = FlowKind::Trap;
  if (++CallDepth > Opts.MaxCallDepth) {
    trap("call depth limit exceeded");
    --CallDepth;
    return Bad;
  }

  Frame FR;
  FR.StackMark = StackPtr;
  for (unsigned I = 0, E = F->arg_size(); I != E; ++I)
    FR.Regs[F->getArg(I)] = I < Args.size() ? Args[I] : Slot{0};

  const BasicBlock *BB = F->getEntryBlock();
  size_t Idx = 0;
  int64_t CurrentException = 0;

  // Trap-attribution cursor: point at this frame while it executes and
  // restore the caller's position on the way out (calls recurse here).
  const Function *PrevFunc = CurFunc;
  const BasicBlock *PrevBlock = CurBlock;
  CurFunc = F;

  auto Leave = [&](Flow R) {
    StackPtr = FR.StackMark;
    --CallDepth;
    CurFunc = PrevFunc;
    CurBlock = PrevBlock;
    return R;
  };

  while (true) {
    // Keep the trap-attribution cursor current. CurFunc needs no store
    // here: it is set before the loop and restored by every nested
    // execFunction's Leave.
    CurBlock = BB;
    if (Trapped)
      return Leave(Bad);
    if (Idx >= BB->size()) {
      trap("fell off the end of block '" + BB->getName() + "'");
      return Leave(Bad);
    }
    const Instruction *I = BB->getInst(Idx);

    switch (I->getOpcode()) {
    case Opcode::Alloca: {
      if (!charge(Opts.Costs.Alloca))
        return Leave(Bad);
      const auto *AI = cast<AllocaInst>(I);
      uint64_t Size = (AI->getAllocatedType()->getStoreSize() + 7) & ~7ull;
      if (StackPtr + Size > HeapPtr / 2 + Mem.size() / 4) {
        trap("stack overflow");
        return Leave(Bad);
      }
      Slot S;
      S.I = static_cast<int64_t>(StackPtr);
      // Zero the slot: MiniC relies on deterministic memory for the
      // semantic-equality oracle.
      std::memset(Mem.data() + StackPtr, 0, Size);
      StackPtr += Size;
      FR.Regs[I] = S;
      ++Idx;
      break;
    }
    case Opcode::Load: {
      if (!charge(Opts.Costs.Memory))
        return Leave(Bad);
      Slot Ptr, Out;
      if (!evalOperand(FR, I->getOperand(0), Ptr) ||
          !loadTyped(static_cast<uint64_t>(Ptr.I), I->getType(), Out))
        return Leave(Bad);
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Store: {
      if (!charge(Opts.Costs.Memory))
        return Leave(Bad);
      Slot V, Ptr;
      if (!evalOperand(FR, I->getOperand(0), V) ||
          !evalOperand(FR, I->getOperand(1), Ptr) ||
          !storeTyped(static_cast<uint64_t>(Ptr.I),
                      I->getOperand(0)->getType(), V))
        return Leave(Bad);
      ++Idx;
      break;
    }
    case Opcode::BinOp: {
      const auto *BO = cast<BinaryInst>(I);
      uint64_t C = BO->isFloatOp()
                       ? (BO->getBinOp() == BinOp::FDiv ? Opts.Costs.FPDiv
                                                        : Opts.Costs.FPOp)
                       : (BO->isDivRem() ? Opts.Costs.IntDiv
                                         : Opts.Costs.Simple);
      if (!charge(C))
        return Leave(Bad);
      Slot L, R, Out;
      if (!evalOperand(FR, BO->getLHS(), L) ||
          !evalOperand(FR, BO->getRHS(), R))
        return Leave(Bad);
      Out.I = 0;
      switch (BO->getBinOp()) {
      case BinOp::Add:
        Out.I = L.I + R.I;
        break;
      case BinOp::Sub:
        Out.I = L.I - R.I;
        break;
      case BinOp::Mul:
        Out.I = L.I * R.I;
        break;
      case BinOp::SDiv:
      case BinOp::SRem: {
        if (R.I == 0) {
          trap("integer division by zero");
          return Leave(Bad);
        }
        if (L.I == INT64_MIN && R.I == -1) {
          trap("integer division overflow");
          return Leave(Bad);
        }
        Out.I = BO->getBinOp() == BinOp::SDiv ? L.I / R.I : L.I % R.I;
        break;
      }
      case BinOp::And:
        Out.I = L.I & R.I;
        break;
      case BinOp::Or:
        Out.I = L.I | R.I;
        break;
      case BinOp::Xor:
        Out.I = L.I ^ R.I;
        break;
      case BinOp::Shl:
        Out.I = static_cast<int64_t>(static_cast<uint64_t>(L.I)
                                     << (R.I & 63));
        break;
      case BinOp::AShr:
        Out.I = L.I >> (R.I & 63);
        break;
      case BinOp::LShr:
        Out.I = static_cast<int64_t>(static_cast<uint64_t>(L.I) >>
                                     (R.I & 63));
        break;
      case BinOp::FAdd:
        Out.F = L.F + R.F;
        break;
      case BinOp::FSub:
        Out.F = L.F - R.F;
        break;
      case BinOp::FMul:
        Out.F = L.F * R.F;
        break;
      case BinOp::FDiv:
        Out.F = L.F / R.F;
        break;
      }
      // Narrow integer results to the type width.
      Type *Ty = I->getType();
      if (Ty->isInteger() && Ty->getIntegerBitWidth() < 64) {
        switch (Ty->getKind()) {
        case TypeKind::Int1:
          Out.I &= 1;
          break;
        case TypeKind::Int8:
          Out.I = static_cast<int8_t>(Out.I);
          break;
        case TypeKind::Int32:
          Out.I = static_cast<int32_t>(Out.I);
          break;
        default:
          break;
        }
      }
      if (Ty->getKind() == TypeKind::Float)
        Out.F = static_cast<float>(Out.F);
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Cmp: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *CI = cast<CmpInst>(I);
      Slot L, R;
      if (!evalOperand(FR, CI->getLHS(), L) ||
          !evalOperand(FR, CI->getRHS(), R))
        return Leave(Bad);
      bool FP = CI->getLHS()->getType()->isFloatingPoint();
      bool Res = false;
      switch (CI->getPredicate()) {
      case CmpPred::EQ:
        Res = FP ? L.F == R.F : L.I == R.I;
        break;
      case CmpPred::NE:
        Res = FP ? L.F != R.F : L.I != R.I;
        break;
      case CmpPred::SLT:
        Res = FP ? L.F < R.F : L.I < R.I;
        break;
      case CmpPred::SLE:
        Res = FP ? L.F <= R.F : L.I <= R.I;
        break;
      case CmpPred::SGT:
        Res = FP ? L.F > R.F : L.I > R.I;
        break;
      case CmpPred::SGE:
        Res = FP ? L.F >= R.F : L.I >= R.I;
        break;
      }
      Slot Out;
      Out.I = Res ? 1 : 0;
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Cast: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *CI = cast<CastInst>(I);
      Slot V, Out;
      if (!evalOperand(FR, CI->getSource(), V))
        return Leave(Bad);
      Out.I = 0;
      switch (CI->getCastKind()) {
      case CastKind::Trunc:
        switch (I->getType()->getKind()) {
        case TypeKind::Int1:
          Out.I = V.I & 1;
          break;
        case TypeKind::Int8:
          Out.I = static_cast<int8_t>(V.I);
          break;
        case TypeKind::Int32:
          Out.I = static_cast<int32_t>(V.I);
          break;
        default:
          Out.I = V.I;
          break;
        }
        break;
      case CastKind::SExt:
        Out.I = V.I; // Slots already keep the sign-extended value.
        break;
      case CastKind::ZExt: {
        Type *Src = CI->getSource()->getType();
        uint64_t U = static_cast<uint64_t>(V.I);
        switch (Src->getKind()) {
        case TypeKind::Int1:
          U &= 1;
          break;
        case TypeKind::Int8:
          U &= 0xFF;
          break;
        case TypeKind::Int32:
          U &= 0xFFFFFFFF;
          break;
        default:
          break;
        }
        Out.I = static_cast<int64_t>(U);
        break;
      }
      case CastKind::FPToSI:
        Out.I = static_cast<int64_t>(V.F);
        if (I->getType()->getKind() == TypeKind::Int32)
          Out.I = static_cast<int32_t>(Out.I);
        else if (I->getType()->getKind() == TypeKind::Int8)
          Out.I = static_cast<int8_t>(Out.I);
        break;
      case CastKind::SIToFP:
        Out.F = static_cast<double>(V.I);
        if (I->getType()->getKind() == TypeKind::Float)
          Out.F = static_cast<float>(Out.F);
        break;
      case CastKind::FPTrunc:
        Out.F = static_cast<float>(V.F);
        break;
      case CastKind::FPExt:
        Out.F = V.F;
        break;
      case CastKind::Bitcast:
      case CastKind::PtrToInt:
      case CastKind::IntToPtr:
        Out.I = V.I;
        break;
      }
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::GEP: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *G = cast<GEPInst>(I);
      Slot P, N, Out;
      if (!evalOperand(FR, G->getPointer(), P) ||
          !evalOperand(FR, G->getIndex(), N))
        return Leave(Bad);
      Out.I = P.I + N.I * static_cast<int64_t>(G->getElementSize());
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Select: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      Slot C, T, F2;
      if (!evalOperand(FR, I->getOperand(0), C) ||
          !evalOperand(FR, I->getOperand(1), T) ||
          !evalOperand(FR, I->getOperand(2), F2))
        return Leave(Bad);
      FR.Regs[I] = (C.I & 1) ? T : F2;
      ++Idx;
      break;
    }
    case Opcode::LandingPad: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      Slot Out;
      Out.I = CurrentException;
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Call:
    case Opcode::Invoke: {
      const auto *CI = cast<CallInst>(I);
      uint64_t C = Opts.Costs.CallBase;
      if (CI->isIndirect())
        C += Opts.Costs.IndirectExtra;
      if (CI->getNumArgs() > Opts.Costs.RegisterArgs)
        C += (CI->getNumArgs() - Opts.Costs.RegisterArgs) *
             Opts.Costs.StackArg;
      if (!charge(C))
        return Leave(Bad);

      // Resolve the callee.
      const Function *Callee = CI->getCalledFunction();
      if (!Callee) {
        Slot P;
        if (!evalOperand(FR, CI->getCallee(), P))
          return Leave(Bad);
        auto It = AddrFuncs.find(static_cast<uint64_t>(P.I));
        if (It == AddrFuncs.end()) {
          trap(formatStr("indirect call to invalid address 0x%llx",
                         (unsigned long long)P.I));
          return Leave(Bad);
        }
        Callee = It->second;
      }

      std::vector<Slot> CallArgs(CI->getNumArgs());
      std::vector<const Type *> CallArgTys(CI->getNumArgs());
      for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A) {
        if (!evalOperand(FR, CI->getArg(A), CallArgs[A]))
          return Leave(Bad);
        CallArgTys[A] = CI->getArg(A)->getType();
      }

      // setjmp/longjmp need access to this frame.
      Flow Sub;
      if (Callee->getName() == "setjmp" && Callee->isIntrinsic()) {
        Cost += Opts.Costs.SetJmp;
        uint64_t Token = NextJmpToken++;
        // Record the resume point and write the token into the buffer.
        FR.Jumps[Token] = {BB, Idx};
        Slot TokenSlot;
        TokenSlot.I = static_cast<int64_t>(Token);
        if (!storeTyped(static_cast<uint64_t>(CallArgs[0].I),
                        M.getContext().getInt64Type(), TokenSlot))
          return Leave(Bad);
        Sub.Kind = FlowKind::Return;
        Sub.RetVal.I = 0;
      } else if (Callee->getName() == "longjmp" && Callee->isIntrinsic()) {
        Cost += Opts.Costs.LongJmp;
        Slot TokenSlot;
        if (!loadTyped(static_cast<uint64_t>(CallArgs[0].I),
                       M.getContext().getInt64Type(), TokenSlot))
          return Leave(Bad);
        Sub.Kind = FlowKind::LongJmp;
        Sub.JmpToken = static_cast<uint64_t>(TokenSlot.I);
        Sub.JmpValue = CallArgs[1].I ? CallArgs[1].I : 1;
      } else {
        Sub = callTarget(Callee, CallArgs, CallArgTys, FR);
      }

      switch (Sub.Kind) {
      case FlowKind::Trap:
        return Leave(Bad);
      case FlowKind::Return:
      case FlowKind::Normal:
        if (I->getType() && !I->getType()->isVoid())
          FR.Regs[I] = Sub.RetVal;
        if (const auto *IV = dyn_cast<InvokeInst>(I)) {
          BB = IV->getNormalDest();
          Idx = 0;
        } else {
          ++Idx;
        }
        break;
      case FlowKind::Exception:
        if (const auto *IV = dyn_cast<InvokeInst>(I)) {
          CurrentException = Sub.ExcPayload;
          BB = IV->getUnwindDest();
          Idx = 0;
          break;
        }
        return Leave(Sub); // Propagate through plain calls.
      case FlowKind::LongJmp: {
        auto It = FR.Jumps.find(Sub.JmpToken);
        if (It == FR.Jumps.end())
          return Leave(Sub); // Propagate to the setjmp frame.
        // Resume right after the setjmp call with the longjmp value.
        BB = It->second.first;
        Idx = It->second.second;
        const Instruction *SJ = BB->getInst(Idx);
        Slot RV;
        RV.I = Sub.JmpValue;
        FR.Regs[SJ] = RV;
        ++Idx;
        break;
      }
      }
      break;
    }
    case Opcode::Throw: {
      if (!charge(Opts.Costs.Throw))
        return Leave(Bad);
      Slot P;
      if (!evalOperand(FR, I->getOperand(0), P))
        return Leave(Bad);
      Flow R;
      R.Kind = FlowKind::Exception;
      R.ExcPayload = P.I;
      return Leave(R);
    }
    case Opcode::Br: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *BR = cast<BranchInst>(I);
      if (BR->isConditional()) {
        Slot C;
        if (!evalOperand(FR, BR->getCondition(), C))
          return Leave(Bad);
        BB = (C.I & 1) ? BR->getTrueDest() : BR->getFalseDest();
      } else {
        BB = BR->getSuccessor(0);
      }
      Idx = 0;
      break;
    }
    case Opcode::Switch: {
      if (!charge(Opts.Costs.Switch))
        return Leave(Bad);
      const auto *SW = cast<SwitchInst>(I);
      Slot C;
      if (!evalOperand(FR, SW->getCondition(), C))
        return Leave(Bad);
      const BasicBlock *Dest = SW->getDefaultDest();
      for (unsigned K = 0, E = SW->getNumCases(); K != E; ++K)
        if (SW->getCaseValue(K) == C.I) {
          Dest = SW->getCaseDest(K);
          break;
        }
      BB = Dest;
      Idx = 0;
      break;
    }
    case Opcode::Ret: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *RI = cast<ReturnInst>(I);
      Flow R;
      R.Kind = FlowKind::Return;
      if (RI->hasReturnValue() &&
          !evalOperand(FR, RI->getReturnValue(), R.RetVal))
        return Leave(Bad);
      return Leave(R);
    }
    case Opcode::Unreachable:
      trap("reached 'unreachable'");
      return Leave(Bad);
    }
  }
}

ExecResult VM::run() {
  ExecResult Res;
  if (!layoutGlobals()) {
    Res.Error = TrapMessage;
    return Res;
  }
  const Function *Main = M.getFunction("main");
  if (!Main || Main->isDeclaration()) {
    Res.Error = "no main() in module";
    return Res;
  }
  Flow R = execFunction(Main, {});
  Res.Steps = Steps;
  Res.Cost = Cost;
  Res.Stdout = std::move(StdoutBuf);
  switch (R.Kind) {
  case FlowKind::Return:
    Res.Ok = true;
    Res.ExitValue = R.RetVal.I;
    break;
  case FlowKind::Exception:
    Res.Error = formatStr("uncaught exception (payload %lld)",
                          (long long)R.ExcPayload);
    break;
  case FlowKind::LongJmp:
    Res.Error = "longjmp without matching setjmp";
    break;
  default:
    Res.Error = TrapMessage.empty() ? "abnormal termination" : TrapMessage;
    Res.FaultFunction = TrapFunction;
    Res.FaultBlock = TrapBlock;
    break;
  }
  return Res;
}

ExecResult khaos::runModule(const Module &M, const ExecOptions &Opts) {
  return VM(M, Opts).run();
}
