//===- vm/Interpreter.cpp - Reference KIR interpreter ---------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The reference execution engine: a direct walk over the IR, one std::map
// register file per frame. It is deliberately simple — it is the semantic
// oracle the precompiled engine (PrecompiledInterpreter.cpp) is checked
// against, so clarity beats speed here. All machine state and intrinsic
// behavior live in VMRuntime, shared with the other engine.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "ir/Module.h"
#include "support/StringUtils.h"
#include "vm/Bytecode.h"
#include "vm/PrecompiledInterpreter.h"
#include "vm/VMRuntime.h"

#include <cassert>
#include <cstring>
#include <map>
#include <vector>

using namespace khaos;

namespace {

class ReferenceVM final : public VMRuntime {
public:
  ReferenceVM(const Module &M, const ExecOptions &Opts) : VMRuntime(M, Opts) {}

  ExecResult run();

private:
  // -- Execution -----------------------------------------------------------
  struct Frame {
    std::map<const Value *, Slot> Regs;
    uint64_t StackMark = 0;
    /// Active setjmp records: token -> (block, index of setjmp call).
    std::map<uint64_t, std::pair<const BasicBlock *, size_t>> Jumps;
  };

  Flow execFunction(const Function *F, const std::vector<Slot> &Args);
  bool evalOperand(Frame &FR, const Value *V, Slot &Out);
  Flow callTarget(const Function *Callee, const std::vector<Slot> &Args,
                  const std::vector<const Type *> &ArgTys);

  void currentLocation(std::string &Fn, std::string &Blk) const override {
    if (!CurFunc)
      return;
    Fn = CurFunc->getName();
    if (CurBlock)
      Blk = CurBlock->getName();
  }

  /// Execution cursor for trap attribution (updated by execFunction).
  const Function *CurFunc = nullptr;
  const BasicBlock *CurBlock = nullptr;
};

} // namespace

//===----------------------------------------------------------------------===//
// Operand evaluation
//===----------------------------------------------------------------------===//

bool ReferenceVM::evalOperand(Frame &FR, const Value *V, Slot &Out) {
  switch (V->getValueKind()) {
  case ValueKind::ConstantInt:
    Out.I = cast<ConstantInt>(V)->getValue();
    return true;
  case ValueKind::ConstantFP:
    Out.F = cast<ConstantFP>(V)->getValue();
    return true;
  case ValueKind::ConstantNull:
    Out.I = 0;
    return true;
  case ValueKind::ConstantTaggedFunc: {
    const auto *TF = cast<ConstantTaggedFunc>(V);
    Out.I = static_cast<int64_t>(FuncAddrs[TF->getFunction()] |
                                 TF->getTag());
    return true;
  }
  case ValueKind::GlobalVariable:
    Out.I = static_cast<int64_t>(GlobalAddrs[cast<GlobalVariable>(V)]);
    return true;
  case ValueKind::Function:
    Out.I = static_cast<int64_t>(FuncAddrs[cast<Function>(V)]);
    return true;
  case ValueKind::Argument:
  case ValueKind::Instruction: {
    auto It = FR.Regs.find(V);
    if (It == FR.Regs.end())
      return trap("use of undefined value '" + V->getName() + "'");
    Out = It->second;
    return true;
  }
  }
  return trap("unknown operand kind");
}

//===----------------------------------------------------------------------===//
// Function execution
//===----------------------------------------------------------------------===//

VMRuntime::Flow ReferenceVM::callTarget(const Function *Callee,
                                        const std::vector<Slot> &Args,
                                        const std::vector<const Type *> &ArgTys) {
  if (Callee->isIntrinsic() || Callee->isDeclaration()) {
    // setjmp/longjmp are handled by the caller's instruction loop (they
    // need frame context); everything else is a plain intrinsic.
    return runIntrinsic(Callee, Args, ArgTys);
  }
  return execFunction(Callee, Args);
}

VMRuntime::Flow ReferenceVM::execFunction(const Function *F,
                                          const std::vector<Slot> &Args) {
  Flow Bad;
  Bad.Kind = FlowKind::Trap;
  if (++CallDepth > Opts.MaxCallDepth) {
    trap("call depth limit exceeded");
    --CallDepth;
    return Bad;
  }

  Frame FR;
  FR.StackMark = StackPtr;
  for (unsigned I = 0, E = F->arg_size(); I != E; ++I)
    FR.Regs[F->getArg(I)] = I < Args.size() ? Args[I] : Slot{0};

  const BasicBlock *BB = F->getEntryBlock();
  size_t Idx = 0;
  int64_t CurrentException = 0;

  // Trap-attribution cursor: point at this frame while it executes and
  // restore the caller's position on the way out (calls recurse here).
  const Function *PrevFunc = CurFunc;
  const BasicBlock *PrevBlock = CurBlock;
  CurFunc = F;

  auto Leave = [&](Flow R) {
    StackPtr = FR.StackMark;
    --CallDepth;
    CurFunc = PrevFunc;
    CurBlock = PrevBlock;
    return R;
  };

  while (true) {
    // Keep the trap-attribution cursor current. CurFunc needs no store
    // here: it is set before the loop and restored by every nested
    // execFunction's Leave.
    CurBlock = BB;
    if (Trapped)
      return Leave(Bad);
    if (Idx >= BB->size()) {
      trap("fell off the end of block '" + BB->getName() + "'");
      return Leave(Bad);
    }
    const Instruction *I = BB->getInst(Idx);

    switch (I->getOpcode()) {
    case Opcode::Alloca: {
      if (!charge(Opts.Costs.Alloca))
        return Leave(Bad);
      const auto *AI = cast<AllocaInst>(I);
      uint64_t Size = (AI->getAllocatedType()->getStoreSize() + 7) & ~7ull;
      if (StackPtr + Size > HeapPtr / 2 + Mem.size() / 4) {
        trap("stack overflow");
        return Leave(Bad);
      }
      Slot S;
      S.I = static_cast<int64_t>(StackPtr);
      // Zero the slot: MiniC relies on deterministic memory for the
      // semantic-equality oracle.
      std::memset(Mem.data() + StackPtr, 0, Size);
      StackPtr += Size;
      FR.Regs[I] = S;
      ++Idx;
      break;
    }
    case Opcode::Load: {
      if (!charge(Opts.Costs.Memory))
        return Leave(Bad);
      Slot Ptr, Out;
      if (!evalOperand(FR, I->getOperand(0), Ptr) ||
          !loadTyped(static_cast<uint64_t>(Ptr.I), I->getType(), Out))
        return Leave(Bad);
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Store: {
      if (!charge(Opts.Costs.Memory))
        return Leave(Bad);
      Slot V, Ptr;
      if (!evalOperand(FR, I->getOperand(0), V) ||
          !evalOperand(FR, I->getOperand(1), Ptr) ||
          !storeTyped(static_cast<uint64_t>(Ptr.I),
                      I->getOperand(0)->getType(), V))
        return Leave(Bad);
      ++Idx;
      break;
    }
    case Opcode::BinOp: {
      const auto *BO = cast<BinaryInst>(I);
      uint64_t C = BO->isFloatOp()
                       ? (BO->getBinOp() == BinOp::FDiv ? Opts.Costs.FPDiv
                                                        : Opts.Costs.FPOp)
                       : (BO->isDivRem() ? Opts.Costs.IntDiv
                                         : Opts.Costs.Simple);
      if (!charge(C))
        return Leave(Bad);
      Slot L, R, Out;
      if (!evalOperand(FR, BO->getLHS(), L) ||
          !evalOperand(FR, BO->getRHS(), R))
        return Leave(Bad);
      Out.I = 0;
      switch (BO->getBinOp()) {
      case BinOp::Add:
        Out.I = L.I + R.I;
        break;
      case BinOp::Sub:
        Out.I = L.I - R.I;
        break;
      case BinOp::Mul:
        Out.I = L.I * R.I;
        break;
      case BinOp::SDiv:
      case BinOp::SRem: {
        if (R.I == 0) {
          trap("integer division by zero");
          return Leave(Bad);
        }
        if (L.I == INT64_MIN && R.I == -1) {
          trap("integer division overflow");
          return Leave(Bad);
        }
        Out.I = BO->getBinOp() == BinOp::SDiv ? L.I / R.I : L.I % R.I;
        break;
      }
      case BinOp::And:
        Out.I = L.I & R.I;
        break;
      case BinOp::Or:
        Out.I = L.I | R.I;
        break;
      case BinOp::Xor:
        Out.I = L.I ^ R.I;
        break;
      case BinOp::Shl:
        Out.I = static_cast<int64_t>(static_cast<uint64_t>(L.I)
                                     << (R.I & 63));
        break;
      case BinOp::AShr:
        Out.I = L.I >> (R.I & 63);
        break;
      case BinOp::LShr:
        Out.I = static_cast<int64_t>(static_cast<uint64_t>(L.I) >>
                                     (R.I & 63));
        break;
      case BinOp::FAdd:
        Out.F = L.F + R.F;
        break;
      case BinOp::FSub:
        Out.F = L.F - R.F;
        break;
      case BinOp::FMul:
        Out.F = L.F * R.F;
        break;
      case BinOp::FDiv:
        Out.F = L.F / R.F;
        break;
      }
      // Narrow integer results to the type width.
      Type *Ty = I->getType();
      if (Ty->isInteger() && Ty->getIntegerBitWidth() < 64) {
        switch (Ty->getKind()) {
        case TypeKind::Int1:
          Out.I &= 1;
          break;
        case TypeKind::Int8:
          Out.I = static_cast<int8_t>(Out.I);
          break;
        case TypeKind::Int32:
          Out.I = static_cast<int32_t>(Out.I);
          break;
        default:
          break;
        }
      }
      if (Ty->getKind() == TypeKind::Float)
        Out.F = static_cast<float>(Out.F);
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Cmp: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *CI = cast<CmpInst>(I);
      Slot L, R;
      if (!evalOperand(FR, CI->getLHS(), L) ||
          !evalOperand(FR, CI->getRHS(), R))
        return Leave(Bad);
      bool FP = CI->getLHS()->getType()->isFloatingPoint();
      bool Res = false;
      switch (CI->getPredicate()) {
      case CmpPred::EQ:
        Res = FP ? L.F == R.F : L.I == R.I;
        break;
      case CmpPred::NE:
        Res = FP ? L.F != R.F : L.I != R.I;
        break;
      case CmpPred::SLT:
        Res = FP ? L.F < R.F : L.I < R.I;
        break;
      case CmpPred::SLE:
        Res = FP ? L.F <= R.F : L.I <= R.I;
        break;
      case CmpPred::SGT:
        Res = FP ? L.F > R.F : L.I > R.I;
        break;
      case CmpPred::SGE:
        Res = FP ? L.F >= R.F : L.I >= R.I;
        break;
      }
      Slot Out;
      Out.I = Res ? 1 : 0;
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Cast: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *CI = cast<CastInst>(I);
      Slot V, Out;
      if (!evalOperand(FR, CI->getSource(), V))
        return Leave(Bad);
      Out.I = 0;
      switch (CI->getCastKind()) {
      case CastKind::Trunc:
        switch (I->getType()->getKind()) {
        case TypeKind::Int1:
          Out.I = V.I & 1;
          break;
        case TypeKind::Int8:
          Out.I = static_cast<int8_t>(V.I);
          break;
        case TypeKind::Int32:
          Out.I = static_cast<int32_t>(V.I);
          break;
        default:
          Out.I = V.I;
          break;
        }
        break;
      case CastKind::SExt:
        Out.I = V.I; // Slots already keep the sign-extended value.
        break;
      case CastKind::ZExt: {
        Type *Src = CI->getSource()->getType();
        uint64_t U = static_cast<uint64_t>(V.I);
        switch (Src->getKind()) {
        case TypeKind::Int1:
          U &= 1;
          break;
        case TypeKind::Int8:
          U &= 0xFF;
          break;
        case TypeKind::Int32:
          U &= 0xFFFFFFFF;
          break;
        default:
          break;
        }
        Out.I = static_cast<int64_t>(U);
        break;
      }
      case CastKind::FPToSI:
        Out.I = static_cast<int64_t>(V.F);
        if (I->getType()->getKind() == TypeKind::Int32)
          Out.I = static_cast<int32_t>(Out.I);
        else if (I->getType()->getKind() == TypeKind::Int8)
          Out.I = static_cast<int8_t>(Out.I);
        break;
      case CastKind::SIToFP:
        Out.F = static_cast<double>(V.I);
        if (I->getType()->getKind() == TypeKind::Float)
          Out.F = static_cast<float>(Out.F);
        break;
      case CastKind::FPTrunc:
        Out.F = static_cast<float>(V.F);
        break;
      case CastKind::FPExt:
        Out.F = V.F;
        break;
      case CastKind::Bitcast:
      case CastKind::PtrToInt:
      case CastKind::IntToPtr:
        Out.I = V.I;
        break;
      }
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::GEP: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *G = cast<GEPInst>(I);
      Slot P, N, Out;
      if (!evalOperand(FR, G->getPointer(), P) ||
          !evalOperand(FR, G->getIndex(), N))
        return Leave(Bad);
      Out.I = P.I + N.I * static_cast<int64_t>(G->getElementSize());
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Select: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      Slot C, T, F2;
      if (!evalOperand(FR, I->getOperand(0), C) ||
          !evalOperand(FR, I->getOperand(1), T) ||
          !evalOperand(FR, I->getOperand(2), F2))
        return Leave(Bad);
      FR.Regs[I] = (C.I & 1) ? T : F2;
      ++Idx;
      break;
    }
    case Opcode::LandingPad: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      Slot Out;
      Out.I = CurrentException;
      FR.Regs[I] = Out;
      ++Idx;
      break;
    }
    case Opcode::Call:
    case Opcode::Invoke: {
      const auto *CI = cast<CallInst>(I);
      uint64_t C = Opts.Costs.CallBase;
      if (CI->isIndirect())
        C += Opts.Costs.IndirectExtra;
      if (CI->getNumArgs() > Opts.Costs.RegisterArgs)
        C += (CI->getNumArgs() - Opts.Costs.RegisterArgs) *
             Opts.Costs.StackArg;
      if (!charge(C))
        return Leave(Bad);

      // Resolve the callee.
      const Function *Callee = CI->getCalledFunction();
      if (!Callee) {
        Slot P;
        if (!evalOperand(FR, CI->getCallee(), P))
          return Leave(Bad);
        auto It = AddrFuncs.find(static_cast<uint64_t>(P.I));
        if (It == AddrFuncs.end()) {
          trap(formatStr("indirect call to invalid address 0x%llx",
                         (unsigned long long)P.I));
          return Leave(Bad);
        }
        Callee = It->second;
      }

      std::vector<Slot> CallArgs(CI->getNumArgs());
      std::vector<const Type *> CallArgTys(CI->getNumArgs());
      for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A) {
        if (!evalOperand(FR, CI->getArg(A), CallArgs[A]))
          return Leave(Bad);
        CallArgTys[A] = CI->getArg(A)->getType();
      }

      // setjmp/longjmp need access to this frame.
      Flow Sub;
      if (Callee->getName() == "setjmp" && Callee->isIntrinsic()) {
        Cost += Opts.Costs.SetJmp;
        uint64_t Token = NextJmpToken++;
        // Record the resume point and write the token into the buffer.
        FR.Jumps[Token] = {BB, Idx};
        Slot TokenSlot;
        TokenSlot.I = static_cast<int64_t>(Token);
        if (!storeTyped(static_cast<uint64_t>(CallArgs[0].I),
                        M.getContext().getInt64Type(), TokenSlot))
          return Leave(Bad);
        Sub.Kind = FlowKind::Return;
        Sub.RetVal.I = 0;
      } else if (Callee->getName() == "longjmp" && Callee->isIntrinsic()) {
        Cost += Opts.Costs.LongJmp;
        Slot TokenSlot;
        if (!loadTyped(static_cast<uint64_t>(CallArgs[0].I),
                       M.getContext().getInt64Type(), TokenSlot))
          return Leave(Bad);
        Sub.Kind = FlowKind::LongJmp;
        Sub.JmpToken = static_cast<uint64_t>(TokenSlot.I);
        Sub.JmpValue = CallArgs[1].I ? CallArgs[1].I : 1;
      } else {
        Sub = callTarget(Callee, CallArgs, CallArgTys);
      }

      switch (Sub.Kind) {
      case FlowKind::Trap:
        return Leave(Bad);
      case FlowKind::Return:
      case FlowKind::Normal:
        if (I->getType() && !I->getType()->isVoid())
          FR.Regs[I] = Sub.RetVal;
        if (const auto *IV = dyn_cast<InvokeInst>(I)) {
          BB = IV->getNormalDest();
          Idx = 0;
        } else {
          ++Idx;
        }
        break;
      case FlowKind::Exception:
        if (const auto *IV = dyn_cast<InvokeInst>(I)) {
          CurrentException = Sub.ExcPayload;
          BB = IV->getUnwindDest();
          Idx = 0;
          break;
        }
        return Leave(Sub); // Propagate through plain calls.
      case FlowKind::LongJmp: {
        auto It = FR.Jumps.find(Sub.JmpToken);
        if (It == FR.Jumps.end())
          return Leave(Sub); // Propagate to the setjmp frame.
        // Resume right after the setjmp call with the longjmp value.
        BB = It->second.first;
        Idx = It->second.second;
        const Instruction *SJ = BB->getInst(Idx);
        Slot RV;
        RV.I = Sub.JmpValue;
        FR.Regs[SJ] = RV;
        ++Idx;
        break;
      }
      }
      break;
    }
    case Opcode::Throw: {
      if (!charge(Opts.Costs.Throw))
        return Leave(Bad);
      Slot P;
      if (!evalOperand(FR, I->getOperand(0), P))
        return Leave(Bad);
      Flow R;
      R.Kind = FlowKind::Exception;
      R.ExcPayload = P.I;
      return Leave(R);
    }
    case Opcode::Br: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *BR = cast<BranchInst>(I);
      if (BR->isConditional()) {
        Slot C;
        if (!evalOperand(FR, BR->getCondition(), C))
          return Leave(Bad);
        BB = (C.I & 1) ? BR->getTrueDest() : BR->getFalseDest();
      } else {
        BB = BR->getSuccessor(0);
      }
      Idx = 0;
      break;
    }
    case Opcode::Switch: {
      if (!charge(Opts.Costs.Switch))
        return Leave(Bad);
      const auto *SW = cast<SwitchInst>(I);
      Slot C;
      if (!evalOperand(FR, SW->getCondition(), C))
        return Leave(Bad);
      const BasicBlock *Dest = SW->getDefaultDest();
      for (unsigned K = 0, E = SW->getNumCases(); K != E; ++K)
        if (SW->getCaseValue(K) == C.I) {
          Dest = SW->getCaseDest(K);
          break;
        }
      BB = Dest;
      Idx = 0;
      break;
    }
    case Opcode::Ret: {
      if (!charge(Opts.Costs.Simple))
        return Leave(Bad);
      const auto *RI = cast<ReturnInst>(I);
      Flow R;
      R.Kind = FlowKind::Return;
      if (RI->hasReturnValue() &&
          !evalOperand(FR, RI->getReturnValue(), R.RetVal))
        return Leave(Bad);
      return Leave(R);
    }
    case Opcode::Unreachable:
      trap("reached 'unreachable'");
      return Leave(Bad);
    }
  }
}

ExecResult ReferenceVM::run() {
  ExecResult Res;
  if (!layoutGlobals()) {
    Res.Error = TrapMessage;
    return Res;
  }
  const Function *Main = M.getFunction("main");
  if (!Main || Main->isDeclaration()) {
    Res.Error = "no main() in module";
    return Res;
  }
  return finishRun(execFunction(Main, {}));
}

//===----------------------------------------------------------------------===//
// Engine seam
//===----------------------------------------------------------------------===//

const char *khaos::vmEngineName(VMEngine E) {
  switch (E) {
  case VMEngine::Reference:
    return "reference";
  case VMEngine::Precompiled:
    return "precompiled";
  }
  return "unknown";
}

bool khaos::parseVMEngineName(const std::string &Name, VMEngine &Out) {
  if (Name == "reference") {
    Out = VMEngine::Reference;
    return true;
  }
  if (Name == "precompiled") {
    Out = VMEngine::Precompiled;
    return true;
  }
  return false;
}

ExecResult khaos::runModule(const Module &M, const ExecOptions &Opts) {
  if (Opts.Engine == VMEngine::Precompiled) {
    BytecodeModule BM;
    precompileModule(M, BM);
    return runPrecompiled(BM, Opts);
  }
  return ReferenceVM(M, Opts).run();
}
