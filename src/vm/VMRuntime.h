//===- vm/VMRuntime.h - Shared execution-engine substrate -------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State and services shared by every VM execution engine: the byte-addressed
/// memory with its global/stack/heap layout, the function address space,
/// typed loads/stores, VM intrinsics (printf, malloc, ...), step/cost
/// accounting, and trap bookkeeping.
///
/// Engines differ only in how they walk a function body. The reference
/// interpreter (Interpreter.cpp) walks the IR directly; the precompiled
/// interpreter (PrecompiledInterpreter.cpp) runs bytecode produced by
/// Bytecode.h. Both derive from VMRuntime, so a program observes identical
/// addresses, intrinsic behavior, costs, and trap messages under either —
/// the property the cross-VM oracle asserts.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_VM_VMRUNTIME_H
#define KHAOS_VM_VMRUNTIME_H

#include "vm/Interpreter.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace khaos {

class BasicBlock;
class Constant;
class Function;
class GlobalVariable;
class Module;
class Type;
enum class TypeKind : uint8_t;

/// Address-space layout. Identical across engines by construction: function
/// i gets VMFuncBase + i * VMFuncStride in module order, globals are laid
/// out 8-byte aligned from VMGlobalBase in module order.
constexpr uint64_t VMGlobalBase = 0x1000;
constexpr uint64_t VMFuncBase = 0x70000000;
constexpr uint64_t VMFuncStride = 16;

/// Assigns addresses to every function and global of \p M. Pure layout —
/// depends only on the module, not on memory size (overflow is checked when
/// an engine materializes the memory image in layoutGlobals).
void computeAddressMap(const Module &M,
                       std::map<const Function *, uint64_t> &FuncAddrs,
                       std::map<const GlobalVariable *, uint64_t> &GlobalAddrs);

/// Base class holding the machine state of one program execution.
class VMRuntime {
public:
  /// One 64-bit machine slot; typed access is chosen by the IR type.
  union Slot {
    int64_t I;
    double F;
  };

  /// How a nested execution finished.
  enum class FlowKind : uint8_t { Normal, Return, Exception, LongJmp, Trap };

  struct Flow {
    FlowKind Kind = FlowKind::Normal;
    Slot RetVal{0};
    int64_t ExcPayload = 0;
    uint64_t JmpToken = 0;
    int64_t JmpValue = 0;
  };

protected:
  VMRuntime(const Module &M, const ExecOptions &Opts) : M(M), Opts(Opts) {}
  virtual ~VMRuntime() = default;

  /// Where execution currently is, for trap attribution. Engines report
  /// their cursor; empty \p Fn means "not executing a function" (e.g. a
  /// trap during global layout).
  virtual void currentLocation(std::string &Fn, std::string &Blk) const = 0;

  // -- Memory ------------------------------------------------------------
  bool validRange(uint64_t Addr, uint64_t Size) const {
    return Addr >= VMGlobalBase && Addr + Size <= Mem.size();
  }
  bool loadBytes(uint64_t Addr, void *Out, uint64_t Size);
  bool storeBytes(uint64_t Addr, const void *In, uint64_t Size);
  /// Typed access keyed by TypeKind (engines that resolved types at decode
  /// time pass the kind directly).
  bool loadKinded(uint64_t Addr, TypeKind K, Slot &Out);
  bool storeKinded(uint64_t Addr, TypeKind K, Slot V);
  bool loadTyped(uint64_t Addr, const Type *Ty, Slot &Out);
  bool storeTyped(uint64_t Addr, const Type *Ty, Slot V);

  /// Records the first trap with its location suffix; always returns false
  /// so call sites can `return trap(...)`.
  bool trap(const std::string &Msg);

  // -- Setup -------------------------------------------------------------
  /// Materializes the memory image: function/global addresses, initializers,
  /// stack and heap bases. False on trap (overflow / bad initializer).
  bool layoutGlobals();
  int64_t constantValue(const Constant *C);

  // -- Intrinsics --------------------------------------------------------
  Flow runIntrinsic(const Function *F, const std::vector<Slot> &Args,
                    const std::vector<const Type *> &ArgTys);
  std::string readCString(uint64_t Addr);
  bool formatPrintf(const std::string &Fmt, const std::vector<Slot> &Args,
                    const std::vector<const Type *> &ArgTys,
                    std::string &Out);

  // -- Accounting --------------------------------------------------------
  bool charge(uint64_t C) {
    Cost += C;
    ++Steps;
    if (Steps > Opts.MaxSteps)
      return trap("step limit exceeded");
    return true;
  }

  /// Maps a finished top-level Flow to the ExecResult callers see.
  ExecResult finishRun(const Flow &R);

  const Module &M;
  const ExecOptions &Opts;
  std::vector<uint8_t> Mem;
  uint64_t StackPtr = 0;
  uint64_t HeapPtr = 0;
  uint64_t HeapEnd = 0;

  std::map<const GlobalVariable *, uint64_t> GlobalAddrs;
  std::map<const Function *, uint64_t> FuncAddrs;
  std::map<uint64_t, const Function *> AddrFuncs;

  std::string StdoutBuf;
  uint64_t Steps = 0;
  uint64_t Cost = 0;
  unsigned CallDepth = 0;
  uint64_t NextJmpToken = 1;
  bool Trapped = false;
  std::string TrapMessage;
  std::string TrapFunction;
  std::string TrapBlock;
};

} // namespace khaos

#endif // KHAOS_VM_VMRUNTIME_H
