//===- vm/CostModel.h - Dynamic cost model ----------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// x86-64 SysV-flavoured dynamic cost model. The paper measures wall-clock
/// overhead on hardware; we measure dynamic cost in the interpreter with
/// weights that reproduce the *mechanisms* of Khaos's overhead: call/return
/// overhead, register vs stack argument passing (first six arguments ride
/// in registers), division latency, and expensive unwinding.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_VM_COSTMODEL_H
#define KHAOS_VM_COSTMODEL_H

#include <cstdint>

namespace khaos {

/// Cost weights in abstract cycles.
struct CostModel {
  uint64_t Simple = 1;        ///< ALU op, branch, cast, GEP, select.
  uint64_t FPOp = 2;          ///< FP add/sub/mul.
  uint64_t Memory = 2;        ///< Load/store.
  uint64_t IntDiv = 12;       ///< sdiv/srem.
  uint64_t FPDiv = 8;         ///< fdiv.
  uint64_t CallBase = 4;      ///< call + ret + frame setup.
  uint64_t IndirectExtra = 2; ///< Indirect call penalty.
  uint64_t StackArg = 1;      ///< Per argument beyond the 6 register args.
  uint64_t RegisterArgs = 6;  ///< SysV integer register argument count.
  uint64_t Alloca = 1;
  uint64_t Switch = 2;
  uint64_t Throw = 50;        ///< Unwinder invocation.
  uint64_t SetJmp = 10;
  uint64_t LongJmp = 30;
};

} // namespace khaos

#endif // KHAOS_VM_COSTMODEL_H
