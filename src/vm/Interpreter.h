//===- vm/Interpreter.h - KIR interpreter -----------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct interpreter over KIR with a byte-addressed memory, a function
/// address space with 16-byte alignment (so fusion's tagged pointers behave
/// exactly as on hardware), VM intrinsics (printf, malloc, ...), simplified
/// C++ EH (invoke/landingpad/__khaos_throw) and setjmp/longjmp.
///
/// The interpreter serves two roles in the reproduction:
///  1. semantic oracle — obfuscated programs must produce identical stdout
///     and exit values;
///  2. performance substrate — dynamic cost under CostModel stands in for
///     the paper's wall-clock overhead measurements (Figs. 6 and 7).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_VM_INTERPRETER_H
#define KHAOS_VM_INTERPRETER_H

#include "vm/CostModel.h"

#include <cstdint>
#include <string>

namespace khaos {

class Module;

/// Which execution engine runs the program. Both engines produce identical
/// ExecResults (ExitValue, Stdout, Steps, Cost, trap message and fault
/// context) for any verified module; the precompiled engine is the fast
/// default, the reference engine is the semantic oracle the cross-VM checks
/// compare against.
enum class VMEngine : uint8_t {
  Reference,   ///< Direct IR walker (Interpreter.cpp).
  Precompiled, ///< Bytecode + direct-threaded dispatch (Bytecode.h).
};

/// "reference" / "precompiled".
const char *vmEngineName(VMEngine E);
/// Parses a --vm flag value; false if \p Name is not an engine name.
bool parseVMEngineName(const std::string &Name, VMEngine &Out);

/// Interpreter knobs.
struct ExecOptions {
  uint64_t MaxSteps = 200'000'000; ///< Abort runaway programs.
  uint64_t MemoryBytes = 16u << 20;
  unsigned MaxCallDepth = 4000;
  CostModel Costs;
  VMEngine Engine = VMEngine::Precompiled;
};

/// Result of one program execution.
struct ExecResult {
  bool Ok = false;
  /// Trap description when !Ok. Traps raised while executing a function
  /// carry their location as a "(in <function>:<block>)" suffix — the
  /// differential fuzzer's trap-divergence repros need to be actionable
  /// without re-running under a debugger.
  std::string Error;
  std::string FaultFunction; ///< Function executing at the trap ("" = none).
  std::string FaultBlock;    ///< Basic block executing at the trap.
  int64_t ExitValue = 0; ///< main's return value.
  std::string Stdout;    ///< Captured printf/puts/putchar output.
  uint64_t Steps = 0;    ///< Dynamic instruction count.
  uint64_t Cost = 0;     ///< Dynamic cost under the cost model.
};

/// Executes @main() of \p M (which must take no parameters) under
/// Opts.Engine. With VMEngine::Precompiled the module is lowered to
/// bytecode first (use precompileModule + runPrecompiled from Bytecode.h /
/// PrecompiledInterpreter.h to amortize that over repeated runs).
ExecResult runModule(const Module &M, const ExecOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_VM_INTERPRETER_H
