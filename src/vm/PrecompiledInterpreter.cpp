//===- vm/PrecompiledInterpreter.cpp - Direct-threaded engine ---------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Dispatch strategy: on GCC/Clang each opcode handler is a label and
// dispatch is one indirect `goto *table[op]` (direct threading — the
// branch predictor sees one indirect jump per handler instead of a single
// shared switch branch). Defining KHAOS_VM_PORTABLE_DISPATCH selects a
// plain switch loop with identical handler bodies (the OP/NEXT/JUMP macros
// expand differently, the code between them is shared).
//
// Parity discipline: every handler charges exactly the steps/costs the
// reference interpreter charges, in the same order relative to its memory
// effects and trap checks. Superinstructions charge per constituent
// (charge, effect, charge, effect, ...), so a step-limit trap fires at the
// same Steps value with the same partial state under both engines and with
// fusion on or off.
//
//===----------------------------------------------------------------------===//

#include "vm/PrecompiledInterpreter.h"

#include "ir/Module.h"
#include "support/StringUtils.h"
#include "vm/VMRuntime.h"

#include <algorithm>
#include <cstring>

using namespace khaos;

#if defined(__GNUC__) && !defined(KHAOS_VM_PORTABLE_DISPATCH)
#define KHAOS_DIRECT_THREADED 1
#else
#define KHAOS_DIRECT_THREADED 0
#endif

namespace {

inline int64_t narrowInt(int64_t V, TypeKind K) {
  switch (K) {
  case TypeKind::Int1:
    return V & 1;
  case TypeKind::Int8:
    return static_cast<int8_t>(V);
  case TypeKind::Int32:
    return static_cast<int32_t>(V);
  default:
    return V;
  }
}

inline bool cmpInt(CmpPred P, int64_t L, int64_t R) {
  switch (P) {
  case CmpPred::EQ:
    return L == R;
  case CmpPred::NE:
    return L != R;
  case CmpPred::SLT:
    return L < R;
  case CmpPred::SLE:
    return L <= R;
  case CmpPred::SGT:
    return L > R;
  case CmpPred::SGE:
    return L >= R;
  }
  return false;
}

inline bool cmpFP(CmpPred P, double L, double R) {
  switch (P) {
  case CmpPred::EQ:
    return L == R;
  case CmpPred::NE:
    return L != R;
  case CmpPred::SLT:
    return L < R;
  case CmpPred::SLE:
    return L <= R;
  case CmpPred::SGT:
    return L > R;
  case CmpPred::SGE:
    return L >= R;
  }
  return false;
}

/// Name of the block containing \p PC (BlockStartPc is ascending).
const std::string &blockNameAt(const BCFunction &BF, uint32_t PC) {
  auto It = std::upper_bound(BF.BlockStartPc.begin(), BF.BlockStartPc.end(),
                             PC);
  size_t Idx = static_cast<size_t>(It - BF.BlockStartPc.begin()) - 1;
  return BF.BlockNames[Idx];
}

class PrecompiledVM final : public VMRuntime {
public:
  PrecompiledVM(const BytecodeModule &BM, const ExecOptions &Opts)
      : VMRuntime(*BM.M, Opts), BM(BM) {}

  ExecResult run();

private:
  Flow execFunction(uint32_t FnIdx, const Slot *Args, uint32_t NArgs);

  void currentLocation(std::string &Fn, std::string &Blk) const override {
    if (!CurBF)
      return;
    Fn = CurBF->F->getName();
    if (!CurBF->BlockStartPc.empty())
      Blk = blockNameAt(*CurBF, CurPC);
  }

  const BytecodeModule &BM;
  /// One arena for all frames' register slots; frames are [Base, RegTop).
  std::vector<Slot> RegStack;
  size_t RegTop = 0;
  /// Execution cursor for trap attribution.
  const BCFunction *CurBF = nullptr;
  uint32_t CurPC = 0;
};

#if KHAOS_DIRECT_THREADED
#define OP(Name) L_##Name:
#define DISPATCH()                                                             \
  do {                                                                         \
    In = &Code[PC];                                                            \
    CurPC = PC;                                                                \
    goto *JumpTable[static_cast<unsigned>(In->Op)];                            \
  } while (0)
#define NEXT()                                                                 \
  do {                                                                         \
    ++PC;                                                                      \
    DISPATCH();                                                                \
  } while (0)
#define JUMP(Target)                                                           \
  do {                                                                         \
    PC = (Target);                                                             \
    DISPATCH();                                                                \
  } while (0)
#else
#define OP(Name) case BC::Name:
#define NEXT()                                                                 \
  do {                                                                         \
    ++PC;                                                                      \
    goto dispatch_loop;                                                        \
  } while (0)
#define JUMP(Target)                                                           \
  do {                                                                         \
    PC = (Target);                                                             \
    goto dispatch_loop;                                                        \
  } while (0)
#endif

#define CHARGE(Amount)                                                         \
  do {                                                                         \
    if (!charge(Amount))                                                       \
      return Leave(Bad);                                                       \
  } while (0)

VMRuntime::Flow PrecompiledVM::execFunction(uint32_t FnIdx, const Slot *Args,
                                            uint32_t NArgs) {
  Flow Bad;
  Bad.Kind = FlowKind::Trap;
  if (++CallDepth > Opts.MaxCallDepth) {
    trap("call depth limit exceeded");
    --CallDepth;
    return Bad;
  }

  const BCFunction &BF = BM.Funcs[FnIdx];
  const size_t Base = RegTop;
  if (RegStack.size() < Base + BF.FrameSlots)
    RegStack.resize(std::max(RegStack.size() * 2,
                             Base + BF.FrameSlots + 64));
  RegTop = Base + BF.FrameSlots;
  Slot *R = RegStack.data() + Base;
  // Zero registers for determinism (the reference interpreter instead traps
  // on reads of never-written registers, which the Verifier rules out).
  std::memset(static_cast<void *>(R), 0, BF.NumRegs * sizeof(Slot));
  if (NArgs) {
    uint32_t Copy = NArgs < BF.NumArgs ? NArgs : BF.NumArgs;
    std::memcpy(static_cast<void *>(R), Args, Copy * sizeof(Slot));
  }
  if (!BF.ConstPool.empty())
    std::memcpy(static_cast<void *>(R + BF.NumRegs), BF.ConstPool.data(),
                BF.ConstPool.size() * sizeof(Slot));

  const uint64_t StackMark = StackPtr;
  const BCFunction *PrevBF = CurBF;
  const uint32_t PrevPC = CurPC;
  CurBF = &BF;

  int64_t CurrentException = 0;
  /// Active setjmp records: token -> pc of the setjmp call.
  std::vector<std::pair<uint64_t, uint32_t>> JumpRecs;

  auto Leave = [&](Flow Rv) {
    StackPtr = StackMark;
    --CallDepth;
    CurBF = PrevBF;
    CurPC = PrevPC;
    RegTop = Base;
    return Rv;
  };

  const BCInst *Code = BF.Code.data();
  const BCInst *In = Code;
  uint32_t PC = 0;

  Flow LeaveFlow;
  /// Shared disposition of a finished call: 0 = continue at NextPC,
  /// 1 = unwind this frame with LeaveFlow.
  auto HandleCallFlow = [&](const Flow &Sub, const BCInst &CallIn,
                            uint32_t &NextPC) -> int {
    switch (Sub.Kind) {
    case FlowKind::Trap:
      LeaveFlow = Bad;
      return 1;
    case FlowKind::Return:
    case FlowKind::Normal:
      if (CallIn.A != BCNoReg)
        R[CallIn.A] = Sub.RetVal;
      NextPC = (CallIn.Sub & 1) ? CallIn.C : CurPC + 1;
      return 0;
    case FlowKind::Exception:
      if (CallIn.Sub & 1) {
        CurrentException = Sub.ExcPayload;
        NextPC = static_cast<uint32_t>(CallIn.Imm);
        return 0;
      }
      LeaveFlow = Sub; // Propagate through plain calls.
      return 1;
    case FlowKind::LongJmp:
      for (const auto &Rec : JumpRecs) {
        if (Rec.first != Sub.JmpToken)
          continue;
        const uint32_t SJPc = Rec.second;
        const BCInst &SJ = Code[SJPc];
        if (SJ.Sub & 1) {
          // setjmp via invoke: the reference interpreter resumes past the
          // terminator and falls off the block.
          CurPC = SJPc;
          trap("fell off the end of block '" + blockNameAt(BF, SJPc) + "'");
          LeaveFlow = Bad;
          return 1;
        }
        // Resume right after the setjmp call with the longjmp value.
        if (SJ.A != BCNoReg)
          R[SJ.A].I = Sub.JmpValue;
        NextPC = SJPc + 1;
        return 0;
      }
      LeaveFlow = Sub; // Propagate to the setjmp frame.
      return 1;
    }
    LeaveFlow = Bad;
    return 1;
  };

#if KHAOS_DIRECT_THREADED
  // One entry per BC opcode, in declaration order.
  static const void *const JumpTable[] = {
      &&L_AllocaOp,   &&L_LoadOp,     &&L_StoreOp,       &&L_AddI,
      &&L_SubI,       &&L_MulI,       &&L_DivI,          &&L_RemI,
      &&L_AndI,       &&L_OrI,        &&L_XorI,          &&L_ShlI,
      &&L_AShrI,      &&L_LShrI,      &&L_AddF,          &&L_SubF,
      &&L_MulF,       &&L_DivF,       &&L_CmpIOp,        &&L_CmpFOp,
      &&L_CastOp,     &&L_GEPOp,      &&L_SelectOp,      &&L_LandingPadOp,
      &&L_Jmp,        &&L_BrCond,     &&L_SwitchOp,      &&L_RetVoid,
      &&L_RetVal,     &&L_ThrowOp,    &&L_UnreachableOp, &&L_FellOff,
      &&L_CallOp,     &&L_CmpBrI,     &&L_CmpBrF,        &&L_LoadBinStoreI,
      &&L_CallDirect4,
  };
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) ==
                    static_cast<size_t>(BC::NumOpcodes),
                "jump table out of sync with BC");
  DISPATCH();
#else
dispatch_loop:
  In = &Code[PC];
  CurPC = PC;
  switch (In->Op) {
#endif

  OP(AllocaOp) {
    CHARGE(Opts.Costs.Alloca);
    const uint64_t Size = In->Imm;
    if (StackPtr + Size > HeapPtr / 2 + Mem.size() / 4) {
      trap("stack overflow");
      return Leave(Bad);
    }
    R[In->A].I = static_cast<int64_t>(StackPtr);
    // Zero the slot: MiniC relies on deterministic memory for the
    // semantic-equality oracle.
    std::memset(Mem.data() + StackPtr, 0, Size);
    StackPtr += Size;
    NEXT();
  }

  OP(LoadOp) {
    CHARGE(Opts.Costs.Memory);
    if (!loadKinded(static_cast<uint64_t>(R[In->B].I),
                    static_cast<TypeKind>(In->Sub), R[In->A]))
      return Leave(Bad);
    NEXT();
  }

  OP(StoreOp) {
    CHARGE(Opts.Costs.Memory);
    if (!storeKinded(static_cast<uint64_t>(R[In->B].I),
                     static_cast<TypeKind>(In->Sub), R[In->A]))
      return Leave(Bad);
    NEXT();
  }

#define INT_BINOP(Name, Expr)                                                  \
  OP(Name) {                                                                   \
    CHARGE(Opts.Costs.Simple);                                                 \
    const int64_t L = R[In->B].I;                                              \
    const int64_t Rv = R[In->C].I;                                             \
    R[In->A].I = narrowInt((Expr), static_cast<TypeKind>(In->Sub));            \
    NEXT();                                                                    \
  }

  INT_BINOP(AddI, L + Rv)
  INT_BINOP(SubI, L - Rv)
  INT_BINOP(MulI, L * Rv)

  OP(DivI) {
    CHARGE(Opts.Costs.IntDiv);
    const int64_t L = R[In->B].I;
    const int64_t Rv = R[In->C].I;
    if (Rv == 0) {
      trap("integer division by zero");
      return Leave(Bad);
    }
    if (L == INT64_MIN && Rv == -1) {
      trap("integer division overflow");
      return Leave(Bad);
    }
    R[In->A].I = narrowInt(L / Rv, static_cast<TypeKind>(In->Sub));
    NEXT();
  }

  OP(RemI) {
    CHARGE(Opts.Costs.IntDiv);
    const int64_t L = R[In->B].I;
    const int64_t Rv = R[In->C].I;
    if (Rv == 0) {
      trap("integer division by zero");
      return Leave(Bad);
    }
    if (L == INT64_MIN && Rv == -1) {
      trap("integer division overflow");
      return Leave(Bad);
    }
    R[In->A].I = narrowInt(L % Rv, static_cast<TypeKind>(In->Sub));
    NEXT();
  }

  INT_BINOP(AndI, L & Rv)
  INT_BINOP(OrI, L | Rv)
  INT_BINOP(XorI, L ^ Rv)
  INT_BINOP(ShlI, static_cast<int64_t>(static_cast<uint64_t>(L)
                                       << (Rv & 63)))
  INT_BINOP(AShrI, L >> (Rv & 63))
  INT_BINOP(LShrI,
            static_cast<int64_t>(static_cast<uint64_t>(L) >> (Rv & 63)))
#undef INT_BINOP

#define FP_BINOP(Name, CostExpr, Expr)                                         \
  OP(Name) {                                                                   \
    CHARGE(CostExpr);                                                          \
    const double L = R[In->B].F;                                               \
    const double Rv = R[In->C].F;                                              \
    double V = (Expr);                                                         \
    if (static_cast<TypeKind>(In->Sub) == TypeKind::Float)                     \
      V = static_cast<float>(V);                                               \
    R[In->A].F = V;                                                            \
    NEXT();                                                                    \
  }

  FP_BINOP(AddF, Opts.Costs.FPOp, L + Rv)
  FP_BINOP(SubF, Opts.Costs.FPOp, L - Rv)
  FP_BINOP(MulF, Opts.Costs.FPOp, L * Rv)
  FP_BINOP(DivF, Opts.Costs.FPDiv, L / Rv)
#undef FP_BINOP

  OP(CmpIOp) {
    CHARGE(Opts.Costs.Simple);
    R[In->A].I =
        cmpInt(static_cast<CmpPred>(In->Sub), R[In->B].I, R[In->C].I) ? 1 : 0;
    NEXT();
  }

  OP(CmpFOp) {
    CHARGE(Opts.Costs.Simple);
    R[In->A].I =
        cmpFP(static_cast<CmpPred>(In->Sub), R[In->B].F, R[In->C].F) ? 1 : 0;
    NEXT();
  }

  OP(CastOp) {
    CHARGE(Opts.Costs.Simple);
    const Slot V = R[In->B];
    const TypeKind SrcK = static_cast<TypeKind>(In->N >> 8);
    const TypeKind DstK = static_cast<TypeKind>(In->N & 0xFF);
    Slot Out;
    Out.I = 0;
    switch (static_cast<CastKind>(In->Sub)) {
    case CastKind::Trunc:
      switch (DstK) {
      case TypeKind::Int1:
        Out.I = V.I & 1;
        break;
      case TypeKind::Int8:
        Out.I = static_cast<int8_t>(V.I);
        break;
      case TypeKind::Int32:
        Out.I = static_cast<int32_t>(V.I);
        break;
      default:
        Out.I = V.I;
        break;
      }
      break;
    case CastKind::SExt:
      Out.I = V.I; // Slots already keep the sign-extended value.
      break;
    case CastKind::ZExt: {
      uint64_t U = static_cast<uint64_t>(V.I);
      switch (SrcK) {
      case TypeKind::Int1:
        U &= 1;
        break;
      case TypeKind::Int8:
        U &= 0xFF;
        break;
      case TypeKind::Int32:
        U &= 0xFFFFFFFF;
        break;
      default:
        break;
      }
      Out.I = static_cast<int64_t>(U);
      break;
    }
    case CastKind::FPToSI:
      Out.I = static_cast<int64_t>(V.F);
      if (DstK == TypeKind::Int32)
        Out.I = static_cast<int32_t>(Out.I);
      else if (DstK == TypeKind::Int8)
        Out.I = static_cast<int8_t>(Out.I);
      break;
    case CastKind::SIToFP:
      Out.F = static_cast<double>(V.I);
      if (DstK == TypeKind::Float)
        Out.F = static_cast<float>(Out.F);
      break;
    case CastKind::FPTrunc:
      Out.F = static_cast<float>(V.F);
      break;
    case CastKind::FPExt:
      Out.F = V.F;
      break;
    case CastKind::Bitcast:
    case CastKind::PtrToInt:
    case CastKind::IntToPtr:
      Out.I = V.I;
      break;
    }
    R[In->A] = Out;
    NEXT();
  }

  OP(GEPOp) {
    CHARGE(Opts.Costs.Simple);
    R[In->A].I = R[In->B].I + R[In->C].I * static_cast<int64_t>(In->Imm);
    NEXT();
  }

  OP(SelectOp) {
    CHARGE(Opts.Costs.Simple);
    R[In->A] = (R[In->B].I & 1) ? R[In->C] : R[In->Aux];
    NEXT();
  }

  OP(LandingPadOp) {
    CHARGE(Opts.Costs.Simple);
    R[In->A].I = CurrentException;
    NEXT();
  }

  OP(Jmp) {
    CHARGE(Opts.Costs.Simple);
    JUMP(In->A);
  }

  OP(BrCond) {
    CHARGE(Opts.Costs.Simple);
    JUMP((R[In->A].I & 1) ? In->B : In->C);
  }

  OP(SwitchOp) {
    CHARGE(Opts.Costs.Switch);
    const int64_t V = R[In->A].I;
    uint32_t Target = In->B;
    const BCCase *CS = BF.Cases.data() + In->Aux;
    for (uint32_t K = 0, E = In->N; K != E; ++K) {
      if (CS[K].Val == V) {
        Target = CS[K].Target;
        break;
      }
    }
    JUMP(Target);
  }

  OP(RetVoid) {
    CHARGE(Opts.Costs.Simple);
    Flow Rf;
    Rf.Kind = FlowKind::Return;
    return Leave(Rf);
  }

  OP(RetVal) {
    CHARGE(Opts.Costs.Simple);
    Flow Rf;
    Rf.Kind = FlowKind::Return;
    Rf.RetVal = R[In->A];
    return Leave(Rf);
  }

  OP(ThrowOp) {
    CHARGE(Opts.Costs.Throw);
    Flow Ef;
    Ef.Kind = FlowKind::Exception;
    Ef.ExcPayload = R[In->A].I;
    return Leave(Ef);
  }

  OP(UnreachableOp) {
    trap("reached 'unreachable'");
    return Leave(Bad);
  }

  OP(FellOff) {
    trap("fell off the end of block '" + BF.BlockNames[In->A] + "'");
    return Leave(Bad);
  }

  OP(CallOp) {
    const uint32_t Argc = In->N;
    uint64_t Cc = Opts.Costs.CallBase;
    if (In->Sub & 2)
      Cc += Opts.Costs.IndirectExtra;
    if (Argc > Opts.Costs.RegisterArgs)
      Cc += static_cast<uint64_t>(Argc - Opts.Costs.RegisterArgs) *
            Opts.Costs.StackArg;
    CHARGE(Cc);

    uint32_t FnIdx;
    if (In->Sub & 2) {
      const uint64_t Addr = static_cast<uint64_t>(R[In->B].I);
      if (!BM.funcForAddr(Addr, FnIdx)) {
        trap(formatStr("indirect call to invalid address 0x%llx",
                       (unsigned long long)Addr));
        return Leave(Bad);
      }
    } else {
      FnIdx = In->B;
    }

    const BCFunction &Callee = BM.Funcs[FnIdx];
    const BCArg *AP = BF.ArgPool.data() + In->Aux;
    Flow Sub;
    switch (Callee.Kind) {
    case BCCallKind::Setjmp: {
      if (Argc < 1) {
        trap("malformed setjmp call");
        return Leave(Bad);
      }
      Cost += Opts.Costs.SetJmp;
      const uint64_t Token = NextJmpToken++;
      JumpRecs.emplace_back(Token, PC);
      Slot TokenSlot;
      TokenSlot.I = static_cast<int64_t>(Token);
      if (!storeKinded(static_cast<uint64_t>(R[AP[0].Slot].I),
                       TypeKind::Int64, TokenSlot))
        return Leave(Bad);
      Sub.Kind = FlowKind::Return;
      Sub.RetVal.I = 0;
      break;
    }
    case BCCallKind::Longjmp: {
      if (Argc < 2) {
        trap("malformed longjmp call");
        return Leave(Bad);
      }
      Cost += Opts.Costs.LongJmp;
      Slot TokenSlot;
      if (!loadKinded(static_cast<uint64_t>(R[AP[0].Slot].I),
                      TypeKind::Int64, TokenSlot))
        return Leave(Bad);
      Sub.Kind = FlowKind::LongJmp;
      Sub.JmpToken = static_cast<uint64_t>(TokenSlot.I);
      const int64_t JV = R[AP[1].Slot].I;
      Sub.JmpValue = JV ? JV : 1;
      break;
    }
    case BCCallKind::Intrinsic: {
      std::vector<Slot> CallArgs(Argc);
      std::vector<const Type *> CallArgTys(Argc);
      for (uint32_t A2 = 0; A2 != Argc; ++A2) {
        CallArgs[A2] = R[AP[A2].Slot];
        CallArgTys[A2] = AP[A2].Ty;
      }
      Sub = runIntrinsic(Callee.F, CallArgs, CallArgTys);
      break;
    }
    case BCCallKind::Normal: {
      Slot SmallBuf[8];
      std::vector<Slot> BigBuf;
      Slot *ArgBuf = SmallBuf;
      if (Argc > 8) {
        BigBuf.resize(Argc);
        ArgBuf = BigBuf.data();
      }
      for (uint32_t A2 = 0; A2 != Argc; ++A2)
        ArgBuf[A2] = R[AP[A2].Slot];
      Sub = execFunction(FnIdx, ArgBuf, Argc);
      R = RegStack.data() + Base; // The arena may have grown.
      break;
    }
    }

    uint32_t NextPC;
    if (HandleCallFlow(Sub, *In, NextPC))
      return Leave(LeaveFlow);
    JUMP(NextPC);
  }

  OP(CmpBrI) {
    CHARGE(Opts.Costs.Simple); // The cmp.
    const bool Res =
        cmpInt(static_cast<CmpPred>(In->Sub), R[In->A].I, R[In->B].I);
    CHARGE(Opts.Costs.Simple); // The branch.
    JUMP(Res ? In->C : In->Aux);
  }

  OP(CmpBrF) {
    CHARGE(Opts.Costs.Simple);
    const bool Res =
        cmpFP(static_cast<CmpPred>(In->Sub), R[In->A].F, R[In->B].F);
    CHARGE(Opts.Costs.Simple);
    JUMP(Res ? In->C : In->Aux);
  }

  OP(LoadBinStoreI) {
    CHARGE(Opts.Costs.Memory); // The load.
    Slot LV;
    if (!loadKinded(static_cast<uint64_t>(R[In->A].I),
                    static_cast<TypeKind>(In->N >> 8), LV))
      return Leave(Bad);
    CHARGE(Opts.Costs.Simple); // The binop (div/rem are never fused).
    int64_t L, Rv;
    if (In->Imm & 1) {
      L = R[In->B].I;
      Rv = LV.I;
    } else {
      L = LV.I;
      Rv = R[In->B].I;
    }
    int64_t Res = 0;
    switch (static_cast<BinOp>(In->Sub)) {
    case BinOp::Add:
      Res = L + Rv;
      break;
    case BinOp::Sub:
      Res = L - Rv;
      break;
    case BinOp::Mul:
      Res = L * Rv;
      break;
    case BinOp::And:
      Res = L & Rv;
      break;
    case BinOp::Or:
      Res = L | Rv;
      break;
    case BinOp::Xor:
      Res = L ^ Rv;
      break;
    case BinOp::Shl:
      Res = static_cast<int64_t>(static_cast<uint64_t>(L) << (Rv & 63));
      break;
    case BinOp::AShr:
      Res = L >> (Rv & 63);
      break;
    case BinOp::LShr:
      Res = static_cast<int64_t>(static_cast<uint64_t>(L) >> (Rv & 63));
      break;
    default:
      break;
    }
    const TypeKind ResK = static_cast<TypeKind>(In->N & 0xFF);
    Slot SV;
    SV.I = narrowInt(Res, ResK);
    CHARGE(Opts.Costs.Memory); // The store.
    if (!storeKinded(static_cast<uint64_t>(R[In->C].I), ResK, SV))
      return Leave(Bad);
    NEXT();
  }

  OP(CallDirect4) {
    const uint32_t Argc = In->N;
    uint64_t Cc = Opts.Costs.CallBase;
    if (Argc > Opts.Costs.RegisterArgs)
      Cc += static_cast<uint64_t>(Argc - Opts.Costs.RegisterArgs) *
            Opts.Costs.StackArg;
    CHARGE(Cc);
    Slot ArgBuf[4];
    switch (Argc) {
    case 4:
      ArgBuf[3] = R[static_cast<uint32_t>(In->Imm >> 32)];
      [[fallthrough]];
    case 3:
      ArgBuf[2] = R[static_cast<uint32_t>(In->Imm)];
      [[fallthrough]];
    case 2:
      ArgBuf[1] = R[In->Aux];
      [[fallthrough]];
    case 1:
      ArgBuf[0] = R[In->C];
      break;
    default:
      break;
    }
    Flow Sub = execFunction(In->B, ArgBuf, Argc);
    R = RegStack.data() + Base; // The arena may have grown.
    uint32_t NextPC;
    if (HandleCallFlow(Sub, *In, NextPC))
      return Leave(LeaveFlow);
    JUMP(NextPC);
  }

#if !KHAOS_DIRECT_THREADED
  default:
    break;
  }
  trap("invalid bytecode opcode");
  return Leave(Bad);
#endif
}

#undef OP
#undef DISPATCH
#undef NEXT
#undef JUMP
#undef CHARGE

ExecResult PrecompiledVM::run() {
  ExecResult Res;
  if (!layoutGlobals()) {
    Res.Error = TrapMessage;
    return Res;
  }
  if (BM.MainIndex == BCNoReg) {
    Res.Error = "no main() in module";
    return Res;
  }
  RegStack.resize(4096);
  return finishRun(execFunction(BM.MainIndex, nullptr, 0));
}

} // namespace

ExecResult khaos::runPrecompiled(const BytecodeModule &BM,
                                 const ExecOptions &Opts) {
  return PrecompiledVM(BM, Opts).run();
}
