//===- frontend/AST.h - MiniC abstract syntax tree --------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Untyped AST produced by the parser. Type checking happens during IR
/// generation (MiniC's type system is small enough that a separate sema
/// pass would only duplicate the conversion logic).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_FRONTEND_AST_H
#define KHAOS_FRONTEND_AST_H

#include "frontend/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace khaos {
namespace minic {

/// Base scalar categories of MiniC.
enum class BaseType : uint8_t {
  Void,
  Char,   // i8
  Int,    // i32
  Long,   // i64
  Float,  // f32
  Double, // f64
};

struct FuncSig;

/// A MiniC type: base scalar, pointer depth, optional array dimension and
/// optional function-pointer signature. `Sig != null` means "pointer to
/// function Sig" (with PtrDepth extra indirections on top).
struct CType {
  BaseType Base = BaseType::Int;
  int PtrDepth = 0;
  int64_t ArraySize = -1; ///< -1: not an array.
  std::shared_ptr<FuncSig> Sig;

  bool isArray() const { return ArraySize >= 0; }
  bool isPointerLike() const { return PtrDepth > 0 || Sig != nullptr; }
  bool isVoid() const {
    return Base == BaseType::Void && !isPointerLike() && !isArray();
  }

  /// The type after array-to-pointer decay.
  CType decayed() const {
    if (!isArray())
      return *this;
    CType T = *this;
    T.ArraySize = -1;
    ++T.PtrDepth;
    return T;
  }
  /// The pointee type; requires isPointerLike() or isArray().
  CType pointee() const {
    CType T = *this;
    if (T.isArray()) {
      T.ArraySize = -1;
      return T;
    }
    if (T.PtrDepth > 0) {
      --T.PtrDepth;
      return T;
    }
    return T; // Function "pointee" — callers special-case Sig.
  }

  static CType scalar(BaseType B) {
    CType T;
    T.Base = B;
    return T;
  }
  static CType pointerTo(CType Inner) {
    ++Inner.PtrDepth;
    return Inner;
  }
};

/// Function signature for function-pointer types and declarations.
struct FuncSig {
  CType Ret;
  std::vector<CType> Params;
  bool VarArg = false;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  StringLit,
  VarRef,
  Unary,
  Binary,
  Assign,
  Call,
  Index,
  Cast,
  Conditional,
  IncDec,
};

/// Base expression node.
struct Expr {
  explicit Expr(ExprKind Kind, int Line) : Kind(Kind), Line(Line) {}
  virtual ~Expr() = default;
  ExprKind Kind;
  int Line;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr(int64_t V, bool IsLong, bool IsChar, int Line)
      : Expr(ExprKind::IntLit, Line), Value(V), IsLong(IsLong),
        IsChar(IsChar) {}
  int64_t Value;
  bool IsLong;
  bool IsChar;
};

struct FloatLitExpr : Expr {
  FloatLitExpr(double V, bool IsFloat, int Line)
      : Expr(ExprKind::FloatLit, Line), Value(V), IsFloat(IsFloat) {}
  double Value;
  bool IsFloat; ///< f suffix => float, else double.
};

struct StringLitExpr : Expr {
  StringLitExpr(std::string V, int Line)
      : Expr(ExprKind::StringLit, Line), Value(std::move(V)) {}
  std::string Value;
};

struct VarRefExpr : Expr {
  VarRefExpr(std::string Name, int Line)
      : Expr(ExprKind::VarRef, Line), Name(std::move(Name)) {}
  std::string Name;
};

enum class UnaryOp : uint8_t { Neg, Not, BitNot, Deref, AddrOf };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp Op, ExprPtr Sub, int Line)
      : Expr(ExprKind::Unary, Line), Op(Op), Sub(std::move(Sub)) {}
  UnaryOp Op;
  ExprPtr Sub;
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LogicalAnd,
  LogicalOr,
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp Op, ExprPtr L, ExprPtr R, int Line)
      : Expr(ExprKind::Binary, Line), Op(Op), LHS(std::move(L)),
        RHS(std::move(R)) {}
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

/// Assignment; Op is BinaryOp::Add etc. for compound assignment, or
/// nullopt-like `Plain` for '='.
struct AssignExpr : Expr {
  AssignExpr(ExprPtr L, ExprPtr R, int CompoundOp, int Line)
      : Expr(ExprKind::Assign, Line), LHS(std::move(L)), RHS(std::move(R)),
        CompoundOp(CompoundOp) {}
  ExprPtr LHS, RHS;
  int CompoundOp; ///< -1 for plain '=', else a BinaryOp value.
};

struct CallExpr : Expr {
  CallExpr(ExprPtr Callee, std::vector<ExprPtr> Args, int Line)
      : Expr(ExprKind::Call, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
};

struct IndexExpr : Expr {
  IndexExpr(ExprPtr Base, ExprPtr Idx, int Line)
      : Expr(ExprKind::Index, Line), Base(std::move(Base)),
        Idx(std::move(Idx)) {}
  ExprPtr Base, Idx;
};

struct CastExpr : Expr {
  CastExpr(CType To, ExprPtr Sub, int Line)
      : Expr(ExprKind::Cast, Line), To(To), Sub(std::move(Sub)) {}
  CType To;
  ExprPtr Sub;
};

struct ConditionalExpr : Expr {
  ConditionalExpr(ExprPtr C, ExprPtr T, ExprPtr F, int Line)
      : Expr(ExprKind::Conditional, Line), Cond(std::move(C)),
        TrueE(std::move(T)), FalseE(std::move(F)) {}
  ExprPtr Cond, TrueE, FalseE;
};

struct IncDecExpr : Expr {
  IncDecExpr(bool IsInc, bool IsPrefix, ExprPtr Sub, int Line)
      : Expr(ExprKind::IncDec, Line), IsInc(IsInc), IsPrefix(IsPrefix),
        Sub(std::move(Sub)) {}
  bool IsInc, IsPrefix;
  ExprPtr Sub;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  ExprStmt,
  Decl,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  Switch,
  Try,
  Throw,
  Goto,
  Label,
};

struct Stmt {
  explicit Stmt(StmtKind Kind, int Line) : Kind(Kind), Line(Line) {}
  virtual ~Stmt() = default;
  StmtKind Kind;
  int Line;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  explicit BlockStmt(int Line) : Stmt(StmtKind::Block, Line) {}
  std::vector<StmtPtr> Stmts;
};

struct ExprStmt : Stmt {
  ExprStmt(ExprPtr E, int Line) : Stmt(StmtKind::ExprStmt, Line),
                                  E(std::move(E)) {}
  ExprPtr E; ///< Null for the empty statement.
};

/// One local declaration (possibly an array) with an optional initializer.
struct DeclStmt : Stmt {
  DeclStmt(CType Ty, std::string Name, ExprPtr Init, int Line)
      : Stmt(StmtKind::Decl, Line), Ty(Ty), Name(std::move(Name)),
        Init(std::move(Init)) {}
  CType Ty;
  std::string Name;
  ExprPtr Init; ///< Null when uninitialized.
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr C, StmtPtr T, StmtPtr E, int Line)
      : Stmt(StmtKind::If, Line), Cond(std::move(C)), Then(std::move(T)),
        Else(std::move(E)) {}
  ExprPtr Cond;
  StmtPtr Then, Else; ///< Else may be null.
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr C, StmtPtr B, int Line)
      : Stmt(StmtKind::While, Line), Cond(std::move(C)),
        Body(std::move(B)) {}
  ExprPtr Cond;
  StmtPtr Body;
};

struct DoWhileStmt : Stmt {
  DoWhileStmt(StmtPtr B, ExprPtr C, int Line)
      : Stmt(StmtKind::DoWhile, Line), Body(std::move(B)),
        Cond(std::move(C)) {}
  StmtPtr Body;
  ExprPtr Cond;
};

struct ForStmt : Stmt {
  ForStmt(int Line) : Stmt(StmtKind::For, Line) {}
  StmtPtr Init;  ///< Decl or expression statement; may be null.
  ExprPtr Cond;  ///< May be null (infinite).
  ExprPtr Step;  ///< May be null.
  StmtPtr Body;
};

struct ReturnStmt : Stmt {
  ReturnStmt(ExprPtr V, int Line)
      : Stmt(StmtKind::Return, Line), Value(std::move(V)) {}
  ExprPtr Value; ///< Null for void return.
};

struct BreakStmt : Stmt {
  explicit BreakStmt(int Line) : Stmt(StmtKind::Break, Line) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(int Line) : Stmt(StmtKind::Continue, Line) {}
};

struct SwitchCase {
  bool IsDefault = false;
  int64_t Value = 0;
  std::vector<StmtPtr> Body; ///< Falls through to the next case.
};

struct SwitchStmt : Stmt {
  SwitchStmt(ExprPtr C, int Line)
      : Stmt(StmtKind::Switch, Line), Cond(std::move(C)) {}
  ExprPtr Cond;
  std::vector<SwitchCase> Cases;
};

struct TryStmt : Stmt {
  TryStmt(StmtPtr B, std::string CatchVar, StmtPtr H, int Line)
      : Stmt(StmtKind::Try, Line), Body(std::move(B)),
        CatchVar(std::move(CatchVar)), Handler(std::move(H)) {}
  StmtPtr Body;
  std::string CatchVar; ///< Catches `int CatchVar`.
  StmtPtr Handler;
};

struct ThrowStmt : Stmt {
  ThrowStmt(ExprPtr V, int Line)
      : Stmt(StmtKind::Throw, Line), Value(std::move(V)) {}
  ExprPtr Value;
};

struct GotoStmt : Stmt {
  GotoStmt(std::string Label, int Line)
      : Stmt(StmtKind::Goto, Line), Label(std::move(Label)) {}
  std::string Label;
};

/// `Name: <stmt>` — a labelled statement. The label is function-scoped,
/// like C.
struct LabelStmt : Stmt {
  LabelStmt(std::string Name, StmtPtr Body, int Line)
      : Stmt(StmtKind::Label, Line), Name(std::move(Name)),
        Body(std::move(Body)) {}
  std::string Name;
  StmtPtr Body;
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

struct FunctionDecl {
  std::string Name;
  FuncSig Sig;
  std::vector<std::string> ParamNames;
  StmtPtr Body; ///< Null for extern declarations.
  bool IsExtern = false;
  bool IsExported = false;
  int Line = 0;
};

struct GlobalDecl {
  CType Ty;
  std::string Name;
  std::vector<ExprPtr> Init; ///< Literal initializers ({..} or single).
  int Line = 0;
};

/// A parsed translation unit.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

} // namespace minic
} // namespace khaos

#endif // KHAOS_FRONTEND_AST_H
