//===- frontend/Lexer.h - MiniC lexer ---------------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniC, the C subset the workload generators and examples
/// are written in. MiniC covers the constructs Khaos's evaluation needs:
/// scalars, pointers, arrays, function pointers, varargs externs, switch,
/// try/catch/throw (simplified EH) and setjmp/longjmp builtins.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_FRONTEND_LEXER_H
#define KHAOS_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

/// Token kinds. One enumerator per punctuator/keyword keeps the parser a
/// plain switch.
enum class Tok : uint8_t {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  // Keywords.
  KwVoid,
  KwChar,
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwGoto,
  KwSwitch,
  KwCase,
  KwDefault,
  KwExtern,
  KwTry,
  KwCatch,
  KwThrow,
  KwExport,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Colon,
  Question,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Tilde,
  Bang,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  Ellipsis,
};

/// One lexed token.
struct Token {
  Tok Kind = Tok::End;
  std::string Text;   ///< Identifier / string contents.
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  bool IsLongLiteral = false;  ///< 42L
  bool IsFloatLiteral = false; ///< 1.0f (vs double)
  int Line = 0;
};

/// Lexes \p Source; on malformed input records a message in \p Error and
/// returns the tokens produced so far.
std::vector<Token> lexSource(const std::string &Source, std::string &Error);

} // namespace khaos

#endif // KHAOS_FRONTEND_LEXER_H
