//===- frontend/Lexer.cpp - MiniC lexer ----------------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <map>

using namespace khaos;

static const std::map<std::string, Tok> &keywordTable() {
  static const std::map<std::string, Tok> Table = {
      {"void", Tok::KwVoid},       {"char", Tok::KwChar},
      {"int", Tok::KwInt},         {"long", Tok::KwLong},
      {"float", Tok::KwFloat},     {"double", Tok::KwDouble},
      {"if", Tok::KwIf},           {"else", Tok::KwElse},
      {"while", Tok::KwWhile},     {"for", Tok::KwFor},
      {"do", Tok::KwDo},           {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
      {"goto", Tok::KwGoto},
      {"switch", Tok::KwSwitch},   {"case", Tok::KwCase},
      {"default", Tok::KwDefault}, {"extern", Tok::KwExtern},
      {"try", Tok::KwTry},         {"catch", Tok::KwCatch},
      {"throw", Tok::KwThrow},     {"__export", Tok::KwExport},
  };
  return Table;
}

namespace {

class LexerImpl {
public:
  LexerImpl(const std::string &Source, std::string &Error)
      : Src(Source), Error(Error) {}

  std::vector<Token> run();

private:
  char peek(size_t Off = 0) const {
    return Pos + Off < Src.size() ? Src[Pos + Off] : '\0';
  }
  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n')
      ++Line;
    return C;
  }
  bool match(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatStr("line %d: %s", Line, Msg.c_str());
  }

  Token makeTok(Tok K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    return T;
  }

  void skipWhitespaceAndComments();
  Token lexNumber();
  Token lexIdentifier();
  Token lexCharLiteral();
  Token lexStringLiteral();
  char lexEscape();

  const std::string &Src;
  std::string &Error;
  size_t Pos = 0;
  int Line = 1;
};

} // namespace

void LexerImpl::skipWhitespaceAndComments() {
  while (true) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (peek() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!peek()) {
        fail("unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token LexerImpl::lexNumber() {
  Token T = makeTok(Tok::IntLiteral);
  std::string Digits;
  bool IsFloat = false;
  bool IsHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    IsHex = true;
    advance();
    advance();
    while (std::isxdigit((unsigned char)peek()))
      Digits += advance();
    T.IntValue = static_cast<int64_t>(std::stoull(Digits, nullptr, 16));
    if (match('l') || match('L'))
      T.IsLongLiteral = true;
    return T;
  }
  while (std::isdigit((unsigned char)peek()))
    Digits += advance();
  if (peek() == '.' && std::isdigit((unsigned char)peek(1))) {
    IsFloat = true;
    Digits += advance();
    while (std::isdigit((unsigned char)peek()))
      Digits += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    IsFloat = true;
    Digits += advance();
    if (peek() == '+' || peek() == '-')
      Digits += advance();
    while (std::isdigit((unsigned char)peek()))
      Digits += advance();
  }
  if (IsFloat) {
    T.Kind = Tok::FloatLiteral;
    T.FloatValue = std::stod(Digits);
    if (match('f') || match('F'))
      T.IsFloatLiteral = true;
    return T;
  }
  (void)IsHex;
  T.IntValue = static_cast<int64_t>(std::stoull(Digits));
  if (match('l') || match('L'))
    T.IsLongLiteral = true;
  return T;
}

Token LexerImpl::lexIdentifier() {
  Token T = makeTok(Tok::Identifier);
  std::string Name;
  while (std::isalnum((unsigned char)peek()) || peek() == '_')
    Name += advance();
  auto It = keywordTable().find(Name);
  if (It != keywordTable().end()) {
    T.Kind = It->second;
    return T;
  }
  T.Text = std::move(Name);
  return T;
}

char LexerImpl::lexEscape() {
  char C = advance();
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    fail("unknown escape sequence");
    return C;
  }
}

Token LexerImpl::lexCharLiteral() {
  Token T = makeTok(Tok::CharLiteral);
  advance(); // opening quote
  char C = peek() == '\\' ? (advance(), lexEscape()) : advance();
  T.IntValue = C;
  if (!match('\''))
    fail("unterminated character literal");
  return T;
}

Token LexerImpl::lexStringLiteral() {
  Token T = makeTok(Tok::StringLiteral);
  advance(); // opening quote
  while (peek() && peek() != '"') {
    char C = advance();
    T.Text += (C == '\\') ? lexEscape() : C;
  }
  if (!match('"'))
    fail("unterminated string literal");
  return T;
}

std::vector<Token> LexerImpl::run() {
  std::vector<Token> Tokens;
  while (Error.empty()) {
    skipWhitespaceAndComments();
    char C = peek();
    if (!C)
      break;
    if (std::isdigit((unsigned char)C)) {
      Tokens.push_back(lexNumber());
      continue;
    }
    if (std::isalpha((unsigned char)C) || C == '_') {
      Tokens.push_back(lexIdentifier());
      continue;
    }
    if (C == '\'') {
      Tokens.push_back(lexCharLiteral());
      continue;
    }
    if (C == '"') {
      Tokens.push_back(lexStringLiteral());
      continue;
    }
    advance();
    switch (C) {
    case '(':
      Tokens.push_back(makeTok(Tok::LParen));
      break;
    case ')':
      Tokens.push_back(makeTok(Tok::RParen));
      break;
    case '{':
      Tokens.push_back(makeTok(Tok::LBrace));
      break;
    case '}':
      Tokens.push_back(makeTok(Tok::RBrace));
      break;
    case '[':
      Tokens.push_back(makeTok(Tok::LBracket));
      break;
    case ']':
      Tokens.push_back(makeTok(Tok::RBracket));
      break;
    case ';':
      Tokens.push_back(makeTok(Tok::Semicolon));
      break;
    case ',':
      Tokens.push_back(makeTok(Tok::Comma));
      break;
    case ':':
      Tokens.push_back(makeTok(Tok::Colon));
      break;
    case '?':
      Tokens.push_back(makeTok(Tok::Question));
      break;
    case '~':
      Tokens.push_back(makeTok(Tok::Tilde));
      break;
    case '^':
      Tokens.push_back(makeTok(Tok::Caret));
      break;
    case '+':
      Tokens.push_back(makeTok(match('+')   ? Tok::PlusPlus
                               : match('=') ? Tok::PlusAssign
                                            : Tok::Plus));
      break;
    case '-':
      Tokens.push_back(makeTok(match('-')   ? Tok::MinusMinus
                               : match('=') ? Tok::MinusAssign
                                            : Tok::Minus));
      break;
    case '*':
      Tokens.push_back(makeTok(match('=') ? Tok::StarAssign : Tok::Star));
      break;
    case '/':
      Tokens.push_back(makeTok(match('=') ? Tok::SlashAssign : Tok::Slash));
      break;
    case '%':
      Tokens.push_back(
          makeTok(match('=') ? Tok::PercentAssign : Tok::Percent));
      break;
    case '&':
      Tokens.push_back(makeTok(match('&') ? Tok::AmpAmp : Tok::Amp));
      break;
    case '|':
      Tokens.push_back(makeTok(match('|') ? Tok::PipePipe : Tok::Pipe));
      break;
    case '!':
      Tokens.push_back(makeTok(match('=') ? Tok::NotEq : Tok::Bang));
      break;
    case '=':
      Tokens.push_back(makeTok(match('=') ? Tok::EqEq : Tok::Assign));
      break;
    case '<':
      Tokens.push_back(makeTok(match('<')   ? Tok::Shl
                               : match('=') ? Tok::Le
                                            : Tok::Lt));
      break;
    case '>':
      Tokens.push_back(makeTok(match('>')   ? Tok::Shr
                               : match('=') ? Tok::Ge
                                            : Tok::Gt));
      break;
    case '.':
      if (peek() == '.' && peek(1) == '.') {
        advance();
        advance();
        Tokens.push_back(makeTok(Tok::Ellipsis));
      } else {
        fail("unexpected '.'");
      }
      break;
    default:
      fail(formatStr("unexpected character '%c'", C));
      break;
    }
  }
  Tokens.push_back(makeTok(Tok::End));
  return Tokens;
}

std::vector<Token> khaos::lexSource(const std::string &Source,
                                    std::string &Error) {
  return LexerImpl(Source, Error).run();
}
