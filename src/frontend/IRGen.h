//===- frontend/IRGen.h - MiniC to KIR lowering ------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking + IR generation for MiniC. Locals become entry-block
/// allocas (clang -O0 shape); `try` bodies lower calls to invokes targeting
/// a landingpad block; `throw` lowers to the __khaos_throw intrinsic.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_FRONTEND_IRGEN_H
#define KHAOS_FRONTEND_IRGEN_H

#include <memory>
#include <string>

namespace khaos {

class Context;
class Module;

namespace minic {
struct Program;

/// Lowers \p P into a fresh module. Returns null and sets \p Error on a
/// type error.
std::unique_ptr<Module> generateIR(const Program &P, Context &Ctx,
                                   const std::string &ModuleName,
                                   std::string &Error);

} // namespace minic

/// Convenience: parse + lower MiniC source. Null + \p Error on failure.
std::unique_ptr<Module> compileMiniC(const std::string &Source,
                                     Context &Ctx,
                                     const std::string &ModuleName,
                                     std::string &Error);

} // namespace khaos

#endif // KHAOS_FRONTEND_IRGEN_H
