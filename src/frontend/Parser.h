//===- frontend/Parser.h - MiniC parser -------------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC with standard C operator precedence.
/// MiniC has no typedefs, so the cast/paren ambiguity resolves with one
/// token of lookahead.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_FRONTEND_PARSER_H
#define KHAOS_FRONTEND_PARSER_H

#include "frontend/AST.h"

#include <memory>
#include <string>

namespace khaos {
namespace minic {

/// Parses \p Source. On error returns null and fills \p Error with a
/// line-annotated message.
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      std::string &Error);

} // namespace minic
} // namespace khaos

#endif // KHAOS_FRONTEND_PARSER_H
