//===- frontend/IRGen.cpp - MiniC to KIR lowering -------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/IRGen.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/StringUtils.h"

#include <cassert>
#include <map>
#include <set>

using namespace khaos;
using namespace khaos::minic;

namespace {

/// A typed rvalue.
struct RValue {
  Value *V = nullptr;
  CType Ty;
};

/// A typed lvalue (address of the object).
struct LValue {
  Value *Addr = nullptr;
  CType Ty; ///< Type of the object, not of the address.
};

class IRGenImpl {
public:
  IRGenImpl(const Program &P, Context &Ctx, const std::string &ModuleName,
            std::string &Error)
      : P(P), Ctx(Ctx), M(std::make_unique<Module>(Ctx, ModuleName)),
        B(*M), Error(Error) {}

  std::unique_ptr<Module> run();

private:
  // Diagnostics.
  void fail(int Line, const std::string &Msg) {
    if (Error.empty())
      Error = formatStr("line %d: %s", Line, Msg.c_str());
  }
  bool hadError() const { return !Error.empty(); }

  // Types.
  Type *irType(const CType &T);
  FunctionType *irSig(const FuncSig &S);
  static CType commonType(const CType &A, const CType &B);
  RValue convert(RValue V, const CType &To);

  // Declarations.
  void declareGlobals();
  void declareFunctions();
  Function *getOrDeclareIntrinsic(const std::string &Name);
  void genFunctionBody(const FunctionDecl &FD);

  // Scope.
  struct ScopedVar {
    Value *Addr = nullptr;
    CType Ty;
  };
  ScopedVar *lookup(const std::string &Name);
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  // Statements.
  void genStmt(const Stmt *S);
  void genBlock(const BlockStmt *S);
  void genDecl(const DeclStmt *S);
  void genIf(const IfStmt *S);
  void genWhile(const WhileStmt *S);
  void genDoWhile(const DoWhileStmt *S);
  void genFor(const ForStmt *S);
  void genSwitch(const SwitchStmt *S);
  void genTry(const TryStmt *S);
  void genThrow(const ThrowStmt *S);
  void genReturn(const ReturnStmt *S);
  void genGoto(const GotoStmt *S);
  void genLabel(const LabelStmt *S);

  /// The block for a function-scoped label, created on first mention so
  /// forward gotos work.
  BasicBlock *getLabelBlock(const std::string &Name);

  // Expressions.
  RValue genExpr(const Expr *E);
  LValue genLValue(const Expr *E);
  RValue genBinary(const BinaryExpr *E);
  RValue genLogical(const BinaryExpr *E);
  RValue genCall(const CallExpr *E);
  RValue genCondition(const Expr *E); ///< As i1.
  RValue loadLValue(const LValue &LV);

  /// Emits a call that may unwind: inside a try it becomes an invoke whose
  /// normal destination continues the current block.
  Value *emitCallMaybeInvoke(Value *Callee, std::vector<Value *> Args,
                             bool CanThrow);

  /// Terminates the current block if it is still open.
  void ensureTerminated(BasicBlock *Next) {
    if (!B.blockTerminated())
      B.createBr(Next);
  }

  const Program &P;
  Context &Ctx;
  std::unique_ptr<Module> M;
  IRBuilder B;
  std::string &Error;

  // Per-function state.
  Function *CurFn = nullptr;
  const FunctionDecl *CurDecl = nullptr;
  BasicBlock *AllocaBlock = nullptr;
  std::vector<std::map<std::string, ScopedVar>> Scopes;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
  std::vector<BasicBlock *> LandingPads; ///< Innermost try handler.
  std::map<std::string, BasicBlock *> LabelBlocks; ///< Function-scoped.
  std::set<std::string> DefinedLabels;
  std::map<std::string, int> PendingGotos; ///< Label -> first goto line.
  std::map<std::string, GlobalVariable *> StringLiterals;
  std::map<std::string, const FunctionDecl *> FunctionDecls;
};

} // namespace

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

Type *IRGenImpl::irType(const CType &T) {
  Type *Base = nullptr;
  if (T.Sig) {
    Base = Ctx.getPointerType(irSig(*T.Sig));
  } else {
    switch (T.Base) {
    case BaseType::Void:
      // `void*` has pointee i8.
      Base = T.PtrDepth > 0 ? Ctx.getInt8Type() : Ctx.getVoidType();
      break;
    case BaseType::Char:
      Base = Ctx.getInt8Type();
      break;
    case BaseType::Int:
      Base = Ctx.getInt32Type();
      break;
    case BaseType::Long:
      Base = Ctx.getInt64Type();
      break;
    case BaseType::Float:
      Base = Ctx.getFloatType();
      break;
    case BaseType::Double:
      Base = Ctx.getDoubleType();
      break;
    }
    if (T.PtrDepth > 0)
      for (int I = 0; I != T.PtrDepth; ++I)
        Base = Ctx.getPointerType(Base);
  }
  if (T.Sig)
    for (int I = 0; I != T.PtrDepth; ++I)
      Base = Ctx.getPointerType(Base);
  if (T.isArray())
    Base = Ctx.getArrayType(Base, (uint64_t)T.ArraySize);
  return Base;
}

FunctionType *IRGenImpl::irSig(const FuncSig &S) {
  std::vector<Type *> Params;
  for (const CType &PT : S.Params)
    Params.push_back(irType(PT.decayed()));
  return Ctx.getFunctionType(irType(S.Ret), std::move(Params), S.VarArg);
}

CType IRGenImpl::commonType(const CType &A, const CType &B) {
  CType DA = A.decayed(), DB = B.decayed();
  if (DA.isPointerLike())
    return DA;
  if (DB.isPointerLike())
    return DB;
  auto Rank = [](BaseType T) {
    switch (T) {
    case BaseType::Double:
      return 5;
    case BaseType::Float:
      return 4;
    case BaseType::Long:
      return 3;
    default:
      return 2; // char/int promote to int.
    }
  };
  int RA = Rank(DA.Base), RB = Rank(DB.Base);
  BaseType Winner = RA >= RB ? DA.Base : DB.Base;
  if (Winner == BaseType::Char)
    Winner = BaseType::Int;
  return CType::scalar(Winner);
}

RValue IRGenImpl::convert(RValue V, const CType &To) {
  Type *DstTy = irType(To.decayed());
  if (V.V->getType() == DstTy) {
    V.Ty = To.decayed();
    return V;
  }
  return {B.createConvert(V.V, DstTy), To.decayed()};
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void IRGenImpl::declareGlobals() {
  for (const GlobalDecl &G : P.Globals) {
    Type *VT = irType(G.Ty);
    if (M->getGlobal(G.Name)) {
      fail(G.Line, "duplicate global '" + G.Name + "'");
      return;
    }
    GlobalVariable *GV = M->createGlobal(G.Name, VT);
    // Literal initializers (int/float literals, possibly negated, or
    // function names for function pointers).
    std::vector<Constant *> Init;
    for (const ExprPtr &E : G.Init) {
      const Expr *Cur = E.get();
      bool Neg = false;
      if (Cur->Kind == ExprKind::Unary) {
        const auto *U = static_cast<const UnaryExpr *>(Cur);
        if (U->Op == UnaryOp::Neg) {
          Neg = true;
          Cur = U->Sub.get();
        }
      }
      Type *ElemTy = VT;
      if (auto *AT = dyn_cast<ArrayType>(VT))
        ElemTy = AT->getElementType();
      if (Cur->Kind == ExprKind::IntLit) {
        int64_t Val = static_cast<const IntLitExpr *>(Cur)->Value;
        if (Neg)
          Val = -Val;
        if (ElemTy->isFloatingPoint())
          Init.push_back(M->getConstantFP(ElemTy, (double)Val));
        else
          Init.push_back(M->getConstantInt(ElemTy, Val));
      } else if (Cur->Kind == ExprKind::FloatLit) {
        double Val = static_cast<const FloatLitExpr *>(Cur)->Value;
        if (Neg)
          Val = -Val;
        Init.push_back(M->getConstantFP(ElemTy, Val));
      } else if (Cur->Kind == ExprKind::VarRef) {
        // Function address in a global initializer.
        const std::string &FName =
            static_cast<const VarRefExpr *>(Cur)->Name;
        Function *F = M->getFunction(FName);
        if (!F) {
          fail(G.Line, "global initializer references unknown function '" +
                           FName + "'");
          return;
        }
        Init.push_back(M->getTaggedFunc(ElemTy, F, 0));
      } else {
        fail(G.Line, "unsupported global initializer");
        return;
      }
    }
    GV->setInitializer(std::move(Init));
  }
}

void IRGenImpl::declareFunctions() {
  for (const FunctionDecl &FD : P.Functions) {
    if (Function *Existing = M->getFunction(FD.Name)) {
      // Redeclaration: a definition after a prototype un-marks the
      // intrinsic assumption made for bodiless declarations.
      if (FD.Body) {
        Existing->setIntrinsic(false);
        FunctionDecls[FD.Name] = &FD;
      }
      continue;
    }
    Function *F = M->createFunction(FD.Name, irSig(FD.Sig));
    F->setExported(FD.IsExported || FD.Name == "main");
    if (FD.IsExtern && !FD.Body)
      F->setIntrinsic(true); // Externs resolve to VM intrinsics.
    for (unsigned I = 0, E = F->arg_size(); I != E; ++I)
      if (I < FD.ParamNames.size() && !FD.ParamNames[I].empty())
        F->getArg(I)->setName(FD.ParamNames[I]);
    FunctionDecls[FD.Name] = &FD;
  }
}

Function *IRGenImpl::getOrDeclareIntrinsic(const std::string &Name) {
  if (Function *F = M->getFunction(Name))
    return F;
  Type *I8Ptr = Ctx.getPointerType(Ctx.getInt8Type());
  Type *I32 = Ctx.getInt32Type();
  Type *I64 = Ctx.getInt64Type();
  Type *I64Ptr = Ctx.getPointerType(I64);
  Type *VoidTy = Ctx.getVoidType();
  FunctionType *FTy = nullptr;
  if (Name == "printf")
    FTy = Ctx.getFunctionType(I32, {I8Ptr}, /*VarArg=*/true);
  else if (Name == "putchar" || Name == "abs")
    FTy = Ctx.getFunctionType(I32, {I32});
  else if (Name == "puts" || Name == "strlen")
    FTy = Ctx.getFunctionType(Name == "puts" ? I32 : I64, {I8Ptr});
  else if (Name == "malloc")
    FTy = Ctx.getFunctionType(I8Ptr, {I64});
  else if (Name == "free")
    FTy = Ctx.getFunctionType(VoidTy, {I8Ptr});
  else if (Name == "setjmp")
    FTy = Ctx.getFunctionType(I32, {I64Ptr});
  else if (Name == "longjmp")
    FTy = Ctx.getFunctionType(VoidTy, {I64Ptr, I32});
  else if (Name == "__khaos_throw")
    FTy = Ctx.getFunctionType(VoidTy, {I64});
  if (!FTy)
    return nullptr;
  Function *F = M->createFunction(Name, FTy);
  F->setIntrinsic(true);
  return F;
}

//===----------------------------------------------------------------------===//
// Function bodies
//===----------------------------------------------------------------------===//

void IRGenImpl::genFunctionBody(const FunctionDecl &FD) {
  Function *F = M->getFunction(FD.Name);
  assert(F && "function not declared");
  CurFn = F;
  CurDecl = &FD;
  Scopes.clear();
  BreakTargets.clear();
  ContinueTargets.clear();
  LandingPads.clear();
  LabelBlocks.clear();
  DefinedLabels.clear();
  PendingGotos.clear();

  BasicBlock *Entry = F->addBlock("entry");
  AllocaBlock = Entry;
  B.setInsertPoint(Entry);
  pushScope();

  // Shadow allocas for parameters so they are addressable and mutable.
  for (unsigned I = 0, E = F->arg_size(); I != E; ++I) {
    Argument *A = F->getArg(I);
    auto *Slot = B.createAlloca(A->getType(), A->getName() + ".addr");
    B.createStore(A, Slot);
    CType PTy = FD.Sig.Params[I].decayed();
    Scopes.back()[FD.ParamNames[I]] = {Slot, PTy};
  }

  genStmt(FD.Body.get());

  // Every goto must have found its label by the end of the function.
  if (!PendingGotos.empty() && !hadError()) {
    auto &P = *PendingGotos.begin();
    fail(P.second, "goto to undefined label '" + P.first + "'");
  }

  // Implicit return when control falls off the end.
  if (!B.blockTerminated()) {
    Type *RetTy = F->getReturnType();
    if (RetTy->isVoid())
      B.createRetVoid();
    else
      B.createRet(M->getZeroValue(RetTy));
  }
  popScope();
  CurFn = nullptr;
}

IRGenImpl::ScopedVar *IRGenImpl::lookup(const std::string &Name) {
  for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void IRGenImpl::genStmt(const Stmt *S) {
  if (!S || hadError())
    return;
  // Skip statements in already-terminated blocks (e.g. code after return).
  // Labels are exempt: they open a fresh block, so code after a goto or
  // return stays reachable through its label.
  if (B.blockTerminated() && S->Kind != StmtKind::Block &&
      S->Kind != StmtKind::Label)
    return;
  switch (S->Kind) {
  case StmtKind::Block:
    genBlock(static_cast<const BlockStmt *>(S));
    break;
  case StmtKind::ExprStmt:
    if (const Expr *E = static_cast<const ExprStmt *>(S)->E.get())
      genExpr(E);
    break;
  case StmtKind::Decl:
    genDecl(static_cast<const DeclStmt *>(S));
    break;
  case StmtKind::If:
    genIf(static_cast<const IfStmt *>(S));
    break;
  case StmtKind::While:
    genWhile(static_cast<const WhileStmt *>(S));
    break;
  case StmtKind::DoWhile:
    genDoWhile(static_cast<const DoWhileStmt *>(S));
    break;
  case StmtKind::For:
    genFor(static_cast<const ForStmt *>(S));
    break;
  case StmtKind::Return:
    genReturn(static_cast<const ReturnStmt *>(S));
    break;
  case StmtKind::Break:
    if (BreakTargets.empty())
      fail(S->Line, "'break' outside loop/switch");
    else
      B.createBr(BreakTargets.back());
    break;
  case StmtKind::Continue:
    if (ContinueTargets.empty())
      fail(S->Line, "'continue' outside loop");
    else
      B.createBr(ContinueTargets.back());
    break;
  case StmtKind::Switch:
    genSwitch(static_cast<const SwitchStmt *>(S));
    break;
  case StmtKind::Try:
    genTry(static_cast<const TryStmt *>(S));
    break;
  case StmtKind::Throw:
    genThrow(static_cast<const ThrowStmt *>(S));
    break;
  case StmtKind::Goto:
    genGoto(static_cast<const GotoStmt *>(S));
    break;
  case StmtKind::Label:
    genLabel(static_cast<const LabelStmt *>(S));
    break;
  }
}

void IRGenImpl::genBlock(const BlockStmt *S) {
  pushScope();
  for (const StmtPtr &Child : S->Stmts)
    genStmt(Child.get());
  popScope();
}

void IRGenImpl::genDecl(const DeclStmt *S) {
  Type *VT = irType(S->Ty);
  // Allocas go to the current block (not hoisted): fission's lazy
  // allocation reasoning matches the paper when defs sit near their uses;
  // the entry block still receives most of them in practice.
  auto *Slot = B.createAlloca(VT, S->Name);
  Scopes.back()[S->Name] = {Slot, S->Ty};
  if (S->Init) {
    RValue Init = genExpr(S->Init.get());
    if (hadError())
      return;
    Init = convert(Init, S->Ty.decayed());
    if (S->Ty.isArray()) {
      fail(S->Line, "array initializers are not supported for locals");
      return;
    }
    B.createStore(Init.V, Slot);
  }
}

void IRGenImpl::genIf(const IfStmt *S) {
  RValue C = genCondition(S->Cond.get());
  if (hadError())
    return;
  BasicBlock *ThenBB = CurFn->addBlock("if.then");
  BasicBlock *EndBB = CurFn->addBlock("if.end");
  BasicBlock *ElseBB = S->Else ? CurFn->addBlock("if.else") : EndBB;
  B.createCondBr(C.V, ThenBB, ElseBB);

  B.setInsertPoint(ThenBB);
  genStmt(S->Then.get());
  ensureTerminated(EndBB);

  if (S->Else) {
    B.setInsertPoint(ElseBB);
    genStmt(S->Else.get());
    ensureTerminated(EndBB);
  }
  B.setInsertPoint(EndBB);
}

void IRGenImpl::genWhile(const WhileStmt *S) {
  BasicBlock *CondBB = CurFn->addBlock("while.cond");
  BasicBlock *BodyBB = CurFn->addBlock("while.body");
  BasicBlock *EndBB = CurFn->addBlock("while.end");
  B.createBr(CondBB);

  B.setInsertPoint(CondBB);
  RValue C = genCondition(S->Cond.get());
  if (hadError())
    return;
  B.createCondBr(C.V, BodyBB, EndBB);

  B.setInsertPoint(BodyBB);
  BreakTargets.push_back(EndBB);
  ContinueTargets.push_back(CondBB);
  genStmt(S->Body.get());
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  ensureTerminated(CondBB);

  B.setInsertPoint(EndBB);
}

void IRGenImpl::genDoWhile(const DoWhileStmt *S) {
  BasicBlock *BodyBB = CurFn->addBlock("do.body");
  BasicBlock *CondBB = CurFn->addBlock("do.cond");
  BasicBlock *EndBB = CurFn->addBlock("do.end");
  B.createBr(BodyBB);

  B.setInsertPoint(BodyBB);
  BreakTargets.push_back(EndBB);
  ContinueTargets.push_back(CondBB);
  genStmt(S->Body.get());
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  ensureTerminated(CondBB);

  B.setInsertPoint(CondBB);
  RValue C = genCondition(S->Cond.get());
  if (hadError())
    return;
  B.createCondBr(C.V, BodyBB, EndBB);

  B.setInsertPoint(EndBB);
}

void IRGenImpl::genFor(const ForStmt *S) {
  pushScope();
  if (S->Init)
    genStmt(S->Init.get());
  BasicBlock *CondBB = CurFn->addBlock("for.cond");
  BasicBlock *BodyBB = CurFn->addBlock("for.body");
  BasicBlock *StepBB = CurFn->addBlock("for.step");
  BasicBlock *EndBB = CurFn->addBlock("for.end");
  B.createBr(CondBB);

  B.setInsertPoint(CondBB);
  if (S->Cond) {
    RValue C = genCondition(S->Cond.get());
    if (hadError())
      return;
    B.createCondBr(C.V, BodyBB, EndBB);
  } else {
    B.createBr(BodyBB);
  }

  B.setInsertPoint(BodyBB);
  BreakTargets.push_back(EndBB);
  ContinueTargets.push_back(StepBB);
  genStmt(S->Body.get());
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  ensureTerminated(StepBB);

  B.setInsertPoint(StepBB);
  if (S->Step)
    genExpr(S->Step.get());
  if (!B.blockTerminated())
    B.createBr(CondBB);

  B.setInsertPoint(EndBB);
  popScope();
}

void IRGenImpl::genSwitch(const SwitchStmt *S) {
  RValue Cond = genExpr(S->Cond.get());
  if (hadError())
    return;
  Cond = convert(Cond, CType::scalar(BaseType::Long));

  BasicBlock *EndBB = CurFn->addBlock("switch.end");
  std::vector<BasicBlock *> CaseBlocks;
  BasicBlock *DefaultBB = EndBB;
  for (size_t I = 0; I != S->Cases.size(); ++I) {
    CaseBlocks.push_back(CurFn->addBlock(formatStr("switch.case%zu", I)));
    if (S->Cases[I].IsDefault)
      DefaultBB = CaseBlocks.back();
  }
  auto *SW = B.createSwitch(Cond.V, DefaultBB);
  for (size_t I = 0; I != S->Cases.size(); ++I)
    if (!S->Cases[I].IsDefault)
      SW->addCase(S->Cases[I].Value, CaseBlocks[I]);

  BreakTargets.push_back(EndBB);
  for (size_t I = 0; I != S->Cases.size(); ++I) {
    B.setInsertPoint(CaseBlocks[I]);
    pushScope();
    for (const StmtPtr &Child : S->Cases[I].Body)
      genStmt(Child.get());
    popScope();
    // Fall through to the next case, or exit.
    ensureTerminated(I + 1 < CaseBlocks.size() ? CaseBlocks[I + 1] : EndBB);
  }
  BreakTargets.pop_back();
  B.setInsertPoint(EndBB);
}

void IRGenImpl::genTry(const TryStmt *S) {
  BasicBlock *LandBB = CurFn->addBlock("try.lpad");
  BasicBlock *ContBB = CurFn->addBlock("try.cont");

  LandingPads.push_back(LandBB);
  genStmt(S->Body.get());
  LandingPads.pop_back();
  ensureTerminated(ContBB);

  // Landing pad: bind the payload to the catch variable and run the
  // handler.
  B.setInsertPoint(LandBB);
  auto *Pad = B.createLandingPad("ex");
  auto *CatchSlot = B.createAlloca(Ctx.getInt32Type(), S->CatchVar);
  B.createStore(B.createConvert(Pad, Ctx.getInt32Type()), CatchSlot);
  pushScope();
  Scopes.back()[S->CatchVar] = {CatchSlot, CType::scalar(BaseType::Int)};
  genStmt(S->Handler.get());
  popScope();
  ensureTerminated(ContBB);

  B.setInsertPoint(ContBB);
}

void IRGenImpl::genThrow(const ThrowStmt *S) {
  RValue V = genExpr(S->Value.get());
  if (hadError())
    return;
  V = convert(V, CType::scalar(BaseType::Long));
  Function *ThrowFn = getOrDeclareIntrinsic("__khaos_throw");
  emitCallMaybeInvoke(ThrowFn, {V.V}, /*CanThrow=*/true);
  if (!B.blockTerminated())
    B.createUnreachable();
}

BasicBlock *IRGenImpl::getLabelBlock(const std::string &Name) {
  BasicBlock *&BB = LabelBlocks[Name];
  if (!BB)
    BB = CurFn->addBlock("label." + Name);
  return BB;
}

void IRGenImpl::genGoto(const GotoStmt *S) {
  BasicBlock *Target = getLabelBlock(S->Label);
  if (!DefinedLabels.count(S->Label))
    PendingGotos.emplace(S->Label, S->Line); // Keeps the first goto's line.
  B.createBr(Target);
}

void IRGenImpl::genLabel(const LabelStmt *S) {
  if (!DefinedLabels.insert(S->Name).second) {
    fail(S->Line, "duplicate label '" + S->Name + "'");
    return;
  }
  PendingGotos.erase(S->Name);
  BasicBlock *BB = getLabelBlock(S->Name);
  ensureTerminated(BB);
  B.setInsertPoint(BB);
  genStmt(S->Body.get());
}

void IRGenImpl::genReturn(const ReturnStmt *S) {
  Type *RetTy = CurFn->getReturnType();
  if (RetTy->isVoid()) {
    if (S->Value)
      fail(S->Line, "void function returns a value");
    else
      B.createRetVoid();
    return;
  }
  if (!S->Value) {
    fail(S->Line, "non-void function must return a value");
    return;
  }
  RValue V = genExpr(S->Value.get());
  if (hadError())
    return;
  B.createRet(B.createConvert(V.V, RetTy));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

RValue IRGenImpl::genCondition(const Expr *E) {
  RValue V = genExpr(E);
  if (hadError())
    return V;
  return {B.createIsNonZero(V.V), CType::scalar(BaseType::Int)};
}

RValue IRGenImpl::loadLValue(const LValue &LV) {
  if (LV.Ty.isArray()) {
    // Arrays decay to a pointer to their first element.
    Value *First = B.createGEP(LV.Addr, M->getInt64(0));
    return {First, LV.Ty.decayed()};
  }
  return {B.createLoad(LV.Addr), LV.Ty};
}

Value *IRGenImpl::emitCallMaybeInvoke(Value *Callee,
                                      std::vector<Value *> Args,
                                      bool CanThrow) {
  if (!CanThrow || LandingPads.empty())
    return B.createCall(Callee, std::move(Args));
  // Split: the invoke terminates the current block; execution resumes in a
  // fresh block.
  BasicBlock *Normal = CurFn->addBlock("invoke.cont");
  Value *Result =
      B.createInvoke(Callee, std::move(Args), Normal, LandingPads.back());
  B.setInsertPoint(Normal);
  return Result;
}

RValue IRGenImpl::genExpr(const Expr *E) {
  if (hadError())
    return {M->getInt32(0), CType::scalar(BaseType::Int)};
  switch (E->Kind) {
  case ExprKind::IntLit: {
    const auto *L = static_cast<const IntLitExpr *>(E);
    if (L->IsChar)
      return {M->getInt8(L->Value), CType::scalar(BaseType::Char)};
    if (L->IsLong)
      return {M->getInt64(L->Value), CType::scalar(BaseType::Long)};
    return {M->getInt32(L->Value), CType::scalar(BaseType::Int)};
  }
  case ExprKind::FloatLit: {
    const auto *L = static_cast<const FloatLitExpr *>(E);
    if (L->IsFloat)
      return {M->getConstantFP(Ctx.getFloatType(), L->Value),
              CType::scalar(BaseType::Float)};
    return {M->getConstantFP(Ctx.getDoubleType(), L->Value),
            CType::scalar(BaseType::Double)};
  }
  case ExprKind::StringLit: {
    const auto *L = static_cast<const StringLitExpr *>(E);
    GlobalVariable *&GV = StringLiterals[L->Value];
    if (!GV) {
      auto *AT = Ctx.getArrayType(Ctx.getInt8Type(), L->Value.size() + 1);
      GV = M->createGlobal(M->uniqueName("str"), AT);
      std::vector<Constant *> Chars;
      for (char C : L->Value)
        Chars.push_back(M->getInt8(C));
      Chars.push_back(M->getInt8(0));
      GV->setInitializer(std::move(Chars));
    }
    Value *Ptr = B.createGEP(GV, M->getInt64(0));
    CType T = CType::scalar(BaseType::Char);
    return {Ptr, CType::pointerTo(T)};
  }
  case ExprKind::VarRef: {
    const auto *V = static_cast<const VarRefExpr *>(E);
    if (ScopedVar *SV = lookup(V->Name))
      return loadLValue({SV->Addr, SV->Ty});
    if (GlobalVariable *GV = M->getGlobal(V->Name)) {
      CType GTy;
      for (const GlobalDecl &G : P.Globals)
        if (G.Name == V->Name)
          GTy = G.Ty;
      return loadLValue({GV, GTy});
    }
    // A bare function name evaluates to its address.
    Function *F = M->getFunction(V->Name);
    if (!F)
      F = getOrDeclareIntrinsic(V->Name);
    if (F) {
      CType FT;
      auto It = FunctionDecls.find(V->Name);
      FT.Sig = std::make_shared<FuncSig>(
          It != FunctionDecls.end() ? It->second->Sig : FuncSig{});
      return {F, FT};
    }
    fail(E->Line, "unknown identifier '" + V->Name + "'");
    return {M->getInt32(0), CType::scalar(BaseType::Int)};
  }
  case ExprKind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    switch (U->Op) {
    case UnaryOp::Neg: {
      RValue V = genExpr(U->Sub.get());
      CType RTy = commonType(V.Ty, CType::scalar(BaseType::Int));
      V = convert(V, RTy);
      Value *Zero = M->getZeroValue(V.V->getType());
      bool IsFP = V.V->getType()->isFloatingPoint();
      return {B.createBinOp(IsFP ? BinOp::FSub : BinOp::Sub, Zero, V.V),
              RTy};
    }
    case UnaryOp::Not: {
      RValue V = genExpr(U->Sub.get());
      Value *IsZero = B.createIsNonZero(V.V);
      Value *Flipped = B.createBinOp(BinOp::Xor, IsZero, M->getInt1(true));
      return {B.createConvert(Flipped, Ctx.getInt32Type()),
              CType::scalar(BaseType::Int)};
    }
    case UnaryOp::BitNot: {
      RValue V = genExpr(U->Sub.get());
      CType RTy = commonType(V.Ty, CType::scalar(BaseType::Int));
      V = convert(V, RTy);
      Value *AllOnes = M->getConstantInt(V.V->getType(), -1);
      return {B.createBinOp(BinOp::Xor, V.V, AllOnes), RTy};
    }
    case UnaryOp::Deref: {
      RValue V = genExpr(U->Sub.get());
      if (!V.Ty.isPointerLike()) {
        fail(E->Line, "dereference of non-pointer");
        return V;
      }
      if (V.Ty.Sig && V.Ty.PtrDepth == 0)
        return V; // *funcptr == funcptr (C semantics).
      return loadLValue({V.V, V.Ty.pointee()});
    }
    case UnaryOp::AddrOf: {
      LValue LV = genLValue(U->Sub.get());
      if (hadError())
        return {M->getInt32(0), CType::scalar(BaseType::Int)};
      if (LV.Ty.isArray()) {
        Value *First = B.createGEP(LV.Addr, M->getInt64(0));
        return {First, LV.Ty.decayed()};
      }
      return {LV.Addr, CType::pointerTo(LV.Ty)};
    }
    }
    break;
  }
  case ExprKind::Binary: {
    const auto *BE = static_cast<const BinaryExpr *>(E);
    if (BE->Op == BinaryOp::LogicalAnd || BE->Op == BinaryOp::LogicalOr)
      return genLogical(BE);
    return genBinary(BE);
  }
  case ExprKind::Assign: {
    const auto *A = static_cast<const AssignExpr *>(E);
    LValue LHS = genLValue(A->LHS.get());
    if (hadError())
      return {M->getInt32(0), CType::scalar(BaseType::Int)};
    RValue RHS;
    if (A->CompoundOp >= 0) {
      RValue Old = loadLValue(LHS);
      RValue R = genExpr(A->RHS.get());
      // Pointer compound: p += n.
      if (Old.Ty.isPointerLike() &&
          ((BinaryOp)A->CompoundOp == BinaryOp::Add ||
           (BinaryOp)A->CompoundOp == BinaryOp::Sub)) {
        R = convert(R, CType::scalar(BaseType::Long));
        Value *Idx = R.V;
        if ((BinaryOp)A->CompoundOp == BinaryOp::Sub)
          Idx = B.createBinOp(BinOp::Sub, M->getInt64(0), Idx);
        RHS = {B.createGEP(Old.V, Idx), Old.Ty};
      } else {
        CType RTy = commonType(Old.Ty, R.Ty);
        RValue L2 = convert(Old, RTy);
        RValue R2 = convert(R, RTy);
        bool IsFP = L2.V->getType()->isFloatingPoint();
        BinOp K;
        switch ((BinaryOp)A->CompoundOp) {
        case BinaryOp::Add:
          K = IsFP ? BinOp::FAdd : BinOp::Add;
          break;
        case BinaryOp::Sub:
          K = IsFP ? BinOp::FSub : BinOp::Sub;
          break;
        case BinaryOp::Mul:
          K = IsFP ? BinOp::FMul : BinOp::Mul;
          break;
        case BinaryOp::Div:
          K = IsFP ? BinOp::FDiv : BinOp::SDiv;
          break;
        case BinaryOp::Rem:
          K = BinOp::SRem;
          break;
        default:
          fail(E->Line, "unsupported compound assignment");
          return {M->getInt32(0), CType::scalar(BaseType::Int)};
        }
        RHS = {B.createBinOp(K, L2.V, R2.V), RTy};
      }
    } else {
      RHS = genExpr(A->RHS.get());
    }
    if (hadError())
      return {M->getInt32(0), CType::scalar(BaseType::Int)};
    RHS = convert(RHS, LHS.Ty.decayed());
    B.createStore(RHS.V, LHS.Addr);
    return RHS;
  }
  case ExprKind::Call:
    return genCall(static_cast<const CallExpr *>(E));
  case ExprKind::Index: {
    const auto *I = static_cast<const IndexExpr *>(E);
    RValue Base = genExpr(I->Base.get());
    RValue Idx = genExpr(I->Idx.get());
    if (!Base.Ty.isPointerLike()) {
      fail(E->Line, "indexing a non-pointer");
      return Base;
    }
    Idx = convert(Idx, CType::scalar(BaseType::Long));
    Value *Elem = B.createGEP(Base.V, Idx.V);
    return loadLValue({Elem, Base.Ty.pointee()});
  }
  case ExprKind::Cast: {
    const auto *C = static_cast<const CastExpr *>(E);
    RValue V = genExpr(C->Sub.get());
    return convert(V, C->To);
  }
  case ExprKind::Conditional: {
    const auto *C = static_cast<const ConditionalExpr *>(E);
    RValue Cond = genCondition(C->Cond.get());
    BasicBlock *TrueBB = CurFn->addBlock("cond.true");
    BasicBlock *FalseBB = CurFn->addBlock("cond.false");
    BasicBlock *EndBB = CurFn->addBlock("cond.end");
    B.createCondBr(Cond.V, TrueBB, FalseBB);

    // Generate both arms into a shared temporary (phi-free IR).
    B.setInsertPoint(TrueBB);
    RValue TV = genExpr(C->TrueE.get());
    BasicBlock *TrueEnd = B.getInsertBlock();
    B.setInsertPoint(FalseBB);
    RValue FV = genExpr(C->FalseE.get());
    BasicBlock *FalseEnd = B.getInsertBlock();
    if (hadError())
      return TV;

    CType RTy = commonType(TV.Ty, FV.Ty);
    auto *Slot = new AllocaInst(irType(RTy), "cond.tmp");
    AllocaBlock->insertAt(0, Slot);

    B.setInsertPoint(TrueEnd);
    TV = convert(TV, RTy);
    B.createStore(TV.V, Slot);
    B.createBr(EndBB);
    B.setInsertPoint(FalseEnd);
    FV = convert(FV, RTy);
    B.createStore(FV.V, Slot);
    B.createBr(EndBB);

    B.setInsertPoint(EndBB);
    return {B.createLoad(Slot), RTy};
  }
  case ExprKind::IncDec: {
    const auto *I = static_cast<const IncDecExpr *>(E);
    LValue LV = genLValue(I->Sub.get());
    if (hadError())
      return {M->getInt32(0), CType::scalar(BaseType::Int)};
    RValue Old = loadLValue(LV);
    Value *New;
    if (Old.Ty.isPointerLike()) {
      New = B.createGEP(Old.V, M->getInt64(I->IsInc ? 1 : -1));
    } else {
      Value *One = Old.V->getType()->isFloatingPoint()
                       ? (Value *)M->getConstantFP(Old.V->getType(), 1.0)
                       : (Value *)M->getConstantInt(Old.V->getType(), 1);
      bool IsFP = Old.V->getType()->isFloatingPoint();
      New = B.createBinOp(I->IsInc ? (IsFP ? BinOp::FAdd : BinOp::Add)
                                   : (IsFP ? BinOp::FSub : BinOp::Sub),
                          Old.V, One);
    }
    B.createStore(New, LV.Addr);
    return {I->IsPrefix ? New : Old.V, Old.Ty};
  }
  }
  fail(E->Line, "unsupported expression");
  return {M->getInt32(0), CType::scalar(BaseType::Int)};
}

RValue IRGenImpl::genBinary(const BinaryExpr *E) {
  RValue L = genExpr(E->LHS.get());
  RValue R = genExpr(E->RHS.get());
  if (hadError())
    return L;

  bool IsCmp = E->Op == BinaryOp::Lt || E->Op == BinaryOp::Le ||
               E->Op == BinaryOp::Gt || E->Op == BinaryOp::Ge ||
               E->Op == BinaryOp::Eq || E->Op == BinaryOp::Ne;

  // Pointer arithmetic.
  CType LD = L.Ty.decayed(), RD = R.Ty.decayed();
  if (!IsCmp && LD.isPointerLike() && !RD.isPointerLike()) {
    R = convert(R, CType::scalar(BaseType::Long));
    Value *Idx = R.V;
    if (E->Op == BinaryOp::Sub)
      Idx = B.createBinOp(BinOp::Sub, M->getInt64(0), Idx);
    else if (E->Op != BinaryOp::Add) {
      fail(E->Line, "invalid pointer arithmetic");
      return L;
    }
    return {B.createGEP(L.V, Idx), LD};
  }
  if (!IsCmp && LD.isPointerLike() && RD.isPointerLike() &&
      E->Op == BinaryOp::Sub) {
    // Pointer difference in elements.
    Value *LI = B.createCast(CastKind::PtrToInt, L.V, Ctx.getInt64Type());
    Value *RI = B.createCast(CastKind::PtrToInt, R.V, Ctx.getInt64Type());
    Value *Diff = B.createBinOp(BinOp::Sub, LI, RI);
    uint64_t Size =
        cast<PointerType>(L.V->getType())->getPointee()->getStoreSize();
    Value *Count = B.createBinOp(BinOp::SDiv, Diff, M->getInt64(Size));
    return {Count, CType::scalar(BaseType::Long)};
  }

  // Comparisons involving pointers compare addresses.
  if (IsCmp && (LD.isPointerLike() || RD.isPointerLike())) {
    if (!LD.isPointerLike())
      L = convert(L, RD);
    if (!RD.isPointerLike())
      R = convert(R, LD);
    if (L.V->getType() != R.V->getType())
      R = {B.createCast(CastKind::Bitcast, R.V, L.V->getType()), LD};
    CmpPred P;
    switch (E->Op) {
    case BinaryOp::Lt:
      P = CmpPred::SLT;
      break;
    case BinaryOp::Le:
      P = CmpPred::SLE;
      break;
    case BinaryOp::Gt:
      P = CmpPred::SGT;
      break;
    case BinaryOp::Ge:
      P = CmpPred::SGE;
      break;
    case BinaryOp::Eq:
      P = CmpPred::EQ;
      break;
    default:
      P = CmpPred::NE;
      break;
    }
    Value *Flag = B.createCmp(P, L.V, R.V);
    return {B.createConvert(Flag, Ctx.getInt32Type()),
            CType::scalar(BaseType::Int)};
  }

  CType RTy = commonType(L.Ty, R.Ty);
  L = convert(L, RTy);
  R = convert(R, RTy);
  bool IsFP = L.V->getType()->isFloatingPoint();

  if (IsCmp) {
    CmpPred P;
    switch (E->Op) {
    case BinaryOp::Lt:
      P = CmpPred::SLT;
      break;
    case BinaryOp::Le:
      P = CmpPred::SLE;
      break;
    case BinaryOp::Gt:
      P = CmpPred::SGT;
      break;
    case BinaryOp::Ge:
      P = CmpPred::SGE;
      break;
    case BinaryOp::Eq:
      P = CmpPred::EQ;
      break;
    default:
      P = CmpPred::NE;
      break;
    }
    Value *Flag = B.createCmp(P, L.V, R.V);
    return {B.createConvert(Flag, Ctx.getInt32Type()),
            CType::scalar(BaseType::Int)};
  }

  BinOp K;
  switch (E->Op) {
  case BinaryOp::Add:
    K = IsFP ? BinOp::FAdd : BinOp::Add;
    break;
  case BinaryOp::Sub:
    K = IsFP ? BinOp::FSub : BinOp::Sub;
    break;
  case BinaryOp::Mul:
    K = IsFP ? BinOp::FMul : BinOp::Mul;
    break;
  case BinaryOp::Div:
    K = IsFP ? BinOp::FDiv : BinOp::SDiv;
    break;
  case BinaryOp::Rem:
    K = BinOp::SRem;
    break;
  case BinaryOp::And:
    K = BinOp::And;
    break;
  case BinaryOp::Or:
    K = BinOp::Or;
    break;
  case BinaryOp::Xor:
    K = BinOp::Xor;
    break;
  case BinaryOp::Shl:
    K = BinOp::Shl;
    break;
  case BinaryOp::Shr:
    K = BinOp::AShr;
    break;
  default:
    fail(E->Line, "unsupported binary operator");
    return L;
  }
  if ((K == BinOp::SRem || K == BinOp::Shl || K == BinOp::AShr) && IsFP) {
    fail(E->Line, "invalid FP operation");
    return L;
  }
  return {B.createBinOp(K, L.V, R.V), RTy};
}

RValue IRGenImpl::genLogical(const BinaryExpr *E) {
  bool IsAnd = E->Op == BinaryOp::LogicalAnd;
  auto *Slot = new AllocaInst(Ctx.getInt32Type(), "logic.tmp");
  AllocaBlock->insertAt(0, Slot);

  BasicBlock *RHSBB = CurFn->addBlock(IsAnd ? "land.rhs" : "lor.rhs");
  BasicBlock *ShortBB = CurFn->addBlock(IsAnd ? "land.short" : "lor.short");
  BasicBlock *EndBB = CurFn->addBlock(IsAnd ? "land.end" : "lor.end");

  RValue L = genCondition(E->LHS.get());
  if (hadError())
    return L;
  if (IsAnd)
    B.createCondBr(L.V, RHSBB, ShortBB);
  else
    B.createCondBr(L.V, ShortBB, RHSBB);

  B.setInsertPoint(ShortBB);
  B.createStore(M->getInt32(IsAnd ? 0 : 1), Slot);
  B.createBr(EndBB);

  B.setInsertPoint(RHSBB);
  RValue R = genCondition(E->RHS.get());
  if (hadError())
    return R;
  B.createStore(B.createConvert(R.V, Ctx.getInt32Type()), Slot);
  B.createBr(EndBB);

  B.setInsertPoint(EndBB);
  return {B.createLoad(Slot), CType::scalar(BaseType::Int)};
}

RValue IRGenImpl::genCall(const CallExpr *E) {
  // Resolve the callee: direct function name or function-pointer value.
  Value *Callee = nullptr;
  const FuncSig *Sig = nullptr;
  bool IsIntrinsic = false;

  if (E->Callee->Kind == ExprKind::VarRef) {
    const auto *V = static_cast<const VarRefExpr *>(E->Callee.get());
    if (!lookup(V->Name) && !M->getGlobal(V->Name)) {
      Function *F = M->getFunction(V->Name);
      if (!F)
        F = getOrDeclareIntrinsic(V->Name);
      if (F) {
        Callee = F;
        auto It = FunctionDecls.find(V->Name);
        if (It != FunctionDecls.end())
          Sig = &It->second->Sig;
        IsIntrinsic = F->isIntrinsic();
      }
    }
  }

  CType CalleeCTy;
  if (!Callee) {
    RValue CV = genExpr(E->Callee.get());
    if (hadError())
      return CV;
    if (!CV.Ty.Sig) {
      fail(E->Line, "called object is not a function");
      return {M->getInt32(0), CType::scalar(BaseType::Int)};
    }
    Callee = CV.V;
    CalleeCTy = CV.Ty;
    Sig = CV.Ty.Sig.get();
  }

  // Static callee type for arg conversion.
  auto *FT = cast<FunctionType>(
      cast<PointerType>(Callee->getType())->getPointee());

  std::vector<Value *> Args;
  for (size_t I = 0; I != E->Args.size(); ++I) {
    RValue A = genExpr(E->Args[I].get());
    if (hadError())
      return A;
    if (I < FT->getNumParams()) {
      Args.push_back(B.createConvert(A.V, FT->getParamType(I)));
    } else {
      // Default varargs promotions: float -> double, small ints -> i32.
      Type *Ty = A.V->getType();
      if (Ty->getKind() == TypeKind::Float)
        Args.push_back(B.createConvert(A.V, Ctx.getDoubleType()));
      else if (Ty->isInteger() && Ty->getIntegerBitWidth() < 32)
        Args.push_back(B.createConvert(A.V, Ctx.getInt32Type()));
      else
        Args.push_back(A.V);
    }
  }
  if (Args.size() < FT->getNumParams()) {
    fail(E->Line, "too few call arguments");
    return {M->getInt32(0), CType::scalar(BaseType::Int)};
  }

  // setjmp/longjmp and pure intrinsics cannot raise MiniC exceptions.
  Value *Result =
      emitCallMaybeInvoke(Callee, std::move(Args), !IsIntrinsic);

  CType RetTy = Sig ? Sig->Ret : CType::scalar(BaseType::Int);
  if (FT->getReturnType()->isVoid())
    RetTy = CType::scalar(BaseType::Void);
  return {Result, RetTy};
}

LValue IRGenImpl::genLValue(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::VarRef: {
    const auto *V = static_cast<const VarRefExpr *>(E);
    if (ScopedVar *SV = lookup(V->Name))
      return {SV->Addr, SV->Ty};
    if (GlobalVariable *GV = M->getGlobal(V->Name)) {
      for (const GlobalDecl &G : P.Globals)
        if (G.Name == V->Name)
          return {GV, G.Ty};
      // String literal global (shouldn't be named directly).
      return {GV, CType::scalar(BaseType::Int)};
    }
    fail(E->Line, "unknown variable '" + V->Name + "'");
    return {};
  }
  case ExprKind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    if (U->Op == UnaryOp::Deref) {
      RValue V = genExpr(U->Sub.get());
      if (!V.Ty.isPointerLike()) {
        fail(E->Line, "dereference of non-pointer");
        return {};
      }
      return {V.V, V.Ty.pointee()};
    }
    break;
  }
  case ExprKind::Index: {
    const auto *I = static_cast<const IndexExpr *>(E);
    RValue Base = genExpr(I->Base.get());
    RValue Idx = genExpr(I->Idx.get());
    if (hadError())
      return {};
    if (!Base.Ty.isPointerLike()) {
      fail(E->Line, "indexing a non-pointer");
      return {};
    }
    Idx = convert(Idx, CType::scalar(BaseType::Long));
    return {B.createGEP(Base.V, Idx.V), Base.Ty.pointee()};
  }
  default:
    break;
  }
  fail(E->Line, "expression is not assignable");
  return {};
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> IRGenImpl::run() {
  declareFunctions();
  if (hadError())
    return nullptr;
  declareGlobals();
  if (hadError())
    return nullptr;
  for (const FunctionDecl &FD : P.Functions) {
    if (!FD.Body)
      continue;
    genFunctionBody(FD);
    if (hadError())
      return nullptr;
  }
  std::vector<std::string> Problems = verifyModule(*M);
  if (!Problems.empty()) {
    Error = "IR verification failed: " + Problems.front();
    return nullptr;
  }
  return std::move(M);
}

std::unique_ptr<Module> minic::generateIR(const Program &P, Context &Ctx,
                                          const std::string &ModuleName,
                                          std::string &Error) {
  return IRGenImpl(P, Ctx, ModuleName, Error).run();
}

std::unique_ptr<Module> khaos::compileMiniC(const std::string &Source,
                                            Context &Ctx,
                                            const std::string &ModuleName,
                                            std::string &Error) {
  std::unique_ptr<Program> Prog = minic::parseProgram(Source, Error);
  if (!Prog)
    return nullptr;
  return minic::generateIR(*Prog, Ctx, ModuleName, Error);
}
