//===- frontend/Parser.cpp - MiniC parser ---------------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace khaos;
using namespace khaos::minic;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string &Error)
      : Tokens(std::move(Tokens)), Error(Error) {}

  std::unique_ptr<Program> run();

private:
  // Token plumbing.
  const Token &peek(unsigned Off = 0) const {
    size_t Idx = Pos + Off;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++
                                                                 : Pos]; }
  bool check(Tok K) const { return peek().Kind == K; }
  bool match(Tok K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(Tok K, const char *What) {
    if (match(K))
      return true;
    fail(formatStr("expected %s", What));
    return false;
  }
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatStr("line %d: %s", peek().Line, Msg.c_str());
  }
  bool hadError() const { return !Error.empty(); }
  int line() const { return peek().Line; }

  // Types.
  bool atTypeKeyword(unsigned Off = 0) const {
    Tok K = peek(Off).Kind;
    return K == Tok::KwVoid || K == Tok::KwChar || K == Tok::KwInt ||
           K == Tok::KwLong || K == Tok::KwFloat || K == Tok::KwDouble;
  }
  CType parseTypeSpec();
  bool parseParamList(FuncSig &Sig, std::vector<std::string> &Names);

  // Top level.
  void parseTopLevel(Program &P);
  void parseGlobalTail(Program &P, CType Ty, std::string Name, int Line);

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseDeclTail(CType BaseTy, bool AllowMulti);
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoWhile();
  StmtPtr parseFor();
  StmtPtr parseSwitch();
  StmtPtr parseTry();

  // Expressions (precedence climbing).
  ExprPtr parseExpr() { return parseAssign(); }
  ExprPtr parseAssign();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

CType Parser::parseTypeSpec() {
  CType T;
  switch (peek().Kind) {
  case Tok::KwVoid:
    T.Base = BaseType::Void;
    break;
  case Tok::KwChar:
    T.Base = BaseType::Char;
    break;
  case Tok::KwInt:
    T.Base = BaseType::Int;
    break;
  case Tok::KwLong:
    T.Base = BaseType::Long;
    break;
  case Tok::KwFloat:
    T.Base = BaseType::Float;
    break;
  case Tok::KwDouble:
    T.Base = BaseType::Double;
    break;
  default:
    fail("expected a type");
    return T;
  }
  advance();
  while (match(Tok::Star))
    ++T.PtrDepth;
  return T;
}

/// Parses "(params)" into \p Sig; parameter names (possibly empty strings)
/// go to \p Names. Assumes the '(' is already consumed.
bool Parser::parseParamList(FuncSig &Sig, std::vector<std::string> &Names) {
  if (match(Tok::RParen))
    return true;
  if (check(Tok::KwVoid) && peek(1).Kind == Tok::RParen) {
    advance();
    advance();
    return true;
  }
  while (true) {
    if (match(Tok::Ellipsis)) {
      Sig.VarArg = true;
      return expect(Tok::RParen, "')'");
    }
    CType PT = parseTypeSpec();
    if (hadError())
      return false;
    std::string Name;
    // Function-pointer parameter: T (*name)(args).
    if (check(Tok::LParen) && peek(1).Kind == Tok::Star) {
      advance();
      advance();
      if (check(Tok::Identifier))
        Name = advance().Text;
      if (!expect(Tok::RParen, "')'") || !expect(Tok::LParen, "'('"))
        return false;
      auto Inner = std::make_shared<FuncSig>();
      Inner->Ret = PT;
      std::vector<std::string> Ignored;
      if (!parseParamList(*Inner, Ignored))
        return false;
      CType FP;
      FP.Base = BaseType::Void;
      FP.Sig = Inner;
      PT = FP;
    } else if (check(Tok::Identifier)) {
      Name = advance().Text;
    }
    // Array parameter decays to pointer.
    if (match(Tok::LBracket)) {
      if (check(Tok::IntLiteral))
        advance();
      if (!expect(Tok::RBracket, "']'"))
        return false;
      ++PT.PtrDepth;
    }
    Sig.Params.push_back(PT);
    Names.push_back(Name);
    if (match(Tok::RParen))
      return true;
    if (!expect(Tok::Comma, "',' or ')'"))
      return false;
  }
}

void Parser::parseGlobalTail(Program &P, CType Ty, std::string Name,
                             int Line) {
  // Optional array suffix.
  if (match(Tok::LBracket)) {
    if (!check(Tok::IntLiteral)) {
      fail("global array needs a constant size");
      return;
    }
    Ty.ArraySize = advance().IntValue;
    if (!expect(Tok::RBracket, "']'"))
      return;
  }
  GlobalDecl G;
  G.Ty = Ty;
  G.Name = std::move(Name);
  G.Line = Line;
  if (match(Tok::Assign)) {
    if (match(Tok::LBrace)) {
      while (!check(Tok::RBrace)) {
        G.Init.push_back(parseConditional());
        if (hadError())
          return;
        if (!match(Tok::Comma))
          break;
      }
      if (!expect(Tok::RBrace, "'}'"))
        return;
    } else {
      G.Init.push_back(parseConditional());
      if (hadError())
        return;
    }
  }
  expect(Tok::Semicolon, "';'");
  P.Globals.push_back(std::move(G));
}

void Parser::parseTopLevel(Program &P) {
  bool IsExtern = match(Tok::KwExtern);
  bool IsExported = match(Tok::KwExport);
  int Line = line();
  CType Ty = parseTypeSpec();
  if (hadError())
    return;

  // Global function pointer (or array thereof): T (*name[N])(args);
  if (check(Tok::LParen) && peek(1).Kind == Tok::Star) {
    advance();
    advance();
    if (!check(Tok::Identifier)) {
      fail("expected function pointer name");
      return;
    }
    std::string Name = advance().Text;
    int64_t ArrSize = -1;
    if (match(Tok::LBracket)) {
      if (!check(Tok::IntLiteral)) {
        fail("function pointer array needs a constant size");
        return;
      }
      ArrSize = advance().IntValue;
      if (!expect(Tok::RBracket, "']'"))
        return;
    }
    if (!expect(Tok::RParen, "')'") || !expect(Tok::LParen, "'('"))
      return;
    auto Inner = std::make_shared<FuncSig>();
    Inner->Ret = Ty;
    std::vector<std::string> Ignored;
    if (!parseParamList(*Inner, Ignored))
      return;
    CType FP;
    FP.Base = BaseType::Void;
    FP.Sig = Inner;
    FP.ArraySize = ArrSize;
    parseGlobalTail(P, FP, Name, Line);
    return;
  }

  if (!check(Tok::Identifier)) {
    fail("expected a name");
    return;
  }
  std::string Name = advance().Text;

  if (check(Tok::LParen)) {
    // Function declaration or definition.
    advance();
    FunctionDecl F;
    F.Name = std::move(Name);
    F.Sig.Ret = Ty;
    F.IsExtern = IsExtern;
    F.IsExported = IsExported;
    F.Line = Line;
    if (!parseParamList(F.Sig, F.ParamNames))
      return;
    if (match(Tok::Semicolon)) {
      F.IsExtern = true;
      P.Functions.push_back(std::move(F));
      return;
    }
    F.Body = parseBlock();
    if (hadError())
      return;
    P.Functions.push_back(std::move(F));
    return;
  }

  if (IsExtern) {
    fail("extern globals are not supported");
    return;
  }
  parseGlobalTail(P, Ty, std::move(Name), Line);
}

StmtPtr Parser::parseBlock() {
  int Line = line();
  if (!expect(Tok::LBrace, "'{'"))
    return nullptr;
  auto B = std::make_unique<BlockStmt>(Line);
  while (!check(Tok::RBrace) && !check(Tok::End) && !hadError())
    if (StmtPtr S = parseStmt())
      B->Stmts.push_back(std::move(S));
  expect(Tok::RBrace, "'}'");
  return B;
}

/// Parses the declarator list after the type of a local declaration.
/// Multiple declarators expand into a Block of DeclStmts.
StmtPtr Parser::parseDeclTail(CType BaseTy, bool AllowMulti) {
  int Line = line();
  auto Blk = std::make_unique<BlockStmt>(Line);
  while (true) {
    CType Ty = BaseTy;
    std::string Name;
    // Function-pointer declarator.
    if (check(Tok::LParen) && peek(1).Kind == Tok::Star) {
      advance();
      advance();
      if (!check(Tok::Identifier)) {
        fail("expected function pointer name");
        return nullptr;
      }
      Name = advance().Text;
      if (!expect(Tok::RParen, "')'") || !expect(Tok::LParen, "'('"))
        return nullptr;
      auto Inner = std::make_shared<FuncSig>();
      Inner->Ret = Ty;
      std::vector<std::string> Ignored;
      if (!parseParamList(*Inner, Ignored))
        return nullptr;
      CType FP;
      FP.Base = BaseType::Void;
      FP.Sig = Inner;
      Ty = FP;
    } else {
      if (!check(Tok::Identifier)) {
        fail("expected variable name");
        return nullptr;
      }
      Name = advance().Text;
      if (match(Tok::LBracket)) {
        if (!check(Tok::IntLiteral)) {
          fail("array size must be an integer literal");
          return nullptr;
        }
        Ty.ArraySize = advance().IntValue;
        if (!expect(Tok::RBracket, "']'"))
          return nullptr;
      }
    }
    ExprPtr Init;
    if (match(Tok::Assign)) {
      Init = parseExpr();
      if (hadError())
        return nullptr;
    }
    Blk->Stmts.push_back(
        std::make_unique<DeclStmt>(Ty, std::move(Name), std::move(Init),
                                   Line));
    if (AllowMulti && match(Tok::Comma))
      continue;
    break;
  }
  if (!expect(Tok::Semicolon, "';'"))
    return nullptr;
  if (Blk->Stmts.size() == 1)
    return std::move(Blk->Stmts.front());
  return Blk;
}

StmtPtr Parser::parseStmt() {
  int Line = line();
  switch (peek().Kind) {
  case Tok::LBrace:
    return parseBlock();
  case Tok::Semicolon:
    advance();
    return std::make_unique<ExprStmt>(nullptr, Line);
  case Tok::KwIf:
    return parseIf();
  case Tok::KwWhile:
    return parseWhile();
  case Tok::KwDo:
    return parseDoWhile();
  case Tok::KwFor:
    return parseFor();
  case Tok::KwSwitch:
    return parseSwitch();
  case Tok::KwTry:
    return parseTry();
  case Tok::KwThrow: {
    advance();
    ExprPtr V = parseExpr();
    expect(Tok::Semicolon, "';'");
    return std::make_unique<ThrowStmt>(std::move(V), Line);
  }
  case Tok::KwReturn: {
    advance();
    ExprPtr V;
    if (!check(Tok::Semicolon))
      V = parseExpr();
    expect(Tok::Semicolon, "';'");
    return std::make_unique<ReturnStmt>(std::move(V), Line);
  }
  case Tok::KwBreak:
    advance();
    expect(Tok::Semicolon, "';'");
    return std::make_unique<BreakStmt>(Line);
  case Tok::KwContinue:
    advance();
    expect(Tok::Semicolon, "';'");
    return std::make_unique<ContinueStmt>(Line);
  case Tok::KwGoto: {
    advance();
    if (!check(Tok::Identifier)) {
      fail("expected label name after 'goto'");
      return nullptr;
    }
    std::string Label = advance().Text;
    expect(Tok::Semicolon, "';'");
    return std::make_unique<GotoStmt>(std::move(Label), Line);
  }
  default:
    break;
  }
  if (atTypeKeyword())
    return parseDeclTail(parseTypeSpec(), /*AllowMulti=*/true);
  // Labelled statement: `name: stmt`. Two-token lookahead keeps this
  // unambiguous with expression statements (no other statement starts
  // with `identifier :`).
  if (check(Tok::Identifier) && peek(1).Kind == Tok::Colon) {
    std::string Name = advance().Text;
    advance(); // ':'
    StmtPtr Body = parseStmt();
    return std::make_unique<LabelStmt>(std::move(Name), std::move(Body),
                                       Line);
  }
  ExprPtr E = parseExpr();
  expect(Tok::Semicolon, "';'");
  return std::make_unique<ExprStmt>(std::move(E), Line);
}

StmtPtr Parser::parseIf() {
  int Line = line();
  advance(); // if
  if (!expect(Tok::LParen, "'('"))
    return nullptr;
  ExprPtr C = parseExpr();
  if (!expect(Tok::RParen, "')'"))
    return nullptr;
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (match(Tok::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(std::move(C), std::move(Then),
                                  std::move(Else), Line);
}

StmtPtr Parser::parseWhile() {
  int Line = line();
  advance(); // while
  if (!expect(Tok::LParen, "'('"))
    return nullptr;
  ExprPtr C = parseExpr();
  if (!expect(Tok::RParen, "')'"))
    return nullptr;
  StmtPtr B = parseStmt();
  return std::make_unique<WhileStmt>(std::move(C), std::move(B), Line);
}

StmtPtr Parser::parseDoWhile() {
  int Line = line();
  advance(); // do
  StmtPtr B = parseStmt();
  if (!expect(Tok::KwWhile, "'while'") || !expect(Tok::LParen, "'('"))
    return nullptr;
  ExprPtr C = parseExpr();
  if (!expect(Tok::RParen, "')'") || !expect(Tok::Semicolon, "';'"))
    return nullptr;
  return std::make_unique<DoWhileStmt>(std::move(B), std::move(C), Line);
}

StmtPtr Parser::parseFor() {
  int Line = line();
  advance(); // for
  if (!expect(Tok::LParen, "'('"))
    return nullptr;
  auto F = std::make_unique<ForStmt>(Line);
  if (!match(Tok::Semicolon)) {
    if (atTypeKeyword()) {
      F->Init = parseDeclTail(parseTypeSpec(), /*AllowMulti=*/false);
    } else {
      ExprPtr E = parseExpr();
      expect(Tok::Semicolon, "';'");
      F->Init = std::make_unique<ExprStmt>(std::move(E), Line);
    }
  }
  if (!check(Tok::Semicolon))
    F->Cond = parseExpr();
  if (!expect(Tok::Semicolon, "';'"))
    return nullptr;
  if (!check(Tok::RParen))
    F->Step = parseExpr();
  if (!expect(Tok::RParen, "')'"))
    return nullptr;
  F->Body = parseStmt();
  return F;
}

StmtPtr Parser::parseSwitch() {
  int Line = line();
  advance(); // switch
  if (!expect(Tok::LParen, "'('"))
    return nullptr;
  ExprPtr C = parseExpr();
  if (!expect(Tok::RParen, "')'") || !expect(Tok::LBrace, "'{'"))
    return nullptr;
  auto S = std::make_unique<SwitchStmt>(std::move(C), Line);
  while (!check(Tok::RBrace) && !check(Tok::End) && !hadError()) {
    SwitchCase Case;
    if (match(Tok::KwCase)) {
      bool Neg = match(Tok::Minus);
      if (!check(Tok::IntLiteral) && !check(Tok::CharLiteral)) {
        fail("case label must be an integer literal");
        return nullptr;
      }
      Case.Value = advance().IntValue;
      if (Neg)
        Case.Value = -Case.Value;
    } else if (match(Tok::KwDefault)) {
      Case.IsDefault = true;
    } else {
      fail("expected 'case' or 'default'");
      return nullptr;
    }
    if (!expect(Tok::Colon, "':'"))
      return nullptr;
    while (!check(Tok::KwCase) && !check(Tok::KwDefault) &&
           !check(Tok::RBrace) && !check(Tok::End) && !hadError())
      Case.Body.push_back(parseStmt());
    S->Cases.push_back(std::move(Case));
  }
  expect(Tok::RBrace, "'}'");
  return S;
}

StmtPtr Parser::parseTry() {
  int Line = line();
  advance(); // try
  StmtPtr B = parseBlock();
  if (!expect(Tok::KwCatch, "'catch'") || !expect(Tok::LParen, "'('") ||
      !expect(Tok::KwInt, "'int'"))
    return nullptr;
  if (!check(Tok::Identifier)) {
    fail("expected catch variable name");
    return nullptr;
  }
  std::string Var = advance().Text;
  if (!expect(Tok::RParen, "')'"))
    return nullptr;
  StmtPtr H = parseBlock();
  return std::make_unique<TryStmt>(std::move(B), std::move(Var),
                                   std::move(H), Line);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseAssign() {
  ExprPtr L = parseConditional();
  if (hadError())
    return L;
  int Compound = -2;
  switch (peek().Kind) {
  case Tok::Assign:
    Compound = -1;
    break;
  case Tok::PlusAssign:
    Compound = (int)BinaryOp::Add;
    break;
  case Tok::MinusAssign:
    Compound = (int)BinaryOp::Sub;
    break;
  case Tok::StarAssign:
    Compound = (int)BinaryOp::Mul;
    break;
  case Tok::SlashAssign:
    Compound = (int)BinaryOp::Div;
    break;
  case Tok::PercentAssign:
    Compound = (int)BinaryOp::Rem;
    break;
  default:
    return L;
  }
  int Line = line();
  advance();
  ExprPtr R = parseAssign(); // Right associative.
  return std::make_unique<AssignExpr>(std::move(L), std::move(R), Compound,
                                      Line);
}

ExprPtr Parser::parseConditional() {
  ExprPtr C = parseBinary(0);
  if (hadError() || !check(Tok::Question))
    return C;
  int Line = line();
  advance();
  ExprPtr T = parseExpr();
  if (!expect(Tok::Colon, "':'"))
    return C;
  ExprPtr F = parseConditional();
  return std::make_unique<ConditionalExpr>(std::move(C), std::move(T),
                                           std::move(F), Line);
}

/// Binary operator precedence (higher binds tighter).
static int binPrec(Tok K) {
  switch (K) {
  case Tok::Star:
  case Tok::Slash:
  case Tok::Percent:
    return 10;
  case Tok::Plus:
  case Tok::Minus:
    return 9;
  case Tok::Shl:
  case Tok::Shr:
    return 8;
  case Tok::Lt:
  case Tok::Le:
  case Tok::Gt:
  case Tok::Ge:
    return 7;
  case Tok::EqEq:
  case Tok::NotEq:
    return 6;
  case Tok::Amp:
    return 5;
  case Tok::Caret:
    return 4;
  case Tok::Pipe:
    return 3;
  case Tok::AmpAmp:
    return 2;
  case Tok::PipePipe:
    return 1;
  default:
    return -1;
  }
}

static BinaryOp binOpFor(Tok K) {
  switch (K) {
  case Tok::Star:
    return BinaryOp::Mul;
  case Tok::Slash:
    return BinaryOp::Div;
  case Tok::Percent:
    return BinaryOp::Rem;
  case Tok::Plus:
    return BinaryOp::Add;
  case Tok::Minus:
    return BinaryOp::Sub;
  case Tok::Shl:
    return BinaryOp::Shl;
  case Tok::Shr:
    return BinaryOp::Shr;
  case Tok::Lt:
    return BinaryOp::Lt;
  case Tok::Le:
    return BinaryOp::Le;
  case Tok::Gt:
    return BinaryOp::Gt;
  case Tok::Ge:
    return BinaryOp::Ge;
  case Tok::EqEq:
    return BinaryOp::Eq;
  case Tok::NotEq:
    return BinaryOp::Ne;
  case Tok::Amp:
    return BinaryOp::And;
  case Tok::Caret:
    return BinaryOp::Xor;
  case Tok::Pipe:
    return BinaryOp::Or;
  case Tok::AmpAmp:
    return BinaryOp::LogicalAnd;
  case Tok::PipePipe:
    return BinaryOp::LogicalOr;
  default:
    assert(false && "not a binary operator");
    return BinaryOp::Add;
  }
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr L = parseUnary();
  while (!hadError()) {
    int Prec = binPrec(peek().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return L;
    Tok K = peek().Kind;
    int Line = line();
    advance();
    ExprPtr R = parseBinary(Prec + 1);
    L = std::make_unique<BinaryExpr>(binOpFor(K), std::move(L),
                                     std::move(R), Line);
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  int Line = line();
  switch (peek().Kind) {
  case Tok::Minus:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Line);
  case Tok::Bang:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), Line);
  case Tok::Tilde:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary(), Line);
  case Tok::Star:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOp::Deref, parseUnary(), Line);
  case Tok::Amp:
    advance();
    return std::make_unique<UnaryExpr>(UnaryOp::AddrOf, parseUnary(), Line);
  case Tok::PlusPlus:
    advance();
    return std::make_unique<IncDecExpr>(true, true, parseUnary(), Line);
  case Tok::MinusMinus:
    advance();
    return std::make_unique<IncDecExpr>(false, true, parseUnary(), Line);
  case Tok::LParen:
    // Cast: '(' typename ')' unary.
    if (atTypeKeyword(1)) {
      advance();
      CType Ty = parseTypeSpec();
      if (!expect(Tok::RParen, "')'"))
        return nullptr;
      return std::make_unique<CastExpr>(Ty, parseUnary(), Line);
    }
    break;
  default:
    break;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (!hadError()) {
    int Line = line();
    if (match(Tok::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(Tok::RParen)) {
        do {
          Args.push_back(parseAssign());
        } while (match(Tok::Comma) && !hadError());
      }
      if (!expect(Tok::RParen, "')'"))
        return E;
      E = std::make_unique<CallExpr>(std::move(E), std::move(Args), Line);
      continue;
    }
    if (match(Tok::LBracket)) {
      ExprPtr I = parseExpr();
      if (!expect(Tok::RBracket, "']'"))
        return E;
      E = std::make_unique<IndexExpr>(std::move(E), std::move(I), Line);
      continue;
    }
    if (match(Tok::PlusPlus)) {
      E = std::make_unique<IncDecExpr>(true, false, std::move(E), Line);
      continue;
    }
    if (match(Tok::MinusMinus)) {
      E = std::make_unique<IncDecExpr>(false, false, std::move(E), Line);
      continue;
    }
    return E;
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  int Line = line();
  const Token &T = peek();
  switch (T.Kind) {
  case Tok::IntLiteral: {
    auto E = std::make_unique<IntLitExpr>(T.IntValue, T.IsLongLiteral,
                                          false, Line);
    advance();
    return E;
  }
  case Tok::CharLiteral: {
    auto E = std::make_unique<IntLitExpr>(T.IntValue, false, true, Line);
    advance();
    return E;
  }
  case Tok::FloatLiteral: {
    auto E = std::make_unique<FloatLitExpr>(T.FloatValue, T.IsFloatLiteral,
                                            Line);
    advance();
    return E;
  }
  case Tok::StringLiteral: {
    auto E = std::make_unique<StringLitExpr>(T.Text, Line);
    advance();
    return E;
  }
  case Tok::Identifier: {
    auto E = std::make_unique<VarRefExpr>(T.Text, Line);
    advance();
    return E;
  }
  case Tok::LParen: {
    advance();
    ExprPtr E = parseExpr();
    expect(Tok::RParen, "')'");
    return E;
  }
  default:
    fail("expected an expression");
    return std::make_unique<IntLitExpr>(0, false, false, Line);
  }
}

std::unique_ptr<Program> Parser::run() {
  auto P = std::make_unique<Program>();
  while (!check(Tok::End) && !hadError())
    parseTopLevel(*P);
  if (hadError())
    return nullptr;
  return P;
}

std::unique_ptr<Program> minic::parseProgram(const std::string &Source,
                                             std::string &Error) {
  std::vector<Token> Tokens = lexSource(Source, Error);
  if (!Error.empty())
    return nullptr;
  return Parser(std::move(Tokens), Error).run();
}
