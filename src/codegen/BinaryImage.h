//===- codegen/BinaryImage.h - Lowered program image ------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "binary" the diffing tools diff: machine functions laid out at
/// 16-byte-aligned addresses with a symbol table and data relocations
/// (whose addends carry fusion's pointer tags, paper appendix A.1).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_CODEGEN_BINARYIMAGE_H
#define KHAOS_CODEGEN_BINARYIMAGE_H

#include "codegen/TargetISA.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace khaos {

/// One machine instruction. Operand detail is kept at the granularity the
/// diffing features need: register/immediate/memory shape plus an optional
/// symbol reference (call target or global).
struct MInst {
  MOp Op = MOp::Nop;
  bool HasMemOperand = false;
  bool HasImmediate = false;
  int32_t SymId = -1; ///< Index into BinaryImage::Symbols, or -1.
  int64_t Imm = 0;    ///< Immediate value when HasImmediate.

  MInst() = default;
  explicit MInst(MOp Op, bool Mem = false, bool Imm = false,
                 int32_t SymId = -1, int64_t ImmVal = 0)
      : Op(Op), HasMemOperand(Mem), HasImmediate(Imm), SymId(SymId),
        Imm(ImmVal) {}
};

/// One machine basic block.
struct MBlock {
  std::string Name;
  std::vector<MInst> Insts;
  std::vector<uint32_t> Succs; ///< Indices into MFunction::Blocks.
};

/// One lowered function.
struct MFunction {
  std::string Name;
  uint64_t Address = 0; ///< 16-byte aligned.
  bool Exported = false;
  std::vector<std::string> Origins; ///< Provenance for pairing judgment.
  std::vector<MBlock> Blocks;

  size_t instructionCount() const {
    size_t N = 0;
    for (const MBlock &B : Blocks)
      N += B.Insts.size();
    return N;
  }
  size_t edgeCount() const {
    size_t N = 0;
    for (const MBlock &B : Blocks)
      N += B.Succs.size();
    return N;
  }
};

/// A data relocation: a pointer-sized slot referencing a function symbol.
/// The addend carries fusion's tag bits.
struct DataRelocation {
  std::string GlobalName;
  uint64_t Offset = 0;
  int32_t SymId = -1;
  int64_t Addend = 0;
};

/// The lowered program.
struct BinaryImage {
  std::string Name;
  std::vector<MFunction> Functions;
  std::vector<std::string> Symbols;
  std::vector<DataRelocation> DataRelocs;
  std::map<std::string, uint32_t> FunctionIndex; ///< Name -> Functions idx.

  /// Interns \p S into Symbols, O(1) amortized per call via SymbolIndex
  /// (rebuilt lazily when Symbols was filled directly, e.g. by the wire
  /// codec). Returns the existing id for a known symbol.
  int32_t internSymbol(const std::string &S);
  const MFunction *findFunction(const std::string &Name) const;

  /// Whole-image opcode histogram (length NumMOpcodes).
  std::vector<double> opcodeHistogram() const;

  /// Disassembly-style dump for debugging and the examples.
  std::string disassemble() const;

private:
  /// Derived lookup index over Symbols; never serialized.
  std::unordered_map<std::string, int32_t> SymbolIndex;
};

} // namespace khaos

#endif // KHAOS_CODEGEN_BINARYIMAGE_H
