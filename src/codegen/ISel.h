//===- codegen/ISel.h - Instruction selection --------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a KIR module to a BinaryImage. Codegen style knobs approximate
/// what different -O levels and BinTuner's option mutations do to the
/// emitted instruction mix (spill-everything vs register reuse, lea-based
/// address math, cmov for selects, jump tables for switches).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_CODEGEN_ISEL_H
#define KHAOS_CODEGEN_ISEL_H

#include "codegen/BinaryImage.h"

namespace khaos {

class Module;

/// Which compiler's lowering idioms the ISel personality imitates. The
/// provenance literature (BinTuner, the binary-similarity survey) shows
/// gcc-vs-clang idiom deltas move diffing scores as much as obfuscation
/// does; modeling both makes that confound a first-class axis.
enum class CompilerStyle : uint8_t {
  /// test/setcc flag materialization, push/mov/sub prologue + leave/ret
  /// epilogue, cmov selects, jump tables, single-nop alignment.
  ClangLike = 0,
  /// Fused cmp+jcc compare-branches (no test/setcc/cmov), add reg,-N
  /// prologue + add/pop/ret epilogue, branchy mov-chain selects, linear
  /// cmp/jcc switch ladders, paired-nop alignment, lea-based
  /// strength reduction for x3/x5/x9 multiplies.
  GccLike = 1,
};

/// "clang" / "gcc".
const char *compilerStyleName(CompilerStyle Style);

/// Codegen style; defaults model clang -O2.
struct CodegenOptions {
  bool SpillEverything = false; ///< -O0-style: reload/spill around each op.
  bool UseLea = true;           ///< Address math via lea.
  bool UseCmov = true;          ///< Branchless selects.
  bool UseJumpTables = true;    ///< Switches >= 4 cases become jump tables.
  bool AlignLoops = true;       ///< Nop padding in front of loop heads.
  /// The lowering personality. GccLike overrides UseCmov/UseJumpTables
  /// the way a real compiler's idioms trump tuning flags: selects are
  /// always branchy, switches always linear ladders.
  CompilerStyle Style = CompilerStyle::ClangLike;
};

/// Lowers \p M. Function addresses are assigned in order, 16-byte aligned.
BinaryImage lowerToBinary(const Module &M,
                          const CodegenOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_CODEGEN_ISEL_H
