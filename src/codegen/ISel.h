//===- codegen/ISel.h - Instruction selection --------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a KIR module to a BinaryImage. Codegen style knobs approximate
/// what different -O levels and BinTuner's option mutations do to the
/// emitted instruction mix (spill-everything vs register reuse, lea-based
/// address math, cmov for selects, jump tables for switches).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_CODEGEN_ISEL_H
#define KHAOS_CODEGEN_ISEL_H

#include "codegen/BinaryImage.h"

namespace khaos {

class Module;

/// Codegen style; defaults model -O2.
struct CodegenOptions {
  bool SpillEverything = false; ///< -O0-style: reload/spill around each op.
  bool UseLea = true;           ///< Address math via lea.
  bool UseCmov = true;          ///< Branchless selects.
  bool UseJumpTables = true;    ///< Switches >= 4 cases become jump tables.
  bool AlignLoops = true;       ///< Nop padding in front of loop heads.
};

/// Lowers \p M. Function addresses are assigned in order, 16-byte aligned.
BinaryImage lowerToBinary(const Module &M,
                          const CodegenOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_CODEGEN_ISEL_H
