//===- codegen/ISel.cpp - Instruction selection -----------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"

#include "ir/Module.h"
#include "support/StringUtils.h"

#include <map>

using namespace khaos;

const char *khaos::mopName(MOp Op) {
  switch (Op) {
  case MOp::Mov:
    return "mov";
  case MOp::MovImm:
    return "movi";
  case MOp::Movsx:
    return "movsx";
  case MOp::Movzx:
    return "movzx";
  case MOp::Lea:
    return "lea";
  case MOp::Push:
    return "push";
  case MOp::Pop:
    return "pop";
  case MOp::LoadM:
    return "ld";
  case MOp::StoreM:
    return "st";
  case MOp::Add:
    return "add";
  case MOp::Sub:
    return "sub";
  case MOp::IMul:
    return "imul";
  case MOp::IDiv:
    return "idiv";
  case MOp::Cdq:
    return "cdq";
  case MOp::Neg:
    return "neg";
  case MOp::And:
    return "and";
  case MOp::Or:
    return "or";
  case MOp::Xor:
    return "xor";
  case MOp::Not:
    return "not";
  case MOp::Shl:
    return "shl";
  case MOp::Sar:
    return "sar";
  case MOp::Shr:
    return "shr";
  case MOp::Cmp:
    return "cmp";
  case MOp::Test:
    return "test";
  case MOp::SetCC:
    return "setcc";
  case MOp::Cmov:
    return "cmov";
  case MOp::Movss:
    return "movss";
  case MOp::Movsd:
    return "movsd";
  case MOp::Addss:
    return "addss";
  case MOp::Addsd:
    return "addsd";
  case MOp::Subss:
    return "subss";
  case MOp::Subsd:
    return "subsd";
  case MOp::Mulss:
    return "mulss";
  case MOp::Mulsd:
    return "mulsd";
  case MOp::Divss:
    return "divss";
  case MOp::Divsd:
    return "divsd";
  case MOp::Ucomis:
    return "ucomis";
  case MOp::Cvtsi2s:
    return "cvtsi2s";
  case MOp::Cvtts2si:
    return "cvtts2si";
  case MOp::Cvts2s:
    return "cvts2s";
  case MOp::Jmp:
    return "jmp";
  case MOp::Jcc:
    return "jcc";
  case MOp::Call:
    return "call";
  case MOp::CallIndirect:
    return "calli";
  case MOp::Ret:
    return "ret";
  case MOp::Leave:
    return "leave";
  case MOp::Ud2:
    return "ud2";
  case MOp::Nop:
    return "nop";
  case MOp::NumOpcodes:
    break;
  }
  return "?";
}

const char *khaos::compilerStyleName(CompilerStyle Style) {
  return Style == CompilerStyle::GccLike ? "gcc" : "clang";
}

int32_t BinaryImage::internSymbol(const std::string &S) {
  // Symbols may have been filled directly (the wire codec does when
  // decoding an image); rebuild the index lazily when it is stale instead
  // of requiring every writer to maintain it.
  if (SymbolIndex.size() != Symbols.size()) {
    SymbolIndex.clear();
    for (size_t I = 0; I != Symbols.size(); ++I)
      SymbolIndex.emplace(Symbols[I], static_cast<int32_t>(I));
  }
  auto It = SymbolIndex.find(S);
  if (It != SymbolIndex.end())
    return It->second;
  int32_t Id = static_cast<int32_t>(Symbols.size());
  Symbols.push_back(S);
  SymbolIndex.emplace(S, Id);
  return Id;
}

const MFunction *BinaryImage::findFunction(const std::string &Name) const {
  auto It = FunctionIndex.find(Name);
  return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
}

std::vector<double> BinaryImage::opcodeHistogram() const {
  std::vector<double> H(NumMOpcodes, 0.0);
  for (const MFunction &F : Functions)
    for (const MBlock &B : F.Blocks)
      for (const MInst &I : B.Insts)
        H[static_cast<unsigned>(I.Op)] += 1.0;
  return H;
}

std::string BinaryImage::disassemble() const {
  std::string Out;
  for (const MFunction &F : Functions) {
    Out += formatStr("%016llx <%s>:%s\n", (unsigned long long)F.Address,
                     F.Name.c_str(), F.Exported ? " (exported)" : "");
    for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
      const MBlock &B = F.Blocks[BI];
      Out += formatStr(".%s:\n", B.Name.c_str());
      for (const MInst &I : B.Insts) {
        Out += formatStr("    %-10s", mopName(I.Op));
        if (I.SymId >= 0)
          Out += " <" + Symbols[I.SymId] + ">";
        if (I.HasMemOperand)
          Out += " [mem]";
        if (I.HasImmediate)
          Out += formatStr(" $%lld", (long long)I.Imm);
        Out += "\n";
      }
    }
  }
  return Out;
}

namespace {

/// Lowers one function.
class FunctionLowering {
public:
  FunctionLowering(const Function &F, BinaryImage &Image,
                   const CodegenOptions &Opts)
      : F(F), Image(Image), Opts(Opts) {}

  MFunction run();

private:
  void emit(MOp Op, bool Mem = false, bool Imm = false, int32_t Sym = -1,
            int64_t ImmVal = 0) {
    Cur->Insts.emplace_back(Op, Mem, Imm, Sym, ImmVal);
  }
  /// Immediate value of a constant operand, or 0.
  static int64_t immOf(const Value *V) {
    const auto *C = dyn_cast<ConstantInt>(V);
    return C ? C->getValue() : 0;
  }
  bool gccLike() const { return Opts.Style == CompilerStyle::GccLike; }
  /// Operand fetch/spill traffic in -O0 style.
  void touchOperand(const Value *V);
  void spillResult() {
    if (Opts.SpillEverything)
      emit(MOp::StoreM, /*Mem=*/true);
  }
  void lowerInst(const Instruction *I);
  void lowerBinOp(const BinaryInst *B);
  void lowerCast(const CastInst *C);
  void lowerCall(const CallInst *C);

  const Function &F;
  BinaryImage &Image;
  const CodegenOptions &Opts;
  MBlock *Cur = nullptr;
  std::map<const BasicBlock *, uint32_t> BlockIndex;
  MFunction MF;
};

} // namespace

void FunctionLowering::touchOperand(const Value *V) {
  if (!Opts.SpillEverything)
    return;
  if (isa<ConstantInt>(V) || isa<ConstantFP>(V) || isa<ConstantNull>(V))
    emit(MOp::MovImm, /*Mem=*/false, /*Imm=*/true);
  else
    emit(MOp::LoadM, /*Mem=*/true);
}

void FunctionLowering::lowerBinOp(const BinaryInst *B) {
  touchOperand(B->getLHS());
  touchOperand(B->getRHS());
  bool IsF32 = B->getType()->getKind() == TypeKind::Float;
  // x86 encodes constant operands as inline immediates; record them (the
  // diffing tools key on distinctive constants).
  bool RImm = isa<ConstantInt>(B->getRHS());
  int64_t RVal = immOf(B->getRHS());
  switch (B->getBinOp()) {
  case BinOp::Add:
    emit(MOp::Add, false, RImm, -1, RVal);
    break;
  case BinOp::Sub:
    emit(MOp::Sub, false, RImm, -1, RVal);
    break;
  case BinOp::Mul: {
    // Strength-reduce multiplications by powers of two. The immediate is
    // the shift count — the value a real encoder emits (and what
    // immediate-keyed diffing features see).
    const auto *C = dyn_cast<ConstantInt>(B->getRHS());
    int64_t V = C ? C->getValue() : 0;
    if (C && V > 0 && (V & (V - 1)) == 0) {
      int64_t Shift = 0;
      while ((int64_t(1) << Shift) < V)
        ++Shift;
      emit(MOp::Shl, false, true, -1, Shift);
    } else if (gccLike() && (V == 3 || V == 5 || V == 9)) {
      // gcc strength-reduces x3/x5/x9 to lea r, [r + r*(V-1)].
      emit(MOp::Lea, /*Mem=*/true);
    } else {
      emit(MOp::IMul, false, RImm, -1, RVal);
    }
    break;
  }
  case BinOp::SDiv:
  case BinOp::SRem:
    emit(MOp::Cdq);
    emit(MOp::IDiv);
    break;
  case BinOp::And:
    emit(MOp::And, false, RImm, -1, RVal);
    break;
  case BinOp::Or:
    emit(MOp::Or, false, RImm, -1, RVal);
    break;
  case BinOp::Xor:
    emit(MOp::Xor, false, RImm, -1, RVal);
    break;
  case BinOp::Shl:
    emit(MOp::Shl, false, RImm, -1, RVal);
    break;
  case BinOp::AShr:
    emit(MOp::Sar, false, RImm, -1, RVal);
    break;
  case BinOp::LShr:
    emit(MOp::Shr, false, RImm, -1, RVal);
    break;
  case BinOp::FAdd:
    emit(IsF32 ? MOp::Addss : MOp::Addsd);
    break;
  case BinOp::FSub:
    emit(IsF32 ? MOp::Subss : MOp::Subsd);
    break;
  case BinOp::FMul:
    emit(IsF32 ? MOp::Mulss : MOp::Mulsd);
    break;
  case BinOp::FDiv:
    emit(IsF32 ? MOp::Divss : MOp::Divsd);
    break;
  }
  spillResult();
}

void FunctionLowering::lowerCast(const CastInst *C) {
  touchOperand(C->getSource());
  switch (C->getCastKind()) {
  case CastKind::Trunc:
    emit(MOp::Mov);
    break;
  case CastKind::SExt:
    emit(MOp::Movsx);
    break;
  case CastKind::ZExt:
    emit(MOp::Movzx);
    break;
  case CastKind::FPToSI:
    emit(MOp::Cvtts2si);
    break;
  case CastKind::SIToFP:
    emit(MOp::Cvtsi2s);
    break;
  case CastKind::FPTrunc:
  case CastKind::FPExt:
    emit(MOp::Cvts2s);
    break;
  case CastKind::Bitcast:
  case CastKind::PtrToInt:
  case CastKind::IntToPtr:
    emit(MOp::Mov);
    break;
  }
  spillResult();
}

void FunctionLowering::lowerCall(const CallInst *C) {
  unsigned NumArgs = C->getNumArgs();
  // SysV: six register args, rest pushed.
  for (unsigned I = 0; I != NumArgs; ++I) {
    touchOperand(C->getArg(I));
    if (I < 6) {
      Type *Ty = C->getArg(I)->getType();
      emit(Ty->isFloatingPoint()
               ? (Ty->getKind() == TypeKind::Float ? MOp::Movss
                                                   : MOp::Movsd)
               : MOp::Mov);
    } else {
      emit(MOp::Push);
    }
  }
  if (const Function *Callee = C->getCalledFunction()) {
    emit(MOp::Call, false, false,
         Image.internSymbol(Callee->getName()));
  } else {
    touchOperand(C->getCallee());
    emit(MOp::CallIndirect, /*Mem=*/true);
  }
  if (NumArgs > 6)
    emit(MOp::Add, false, true); // Stack cleanup.
  if (C->getType() && !C->getType()->isVoid()) {
    emit(MOp::Mov); // Result out of rax/xmm0.
    spillResult();
  }
}

void FunctionLowering::lowerInst(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Alloca:
    // Frame space is reserved in the prologue; materialize the address.
    emit(MOp::Lea, /*Mem=*/true);
    spillResult();
    break;
  case Opcode::Load:
    touchOperand(cast<LoadInst>(I)->getPointer());
    emit(MOp::LoadM, /*Mem=*/true);
    spillResult();
    break;
  case Opcode::Store:
    touchOperand(cast<StoreInst>(I)->getStoredValue());
    touchOperand(cast<StoreInst>(I)->getPointer());
    emit(MOp::StoreM, /*Mem=*/true);
    break;
  case Opcode::BinOp:
    lowerBinOp(cast<BinaryInst>(I));
    break;
  case Opcode::Cmp:
    touchOperand(cast<CmpInst>(I)->getLHS());
    touchOperand(cast<CmpInst>(I)->getRHS());
    if (cast<CmpInst>(I)->getLHS()->getType()->isFloatingPoint())
      emit(MOp::Ucomis);
    else
      emit(MOp::Cmp, false, isa<ConstantInt>(cast<CmpInst>(I)->getRHS()),
           -1, immOf(cast<CmpInst>(I)->getRHS()));
    // Clang-like materializes the flag into a register (setcc); gcc-like
    // keeps it in EFLAGS for the consuming fused compare-branch.
    if (!gccLike()) {
      emit(MOp::SetCC);
      spillResult();
    }
    break;
  case Opcode::Cast:
    lowerCast(cast<CastInst>(I));
    break;
  case Opcode::GEP:
    touchOperand(cast<GEPInst>(I)->getPointer());
    touchOperand(cast<GEPInst>(I)->getIndex());
    if (Opts.UseLea) {
      emit(MOp::Lea, /*Mem=*/true);
    } else {
      emit(MOp::IMul, false, true);
      emit(MOp::Add);
    }
    spillResult();
    break;
  case Opcode::Select:
    touchOperand(I->getOperand(0));
    touchOperand(I->getOperand(1));
    touchOperand(I->getOperand(2));
    if (gccLike()) {
      // Branchy mov chain off a cmp-with-zero — gcc's select idiom,
      // regardless of the cmov tuning flag.
      emit(MOp::Cmp, false, true, -1, 0);
      emit(MOp::Jcc);
      emit(MOp::Mov);
      emit(MOp::Jmp);
      emit(MOp::Mov);
    } else {
      emit(MOp::Test);
      if (Opts.UseCmov) {
        emit(MOp::Cmov);
      } else {
        emit(MOp::Jcc);
        emit(MOp::Mov);
        emit(MOp::Jmp);
        emit(MOp::Mov);
      }
    }
    spillResult();
    break;
  case Opcode::Call:
  case Opcode::Invoke:
    lowerCall(cast<CallInst>(I));
    if (I->getOpcode() == Opcode::Invoke)
      emit(MOp::Jmp); // Normal-path continuation.
    break;
  case Opcode::LandingPad:
    emit(MOp::Mov); // Exception object out of the unwinder register.
    spillResult();
    break;
  case Opcode::Throw:
    emit(MOp::Call, false, false, Image.internSymbol("__cxa_throw"));
    emit(MOp::Ud2);
    break;
  case Opcode::Br: {
    const auto *BR = cast<BranchInst>(I);
    if (BR->isConditional()) {
      touchOperand(BR->getCondition());
      // Clang-like re-tests the materialized flag; gcc-like branches on
      // the EFLAGS its compare already set (fused cmp+jcc).
      if (!gccLike())
        emit(MOp::Test);
      emit(MOp::Jcc);
      emit(MOp::Jmp);
    } else {
      emit(MOp::Jmp);
    }
    break;
  }
  case Opcode::Switch: {
    const auto *SW = cast<SwitchInst>(I);
    touchOperand(SW->getCondition());
    // gcc-like always lowers switches to linear cmp/jcc ladders.
    if (!gccLike() && Opts.UseJumpTables && SW->getNumCases() >= 4) {
      emit(MOp::Cmp, false, true);
      emit(MOp::Jcc); // Bounds check.
      emit(MOp::Lea, true);
      emit(MOp::Jmp, true); // Indirect through the table.
    } else {
      for (unsigned C = 0, E = SW->getNumCases(); C != E; ++C) {
        emit(MOp::Cmp, false, true, -1, SW->getCaseValue(C));
        emit(MOp::Jcc);
      }
      emit(MOp::Jmp);
    }
    break;
  }
  case Opcode::Ret:
    if (cast<ReturnInst>(I)->hasReturnValue()) {
      touchOperand(cast<ReturnInst>(I)->getReturnValue());
      emit(MOp::Mov); // Into rax/xmm0.
    }
    if (gccLike()) {
      // add rsp, frame; pop rbp — gcc's explicit epilogue.
      emit(MOp::Add, false, true);
      emit(MOp::Pop);
    } else {
      emit(MOp::Leave);
    }
    emit(MOp::Ret);
    break;
  case Opcode::Unreachable:
    emit(MOp::Ud2);
    break;
  }
}

MFunction FunctionLowering::run() {
  MF.Name = F.getName();
  MF.Exported = F.isExported();
  MF.Origins = F.getOrigins();

  uint32_t Idx = 0;
  for (const auto &BB : F.blocks())
    BlockIndex[BB.get()] = Idx++;

  bool First = true;
  for (const auto &BB : F.blocks()) {
    MF.Blocks.emplace_back();
    Cur = &MF.Blocks.back();
    Cur->Name = BB->getName();
    if (First) {
      // Prologue. Clang-like: push rbp; mov rbp,rsp; sub rsp, frame.
      // Gcc-like reserves the frame with add rsp, -frame instead.
      emit(MOp::Push);
      emit(MOp::Mov);
      if (Opts.Style == CompilerStyle::GccLike)
        emit(MOp::Add, false, true); // add rsp, -frame
      else
        emit(MOp::Sub, false, true); // sub rsp, frame
      First = false;
    } else if (Opts.AlignLoops && !BB->predecessors().empty() &&
               BB->predecessors().size() > 1) {
      // Alignment padding before join/loop heads: clang-like one wide
      // nop, gcc-like a pair of short ones (.p2align filler).
      emit(MOp::Nop);
      if (Opts.Style == CompilerStyle::GccLike)
        emit(MOp::Nop);
    }
    for (const auto &I : BB->insts())
      lowerInst(I.get());
    // Checked lookup: a successor outside this function's block list is
    // malformed IR, and operator[] would silently default-insert index 0
    // (a phantom edge to the entry block) instead of failing.
    for (const BasicBlock *S : BB->successors())
      Cur->Succs.push_back(BlockIndex.at(S));
  }
  return MF;
}

BinaryImage khaos::lowerToBinary(const Module &M,
                                 const CodegenOptions &Opts) {
  BinaryImage Image;
  Image.Name = M.getName();

  uint64_t Address = 0x401000;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isIntrinsic())
      continue;
    FunctionLowering Lowering(*F, Image, Opts);
    MFunction MF = Lowering.run();
    MF.Address = Address;
    // 16-byte alignment: the invariant fusion's tagged pointers rely on.
    Address = (Address + MF.instructionCount() * 4 + 15) & ~15ull;
    Image.FunctionIndex[MF.Name] =
        static_cast<uint32_t>(Image.Functions.size());
    Image.Functions.push_back(std::move(MF));
  }

  // Data relocations for function addresses in global initializers; the
  // addend carries the fusion tag.
  for (const auto &G : M.globals()) {
    uint64_t Offset = 0;
    for (const Constant *C : G->getInitializer()) {
      if (const auto *TF = dyn_cast<ConstantTaggedFunc>(C)) {
        DataRelocation R;
        R.GlobalName = G->getName();
        R.Offset = Offset;
        R.SymId = Image.internSymbol(TF->getFunction()->getName());
        R.Addend = TF->getTag();
        Image.DataRelocs.push_back(R);
      }
      Offset += 8;
    }
  }
  return Image;
}
