//===- codegen/TargetISA.h - Synthetic x86-64-like ISA ----------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine layer the binary diffing tools look at. The opcode set and
/// lowering idioms mirror x86-64 closely enough that opcode-histogram
/// distances (paper Fig. 11) and instruction-token embeddings behave like
/// they do on real binaries.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_CODEGEN_TARGETISA_H
#define KHAOS_CODEGEN_TARGETISA_H

#include <cstdint>

namespace khaos {

/// Machine opcodes.
enum class MOp : uint8_t {
  // Data movement.
  Mov,
  MovImm,
  Movsx,
  Movzx,
  Lea,
  Push,
  Pop,
  LoadM,   ///< mov reg, [mem]
  StoreM,  ///< mov [mem], reg
  // Integer ALU.
  Add,
  Sub,
  IMul,
  IDiv,
  Cdq,
  Neg,
  And,
  Or,
  Xor,
  Not,
  Shl,
  Sar,
  Shr,
  Cmp,
  Test,
  SetCC,
  Cmov,
  // SSE scalar FP.
  Movss,
  Movsd,
  Addss,
  Addsd,
  Subss,
  Subsd,
  Mulss,
  Mulsd,
  Divss,
  Divsd,
  Ucomis,
  Cvtsi2s,
  Cvtts2si,
  Cvts2s,
  // Control flow.
  Jmp,
  Jcc,
  Call,
  CallIndirect,
  Ret,
  Leave,
  Ud2,
  Nop,
  NumOpcodes,
};

/// Printable mnemonic.
const char *mopName(MOp Op);

constexpr unsigned NumMOpcodes = static_cast<unsigned>(MOp::NumOpcodes);

} // namespace khaos

#endif // KHAOS_CODEGEN_TARGETISA_H
