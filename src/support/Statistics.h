//===- support/Statistics.h - Small numeric helpers -------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometric mean, vector distances and similarity measures shared by the
/// diffing tools and the evaluation harness.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_SUPPORT_STATISTICS_H
#define KHAOS_SUPPORT_STATISTICS_H

#include <cstdint>
#include <vector>

namespace khaos {

/// Geometric mean of (1 + X/100) ratios expressed back in percent, the way
/// SPEC overhead tables are aggregated. Values may be negative (speedups).
double geomeanOverheadPercent(const std::vector<double> &Percents);

/// Plain geometric mean of positive values.
double geomean(const std::vector<double> &Values);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double> &Values);

/// Cosine similarity in [−1, 1]; 0 when either vector is all-zero.
double cosineSimilarity(const std::vector<double> &A,
                        const std::vector<double> &B);

/// Euclidean (L2) distance between equally-sized vectors.
double euclideanDistance(const std::vector<double> &A,
                         const std::vector<double> &B);

/// L1 distance between equally-sized vectors.
double manhattanDistance(const std::vector<double> &A,
                         const std::vector<double> &B);

} // namespace khaos

#endif // KHAOS_SUPPORT_STATISTICS_H
