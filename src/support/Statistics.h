//===- support/Statistics.h - Small numeric helpers -------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometric mean, vector distances and similarity measures shared by the
/// diffing tools and the evaluation harness.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_SUPPORT_STATISTICS_H
#define KHAOS_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace khaos {

/// Geometric mean of (1 + X/100) ratios expressed back in percent, the way
/// SPEC overhead tables are aggregated. Values may be negative (speedups).
double geomeanOverheadPercent(const std::vector<double> &Percents);

/// Plain geometric mean of positive values.
double geomean(const std::vector<double> &Values);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double> &Values);

/// Cosine similarity in [−1, 1]; 0 when either vector is all-zero.
double cosineSimilarity(const std::vector<double> &A,
                        const std::vector<double> &B);

/// Euclidean (L2) distance between equally-sized vectors.
double euclideanDistance(const std::vector<double> &A,
                         const std::vector<double> &B);

/// L1 distance between equally-sized vectors.
double manhattanDistance(const std::vector<double> &A,
                         const std::vector<double> &B);

/// Collects (slot, sequence, value) samples from concurrent workers and
/// hands each slot back as a vector ordered by sequence number, so floating
/// point reductions (mean, geomean) see the samples in the same order no
/// matter how many threads produced them or in which order they finished.
///
/// Slots typically map to table columns (one per ObfuscationMode) and the
/// sequence number to the workload's position in its suite.
class SeriesAccumulator {
public:
  explicit SeriesAccumulator(size_t Slots);

  /// Thread-safe. \p Seq orders the sample within its slot.
  void add(size_t Slot, uint64_t Seq, double Value);

  size_t slotCount() const { return NumSlots; }

  /// Samples of \p Slot sorted by sequence number (ties keep insertion
  /// order). Locks internally, but callers should still drain only after
  /// the producing workers have joined, or the result is a snapshot.
  std::vector<double> series(size_t Slot) const;

private:
  struct Sample {
    uint64_t Seq;
    double Value;
  };
  size_t NumSlots;
  mutable std::mutex M;
  std::vector<std::vector<Sample>> Slots;
};

} // namespace khaos

#endif // KHAOS_SUPPORT_STATISTICS_H
