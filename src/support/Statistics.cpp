//===- support/Statistics.cpp - Small numeric helpers ---------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace khaos;

double khaos::geomeanOverheadPercent(const std::vector<double> &Percents) {
  if (Percents.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double P : Percents) {
    double Ratio = 1.0 + P / 100.0;
    // Clamp pathological speedups so a single outlier cannot drive the
    // geomean complex.
    if (Ratio < 0.01)
      Ratio = 0.01;
    LogSum += std::log(Ratio);
  }
  return (std::exp(LogSum / Percents.size()) - 1.0) * 100.0;
}

double khaos::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean of non-positive value");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / Values.size());
}

double khaos::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / Values.size();
}

double khaos::cosineSimilarity(const std::vector<double> &A,
                               const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Dot = 0.0, NA = 0.0, NB = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    Dot += A[I] * B[I];
    NA += A[I] * A[I];
    NB += B[I] * B[I];
  }
  if (NA == 0.0 || NB == 0.0)
    return 0.0;
  return Dot / (std::sqrt(NA) * std::sqrt(NB));
}

double khaos::euclideanDistance(const std::vector<double> &A,
                                const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    double D = A[I] - B[I];
    Sum += D * D;
  }
  return std::sqrt(Sum);
}

double khaos::manhattanDistance(const std::vector<double> &A,
                                const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Sum += std::fabs(A[I] - B[I]);
  return Sum;
}
