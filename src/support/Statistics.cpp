//===- support/Statistics.cpp - Small numeric helpers ---------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace khaos;

SeriesAccumulator::SeriesAccumulator(size_t Slots)
    : NumSlots(Slots), Slots(Slots) {}

void SeriesAccumulator::add(size_t Slot, uint64_t Seq, double Value) {
  assert(Slot < NumSlots && "slot out of range");
  std::lock_guard<std::mutex> Lock(M);
  Slots[Slot].push_back({Seq, Value});
}

std::vector<double> SeriesAccumulator::series(size_t Slot) const {
  assert(Slot < NumSlots && "slot out of range");
  std::lock_guard<std::mutex> Lock(M);
  std::vector<Sample> Sorted = Slots[Slot];
  // Stable: duplicate sequence numbers keep insertion order instead of
  // falling back to the sort implementation's pivoting.
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Sample &A, const Sample &B) {
                     return A.Seq < B.Seq;
                   });
  std::vector<double> Out;
  Out.reserve(Sorted.size());
  for (const Sample &S : Sorted)
    Out.push_back(S.Value);
  return Out;
}

double khaos::geomeanOverheadPercent(const std::vector<double> &Percents) {
  if (Percents.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double P : Percents) {
    double Ratio = 1.0 + P / 100.0;
    // Clamp pathological speedups so a single outlier cannot drive the
    // geomean complex.
    if (Ratio < 0.01)
      Ratio = 0.01;
    LogSum += std::log(Ratio);
  }
  return (std::exp(LogSum / Percents.size()) - 1.0) * 100.0;
}

double khaos::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean of non-positive value");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / Values.size());
}

double khaos::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / Values.size();
}

double khaos::cosineSimilarity(const std::vector<double> &A,
                               const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Dot = 0.0, NA = 0.0, NB = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    Dot += A[I] * B[I];
    NA += A[I] * A[I];
    NB += B[I] * B[I];
  }
  if (NA == 0.0 || NB == 0.0)
    return 0.0;
  return Dot / (std::sqrt(NA) * std::sqrt(NB));
}

double khaos::euclideanDistance(const std::vector<double> &A,
                                const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    double D = A[I] - B[I];
    Sum += D * D;
  }
  return std::sqrt(Sum);
}

double khaos::manhattanDistance(const std::vector<double> &A,
                                const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Sum += std::fabs(A[I] - B[I]);
  return Sum;
}
