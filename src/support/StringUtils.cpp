//===- support/StringUtils.cpp - String helpers ---------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace khaos;

std::string khaos::formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(Args);
  return Out;
}

std::string khaos::join(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool khaos::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool khaos::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::vector<std::string> khaos::split(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Out.push_back(S.substr(Start));
      return Out;
    }
    Out.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}
