//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus a handful of predicates the
/// printers and table renderers share.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_SUPPORT_STRINGUTILS_H
#define KHAOS_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace khaos {

/// printf-style formatting into a std::string.
std::string formatStr(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

bool startsWith(const std::string &S, const std::string &Prefix);
bool endsWith(const std::string &S, const std::string &Suffix);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> split(const std::string &S, char Sep);

} // namespace khaos

#endif // KHAOS_SUPPORT_STRINGUTILS_H
