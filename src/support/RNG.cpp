//===- support/RNG.cpp - Deterministic random streams ---------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"

using namespace khaos;

RNG RNG::fromName(const std::string &Name, uint64_t Salt) {
  uint64_t Hash = 1469598103934665603ull; // FNV-1a offset basis.
  for (unsigned char C : Name) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  }
  Hash ^= Salt + 0x9e3779b97f4a7c15ull;
  return RNG(Hash);
}

uint64_t RNG::next() {
  // SplitMix64 step.
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t RNG::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is undefined");
  // Rejection-free multiply-shift reduction; bias is negligible for our
  // bounds (all far below 2^32).
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(next()) * Bound) >> 64);
}

int64_t RNG::nextRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(nextBelow(
                  static_cast<uint64_t>(Hi - Lo) + 1));
}

double RNG::nextDouble() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool RNG::nextBool(double P) { return nextDouble() < P; }
