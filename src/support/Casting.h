//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled LLVM-style RTTI. Classes opt in by providing a static
/// classof(const Base *) predicate; isa<>, cast<> and dyn_cast<> then work
/// without enabling compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_SUPPORT_CASTING_H
#define KHAOS_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace khaos {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that yields nullptr when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that also tolerates null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace khaos

#endif // KHAOS_SUPPORT_CASTING_H
