//===- support/RNG.h - Deterministic random streams -------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic random number generator. Every random
/// decision in the project (workload synthesis, fusion pairing, opaque
/// predicate choice, ...) draws from a named stream so runs are reproducible
/// bit-for-bit across machines.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_SUPPORT_RNG_H
#define KHAOS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

/// Deterministic 64-bit PRNG (SplitMix64).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Seeds a stream from a human-readable name (FNV-1a of the name mixed
  /// with \p Salt). Two streams with different names never collide in
  /// practice.
  static RNG fromName(const std::string &Name, uint64_t Salt = 0);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextRange(int64_t Lo, int64_t Hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Bernoulli draw with probability \p P.
  bool nextBool(double P = 0.5);

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick() from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    if (Items.size() < 2)
      return;
    for (size_t I = Items.size() - 1; I > 0; --I)
      std::swap(Items[I], Items[nextBelow(I + 1)]);
  }

private:
  uint64_t State;
};

} // namespace khaos

#endif // KHAOS_SUPPORT_RNG_H
