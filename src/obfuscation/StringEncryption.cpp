//===- obfuscation/StringEncryption.cpp - String/const encryption ---------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String/constant encryption after Chakravyuha and the llvm-msvc-xd
/// plugin: every i8-array global with a constant initializer is XOR
/// encrypted in the image with a per-global key, and a generated decode
/// stub — guarded by a once flag so re-entering main cannot double-XOR —
/// restores the plaintext at the top of main before any user code can
/// read it. Static string features disappear from the binary; runtime
/// behaviour is unchanged because nothing executes before main.
///
/// The post-opt pipeline is safe here by construction: no pass folds
/// global initializers into loads (globals are mutable), and the stub is
/// NoInline + NoObfuscate so later passes keep it intact.
///
//===----------------------------------------------------------------------===//

#include "obfuscation/OLLVM.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/RNG.h"

using namespace khaos;

namespace {

uint64_t moduleInstCount(const Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.functions())
    N += F->instructionCount();
  return N;
}

} // namespace

unsigned khaos::runStringEncryption(Module &M, const OLLVMOptions &Opts,
                                    PassReport *Report) {
  Function *Main = M.getFunction("main");
  if (!Main || Main->isDeclaration())
    return 0; // Nothing would ever run the decoder.

  RNG Rng(Opts.Seed);
  Context &Ctx = M.getContext();
  uint64_t Before = moduleInstCount(M);

  // Eligible: i8-array globals whose initializer is all ConstantInt bytes.
  std::vector<GlobalVariable *> Targets;
  std::vector<uint8_t> Keys;
  for (const auto &G : M.globals()) {
    auto *AT = dyn_cast<ArrayType>(G->getValueType());
    if (!AT || AT->getElementType()->getKind() != TypeKind::Int8)
      continue;
    const std::vector<Constant *> &Init = G->getInitializer();
    if (Init.empty())
      continue;
    bool AllBytes = true;
    for (const Constant *C : Init)
      if (!isa<ConstantInt>(C)) {
        AllBytes = false;
        break;
      }
    if (!AllBytes)
      continue;
    if (!Rng.nextBool(Opts.Ratio))
      continue;
    Targets.push_back(G.get());
    Keys.push_back(static_cast<uint8_t>(1 + Rng.nextBelow(255)));
  }
  if (Targets.empty())
    return 0;

  // Encrypt the initializers in place.
  for (size_t I = 0; I != Targets.size(); ++I) {
    std::vector<Constant *> Enc;
    for (const Constant *C : Targets[I]->getInitializer()) {
      uint8_t B = static_cast<uint8_t>(cast<ConstantInt>(C)->getValue());
      Enc.push_back(M.getInt8(static_cast<int8_t>(B ^ Keys[I])));
    }
    Targets[I]->setInitializer(std::move(Enc));
  }

  // Once flag + decode stub: one byte-XOR loop per encrypted global.
  GlobalVariable *Done =
      M.createGlobal(M.uniqueName("strenc.done"), Ctx.getInt32Type());
  FunctionType *FT = Ctx.getFunctionType(Ctx.getVoidType(), {}, false);
  Function *Dec = M.createFunction(M.uniqueName("strenc.decode"), FT);
  Dec->setNoInline(true);
  Dec->setNoObfuscate(true);

  BasicBlock *Entry = Dec->addBlock("entry");
  BasicBlock *Start = Dec->addBlock("strenc.start");
  BasicBlock *Exit = Dec->addBlock("strenc.exit");

  IRBuilder B(M);
  B.setInsertPoint(Entry);
  AllocaInst *Idx = B.createAlloca(Ctx.getInt64Type(), "strenc.idx");
  Value *DoneV = B.createLoad(Done, "strenc.done.v");
  B.createCondBr(B.createIsNonZero(DoneV), Exit, Start);

  B.setInsertPoint(Start);
  B.createStore(M.getInt32(1), Done);
  B.createStore(M.getInt64(0), Idx);

  for (size_t I = 0; I != Targets.size(); ++I) {
    GlobalVariable *G = Targets[I];
    int64_t Len = static_cast<int64_t>(G->getInitializer().size());
    BasicBlock *Head = Dec->addBlock("strenc.head");
    BasicBlock *Body = Dec->addBlock("strenc.body");
    BasicBlock *Next = I + 1 == Targets.size()
                           ? Exit
                           : Dec->addBlock("strenc.next");
    B.createBr(Head);

    B.setInsertPoint(Head);
    Value *IV = B.createLoad(Idx, "strenc.i");
    Value *InRange = B.createCmp(CmpPred::SLT, IV, M.getInt64(Len));
    B.createCondBr(InRange, Body, Next);

    B.setInsertPoint(Body);
    Value *P = B.createGEP(G, IV, "strenc.p");
    Value *Byte = B.createLoad(P, "strenc.b");
    Value *Plain =
        B.createBinOp(BinOp::Xor, Byte, M.getInt8(Keys[I]), "strenc.x");
    B.createStore(Plain, P);
    B.createStore(B.createAdd(IV, M.getInt64(1)), Idx);
    B.createBr(Head);

    // Reset the index for the next global's loop.
    B.setInsertPoint(Next);
    if (Next != Exit)
      B.createStore(M.getInt64(0), Idx);
  }

  B.setInsertPoint(Exit);
  B.createRetVoid();

  // Decode before anything in main runs.
  IRBuilder CallB(M);
  CallB.setInsertBefore(Main->getEntryBlock()->front());
  CallB.createCall(Dec, {});

  if (Report) {
    Report->StringsEncrypted += static_cast<unsigned>(Targets.size());
    Report->BlocksInserted += static_cast<unsigned>(Dec->size());
    Report->BytesGrown += (moduleInstCount(M) - Before) * 4;
  }
  return static_cast<unsigned>(Targets.size());
}
