//===- obfuscation/SplitBasicBlocks.cpp - Split-basic-block pass ----------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// O-LLVM's -split pass: each eligible block is cut at 1-3 random points
/// into a fall-through chain. Useless alone against semantic diffing but
/// a standard pre-pass: it multiplies the block count Fla's dispatcher
/// and Bog's opaque twins get to work with, and it perturbs block-level
/// features (sizes, counts) that cheap diffing heuristics key on.
///
/// As a standalone mode the driver pairs it with a post-opt pipeline that
/// skips simplifycfg — the merge-chains cleanup would stitch every split
/// straight back together.
///
//===----------------------------------------------------------------------===//

#include "obfuscation/OLLVM.h"

#include "ir/Module.h"
#include "support/RNG.h"

using namespace khaos;

unsigned khaos::runSplitBasicBlocks(Module &M, const OLLVMOptions &Opts,
                                    PassReport *Report) {
  RNG Rng(Opts.Seed);
  unsigned SplitBlocks = 0, NewBlocks = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isNoObfuscate())
      continue;
    // Snapshot the block list (splitting appends blocks).
    std::vector<BasicBlock *> Blocks;
    for (const auto &BB : F->blocks())
      Blocks.push_back(BB.get());

    for (BasicBlock *BB : Blocks) {
      if (BB->size() < 3)
        continue;
      if (isa<LandingPadInst>(BB->front()))
        continue; // Unwind targets must keep their shape.
      if (!Rng.nextBool(Opts.Ratio))
        continue;
      unsigned Want = 1 + static_cast<unsigned>(Rng.nextBelow(3));
      BasicBlock *Cur = BB;
      bool Did = false;
      for (unsigned K = 0; K != Want; ++K) {
        if (Cur->size() < 3)
          break;
        // Any point strictly inside the block, never before the
        // terminator (splitBefore would leave a block without one).
        size_t Idx = 1 + Rng.nextBelow(Cur->size() - 2);
        Instruction *SplitPoint = Cur->getInst(Idx);
        Cur = Cur->splitBefore(SplitPoint, Cur->getName() + ".split");
        Did = true;
        ++NewBlocks;
      }
      if (Did)
        ++SplitBlocks;
    }
  }
  if (Report) {
    Report->BlocksSplit += SplitBlocks;
    Report->BlocksInserted += NewBlocks;
    // Each split adds exactly one fall-through branch.
    Report->BytesGrown += static_cast<uint64_t>(NewBlocks) * 4;
  }
  return SplitBlocks;
}
