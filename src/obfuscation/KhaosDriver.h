//===- obfuscation/KhaosDriver.h - Obfuscation mode driver ------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies one of the paper's obfuscation configurations to a module and
/// then re-optimizes it (Khaos schedules fission before fusion as
/// middle-end passes and compiles at O2+LTO; §4). The driver also gathers
/// the Table 2 statistics.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_OBFUSCATION_KHAOSDRIVER_H
#define KHAOS_OBFUSCATION_KHAOSDRIVER_H

#include "obfuscation/Fission.h"
#include "obfuscation/Fusion.h"
#include "obfuscation/OLLVM.h"
#include "transform/Pass.h"

#include <functional>
#include <set>
#include <string>
#include <vector>

namespace khaos {

class Module;

/// The obfuscation configurations evaluated in the paper.
enum class ObfuscationMode : uint8_t {
  None,
  Sub,     ///< O-LLVM instruction substitution (100%).
  Bog,     ///< O-LLVM bogus control flow (100%).
  Fla,     ///< O-LLVM control-flow flattening (100%).
  Fla10,   ///< O-LLVM flattening at 10% (the paper's Fla-10).
  Fission, ///< Khaos fission only.
  Fusion,  ///< Khaos fusion only.
  FuFiSep, ///< Fission, then fuse only the generated sepFuncs.
  FuFiOri, ///< Fission, then fuse only fission-unprocessed oriFuncs.
  FuFiAll, ///< Fission, then fuse sepFuncs + unprocessed oriFuncs.
  // Arms-race roster additions (post-paper; real obfuscator staples).
  // Appended so existing modes keep their serialized ArtifactKey values.
  MBA,     ///< Mixed boolean-arithmetic substitution (deep chains).
  StrEnc,  ///< String/constant encryption with a runtime decode stub.
  IndCall, ///< Direct calls routed through a shuffled dispatch table.
  SplitBB, ///< Split-basic-block (post-opt keeps the splits).
};

/// All configurations in evaluation order (figure legends).
const std::vector<ObfuscationMode> &allObfuscationModes();

/// Printable mode name matching the paper's legends.
const char *obfuscationModeName(ObfuscationMode Mode);

/// Result of one obfuscation run.
struct ObfuscationResult {
  FissionStats Fission;
  FusionStats Fusion;
  unsigned BaselineSites = 0; ///< Sub/Bog/Fla transformation count.
  PassReport Report;          ///< Per-pass potency/cost telemetry.
};

/// Driver configuration.
struct KhaosOptions {
  uint64_t Seed = 0xc906;
  OptLevel PostOptLevel = OptLevel::O2; ///< The paper's O2 + LTO baseline.
  bool RunPostOpt = true;
  FissionOptions Fission;
  FusionOptions Fusion;
};

/// True for the modes whose pipeline starts with the fission pass
/// (Fission and the three FuFi configurations). These share the same
/// fission prefix: fission takes no seed, so its output is a pure function
/// of the input module and the FissionOptions — which is what lets the
/// evaluation pipeline compute the prefix once per workload and clone it.
bool modeUsesFission(ObfuscationMode Mode);

/// Output of the shared fission prefix, beyond the transformed module
/// itself: everything the FuFi fusion step needs to pick its candidate set.
struct FissionPhase {
  FissionStats Stats;
  /// Names of the created sepFuncs (the FuFi.sep candidate set).
  std::vector<std::string> SepFuncs;
  /// Names of functions that lost a region (excluded from FuFi.ori).
  std::set<std::string> ProcessedFuncs;
};

/// Runs the fission prefix on \p M (no post-optimization).
FissionPhase runFissionPhase(Module &M, const FissionOptions &Opts = {});

/// Completes \p Mode on a module that already carries \p Phase's fission
/// output: applies the mode's fusion step (restricted to the candidate set
/// the mode prescribes) and the post-optimization. Only valid for modes
/// where modeUsesFission() is true.
ObfuscationResult finishFissionMode(Module &M, ObfuscationMode Mode,
                                    const KhaosOptions &Opts,
                                    const FissionPhase &Phase);

/// Obfuscates \p M in place with \p Mode and re-optimizes. For fission
/// modes this is exactly runFissionPhase() + finishFissionMode().
ObfuscationResult obfuscateModule(Module &M, ObfuscationMode Mode,
                                  const KhaosOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Pass-bisection hooks. The full pipeline of a mode is a flat, named step
// sequence: the mode's obfuscation primitive(s), any registered extra
// passes, then the post-optimization passes one by one. obfuscateModule()
// is exactly the full-prefix run, so a prefix run reproduces the true
// pipeline up to a step boundary — which is what lets the differential
// fuzzer bisect a behavioural divergence down to the guilty step.
//===----------------------------------------------------------------------===//

/// Names of the steps obfuscateModule(M, Mode, Opts) executes, in order.
/// Primitive steps are named after the transformation ("fission",
/// "fusion", "substitution", ...), registered extra passes appear as
/// "extra:<name>", and post-optimization passes as "post-opt:<pass>#<k>"
/// (k disambiguates repeated pipeline passes, first occurrence = 1).
std::vector<std::string> obfuscationStepNames(ObfuscationMode Mode,
                                              const KhaosOptions &Opts = {});

/// Applies only the first \p NumSteps steps of the mode's pipeline to
/// \p M. With NumSteps >= obfuscationStepNames(...).size() this is
/// obfuscateModule() exactly — one shared code path, so bisection prefixes
/// are true prefixes of the production pipeline.
ObfuscationResult obfuscateModulePrefix(Module &M, ObfuscationMode Mode,
                                        const KhaosOptions &Opts,
                                        size_t NumSteps);

/// Registers an extra obfuscation pass: \p Factory's pass runs for every
/// mode after the primitive step(s) and before post-optimization, as step
/// "extra:<Name>". Process-wide; register before any pipeline or fuzzer
/// use (ArtifactStore keys do not include this state, so registering
/// mid-run would desynchronize cached artifacts). This is the test hook
/// the differential-fuzzer suite uses to plant known divergences.
void registerExtraObfuscationPass(
    const std::string &Name,
    std::function<std::unique_ptr<Pass>()> Factory);

/// Drops every registered extra pass (test teardown).
void clearExtraObfuscationPasses();

} // namespace khaos

#endif // KHAOS_OBFUSCATION_KHAOSDRIVER_H
