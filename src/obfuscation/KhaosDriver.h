//===- obfuscation/KhaosDriver.h - Obfuscation mode driver ------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies one of the paper's obfuscation configurations to a module and
/// then re-optimizes it (Khaos schedules fission before fusion as
/// middle-end passes and compiles at O2+LTO; §4). The driver also gathers
/// the Table 2 statistics.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_OBFUSCATION_KHAOSDRIVER_H
#define KHAOS_OBFUSCATION_KHAOSDRIVER_H

#include "obfuscation/Fission.h"
#include "obfuscation/Fusion.h"
#include "transform/Pass.h"

#include <string>

namespace khaos {

class Module;

/// The obfuscation configurations evaluated in the paper.
enum class ObfuscationMode : uint8_t {
  None,
  Sub,     ///< O-LLVM instruction substitution (100%).
  Bog,     ///< O-LLVM bogus control flow (100%).
  Fla,     ///< O-LLVM control-flow flattening (100%).
  Fla10,   ///< O-LLVM flattening at 10% (the paper's Fla-10).
  Fission, ///< Khaos fission only.
  Fusion,  ///< Khaos fusion only.
  FuFiSep, ///< Fission, then fuse only the generated sepFuncs.
  FuFiOri, ///< Fission, then fuse only fission-unprocessed oriFuncs.
  FuFiAll, ///< Fission, then fuse sepFuncs + unprocessed oriFuncs.
};

/// All configurations in evaluation order (figure legends).
const std::vector<ObfuscationMode> &allObfuscationModes();

/// Printable mode name matching the paper's legends.
const char *obfuscationModeName(ObfuscationMode Mode);

/// Result of one obfuscation run.
struct ObfuscationResult {
  FissionStats Fission;
  FusionStats Fusion;
  unsigned BaselineSites = 0; ///< Sub/Bog/Fla transformation count.
};

/// Driver configuration.
struct KhaosOptions {
  uint64_t Seed = 0xc906;
  OptLevel PostOptLevel = OptLevel::O2; ///< The paper's O2 + LTO baseline.
  bool RunPostOpt = true;
  FissionOptions Fission;
  FusionOptions Fusion;
};

/// Obfuscates \p M in place with \p Mode and re-optimizes.
ObfuscationResult obfuscateModule(Module &M, ObfuscationMode Mode,
                                  const KhaosOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_OBFUSCATION_KHAOSDRIVER_H
