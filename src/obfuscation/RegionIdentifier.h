//===- obfuscation/RegionIdentifier.h - Paper Algorithm 1 -------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region identification for the fission primitive (paper §3.2.1,
/// Algorithm 1). Candidate regions are dominator-tree subtrees: single
/// entry, extractable as a function. Each subtree is scored
/// effect/cost where effect = block count and cost = static execution
/// frequency of the head (multiplied by the assumed trip count when the
/// head sits in a loop). The most cost-effective disjoint subtrees win.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_OBFUSCATION_REGIONIDENTIFIER_H
#define KHAOS_OBFUSCATION_REGIONIDENTIFIER_H

#include <vector>

namespace khaos {

class BasicBlock;
class Function;

/// One candidate region: a dominator subtree rooted at Head.
struct Region {
  BasicBlock *Head = nullptr;
  std::vector<BasicBlock *> Blocks; ///< Subtree in preorder (Head first).
  double Effect = 0.0;              ///< Obfuscation gain (block count).
  double Cost = 0.0;                ///< Cut cost (head frequency).
  double value() const { return Cost > 0 ? Effect / Cost : Effect; }
};

/// Knobs for region selection.
struct RegionOptions {
  unsigned MinBlocks = 2;  ///< Smaller subtrees are not worth a call.
  unsigned MaxRegionsPerFunction = 5;
  /// Ablation switch: ignore the frequency cost term of Algorithm 1 and
  /// pick regions by size alone.
  bool IgnoreFrequencyCost = false;
};

/// Runs Algorithm 1 on \p F and returns the selected disjoint regions,
/// most valuable first. Regions that cannot be extracted safely (setjmp
/// call sites, EH edges crossing the boundary, returns-with-throw, allocas
/// escaping the region) are filtered out.
std::vector<Region> identifyRegions(Function &F,
                                    const RegionOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_OBFUSCATION_REGIONIDENTIFIER_H
