//===- obfuscation/OLLVM.h - O-LLVM-style baselines -------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's comparison targets, reimplemented after O-LLVM (Junod et
/// al., SPRO'15): instruction substitution (Sub), bogus control flow with
/// opaque predicates (Bog) and control-flow flattening (Fla). All are
/// intra-procedural — the class of obfuscation the paper argues is no
/// longer sufficient.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_OBFUSCATION_OLLVM_H
#define KHAOS_OBFUSCATION_OLLVM_H

#include <cstdint>

namespace khaos {

class Module;

/// Ratio is the fraction of eligible sites/functions transformed
/// (O-LLVM's -mllvm -*_prob knobs; the paper runs Sub/Bog at 100% and Fla
/// at 100% or 10%).
struct OLLVMOptions {
  double Ratio = 1.0;
  uint64_t Seed = 0xb0b;
};

/// Instruction substitution: integer add/sub/xor/and/or are replaced by
/// equivalent multi-instruction idioms.
unsigned runSubstitution(Module &M, const OLLVMOptions &Opts = {});

/// Bogus control flow: blocks are guarded by an always-true opaque
/// predicate on global state; the false edge leads to a scrambled clone
/// that is never executed.
unsigned runBogusControlFlow(Module &M, const OLLVMOptions &Opts = {});

/// Control-flow flattening: function bodies become a switch dispatcher
/// driven by a state variable.
unsigned runFlattening(Module &M, const OLLVMOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_OBFUSCATION_OLLVM_H
