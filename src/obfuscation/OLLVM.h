//===- obfuscation/OLLVM.h - O-LLVM-style baselines -------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's comparison targets, reimplemented after O-LLVM (Junod et
/// al., SPRO'15): instruction substitution (Sub), bogus control flow with
/// opaque predicates (Bog) and control-flow flattening (Fla). All are
/// intra-procedural — the class of obfuscation the paper argues is no
/// longer sufficient.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_OBFUSCATION_OLLVM_H
#define KHAOS_OBFUSCATION_OLLVM_H

#include <cstdint>

namespace khaos {

class Module;

/// Ratio is the fraction of eligible sites/functions transformed
/// (O-LLVM's -mllvm -*_prob knobs; the paper runs Sub/Bog at 100% and Fla
/// at 100% or 10%).
struct OLLVMOptions {
  double Ratio = 1.0;
  uint64_t Seed = 0xb0b;
};

/// Per-pass potency/cost telemetry (after Chakravyuha's ReportData).
/// Every pass accumulates into the same report so a mode that chains
/// several primitives still yields one rolled-up line; BytesGrown uses a
/// nominal 4 bytes per KIR instruction so growth is comparable across
/// modes.
struct PassReport {
  unsigned SitesRewritten = 0;   ///< Binary ops MBA-rewritten / calls made indirect.
  unsigned StringsEncrypted = 0; ///< Global byte arrays encrypted by StrEnc.
  unsigned BlocksSplit = 0;      ///< Original blocks that received >= 1 split.
  unsigned BlocksInserted = 0;   ///< New blocks added (split tails, decode stubs).
  uint64_t BytesGrown = 0;       ///< Instruction-count growth * 4.

  void merge(const PassReport &O) {
    SitesRewritten += O.SitesRewritten;
    StringsEncrypted += O.StringsEncrypted;
    BlocksSplit += O.BlocksSplit;
    BlocksInserted += O.BlocksInserted;
    BytesGrown += O.BytesGrown;
  }
  bool empty() const {
    return !SitesRewritten && !StringsEncrypted && !BlocksSplit &&
           !BlocksInserted && !BytesGrown;
  }
};

/// Instruction substitution: integer add/sub/xor/and/or are replaced by
/// equivalent multi-instruction idioms.
unsigned runSubstitution(Module &M, const OLLVMOptions &Opts = {});

/// Bogus control flow: blocks are guarded by an always-true opaque
/// predicate on global state; the false edge leads to a scrambled clone
/// that is never executed.
unsigned runBogusControlFlow(Module &M, const OLLVMOptions &Opts = {});

/// Control-flow flattening: function bodies become a switch dispatcher
/// driven by a state variable.
unsigned runFlattening(Module &M, const OLLVMOptions &Opts = {});

/// Mixed boolean-arithmetic substitution: integer add/sub/xor/and/or are
/// rewritten through MBA identities, and the helper ops those identities
/// introduce are recursively rewritten again (depth 2-3), producing much
/// deeper chains than runSubstitution's single-level strategies.
unsigned runMBASubstitution(Module &M, const OLLVMOptions &Opts = {},
                            PassReport *Report = nullptr);

/// String/constant encryption: i8-array global initializers are XOR
/// encrypted with a per-global key and a runtime decode stub (guarded by a
/// once flag) is called on entry to main. Requires a defined main; returns
/// 0 and leaves the module untouched otherwise.
unsigned runStringEncryption(Module &M, const OLLVMOptions &Opts = {},
                             PassReport *Report = nullptr);

/// Direct-to-indirect call rewriting: eligible direct call sites are
/// routed through a module-level dispatch table of function addresses in
/// shuffled order (load + inttoptr + indirect call).
unsigned runIndirectCalls(Module &M, const OLLVMOptions &Opts = {},
                          PassReport *Report = nullptr);

/// Split-basic-block: each eligible block is split at 1-3 random points.
/// On its own this only perturbs shape (pair it with a post-opt pipeline
/// that skips simplifycfg or the merges undo it); its real use is as a
/// pre-pass giving Fla/Bog more blocks to work with.
unsigned runSplitBasicBlocks(Module &M, const OLLVMOptions &Opts = {},
                             PassReport *Report = nullptr);

} // namespace khaos

#endif // KHAOS_OBFUSCATION_OLLVM_H
