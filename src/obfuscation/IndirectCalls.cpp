//===- obfuscation/IndirectCalls.cpp - Direct-to-indirect calls -----------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct-to-indirect call rewriting after the llvm-msvc-xd plugin's
/// indirect-call pass: the addresses of all rewritten callees are placed
/// in a module-level i64 dispatch table in *shuffled* order, and each
/// rewritten site loads its slot, casts the address back to a function
/// pointer and calls it. The call graph's direct edges disappear from
/// static features; the VM and codegen both resolve the address through
/// the same tagged-function relocation machinery Fusion uses (tag 0 =
/// plain address), so runtime behaviour is unchanged.
///
/// Invoke sites, varargs/intrinsic/declared callees stay direct: EH edges
/// must keep their shape and VM intrinsics have no table identity.
///
//===----------------------------------------------------------------------===//

#include "obfuscation/OLLVM.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/RNG.h"

#include <map>

using namespace khaos;

namespace {

uint64_t moduleInstCount(const Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.functions())
    N += F->instructionCount();
  return N;
}

} // namespace

unsigned khaos::runIndirectCalls(Module &M, const OLLVMOptions &Opts,
                                 PassReport *Report) {
  RNG Rng(Opts.Seed);
  Context &Ctx = M.getContext();
  uint64_t Before = moduleInstCount(M);

  // Collect eligible sites in deterministic module order, assigning each
  // distinct callee a dense index as first seen.
  std::vector<CallInst *> Sites;
  std::vector<Function *> Callees;
  std::map<Function *, size_t> CalleeIdx;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isNoObfuscate())
      continue;
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->insts()) {
        if (I->getOpcode() != Opcode::Call)
          continue; // Skips invokes: EH edges keep their shape.
        auto *CI = cast<CallInst>(I.get());
        Function *Callee = CI->getCalledFunction();
        if (!Callee || Callee->isDeclaration() || Callee->isIntrinsic() ||
            Callee->isVarArg())
          continue;
        if (!Rng.nextBool(Opts.Ratio))
          continue;
        Sites.push_back(CI);
        if (!CalleeIdx.count(Callee)) {
          CalleeIdx[Callee] = Callees.size();
          Callees.push_back(Callee);
        }
      }
    }
  }
  if (Sites.empty())
    return 0;

  // Dispatch table: callee addresses in shuffled slot order.
  std::vector<size_t> SlotOf(Callees.size());
  {
    std::vector<size_t> Order(Callees.size());
    for (size_t I = 0; I != Order.size(); ++I)
      Order[I] = I;
    Rng.shuffle(Order);
    for (size_t Slot = 0; Slot != Order.size(); ++Slot)
      SlotOf[Order[Slot]] = Slot;
  }
  Type *I64 = Ctx.getInt64Type();
  auto *TableTy = Ctx.getArrayType(I64, Callees.size());
  GlobalVariable *Table = M.createGlobal(M.uniqueName("ind.table"), TableTy);
  {
    std::vector<Constant *> Init(Callees.size());
    for (size_t I = 0; I != Callees.size(); ++I)
      Init[SlotOf[I]] = M.getTaggedFunc(I64, Callees[I], 0);
    Table->setInitializer(std::move(Init));
  }

  // Rewrite each site: load the slot, cast back to a function pointer of
  // the callee's exact type (so call arg checking still holds), call it.
  for (CallInst *CI : Sites) {
    Function *Callee = CI->getCalledFunction();
    IRBuilder B(M);
    B.setInsertBefore(CI);
    Value *SlotPtr = B.createGEP(
        Table, M.getInt64(static_cast<int64_t>(SlotOf[CalleeIdx[Callee]])),
        "ind.slot");
    Value *Addr = B.createLoad(SlotPtr, "ind.addr");
    Value *FP = B.createCast(CastKind::IntToPtr, Addr,
                             Ctx.getPointerType(Callee->getFunctionType()),
                             "ind.fp");
    std::vector<Value *> Args;
    for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A)
      Args.push_back(CI->getArg(A));
    CallInst *NewCI = B.createCall(FP, std::move(Args), CI->getName());
    if (CI->hasUses())
      CI->replaceAllUsesWith(NewCI);
    CI->eraseFromParent();
  }

  if (Report) {
    Report->SitesRewritten += static_cast<unsigned>(Sites.size());
    Report->BytesGrown += (moduleInstCount(M) - Before) * 4;
  }
  return static_cast<unsigned>(Sites.size());
}
