//===- obfuscation/KhaosDriver.cpp - Obfuscation mode driver --------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obfuscation/KhaosDriver.h"

#include "ir/Module.h"
#include "obfuscation/OLLVM.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>

using namespace khaos;

const std::vector<ObfuscationMode> &khaos::allObfuscationModes() {
  static const std::vector<ObfuscationMode> Modes = {
      ObfuscationMode::Sub,     ObfuscationMode::Bog,
      ObfuscationMode::Fla10,   ObfuscationMode::MBA,
      ObfuscationMode::StrEnc,  ObfuscationMode::IndCall,
      ObfuscationMode::SplitBB, ObfuscationMode::Fission,
      ObfuscationMode::Fusion,  ObfuscationMode::FuFiSep,
      ObfuscationMode::FuFiOri, ObfuscationMode::FuFiAll,
  };
  return Modes;
}

const char *khaos::obfuscationModeName(ObfuscationMode Mode) {
  switch (Mode) {
  case ObfuscationMode::None:
    return "None";
  case ObfuscationMode::Sub:
    return "Sub";
  case ObfuscationMode::Bog:
    return "Bog";
  case ObfuscationMode::Fla:
    return "Fla";
  case ObfuscationMode::Fla10:
    return "Fla-10";
  case ObfuscationMode::Fission:
    return "Fission";
  case ObfuscationMode::Fusion:
    return "Fusion";
  case ObfuscationMode::FuFiSep:
    return "FuFi.sep";
  case ObfuscationMode::FuFiOri:
    return "FuFi.ori";
  case ObfuscationMode::FuFiAll:
    return "FuFi.all";
  case ObfuscationMode::MBA:
    return "MBA";
  case ObfuscationMode::StrEnc:
    return "StrEnc";
  case ObfuscationMode::IndCall:
    return "IndCall";
  case ObfuscationMode::SplitBB:
    return "SplitBB";
  }
  return "?";
}

bool khaos::modeUsesFission(ObfuscationMode Mode) {
  switch (Mode) {
  case ObfuscationMode::Fission:
  case ObfuscationMode::FuFiSep:
  case ObfuscationMode::FuFiOri:
  case ObfuscationMode::FuFiAll:
    return true;
  default:
    return false;
  }
}

FissionPhase khaos::runFissionPhase(Module &M, const FissionOptions &Opts) {
  FissionPhase Phase;
  // Functions that lose a region to fission are tracked by name (via their
  // instruction-count delta) for the FuFi.ori candidate set.
  std::map<std::string, size_t> SizeBefore;
  for (const auto &F : M.functions())
    SizeBefore[F->getName()] = F->instructionCount();
  Phase.SepFuncs = runFission(M, Phase.Stats, Opts);
  std::set<std::string> SepSet(Phase.SepFuncs.begin(), Phase.SepFuncs.end());
  for (const auto &F : M.functions()) {
    if (SepSet.count(F->getName()))
      continue;
    auto It = SizeBefore.find(F->getName());
    if (It != SizeBefore.end() && F->instructionCount() != It->second)
      Phase.ProcessedFuncs.insert(F->getName());
  }
  return Phase;
}

//===----------------------------------------------------------------------===//
// Step lists. Every public entry point — obfuscateModule, finishFissionMode
// and the obfuscateModulePrefix bisection hook — executes the same flat
// sequence of named steps, so a bisection prefix is a true prefix of the
// production pipeline.
//===----------------------------------------------------------------------===//

namespace {

/// One named step of a mode's pipeline. Run mutates the module and folds
/// its statistics into the shared StepState.
struct ObfStep {
  std::string Name;
  std::function<void(Module &)> Run;
};

/// State threaded through a step list: the accumulated result plus the
/// fission phase output the fusion step keys its candidate set on.
struct StepState {
  ObfuscationResult R;
  FissionPhase Phase;
  bool HavePhase = false;
};

std::mutex ExtraPassMutex;
std::vector<std::pair<std::string, std::function<std::unique_ptr<Pass>()>>>
    &extraPasses() {
  static std::vector<
      std::pair<std::string, std::function<std::unique_ptr<Pass>()>>>
      Passes;
  return Passes;
}

/// Fusion candidate names for the FuFi modes: eligible functions fission
/// did not touch, in module order (fusion's candidate ordering is part of
/// the reproducible-output contract).
std::vector<std::string> namesOfUnprocessed(const Module &M,
                                            const FissionPhase &Phase) {
  std::set<std::string> SepSet(Phase.SepFuncs.begin(), Phase.SepFuncs.end());
  std::vector<std::string> Out;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isIntrinsic() || F->isNoObfuscate())
      continue;
    if (Phase.ProcessedFuncs.count(F->getName()) ||
        SepSet.count(F->getName()))
      continue;
    Out.push_back(F->getName());
  }
  return Out;
}

/// Builds the step list of (Mode, Opts). When \p IncludeFission is false
/// the caller has already run the fission prefix (finishFissionMode over a
/// cached fission-stage artifact) and \p State->Phase is preset.
std::vector<ObfStep> buildSteps(ObfuscationMode Mode,
                                const KhaosOptions &Opts,
                                std::shared_ptr<StepState> State,
                                bool IncludeFission) {
  std::vector<ObfStep> Steps;

  if (modeUsesFission(Mode)) {
    if (IncludeFission)
      Steps.push_back({"fission", [State, Opts](Module &M) {
                         State->Phase = runFissionPhase(M, Opts.Fission);
                         State->HavePhase = true;
                         State->R.Fission = State->Phase.Stats;
                       }});
    if (Mode != ObfuscationMode::Fission)
      Steps.push_back({"fusion", [State, Opts, Mode](Module &M) {
                         assert(State->HavePhase &&
                                "fusion step needs the fission phase");
                         FusionOptions FuOpt = Opts.Fusion;
                         FuOpt.Seed = Opts.Seed;
                         const FissionPhase &Phase = State->Phase;
                         switch (Mode) {
                         case ObfuscationMode::FuFiSep:
                           FuOpt.RestrictTo = Phase.SepFuncs;
                           break;
                         case ObfuscationMode::FuFiOri:
                           FuOpt.RestrictTo = namesOfUnprocessed(M, Phase);
                           break;
                         case ObfuscationMode::FuFiAll:
                           FuOpt.RestrictTo = namesOfUnprocessed(M, Phase);
                           for (const std::string &S : Phase.SepFuncs)
                             FuOpt.RestrictTo.push_back(S);
                           break;
                         default:
                           break;
                         }
                         runFusion(M, State->R.Fusion, FuOpt);
                       }});
  } else {
    switch (Mode) {
    case ObfuscationMode::None:
      break;
    case ObfuscationMode::Sub:
      Steps.push_back({"substitution", [State, Opts](Module &M) {
                         OLLVMOptions Base;
                         Base.Seed = Opts.Seed;
                         Base.Ratio = 1.0;
                         State->R.BaselineSites = runSubstitution(M, Base);
                         State->R.Report.SitesRewritten +=
                             State->R.BaselineSites;
                       }});
      break;
    case ObfuscationMode::Bog:
      Steps.push_back({"bogus-cfg", [State, Opts](Module &M) {
                         OLLVMOptions Base;
                         Base.Seed = Opts.Seed;
                         Base.Ratio = 1.0;
                         State->R.BaselineSites =
                             runBogusControlFlow(M, Base);
                         // Each bogus twin = one split tail + one clone.
                         State->R.Report.BlocksSplit +=
                             State->R.BaselineSites;
                         State->R.Report.BlocksInserted +=
                             State->R.BaselineSites * 2;
                       }});
      break;
    case ObfuscationMode::Fla:
    case ObfuscationMode::Fla10:
      Steps.push_back({"flattening", [State, Opts, Mode](Module &M) {
                         OLLVMOptions Base;
                         Base.Seed = Opts.Seed;
                         Base.Ratio =
                             Mode == ObfuscationMode::Fla ? 1.0 : 0.1;
                         State->R.BaselineSites = runFlattening(M, Base);
                       }});
      break;
    case ObfuscationMode::Fusion:
      Steps.push_back({"fusion", [State, Opts](Module &M) {
                         FusionOptions FuOpt = Opts.Fusion;
                         FuOpt.Seed = Opts.Seed;
                         runFusion(M, State->R.Fusion, FuOpt);
                       }});
      break;
    case ObfuscationMode::MBA:
      Steps.push_back({"mba", [State, Opts](Module &M) {
                         OLLVMOptions Base;
                         Base.Seed = Opts.Seed;
                         Base.Ratio = 1.0;
                         State->R.BaselineSites = runMBASubstitution(
                             M, Base, &State->R.Report);
                       }});
      break;
    case ObfuscationMode::StrEnc:
      Steps.push_back({"string-encryption", [State, Opts](Module &M) {
                         OLLVMOptions Base;
                         Base.Seed = Opts.Seed;
                         Base.Ratio = 1.0;
                         State->R.BaselineSites = runStringEncryption(
                             M, Base, &State->R.Report);
                       }});
      break;
    case ObfuscationMode::IndCall:
      Steps.push_back({"indirect-calls", [State, Opts](Module &M) {
                         OLLVMOptions Base;
                         Base.Seed = Opts.Seed;
                         Base.Ratio = 1.0;
                         State->R.BaselineSites = runIndirectCalls(
                             M, Base, &State->R.Report);
                       }});
      break;
    case ObfuscationMode::SplitBB:
      Steps.push_back({"split-blocks", [State, Opts](Module &M) {
                         OLLVMOptions Base;
                         Base.Seed = Opts.Seed;
                         Base.Ratio = 1.0;
                         State->R.BaselineSites = runSplitBasicBlocks(
                             M, Base, &State->R.Report);
                       }});
      break;
    // These four take the modeUsesFission() branch above.
    case ObfuscationMode::Fission:
    case ObfuscationMode::FuFiSep:
    case ObfuscationMode::FuFiOri:
    case ObfuscationMode::FuFiAll:
      break;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(ExtraPassMutex);
    for (const auto &Extra : extraPasses()) {
      std::function<std::unique_ptr<Pass>()> Factory = Extra.second;
      Steps.push_back({"extra:" + Extra.first, [Factory](Module &M) {
                         Factory()->run(M);
                       }});
    }
  }

  if (Opts.RunPostOpt) {
    std::map<std::string, unsigned> Occurrence;
    for (auto &P : buildOptPassList(Opts.PostOptLevel)) {
      // simplifycfg's threading/merging would stitch every SplitBB cut
      // straight back together, but its unreachable-block removal is
      // still required (the inliner leaves dead continuation blocks that
      // fail the verifier's dominance check). Swap in the cleanup-only
      // flavour instead of dropping the slot.
      if (Mode == ObfuscationMode::SplitBB &&
          std::string(P->getName()) == "simplifycfg")
        P = createCFGCleanupPass();
      unsigned K = ++Occurrence[P->getName()];
      std::shared_ptr<Pass> SP = std::move(P);
      Steps.push_back({"post-opt:" + std::string(SP->getName()) + "#" +
                           std::to_string(K),
                       [SP](Module &M) { SP->run(M); }});
    }
  }
  return Steps;
}

} // namespace

ObfuscationResult khaos::finishFissionMode(Module &M, ObfuscationMode Mode,
                                           const KhaosOptions &Opts,
                                           const FissionPhase &Phase) {
  assert(modeUsesFission(Mode) && "mode has no fission prefix");
  auto State = std::make_shared<StepState>();
  State->Phase = Phase;
  State->HavePhase = true;
  State->R.Fission = Phase.Stats;
  for (const ObfStep &S :
       buildSteps(Mode, Opts, State, /*IncludeFission=*/false))
    S.Run(M);
  return State->R;
}

std::vector<std::string>
khaos::obfuscationStepNames(ObfuscationMode Mode, const KhaosOptions &Opts) {
  auto State = std::make_shared<StepState>();
  std::vector<std::string> Names;
  for (const ObfStep &S :
       buildSteps(Mode, Opts, State, /*IncludeFission=*/true))
    Names.push_back(S.Name);
  return Names;
}

ObfuscationResult khaos::obfuscateModulePrefix(Module &M,
                                               ObfuscationMode Mode,
                                               const KhaosOptions &Opts,
                                               size_t NumSteps) {
  auto State = std::make_shared<StepState>();
  std::vector<ObfStep> Steps =
      buildSteps(Mode, Opts, State, /*IncludeFission=*/true);
  for (size_t I = 0, E = std::min(NumSteps, Steps.size()); I != E; ++I)
    Steps[I].Run(M);
  return State->R;
}

ObfuscationResult khaos::obfuscateModule(Module &M, ObfuscationMode Mode,
                                         const KhaosOptions &Opts) {
  return obfuscateModulePrefix(M, Mode, Opts,
                               std::numeric_limits<size_t>::max());
}

void khaos::registerExtraObfuscationPass(
    const std::string &Name,
    std::function<std::unique_ptr<Pass>()> Factory) {
  std::lock_guard<std::mutex> Lock(ExtraPassMutex);
  extraPasses().emplace_back(Name, std::move(Factory));
}

void khaos::clearExtraObfuscationPasses() {
  std::lock_guard<std::mutex> Lock(ExtraPassMutex);
  extraPasses().clear();
}
