//===- obfuscation/KhaosDriver.cpp - Obfuscation mode driver --------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obfuscation/KhaosDriver.h"

#include "ir/Module.h"
#include "obfuscation/OLLVM.h"

#include <cassert>
#include <map>
#include <set>

using namespace khaos;

const std::vector<ObfuscationMode> &khaos::allObfuscationModes() {
  static const std::vector<ObfuscationMode> Modes = {
      ObfuscationMode::Sub,     ObfuscationMode::Bog,
      ObfuscationMode::Fla10,   ObfuscationMode::Fission,
      ObfuscationMode::Fusion,  ObfuscationMode::FuFiSep,
      ObfuscationMode::FuFiOri, ObfuscationMode::FuFiAll,
  };
  return Modes;
}

const char *khaos::obfuscationModeName(ObfuscationMode Mode) {
  switch (Mode) {
  case ObfuscationMode::None:
    return "None";
  case ObfuscationMode::Sub:
    return "Sub";
  case ObfuscationMode::Bog:
    return "Bog";
  case ObfuscationMode::Fla:
    return "Fla";
  case ObfuscationMode::Fla10:
    return "Fla-10";
  case ObfuscationMode::Fission:
    return "Fission";
  case ObfuscationMode::Fusion:
    return "Fusion";
  case ObfuscationMode::FuFiSep:
    return "FuFi.sep";
  case ObfuscationMode::FuFiOri:
    return "FuFi.ori";
  case ObfuscationMode::FuFiAll:
    return "FuFi.all";
  }
  return "?";
}

bool khaos::modeUsesFission(ObfuscationMode Mode) {
  switch (Mode) {
  case ObfuscationMode::Fission:
  case ObfuscationMode::FuFiSep:
  case ObfuscationMode::FuFiOri:
  case ObfuscationMode::FuFiAll:
    return true;
  default:
    return false;
  }
}

FissionPhase khaos::runFissionPhase(Module &M, const FissionOptions &Opts) {
  FissionPhase Phase;
  // Functions that lose a region to fission are tracked by name (via their
  // instruction-count delta) for the FuFi.ori candidate set.
  std::map<std::string, size_t> SizeBefore;
  for (const auto &F : M.functions())
    SizeBefore[F->getName()] = F->instructionCount();
  Phase.SepFuncs = runFission(M, Phase.Stats, Opts);
  std::set<std::string> SepSet(Phase.SepFuncs.begin(), Phase.SepFuncs.end());
  for (const auto &F : M.functions()) {
    if (SepSet.count(F->getName()))
      continue;
    auto It = SizeBefore.find(F->getName());
    if (It != SizeBefore.end() && F->instructionCount() != It->second)
      Phase.ProcessedFuncs.insert(F->getName());
  }
  return Phase;
}

ObfuscationResult khaos::finishFissionMode(Module &M, ObfuscationMode Mode,
                                           const KhaosOptions &Opts,
                                           const FissionPhase &Phase) {
  assert(modeUsesFission(Mode) && "mode has no fission prefix");
  ObfuscationResult R;
  R.Fission = Phase.Stats;

  // Eligible functions fission did not touch, in module order (fusion's
  // candidate ordering is part of the reproducible-output contract).
  auto NamesOfUnprocessed = [&]() {
    std::set<std::string> SepSet(Phase.SepFuncs.begin(),
                                 Phase.SepFuncs.end());
    std::vector<std::string> Out;
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isIntrinsic() || F->isNoObfuscate())
        continue;
      if (Phase.ProcessedFuncs.count(F->getName()) ||
          SepSet.count(F->getName()))
        continue;
      Out.push_back(F->getName());
    }
    return Out;
  };

  if (Mode != ObfuscationMode::Fission) {
    FusionOptions FuOpt = Opts.Fusion;
    FuOpt.Seed = Opts.Seed;
    switch (Mode) {
    case ObfuscationMode::FuFiSep:
      FuOpt.RestrictTo = Phase.SepFuncs;
      break;
    case ObfuscationMode::FuFiOri:
      FuOpt.RestrictTo = NamesOfUnprocessed();
      break;
    case ObfuscationMode::FuFiAll:
      FuOpt.RestrictTo = NamesOfUnprocessed();
      for (const std::string &S : Phase.SepFuncs)
        FuOpt.RestrictTo.push_back(S);
      break;
    default:
      break;
    }
    runFusion(M, R.Fusion, FuOpt);
  }

  if (Opts.RunPostOpt)
    optimizeModule(M, Opts.PostOptLevel);
  return R;
}

ObfuscationResult khaos::obfuscateModule(Module &M, ObfuscationMode Mode,
                                         const KhaosOptions &Opts) {
  if (modeUsesFission(Mode)) {
    FissionPhase Phase = runFissionPhase(M, Opts.Fission);
    return finishFissionMode(M, Mode, Opts, Phase);
  }

  ObfuscationResult R;
  OLLVMOptions Base;
  Base.Seed = Opts.Seed;

  switch (Mode) {
  case ObfuscationMode::None:
    break;
  case ObfuscationMode::Sub:
    Base.Ratio = 1.0;
    R.BaselineSites = runSubstitution(M, Base);
    break;
  case ObfuscationMode::Bog:
    Base.Ratio = 1.0;
    R.BaselineSites = runBogusControlFlow(M, Base);
    break;
  case ObfuscationMode::Fla:
    Base.Ratio = 1.0;
    R.BaselineSites = runFlattening(M, Base);
    break;
  case ObfuscationMode::Fla10:
    Base.Ratio = 0.1;
    R.BaselineSites = runFlattening(M, Base);
    break;
  case ObfuscationMode::Fusion: {
    FusionOptions FuOpt = Opts.Fusion;
    FuOpt.Seed = Opts.Seed;
    runFusion(M, R.Fusion, FuOpt);
    break;
  }
  // Listed (not defaulted) so -Wswitch flags any future mode that falls
  // through here untransformed; these four took the early fission path.
  case ObfuscationMode::Fission:
  case ObfuscationMode::FuFiSep:
  case ObfuscationMode::FuFiOri:
  case ObfuscationMode::FuFiAll:
    break;
  }

  if (Opts.RunPostOpt)
    optimizeModule(M, Opts.PostOptLevel);
  return R;
}
