//===- obfuscation/KhaosDriver.cpp - Obfuscation mode driver --------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obfuscation/KhaosDriver.h"

#include "ir/Module.h"
#include "obfuscation/OLLVM.h"

#include <set>

using namespace khaos;

const std::vector<ObfuscationMode> &khaos::allObfuscationModes() {
  static const std::vector<ObfuscationMode> Modes = {
      ObfuscationMode::Sub,     ObfuscationMode::Bog,
      ObfuscationMode::Fla10,   ObfuscationMode::Fission,
      ObfuscationMode::Fusion,  ObfuscationMode::FuFiSep,
      ObfuscationMode::FuFiOri, ObfuscationMode::FuFiAll,
  };
  return Modes;
}

const char *khaos::obfuscationModeName(ObfuscationMode Mode) {
  switch (Mode) {
  case ObfuscationMode::None:
    return "None";
  case ObfuscationMode::Sub:
    return "Sub";
  case ObfuscationMode::Bog:
    return "Bog";
  case ObfuscationMode::Fla:
    return "Fla";
  case ObfuscationMode::Fla10:
    return "Fla-10";
  case ObfuscationMode::Fission:
    return "Fission";
  case ObfuscationMode::Fusion:
    return "Fusion";
  case ObfuscationMode::FuFiSep:
    return "FuFi.sep";
  case ObfuscationMode::FuFiOri:
    return "FuFi.ori";
  case ObfuscationMode::FuFiAll:
    return "FuFi.all";
  }
  return "?";
}

ObfuscationResult khaos::obfuscateModule(Module &M, ObfuscationMode Mode,
                                         const KhaosOptions &Opts) {
  ObfuscationResult R;
  OLLVMOptions Base;
  Base.Seed = Opts.Seed;

  auto NamesOfUnprocessed = [&](const std::set<std::string> &Processed,
                                const std::vector<std::string> &Seps) {
    std::set<std::string> SepSet(Seps.begin(), Seps.end());
    std::vector<std::string> Out;
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isIntrinsic() || F->isNoObfuscate())
        continue;
      if (Processed.count(F->getName()) || SepSet.count(F->getName()))
        continue;
      Out.push_back(F->getName());
    }
    return Out;
  };

  // Functions that lost a region to fission (tracked by name for the
  // FuFi.ori candidate set).
  auto RunFissionPhase = [&](std::vector<std::string> &Seps,
                             std::set<std::string> &Processed) {
    std::set<std::string> Before;
    std::map<std::string, size_t> SizeBefore;
    for (const auto &F : M.functions())
      SizeBefore[F->getName()] = F->instructionCount();
    FissionOptions FOpt = Opts.Fission;
    Seps = runFission(M, R.Fission, FOpt);
    std::set<std::string> SepSet(Seps.begin(), Seps.end());
    for (const auto &F : M.functions()) {
      if (SepSet.count(F->getName()))
        continue;
      auto It = SizeBefore.find(F->getName());
      if (It != SizeBefore.end() &&
          F->instructionCount() != It->second)
        Processed.insert(F->getName());
    }
  };

  switch (Mode) {
  case ObfuscationMode::None:
    break;
  case ObfuscationMode::Sub:
    Base.Ratio = 1.0;
    R.BaselineSites = runSubstitution(M, Base);
    break;
  case ObfuscationMode::Bog:
    Base.Ratio = 1.0;
    R.BaselineSites = runBogusControlFlow(M, Base);
    break;
  case ObfuscationMode::Fla:
    Base.Ratio = 1.0;
    R.BaselineSites = runFlattening(M, Base);
    break;
  case ObfuscationMode::Fla10:
    Base.Ratio = 0.1;
    R.BaselineSites = runFlattening(M, Base);
    break;
  case ObfuscationMode::Fission: {
    FissionOptions FOpt = Opts.Fission;
    runFission(M, R.Fission, FOpt);
    break;
  }
  case ObfuscationMode::Fusion: {
    FusionOptions FuOpt = Opts.Fusion;
    FuOpt.Seed = Opts.Seed;
    runFusion(M, R.Fusion, FuOpt);
    break;
  }
  case ObfuscationMode::FuFiSep: {
    std::vector<std::string> Seps;
    std::set<std::string> Processed;
    RunFissionPhase(Seps, Processed);
    FusionOptions FuOpt = Opts.Fusion;
    FuOpt.Seed = Opts.Seed;
    FuOpt.RestrictTo = Seps;
    runFusion(M, R.Fusion, FuOpt);
    break;
  }
  case ObfuscationMode::FuFiOri: {
    std::vector<std::string> Seps;
    std::set<std::string> Processed;
    RunFissionPhase(Seps, Processed);
    FusionOptions FuOpt = Opts.Fusion;
    FuOpt.Seed = Opts.Seed;
    FuOpt.RestrictTo = NamesOfUnprocessed(Processed, Seps);
    runFusion(M, R.Fusion, FuOpt);
    break;
  }
  case ObfuscationMode::FuFiAll: {
    std::vector<std::string> Seps;
    std::set<std::string> Processed;
    RunFissionPhase(Seps, Processed);
    FusionOptions FuOpt = Opts.Fusion;
    FuOpt.Seed = Opts.Seed;
    FuOpt.RestrictTo = NamesOfUnprocessed(Processed, Seps);
    for (const std::string &S : Seps)
      FuOpt.RestrictTo.push_back(S);
    runFusion(M, R.Fusion, FuOpt);
    break;
  }
  }

  if (Opts.RunPostOpt)
    optimizeModule(M, Opts.PostOptLevel);
  return R;
}
