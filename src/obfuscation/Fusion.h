//===- obfuscation/Fusion.h - The fusion primitive --------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fusion primitive (paper §3.3): aggregates pairs of functions into
/// fusFuncs selected by an i32 ctrl parameter. Includes
///   - parameter list compression (positional merge of compatible types),
///   - return type determination (void absorbs; otherwise the wider type),
///   - direct call-site rewriting (ctrl constant + zero padding),
///   - tagged function pointers for intra-module indirect calls (tag in
///     bits 1-2 of the 16-byte-aligned address, paper appendix A.1),
///   - trampolines for exported / module-escaping functions,
///   - deep fusion of innocuous blocks (paper §3.3.4).
///
/// Functions whose address is taken but does not escape are only paired
/// when their shared parameter positions have identical types and the
/// fused return type equals theirs (or theirs is void): an indirect call
/// site knows only the static callee type, so the fusFunc ABI must be
/// reconstructible from it. The paper leaves this detail implicit; the
/// constraint is documented in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_OBFUSCATION_FUSION_H
#define KHAOS_OBFUSCATION_FUSION_H

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

class Function;
class Module;

/// Aggregate statistics reported in the paper's Table 2.
struct FusionStats {
  unsigned Candidates = 0;    ///< Eligible functions.
  unsigned Fused = 0;         ///< Functions aggregated (2 per pair).
  unsigned Pairs = 0;         ///< fusFuncs created.
  unsigned CompressedParams = 0; ///< Parameters saved by compression.
  unsigned DeepMergedBlocks = 0; ///< Innocuous blocks merged.
  unsigned Trampolines = 0;
  unsigned TaggedPointerSites = 0; ///< Rewritten indirect call sites.

  double fusionRatio() const {
    return Candidates ? static_cast<double>(Fused) / Candidates : 0.0;
  }
  double avgReducedParams() const {
    return Pairs ? static_cast<double>(CompressedParams) / Pairs : 0.0;
  }
  double avgDeepBlocks() const {
    return Pairs ? static_cast<double>(DeepMergedBlocks) / Pairs : 0.0;
  }
};

/// Fusion configuration.
struct FusionOptions {
  uint64_t Seed = 0x5eed;      ///< Pairing shuffle seed.
  bool EnableDeepFusion = true;
  unsigned MaxDeepMergesPerPair = 2;
  /// When non-empty, only these functions are considered (FuFi modes).
  std::vector<std::string> RestrictTo;
};

/// Runs fusion over \p M. Returns statistics via \p Stats.
void runFusion(Module &M, FusionStats &Stats,
               const FusionOptions &Opts = {});

/// Fuses exactly \p F and \p G (exposed for unit tests). Returns the
/// fusFunc, or null when the pair violates a fusion constraint.
Function *fusePair(Module &M, Function *F, Function *G, FusionStats &Stats,
                   const FusionOptions &Opts = {});

} // namespace khaos

#endif // KHAOS_OBFUSCATION_FUSION_H
