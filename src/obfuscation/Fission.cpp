//===- obfuscation/Fission.cpp - The fission primitive -------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obfuscation/Fission.h"

#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace khaos;

namespace {

/// Moves allocas that are used exclusively inside the region into the
/// region head (the paper's data-flow reduction / lazy allocation).
///
/// Sinking is only sound when the region is entered at most once per
/// invocation of F: once extracted, the region head is a fresh call frame,
/// so a sunk alloca is re-created (and re-zeroed) on every entry. If the
/// head sits in a loop whose body is not fully inside the region, the
/// caller re-enters the extracted function each iteration and the alloca's
/// contents must persist across those entries — found by the differential
/// fuzzer as a checksum divergence; such allocas stay in the caller and
/// are passed by pointer like any other input.
unsigned sinkRegionLocalAllocas(Function &F,
                                const std::set<BasicBlock *> &InRegion,
                                BasicBlock *Head) {
  DominatorTree DT(F);
  LoopInfo LI(DT);
  for (const Loop *L = LI.getLoopFor(Head); L; L = L->Parent)
    for (const BasicBlock *BB : L->Blocks)
      if (!InRegion.count(const_cast<BasicBlock *>(BB)))
        return 0;

  unsigned Sunk = 0;
  for (const auto &BB : F.blocks()) {
    if (InRegion.count(BB.get()))
      continue;
    for (size_t Idx = BB->size(); Idx-- > 0;) {
      auto *AI = dyn_cast<AllocaInst>(BB->getInst(Idx));
      if (!AI || !AI->hasUses())
        continue;
      bool AllInside = true;
      for (const Instruction *U : AI->users())
        if (!InRegion.count(U->getParent())) {
          AllInside = false;
          break;
        }
      if (!AllInside)
        continue;
      std::unique_ptr<Instruction> Owned = BB->take(AI);
      AI->setParent(Head);
      Head->insertAt(0, Owned.release());
      ++Sunk;
    }
  }
  return Sunk;
}

} // namespace

Function *khaos::extractRegion(Module &M, Function &F, const Region &R,
                               const std::string &SepName,
                               FissionStats &Stats) {
  Context &Ctx = M.getContext();
  std::set<BasicBlock *> InRegion(R.Blocks.begin(), R.Blocks.end());

  Stats.LazyAllocas += sinkRegionLocalAllocas(F, InRegion, R.Head);

  // --- Inputs: every non-constant value defined outside, used inside. ---
  std::vector<Value *> Inputs;
  std::set<Value *> InputSet;
  for (BasicBlock *BB : R.Blocks) {
    for (const auto &I : BB->insts()) {
      for (Value *Op : I->operands()) {
        bool External = false;
        if (isa<Argument>(Op)) {
          External = true;
        } else if (auto *OI = dyn_cast<Instruction>(Op)) {
          External = !InRegion.count(OI->getParent());
        }
        if (External && InputSet.insert(Op).second)
          Inputs.push_back(Op);
      }
    }
  }

  // --- Exits: outside successors, plus returns inside the region. -------
  std::vector<BasicBlock *> Exits;
  std::set<BasicBlock *> ExitSet;
  std::vector<ReturnInst *> InnerRets;
  for (BasicBlock *BB : R.Blocks) {
    Instruction *T = BB->getTerminator();
    assert(T && "region block without terminator");
    if (auto *RI = dyn_cast<ReturnInst>(T))
      InnerRets.push_back(RI);
    for (BasicBlock *S : T->successors())
      if (!InRegion.count(S) && ExitSet.insert(S).second)
        Exits.push_back(S);
  }
  bool HasInnerRet = !InnerRets.empty();
  bool RetHasValue = HasInnerRet && !F.getReturnType()->isVoid();
  int64_t RetExitCode = static_cast<int64_t>(Exits.size());

  // --- Create the sepFunc. ----------------------------------------------
  std::vector<Type *> ParamTys;
  for (Value *V : Inputs)
    ParamTys.push_back(V->getType());
  if (RetHasValue)
    ParamTys.push_back(Ctx.getPointerType(F.getReturnType()));
  FunctionType *SepTy =
      Ctx.getFunctionType(Ctx.getInt32Type(), std::move(ParamTys));
  Function *Sep = M.createFunction(SepName, SepTy);
  Sep->setOrigins(F.getOrigins());
  Sep->setNoInline(true); // The paper's extractor marks sepFuncs noinline.

  // --- Move the blocks (head first: it becomes the sepFunc entry). ------
  Sep->adoptBlock(F.takeBlock(R.Head));
  for (BasicBlock *BB : R.Blocks)
    if (BB != R.Head)
      Sep->adoptBlock(F.takeBlock(BB));

  Stats.SepBlocks += R.Blocks.size();
  for (BasicBlock *BB : R.Blocks)
    Stats.MovedInstructions += BB->size();

  // --- Rewire inputs to parameters. --------------------------------------
  for (size_t I = 0; I != Inputs.size(); ++I) {
    Value *V = Inputs[I];
    Argument *A = Sep->getArg(I);
    A->setName(V->getName().empty() ? formatStr("in%zu", I) : V->getName());
    std::vector<Instruction *> Users(V->users());
    for (Instruction *U : Users) {
      if (!InRegion.count(U->getParent()))
        continue;
      for (unsigned OpIdx = 0, E = U->getNumOperands(); OpIdx != E; ++OpIdx)
        if (U->getOperand(OpIdx) == V)
          U->setOperand(OpIdx, A);
    }
  }
  Argument *RetOutArg = RetHasValue ? Sep->getArg(Inputs.size()) : nullptr;
  if (RetOutArg)
    RetOutArg->setName("ret.out");

  // --- Encode exits in the return value (paper §3.2.3). ------------------
  std::vector<BasicBlock *> ExitStubs;
  for (size_t E = 0; E != Exits.size(); ++E) {
    BasicBlock *Stub = Sep->addBlock(formatStr("exit.%zu", E));
    Stub->push(new ReturnInst(M.getInt32(static_cast<int64_t>(E)),
                              Ctx.getVoidType()));
    ExitStubs.push_back(Stub);
  }
  for (BasicBlock *BB : R.Blocks) {
    Instruction *T = BB->getTerminator();
    for (size_t E = 0; E != Exits.size(); ++E)
      T->replaceSuccessor(Exits[E], ExitStubs[E]);
  }

  // Inner returns become "exit code RetExitCode" (+ store of the value).
  for (ReturnInst *RI : InnerRets) {
    BasicBlock *BB = RI->getParent();
    if (RetOutArg && RI->hasReturnValue())
      BB->insertBefore(RI, new StoreInst(RI->getReturnValue(), RetOutArg));
    BB->insertAt(BB->size(),
                 new ReturnInst(M.getInt32(RetExitCode), Ctx.getVoidType()));
    BB->erase(RI);
  }

  // --- Build the call/dispatch blocks in the remFunc (paper Fig. 1 a-d). -
  BasicBlock *CallBB = F.addBlock(SepName + ".call");
  IRBuilder B(M);

  AllocaInst *RetSlot = nullptr;
  if (RetHasValue) {
    RetSlot = new AllocaInst(F.getReturnType(), SepName + ".retslot");
    F.getEntryBlock()->insertAt(0, RetSlot);
  }

  B.setInsertPoint(CallBB);
  std::vector<Value *> CallArgs = Inputs;
  if (RetSlot)
    CallArgs.push_back(RetSlot);
  CallInst *Call = B.createCall(Sep, CallArgs, SepName + ".code");

  // Return-from-region path.
  BasicBlock *RetBB = nullptr;
  if (HasInnerRet) {
    RetBB = F.addBlock(SepName + ".ret");
    IRBuilder RB(M);
    RB.setInsertPoint(RetBB);
    if (RetSlot)
      RB.createRet(RB.createLoad(RetSlot));
    else
      RB.createRetVoid();
  }

  if (Exits.empty() && !HasInnerRet) {
    B.createUnreachable(); // Region never returns (infinite loop).
  } else if (Exits.empty()) {
    B.createBr(RetBB);
  } else if (Exits.size() == 1 && !HasInnerRet) {
    B.createBr(Exits[0]);
  } else {
    SwitchInst *SW = B.createSwitch(Call, HasInnerRet ? RetBB : Exits[0]);
    size_t First = HasInnerRet ? 0 : 1; // Default covers exit 0 otherwise.
    for (size_t E = First; E < Exits.size(); ++E)
      SW->addCase(static_cast<int64_t>(E), Exits[E]);
  }

  // --- Redirect all former edges into the region head. -------------------
  for (const auto &BB : F.blocks()) {
    if (Instruction *T = BB->getTerminator())
      T->replaceSuccessor(R.Head, CallBB);
  }

  ++Stats.SepFuncs;
  return Sep;
}

std::vector<std::string> khaos::runFission(Module &M, FissionStats &Stats,
                                           const FissionOptions &Opts) {
  std::vector<std::string> SepNames;
  // Snapshot: newly created sepFuncs must not be re-fissioned.
  std::vector<Function *> Originals;
  for (const auto &F : M.functions())
    if (!F->isDeclaration() && !F->isIntrinsic() && !F->isNoObfuscate())
      Originals.push_back(F.get());

  for (Function *F : Originals) {
    ++Stats.OriFuncs;
    Stats.OriInstructions += F->instructionCount();
    std::vector<Region> Regions = identifyRegions(*F, Opts.Regions);
    if (Regions.empty())
      continue;
    ++Stats.ProcessedFuncs;
    unsigned Seq = 0;
    for (const Region &R : Regions) {
      std::string Name =
          M.uniqueName(F->getName() + Opts.SepSuffix + std::to_string(Seq));
      ++Seq;
      extractRegion(M, *F, R, Name, Stats);
      SepNames.push_back(Name);
    }
  }
  return SepNames;
}
