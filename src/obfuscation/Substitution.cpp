//===- obfuscation/Substitution.cpp - Instruction substitution -----------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// O-LLVM-style instruction substitution. Strategies (one picked per
/// site):
///   a + b  ->  a - (-b)           |  a + b -> (a ^ b) + 2*(a & b)
///   a - b  ->  a + (-b)           |  a - b -> (a ^ b) - 2*(~a & b)... (v2)
///   a ^ b  ->  (a | b) - (a & b)  |  a & b -> (a | b) ^ (a ^ b)
///   a | b  ->  (a & b) | (a ^ b)  (identity-preserving rewrite)
///
//===----------------------------------------------------------------------===//

#include "obfuscation/OLLVM.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/RNG.h"

using namespace khaos;

namespace {

/// Emits the replacement sequence for \p B; returns the new value or null
/// when no strategy applies.
Value *substitute(Module &M, IRBuilder &Bld, BinaryInst *B, RNG &Rng) {
  Value *L = B->getLHS(), *R = B->getRHS();
  Type *Ty = B->getType();
  Value *Zero = M.getConstantInt(Ty, 0);
  Value *Two = M.getConstantInt(Ty, 2);
  Value *AllOnes = M.getConstantInt(Ty, -1);

  switch (B->getBinOp()) {
  case BinOp::Add:
    if (Rng.nextBool()) {
      // a - (-b)
      Value *NegB = Bld.createBinOp(BinOp::Sub, Zero, R);
      return Bld.createBinOp(BinOp::Sub, L, NegB);
    } else {
      // (a ^ b) + 2*(a & b)
      Value *X = Bld.createBinOp(BinOp::Xor, L, R);
      Value *A = Bld.createBinOp(BinOp::And, L, R);
      Value *A2 = Bld.createBinOp(BinOp::Mul, Two, A);
      return Bld.createBinOp(BinOp::Add, X, A2);
    }
  case BinOp::Sub:
    if (Rng.nextBool()) {
      // a + (-b)
      Value *NegB = Bld.createBinOp(BinOp::Sub, Zero, R);
      return Bld.createBinOp(BinOp::Add, L, NegB);
    } else {
      // (a ^ b) - 2*(~a & b)
      Value *X = Bld.createBinOp(BinOp::Xor, L, R);
      Value *NotA = Bld.createBinOp(BinOp::Xor, L, AllOnes);
      Value *A = Bld.createBinOp(BinOp::And, NotA, R);
      Value *A2 = Bld.createBinOp(BinOp::Mul, Two, A);
      return Bld.createBinOp(BinOp::Sub, X, A2);
    }
  case BinOp::Xor: {
    // (a | b) - (a & b)
    Value *O = Bld.createBinOp(BinOp::Or, L, R);
    Value *A = Bld.createBinOp(BinOp::And, L, R);
    return Bld.createBinOp(BinOp::Sub, O, A);
  }
  case BinOp::And: {
    // (a | b) ^ (a ^ b)
    Value *O = Bld.createBinOp(BinOp::Or, L, R);
    Value *X = Bld.createBinOp(BinOp::Xor, L, R);
    return Bld.createBinOp(BinOp::Xor, O, X);
  }
  case BinOp::Or: {
    // (a & b) | (a ^ b)
    Value *A = Bld.createBinOp(BinOp::And, L, R);
    Value *X = Bld.createBinOp(BinOp::Xor, L, R);
    return Bld.createBinOp(BinOp::Or, A, X);
  }
  default:
    return nullptr;
  }
}

} // namespace

unsigned khaos::runSubstitution(Module &M, const OLLVMOptions &Opts) {
  RNG Rng(Opts.Seed);
  unsigned Count = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isNoObfuscate())
      continue;
    for (const auto &BB : F->blocks()) {
      // Snapshot: substitution inserts instructions.
      std::vector<BinaryInst *> Sites;
      for (const auto &I : BB->insts()) {
        auto *B = dyn_cast<BinaryInst>(I.get());
        if (!B || B->isFloatOp() || B->isDivRem())
          continue;
        if (B->getType()->getKind() == TypeKind::Int1)
          continue;
        Sites.push_back(B);
      }
      for (BinaryInst *B : Sites) {
        if (!Rng.nextBool(Opts.Ratio))
          continue;
        IRBuilder Bld(M);
        Bld.setInsertBefore(B);
        if (Value *NewV = substitute(M, Bld, B, Rng)) {
          if (B->hasUses())
            B->replaceAllUsesWith(NewV);
          B->eraseFromParent();
          ++Count;
        }
      }
    }
  }
  return Count;
}
