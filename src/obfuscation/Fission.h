//===- obfuscation/Fission.h - The fission primitive ------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fission primitive (paper §3.2): separates regions of a function
/// into new sepFuncs, leaving a remFunc behind. Control flow is rebuilt by
/// encoding region exits in the sepFunc's i32 return value and dispatching
/// at the call site; data flow is rebuilt by passing every externally
/// defined value (notably alloca pointers) as parameters. Allocas used only
/// inside a region migrate into it first — the paper's data-flow reduction
/// ("lazy allocation").
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_OBFUSCATION_FISSION_H
#define KHAOS_OBFUSCATION_FISSION_H

#include "obfuscation/RegionIdentifier.h"

#include <string>
#include <vector>

namespace khaos {

class Function;
class Module;

/// Aggregate statistics reported in the paper's Table 2.
struct FissionStats {
  unsigned OriFuncs = 0;        ///< Functions considered.
  unsigned ProcessedFuncs = 0;  ///< Functions that lost at least a region.
  unsigned SepFuncs = 0;        ///< Functions created.
  unsigned SepBlocks = 0;       ///< Blocks moved into sepFuncs.
  unsigned LazyAllocas = 0;     ///< Allocas sunk by data-flow reduction.
  uint64_t OriInstructions = 0; ///< Pre-fission instruction count.
  uint64_t MovedInstructions = 0;

  double fissionRatio() const {
    return OriFuncs ? static_cast<double>(SepFuncs) / OriFuncs : 0.0;
  }
  double avgBlocksPerSepFunc() const {
    return SepFuncs ? static_cast<double>(SepBlocks) / SepFuncs : 0.0;
  }
  double reductionRatio() const {
    return OriInstructions
               ? static_cast<double>(MovedInstructions) / OriInstructions
               : 0.0;
  }
};

/// Fission configuration.
struct FissionOptions {
  RegionOptions Regions;
  /// Suffix stem for generated functions.
  std::string SepSuffix = ".part";
};

/// Applies fission to every eligible function of \p M. Returns the names
/// of all created sepFuncs (needed by the FuFi.sep / FuFi.all drivers).
std::vector<std::string> runFission(Module &M, FissionStats &Stats,
                                    const FissionOptions &Opts = {});

/// Extracts one region from \p F into a new function. Returns the new
/// sepFunc. Exposed for unit tests.
Function *extractRegion(Module &M, Function &F, const Region &R,
                        const std::string &SepName, FissionStats &Stats);

} // namespace khaos

#endif // KHAOS_OBFUSCATION_FISSION_H
