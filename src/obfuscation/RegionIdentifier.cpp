//===- obfuscation/RegionIdentifier.cpp - Paper Algorithm 1 ---------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obfuscation/RegionIdentifier.h"

#include "analysis/BlockFrequency.h"
#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"

#include <algorithm>
#include <set>

using namespace khaos;

namespace {

/// True when \p Blocks can be extracted into a sepFunc without breaking
/// semantics. See the paper's §3.2.4 for the setjmp and EH constraints.
bool isExtractable(const std::set<BasicBlock *> &InRegion) {
  for (BasicBlock *BB : InRegion) {
    for (const auto &I : BB->insts()) {
      switch (I->getOpcode()) {
      case Opcode::Call: {
        const Function *Callee =
            cast<CallInst>(I.get())->getCalledFunction();
        // A setjmp call-site must stay in its original frame: the jmpbuf
        // records this frame's context (paper §3.2.4).
        if (Callee && Callee->getName() == "setjmp")
          return false;
        break;
      }
      case Opcode::Invoke: {
        // The try and its catch must land in the same region, otherwise
        // the unwind edge would cross a call boundary.
        const auto *IV = cast<InvokeInst>(I.get());
        if (!InRegion.count(IV->getUnwindDest()))
          return false;
        break;
      }
      case Opcode::LandingPad: {
        // All invokes unwinding here must sit inside the region too.
        for (BasicBlock *P : BB->predecessors())
          if (!InRegion.count(P))
            return false;
        break;
      }
      case Opcode::Throw:
        return false; // Raw throws unwind the frame; keep them in place.
      case Opcode::Alloca:
        // An alloca whose buffer outlives the region cannot move into a
        // function whose frame dies on return.
        for (const Instruction *U : I->users())
          if (!InRegion.count(U->getParent()))
            return false;
        break;
      default:
        break;
      }
    }
  }
  return true;
}

} // namespace

std::vector<Region> khaos::identifyRegions(Function &F,
                                           const RegionOptions &Opts) {
  std::vector<Region> Selected;
  if (F.isDeclaration() || F.size() < 3)
    return Selected;

  DominatorTree DT(F);
  LoopInfo LI(DT);
  BlockFrequency BF(DT, LI);

  // Build the candidate set: every dominator subtree except the one rooted
  // at the entry ("we won't separate the whole function", Algorithm 1
  // line 3).
  struct Candidate {
    Region R;
    std::set<BasicBlock *> Set;
  };
  std::vector<Candidate> Cands;
  for (const auto &BB : F.blocks()) {
    if (BB.get() == F.getEntryBlock() || !DT.isReachable(BB.get()))
      continue;
    Candidate C;
    C.R.Head = BB.get();
    C.R.Blocks = DT.getSubtree(BB.get());
    if (C.R.Blocks.size() < Opts.MinBlocks)
      continue;
    // Keep a remnant: never extract every non-entry block unless the
    // function is large (the remFunc must stay a plausible function).
    if (C.R.Blocks.size() + 1 >= F.size())
      continue;
    C.Set.insert(C.R.Blocks.begin(), C.R.Blocks.end());
    if (!isExtractable(C.Set))
      continue;

    // Effect: obfuscation gain; cost: cut frequency (Algorithm 1 ll. 7-12).
    C.R.Effect = static_cast<double>(C.R.Blocks.size());
    double Cost = BF.getFrequency(BB.get());
    if (LI.getLoopFor(BB.get()))
      Cost *= LoopInfo::AssumedTripCount;
    if (Opts.IgnoreFrequencyCost)
      Cost = 1.0; // Ablation: size-greedy selection.
    C.R.Cost = Cost > 0 ? Cost : 0.001;
    Cands.push_back(std::move(C));
  }

  // Iteratively take the most cost-effective tree, dropping everything
  // that intersects it (Algorithm 1 ll. 4-21).
  std::vector<bool> Dead(Cands.size(), false);
  while (Selected.size() < Opts.MaxRegionsPerFunction) {
    int Best = -1;
    for (size_t I = 0; I != Cands.size(); ++I) {
      if (Dead[I])
        continue;
      if (Best < 0 || Cands[I].R.value() > Cands[Best].R.value())
        Best = static_cast<int>(I);
    }
    if (Best < 0)
      break;
    Selected.push_back(Cands[Best].R);
    const std::set<BasicBlock *> &Taken = Cands[Best].Set;
    for (size_t I = 0; I != Cands.size(); ++I) {
      if (Dead[I])
        continue;
      bool Intersects = false;
      for (BasicBlock *BB : Cands[I].R.Blocks)
        if (Taken.count(BB)) {
          Intersects = true;
          break;
        }
      if (Intersects)
        Dead[I] = true;
    }
  }
  return Selected;
}
