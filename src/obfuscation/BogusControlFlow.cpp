//===- obfuscation/BogusControlFlow.cpp - Bogus control flow --------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// O-LLVM-style bogus control flow. Each chosen block B is split into
/// Head -> Tail. Head ends with an opaque predicate on two globals
/// (x*(x+1) is always even, so "x*(x+1) % 2 == 0 || y < 10" is always
/// true); the true edge goes to Tail, the false edge to a scrambled clone
/// of Tail that is never executed but confuses static features.
///
//===----------------------------------------------------------------------===//

#include "obfuscation/OLLVM.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/RNG.h"

using namespace khaos;

namespace {

/// Gets (or creates) the opaque-state globals used by the predicates.
GlobalVariable *getOpaqueGlobal(Module &M, const char *Name) {
  if (GlobalVariable *GV = M.getGlobal(Name))
    return GV;
  return M.createGlobal(Name, M.getContext().getInt32Type());
}

/// Builds a clone of \p Tail whose arithmetic is scrambled. The clone
/// ends with a branch back to \p Tail so the CFG stays plausible.
BasicBlock *buildBogusClone(Module & /*M*/, Function &F, BasicBlock *Tail,
                            RNG &Rng) {
  BasicBlock *Bogus = F.addBlockAfter(Tail, Tail->getName() + ".bogus");
  std::map<const Value *, Value *> Local;
  // An instruction is clonable only when its operands are available in the
  // bogus block: defined outside Tail, or themselves cloned (otherwise the
  // clone would use a value that does not dominate it).
  auto OperandsAvailable = [&](const Instruction *I) {
    for (const Value *Op : I->operands()) {
      const auto *OI = dyn_cast<Instruction>(Op);
      if (OI && OI->getParent() == Tail && !Local.count(OI))
        return false;
    }
    return true;
  };
  for (const auto &I : Tail->insts()) {
    if (I->isTerminator() || isa<AllocaInst>(I.get()))
      continue;
    if (!OperandsAvailable(I.get()))
      continue;
    // Calls and stores in the bogus block would look odd but must not
    // fire even speculatively in static analyzers; clone only pure
    // instructions and loads, scrambling binop kinds.
    switch (I->getOpcode()) {
    case Opcode::BinOp: {
      auto *B = cast<BinaryInst>(I.get());
      if (B->isFloatOp()) {
        break;
      } else {
        BinOp Alt[] = {BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::Or,
                       BinOp::And};
        auto *Clone =
            new BinaryInst(Alt[Rng.nextBelow(5)],
                           Local.count(B->getLHS()) ? Local[B->getLHS()]
                                                    : B->getLHS(),
                           Local.count(B->getRHS()) ? Local[B->getRHS()]
                                                    : B->getRHS());
        Bogus->push(Clone);
        Local[I.get()] = Clone;
      }
      break;
    }
    case Opcode::Load: {
      auto *L = cast<LoadInst>(I.get());
      Value *Ptr = Local.count(L->getPointer()) ? Local[L->getPointer()]
                                                : L->getPointer();
      auto *Clone = new LoadInst(Ptr);
      Bogus->push(Clone);
      Local[I.get()] = Clone;
      break;
    }
    default:
      break;
    }
  }
  Bogus->push(new BranchInst(Tail));
  return Bogus;
}

} // namespace

unsigned khaos::runBogusControlFlow(Module &M, const OLLVMOptions &Opts) {
  RNG Rng(Opts.Seed);
  Context &Ctx = M.getContext();
  GlobalVariable *X = getOpaqueGlobal(M, "__khaos_opaque_x");
  GlobalVariable *Y = getOpaqueGlobal(M, "__khaos_opaque_y");
  unsigned Count = 0;

  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isNoObfuscate())
      continue;
    // Snapshot the block list (we add blocks).
    std::vector<BasicBlock *> Blocks;
    for (const auto &BB : F->blocks())
      Blocks.push_back(BB.get());

    for (BasicBlock *BB : Blocks) {
      // O-LLVM's -bcf_prob: even at "100%" only ~30% of the blocks of a
      // selected function receive a bogus twin.
      if (!Rng.nextBool(Opts.Ratio * 0.3))
        continue;
      if (BB->size() < 3)
        continue;
      if (isa<LandingPadInst>(BB->front()))
        continue; // Unwind targets must keep their shape.
      // Split roughly in the middle; never split before an alloca chain.
      size_t SplitIdx = BB->size() / 2;
      while (SplitIdx + 1 < BB->size() &&
             isa<AllocaInst>(BB->getInst(SplitIdx)))
        ++SplitIdx;
      Instruction *SplitPoint = BB->getInst(SplitIdx);
      if (SplitPoint->isTerminator())
        continue;
      BasicBlock *Tail =
          BB->splitBefore(SplitPoint, BB->getName() + ".tail");

      // Opaque predicate: (x*(x+1)) % 2 == 0 || y < 10  — always true.
      IRBuilder B(M);
      Instruction *HeadBr = BB->getTerminator();
      B.setInsertBefore(HeadBr);
      Value *XV = B.createLoad(X);
      Value *X1 = B.createBinOp(BinOp::Add, XV, M.getInt32(1));
      Value *Prod = B.createBinOp(BinOp::Mul, XV, X1);
      Value *Rem = B.createBinOp(BinOp::And, Prod, M.getInt32(1));
      Value *EvenCheck = B.createCmp(CmpPred::EQ, Rem, M.getInt32(0));
      Value *YV = B.createLoad(Y);
      Value *YCheck = B.createCmp(CmpPred::SLT, YV, M.getInt32(10));
      Value *Opaque = B.createBinOp(BinOp::Or,
                                    B.createConvert(EvenCheck,
                                                    Ctx.getInt1Type()),
                                    B.createConvert(YCheck,
                                                    Ctx.getInt1Type()));

      BasicBlock *Bogus = buildBogusClone(M, *F, Tail, Rng);
      BB->insertAt(BB->size(), new BranchInst(Opaque, Tail, Bogus));
      BB->erase(HeadBr);
      ++Count;
    }
  }
  return Count;
}
