//===- obfuscation/Fusion.cpp - The fusion primitive -----------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obfuscation/Fusion.h"

#include "analysis/CallGraph.h"
#include "analysis/EscapeAnalysis.h"
#include "analysis/BlockFrequency.h"
#include "analysis/DominatorTree.h"
#include "analysis/InnocuousAnalysis.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "transform/DemoteValues.h"
#include "ir/Module.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace khaos;

namespace {

/// Fusion tag layout in the low nibble of a function pointer (16-byte
/// alignment guarantees the low 4 bits are free; bit 0 is left for the
/// platform, the paper's appendix A.1 uses bits 1-2).
constexpr unsigned TagIsFusedBit = 1u << 1; // bit 1
constexpr unsigned TagCtrlBit = 1u << 2;    // bit 2
constexpr int64_t TagMask = TagIsFusedBit | TagCtrlBit;

/// Per-side description of how an original function maps into a fusFunc.
struct SideMap {
  Function *Ori = nullptr;
  int64_t Ctrl = 0;
  /// Original parameter index -> fusFunc parameter index (0 is ctrl).
  std::vector<unsigned> ParamSlot;
};

/// True when \p F's address is stored in some global initializer (the
/// statically initialized pointers of the paper's appendix A.1).
bool referencedFromGlobalInit(const Function &F, const Module &M) {
  for (const auto &G : M.globals())
    for (const Constant *C : G->getInitializer())
      if (const auto *TF = dyn_cast<ConstantTaggedFunc>(C))
        if (TF->getFunction() == &F)
          return true;
  return false;
}

/// Should the pairing require exact positional types for this function?
/// (Indirect call sites reconstruct the fused ABI from the static callee
/// type alone, so no conversions may be needed.)
bool requiresExactABI(const Function &F, const EscapeAnalysis &EA,
                      const Module &M) {
  if (EA.addressMayEscapeModule(&F))
    return false; // Escaping functions go through trampolines instead.
  return F.hasAddressTaken() || referencedFromGlobalInit(F, M);
}

/// Checks the paper's §3.3.1 constraints plus the tagged-pointer ABI
/// constraint for address-taken functions.
bool canPair(const Function &F, const Function &G, const CallGraph &CG,
             const EscapeAnalysis &EA, const Module &M) {
  if (&F == &G)
    return false;
  if (F.isVarArg() || G.isVarArg())
    return false;
  if (F.isDeclaration() || G.isDeclaration() || F.isIntrinsic() ||
      G.isIntrinsic())
    return false;
  // A direct call relation would turn into recursion after aggregation.
  if (CG.haveDirectCallRelation(&F, &G))
    return false;
  // Return compatibility: void absorbs, otherwise lossless compression.
  Type *FR = F.getReturnType(), *GR = G.getReturnType();
  if (!FR->isVoid() && !GR->isVoid() && !FR->isCompatibleWith(GR))
    return false;

  for (const Function *Taken : {&F, &G}) {
    if (!requiresExactABI(*Taken, EA, M))
      continue;
    const Function *Other = Taken == &F ? &G : &F;
    FunctionType *TT = Taken->getFunctionType();
    FunctionType *OT = Other->getFunctionType();
    unsigned Shared = std::min(TT->getNumParams(), OT->getNumParams());
    for (unsigned I = 0; I != Shared; ++I)
      if (TT->getParamType(I) != OT->getParamType(I))
        return false;
    Type *TR = TT->getReturnType();
    if (!TR->isVoid()) {
      Type *OR = OT->getReturnType();
      if (!OR->isVoid() && OR != TR)
        return false;
    }
  }
  return true;
}

/// Builds the fused parameter list: slot 0 is ctrl, shared positions are
/// compressed to the wider compatible type, leftovers are appended
/// (paper §3.3.2 and Fig. 3c).
std::vector<Type *> buildFusedParams(Module &M, Function *F, Function *G,
                                     SideMap &FM, SideMap &GM,
                                     unsigned &Compressed) {
  FunctionType *FT = F->getFunctionType();
  FunctionType *GT = G->getFunctionType();
  std::vector<Type *> Params;
  Params.push_back(M.getContext().getInt32Type()); // ctrl

  unsigned NF = FT->getNumParams(), NG = GT->getNumParams();
  unsigned Shared = std::min(NF, NG);
  FM.ParamSlot.resize(NF);
  GM.ParamSlot.resize(NG);

  for (unsigned I = 0; I != Shared; ++I) {
    Type *A = FT->getParamType(I), *B = GT->getParamType(I);
    if (A->isCompatibleWith(B)) {
      Params.push_back(Type::getCompressedType(A, B));
      FM.ParamSlot[I] = Params.size() - 1;
      GM.ParamSlot[I] = Params.size() - 1;
      ++Compressed;
    } else {
      Params.push_back(A);
      FM.ParamSlot[I] = Params.size() - 1;
      Params.push_back(B);
      GM.ParamSlot[I] = Params.size() - 1;
    }
  }
  for (unsigned I = Shared; I != NF; ++I) {
    Params.push_back(FT->getParamType(I));
    FM.ParamSlot[I] = Params.size() - 1;
  }
  for (unsigned I = Shared; I != NG; ++I) {
    Params.push_back(GT->getParamType(I));
    GM.ParamSlot[I] = Params.size() - 1;
  }
  return Params;
}

/// Fused return type: void absorbs; otherwise the compressed type
/// (paper §3.3.2, "return value determination").
Type *buildFusedReturn(Function *F, Function *G) {
  Type *FR = F->getReturnType(), *GR = G->getReturnType();
  if (FR->isVoid())
    return GR;
  if (GR->isVoid())
    return FR;
  return Type::getCompressedType(FR, GR);
}

/// Builds the fused argument vector for calling \p Fus on behalf of one
/// side: ctrl constant, this side's converted arguments in their slots,
/// zeros elsewhere. Conversions are emitted through \p B.
std::vector<Value *> buildSideArgs(Module &M, IRBuilder &B, Function *Fus,
                                   const SideMap &Side,
                                   const std::vector<Value *> &OwnArgs) {
  FunctionType *FusTy = Fus->getFunctionType();
  std::vector<Value *> Args(FusTy->getNumParams(), nullptr);
  Args[0] = M.getInt32(Side.Ctrl);
  for (unsigned I = 0, E = OwnArgs.size(); I != E; ++I) {
    unsigned Slot = Side.ParamSlot[I];
    Value *A = OwnArgs[I];
    if (A->getType() != FusTy->getParamType(Slot))
      A = B.createConvert(A, FusTy->getParamType(Slot));
    Args[Slot] = A;
  }
  for (unsigned I = 0, E = FusTy->getNumParams(); I != E; ++I)
    if (!Args[I])
      Args[I] = M.getZeroValue(FusTy->getParamType(I));
  return Args;
}

/// Builds the fusFunc body and rewrites the world. One instance per pair.
class PairFuser {
public:
  PairFuser(Module &M, Function *F, Function *G, FusionStats &Stats,
            const FusionOptions &Opts)
      : M(M), Ctx(M.getContext()), Stats(Stats), Opts(Opts) {
    Sides[0].Ori = F;
    Sides[0].Ctrl = 1;
    Sides[1].Ori = G;
    Sides[1].Ctrl = 0;
  }

  Function *run();

private:
  void moveSideBlocks(unsigned SideIdx, BasicBlock *&SideEntry);
  void hoistSideAllocas(BasicBlock *SideEntry);
  void rewireSideArguments(SideMap &Side);
  void rewriteSideReturns(unsigned SideIdx);
  void rewriteDirectCalls(SideMap &Side);
  void handleAddressUses(SideMap &Side, const EscapeAnalysis &EA);
  Function *buildTrampoline(SideMap &Side);
  void runDeepFusion();
  bool blockMergeable(BasicBlock *BB);
  bool operandAvailableEverywhere(const Value *V, const BasicBlock *Home);

  Module &M;
  Context &Ctx;
  FusionStats &Stats;
  const FusionOptions &Opts;
  SideMap Sides[2];
  Function *Fus = nullptr;
  BasicBlock *FusEntry = nullptr;
  Instruction *CtrlIsOne = nullptr; ///< i1, reused by deep fusion.
  /// Blocks of each side in original function order. Deliberately a
  /// vector, not a pointer-keyed set: iteration feeds value numbering and
  /// deep-merge candidate selection, which must not depend on heap
  /// addresses (runs must be reproducible at any thread count).
  std::vector<BasicBlock *> SideBlocks[2];
};

} // namespace

void PairFuser::moveSideBlocks(unsigned SideIdx, BasicBlock *&SideEntry) {
  Function *Ori = Sides[SideIdx].Ori;
  SideEntry = Ori->getEntryBlock();
  std::vector<BasicBlock *> Order;
  for (const auto &BB : Ori->blocks())
    Order.push_back(BB.get());
  for (BasicBlock *BB : Order) {
    Fus->adoptBlock(Ori->takeBlock(BB));
    SideBlocks[SideIdx].push_back(BB);
  }
}

void PairFuser::hoistSideAllocas(BasicBlock *SideEntry) {
  // Hoisting side-entry allocas into the fused entry makes both frames
  // exist on either path — the precondition for deep fusion's speculative
  // execution of innocuous blocks.
  std::vector<Instruction *> Allocas;
  for (const auto &I : SideEntry->insts())
    if (isa<AllocaInst>(I.get()))
      Allocas.push_back(I.get());
  for (Instruction *AI : Allocas) {
    std::unique_ptr<Instruction> Owned = SideEntry->take(AI);
    AI->setParent(FusEntry);
    FusEntry->insertAt(FusEntry->size(), Owned.release());
  }
}

void PairFuser::rewireSideArguments(SideMap &Side) {
  IRBuilder B(M);
  B.setInsertPoint(FusEntry);
  Function *Ori = Side.Ori;
  for (unsigned I = 0, E = Ori->arg_size(); I != E; ++I) {
    Argument *OldArg = Ori->getArg(I);
    if (!OldArg->hasUses())
      continue;
    Argument *NewArg = Fus->getArg(Side.ParamSlot[I]);
    Value *Replacement = NewArg;
    if (NewArg->getType() != OldArg->getType())
      Replacement = B.createConvert(NewArg, OldArg->getType());
    OldArg->replaceAllUsesWith(Replacement);
  }
}

void PairFuser::rewriteSideReturns(unsigned SideIdx) {
  Type *FusRet = Fus->getReturnType();
  if (FusRet->isVoid())
    return; // Both sides were void already.
  for (BasicBlock *BB : SideBlocks[SideIdx]) {
    auto *RI = dyn_cast_or_null<ReturnInst>(BB->getTerminator());
    if (!RI)
      continue;
    Value *NewVal;
    if (RI->hasReturnValue()) {
      if (RI->getReturnValue()->getType() == FusRet)
        continue;
      IRBuilder B(M);
      B.setInsertBefore(RI);
      NewVal = B.createConvert(RI->getReturnValue(), FusRet);
    } else {
      NewVal = M.getZeroValue(FusRet);
    }
    BB->insertAt(BB->size(), new ReturnInst(NewVal, Ctx.getVoidType()));
    BB->erase(RI);
  }
}

void PairFuser::rewriteDirectCalls(SideMap &Side) {
  Function *Ori = Side.Ori;
  Type *OriRet = Ori->getReturnType();
  std::vector<Instruction *> Users(Ori->users());
  for (Instruction *U : Users) {
    auto *CI = dyn_cast<CallInst>(U);
    if (!CI || CI->getCallee() != Ori)
      continue;
    Function *Caller = CI->getFunction();
    IRBuilder B(M);
    B.setInsertBefore(CI);
    std::vector<Value *> OwnArgs;
    for (unsigned I = 0, E = CI->getNumArgs(); I != E; ++I)
      OwnArgs.push_back(CI->getArg(I));
    std::vector<Value *> Args = buildSideArgs(M, B, Fus, Side, OwnArgs);

    bool NeedConv =
        !OriRet->isVoid() && OriRet != Fus->getReturnType() && CI->hasUses();

    Value *Result = nullptr;
    if (auto *IV = dyn_cast<InvokeInst>(CI)) {
      BasicBlock *Normal = IV->getNormalDest();
      BasicBlock *ConvBB = nullptr;
      if (NeedConv) {
        // Result conversion must run on the normal path only.
        ConvBB = Caller->addBlockAfter(CI->getParent(), "fus.conv");
      }
      auto *NewIV = new InvokeInst(Fus, Args, ConvBB ? ConvBB : Normal,
                                   IV->getUnwindDest(), CI->getName());
      CI->getParent()->insertBefore(CI, NewIV);
      Result = NewIV;
      if (ConvBB) {
        IRBuilder CB(M);
        CB.setInsertPoint(ConvBB);
        Result = CB.createConvert(NewIV, OriRet);
        CB.createBr(Normal);
      }
    } else {
      auto *NC = new CallInst(Fus, Args, CI->getName());
      CI->getParent()->insertBefore(CI, NC);
      Result = NC;
      if (NeedConv) {
        IRBuilder CB(M);
        CB.setInsertBefore(CI);
        Result = CB.createConvert(NC, OriRet);
      }
    }
    if (CI->hasUses())
      CI->replaceAllUsesWith(Result);
    CI->eraseFromParent();
  }
}

Function *PairFuser::buildTrampoline(SideMap &Side) {
  Function *Ori = Side.Ori;
  std::string OrigName = Ori->getName();
  bool WasExported = Ori->isExported();
  Ori->setName(OrigName + ".pre_fusion");

  Function *Tramp = M.createFunction(OrigName, Ori->getFunctionType());
  Tramp->setExported(WasExported);
  Tramp->setNoObfuscate(true);
  Tramp->setOrigins(Ori->getOrigins());

  IRBuilder B(M);
  BasicBlock *Entry = Tramp->addBlock("entry");
  B.setInsertPoint(Entry);

  std::vector<Value *> OwnArgs;
  for (unsigned I = 0, E = Tramp->arg_size(); I != E; ++I)
    OwnArgs.push_back(Tramp->getArg(I));
  std::vector<Value *> Args = buildSideArgs(M, B, Fus, Side, OwnArgs);

  Value *R = B.createCall(Fus, Args);
  Type *OriRet = Tramp->getReturnType();
  if (OriRet->isVoid()) {
    B.createRetVoid();
  } else {
    if (R->getType() != OriRet)
      R = B.createConvert(R, OriRet);
    B.createRet(R);
  }
  ++Stats.Trampolines;
  return Tramp;
}

void PairFuser::handleAddressUses(SideMap &Side, const EscapeAnalysis &EA) {
  Function *Ori = Side.Ori;
  unsigned Tag = TagIsFusedBit | (Side.Ctrl ? TagCtrlBit : 0);

  // Global initializers hold tagged constants (tag 0 pre-obfuscation);
  // retarget them. This is the relocation-addend trick of appendix A.1 —
  // the BinaryImage later emits these as relocations whose addend carries
  // the tag.
  bool UsedInGlobals = false;
  for (const auto &G : M.globals()) {
    std::vector<Constant *> Init = G->getInitializer();
    bool Changed = false;
    for (Constant *&C : Init) {
      auto *TF = dyn_cast<ConstantTaggedFunc>(C);
      if (TF && TF->getFunction() == Ori) {
        C = M.getTaggedFunc(TF->getType(), Fus, Tag);
        Changed = true;
        UsedInGlobals = true;
      }
    }
    if (Changed)
      G->setInitializer(std::move(Init));
  }
  (void)UsedInGlobals;

  if (EA.addressMayEscapeModule(Ori) || Ori->isExported()) {
    // Exported symbols must survive with the original ABI even when no
    // internal use remains: external callers (the VM's entry point, other
    // modules) resolve them by name.
    Function *Tramp = buildTrampoline(Side);
    if (Ori->hasUses())
      Ori->replaceAllUsesWith(Tramp);
    return;
  }

  if (!Ori->hasUses())
    return;

  // Intra-module address-taking: the paper's tagged pointer mechanism.
  ConstantTaggedFunc *TF = M.getTaggedFunc(Ori->getType(), Fus, Tag);
  Ori->replaceAllUsesWith(TF);
}

//===----------------------------------------------------------------------===//
// Deep fusion (paper §3.3.4)
//===----------------------------------------------------------------------===//

bool PairFuser::operandAvailableEverywhere(const Value *V,
                                           const BasicBlock *Home) {
  if (isa<Constant>(V) || isa<GlobalVariable>(V) || isa<Function>(V) ||
      isa<Argument>(V))
    return true;
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return false;
  // Values defined in the fused entry (hoisted allocas, argument
  // conversions, the ctrl compare) dominate both paths; values defined in
  // the candidate block itself move along with it.
  return I->getParent() == FusEntry || I->getParent() == Home;
}

/// A merged block executes speculatively on the other function's path, so
/// every memory access must stay in bounds even with garbage inputs:
/// plain allocas/globals, or constant-index GEPs of them.
static bool memoryAccessSafeEverywhere(const Value *Ptr) {
  while (true) {
    if (isa<AllocaInst>(Ptr) || isa<GlobalVariable>(Ptr))
      return true;
    if (const auto *GEP = dyn_cast<GEPInst>(Ptr)) {
      if (!isa<ConstantInt>(GEP->getIndex()))
        return false;
      Ptr = GEP->getPointer();
      continue;
    }
    return false;
  }
}

bool PairFuser::blockMergeable(BasicBlock *BB) {
  if (BB == FusEntry)
    return false;
  auto *BR = dyn_cast_or_null<BranchInst>(BB->getTerminator());
  if (!BR || BR->isConditional())
    return false;
  if (BR->getSuccessor(0) == BB)
    return false;
  if (!isInnocuousBlock(*BB))
    return false;
  for (const auto &I : BB->insts()) {
    if (isa<AllocaInst>(I.get()))
      return false;
    if (I->isTerminator())
      continue;
    // Speculative execution safety: no faulting loads/stores, no division
    // by a value that may be zero on the other path.
    if (const auto *LI = dyn_cast<LoadInst>(I.get())) {
      if (!memoryAccessSafeEverywhere(LI->getPointer()))
        return false;
    }
    if (const auto *SI = dyn_cast<StoreInst>(I.get())) {
      if (!memoryAccessSafeEverywhere(SI->getPointer()))
        return false;
    }
    for (const Value *Op : I->operands())
      if (!operandAvailableEverywhere(Op, BB))
        return false;
  }
  // The block's values must only be used inside itself: the merged block
  // is reached from both paths and defs would not dominate former users
  // elsewhere. Stores to hoisted allocas still communicate results.
  for (const auto &I : BB->insts())
    for (const Instruction *U : I->users())
      if (U->getParent() != BB)
        return false;
  return true;
}

void PairFuser::runDeepFusion() {
  // Deep fusion creates static cross-side paths through the merged block,
  // which destroys dominance for some def-use pairs. Those are repaired
  // *after* the merge with targeted reg2mem (demoting everything up front
  // costs double-digit overhead). Invoke results cannot always be
  // demoted; bail out when one with a shared normal destination exists.
  for (const auto &BB : Fus->blocks())
    for (const auto &I : BB->insts())
      if (auto *IV = dyn_cast<InvokeInst>(I.get()))
        if (IV->hasUses() &&
            IV->getNormalDest()->predecessors().size() != 1)
          return;

  std::vector<BasicBlock *> FCands, GCands;
  for (BasicBlock *BB : SideBlocks[0])
    if (blockMergeable(BB))
      FCands.push_back(BB);
  for (BasicBlock *BB : SideBlocks[1])
    if (blockMergeable(BB))
      GCands.push_back(BB);

  // Merged blocks execute on *both* paths, so merging a hot block doubles
  // hot work. Prefer the coldest candidates (this is what keeps the
  // paper's fusion overhead in the single digits).
  {
    DominatorTree DT(*Fus);
    LoopInfo LI(DT);
    BlockFrequency BF(DT, LI);
    auto Colder = [&](BasicBlock *A, BasicBlock *B) {
      return BF.getFrequency(A) < BF.getFrequency(B);
    };
    // Stable: frequency ties keep original block order, independent of
    // the sort implementation's internal pivoting.
    std::stable_sort(FCands.begin(), FCands.end(), Colder);
    std::stable_sort(GCands.begin(), GCands.end(), Colder);
    // Loop-resident blocks are never merged: the merged block would run
    // on both paths on every iteration (the paper's Fig. 5 example merges
    // straight-line prologue code, not loop bodies).
    auto DropLoops = [&](std::vector<BasicBlock *> &C) {
      C.erase(std::remove_if(C.begin(), C.end(),
                             [&](BasicBlock *BB) {
                               return LI.getLoopDepth(BB) > 0;
                             }),
              C.end());
    };
    DropLoops(FCands);
    DropLoops(GCands);
  }

  unsigned Merges =
      std::min({(unsigned)FCands.size(), (unsigned)GCands.size(),
                Opts.MaxDeepMergesPerPair});
  for (unsigned K = 0; K != Merges; ++K) {
    BasicBlock *A = FCands[K];
    BasicBlock *B = GCands[K];
    BasicBlock *ASucc = A->getTerminator()->getSuccessor(0);
    BasicBlock *BSucc = B->getTerminator()->getSuccessor(0);

    BasicBlock *Merged = Fus->addBlock(formatStr("deep.%u", K));
    // Move A's then B's straight-line code; both run on either path
    // (innocuous: no global state is touched).
    auto MoveBody = [&](BasicBlock *Src) {
      std::vector<Instruction *> Body;
      for (const auto &I : Src->insts())
        if (!I->isTerminator())
          Body.push_back(I.get());
      for (Instruction *I : Body) {
        std::unique_ptr<Instruction> Owned = Src->take(I);
        I->setParent(Merged);
        Merged->insertAt(Merged->size(), Owned.release());
      }
    };
    MoveBody(A);
    MoveBody(B);
    Merged->push(new BranchInst(CtrlIsOne, ASucc, BSucc));

    // Redirect predecessors (including the entry dispatch) into Merged.
    for (const auto &BB2 : Fus->blocks()) {
      if (BB2.get() == Merged)
        continue;
      if (Instruction *T = BB2->getTerminator()) {
        T->replaceSuccessor(A, Merged);
        T->replaceSuccessor(B, Merged);
      }
    }
    // A and B are empty shells now (terminator only).
    Fus->eraseBlock(A);
    Fus->eraseBlock(B);
    SideBlocks[0].erase(
        std::find(SideBlocks[0].begin(), SideBlocks[0].end(), A));
    SideBlocks[1].erase(
        std::find(SideBlocks[1].begin(), SideBlocks[1].end(), B));
    Stats.DeepMergedBlocks += 2;
  }

  if (!Merges)
    return;
  // Repair the def-use pairs whose dominance the merges broke.
  DominatorTree DT(*Fus);
  std::vector<Instruction *> Broken;
  for (const auto &BB : Fus->blocks()) {
    for (const auto &I : BB->insts()) {
      if (!I->getType() || I->getType()->isVoid() || !I->hasUses())
        continue;
      for (const Instruction *U : I->users())
        if (U->getParent() != BB.get() &&
            !DT.dominates(BB.get(), U->getParent())) {
          Broken.push_back(I.get());
          break;
        }
    }
  }
  for (Instruction *I : Broken)
    demoteInstruction(M, *Fus, I);
}

//===----------------------------------------------------------------------===//
// Pair driver
//===----------------------------------------------------------------------===//

Function *PairFuser::run() {
  Function *F = Sides[0].Ori, *G = Sides[1].Ori;

  unsigned Compressed = 0;
  std::vector<Type *> Params =
      buildFusedParams(M, F, G, Sides[0], Sides[1], Compressed);
  Stats.CompressedParams += Compressed;
  FunctionType *FusTy =
      Ctx.getFunctionType(buildFusedReturn(F, G), std::move(Params));

  Fus = M.createFunction(M.uniqueName("khaos_fused"), FusTy);
  Fus->setNoInline(true); // Splitting the pair back via inlining is easy.
  Fus->getArg(0)->setName("ctrl");
  std::vector<std::string> Origins = F->getOrigins();
  for (const std::string &O : G->getOrigins())
    Origins.push_back(O);
  Fus->setOrigins(std::move(Origins));

  // The fused entry is created first so it stays the entry block; side
  // blocks are appended after it.
  FusEntry = Fus->addBlock("entry");

  BasicBlock *FEntry = nullptr, *GEntry = nullptr;
  moveSideBlocks(0, FEntry);
  moveSideBlocks(1, GEntry);

  hoistSideAllocas(FEntry);
  hoistSideAllocas(GEntry);
  rewireSideArguments(Sides[0]);
  rewireSideArguments(Sides[1]);

  IRBuilder B(M);
  B.setInsertPoint(FusEntry);
  CtrlIsOne =
      B.createCmp(CmpPred::EQ, Fus->getArg(0), M.getInt32(1), "is.first");
  B.createCondBr(CtrlIsOne, FEntry, GEntry);

  rewriteSideReturns(0);
  rewriteSideReturns(1);

  rewriteDirectCalls(Sides[0]);
  rewriteDirectCalls(Sides[1]);

  EscapeAnalysis EA(M);
  handleAddressUses(Sides[0], EA);
  handleAddressUses(Sides[1], EA);

  if (Opts.EnableDeepFusion)
    runDeepFusion();

  assert(!F->hasUses() && !G->hasUses() && "stale references to oriFuncs");
  M.eraseFunction(F);
  M.eraseFunction(G);

  Stats.Fused += 2;
  ++Stats.Pairs;
  return Fus;
}

//===----------------------------------------------------------------------===//
// Indirect call rewriting (paper Fig. 4)
//===----------------------------------------------------------------------===//

/// True when any tagged (tag != 0) function constant exists in code or
/// data — only then do indirect call sites need the dispatch.
static bool moduleHasTaggedPointers(const Module &M) {
  for (const auto &G : M.globals())
    for (const Constant *C : G->getInitializer())
      if (const auto *TF = dyn_cast<ConstantTaggedFunc>(C))
        if (TF->getTag() != 0)
          return true;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->insts())
        for (const Value *Op : I->operands())
          if (const auto *TF = dyn_cast<ConstantTaggedFunc>(Op))
            if (TF->getTag() != 0)
              return true;
  return false;
}

/// Rewrites one indirect call site with the tag-check dispatch.
static void rewriteIndirectSite(Module &M, Function *F, CallInst *CI) {
  Context &Ctx = M.getContext();
  BasicBlock *BB = CI->getParent();
  bool IsInvoke = isa<InvokeInst>(CI);
  FunctionType *SiteTy = CI->getCalleeType();
  Type *RetTy = SiteTy->getReturnType();

  // Fused-callee type as seen from this site: (ctrl, original params).
  std::vector<Type *> FusParams;
  FusParams.push_back(Ctx.getInt32Type());
  for (Type *T : SiteTy->getParamTypes())
    FusParams.push_back(T);
  FunctionType *FusSiteTy = Ctx.getFunctionType(RetTy, FusParams);

  // Result slot: the two paths join without phis.
  AllocaInst *Slot = nullptr;
  if (!RetTy->isVoid() && CI->hasUses()) {
    Slot = new AllocaInst(RetTy, "tag.slot");
    F->getEntryBlock()->insertAt(0, Slot);
  }

  BasicBlock *OrigNormal = nullptr, *OrigUnwind = nullptr;
  if (IsInvoke) {
    OrigNormal = cast<InvokeInst>(CI)->getNormalDest();
    OrigUnwind = cast<InvokeInst>(CI)->getUnwindDest();
  }

  // Join block: holds the instructions after the call (plain calls), or
  // forwards to the old normal destination (invokes).
  BasicBlock *Join;
  if (IsInvoke) {
    Join = F->addBlockAfter(BB, "tag.join");
  } else {
    // A plain call is never a terminator, so something follows it.
    Join = BB->splitBefore(BB->getInst(BB->indexOf(CI) + 1), "tag.join");
  }

  Value *Callee = CI->getCallee();
  std::vector<Value *> OrigArgs;
  for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A)
    OrigArgs.push_back(CI->getArg(A));

  // Remove the call (and the split's trailing branch) from BB, then build
  // the tag check in its place.
  std::unique_ptr<Instruction> OwnedCall = BB->take(CI);
  if (Instruction *Trailing = BB->getTerminator())
    BB->erase(Trailing);

  BasicBlock *FusedBB = F->addBlockAfter(BB, "tag.fused");
  BasicBlock *PlainBB = F->addBlockAfter(FusedBB, "tag.plain");

  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *PtrInt =
      B.createCast(CastKind::PtrToInt, Callee, Ctx.getInt64Type());
  Value *TagBits = B.createBinOp(BinOp::And, PtrInt, M.getInt64(TagMask));
  Value *IsFused =
      B.createCmp(CmpPred::NE, TagBits, M.getInt64(0), "is.fused");
  B.createCondBr(IsFused, FusedBB, PlainBB);

  // Fused path: extract ctrl (bit 2), clear the tag, call the fused ABI.
  B.setInsertPoint(FusedBB);
  Value *CtrlShift = B.createBinOp(BinOp::LShr, PtrInt, M.getInt64(2));
  Value *Ctrl64 = B.createBinOp(BinOp::And, CtrlShift, M.getInt64(1));
  Value *Ctrl =
      B.createCast(CastKind::Trunc, Ctrl64, Ctx.getInt32Type(), "ctrl");
  Value *Clean = B.createBinOp(BinOp::And, PtrInt, M.getInt64(~15ll));
  Value *FusPtr = B.createCast(CastKind::IntToPtr, Clean,
                               Ctx.getPointerType(FusSiteTy));
  std::vector<Value *> FusArgs;
  FusArgs.push_back(Ctrl);
  for (Value *A : OrigArgs)
    FusArgs.push_back(A);

  auto EmitPath = [&](BasicBlock *PathBB, Value *PathCallee,
                      std::vector<Value *> Args) {
    IRBuilder PB(M);
    PB.setInsertPoint(PathBB);
    std::string Name = CI->getName() + ".tagdisp";
    if (!IsInvoke) {
      Value *R = PB.createCall(PathCallee, std::move(Args), Name);
      if (Slot)
        PB.createStore(R, Slot);
      PB.createBr(Join);
      return;
    }
    BasicBlock *Norm = F->addBlockAfter(PathBB, "tag.norm");
    Value *R =
        PB.createInvoke(PathCallee, std::move(Args), Norm, OrigUnwind, Name);
    IRBuilder NB(M);
    NB.setInsertPoint(Norm);
    if (Slot)
      NB.createStore(R, Slot);
    NB.createBr(Join);
  };
  EmitPath(FusedBB, FusPtr, FusArgs);
  EmitPath(PlainBB, Callee, OrigArgs);

  if (Slot) {
    auto *Res = new LoadInst(Slot, CI->getName() + ".res");
    Join->insertAt(0, Res);
    CI->replaceAllUsesWith(Res);
  }
  if (IsInvoke)
    Join->insertAt(Join->size(), new BranchInst(OrigNormal));
  OwnedCall.reset(); // Destroys the original call.
}

/// Rewrites every indirect call site; returns how many were rewritten.
static unsigned rewriteIndirectCallSites(Module &M) {
  if (!moduleHasTaggedPointers(M))
    return 0;
  unsigned Rewritten = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    std::vector<CallInst *> Sites;
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->insts())
        if (auto *CI = dyn_cast<CallInst>(I.get()))
          if (CI->isIndirect() && !CI->getName().ends_with(".tagdisp"))
            Sites.push_back(CI);
    for (CallInst *CI : Sites) {
      rewriteIndirectSite(M, F.get(), CI);
      ++Rewritten;
    }
  }
  return Rewritten;
}

//===----------------------------------------------------------------------===//
// Module-level driver
//===----------------------------------------------------------------------===//

Function *khaos::fusePair(Module &M, Function *F, Function *G,
                          FusionStats &Stats, const FusionOptions &Opts) {
  CallGraph CG(M);
  EscapeAnalysis EA(M);
  if (!canPair(*F, *G, CG, EA, M))
    return nullptr;
  PairFuser Fuser(M, F, G, Stats, Opts);
  Function *Fus = Fuser.run();
  Stats.TaggedPointerSites += rewriteIndirectCallSites(M);
  return Fus;
}

void khaos::runFusion(Module &M, FusionStats &Stats,
                      const FusionOptions &Opts) {
  CallGraph CG(M);
  EscapeAnalysis EA(M);

  std::set<std::string> Restrict(Opts.RestrictTo.begin(),
                                 Opts.RestrictTo.end());
  std::vector<Function *> Cands;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isIntrinsic() || F->isNoObfuscate() ||
        F->isVarArg())
      continue;
    if (!Restrict.empty() && !Restrict.count(F->getName()))
      continue;
    Cands.push_back(F.get());
  }
  Stats.Candidates += Cands.size();

  RNG Rng(Opts.Seed);
  Rng.shuffle(Cands);

  // Greedy random pairing, preferring register-only fused signatures
  // (paper: functions with < 6 total parameters are preferred).
  std::set<Function *> Used;
  std::vector<std::pair<Function *, Function *>> Pairs;
  for (size_t I = 0; I != Cands.size(); ++I) {
    Function *F = Cands[I];
    if (Used.count(F))
      continue;
    Function *Chosen = nullptr, *Fallback = nullptr;
    for (size_t J = I + 1; J != Cands.size(); ++J) {
      Function *G = Cands[J];
      if (Used.count(G) || !canPair(*F, *G, CG, EA, M))
        continue;
      unsigned Total =
          1 + std::max<unsigned>(F->arg_size(), G->arg_size());
      if (Total <= 6) {
        Chosen = G;
        break;
      }
      if (!Fallback)
        Fallback = G;
    }
    if (!Chosen)
      Chosen = Fallback;
    if (!Chosen)
      continue;
    Used.insert(F);
    Used.insert(Chosen);
    Pairs.push_back({F, Chosen});
  }

  for (auto &[F, G] : Pairs) {
    PairFuser Fuser(M, F, G, Stats, Opts);
    Fuser.run();
  }
  Stats.TaggedPointerSites += rewriteIndirectCallSites(M);
}
