//===- obfuscation/Flattening.cpp - Control-flow flattening ---------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// O-LLVM-style control-flow flattening: every block gets a case id, a
/// dispatcher loop switches on a state variable, and branches become state
/// stores. Functions with EH constructs are skipped (O-LLVM's Fla has the
/// same restriction — the paper notes it in §5).
///
//===----------------------------------------------------------------------===//

#include "obfuscation/OLLVM.h"

#include "transform/DemoteValues.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/RNG.h"

#include <map>

using namespace khaos;

namespace {

bool hasEHOrSetjmp(const Function &F) {
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->insts()) {
      switch (I->getOpcode()) {
      case Opcode::Invoke:
      case Opcode::LandingPad:
      case Opcode::Throw:
        return true;
      case Opcode::Call: {
        const Function *Callee =
            cast<CallInst>(I.get())->getCalledFunction();
        if (Callee && (Callee->getName() == "setjmp" ||
                       Callee->getName() == "longjmp"))
          return true;
        break;
      }
      default:
        break;
      }
    }
  }
  return false;
}

/// Flattens one function; returns false when it is not eligible.
bool flattenFunction(Module &M, Function &F, RNG &Rng) {
  if (F.size() < 3 || hasEHOrSetjmp(F))
    return false;

  demoteCrossBlockValues(M, F);

  Context &Ctx = M.getContext();
  BasicBlock *Entry = F.getEntryBlock();

  // The entry block gets no case id (it keeps its body so allocas stay
  // put), so a branch back to it cannot be rewired. Such IR never comes
  // out of the verifier, but hand-built IR can have it — skip rather than
  // silently emitting a state id the dispatcher has no case for.
  for (const auto &BB : F.blocks()) {
    Instruction *T = BB->getTerminator();
    if (!T)
      return false;
    for (unsigned I = 0, E = T->getNumSuccessors(); I != E; ++I)
      if (T->getSuccessor(I) == Entry)
        return false;
  }

  // Collect the blocks to flatten (everything except the entry).
  std::vector<BasicBlock *> Body;
  for (const auto &BB : F.blocks())
    if (BB.get() != Entry)
      Body.push_back(BB.get());

  // Assign shuffled case ids (the "case encryption" stand-in: ids carry
  // no structural information).
  std::map<BasicBlock *, int64_t> Id;
  {
    std::vector<int64_t> Ids;
    for (size_t I = 0; I != Body.size(); ++I)
      Ids.push_back(static_cast<int64_t>(I * 7 + 3));
    Rng.shuffle(Ids);
    for (size_t I = 0; I != Body.size(); ++I)
      Id[Body[I]] = Ids[I];
  }

  // State variable and dispatcher.
  auto *State = new AllocaInst(Ctx.getInt32Type(), "flat.state");
  Entry->insertAt(0, State);
  BasicBlock *Dispatch = F.addBlock("flat.dispatch");

  IRBuilder B(M);
  // Entry: store the id of its old successor, jump to the dispatcher.
  // (The entry keeps its body so allocas stay put.)
  auto RewireTerminator = [&](BasicBlock *BB) {
    Instruction *T = BB->getTerminator();
    IRBuilder TB(M);
    switch (T->getOpcode()) {
    case Opcode::Br: {
      auto *BR = cast<BranchInst>(T);
      TB.setInsertBefore(T);
      Value *Next;
      // Checked lookups throughout: operator[] would default-insert state
      // id 0 for a destination missing from the map, and the dispatcher
      // has no case 0 — the flattened function would fall into the
      // default (first body) block at runtime instead of crashing here.
      if (BR->isConditional()) {
        Next = TB.createSelect(BR->getCondition(),
                               M.getInt32(Id.at(BR->getTrueDest())),
                               M.getInt32(Id.at(BR->getFalseDest())));
      } else {
        Next = M.getInt32(Id.at(BR->getSuccessor(0)));
      }
      TB.createStore(Next, State);
      BB->insertAt(BB->size(), new BranchInst(Dispatch));
      BB->erase(BR);
      return;
    }
    case Opcode::Switch: {
      auto *SW = cast<SwitchInst>(T);
      // Chain of selects mapping the condition to state ids.
      TB.setInsertBefore(T);
      Value *Cond = SW->getCondition();
      Value *NextId = M.getInt32(Id.at(SW->getDefaultDest()));
      for (unsigned C = 0, E = SW->getNumCases(); C != E; ++C) {
        Value *IsCase = TB.createCmp(
            CmpPred::EQ, Cond,
            M.getConstantInt(Cond->getType(), SW->getCaseValue(C)));
        NextId = TB.createSelect(
            IsCase, M.getInt32(Id.at(SW->getCaseDest(C))), NextId);
      }
      TB.createStore(NextId, State);
      BB->insertAt(BB->size(), new BranchInst(Dispatch));
      BB->erase(SW);
      return;
    }
    default:
      return; // Ret/Unreachable stay as they are.
    }
  };

  // Entry terminator first (targets get ids), then every body block.
  RewireTerminator(Entry);
  for (BasicBlock *BB : Body)
    RewireTerminator(BB);

  // Dispatcher: load the state and switch over the body blocks.
  B.setInsertPoint(Dispatch);
  Value *S = B.createLoad(State, "state");
  SwitchInst *SW = B.createSwitch(S, Body.front());
  for (BasicBlock *BB : Body)
    SW->addCase(Id.at(BB), BB);
  return true;
}

} // namespace

unsigned khaos::runFlattening(Module &M, const OLLVMOptions &Opts) {
  RNG Rng(Opts.Seed);
  unsigned Count = 0;
  std::vector<Function *> Funcs;
  for (const auto &F : M.functions())
    if (!F->isDeclaration() && !F->isNoObfuscate())
      Funcs.push_back(F.get());
  for (Function *F : Funcs) {
    if (!Rng.nextBool(Opts.Ratio))
      continue;
    if (flattenFunction(M, *F, Rng))
      ++Count;
  }
  return Count;
}
