//===- obfuscation/MBASubstitution.cpp - Mixed boolean-arithmetic ---------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mixed boolean-arithmetic substitution, after the llvm-msvc-xd plugin's
/// MBA pass. Unlike Substitution.cpp's single-level strategies, every
/// helper operation an identity introduces is itself rewritten again up to
/// a per-site depth of 2-3, so one `a + b` becomes a chain like
/// `((a|b)+(a&b))` -> `(((a&b)+(a^b)) + ((~a|b)-~a))` -> ... All
/// identities hold modulo 2^n, so they are wrapping-safe on every integer
/// width:
///   a + b = (a|b) + (a&b) = (a^b) + 2(a&b) = (a - ~b) - 1
///   a - b = (a^b) - 2(~a&b) = (a + ~b) + 1
///   a ^ b = (a|b) - (a&b) = (a + b) - 2(a&b)
///   a & b = (~a|b) - ~a = (a|b) - (a^b)
///   a | b = (a&b) + (a^b) = (a + b) - (a&b)
///
//===----------------------------------------------------------------------===//

#include "obfuscation/OLLVM.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/RNG.h"

using namespace khaos;

namespace {

/// Emits \p K applied to (L, R), expanding through a random MBA identity
/// when \p Depth > 0; constituent ops recurse with Depth - 1.
Value *emitMBA(Module &M, IRBuilder &Bld, BinOp K, Value *L, Value *R,
               Type *Ty, RNG &Rng, unsigned Depth) {
  if (Depth == 0)
    return Bld.createBinOp(K, L, R);
  Value *One = M.getConstantInt(Ty, 1);
  Value *Two = M.getConstantInt(Ty, 2);
  Value *AllOnes = M.getConstantInt(Ty, -1);
  auto Rec = [&](BinOp K2, Value *A, Value *B) {
    return emitMBA(M, Bld, K2, A, B, Ty, Rng, Depth - 1);
  };
  auto Not = [&](Value *V) { return Rec(BinOp::Xor, V, AllOnes); };

  switch (K) {
  case BinOp::Add:
    switch (Rng.nextBelow(3)) {
    case 0: // (a|b) + (a&b)
      return Rec(BinOp::Add, Rec(BinOp::Or, L, R), Rec(BinOp::And, L, R));
    case 1: { // (a^b) + 2*(a&b)
      Value *X = Rec(BinOp::Xor, L, R);
      Value *A2 = Bld.createBinOp(BinOp::Mul, Two, Rec(BinOp::And, L, R));
      return Rec(BinOp::Add, X, A2);
    }
    default: // (a - ~b) - 1
      return Rec(BinOp::Sub, Rec(BinOp::Sub, L, Not(R)), One);
    }
  case BinOp::Sub:
    if (Rng.nextBool()) { // (a^b) - 2*(~a&b)
      Value *X = Rec(BinOp::Xor, L, R);
      Value *A2 = Bld.createBinOp(BinOp::Mul, Two, Rec(BinOp::And, Not(L), R));
      return Rec(BinOp::Sub, X, A2);
    }
    // (a + ~b) + 1
    return Rec(BinOp::Add, Rec(BinOp::Add, L, Not(R)), One);
  case BinOp::Xor:
    if (Rng.nextBool()) // (a|b) - (a&b)
      return Rec(BinOp::Sub, Rec(BinOp::Or, L, R), Rec(BinOp::And, L, R));
    { // (a + b) - 2*(a&b)
      Value *S = Rec(BinOp::Add, L, R);
      Value *A2 = Bld.createBinOp(BinOp::Mul, Two, Rec(BinOp::And, L, R));
      return Rec(BinOp::Sub, S, A2);
    }
  case BinOp::And:
    if (Rng.nextBool()) { // (~a|b) - ~a
      Value *NotA = Not(L);
      return Rec(BinOp::Sub, Rec(BinOp::Or, NotA, R), NotA);
    }
    // (a|b) - (a^b)
    return Rec(BinOp::Sub, Rec(BinOp::Or, L, R), Rec(BinOp::Xor, L, R));
  case BinOp::Or:
    if (Rng.nextBool()) // (a&b) + (a^b)
      return Rec(BinOp::Add, Rec(BinOp::And, L, R), Rec(BinOp::Xor, L, R));
    // (a + b) - (a&b)
    return Rec(BinOp::Sub, Rec(BinOp::Add, L, R), Rec(BinOp::And, L, R));
  default:
    return Bld.createBinOp(K, L, R);
  }
}

bool isMBAOp(BinOp K) {
  switch (K) {
  case BinOp::Add:
  case BinOp::Sub:
  case BinOp::Xor:
  case BinOp::And:
  case BinOp::Or:
    return true;
  default:
    return false;
  }
}

uint64_t moduleInstCount(const Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.functions())
    N += F->instructionCount();
  return N;
}

} // namespace

unsigned khaos::runMBASubstitution(Module &M, const OLLVMOptions &Opts,
                                   PassReport *Report) {
  RNG Rng(Opts.Seed);
  unsigned Count = 0;
  uint64_t Before = moduleInstCount(M);
  for (const auto &F : M.functions()) {
    if (F->isDeclaration() || F->isNoObfuscate())
      continue;
    for (const auto &BB : F->blocks()) {
      // Snapshot: the rewrite inserts instructions.
      std::vector<BinaryInst *> Sites;
      for (const auto &I : BB->insts()) {
        auto *B = dyn_cast<BinaryInst>(I.get());
        if (!B || B->isFloatOp() || B->isDivRem() || !isMBAOp(B->getBinOp()))
          continue;
        if (B->getType()->getKind() == TypeKind::Int1)
          continue;
        Sites.push_back(B);
      }
      for (BinaryInst *B : Sites) {
        if (!Rng.nextBool(Opts.Ratio))
          continue;
        unsigned Depth = 2 + static_cast<unsigned>(Rng.nextBelow(2));
        IRBuilder Bld(M);
        Bld.setInsertBefore(B);
        Value *NewV = emitMBA(M, Bld, B->getBinOp(), B->getLHS(), B->getRHS(),
                              B->getType(), Rng, Depth);
        if (B->hasUses())
          B->replaceAllUsesWith(NewV);
        B->eraseFromParent();
        ++Count;
      }
    }
  }
  if (Report) {
    Report->SitesRewritten += Count;
    Report->BytesGrown += (moduleInstCount(M) - Before) * 4;
  }
  return Count;
}
