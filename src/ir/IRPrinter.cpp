//===- ir/IRPrinter.cpp - Textual IR dump --------------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Module.h"
#include "support/StringUtils.h"

#include <map>

using namespace khaos;

namespace {

/// Assigns stable local names (%0, %1, ...) to unnamed values per function.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) { number(); }

  std::string print();

private:
  void number();
  std::string valueName(const Value *V);
  std::string blockName(const BasicBlock *BB);
  std::string instLine(const Instruction *I);

  const Function &F;
  std::map<const Value *, unsigned> LocalNumbers;
  std::map<const BasicBlock *, unsigned> BlockNumbers;
};

} // namespace

void FunctionPrinter::number() {
  unsigned N = 0;
  for (const auto &A : F.args())
    LocalNumbers[A.get()] = N++;
  unsigned B = 0;
  for (const auto &BB : F.blocks()) {
    BlockNumbers[BB.get()] = B++;
    for (const auto &I : BB->insts())
      if (I->getType() && !I->getType()->isVoid())
        LocalNumbers[I.get()] = N++;
  }
}

std::string FunctionPrinter::valueName(const Value *V) {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return std::to_string(CI->getValue());
  if (const auto *CF = dyn_cast<ConstantFP>(V))
    return formatStr("%g", CF->getValue());
  if (isa<ConstantNull>(V))
    return "null";
  if (const auto *CT = dyn_cast<ConstantTaggedFunc>(V))
    return formatStr("tagged(@%s, %u)", CT->getFunction()->getName().c_str(),
                     CT->getTag());
  if (isa<Function>(V) || isa<GlobalVariable>(V))
    return "@" + V->getName();
  auto It = LocalNumbers.find(V);
  std::string Num =
      It == LocalNumbers.end() ? "?" : std::to_string(It->second);
  if (!V->getName().empty())
    return "%" + V->getName() + "." + Num;
  return "%" + Num;
}

std::string FunctionPrinter::blockName(const BasicBlock *BB) {
  auto It = BlockNumbers.find(BB);
  std::string Num =
      It == BlockNumbers.end() ? "?" : std::to_string(It->second);
  if (!BB->getName().empty())
    return BB->getName() + "." + Num;
  return "bb." + Num;
}

std::string FunctionPrinter::instLine(const Instruction *I) {
  std::string Res;
  if (I->getType() && !I->getType()->isVoid())
    Res = valueName(I) + " = ";

  switch (I->getOpcode()) {
  case Opcode::Alloca:
    Res += "alloca " +
           cast<AllocaInst>(I)->getAllocatedType()->getName();
    break;
  case Opcode::Load:
    Res += "load " + I->getType()->getName() + ", " +
           valueName(I->getOperand(0));
    break;
  case Opcode::Store:
    Res += "store " + valueName(I->getOperand(0)) + ", " +
           valueName(I->getOperand(1));
    break;
  case Opcode::BinOp: {
    const auto *B = cast<BinaryInst>(I);
    Res += std::string(BinaryInst::getOpName(B->getBinOp())) + " " +
           I->getType()->getName() + " " + valueName(B->getLHS()) + ", " +
           valueName(B->getRHS());
    break;
  }
  case Opcode::Cmp: {
    const auto *C = cast<CmpInst>(I);
    Res += std::string("cmp ") + CmpInst::getPredName(C->getPredicate()) +
           " " + C->getLHS()->getType()->getName() + " " +
           valueName(C->getLHS()) + ", " + valueName(C->getRHS());
    break;
  }
  case Opcode::Cast: {
    const auto *C = cast<CastInst>(I);
    Res += std::string(CastInst::getCastName(C->getCastKind())) + " " +
           valueName(C->getSource()) + " to " + I->getType()->getName();
    break;
  }
  case Opcode::GEP:
    Res += "gep " + valueName(I->getOperand(0)) + ", " +
           valueName(I->getOperand(1));
    break;
  case Opcode::Select:
    Res += "select " + valueName(I->getOperand(0)) + ", " +
           valueName(I->getOperand(1)) + ", " + valueName(I->getOperand(2));
    break;
  case Opcode::Call:
  case Opcode::Invoke: {
    const auto *C = cast<CallInst>(I);
    Res += I->getOpcode() == Opcode::Call ? "call " : "invoke ";
    Res += valueName(C->getCallee()) + "(";
    std::vector<std::string> Args;
    for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A)
      Args.push_back(valueName(C->getArg(A)));
    Res += join(Args, ", ") + ")";
    if (const auto *IV = dyn_cast<InvokeInst>(I))
      Res += " to " + blockName(IV->getNormalDest()) + " unwind " +
             blockName(IV->getUnwindDest());
    break;
  }
  case Opcode::LandingPad:
    Res += "landingpad";
    break;
  case Opcode::Throw:
    Res += "throw " + valueName(I->getOperand(0));
    break;
  case Opcode::Br: {
    const auto *B = cast<BranchInst>(I);
    if (B->isConditional())
      Res += "br " + valueName(B->getCondition()) + ", " +
             blockName(B->getTrueDest()) + ", " +
             blockName(B->getFalseDest());
    else
      Res += "br " + blockName(B->getSuccessor(0));
    break;
  }
  case Opcode::Switch: {
    const auto *S = cast<SwitchInst>(I);
    Res += "switch " + valueName(S->getCondition()) + ", default " +
           blockName(S->getDefaultDest()) + " [";
    std::vector<std::string> Cases;
    for (unsigned C = 0, E = S->getNumCases(); C != E; ++C)
      Cases.push_back(std::to_string(S->getCaseValue(C)) + " -> " +
                      blockName(S->getCaseDest(C)));
    Res += join(Cases, ", ") + "]";
    break;
  }
  case Opcode::Ret: {
    const auto *R = cast<ReturnInst>(I);
    Res += R->hasReturnValue() ? "ret " + valueName(R->getReturnValue())
                               : "ret void";
    break;
  }
  case Opcode::Unreachable:
    Res += "unreachable";
    break;
  }
  return Res;
}

std::string FunctionPrinter::print() {
  std::string Out;
  FunctionType *FTy = F.getFunctionType();
  std::vector<std::string> Params;
  for (const auto &A : F.args())
    Params.push_back(A->getType()->getName() + " " + valueName(A.get()));
  if (FTy->isVarArg())
    Params.push_back("...");
  Out += formatStr("define %s @%s(%s)%s {\n",
                   FTy->getReturnType()->getName().c_str(),
                   F.getName().c_str(), join(Params, ", ").c_str(),
                   F.isExported() ? " exported" : "");
  for (const auto &BB : F.blocks()) {
    Out += blockName(BB.get()) + ":\n";
    for (const auto &I : BB->insts())
      Out += "  " + instLine(I.get()) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string khaos::printFunction(const Function &F) {
  if (F.isDeclaration())
    return formatStr("declare %s @%s\n",
                     F.getFunctionType()->getName().c_str(),
                     F.getName().c_str());
  return FunctionPrinter(F).print();
}

std::string khaos::printModule(const Module &M) {
  std::string Out = "; module '" + M.getName() + "'\n";
  for (const auto &G : M.globals()) {
    Out += formatStr("@%s = global %s", G->getName().c_str(),
                     G->getValueType()->getName().c_str());
    if (G->isZeroInitialized()) {
      Out += " zeroinitializer\n";
    } else {
      std::vector<std::string> Elems;
      for (const Constant *C : G->getInitializer()) {
        if (const auto *CI = dyn_cast<ConstantInt>(C))
          Elems.push_back(std::to_string(CI->getValue()));
        else if (const auto *CF = dyn_cast<ConstantFP>(C))
          Elems.push_back(formatStr("%g", CF->getValue()));
        else if (const auto *CT = dyn_cast<ConstantTaggedFunc>(C))
          Elems.push_back(
              formatStr("tagged(@%s, %u)",
                        CT->getFunction()->getName().c_str(), CT->getTag()));
        else
          Elems.push_back("null");
      }
      Out += " [" + join(Elems, ", ") + "]\n";
    }
  }
  Out += "\n";
  for (const auto &F : M.functions())
    Out += printFunction(*F) + "\n";
  return Out;
}
