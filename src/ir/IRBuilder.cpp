//===- ir/IRBuilder.cpp - Instruction creation helper -------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace khaos;

Value *IRBuilder::createConvert(Value *V, Type *DestTy) {
  Type *SrcTy = V->getType();
  if (SrcTy == DestTy)
    return V;

  if (SrcTy->isInteger() && DestTy->isInteger()) {
    unsigned SrcBits = SrcTy->getIntegerBitWidth();
    unsigned DstBits = DestTy->getIntegerBitWidth();
    if (SrcBits > DstBits)
      return createCast(CastKind::Trunc, V, DestTy);
    // i1 widens unsigned; everything else widens signed (C's default
    // integer promotion for our signed-only integer model).
    return createCast(SrcBits == 1 ? CastKind::ZExt : CastKind::SExt, V,
                      DestTy);
  }
  if (SrcTy->isInteger() && DestTy->isFloatingPoint())
    return createCast(CastKind::SIToFP, V, DestTy);
  if (SrcTy->isFloatingPoint() && DestTy->isInteger())
    return createCast(CastKind::FPToSI, V, DestTy);
  if (SrcTy->isFloatingPoint() && DestTy->isFloatingPoint())
    return createCast(SrcTy->getStoreSize() < DestTy->getStoreSize()
                          ? CastKind::FPExt
                          : CastKind::FPTrunc,
                      V, DestTy);
  if (SrcTy->isPointer() && DestTy->isPointer())
    return createCast(CastKind::Bitcast, V, DestTy);
  if (SrcTy->isPointer() && DestTy->isInteger()) {
    Value *AsI64 = createCast(CastKind::PtrToInt, V, Ctx.getInt64Type());
    return createConvert(AsI64, DestTy);
  }
  if (SrcTy->isInteger() && DestTy->isPointer()) {
    Value *AsI64 = createConvert(V, Ctx.getInt64Type());
    return createCast(CastKind::IntToPtr, AsI64, DestTy);
  }
  assert(false && "unsupported conversion");
  return V;
}

Value *IRBuilder::createIsNonZero(Value *V) {
  Type *Ty = V->getType();
  if (Ty->getKind() == TypeKind::Int1)
    return V;
  if (Ty->isInteger())
    return createCmp(CmpPred::NE, V, M.getConstantInt(Ty, 0));
  if (Ty->isFloatingPoint())
    return createCmp(CmpPred::NE, V, M.getConstantFP(Ty, 0.0));
  if (auto *PT = dyn_cast<PointerType>(Ty))
    return createCmp(CmpPred::NE, V,
                     M.getNullPtr(const_cast<PointerType *>(PT)));
  assert(false && "cannot test this type for zero");
  return V;
}
