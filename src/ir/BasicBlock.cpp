//===- ir/BasicBlock.cpp - KIR basic block ----------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>

using namespace khaos;

BasicBlock::~BasicBlock() {
  // Break operand webs inside the block before destruction so that
  // destruction order between instructions does not matter.
  for (auto &I : Insts)
    I->dropAllReferences();
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

Instruction *BasicBlock::push(Instruction *I) {
  assert(!getTerminator() && "appending past the terminator");
  I->setParent(this);
  Insts.emplace_back(I);
  return I;
}

Instruction *BasicBlock::insertBefore(Instruction *Pos, Instruction *I) {
  return insertAt(indexOf(Pos), I);
}

Instruction *BasicBlock::insertAt(size_t Idx, Instruction *I) {
  assert(Idx <= Insts.size() && "insert index out of range");
  I->setParent(this);
  Insts.emplace(Insts.begin() + Idx, I);
  return I;
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Idx = 0, E = Insts.size(); Idx != E; ++Idx)
    if (Insts[Idx].get() == I)
      return Idx;
  assert(false && "instruction not in this block");
  return ~size_t(0);
}

std::unique_ptr<Instruction> BasicBlock::take(Instruction *I) {
  size_t Idx = indexOf(I);
  std::unique_ptr<Instruction> Owned = std::move(Insts[Idx]);
  Insts.erase(Insts.begin() + Idx);
  Owned->setParent(nullptr);
  return Owned;
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUses() && "erasing instruction that still has users");
  take(I); // Ownership drops here, destroying I.
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  if (Instruction *T = getTerminator())
    return T->successors();
  return {};
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  assert(Parent && "block has no parent function");
  for (const auto &BB : Parent->blocks()) {
    Instruction *T = BB->getTerminator();
    if (!T)
      continue;
    for (BasicBlock *S : T->successors())
      if (S == this) {
        Preds.push_back(BB.get());
        break; // Count each predecessor once.
      }
  }
  return Preds;
}

BasicBlock *BasicBlock::splitBefore(Instruction *Pos,
                                    const std::string &NewName) {
  assert(Parent && "cannot split a detached block");
  BasicBlock *Tail = Parent->addBlockAfter(this, NewName);
  size_t SplitIdx = indexOf(Pos);
  for (size_t Idx = SplitIdx, E = Insts.size(); Idx != E; ++Idx) {
    Insts[Idx]->setParent(Tail);
    Tail->Insts.emplace_back(std::move(Insts[Idx]));
  }
  Insts.resize(SplitIdx);
  push(new BranchInst(Tail));
  return Tail;
}
