//===- ir/Value.h - Values, constants and globals ---------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the root of everything an instruction can reference: constants,
/// globals, function arguments, functions themselves and instruction
/// results. Values track their users (instructions) so passes can run
/// replaceAllUsesWith and def-use queries — the backbone of fission's
/// input/output detection and fusion's call-site rewriting.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_VALUE_H
#define KHAOS_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

class Instruction;
class Function;

/// Discriminator for the Value hierarchy.
enum class ValueKind : uint8_t {
  ConstantInt,
  ConstantFP,
  ConstantNull,
  ConstantTaggedFunc,
  GlobalVariable,
  Function,
  Argument,
  Instruction,
};

/// Root of the value hierarchy.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getValueKind() const { return VKind; }
  Type *getType() const { return Ty; }
  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Instructions currently using this value as an operand. An instruction
  /// appears once per operand slot referencing this value.
  const std::vector<Instruction *> &users() const { return Users; }
  bool hasUses() const { return !Users.empty(); }
  unsigned getNumUses() const { return Users.size(); }

  /// Rewrites every operand slot referencing this value to \p New.
  void replaceAllUsesWith(Value *New);

  bool isConstant() const {
    return VKind <= ValueKind::ConstantTaggedFunc;
  }

protected:
  Value(ValueKind VKind, Type *Ty, std::string Name = "")
      : Ty(Ty), VKind(VKind), Name(std::move(Name)) {}
  Type *Ty;

private:
  friend class Instruction;
  void addUser(Instruction *I) { Users.push_back(I); }
  void removeUser(Instruction *I);

  ValueKind VKind;
  std::string Name;
  std::vector<Instruction *> Users;
};

/// Common base for interned constants.
class Constant : public Value {
public:
  static bool classof(const Value *V) { return V->isConstant(); }

protected:
  using Value::Value;
};

/// An integer constant of any integer type.
class ConstantInt : public Constant {
public:
  int64_t getValue() const { return Val; }
  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantInt;
  }

private:
  friend class Module;
  ConstantInt(Type *Ty, int64_t Val)
      : Constant(ValueKind::ConstantInt, Ty), Val(Val) {}
  int64_t Val;
};

/// A floating-point constant (f32 values are stored widened to double).
class ConstantFP : public Constant {
public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantFP;
  }

private:
  friend class Module;
  ConstantFP(Type *Ty, double Val)
      : Constant(ValueKind::ConstantFP, Ty), Val(Val) {}
  double Val;
};

/// The null pointer of a given pointer type.
class ConstantNull : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantNull;
  }

private:
  friend class Module;
  explicit ConstantNull(Type *Ty) : Constant(ValueKind::ConstantNull, Ty) {}
};

/// The address of \p F with fusion tag bits OR-ed into the low nibble.
///
/// Produced when fusion rewrites the address-taking of an aggregated
/// oriFunc. In a real toolchain this becomes a relocation whose addend
/// carries the tag (paper appendix A.1); our BinaryImage does the same.
class ConstantTaggedFunc : public Constant {
public:
  Function *getFunction() const { return Fn; }
  unsigned getTag() const { return Tag; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantTaggedFunc;
  }

private:
  friend class Module;
  ConstantTaggedFunc(Type *Ty, Function *Fn, unsigned Tag)
      : Constant(ValueKind::ConstantTaggedFunc, Ty), Fn(Fn), Tag(Tag) {}
  Function *Fn;
  unsigned Tag;
};

/// A module-level variable. Its Value type is pointer-to-ValueType; the
/// initializer is a flat list of scalar constants (empty = zeroinitializer).
class GlobalVariable : public Value {
public:
  Type *getValueType() const { return ValueType; }
  const std::vector<Constant *> &getInitializer() const { return Init; }
  void setInitializer(std::vector<Constant *> I) { Init = std::move(I); }
  bool isZeroInitialized() const { return Init.empty(); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::GlobalVariable;
  }

private:
  friend class Module;
  GlobalVariable(Type *PtrTy, Type *ValueType, std::string Name)
      : Value(ValueKind::GlobalVariable, PtrTy, std::move(Name)),
        ValueType(ValueType) {}
  Type *ValueType;
  std::vector<Constant *> Init;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Function *getParent() const { return Parent; }
  unsigned getArgNo() const { return ArgNo; }
  void setArgNo(unsigned N) { ArgNo = N; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Argument;
  }

private:
  friend class Function;
  Argument(Type *Ty, std::string Name, Function *Parent, unsigned ArgNo)
      : Value(ValueKind::Argument, Ty, std::move(Name)), Parent(Parent),
        ArgNo(ArgNo) {}
  Function *Parent;
  unsigned ArgNo;
};

} // namespace khaos

#endif // KHAOS_IR_VALUE_H
