//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and dominance verification run after every front-end build
/// and after every transformation/obfuscation pass in tests. Obfuscation is
/// only trusted when the verifier stays green.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_VERIFIER_H
#define KHAOS_IR_VERIFIER_H

#include <string>
#include <vector>

namespace khaos {

class Module;
class Function;

/// Verifies \p F; appends human-readable problems to \p Errors. Returns
/// true when no problems were found.
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Verifies all definitions in \p M. Returns true when clean.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

/// Convenience wrapper; returns the problems (empty when clean).
std::vector<std::string> verifyModule(const Module &M);

} // namespace khaos

#endif // KHAOS_IR_VERIFIER_H
