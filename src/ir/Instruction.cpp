//===- ir/Instruction.cpp - KIR instruction set -----------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

#include <cassert>

using namespace khaos;

Instruction::~Instruction() { dropAllReferences(); }

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "operand must be non-null");
  if (Operands[I])
    Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::addOperand(Value *V) {
  assert(V && "operand must be non-null");
  Operands.push_back(V);
  V->addUser(this);
}

void Instruction::dropAllReferences() {
  for (Value *Op : Operands)
    if (Op)
      Op->removeUser(this);
  Operands.clear();
}

void Instruction::replaceSuccessor(BasicBlock *From, BasicBlock *To) {
  for (auto &S : Successors)
    if (S == From)
      S = To;
}

bool Instruction::mayHaveSideEffects() const {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::Invoke:
  case Opcode::Throw:
    return true;
  case Opcode::BinOp:
    // Division can trap on zero; preserve it.
    return static_cast<const BinaryInst *>(this)->isDivRem();
  default:
    return isTerminator();
  }
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction has no parent");
  assert(!hasUses() && "erasing instruction that still has users");
  Parent->erase(this);
}

static std::vector<Value *> cloneArgs(const Instruction *I, unsigned Skip) {
  std::vector<Value *> Args;
  for (unsigned Idx = Skip, E = I->getNumOperands(); Idx != E; ++Idx)
    Args.push_back(I->getOperand(Idx));
  return Args;
}

Instruction *Instruction::clone() const {
  switch (Op) {
  case Opcode::Alloca:
    return new AllocaInst(
        static_cast<const AllocaInst *>(this)->getAllocatedType(),
        getName());
  case Opcode::Load:
    return new LoadInst(getOperand(0), getName());
  case Opcode::Store:
    return new StoreInst(getOperand(0), getOperand(1));
  case Opcode::BinOp:
    return new BinaryInst(static_cast<const BinaryInst *>(this)->getBinOp(),
                          getOperand(0), getOperand(1), getName());
  case Opcode::Cmp:
    return new CmpInst(static_cast<const CmpInst *>(this)->getPredicate(),
                       getOperand(0), getOperand(1), getName());
  case Opcode::Cast:
    return new CastInst(static_cast<const CastInst *>(this)->getCastKind(),
                        getOperand(0), getType(), getName());
  case Opcode::GEP:
    return new GEPInst(getOperand(0), getOperand(1), getName());
  case Opcode::Select:
    return new SelectInst(getOperand(0), getOperand(1), getOperand(2),
                          getName());
  case Opcode::Call:
    return new CallInst(getOperand(0), cloneArgs(this, 1), getName());
  case Opcode::Invoke: {
    const auto *IV = static_cast<const InvokeInst *>(this);
    return new InvokeInst(getOperand(0), cloneArgs(this, 1),
                          IV->getNormalDest(), IV->getUnwindDest(),
                          getName());
  }
  case Opcode::LandingPad:
    return new LandingPadInst(getType(), getName());
  case Opcode::Throw:
    return new ThrowInst(getOperand(0));
  case Opcode::Br: {
    const auto *BR = static_cast<const BranchInst *>(this);
    if (BR->isConditional())
      return new BranchInst(BR->getCondition(), BR->getTrueDest(),
                            BR->getFalseDest());
    return new BranchInst(BR->getSuccessor(0));
  }
  case Opcode::Switch: {
    const auto *SW = static_cast<const SwitchInst *>(this);
    auto *NewSW = new SwitchInst(SW->getCondition(), SW->getDefaultDest());
    for (unsigned I = 0, E = SW->getNumCases(); I != E; ++I)
      NewSW->addCase(SW->getCaseValue(I), SW->getCaseDest(I));
    return NewSW;
  }
  case Opcode::Ret: {
    // A ReturnInst's own type is the void type, so reuse it.
    const auto *RI = static_cast<const ReturnInst *>(this);
    return new ReturnInst(RI->hasReturnValue() ? RI->getReturnValue()
                                               : nullptr,
                          getType());
  }
  case Opcode::Unreachable:
    return new UnreachableInst(getType());
  }
  assert(false && "unknown opcode in clone()");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Subclass constructors and classof helpers.
//===----------------------------------------------------------------------===//

static bool hasOpcode(const Value *V, Opcode Op) {
  const auto *I = dyn_cast<Instruction>(V);
  return I && I->getOpcode() == Op;
}

bool AllocaInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Alloca);
}

LoadInst::LoadInst(Value *Ptr, std::string Name)
    : Instruction(Opcode::Load,
                  cast<PointerType>(Ptr->getType())->getPointee(),
                  std::move(Name)) {
  assert(getType()->isFirstClass() && "load of non-first-class type");
  addOperand(Ptr);
}

bool LoadInst::classof(const Value *V) { return hasOpcode(V, Opcode::Load); }

StoreInst::StoreInst(Value *Val, Value *Ptr)
    : Instruction(Opcode::Store,
                  Val->getType()->getContext().getVoidType()) {
  assert(cast<PointerType>(Ptr->getType())->getPointee() == Val->getType() &&
         "store type mismatch");
  addOperand(Val);
  addOperand(Ptr);
}

bool StoreInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Store);
}

BinaryInst::BinaryInst(BinOp Kind, Value *L, Value *R, std::string Name)
    : Instruction(Opcode::BinOp, L->getType(), std::move(Name)), Kind(Kind) {
  assert(L->getType() == R->getType() && "binop operand type mismatch");
  addOperand(L);
  addOperand(R);
}

const char *BinaryInst::getOpName(BinOp K) {
  switch (K) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::SDiv:
    return "sdiv";
  case BinOp::SRem:
    return "srem";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Shl:
    return "shl";
  case BinOp::AShr:
    return "ashr";
  case BinOp::LShr:
    return "lshr";
  case BinOp::FAdd:
    return "fadd";
  case BinOp::FSub:
    return "fsub";
  case BinOp::FMul:
    return "fmul";
  case BinOp::FDiv:
    return "fdiv";
  }
  return "<binop>";
}

bool BinaryInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::BinOp);
}

CmpInst::CmpInst(CmpPred Pred, Value *L, Value *R, std::string Name)
    : Instruction(Opcode::Cmp, L->getType()->getContext().getInt1Type(),
                  std::move(Name)),
      Pred(Pred) {
  assert(L->getType() == R->getType() && "cmp operand type mismatch");
  addOperand(L);
  addOperand(R);
}

const char *CmpInst::getPredName(CmpPred P) {
  switch (P) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::SLT:
    return "slt";
  case CmpPred::SLE:
    return "sle";
  case CmpPred::SGT:
    return "sgt";
  case CmpPred::SGE:
    return "sge";
  }
  return "<pred>";
}

bool CmpInst::classof(const Value *V) { return hasOpcode(V, Opcode::Cmp); }

CastInst::CastInst(CastKind Kind, Value *V, Type *DestTy, std::string Name)
    : Instruction(Opcode::Cast, DestTy, std::move(Name)), Kind(Kind) {
  addOperand(V);
}

const char *CastInst::getCastName(CastKind K) {
  switch (K) {
  case CastKind::Trunc:
    return "trunc";
  case CastKind::SExt:
    return "sext";
  case CastKind::ZExt:
    return "zext";
  case CastKind::FPToSI:
    return "fptosi";
  case CastKind::SIToFP:
    return "sitofp";
  case CastKind::FPTrunc:
    return "fptrunc";
  case CastKind::FPExt:
    return "fpext";
  case CastKind::Bitcast:
    return "bitcast";
  case CastKind::PtrToInt:
    return "ptrtoint";
  case CastKind::IntToPtr:
    return "inttoptr";
  }
  return "<cast>";
}

bool CastInst::classof(const Value *V) { return hasOpcode(V, Opcode::Cast); }

static Type *gepResultType(Value *Ptr) {
  Type *Pointee = cast<PointerType>(Ptr->getType())->getPointee();
  if (auto *AT = dyn_cast<ArrayType>(Pointee))
    return AT->getElementType()->getPointerTo();
  return Ptr->getType();
}

GEPInst::GEPInst(Value *Ptr, Value *Index, std::string Name)
    : Instruction(Opcode::GEP, gepResultType(Ptr), std::move(Name)) {
  assert(Index->getType()->isInteger() && "GEP index must be an integer");
  addOperand(Ptr);
  addOperand(Index);
}

uint64_t GEPInst::getElementSize() const {
  return cast<PointerType>(getType())->getPointee()->getStoreSize();
}

bool GEPInst::classof(const Value *V) { return hasOpcode(V, Opcode::GEP); }

SelectInst::SelectInst(Value *Cond, Value *TrueV, Value *FalseV,
                       std::string Name)
    : Instruction(Opcode::Select, TrueV->getType(), std::move(Name)) {
  assert(TrueV->getType() == FalseV->getType() &&
         "select arm type mismatch");
  addOperand(Cond);
  addOperand(TrueV);
  addOperand(FalseV);
}

bool SelectInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Select);
}

Type *CallInst::resultTypeForCallee(Value *Callee) {
  Type *T = Callee->getType();
  // Callee is a pointer to function (possibly through a data pointer).
  auto *PT = cast<PointerType>(T);
  auto *FT = cast<FunctionType>(PT->getPointee());
  Type *Ret = FT->getReturnType();
  return Ret;
}

CallInst::CallInst(Value *Callee, std::vector<Value *> Args,
                   std::string Name)
    : CallInst(Opcode::Call, Callee, std::move(Args), std::move(Name)) {}

CallInst::CallInst(Opcode Op, Value *Callee, std::vector<Value *> Args,
                   std::string Name)
    : Instruction(Op, resultTypeForCallee(Callee), std::move(Name)) {
  addOperand(Callee);
  for (Value *A : Args)
    addOperand(A);
}

Function *CallInst::getCalledFunction() const {
  return dyn_cast<Function>(getCallee());
}

FunctionType *CallInst::getCalleeType() const {
  return cast<FunctionType>(
      cast<PointerType>(getCallee()->getType())->getPointee());
}

bool CallInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Call) || hasOpcode(V, Opcode::Invoke);
}

InvokeInst::InvokeInst(Value *Callee, std::vector<Value *> Args,
                       BasicBlock *NormalDest, BasicBlock *UnwindDest,
                       std::string Name)
    : CallInst(Opcode::Invoke, Callee, std::move(Args), std::move(Name)) {
  addSuccessor(NormalDest);
  addSuccessor(UnwindDest);
}

bool InvokeInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Invoke);
}

LandingPadInst::LandingPadInst(Type *I64Ty, std::string Name)
    : Instruction(Opcode::LandingPad, I64Ty, std::move(Name)) {
  assert(I64Ty->getKind() == TypeKind::Int64 && "landingpad must be i64");
}

bool LandingPadInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::LandingPad);
}

ThrowInst::ThrowInst(Value *Payload)
    : Instruction(Opcode::Throw,
                  Payload->getType()->getContext().getVoidType()) {
  addOperand(Payload);
}

bool ThrowInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Throw);
}

// Note: an unconditional branch has no handle on a Context, so its Value
// type is null. Nothing queries a terminator's type.
BranchInst::BranchInst(BasicBlock *Dest) : Instruction(Opcode::Br, nullptr) {
  assert(Dest && "branch to null block");
  addSuccessor(Dest);
}

BranchInst::BranchInst(Value *Cond, BasicBlock *TrueDest,
                       BasicBlock *FalseDest)
    : Instruction(Opcode::Br, Cond->getType()->getContext().getVoidType()) {
  assert(Cond->getType()->getKind() == TypeKind::Int1 &&
         "branch condition must be i1");
  addOperand(Cond);
  addSuccessor(TrueDest);
  addSuccessor(FalseDest);
}

bool BranchInst::classof(const Value *V) { return hasOpcode(V, Opcode::Br); }

SwitchInst::SwitchInst(Value *Cond, BasicBlock *DefaultDest)
    : Instruction(Opcode::Switch,
                  Cond->getType()->getContext().getVoidType()) {
  assert(Cond->getType()->isInteger() &&
         "switch condition must be an integer");
  addOperand(Cond);
  addSuccessor(DefaultDest);
}

void SwitchInst::addCase(int64_t Val, BasicBlock *Dest) {
  CaseValues.push_back(Val);
  addSuccessor(Dest);
}

bool SwitchInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Switch);
}

ReturnInst::ReturnInst(Value *RetVal, Type *VoidTy)
    : Instruction(Opcode::Ret, VoidTy) {
  if (RetVal)
    addOperand(RetVal);
}

bool ReturnInst::classof(const Value *V) { return hasOpcode(V, Opcode::Ret); }

UnreachableInst::UnreachableInst(Type *VoidTy)
    : Instruction(Opcode::Unreachable, VoidTy) {}

bool UnreachableInst::classof(const Value *V) {
  return hasOpcode(V, Opcode::Unreachable);
}
