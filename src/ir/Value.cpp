//===- ir/Value.cpp - Values, constants and globals ------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include "ir/Instruction.h"

#include <algorithm>
#include <cassert>

using namespace khaos;

Value::~Value() = default;

void Value::removeUser(Instruction *I) {
  auto It = std::find(Users.begin(), Users.end(), I);
  assert(It != Users.end() && "removing non-existent user");
  Users.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  // Users mutates as we rewrite; iterate over a snapshot.
  std::vector<Instruction *> Snapshot = Users;
  for (Instruction *User : Snapshot)
    for (unsigned I = 0, E = User->getNumOperands(); I != E; ++I)
      if (User->getOperand(I) == this)
        User->setOperand(I, New);
  assert(Users.empty() && "stale users after RAUW");
}
