//===- ir/Function.cpp - KIR function ----------------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Module.h"

#include <algorithm>
#include <cassert>

using namespace khaos;

Function::Function(PointerType *PtrToFnTy, std::string Name, Module *Parent)
    : Value(ValueKind::Function, PtrToFnTy, std::move(Name)),
      Parent(Parent) {
  FunctionType *FTy = getFunctionType();
  for (unsigned I = 0, E = FTy->getNumParams(); I != E; ++I)
    Args.emplace_back(
        new Argument(FTy->getParamType(I), "arg" + std::to_string(I), this,
                     I));
  Origins.push_back(getName());
}

Function::~Function() {
  // Sever all intra-function operand references before blocks die so
  // cross-block def-use edges cannot dangle during destruction.
  for (auto &BB : Blocks)
    for (auto &I : BB->insts())
      I->dropAllReferences();
}

BasicBlock *Function::addBlock(const std::string &Name) {
  auto *BB = new BasicBlock(Name);
  BB->setParent(this);
  Blocks.emplace_back(BB);
  return BB;
}

BasicBlock *Function::addBlockAfter(BasicBlock *After,
                                    const std::string &Name) {
  auto *BB = new BasicBlock(Name);
  BB->setParent(this);
  Blocks.emplace(Blocks.begin() + blockIndex(After) + 1, BB);
  return BB;
}

BasicBlock *Function::adoptBlock(std::unique_ptr<BasicBlock> BB) {
  BB->setParent(this);
  Blocks.emplace_back(std::move(BB));
  return Blocks.back().get();
}

std::unique_ptr<BasicBlock> Function::takeBlock(BasicBlock *BB) {
  size_t Idx = blockIndex(BB);
  std::unique_ptr<BasicBlock> Owned = std::move(Blocks[Idx]);
  Blocks.erase(Blocks.begin() + Idx);
  Owned->setParent(nullptr);
  return Owned;
}

void Function::eraseBlock(BasicBlock *BB) {
  takeBlock(BB); // Ownership drops here.
}

size_t Function::blockIndex(const BasicBlock *BB) const {
  for (size_t Idx = 0, E = Blocks.size(); Idx != E; ++Idx)
    if (Blocks[Idx].get() == BB)
      return Idx;
  assert(false && "block not in this function");
  return ~size_t(0);
}

void Function::moveBlockToEnd(BasicBlock *BB) {
  size_t Idx = blockIndex(BB);
  std::unique_ptr<BasicBlock> Owned = std::move(Blocks[Idx]);
  Blocks.erase(Blocks.begin() + Idx);
  Blocks.emplace_back(std::move(Owned));
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}

void Function::addOrigin(const std::string &O) {
  if (std::find(Origins.begin(), Origins.end(), O) == Origins.end())
    Origins.push_back(O);
}

bool Function::hasAddressTaken() const {
  for (Instruction *U : users()) {
    const auto *CI = dyn_cast<CallInst>(U);
    if (!CI) {
      return true; // Used by a store, cast, select, ... => escapes.
    }
    // Callee slot is fine; appearing as an *argument* is an escape.
    for (unsigned I = 0, E = CI->getNumArgs(); I != E; ++I)
      if (CI->getArg(I) == this)
        return true;
  }
  return false;
}
