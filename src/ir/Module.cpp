//===- ir/Module.cpp - KIR module ---------------------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <cassert>

using namespace khaos;

Module::~Module() {
  // Sever every operand reference while all values (including interned
  // constants, which are declared after Functions and therefore destroyed
  // first) are still alive; afterwards destruction order is irrelevant.
  for (auto &F : Functions)
    for (auto &BB : F->blocks())
      for (auto &I : BB->insts())
        I->dropAllReferences();
}

Function *Module::createFunction(const std::string &Name, FunctionType *FTy) {
  assert(!getFunction(Name) && "duplicate function name");
  auto *F = new Function(Ctx.getPointerType(FTy), Name, this);
  Functions.emplace_back(F);
  return F;
}

Function *Module::getFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

void Module::eraseFunction(Function *F) {
  assert(!F->hasUses() && "erasing function that still has users");
  for (size_t I = 0, E = Functions.size(); I != E; ++I)
    if (Functions[I].get() == F) {
      Functions.erase(Functions.begin() + I);
      return;
    }
  assert(false && "function not in this module");
}

GlobalVariable *Module::createGlobal(const std::string &Name,
                                     Type *ValueType) {
  assert(!getGlobal(Name) && "duplicate global name");
  auto *GV = new GlobalVariable(Ctx.getPointerType(ValueType), ValueType,
                                Name);
  Globals.emplace_back(GV);
  return GV;
}

GlobalVariable *Module::getGlobal(const std::string &Name) const {
  for (const auto &G : Globals)
    if (G->getName() == Name)
      return G.get();
  return nullptr;
}

ConstantInt *Module::getConstantInt(Type *Ty, int64_t V) {
  assert(Ty->isInteger() && "integer constant of non-integer type");
  // Normalize to the type's width so interning never aliases distinct
  // values.
  switch (Ty->getKind()) {
  case TypeKind::Int1:
    V &= 1;
    break;
  case TypeKind::Int8:
    V = static_cast<int8_t>(V);
    break;
  case TypeKind::Int32:
    V = static_cast<int32_t>(V);
    break;
  default:
    break;
  }
  auto &Slot = IntConstants[{Ty, V}];
  if (!Slot)
    Slot.reset(new ConstantInt(Ty, V));
  return Slot.get();
}

ConstantInt *Module::getInt1(bool V) {
  return getConstantInt(Ctx.getInt1Type(), V);
}
ConstantInt *Module::getInt8(int64_t V) {
  return getConstantInt(Ctx.getInt8Type(), V);
}
ConstantInt *Module::getInt32(int64_t V) {
  return getConstantInt(Ctx.getInt32Type(), V);
}
ConstantInt *Module::getInt64(int64_t V) {
  return getConstantInt(Ctx.getInt64Type(), V);
}

ConstantFP *Module::getConstantFP(Type *Ty, double V) {
  assert(Ty->isFloatingPoint() && "FP constant of non-FP type");
  if (Ty->getKind() == TypeKind::Float)
    V = static_cast<float>(V);
  auto &Slot = FPConstants[{Ty, V}];
  if (!Slot)
    Slot.reset(new ConstantFP(Ty, V));
  return Slot.get();
}

ConstantNull *Module::getNullPtr(PointerType *Ty) {
  auto &Slot = NullConstants[Ty];
  if (!Slot)
    Slot.reset(new ConstantNull(Ty));
  return Slot.get();
}

ConstantTaggedFunc *Module::getTaggedFunc(Type *PtrTy, Function *F,
                                          unsigned Tag) {
  assert(Tag < 16 && "tag must fit the low nibble");
  auto &Slot = TaggedFuncConstants[{F, Tag}];
  if (!Slot)
    Slot.reset(new ConstantTaggedFunc(PtrTy, F, Tag));
  return Slot.get();
}

Constant *Module::getZeroValue(Type *Ty) {
  if (Ty->isInteger())
    return getConstantInt(Ty, 0);
  if (Ty->isFloatingPoint())
    return getConstantFP(Ty, 0.0);
  if (auto *PT = dyn_cast<PointerType>(Ty))
    return getNullPtr(const_cast<PointerType *>(PT));
  assert(false && "no zero value for this type");
  return nullptr;
}

std::string Module::uniqueName(const std::string &Stem) {
  unsigned &Counter = NameCounters[Stem];
  while (true) {
    std::string Candidate = Stem + "." + std::to_string(Counter++);
    if (!getFunction(Candidate) && !getGlobal(Candidate))
      return Candidate;
  }
}
