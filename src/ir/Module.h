//===- ir/Module.h - KIR module ---------------------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A translation unit: globals + functions + interned constants. The
/// obfuscation passes transform Modules in place; the codegen lowers a
/// Module to a BinaryImage; the VM executes a Module directly.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_MODULE_H
#define KHAOS_IR_MODULE_H

#include "ir/Function.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace khaos {

/// A whole program (the evaluation compiles each workload with LTO-style
/// whole-program linking, matching the paper's single-binary setup).
class Module {
public:
  Module(Context &Ctx, std::string Name)
      : Ctx(Ctx), Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  ~Module();

  Context &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }

  // Functions.
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  /// Creates a function (definition if blocks are added later, declaration
  /// otherwise). Arguments are materialized from the type's parameters.
  Function *createFunction(const std::string &Name, FunctionType *FTy);
  Function *getFunction(const std::string &Name) const;
  /// Destroys \p F; it must have no remaining uses.
  void eraseFunction(Function *F);

  // Globals.
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }
  GlobalVariable *createGlobal(const std::string &Name, Type *ValueType);
  GlobalVariable *getGlobal(const std::string &Name) const;

  // Interned constants.
  ConstantInt *getConstantInt(Type *Ty, int64_t V);
  ConstantInt *getInt1(bool V);
  ConstantInt *getInt8(int64_t V);
  ConstantInt *getInt32(int64_t V);
  ConstantInt *getInt64(int64_t V);
  ConstantFP *getConstantFP(Type *Ty, double V);
  ConstantNull *getNullPtr(PointerType *Ty);
  ConstantTaggedFunc *getTaggedFunc(Type *PtrTy, Function *F, unsigned Tag);

  /// Returns the zero value of a first-class type.
  Constant *getZeroValue(Type *Ty);

  /// Deterministically fresh symbol name with the given stem.
  std::string uniqueName(const std::string &Stem);

  /// uniqueName() counter state. cloneModule() copies it into the clone so
  /// that name generation continues identically in both modules — a clone
  /// must be indistinguishable from the module it was copied from, down to
  /// the names later passes would mint.
  const std::map<std::string, unsigned> &nameCounters() const {
    return NameCounters;
  }
  void setNameCounters(std::map<std::string, unsigned> Counters) {
    NameCounters = std::move(Counters);
  }

private:
  Context &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;

  std::map<std::pair<Type *, int64_t>, std::unique_ptr<ConstantInt>>
      IntConstants;
  std::map<std::pair<Type *, double>, std::unique_ptr<ConstantFP>>
      FPConstants;
  std::map<Type *, std::unique_ptr<ConstantNull>> NullConstants;
  std::map<std::pair<Function *, unsigned>,
           std::unique_ptr<ConstantTaggedFunc>>
      TaggedFuncConstants;
  std::map<std::string, unsigned> NameCounters;
};

} // namespace khaos

#endif // KHAOS_IR_MODULE_H
