//===- ir/BasicBlock.h - KIR basic block ------------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A straight-line instruction sequence ending in exactly one terminator.
/// Blocks own their instructions; ownership can be transferred with take()
/// so fission/fusion can move code between functions without copying.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_BASICBLOCK_H
#define KHAOS_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace khaos {

class Function;

/// A node of the control-flow graph.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;
  ~BasicBlock();

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  const std::vector<std::unique_ptr<Instruction>> &insts() const {
    return Insts;
  }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }
  Instruction *getInst(size_t I) const { return Insts[I].get(); }

  /// The terminator, or null while the block is under construction.
  Instruction *getTerminator() const;

  /// Appends \p I, taking ownership. Returns \p I.
  Instruction *push(Instruction *I);

  /// Inserts \p I before position \p Pos (an owned instruction of this
  /// block), taking ownership. Returns \p I.
  Instruction *insertBefore(Instruction *Pos, Instruction *I);

  /// Inserts \p I at index \p Idx.
  Instruction *insertAt(size_t Idx, Instruction *I);

  /// Index of \p I; asserts membership.
  size_t indexOf(const Instruction *I) const;

  /// Unlinks \p I without destroying it; ownership passes to the caller.
  std::unique_ptr<Instruction> take(Instruction *I);

  /// Unlinks and destroys \p I (must have no users).
  void erase(Instruction *I);

  /// Blocks this block can transfer control to.
  std::vector<BasicBlock *> successors() const;

  /// Blocks that can transfer control here (scans the parent function).
  std::vector<BasicBlock *> predecessors() const;

  /// Splits this block before \p Pos: instructions from \p Pos onwards move
  /// to a new block (inserted after this one) and this block gets an
  /// unconditional branch to it. Returns the new block.
  BasicBlock *splitBefore(Instruction *Pos, const std::string &NewName);

private:
  std::string Name;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

} // namespace khaos

#endif // KHAOS_IR_BASICBLOCK_H
