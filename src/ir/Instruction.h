//===- ir/Instruction.h - KIR instruction set -------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KIR instruction set. KIR is deliberately phi-free: every local
/// variable lives in an alloca and is accessed through load/store (the shape
/// clang emits at -O0). That makes inter-procedural code motion — the heart
/// of Khaos — a matter of rewriting loads/stores to go through pointer
/// parameters instead of rewiring SSA webs.
///
/// Terminators: Br, Switch, Ret, Invoke, Throw, Unreachable. Exceptional
/// control flow is modelled with Invoke/Throw/LandingPad (a simplified C++
/// EH) plus setjmp/longjmp intrinsic calls handled by the VM.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_INSTRUCTION_H
#define KHAOS_IR_INSTRUCTION_H

#include "ir/Value.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace khaos {

class BasicBlock;
class Function;

/// Opcode of an Instruction.
enum class Opcode : uint8_t {
  Alloca,
  Load,
  Store,
  BinOp,
  Cmp,
  Cast,
  GEP,
  Select,
  Call,
  LandingPad,
  // Terminators from here on (keep Br first; see isTerminator).
  Br,
  Switch,
  Ret,
  Invoke,
  Throw,
  Unreachable,
};

/// Binary arithmetic/logic operations. Integer and FP variants are distinct
/// so instruction substitution and codegen can tell them apart.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  LShr,
  FAdd,
  FSub,
  FMul,
  FDiv,
};

/// Comparison predicates; the operand type selects int vs FP semantics.
enum class CmpPred : uint8_t { EQ, NE, SLT, SLE, SGT, SGE };

/// Value conversions.
enum class CastKind : uint8_t {
  Trunc,
  SExt,
  ZExt,
  FPToSI,
  SIToFP,
  FPTrunc,
  FPExt,
  Bitcast,
  PtrToInt,
  IntToPtr,
};

/// Base class of all KIR instructions.
class Instruction : public Value {
public:
  ~Instruction() override;

  Opcode getOpcode() const { return Op; }
  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }
  Function *getFunction() const;

  unsigned getNumOperands() const { return Operands.size(); }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V);
  const std::vector<Value *> &operands() const { return Operands; }

  /// Drops all operand references (removing this from their user lists).
  void dropAllReferences();

  bool isTerminator() const { return Op >= Opcode::Br; }

  unsigned getNumSuccessors() const { return Successors.size(); }
  BasicBlock *getSuccessor(unsigned I) const {
    assert(I < Successors.size() && "successor index out of range");
    return Successors[I];
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < Successors.size() && "successor index out of range");
    Successors[I] = BB;
  }
  const std::vector<BasicBlock *> &successors() const { return Successors; }
  /// Rewrites every successor slot equal to \p From to \p To.
  void replaceSuccessor(BasicBlock *From, BasicBlock *To);

  /// True if executing this instruction can write memory or transfer
  /// control in ways DCE must preserve.
  bool mayHaveSideEffects() const;

  /// Unlinks from the parent block and destroys the instruction. The
  /// instruction must have no remaining users.
  void eraseFromParent();

  /// Structural deep copy. Operands and successors still point at the
  /// original values/blocks; callers remap as needed.
  Instruction *clone() const;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Instruction;
  }

protected:
  Instruction(Opcode Op, Type *Ty, std::string Name = "")
      : Value(ValueKind::Instruction, Ty, std::move(Name)), Op(Op) {}

  void addOperand(Value *V);
  void addSuccessor(BasicBlock *BB) { Successors.push_back(BB); }

private:
  Opcode Op;
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
  std::vector<BasicBlock *> Successors;
};

/// Stack allocation of one object of the given type; yields a pointer.
class AllocaInst : public Instruction {
public:
  AllocaInst(Type *AllocatedType, std::string Name = "")
      : Instruction(Opcode::Alloca, AllocatedType->getPointerTo(),
                    std::move(Name)),
        AllocatedType(AllocatedType) {}

  Type *getAllocatedType() const { return AllocatedType; }

  static bool classof(const Value *V);

private:
  Type *AllocatedType;
};

/// Loads a first-class value through a pointer.
class LoadInst : public Instruction {
public:
  explicit LoadInst(Value *Ptr, std::string Name = "");

  Value *getPointer() const { return getOperand(0); }

  static bool classof(const Value *V);
};

/// Stores a first-class value through a pointer.
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr);

  Value *getStoredValue() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }

  static bool classof(const Value *V);
};

/// Two-operand arithmetic/logic.
class BinaryInst : public Instruction {
public:
  BinaryInst(BinOp Kind, Value *L, Value *R, std::string Name = "");

  BinOp getBinOp() const { return Kind; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  bool isFloatOp() const { return Kind >= BinOp::FAdd; }
  bool isDivRem() const {
    return Kind == BinOp::SDiv || Kind == BinOp::SRem || Kind == BinOp::FDiv;
  }

  static const char *getOpName(BinOp K);
  static bool classof(const Value *V);

private:
  BinOp Kind;
};

/// Comparison producing i1. Operand types select int/FP/pointer semantics.
class CmpInst : public Instruction {
public:
  CmpInst(CmpPred Pred, Value *L, Value *R, std::string Name = "");

  CmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static const char *getPredName(CmpPred P);
  static bool classof(const Value *V);

private:
  CmpPred Pred;
};

/// Value conversion.
class CastInst : public Instruction {
public:
  CastInst(CastKind Kind, Value *V, Type *DestTy, std::string Name = "");

  CastKind getCastKind() const { return Kind; }
  Value *getSource() const { return getOperand(0); }

  static const char *getCastName(CastKind K);
  static bool classof(const Value *V);

private:
  CastKind Kind;
};

/// Pointer arithmetic: yields Ptr displaced by Index elements. When the
/// pointee is an array the result points at its elements (&A[I]); otherwise
/// the result is Ptr + Index * sizeof(pointee).
class GEPInst : public Instruction {
public:
  GEPInst(Value *Ptr, Value *Index, std::string Name = "");

  Value *getPointer() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }
  /// Byte stride of one index step.
  uint64_t getElementSize() const;

  static bool classof(const Value *V);
};

/// cond ? tval : fval.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV,
             std::string Name = "");

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V);
};

/// Direct or indirect call. Operand 0 is the callee (a Function or a value
/// of pointer-to-function type); the rest are arguments.
class CallInst : public Instruction {
public:
  CallInst(Value *Callee, std::vector<Value *> Args, std::string Name = "");

  Value *getCallee() const { return getOperand(0); }
  /// Non-null when the callee is a direct Function reference.
  Function *getCalledFunction() const;
  unsigned getNumArgs() const { return getNumOperands() - 1; }
  Value *getArg(unsigned I) const { return getOperand(I + 1); }
  void setArg(unsigned I, Value *V) { setOperand(I + 1, V); }
  bool isIndirect() const { return getCalledFunction() == nullptr; }

  /// The static callee type (through function pointers if needed).
  FunctionType *getCalleeType() const;

  static Type *resultTypeForCallee(Value *Callee);
  static bool classof(const Value *V);

protected:
  CallInst(Opcode Op, Value *Callee, std::vector<Value *> Args,
           std::string Name);
};

/// Call with exceptional continuation: control resumes at the normal
/// destination, or at the unwind destination (whose first instruction must
/// be a LandingPad) when the callee throws. Terminator.
class InvokeInst : public CallInst {
public:
  InvokeInst(Value *Callee, std::vector<Value *> Args,
             BasicBlock *NormalDest, BasicBlock *UnwindDest,
             std::string Name = "");

  BasicBlock *getNormalDest() const { return getSuccessor(0); }
  BasicBlock *getUnwindDest() const { return getSuccessor(1); }

  static bool classof(const Value *V);
};

/// First instruction of an unwind destination; yields the thrown i64.
class LandingPadInst : public Instruction {
public:
  explicit LandingPadInst(Type *I64Ty, std::string Name = "");

  static bool classof(const Value *V);
};

/// Raises an exception carrying an i64 payload. Terminator.
class ThrowInst : public Instruction {
public:
  explicit ThrowInst(Value *Payload);

  Value *getPayload() const { return getOperand(0); }

  static bool classof(const Value *V);
};

/// Unconditional or conditional branch.
class BranchInst : public Instruction {
public:
  explicit BranchInst(BasicBlock *Dest);
  BranchInst(Value *Cond, BasicBlock *TrueDest, BasicBlock *FalseDest);

  bool isConditional() const { return getNumOperands() == 1; }
  Value *getCondition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return getOperand(0);
  }
  BasicBlock *getTrueDest() const { return getSuccessor(0); }
  BasicBlock *getFalseDest() const { return getSuccessor(1); }

  static bool classof(const Value *V);
};

/// Multiway branch on an integer; successor 0 is the default destination.
class SwitchInst : public Instruction {
public:
  SwitchInst(Value *Cond, BasicBlock *DefaultDest);

  Value *getCondition() const { return getOperand(0); }
  BasicBlock *getDefaultDest() const { return getSuccessor(0); }
  void addCase(int64_t Val, BasicBlock *Dest);
  unsigned getNumCases() const { return CaseValues.size(); }
  int64_t getCaseValue(unsigned I) const { return CaseValues[I]; }
  BasicBlock *getCaseDest(unsigned I) const { return getSuccessor(I + 1); }

  static bool classof(const Value *V);

private:
  std::vector<int64_t> CaseValues;
};

/// Function return, optionally with a value.
class ReturnInst : public Instruction {
public:
  explicit ReturnInst(Value *RetVal, Type *VoidTy);

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "void return");
    return getOperand(0);
  }

  static bool classof(const Value *V);
};

/// Marks statically unreachable control flow.
class UnreachableInst : public Instruction {
public:
  explicit UnreachableInst(Type *VoidTy);

  static bool classof(const Value *V);
};

} // namespace khaos

#endif // KHAOS_IR_INSTRUCTION_H
