//===- ir/Function.h - KIR function -----------------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functions own their blocks and arguments. Besides the usual structure,
/// each function carries the metadata the obfuscation pipeline and the
/// evaluation harness need: export/linkage flags, an obfuscation opt-out,
/// and a provenance list (which original functions this function's code came
/// from) used by the paper's relaxed pairing judgment.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_FUNCTION_H
#define KHAOS_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace khaos {

class Module;

/// A function definition or declaration.
class Function : public Value {
public:
  FunctionType *getFunctionType() const {
    return cast<FunctionType>(
        cast<PointerType>(getType())->getPointee());
  }
  Type *getReturnType() const { return getFunctionType()->getReturnType(); }
  bool isVarArg() const { return getFunctionType()->isVarArg(); }

  Module *getParent() const { return Parent; }

  // Arguments.
  unsigned arg_size() const { return Args.size(); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }
  const std::vector<std::unique_ptr<Argument>> &args() const { return Args; }

  // Blocks.
  bool isDeclaration() const { return Blocks.empty(); }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t size() const { return Blocks.size(); }
  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front().get();
  }

  /// Appends a new block and returns it.
  BasicBlock *addBlock(const std::string &Name);
  /// Inserts a new block immediately after \p After.
  BasicBlock *addBlockAfter(BasicBlock *After, const std::string &Name);
  /// Adopts \p BB (e.g. moved from another function).
  BasicBlock *adoptBlock(std::unique_ptr<BasicBlock> BB);
  /// Unlinks \p BB without destroying it.
  std::unique_ptr<BasicBlock> takeBlock(BasicBlock *BB);
  /// Unlinks and destroys \p BB. Instructions must be unreferenced from
  /// outside the block.
  void eraseBlock(BasicBlock *BB);
  /// Index of \p BB in the block list; asserts membership.
  size_t blockIndex(const BasicBlock *BB) const;
  /// Moves \p BB to the end of the block list (layout only).
  void moveBlockToEnd(BasicBlock *BB);

  /// Total instruction count across all blocks.
  size_t instructionCount() const;

  // Flags.
  bool isExported() const { return Exported; }
  void setExported(bool E) { Exported = E; }
  bool isNoObfuscate() const { return NoObfuscate; }
  void setNoObfuscate(bool N) { NoObfuscate = N; }
  /// sepFuncs carry noinline (as in the paper's LLVM extractor): letting
  /// the optimizer inline them back would undo the fission.
  bool isNoInline() const { return NoInline; }
  void setNoInline(bool N) { NoInline = N; }
  /// Marks VM-provided intrinsics (printf, setjmp, malloc, ...).
  bool isIntrinsic() const { return Intrinsic; }
  void setIntrinsic(bool I) { Intrinsic = I; }

  /// Provenance: names of the pre-obfuscation functions whose code this
  /// function (partly) contains. A fresh function's provenance is itself.
  const std::vector<std::string> &getOrigins() const { return Origins; }
  void addOrigin(const std::string &O);
  void setOrigins(std::vector<std::string> O) { Origins = std::move(O); }

  /// True if any use is not a direct callee slot (i.e. the address escapes).
  bool hasAddressTaken() const;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Function;
  }

  ~Function() override;

private:
  friend class Module;
  Function(PointerType *PtrToFnTy, std::string Name, Module *Parent);

  Module *Parent;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  bool Exported = false;
  bool NoObfuscate = false;
  bool NoInline = false;
  bool Intrinsic = false;
  std::vector<std::string> Origins;
};

} // namespace khaos

#endif // KHAOS_IR_FUNCTION_H
