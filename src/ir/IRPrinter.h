//===- ir/IRPrinter.h - Textual IR dump -------------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules/functions as LLVM-flavoured text for debugging, tests
/// and the example programs. There is no parser; the text format is output
/// only.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_IRPRINTER_H
#define KHAOS_IR_IRPRINTER_H

#include <string>

namespace khaos {

class Module;
class Function;

/// Prints \p M as text.
std::string printModule(const Module &M);

/// Prints one function as text.
std::string printFunction(const Function &F);

} // namespace khaos

#endif // KHAOS_IR_IRPRINTER_H
