//===- ir/Verifier.cpp - IR well-formedness checks ------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"
#include "support/StringUtils.h"

#include <map>
#include <set>

using namespace khaos;

namespace {

/// Per-function verification state.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  bool run();

private:
  void error(const std::string &Msg) {
    Errors.push_back("in @" + F.getName() + ": " + Msg);
  }

  void checkStructure();
  void checkInstruction(const BasicBlock *BB, const Instruction *I);
  void computeDominators();
  void checkDominance();
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  const Function &F;
  std::vector<std::string> &Errors;
  std::set<const BasicBlock *> BlockSet;
  // Dominator sets (small functions; set-based iterative algorithm).
  std::map<const BasicBlock *, std::set<const BasicBlock *>> Dom;
};

} // namespace

void FunctionVerifier::checkStructure() {
  if (F.blocks().empty())
    return;
  if (!F.getEntryBlock()->predecessors().empty())
    error("entry block has predecessors");
  for (const auto &BB : F.blocks()) {
    if (BB->empty()) {
      error("block '" + BB->getName() + "' is empty");
      continue;
    }
    const Instruction *Term = BB->getTerminator();
    if (!Term)
      error("block '" + BB->getName() + "' lacks a terminator");
    for (size_t I = 0, E = BB->size(); I != E; ++I) {
      const Instruction *Inst = BB->getInst(I);
      if (Inst->getParent() != BB.get())
        error("instruction parent link broken in '" + BB->getName() + "'");
      if (Inst->isTerminator() && I + 1 != E)
        error("terminator in the middle of block '" + BB->getName() + "'");
      if (isa<LandingPadInst>(Inst) && I != 0)
        error("landingpad is not the first instruction of '" +
              BB->getName() + "'");
      checkInstruction(BB.get(), Inst);
    }
  }
}

void FunctionVerifier::checkInstruction(const BasicBlock *BB,
                                        const Instruction *I) {
  // Successors must be blocks of this function.
  for (const BasicBlock *S : I->successors())
    if (!BlockSet.count(S))
      error(formatStr("successor of a terminator in '%s' is foreign",
                      BB->getName().c_str()));

  // Operands must be constants, globals, functions, or locals of F.
  for (const Value *Op : I->operands()) {
    if (const auto *Arg = dyn_cast<Argument>(Op)) {
      if (Arg->getParent() != &F)
        error("operand argument belongs to another function");
    } else if (const auto *OI = dyn_cast<Instruction>(Op)) {
      if (!OI->getParent() || OI->getParent()->getParent() != &F)
        error("operand instruction belongs to another function");
      if (OI->getType() && OI->getType()->isVoid())
        error("use of a void-typed instruction result");
    }
  }

  switch (I->getOpcode()) {
  case Opcode::Store: {
    const auto *SI = cast<StoreInst>(I);
    const auto *PT = dyn_cast<PointerType>(SI->getPointer()->getType());
    if (!PT || PT->getPointee() != SI->getStoredValue()->getType())
      error("store type mismatch");
    break;
  }
  case Opcode::Call:
  case Opcode::Invoke: {
    const auto *CI = cast<CallInst>(I);
    const FunctionType *FTy = CI->getCalleeType();
    if (CI->getNumArgs() < FTy->getNumParams() ||
        (CI->getNumArgs() > FTy->getNumParams() && !FTy->isVarArg())) {
      error("call argument count mismatch for callee type " +
            FTy->getName());
      break;
    }
    for (unsigned A = 0, E = FTy->getNumParams(); A != E; ++A)
      if (CI->getArg(A)->getType() != FTy->getParamType(A))
        error(formatStr("call argument %u type mismatch", A));
    if (const auto *IV = dyn_cast<InvokeInst>(I))
      if (IV->getUnwindDest()->empty() ||
          !isa<LandingPadInst>(IV->getUnwindDest()->front()))
        error("invoke unwind destination lacks a landingpad");
    break;
  }
  case Opcode::Br: {
    const auto *BR = cast<BranchInst>(I);
    if (BR->isConditional() &&
        BR->getCondition()->getType()->getKind() != TypeKind::Int1)
      error("conditional branch on non-i1 value");
    break;
  }
  case Opcode::Ret: {
    const auto *RI = cast<ReturnInst>(I);
    Type *RetTy = F.getReturnType();
    if (RetTy->isVoid()) {
      if (RI->hasReturnValue())
        error("returning a value from a void function");
    } else if (!RI->hasReturnValue()) {
      error("missing return value");
    } else if (RI->getReturnValue()->getType() != RetTy) {
      error("return value type mismatch");
    }
    break;
  }
  default:
    break;
  }
}

void FunctionVerifier::computeDominators() {
  // Iterative set-based dominance; functions are small enough.
  std::set<const BasicBlock *> All;
  for (const auto &BB : F.blocks())
    All.insert(BB.get());
  const BasicBlock *Entry = F.getEntryBlock();
  for (const auto &BB : F.blocks())
    Dom[BB.get()] = BB.get() == Entry
                        ? std::set<const BasicBlock *>{Entry}
                        : All;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks()) {
      if (BB.get() == Entry)
        continue;
      std::set<const BasicBlock *> NewDom = All;
      std::vector<BasicBlock *> Preds = BB->predecessors();
      if (Preds.empty()) {
        NewDom = {BB.get()}; // Unreachable block dominates only itself.
      } else {
        for (const BasicBlock *P : Preds) {
          std::set<const BasicBlock *> Inter;
          for (const BasicBlock *D : Dom[P])
            if (NewDom.count(D))
              Inter.insert(D);
          NewDom = std::move(Inter);
        }
        NewDom.insert(BB.get());
      }
      if (NewDom != Dom[BB.get()]) {
        Dom[BB.get()] = std::move(NewDom);
        Changed = true;
      }
    }
  }
}

bool FunctionVerifier::dominates(const BasicBlock *A,
                                 const BasicBlock *B) const {
  auto It = Dom.find(B);
  return It != Dom.end() && It->second.count(A);
}

void FunctionVerifier::checkDominance() {
  for (const auto &BB : F.blocks()) {
    for (size_t Idx = 0, E = BB->size(); Idx != E; ++Idx) {
      const Instruction *I = BB->getInst(Idx);
      for (const Value *Op : I->operands()) {
        const auto *Def = dyn_cast<Instruction>(Op);
        if (!Def)
          continue;
        const BasicBlock *DefBB = Def->getParent();
        if (DefBB == BB.get()) {
          if (BB->indexOf(Def) >= Idx)
            error(formatStr("use before def inside block '%s'",
                            BB->getName().c_str()));
        } else if (!dominates(DefBB, BB.get())) {
          error(formatStr("use in '%s' not dominated by def in '%s'",
                          BB->getName().c_str(),
                          DefBB ? DefBB->getName().c_str() : "<detached>"));
        }
      }
    }
  }
}

bool FunctionVerifier::run() {
  size_t Before = Errors.size();
  for (const auto &BB : F.blocks())
    BlockSet.insert(BB.get());
  checkStructure();
  if (Errors.size() == Before && !F.blocks().empty()) {
    computeDominators();
    checkDominance();
  }
  return Errors.size() == Before;
}

bool khaos::verifyFunction(const Function &F,
                           std::vector<std::string> &Errors) {
  if (F.isDeclaration())
    return true;
  return FunctionVerifier(F, Errors).run();
}

bool khaos::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  for (const auto &F : M.functions())
    verifyFunction(*F, Errors);
  return Errors.size() == Before;
}

std::vector<std::string> khaos::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  verifyModule(M, Errors);
  return Errors;
}
