//===- ir/Type.cpp - KIR type system ---------------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace khaos;

unsigned Type::getIntegerBitWidth() const {
  switch (Kind) {
  case TypeKind::Int1:
    return 1;
  case TypeKind::Int8:
    return 8;
  case TypeKind::Int32:
    return 32;
  case TypeKind::Int64:
    return 64;
  default:
    assert(false && "not an integer type");
    return 0;
  }
}

uint64_t Type::getStoreSize() const {
  switch (Kind) {
  case TypeKind::Int1:
  case TypeKind::Int8:
    return 1;
  case TypeKind::Int32:
    return 4;
  case TypeKind::Int64:
    return 8;
  case TypeKind::Float:
    return 4;
  case TypeKind::Double:
    return 8;
  case TypeKind::Pointer:
    return 8;
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return AT->getNumElements() * AT->getElementType()->getStoreSize();
  }
  case TypeKind::Void:
  case TypeKind::Function:
    assert(false && "type has no store size");
    return 0;
  }
  return 0;
}

Type *Type::getPointerTo() { return Ctx.getPointerType(this); }

bool Type::isCompatibleWith(const Type *Other) const {
  if (isInteger() && Other->isInteger())
    return true;
  if (isFloatingPoint() && Other->isFloatingPoint())
    return true;
  if (isPointer() && Other->isPointer())
    return true;
  return false;
}

Type *Type::getCompressedType(Type *A, Type *B) {
  assert(A->isCompatibleWith(B) && "cannot compress incompatible types");
  if (A->isPointer())
    return A; // All pointers are interchangeable for passing.
  // Wider kind wins; TypeKind ordering encodes width for ints and floats.
  return (int)A->getKind() >= (int)B->getKind() ? A : B;
}

std::string Type::getName() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int1:
    return "i1";
  case TypeKind::Int8:
    return "i8";
  case TypeKind::Int32:
    return "i32";
  case TypeKind::Int64:
    return "i64";
  case TypeKind::Float:
    return "f32";
  case TypeKind::Double:
    return "f64";
  case TypeKind::Pointer:
    return cast<PointerType>(this)->getPointee()->getName() + "*";
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return formatStr("[%llu x %s]",
                     (unsigned long long)AT->getNumElements(),
                     AT->getElementType()->getName().c_str());
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::vector<std::string> Params;
    for (Type *P : FT->getParamTypes())
      Params.push_back(P->getName());
    if (FT->isVarArg())
      Params.push_back("...");
    return FT->getReturnType()->getName() + " (" + join(Params, ", ") + ")";
  }
  }
  return "<invalid>";
}

Context::Context() {
  for (int K = (int)TypeKind::Void; K < (int)TypeKind::Pointer; ++K)
    Primitives[K].reset(new Type(*this, (TypeKind)K));
}

Context::~Context() = default;

PointerType *Context::getPointerType(Type *Pointee) {
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = PointerTypes[Pointee];
  if (!Slot)
    Slot.reset(new PointerType(*this, Pointee));
  return Slot.get();
}

ArrayType *Context::getArrayType(Type *Element, uint64_t NumElements) {
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = ArrayTypes[{Element, NumElements}];
  if (!Slot)
    Slot.reset(new ArrayType(*this, Element, NumElements));
  return Slot.get();
}

FunctionType *Context::getFunctionType(Type *ReturnType,
                                       std::vector<Type *> ParamTypes,
                                       bool VarArg) {
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto Key = std::make_pair(ReturnType, std::make_pair(ParamTypes, VarArg));
  auto &Slot = FunctionTypes[Key];
  if (!Slot)
    Slot.reset(
        new FunctionType(*this, ReturnType, std::move(ParamTypes), VarArg));
  return Slot.get();
}
