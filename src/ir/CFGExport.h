//===- ir/CFGExport.h - Graphviz CFG/CG export ------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a function's CFG or a module's call graph as Graphviz dot —
/// handy for eyeballing what fission/fusion did to a program
/// (`minic_khaos_cc demo.c -emit-cfg | dot -Tsvg`).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_CFGEXPORT_H
#define KHAOS_IR_CFGEXPORT_H

#include <string>

namespace khaos {

class Function;
class Module;

/// Dot digraph of \p F's control-flow graph (one node per block, labelled
/// with the block name and instruction count).
std::string exportCFG(const Function &F);

/// Dot digraph of \p M's direct call graph.
std::string exportCallGraph(const Module &M);

} // namespace khaos

#endif // KHAOS_IR_CFGEXPORT_H
