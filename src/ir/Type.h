//===- ir/Type.h - KIR type system ------------------------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KIR type system: void, integers (i1/i8/i32/i64), floats (f32/f64),
/// pointers, fixed arrays and function types. Types are interned in a
/// Context, so pointer equality is type equality.
///
/// Fusion-specific notion: two types are *compatible* (paper §3.3.1) when a
/// value of either can round-trip through the wider one without losing
/// precision. Compatible parameter/return types may be compressed into one.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_TYPE_H
#define KHAOS_IR_TYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace khaos {

class Context;

/// Discriminator for the Type class hierarchy.
enum class TypeKind : uint8_t {
  Void,
  Int1,
  Int8,
  Int32,
  Int64,
  Float,
  Double,
  Pointer,
  Array,
  Function,
};

/// Base of the interned type hierarchy.
class Type {
public:
  TypeKind getKind() const { return Kind; }
  Context &getContext() const { return Ctx; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInteger() const {
    return Kind >= TypeKind::Int1 && Kind <= TypeKind::Int64;
  }
  bool isFloatingPoint() const {
    return Kind == TypeKind::Float || Kind == TypeKind::Double;
  }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isFunction() const { return Kind == TypeKind::Function; }
  /// True for types a value can have (excludes void/function/array as SSA
  /// value types; arrays live in memory only).
  bool isFirstClass() const {
    return isInteger() || isFloatingPoint() || isPointer();
  }

  /// Integer bit width; only valid on integer types.
  unsigned getIntegerBitWidth() const;

  /// Size in bytes when stored in memory. Void/function are invalid.
  uint64_t getStoreSize() const;

  /// Pointer-to-this type (interned).
  Type *getPointerTo();

  /// Compatibility for fusion parameter/return compression: both integers,
  /// both floats, or both pointers.
  bool isCompatibleWith(const Type *Other) const;

  /// The wider of two compatible types (the "compressed" type).
  static Type *getCompressedType(Type *A, Type *B);

  /// Human-readable spelling ("i32", "f64*", "[8 x i32]", ...).
  std::string getName() const;

  virtual ~Type() = default;

protected:
  Type(Context &Ctx, TypeKind Kind) : Ctx(Ctx), Kind(Kind) {}

private:
  friend class Context;
  Context &Ctx;
  TypeKind Kind;
};

/// A pointer to a pointee type. All pointers have the same store size (8).
class PointerType : public Type {
public:
  Type *getPointee() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Pointer;
  }

private:
  friend class Context;
  PointerType(Context &Ctx, Type *Pointee)
      : Type(Ctx, TypeKind::Pointer), Pointee(Pointee) {}
  Type *Pointee;
};

/// Fixed-length array type; only appears as an alloca/global element type.
class ArrayType : public Type {
public:
  Type *getElementType() const { return Element; }
  uint64_t getNumElements() const { return NumElements; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Array;
  }

private:
  friend class Context;
  ArrayType(Context &Ctx, Type *Element, uint64_t NumElements)
      : Type(Ctx, TypeKind::Array), Element(Element),
        NumElements(NumElements) {}
  Type *Element;
  uint64_t NumElements;
};

/// Function signature: return type, parameter types, optional varargs tail.
class FunctionType : public Type {
public:
  Type *getReturnType() const { return ReturnType; }
  const std::vector<Type *> &getParamTypes() const { return ParamTypes; }
  unsigned getNumParams() const { return ParamTypes.size(); }
  Type *getParamType(unsigned I) const { return ParamTypes[I]; }
  bool isVarArg() const { return VarArg; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Function;
  }

private:
  friend class Context;
  FunctionType(Context &Ctx, Type *ReturnType, std::vector<Type *> ParamTypes,
               bool VarArg)
      : Type(Ctx, TypeKind::Function), ReturnType(ReturnType),
        ParamTypes(std::move(ParamTypes)), VarArg(VarArg) {}
  Type *ReturnType;
  std::vector<Type *> ParamTypes;
  bool VarArg;
};

/// Owns and interns all types (and, transitively, nothing else). One Context
/// may serve many Modules; pointer identity of types holds across them.
///
/// Interning is guarded by a mutex, so Modules in different threads may
/// share one Context (the evaluation pipeline clones cached fission-stage
/// modules into the artifact's Context and obfuscates the clones
/// concurrently).
class Context {
public:
  Context();
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;
  ~Context();

  Type *getVoidType() { return Primitives[(int)TypeKind::Void].get(); }
  Type *getInt1Type() { return Primitives[(int)TypeKind::Int1].get(); }
  Type *getInt8Type() { return Primitives[(int)TypeKind::Int8].get(); }
  Type *getInt32Type() { return Primitives[(int)TypeKind::Int32].get(); }
  Type *getInt64Type() { return Primitives[(int)TypeKind::Int64].get(); }
  Type *getFloatType() { return Primitives[(int)TypeKind::Float].get(); }
  Type *getDoubleType() { return Primitives[(int)TypeKind::Double].get(); }

  PointerType *getPointerType(Type *Pointee);
  ArrayType *getArrayType(Type *Element, uint64_t NumElements);
  FunctionType *getFunctionType(Type *ReturnType,
                                std::vector<Type *> ParamTypes,
                                bool VarArg = false);

private:
  std::mutex InternMutex;
  std::unique_ptr<Type> Primitives[(int)TypeKind::Pointer];
  std::map<Type *, std::unique_ptr<PointerType>> PointerTypes;
  std::map<std::pair<Type *, uint64_t>, std::unique_ptr<ArrayType>>
      ArrayTypes;
  std::map<std::pair<Type *, std::pair<std::vector<Type *>, bool>>,
           std::unique_ptr<FunctionType>>
      FunctionTypes;
};

} // namespace khaos

#endif // KHAOS_IR_TYPE_H
