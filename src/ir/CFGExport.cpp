//===- ir/CFGExport.cpp - Graphviz CFG/CG export ----------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/CFGExport.h"

#include "ir/Module.h"
#include "support/StringUtils.h"

#include <map>

using namespace khaos;

std::string khaos::exportCFG(const Function &F) {
  std::string Out = "digraph \"" + F.getName() + "\" {\n"
                    "  node [shape=box, fontname=monospace];\n";
  std::map<const BasicBlock *, unsigned> Ids;
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    Ids[BB.get()] = N++;
  for (const auto &BB : F.blocks()) {
    Out += formatStr("  n%u [label=\"%s\\n%zu insts\"%s];\n",
                     Ids[BB.get()], BB->getName().c_str(), BB->size(),
                     BB.get() == F.getEntryBlock()
                         ? ", style=filled, fillcolor=lightgrey"
                         : "");
    if (const Instruction *T = BB->getTerminator())
      for (const BasicBlock *S : T->successors())
        Out += formatStr("  n%u -> n%u;\n", Ids[BB.get()],
                         Ids.at(S));
  }
  Out += "}\n";
  return Out;
}

std::string khaos::exportCallGraph(const Module &M) {
  std::string Out = "digraph callgraph {\n"
                    "  node [shape=ellipse, fontname=monospace];\n";
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    Out += formatStr("  \"%s\"%s;\n", F->getName().c_str(),
                     F->isExported() ? " [style=bold]" : "");
    std::map<std::string, bool> Seen;
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->insts())
        if (const auto *CI = dyn_cast<CallInst>(I.get()))
          if (const Function *Callee = CI->getCalledFunction())
            if (!Callee->isIntrinsic() && !Seen[Callee->getName()]) {
              Seen[Callee->getName()] = true;
              Out += formatStr("  \"%s\" -> \"%s\";\n",
                               F->getName().c_str(),
                               Callee->getName().c_str());
            }
  }
  Out += "}\n";
  return Out;
}
