//===- ir/IRBuilder.h - Instruction creation helper -------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience factory that creates instructions at an insertion point.
/// Used by the MiniC IR generator, the obfuscation passes and tests.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_IR_IRBUILDER_H
#define KHAOS_IR_IRBUILDER_H

#include "ir/Module.h"

#include <cassert>
#include <string>
#include <vector>

namespace khaos {

/// Builds instructions into a basic block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M), Ctx(M.getContext()) {}

  Module &getModule() const { return M; }
  Context &getContext() const { return Ctx; }

  /// Appends new instructions at the end of \p BB (before nothing).
  void setInsertPoint(BasicBlock *BB) {
    InsertBB = BB;
    InsertBeforeInst = nullptr;
  }

  /// Inserts new instructions immediately before \p I.
  void setInsertBefore(Instruction *I) {
    InsertBB = I->getParent();
    InsertBeforeInst = I;
  }

  BasicBlock *getInsertBlock() const { return InsertBB; }

  /// True once the current block already has a terminator (in append mode).
  bool blockTerminated() const {
    return !InsertBeforeInst && InsertBB && InsertBB->getTerminator();
  }

  // Memory.
  AllocaInst *createAlloca(Type *Ty, const std::string &Name = "") {
    return insert(new AllocaInst(Ty, Name));
  }
  LoadInst *createLoad(Value *Ptr, const std::string &Name = "") {
    return insert(new LoadInst(Ptr, Name));
  }
  StoreInst *createStore(Value *Val, Value *Ptr) {
    return insert(new StoreInst(Val, Ptr));
  }
  GEPInst *createGEP(Value *Ptr, Value *Idx, const std::string &Name = "") {
    return insert(new GEPInst(Ptr, Idx, Name));
  }

  // Arithmetic.
  BinaryInst *createBinOp(BinOp K, Value *L, Value *R,
                          const std::string &Name = "") {
    return insert(new BinaryInst(K, L, R, Name));
  }
  BinaryInst *createAdd(Value *L, Value *R) {
    return createBinOp(BinOp::Add, L, R);
  }
  BinaryInst *createSub(Value *L, Value *R) {
    return createBinOp(BinOp::Sub, L, R);
  }
  BinaryInst *createMul(Value *L, Value *R) {
    return createBinOp(BinOp::Mul, L, R);
  }
  CmpInst *createCmp(CmpPred P, Value *L, Value *R,
                     const std::string &Name = "") {
    return insert(new CmpInst(P, L, R, Name));
  }
  CastInst *createCast(CastKind K, Value *V, Type *DestTy,
                       const std::string &Name = "") {
    return insert(new CastInst(K, V, DestTy, Name));
  }
  SelectInst *createSelect(Value *C, Value *T, Value *F,
                           const std::string &Name = "") {
    return insert(new SelectInst(C, T, F, Name));
  }

  // Calls and exceptions.
  CallInst *createCall(Value *Callee, std::vector<Value *> Args,
                       const std::string &Name = "") {
    return insert(new CallInst(Callee, std::move(Args), Name));
  }
  InvokeInst *createInvoke(Value *Callee, std::vector<Value *> Args,
                           BasicBlock *NormalDest, BasicBlock *UnwindDest,
                           const std::string &Name = "") {
    return insert(new InvokeInst(Callee, std::move(Args), NormalDest,
                                 UnwindDest, Name));
  }
  LandingPadInst *createLandingPad(const std::string &Name = "") {
    return insert(new LandingPadInst(Ctx.getInt64Type(), Name));
  }
  ThrowInst *createThrow(Value *Payload) {
    return insert(new ThrowInst(Payload));
  }

  // Terminators.
  BranchInst *createBr(BasicBlock *Dest) {
    return insert(new BranchInst(Dest));
  }
  BranchInst *createCondBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    return insert(new BranchInst(Cond, T, F));
  }
  SwitchInst *createSwitch(Value *Cond, BasicBlock *Default) {
    return insert(new SwitchInst(Cond, Default));
  }
  ReturnInst *createRet(Value *V) {
    return insert(new ReturnInst(V, Ctx.getVoidType()));
  }
  ReturnInst *createRetVoid() { return createRet(nullptr); }
  UnreachableInst *createUnreachable() {
    return insert(new UnreachableInst(Ctx.getVoidType()));
  }

  // Conversions commonly needed by callers.
  /// Converts \p V to integer/FP/pointer type \p DestTy inserting the
  /// appropriate cast; no-op when types already match.
  Value *createConvert(Value *V, Type *DestTy);

  /// Converts an arbitrary first-class value to an i1 "is nonzero" flag.
  Value *createIsNonZero(Value *V);

  // Constant helpers (delegate to the module).
  ConstantInt *getInt1(bool V) { return M.getInt1(V); }
  ConstantInt *getInt8(int64_t V) { return M.getInt8(V); }
  ConstantInt *getInt32(int64_t V) { return M.getInt32(V); }
  ConstantInt *getInt64(int64_t V) { return M.getInt64(V); }

private:
  template <typename T> T *insert(T *I) {
    assert(InsertBB && "no insertion point set");
    if (InsertBeforeInst)
      InsertBB->insertBefore(InsertBeforeInst, I);
    else
      InsertBB->push(I);
    return I;
  }

  Module &M;
  Context &Ctx;
  BasicBlock *InsertBB = nullptr;
  Instruction *InsertBeforeInst = nullptr;
};

} // namespace khaos

#endif // KHAOS_IR_IRBUILDER_H
