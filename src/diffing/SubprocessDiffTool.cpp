//===- diffing/SubprocessDiffTool.cpp - Out-of-process backends -----------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "diffing/SubprocessDiffTool.h"

#include "diffing/DiffWorkerProtocol.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace khaos;

namespace {

std::atomic<unsigned> GlobalTimeoutMs{60000};
std::atomic<uint64_t> RoundTrips{0};

/// Names registered through registerSubprocessDiffTool, so the worker can
/// refuse to recurse into them.
struct SubprocessNames {
  std::mutex M;
  std::set<std::string> Names;
};
SubprocessNames &subprocessNames() {
  static SubprocessNames N;
  return N;
}

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

struct Worker {
  pid_t Pid = -1;
  int WriteFd = -1; ///< Our end of the worker's stdin.
  int ReadFd = -1;  ///< Our end of the worker's stdout.
};

/// Process-wide pool of idle workers, keyed by the exact command line.
/// diff() checks a worker out for the duration of one round trip, so one
/// worker never serves two requests at once; concurrent (cell × tool)
/// tasks each get their own process.
class WorkerPool {
public:
  static WorkerPool &instance() {
    static WorkerPool P;
    return P;
  }

  /// \p ForceSpawn bypasses the idle pool: the crash-retry path must get
  /// a provably fresh process, not another pooled worker that may have
  /// died the same way (OOM kill, external kill).
  bool acquire(const std::vector<std::string> &Argv, Worker &Out,
               std::string &Err, bool ForceSpawn = false) {
    if (!ForceSpawn) {
      std::string Key = joinKey(Argv);
      std::lock_guard<std::mutex> Lock(M);
      auto It = Idle.find(Key);
      if (It != Idle.end() && !It->second.empty()) {
        Out = It->second.back();
        It->second.pop_back();
        return true;
      }
    }
    return spawn(Argv, Out, Err);
  }

  void release(const std::vector<std::string> &Argv, Worker W) {
    std::lock_guard<std::mutex> Lock(M);
    Idle[joinKey(Argv)].push_back(W);
  }

  /// SIGKILLs and reaps \p W (safe to call for an already-dead worker).
  static void destroy(Worker &W) {
    if (W.Pid > 0) {
      ::kill(W.Pid, SIGKILL);
      int Status = 0;
      while (::waitpid(W.Pid, &Status, 0) < 0 && errno == EINTR) {
      }
    }
    if (W.WriteFd >= 0)
      ::close(W.WriteFd);
    if (W.ReadFd >= 0)
      ::close(W.ReadFd);
    W = Worker{};
  }

  void shutdownIdle() {
    std::map<std::string, std::vector<Worker>> Doomed;
    {
      std::lock_guard<std::mutex> Lock(M);
      Doomed.swap(Idle);
    }
    for (auto &Entry : Doomed)
      for (Worker &W : Entry.second)
        destroy(W);
  }

  ~WorkerPool() { shutdownIdle(); }

private:
  WorkerPool() {
    // A worker dying mid-write must surface as EPIPE, not kill the
    // harness with SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
  }

  static std::string joinKey(const std::vector<std::string> &Argv) {
    std::string Key;
    for (const std::string &A : Argv) {
      Key += A;
      Key.push_back('\0');
    }
    return Key;
  }

  bool spawn(const std::vector<std::string> &Argv, Worker &Out,
             std::string &Err) {
    int ToChild[2] = {-1, -1};
    int FromChild[2] = {-1, -1};
    if (::pipe(ToChild) != 0 || ::pipe(FromChild) != 0) {
      Err = std::string("pipe: ") + std::strerror(errno);
      for (int Fd : {ToChild[0], ToChild[1], FromChild[0], FromChild[1]})
        if (Fd >= 0)
          ::close(Fd);
      return false;
    }

    posix_spawn_file_actions_t Actions;
    posix_spawn_file_actions_init(&Actions);
    posix_spawn_file_actions_adddup2(&Actions, ToChild[0], 0);
    posix_spawn_file_actions_adddup2(&Actions, FromChild[1], 1);
    // Close every pipe end in the child beyond the dup2'ed stdio; a
    // child holding our read/write ends would keep pipes open past a
    // sibling worker's death and mask its EOF.
    for (int Fd : {ToChild[0], ToChild[1], FromChild[0], FromChild[1]})
      posix_spawn_file_actions_addclose(&Actions, Fd);

    std::vector<char *> CArgv;
    CArgv.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      CArgv.push_back(const_cast<char *>(A.c_str()));
    CArgv.push_back(nullptr);

    pid_t Pid = -1;
    int Rc = ::posix_spawn(&Pid, CArgv[0], &Actions, nullptr, CArgv.data(),
                           environ);
    posix_spawn_file_actions_destroy(&Actions);
    ::close(ToChild[0]);
    ::close(FromChild[1]);
    if (Rc != 0) {
      ::close(ToChild[1]);
      ::close(FromChild[0]);
      Err = "failed to spawn '" + Argv[0] + "': " + std::strerror(Rc);
      return false;
    }
    // Our pipe ends go non-blocking so the frame transport's deadline
    // stays in charge: a blocking write of a >PIPE_BUF frame into a full
    // pipe (hung worker not draining) would otherwise block inside the
    // syscall past any poll() timeout. The child's stdio stays blocking.
    ::fcntl(ToChild[1], F_SETFL, O_NONBLOCK);
    ::fcntl(FromChild[0], F_SETFL, O_NONBLOCK);
    Out.Pid = Pid;
    Out.WriteFd = ToChild[1];
    Out.ReadFd = FromChild[0];
    return true;
  }

  std::mutex M;
  std::map<std::string, std::vector<Worker>> Idle;
};

//===----------------------------------------------------------------------===//
// The adapter tool
//===----------------------------------------------------------------------===//

class SubprocessDiffTool : public DiffTool {
public:
  explicit SubprocessDiffTool(SubprocessToolSpec Spec)
      : Spec(std::move(Spec)) {}

  const char *getName() const override { return Spec.Name.c_str(); }
  ToolTraits getTraits() const override { return Spec.Traits; }

  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override {
    DiffWireRequest Req;
    Req.Tool = Spec.RemoteTool.empty() ? Spec.Name : Spec.RemoteTool;
    Req.A = A;
    Req.FA = FA;
    Req.B = B;
    Req.FB = FB;
    std::vector<uint8_t> Payload = encodeDiffRequest(Req);

    std::vector<std::string> Argv = workerArgv();
    unsigned TimeoutMs = Spec.TimeoutMs ? Spec.TimeoutMs
                                        : GlobalTimeoutMs.load();
    int Deadline = TimeoutMs == 0 ? -1 : static_cast<int>(TimeoutMs);

    // A crashed worker (EOF) is respawned and the request retried once —
    // the retry bypasses the idle pool, so it always gets a fresh
    // process. A timeout is not retried: a deterministic hang would just
    // double the stall, and the task must fail loudly instead.
    std::string LastErr;
    for (int Attempt = 0; Attempt != 2; ++Attempt) {
      Worker W;
      std::string Err;
      if (!WorkerPool::instance().acquire(Argv, W, Err,
                                          /*ForceSpawn=*/Attempt != 0))
        throw DiffToolError(describe("spawn failed", Err));

      RoundTrips.fetch_add(1, std::memory_order_relaxed);
      // One deadline spans the whole round trip: the read gets whatever
      // the write left of the budget, so TimeoutMs caps the request, not
      // each direction separately.
      auto Start = std::chrono::steady_clock::now();
      FrameIOResult IO = writeDiffFrame(W.WriteFd, Payload, Deadline, Err);
      std::vector<uint8_t> RespBytes;
      if (IO == FrameIOResult::Ok) {
        int ReadBudget = Deadline;
        if (Deadline >= 0) {
          auto Spent =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
          ReadBudget = Spent >= Deadline
                           ? 0
                           : Deadline - static_cast<int>(Spent);
        }
        IO = readDiffFrame(W.ReadFd, RespBytes, ReadBudget, Err);
      }

      if (IO == FrameIOResult::Timeout) {
        WorkerPool::destroy(W);
        throw DiffToolError(describe(
            "worker timed out after " + std::to_string(TimeoutMs) + " ms",
            Err));
      }
      if (IO == FrameIOResult::Eof) {
        WorkerPool::destroy(W);
        LastErr = describe("worker died", Err);
        continue; // Respawn and retry once.
      }
      if (IO != FrameIOResult::Ok) {
        WorkerPool::destroy(W);
        throw DiffToolError(
            describe(std::string("transport ") + frameIOResultName(IO),
                     Err));
      }

      DiffWireResponse Resp;
      bool Decoded = false;
      try {
        Decoded = decodeDiffResponse(RespBytes, Resp, Err);
      } catch (const std::exception &E) {
        // A corrupt frame can fail mid-decode with bad_alloc/length_error
        // (absurd element counts); that is a backend failure, and it must
        // surface as one — never escape the per-task catch.
        Err = E.what();
      }
      if (!Decoded) {
        WorkerPool::destroy(W);
        throw DiffToolError(describe("malformed response", Err));
      }
      WorkerPool::instance().release(Argv, W);
      if (!Resp.Ok)
        throw DiffToolError(describe("worker error", Resp.Error));
      return std::move(Resp.Result);
    }
    throw DiffToolError(LastErr);
  }

private:
  std::vector<std::string> workerArgv() const {
    if (!Spec.Command.empty())
      return Spec.Command;
    return {defaultDiffWorkerPath(), "--tool",
            Spec.RemoteTool.empty() ? Spec.Name : Spec.RemoteTool};
  }

  std::string describe(const std::string &What,
                       const std::string &Detail) const {
    std::string S = "subprocess tool '" + Spec.Name + "': " + What;
    if (!Detail.empty())
      S += " (" + Detail + ")";
    return S;
  }

  SubprocessToolSpec Spec;
};

} // namespace

namespace {

/// Factory closure + name bookkeeping shared by both registration paths.
DiffToolFactory makeFactory(const SubprocessToolSpec &Spec) {
  SubprocessToolSpec Copy = Spec;
  {
    SubprocessNames &N = subprocessNames();
    std::lock_guard<std::mutex> Lock(N.M);
    N.Names.insert(Copy.Name);
  }
  return [Copy] { return std::make_unique<SubprocessDiffTool>(Copy); };
}

} // namespace

bool khaos::registerSubprocessDiffTool(const SubprocessToolSpec &Spec) {
  return registerDiffTool(Spec.Name, makeFactory(Spec));
}

bool khaos::isSubprocessDiffTool(const std::string &Name) {
  SubprocessNames &N = subprocessNames();
  std::lock_guard<std::mutex> Lock(N.M);
  return N.Names.count(Name) != 0;
}

void khaos::setDiffWorkerTimeoutMs(unsigned Ms) { GlobalTimeoutMs = Ms; }

unsigned khaos::diffWorkerTimeoutMs() { return GlobalTimeoutMs.load(); }

std::string khaos::defaultDiffWorkerPath() {
  if (const char *Env = std::getenv("KHAOS_DIFF_WORKER"))
    if (Env[0] != '\0')
      return Env;
  // Next to the running executable (tests, benches and the worker all
  // land in the same build directory).
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    std::string Path(Buf);
    size_t Slash = Path.rfind('/');
    if (Slash != std::string::npos)
      return Path.substr(0, Slash + 1) + "khaos-diff-worker";
  }
  return "khaos-diff-worker"; // Fall back to $PATH.
}

uint64_t khaos::diffWorkerRoundTrips() {
  return RoundTrips.load(std::memory_order_relaxed);
}

void khaos::shutdownDiffWorkers() { WorkerPool::instance().shutdownIdle(); }

void khaos::appendBuiltinSubprocessTools(
    std::vector<std::pair<std::string, DiffToolFactory>> &Tools) {
  // Out-of-process twins of the in-process tools, served by
  // khaos-diff-worker over the wire protocol and bit-identical to their
  // in-process counterparts (CI diffs each pair through fig8). Traits are
  // copied from a throwaway in-process instance — direct factory calls,
  // no registry re-entry, no process spawn — so a twin can never drift
  // from its tool's declarations.
  auto Twin = [&Tools](const char *Name, const char *Remote,
                       std::unique_ptr<DiffTool> InProcess) {
    SubprocessToolSpec Spec;
    Spec.Name = Name;
    Spec.RemoteTool = Remote;
    Spec.Traits = InProcess->getTraits();
    Tools.emplace_back(Spec.Name, makeFactory(Spec));
  };
  Twin("safe-oop", "SAFE", createSafeTool());
  Twin("jtrans-oop", "jtrans", createJTransTool());
  Twin("orcas-oop", "orcas", createOrcasTool());
  Twin("semdiff-oop", "semdiff", createSemDiffTool());
}
