//===- diffing/BinDiffTool.cpp - BinDiff-style matching --------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Industry-tool analogue (zynamics BinDiff): exploits symbol names when
/// present, matches the (#blocks, #edges, #calls) triple, and propagates
/// along the call graph. Whole-binary similarity is the size-weighted
/// structural similarity of the greedy 1:1 matching — the score Fig. 9
/// compares across compiler options.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace khaos;

namespace {

class BinDiffTool : public DiffTool {
public:
  const char *getName() const override { return "BinDiff"; }
  ToolTraits getTraits() const override {
    ToolTraits T;
    T.UsesSymbols = true;
    T.UsesCallGraph = true;
    return T;
  }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;

private:
  static double tripleSimilarity(const FunctionFeatures &X,
                                 const FunctionFeatures &Y);
  static double structuralSimilarity(const FunctionFeatures &X,
                                     const FunctionFeatures &Y);
};

double BinDiffTool::tripleSimilarity(const FunctionFeatures &X,
                                     const FunctionFeatures &Y) {
  double DB = std::abs((int)X.NumBlocks - (int)Y.NumBlocks);
  double DE = std::abs((int)X.NumEdges - (int)Y.NumEdges);
  double DC = std::abs((int)X.NumCalls - (int)Y.NumCalls);
  double Total = X.NumBlocks + Y.NumBlocks + X.NumEdges + Y.NumEdges +
                 X.NumCalls + Y.NumCalls + 1.0;
  return 1.0 - (DB + DE + DC) / Total;
}

double BinDiffTool::structuralSimilarity(const FunctionFeatures &X,
                                         const FunctionFeatures &Y) {
  double Triple = tripleSimilarity(X, Y);
  double Hist = cosineSimilarity(X.OpcodeHist, Y.OpcodeHist);
  double DegIn = 1.0 - std::abs((int)X.CallGraphIn - (int)Y.CallGraphIn) /
                           (X.CallGraphIn + Y.CallGraphIn + 1.0);
  double DegOut =
      1.0 - std::abs((int)X.CallGraphOut - (int)Y.CallGraphOut) /
                (X.CallGraphOut + Y.CallGraphOut + 1.0);
  double Mix = 0.45 * Triple + 0.35 * Hist + 0.1 * DegIn + 0.1 * DegOut;
  // BinDiff's MD-index-style similarity collapses when the CFG shape is
  // restructured (the paper's Fig. 9 relies on this); the multiplicative
  // shape affinity models that cliff.
  return Mix * shapeAffinity(X, Y);
}

DiffResult BinDiffTool::diff(const BinaryImage & /*A*/,
                             const ImageFeatures &FA,
                             const BinaryImage &B,
                             const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  // Pass 1: name-anchored matches (the "symbol relying" behaviour the
  // paper calls out in Table 1).
  std::vector<int> NameMatch(NA, -1);
  for (size_t I = 0; I != NA; ++I) {
    auto It = B.FunctionIndex.find(FA.Funcs[I].Name);
    if (It != B.FunctionIndex.end())
      NameMatch[I] = static_cast<int>(It->second);
  }

  // Full similarity matrix with the name bonus and a call-graph
  // propagation term: callees matched by name raise confidence.
  std::vector<std::vector<double>> Sim(NA, std::vector<double>(NB, 0.0));
  for (size_t I = 0; I != NA; ++I) {
    for (size_t J = 0; J != NB; ++J) {
      double S = structuralSimilarity(FA.Funcs[I], FB.Funcs[J]);
      if (NameMatch[I] == (int)J)
        S = 0.35 + 0.65 * S;
      // Call-graph propagation: common named callees.
      if (!FA.Funcs[I].Callees.empty() && !FB.Funcs[J].Callees.empty()) {
        std::set<std::string> ACallees, Common;
        for (uint32_t C : FA.Funcs[I].Callees)
          ACallees.insert(FA.Funcs[C].Name);
        unsigned Shared = 0;
        for (uint32_t C : FB.Funcs[J].Callees)
          if (ACallees.count(FB.Funcs[C].Name))
            ++Shared;
        S += 0.08 * Shared /
             std::max<size_t>(FA.Funcs[I].Callees.size(), 1);
      }
      Sim[I][J] = std::min(S, 1.0);
    }
  }

  // Rankings.
  for (size_t I = 0; I != NA; ++I) {
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) {
                       return Sim[I][X] > Sim[I][Y];
                     });
    R.Rankings[I] = std::move(Order);
  }

  // Greedy 1:1 matching for the whole-binary score, weighted by size.
  std::vector<std::tuple<double, size_t, size_t>> Cands;
  for (size_t I = 0; I != NA; ++I)
    for (size_t J = 0; J != NB; ++J)
      if (Sim[I][J] > 0.1)
        Cands.push_back({Sim[I][J], I, J});
  std::stable_sort(Cands.begin(), Cands.end(),
                   [](const auto &X, const auto &Y) {
                     return std::get<0>(X) > std::get<0>(Y);
                   });
  std::vector<bool> UsedA(NA, false), UsedB(NB, false);
  double Weighted = 0.0, TotalWeight = 0.0;
  for (size_t I = 0; I != NA; ++I)
    TotalWeight += FA.Funcs[I].NumInsts;
  for (const auto &[S, I, J] : Cands) {
    if (UsedA[I] || UsedB[J])
      continue;
    UsedA[I] = true;
    UsedB[J] = true;
    Weighted += S * FA.Funcs[I].NumInsts;
  }
  R.WholeBinarySimilarity = TotalWeight > 0 ? Weighted / TotalWeight : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createBinDiffTool() {
  return std::make_unique<BinDiffTool>();
}
