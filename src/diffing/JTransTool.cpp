//===- diffing/JTransTool.cpp - jTrans-style transformer analogue ----------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jTrans (Wang et al., ISSTA'22) analogue: a BERT-style transformer whose
/// signature trick is *jump-target awareness* — the embedding of a jump
/// operand is tied to the positional embedding of its target instruction,
/// so the model sees where control transfers land, not just that a jump
/// exists. The deterministic stand-in reduces the model's two levers to
/// pure functions over the Embedding infrastructure:
///
///   * positional encodings  -> coarse relative-position buckets folded
///     into the token vocabulary (positionBucket), including a dedicated
///     jump-target vocabulary: each terminator contributes tokens pairing
///     its branch opcode with the position bucket of every successor
///     block's first instruction;
///   * self-attention pooling -> a softmax over each token's dot product
///     with the function's mean token vector (softmaxWeights), so tokens
///     that agree with the function's overall signature dominate the
///     pooled embedding the way high-attention tokens dominate [CLS].
///
/// Sequence models survive intra-procedural shuffling well (relative
/// buckets barely move) but lose the thread when fission/fusion splits or
/// concatenates token streams — both the mean-vector query and the size
/// affinity shift, which is the degradation Table 1's learned-tool rows
/// measure.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "diffing/Embedding.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace khaos;

namespace {

/// Token-vocabulary namespaces. Disjoint offsets keep the class, raw,
/// positional and jump-target vocabularies from colliding in tokenVector's
/// hash space.
constexpr uint64_t ClassVocab = 100;
constexpr uint64_t PositionVocab = 0x3000;
constexpr uint64_t JumpVocab = 0x4000;

class JTransTool : public DiffTool {
public:
  const char *getName() const override { return "jtrans"; }
  ToolTraits getTraits() const override {
    ToolTraits T;
    T.TimeConsuming = true; // Transformer inference (Table-1 "time" column).
    return T;
  }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;

private:
  static std::vector<double> embed(const MFunction &MF,
                                   const FunctionFeatures &FF);
};

std::vector<double> JTransTool::embed(const MFunction &MF,
                                      const FunctionFeatures &FF) {
  const size_t N = FF.TokenSeq.size();

  // Attention pass 1: per-token vectors and their mean — the stand-in for
  // the [CLS] query.
  std::vector<std::vector<double>> TokVecs(N);
  std::vector<double> Query(EmbeddingDim, 0.0);
  for (size_t I = 0; I != N; ++I) {
    TokVecs[I] = tokenVector(FF.TokenSeq[I]);
    for (unsigned K = 0; K != EmbeddingDim; ++K)
      Query[K] += TokVecs[I][K];
  }
  if (N > 0)
    for (double &Q : Query)
      Q /= (double)N; // Mean token vector: length-independent query.
  // Attention pass 2: softmax over query/token dot products. Token vectors
  // are unit-norm, so scores live in [-1, 1]; the temperature keeps the
  // pooling soft enough that no single opcode class monopolizes the
  // embedding while still favouring the function's signature tokens.
  std::vector<double> Scores(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    Scores[I] = dotProduct(Query, TokVecs[I]);
  std::vector<double> Attn = softmaxWeights(Scores, /*Temperature=*/0.25);
  // Rescale to sum N: appendSegment normalizes per segment, but the call
  // boost below must stay comparable across function sizes.
  for (double &W : Attn)
    W *= (double)N;

  std::vector<double> Classes(EmbeddingDim, 0.0);
  std::vector<double> Raw(EmbeddingDim, 0.0);
  std::vector<double> Positional(EmbeddingDim, 0.0);
  for (size_t I = 0; I != N; ++I) {
    double W = Attn[I];
    MOp Op = (MOp)FF.TokenSeq[I];
    if (Op == MOp::Call || Op == MOp::CallIndirect)
      W *= 2.0; // Call sites anchor the sequence, as in the SAFE surrogate.
    unsigned Class = robustTokenClass(FF.TokenSeq[I]);
    accumulateToken(Classes, ClassVocab + Class, W);
    accumulateToken(Raw, FF.TokenSeq[I], W);
    // Position-aware vocabulary: class tokens paired with their coarse
    // relative bucket. Bogus/substituted instructions shift buckets only
    // near boundaries; relocation to another function reshuffles them all.
    accumulateToken(Positional,
                    bigramToken(PositionVocab + Class, positionBucket(I, N)),
                    0.8 * W);
  }

  // Jump-target-aware vocabulary: each block terminator that transfers
  // control contributes a token pairing the branch opcode with the
  // *target's* position bucket — the analogue of jTrans sharing parameters
  // between jump operands and target positional embeddings.
  std::vector<double> Jumps(EmbeddingDim, 0.0);
  std::vector<size_t> BlockStart(MF.Blocks.size() + 1, 0);
  for (size_t BI = 0; BI != MF.Blocks.size(); ++BI)
    BlockStart[BI + 1] = BlockStart[BI] + MF.Blocks[BI].Insts.size();
  for (size_t BI = 0; BI != MF.Blocks.size(); ++BI) {
    const MBlock &B = MF.Blocks[BI];
    if (B.Insts.empty())
      continue;
    MOp Term = B.Insts.back().Op;
    if (Term != MOp::Jmp && Term != MOp::Jcc)
      continue;
    for (uint32_t S : B.Succs)
      if (S < MF.Blocks.size())
        accumulateToken(Jumps,
                        bigramToken(JumpVocab + (uint64_t)Term,
                                    positionBucket(BlockStart[S], N)));
  }

  // Distinctive constants, as in the other learned-model surrogates.
  std::vector<double> Imms(EmbeddingDim, 0.0);
  for (int64_t V : FF.Immediates)
    accumulateToken(Imms, 0x1000000ull + static_cast<uint64_t>(V));

  std::vector<double> Out;
  appendSegment(Out, std::move(Classes), 1.0);
  appendSegment(Out, std::move(Raw), 0.4);
  appendSegment(Out, std::move(Positional), 0.5);
  appendSegment(Out, std::move(Jumps), 0.6);
  appendSegment(Out, std::move(Imms), 0.7);
  return Out;
}

DiffResult JTransTool::diff(const BinaryImage &A, const ImageFeatures &FA,
                            const BinaryImage &B,
                            const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  std::vector<std::vector<double>> EA(NA), EB(NB);
  for (size_t I = 0; I != NA; ++I)
    EA[I] = embed(A.Functions[I], FA.Funcs[I]);
  for (size_t J = 0; J != NB; ++J)
    EB[J] = embed(B.Functions[J], FB.Funcs[J]);

  double TopSum = 0.0;
  for (size_t I = 0; I != NA; ++I) {
    std::vector<double> Sim(NB);
    for (size_t J = 0; J != NB; ++J)
      // A sequence model is CFG-agnostic, so the discount is the token
      // *length* mismatch, not the CFG shape: fission halves and fusion
      // doubles the stream, which is exactly where jTrans loses recall.
      Sim[J] = cosineSimilarity(EA[I], EB[J]) *
               std::pow(sizeAffinity(FA.Funcs[I].NumInsts + 1.0,
                                     FB.Funcs[J].NumInsts + 1.0),
                        0.75);
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) { return Sim[X] > Sim[Y]; });
    if (!Order.empty())
      TopSum += std::max(Sim[Order.front()], 0.0);
    R.Rankings[I] = std::move(Order);
  }
  R.WholeBinarySimilarity = NA ? TopSum / NA : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createJTransTool() {
  return std::make_unique<JTransTool>();
}
