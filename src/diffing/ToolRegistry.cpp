//===- diffing/ToolRegistry.cpp - Tool construction --------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"

using namespace khaos;

DiffTool::~DiffTool() = default;

std::vector<std::unique_ptr<DiffTool>> khaos::createAllDiffTools() {
  std::vector<std::unique_ptr<DiffTool>> Tools;
  Tools.push_back(createBinDiffTool());
  Tools.push_back(createVulSeekerTool());
  Tools.push_back(createAsm2VecTool());
  Tools.push_back(createSafeTool());
  Tools.push_back(createDeepBinDiffTool());
  return Tools;
}
