//===- diffing/ToolRegistry.cpp - Diffing tool factory registry -----------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String-keyed factory registry behind the DiffTool surface. The five
/// paper tools are registered lazily on first access, in Table-1 order;
/// additional backends register at any time and slot into every matrix
/// bench without further wiring.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"

#include "diffing/SubprocessDiffTool.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace khaos;

DiffTool::~DiffTool() = default;

const char *khaos::toolGranularityName(ToolGranularity G) {
  switch (G) {
  case ToolGranularity::Function:
    return "function";
  case ToolGranularity::BasicBlock:
    return "basic block";
  }
  return "?";
}

namespace {

struct Registry {
  std::mutex M;
  /// Registration order matters (figure legends, Table 1); keep a vector
  /// of (name, factory) rather than a map.
  std::vector<std::pair<std::string, DiffToolFactory>> Tools;

  DiffToolFactory *find(const std::string &Name) {
    for (auto &Entry : Tools)
      if (Entry.first == Name)
        return &Entry.second;
    return nullptr;
  }
};

Registry &registry() {
  static Registry R;
  // Thread-safe one-time seeding (C++ guarantees static-local init runs
  // once): the paper's five confrontation targets, in Table-1 order.
  static const bool Seeded = [] {
    R.Tools.emplace_back("BinDiff", createBinDiffTool);
    R.Tools.emplace_back("VulSeeker", createVulSeekerTool);
    R.Tools.emplace_back("Asm2Vec", createAsm2VecTool);
    R.Tools.emplace_back("SAFE", createSafeTool);
    R.Tools.emplace_back("DeepBinDiff", createDeepBinDiffTool);
    // Post-paper backends follow the Table-1 five: the jTrans-style
    // transformer analogue and the ORCAS-style dominance-enhanced
    // semantic-graph matcher.
    R.Tools.emplace_back("jtrans", createJTransTool);
    R.Tools.emplace_back("orcas", createOrcasTool);
    // SemDiff-style key-semantics-graph matcher: slices each function to
    // the blocks feeding calls, memory writes and returns before matching.
    R.Tools.emplace_back("semdiff", createSemDiffTool);
    // Subprocess-backed builtins seed after the Table-1 block
    // (registration order is the figure order). Appended directly — a
    // registerDiffTool call from inside this initializer would re-enter
    // the Seeded guard.
    appendBuiltinSubprocessTools(R.Tools);
    return true;
  }();
  (void)Seeded;
  return R;
}

} // namespace

bool khaos::registerDiffTool(const std::string &Name,
                             DiffToolFactory Factory) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  if (R.find(Name))
    return false;
  R.Tools.emplace_back(Name, std::move(Factory));
  return true;
}

std::unique_ptr<DiffTool> khaos::tryCreateDiffTool(const std::string &Name) {
  // Copy the factory out and invoke it unlocked: a composing backend's
  // factory may legitimately call back into the registry (e.g. an
  // ensemble tool wrapping "BinDiff"), and per-task tool construction
  // must not serialize on the registry mutex.
  DiffToolFactory Factory;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    if (DiffToolFactory *F = R.find(Name))
      Factory = *F;
  }
  return Factory ? Factory() : nullptr;
}

std::unique_ptr<DiffTool> khaos::createDiffTool(const std::string &Name) {
  std::unique_ptr<DiffTool> Tool = tryCreateDiffTool(Name);
  if (!Tool) {
    std::fprintf(stderr,
                 "createDiffTool: unknown diffing tool '%s' (registered:",
                 Name.c_str());
    for (const std::string &Known : registeredToolNames())
      std::fprintf(stderr, " %s", Known.c_str());
    std::fprintf(stderr, ")\n");
    std::abort();
  }
  return Tool;
}

bool khaos::isDiffToolRegistered(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.find(Name) != nullptr;
}

std::vector<std::string> khaos::registeredToolNames() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<std::string> Names;
  Names.reserve(R.Tools.size());
  for (const auto &Entry : R.Tools)
    Names.push_back(Entry.first);
  return Names;
}

std::vector<std::unique_ptr<DiffTool>> khaos::createAllDiffTools() {
  // Snapshot the factories under the lock, instantiate unlocked (see
  // tryCreateDiffTool).
  std::vector<DiffToolFactory> Factories;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    Factories.reserve(R.Tools.size());
    for (const auto &Entry : R.Tools)
      Factories.push_back(Entry.second);
  }
  std::vector<std::unique_ptr<DiffTool>> Tools;
  Tools.reserve(Factories.size());
  for (const DiffToolFactory &F : Factories)
    Tools.push_back(F());
  return Tools;
}
