//===- diffing/SemDiffTool.cpp - Key-semantics-graph diffing ---------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SemDiff-style backend: semantic slicing before matching. The observable
/// behaviour of a function flows through few places — the values it feeds
/// into calls, the stores it makes to memory, and what it returns — so the
/// tool reduces every function to its *key-semantics graph* first: the
/// blocks that host a call, an indirect call, a memory write or a return
/// (plus the entry and any block without successors), connected by the
/// contracted CFG paths between them. Everything else — the opaque
/// predicates, the dispatcher scaffolding, the flattening switch blocks
/// that intra-procedural obfuscators add — is plumbing between key blocks
/// and collapses into edges of the reduced graph.
///
/// Nodes keep three labels: the semantic-category histogram of the block
/// (semanticHistogram), the block's dominator depth in the *full* CFG
/// (computeBlockIDoms / dominatorDepths — depth survives block insertion
/// far better than layout order), and a kind bitmask recording *why* the
/// block is key (call / store / return / entry / exit). Reduced graphs are
/// matched with the same seeded greedy graph-edit scheme as the ORCAS
/// backend — entries seed, matched pairs propose their reduced successors,
/// ties break on index order so the result is a pure function of the two
/// graphs — and the per-pair score mixes the graph-edit similarity with a
/// whole-function opcode-histogram cosine and a call-graph context term.
///
/// Inter-procedural obfuscation attacks exactly this reduction: fission
/// turns a store-reaching path into a call to a new function (the key
/// block's kind flips from store to call), and fusion merges two key
/// graphs under one dispatcher — which is why the paper's thesis predicts
/// even semantics-sliced matchers degrade under Khaos.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "codegen/TargetISA.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace khaos;

namespace {

/// Why a block is part of the key-semantics graph.
enum KeyKind : uint8_t {
  KindCall = 1,   ///< Hosts a direct or indirect call.
  KindStore = 2,  ///< Writes memory.
  KindReturn = 4, ///< Returns.
  KindEntry = 8,  ///< Function entry (always key: the seed pair).
  KindExit = 16,  ///< No successors (the function's sinks are observable).
};

/// Reduced key-semantics graph of one function.
struct KeyGraph {
  std::vector<std::vector<double>> NodeSem; ///< Semantic hists of key blocks.
  std::vector<int32_t> Depth; ///< Dominator depth in the full CFG.
  std::vector<uint8_t> Kind;  ///< KeyKind bitmask.
  std::vector<std::vector<uint32_t>> Succs; ///< Contracted CFG edges.
  size_t NumEdges = 0;
};

size_t hist(const std::vector<double> &H, MOp Op) {
  size_t I = static_cast<size_t>(Op);
  return I < H.size() && H[I] > 0.0 ? 1 : 0;
}

KeyGraph buildKeyGraph(const FunctionFeatures &FF) {
  KeyGraph G;
  size_t N = FF.BlockHists.size();
  if (N == 0)
    return G;

  // Classify blocks. The entry and every successor-less block are key even
  // without key instructions, so the graph always has a seed node and the
  // function's sinks survive the contraction.
  std::vector<uint8_t> Kind(N, 0);
  std::vector<int32_t> KeyIdx(N, -1);
  for (size_t B = 0; B != N; ++B) {
    const std::vector<double> &H = FF.BlockHists[B];
    uint8_t K = 0;
    if (hist(H, MOp::Call) || hist(H, MOp::CallIndirect))
      K |= KindCall;
    if (hist(H, MOp::StoreM))
      K |= KindStore;
    if (hist(H, MOp::Ret))
      K |= KindReturn;
    if (B == 0)
      K |= KindEntry;
    if (B >= FF.BlockSuccs.size() || FF.BlockSuccs[B].empty())
      K |= KindExit;
    Kind[B] = K;
    if (K) {
      KeyIdx[B] = static_cast<int32_t>(G.Kind.size());
      G.Kind.push_back(K);
    }
  }

  std::vector<int32_t> IDoms = computeBlockIDoms(FF.BlockSuccs);
  std::vector<int32_t> Depths = dominatorDepths(IDoms);
  size_t NK = G.Kind.size();
  G.NodeSem.reserve(NK);
  G.Depth.reserve(NK);
  G.Succs.resize(NK);
  for (size_t B = 0; B != N; ++B) {
    if (KeyIdx[B] < 0)
      continue;
    G.NodeSem.push_back(semanticHistogram(FF.BlockHists[B]));
    G.Depth.push_back(Depths[B]);
  }

  // Contract: key block K gains an edge to every key block reachable from
  // its CFG successors through non-key blocks only. BFS with a visited
  // set, targets sorted for determinism.
  std::vector<uint8_t> Visited(N, 0);
  std::vector<uint32_t> Work;
  for (size_t B = 0; B != N; ++B) {
    if (KeyIdx[B] < 0)
      continue;
    std::fill(Visited.begin(), Visited.end(), 0);
    Work.clear();
    if (B < FF.BlockSuccs.size())
      for (uint32_t S : FF.BlockSuccs[B])
        if (S < N && !Visited[S]) {
          Visited[S] = 1;
          Work.push_back(S);
        }
    std::vector<uint32_t> &Out = G.Succs[static_cast<size_t>(KeyIdx[B])];
    for (size_t W = 0; W != Work.size(); ++W) {
      uint32_t Cur = Work[W];
      if (KeyIdx[Cur] >= 0) {
        Out.push_back(static_cast<uint32_t>(KeyIdx[Cur]));
        continue; // Paths stop at the first key block they hit.
      }
      if (Cur < FF.BlockSuccs.size())
        for (uint32_t S : FF.BlockSuccs[Cur])
          if (S < N && !Visited[S]) {
            Visited[S] = 1;
            Work.push_back(S);
          }
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    G.NumEdges += Out.size();
  }
  return G;
}

/// Node similarity: semantic-label cosine, scaled by kind agreement
/// (Jaccard over the KeyKind bits — a store block matching a call block is
/// weaker evidence than store-for-store) and damped by dominator-depth
/// distance.
double nodeSimilarity(const KeyGraph &A, uint32_t I, const KeyGraph &B,
                      uint32_t J) {
  double Sem = cosineSimilarity(A.NodeSem[I], B.NodeSem[J]);
  if (Sem <= 0.0)
    return 0.0;
  unsigned Inter = static_cast<unsigned>(A.Kind[I] & B.Kind[J]);
  unsigned Union = static_cast<unsigned>(A.Kind[I] | B.Kind[J]);
  double Jac = Union ? (double)__builtin_popcount(Inter) /
                           (double)__builtin_popcount(Union)
                     : 1.0;
  double Sim = Sem * (0.5 + 0.5 * Jac);
  int32_t DA = A.Depth[I], DB = B.Depth[J];
  if (DA < 0 || DB < 0)
    return 0.25 * Sim; // Unreachable block: weak evidence only.
  return Sim * std::exp(-0.2 * std::abs(DA - DB));
}

/// Seeded greedy matching over two reduced graphs; graph-edit similarity
/// in [0, 1]. Structure mirrors OrcasTool::graphEditSimilarity; the
/// frontier expands along contracted edges only.
double keyGraphSimilarity(const KeyGraph &A, const KeyGraph &B) {
  size_t NA = A.NodeSem.size(), NB = B.NodeSem.size();
  if (NA == 0 || NB == 0)
    return NA == NB ? 1.0 : 0.0;

  constexpr double MinNodeSim = 0.1;
  std::vector<int32_t> MatchA(NA, -1), MatchB(NB, -1);
  std::vector<std::pair<uint32_t, uint32_t>> Matched;
  Matched.reserve(std::min(NA, NB));
  double NodeScore = 0.0;

  struct Candidate {
    std::pair<uint32_t, uint32_t> Pair;
    double Sim;
  };
  std::vector<Candidate> Frontier;
  auto Adopt = [&](uint32_t I, uint32_t J, double Sim) {
    MatchA[I] = static_cast<int32_t>(J);
    MatchB[J] = static_cast<int32_t>(I);
    Matched.push_back({I, J});
    NodeScore += Sim;
    for (uint32_t SA : A.Succs[I])
      for (uint32_t SB : B.Succs[J]) {
        double S = nodeSimilarity(A, SA, B, SB);
        if (S > MinNodeSim)
          Frontier.push_back({{SA, SB}, S});
      }
  };
  // Entries always correspond (node 0 is the entry's key index: block 0 is
  // key and classified first).
  double EntrySim = nodeSimilarity(A, 0, B, 0);
  Adopt(0, 0, std::max(EntrySim, MinNodeSim));

  for (;;) {
    Frontier.erase(std::remove_if(Frontier.begin(), Frontier.end(),
                                  [&](const Candidate &C) {
                                    return MatchA[C.Pair.first] >= 0 ||
                                           MatchB[C.Pair.second] >= 0;
                                  }),
                   Frontier.end());
    double BestSim = MinNodeSim;
    size_t BestIdx = SIZE_MAX;
    for (size_t C = 0; C != Frontier.size(); ++C) {
      if (Frontier[C].Sim > BestSim ||
          (Frontier[C].Sim == BestSim && BestIdx != SIZE_MAX &&
           Frontier[C].Pair < Frontier[BestIdx].Pair))
        BestSim = Frontier[C].Sim, BestIdx = C;
    }
    if (BestIdx == SIZE_MAX)
      break;
    auto [I, J] = Frontier[BestIdx].Pair;
    Adopt(I, J, BestSim);
  }

  size_t Preserved = 0;
  auto HasEdge = [](const std::vector<uint32_t> &Edges, uint32_t To) {
    return std::find(Edges.begin(), Edges.end(), To) != Edges.end();
  };
  for (auto [I, J] : Matched)
    for (uint32_t SA : A.Succs[I])
      if (MatchA[SA] >= 0 &&
          HasEdge(B.Succs[J], static_cast<uint32_t>(MatchA[SA])))
        ++Preserved;
  double EdgeScore = A.NumEdges + B.NumEdges == 0
                         ? 1.0
                         : 2.0 * (double)Preserved /
                               (double)(A.NumEdges + B.NumEdges);
  double MatchedNodeScore = 2.0 * NodeScore / (double)(NA + NB);
  return 0.65 * MatchedNodeScore + 0.35 * EdgeScore;
}

/// Call-graph context agreement in (0, 1]: in/out degree similarity.
double callContext(const FunctionFeatures &X, const FunctionFeatures &Y) {
  double In = 1.0 - std::abs((double)X.CallGraphIn - (double)Y.CallGraphIn) /
                        (X.CallGraphIn + Y.CallGraphIn + 1.0);
  double Out = 1.0 -
               std::abs((double)X.CallGraphOut - (double)Y.CallGraphOut) /
                   (X.CallGraphOut + Y.CallGraphOut + 1.0);
  return In * Out;
}

class SemDiffTool : public DiffTool {
public:
  const char *getName() const override { return "semdiff"; }
  ToolTraits getTraits() const override {
    ToolTraits T;
    T.TimeConsuming = true; // Per-pair graph contraction + matching.
    T.UsesCallGraph = true; // Call-context term + call-kind node labels.
    return T;
  }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;
};

DiffResult SemDiffTool::diff(const BinaryImage & /*A*/, const ImageFeatures &FA,
                             const BinaryImage & /*B*/,
                             const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  std::vector<KeyGraph> GA(NA), GB(NB);
  for (size_t I = 0; I != NA; ++I)
    GA[I] = buildKeyGraph(FA.Funcs[I]);
  for (size_t J = 0; J != NB; ++J)
    GB[J] = buildKeyGraph(FB.Funcs[J]);

  double TopSum = 0.0;
  for (size_t I = 0; I != NA; ++I) {
    std::vector<double> Sim(NB);
    for (size_t J = 0; J != NB; ++J) {
      // Cheap pre-filter as in the ORCAS backend: hopeless pairs never
      // reach the matcher, and their fallback score stays below any
      // matched pair's.
      double Gate = cosineSimilarity(FA.Funcs[I].SemanticVec,
                                     FB.Funcs[J].SemanticVec) *
                    shapeAffinity(FA.Funcs[I], FB.Funcs[J]);
      if (Gate < 0.005) {
        Sim[J] = 0.05 * std::max(Gate, 0.0);
        continue;
      }
      double Graph = keyGraphSimilarity(GA[I], GB[J]);
      double OpCos = cosineSimilarity(FA.Funcs[I].OpcodeHist,
                                      FB.Funcs[J].OpcodeHist);
      Sim[J] = (0.8 * Graph + 0.2 * std::max(OpCos, 0.0)) *
               (0.85 + 0.15 * callContext(FA.Funcs[I], FB.Funcs[J]));
    }
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) { return Sim[X] > Sim[Y]; });
    if (!Order.empty())
      TopSum += std::min(std::max(Sim[Order.front()], 0.0), 1.0);
    R.Rankings[I] = std::move(Order);
  }
  R.WholeBinarySimilarity = NA ? TopSum / NA : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createSemDiffTool() {
  return std::make_unique<SemDiffTool>();
}
