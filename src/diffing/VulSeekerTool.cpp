//===- diffing/VulSeekerTool.cpp - VulSeeker-style semantic features --------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VulSeeker (Gao et al., ASE'18) analogue: per-block semantic category
/// counts flow through the CFG ("semantic flow graph") into a function
/// embedding; similarity is a normalized distance between embeddings. No
/// symbols, no call graph (paper Table 1).
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "diffing/Embedding.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace khaos;

namespace {

class VulSeekerTool : public DiffTool {
public:
  const char *getName() const override { return "VulSeeker"; }
  ToolTraits getTraits() const override {
    ToolTraits T;
    T.TimeConsuming = true;
    T.MemoryConsuming = true;
    return T;
  }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;

private:
  static std::vector<double> embed(const FunctionFeatures &F);
};

/// Semantic-flow embedding: per-block category vectors smoothed over CFG
/// neighbours (one round), then pooled, with CFG shape appended.
std::vector<double> VulSeekerTool::embed(const FunctionFeatures &F) {
  size_t NB = F.BlockHists.size();
  std::vector<std::vector<double>> BlockVecs(
      NB, std::vector<double>(NumSemanticCategories, 0.0));
  for (size_t BI = 0; BI != NB; ++BI)
    for (unsigned Op = 0; Op != NumMOpcodes; ++Op)
      if (F.BlockHists[BI][Op] > 0.0)
        BlockVecs[BI][robustTokenClass(Op)] += F.BlockHists[BI][Op];

  // One propagation round along the CFG (successor smoothing).
  std::vector<std::vector<double>> Smoothed = BlockVecs;
  for (size_t BI = 0; BI != NB; ++BI)
    for (uint32_t S : F.BlockSuccs[BI])
      if (S < NB)
        for (unsigned K = 0; K != NumSemanticCategories; ++K)
          Smoothed[BI][K] += 0.3 * BlockVecs[S][K];

  std::vector<double> Pooled(NumSemanticCategories, 0.0);
  for (const auto &V : Smoothed)
    for (unsigned K = 0; K != NumSemanticCategories; ++K)
      Pooled[K] += V[K];

  // Assemble weighted segments: semantic profile and constants (the CFG
  // shape enters through the multiplicative shapeAffinity instead).
  std::vector<double> Imms(EmbeddingDim, 0.0);
  for (int64_t V : F.Immediates)
    accumulateToken(Imms, 0x1000000ull + static_cast<uint64_t>(V));
  std::vector<double> Out;
  appendSegment(Out, std::move(Pooled), 1.0);
  appendSegment(Out, std::move(Imms), 0.7);
  return Out;
}

DiffResult VulSeekerTool::diff(const BinaryImage & /*A*/,
                               const ImageFeatures &FA,
                               const BinaryImage & /*B*/,
                               const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  std::vector<std::vector<double>> EA(NA), EB(NB);
  for (size_t I = 0; I != NA; ++I)
    EA[I] = embed(FA.Funcs[I]);
  for (size_t J = 0; J != NB; ++J)
    EB[J] = embed(FB.Funcs[J]);

  double TopSum = 0.0;
  for (size_t I = 0; I != NA; ++I) {
    std::vector<double> Sim(NB);
    for (size_t J = 0; J != NB; ++J)
      Sim[J] = cosineSimilarity(EA[I], EB[J]) *
               shapeAffinity(FA.Funcs[I], FB.Funcs[J]);
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) {
                       return Sim[X] > Sim[Y];
                     });
    if (!Order.empty())
      TopSum += Sim[Order.front()];
    R.Rankings[I] = std::move(Order);
  }
  R.WholeBinarySimilarity = NA ? TopSum / NA : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createVulSeekerTool() {
  return std::make_unique<VulSeekerTool>();
}
