//===- diffing/Asm2VecTool.cpp - Asm2Vec-style embeddings --------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Asm2Vec (Ding et al., S&P'19) analogue: a PV-DM-style representation
/// approximated by hashing — unigram opcode vectors plus intra-block
/// bigram vectors aggregated over the function, cosine similarity. The
/// intra-block bigrams make it robust to block reordering but sensitive
/// to the instruction mix, matching the published behaviour against
/// intra-procedural obfuscation.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "diffing/Embedding.h"
#include "support/Statistics.h"

#include <cmath>

#include <algorithm>

using namespace khaos;

namespace {

class Asm2VecTool : public DiffTool {
public:
  const char *getName() const override { return "Asm2Vec"; }
  ToolTraits getTraits() const override { return {}; }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;

private:
  static std::vector<double> embed(const FunctionFeatures &F);
};

std::vector<double> Asm2VecTool::embed(const FunctionFeatures &F) {
  // Three normalized segments: robust token classes (substitution-proof),
  // raw opcodes (discriminative detail), and CFG/call shape — the part of
  // the representation intra-procedural obfuscation cannot disturb but
  // inter-procedural code motion does.
  std::vector<double> Classes(EmbeddingDim, 0.0);
  std::vector<double> Raw(EmbeddingDim, 0.0);
  for (size_t BI = 0; BI != F.BlockHists.size(); ++BI) {
    for (unsigned Op = 0; Op != NumMOpcodes; ++Op)
      if (F.BlockHists[BI][Op] > 0) {
        accumulateToken(Classes, 100 + robustTokenClass(Op),
                        F.BlockHists[BI][Op]);
        accumulateToken(Raw, Op, F.BlockHists[BI][Op]);
      }
  }
  // Sequence bigrams over class tokens (random-walk surrogate).
  for (size_t I = 0; I + 1 < F.TokenSeq.size(); ++I)
    accumulateToken(Classes,
                    bigramToken(robustTokenClass(F.TokenSeq[I]),
                                robustTokenClass(F.TokenSeq[I + 1])),
                    0.5);
  // Distinctive constants: preserved by intra-procedural obfuscation,
  // scattered across functions by fission/fusion.
  std::vector<double> Imms(EmbeddingDim, 0.0);
  for (int64_t V : F.Immediates)
    accumulateToken(Imms, 0x1000000ull + static_cast<uint64_t>(V));
  std::vector<double> Out;
  appendSegment(Out, std::move(Classes), 1.0);
  appendSegment(Out, std::move(Raw), 0.35);
  appendSegment(Out, std::move(Imms), 0.7);
  return Out;
}

DiffResult Asm2VecTool::diff(const BinaryImage & /*A*/,
                             const ImageFeatures &FA,
                             const BinaryImage & /*B*/,
                             const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  std::vector<std::vector<double>> EA(NA), EB(NB);
  for (size_t I = 0; I != NA; ++I)
    EA[I] = embed(FA.Funcs[I]);
  for (size_t J = 0; J != NB; ++J)
    EB[J] = embed(FB.Funcs[J]);

  double TopSum = 0.0;
  for (size_t I = 0; I != NA; ++I) {
    std::vector<double> Sim(NB);
    for (size_t J = 0; J != NB; ++J)
      Sim[J] = cosineSimilarity(EA[I], EB[J]) *
               std::pow(shapeAffinity(FA.Funcs[I], FB.Funcs[J]),
                        0.8);
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) {
                       return Sim[X] > Sim[Y];
                     });
    if (!Order.empty())
      TopSum += Sim[Order.front()];
    R.Rankings[I] = std::move(Order);
  }
  R.WholeBinarySimilarity = NA ? TopSum / NA : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createAsm2VecTool() {
  return std::make_unique<Asm2VecTool>();
}
