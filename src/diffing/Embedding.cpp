//===- diffing/Embedding.cpp - Deterministic token embeddings --------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "diffing/Embedding.h"

#include "support/RNG.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

using namespace khaos;

std::vector<double> khaos::tokenVector(uint64_t Token) {
  // Cache: the token universe is tiny (opcodes + bigrams). Guarded because
  // diffing tools run concurrently on the EvalScheduler pool; the value is
  // a pure function of Token, so contention never changes results.
  static std::mutex CacheMutex;
  static std::map<uint64_t, std::vector<double>> Cache;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Token);
    if (It != Cache.end())
      return It->second;
  }

  RNG Rng(Token * 0x9e3779b97f4a7c15ull + 0x1234);
  std::vector<double> V(EmbeddingDim);
  double Norm = 0.0;
  for (double &X : V) {
    X = Rng.nextDouble() * 2.0 - 1.0;
    Norm += X * X;
  }
  Norm = std::sqrt(Norm);
  if (Norm > 0)
    for (double &X : V)
      X /= Norm;
  std::lock_guard<std::mutex> Lock(CacheMutex);
  Cache[Token] = V;
  return V;
}

void khaos::accumulateToken(std::vector<double> &Acc, uint64_t Token,
                            double Scale) {
  std::vector<double> V = tokenVector(Token);
  if (Acc.size() != V.size())
    Acc.assign(V.size(), 0.0);
  for (unsigned I = 0; I != EmbeddingDim; ++I)
    Acc[I] += Scale * V[I];
}

uint64_t khaos::bigramToken(uint64_t A, uint64_t B) {
  return (A + 1) * 0x100000001b3ull ^ (B + 1) * 0x9e3779b97f4a7c15ull;
}

void khaos::appendSegment(std::vector<double> &Out,
                          std::vector<double> Segment, double Weight) {
  double Norm = 0.0;
  for (double X : Segment)
    Norm += X * X;
  Norm = std::sqrt(Norm);
  for (double X : Segment)
    Out.push_back(Norm > 0 ? Weight * X / Norm : 0.0);
}

double khaos::sizeAffinity(double SizeA, double SizeB) {
  if (SizeA <= 0 || SizeB <= 0)
    return 0.0;
  return 2.0 * std::min(SizeA, SizeB) / (SizeA + SizeB);
}

unsigned khaos::positionBucket(size_t Index, size_t Total) {
  if (Total <= 1)
    return 0;
  size_t Bucket = Index * NumPositionBuckets / Total;
  return static_cast<unsigned>(
      std::min<size_t>(Bucket, NumPositionBuckets - 1));
}

double khaos::dotProduct(const std::vector<double> &A,
                         const std::vector<double> &B) {
  double Dot = 0.0;
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I != N; ++I)
    Dot += A[I] * B[I];
  return Dot;
}

std::vector<double> khaos::softmaxWeights(const std::vector<double> &Scores,
                                          double Temperature) {
  std::vector<double> W(Scores.size(), 0.0);
  if (Scores.empty())
    return W;
  double Max = Scores.front();
  for (double S : Scores)
    Max = std::max(Max, S);
  double Sum = 0.0;
  for (size_t I = 0; I != Scores.size(); ++I) {
    W[I] = std::exp((Scores[I] - Max) / Temperature);
    Sum += W[I];
  }
  for (double &X : W)
    X /= Sum;
  return W;
}
