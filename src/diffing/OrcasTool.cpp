//===- diffing/OrcasTool.cpp - ORCAS-style semantic-graph matching ---------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ORCAS (arXiv 2506.06161) analogue: obfuscation-resilient binary diffing
/// by dominance-enhanced semantic-graph matching. Each function becomes a
/// graph whose nodes are basic blocks labelled with semantic-category
/// histograms (semanticHistogram over the per-block opcode histograms) and
/// whose edges are the CFG successor edges *plus* dominator-tree edges
/// (computeBlockIDoms — the machine-level mirror of analysis/
/// DominatorTree). Dominance is the enhancement that buys resilience:
/// intra-procedural obfuscation inserts and reorders blocks but rarely
/// changes who dominates whom, so dominator depth and dominator edges
/// survive where layout order does not.
///
/// Pairs are scored by *seeded graph-edit similarity*: matching starts
/// from the entry pair (entries always correspond), expands greedily along
/// CFG-successor and dominator-child edges of already-matched pairs —
/// always taking the highest-scoring consistent candidate, with index
/// order breaking ties deterministically — and scores the final matching
/// by matched-node similarity and preserved-edge ratio, i.e. one minus a
/// normalized edit cost. A call-graph context term (in/out degree
/// agreement, the CallGraph-derived features) rounds out the score:
/// fission and fusion rewrite exactly these — dominator subtrees leave for
/// new functions, fused CFGs merge under a dispatcher, and the call graph
/// gains/loses edges — which is why the paper expects even graph matchers
/// to degrade under inter-procedural obfuscation.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace khaos;

namespace {

/// Dominance-enhanced semantic graph of one function.
struct FuncGraph {
  std::vector<std::vector<double>> NodeSem; ///< Per-block semantic hists.
  std::vector<int32_t> Depth;               ///< Dominator-tree depth.
  std::vector<std::vector<uint32_t>> Succs; ///< CFG edges.
  std::vector<std::vector<uint32_t>> DomChildren; ///< Dominator edges.
  size_t NumEdges = 0; ///< CFG + dominator edges (match normalizer).
};

FuncGraph buildGraph(const FunctionFeatures &FF) {
  FuncGraph G;
  size_t N = FF.BlockHists.size();
  G.NodeSem.reserve(N);
  for (const std::vector<double> &H : FF.BlockHists)
    G.NodeSem.push_back(semanticHistogram(H));
  G.Succs = FF.BlockSuccs;
  std::vector<int32_t> IDoms = computeBlockIDoms(FF.BlockSuccs);
  G.Depth = dominatorDepths(IDoms);
  G.DomChildren.resize(N);
  for (size_t B = 1; B < N; ++B)
    if (IDoms[B] >= 0)
      G.DomChildren[static_cast<size_t>(IDoms[B])].push_back(
          static_cast<uint32_t>(B));
  for (size_t B = 0; B != N; ++B)
    G.NumEdges += G.Succs[B].size() + G.DomChildren[B].size();
  return G;
}

/// Node similarity: semantic-label agreement damped by dominator-depth
/// distance (a block that moved far across the dominator tree is a worse
/// correspondence even when its instruction mix matches).
double nodeSimilarity(const FuncGraph &A, uint32_t I, const FuncGraph &B,
                      uint32_t J) {
  double Sem = cosineSimilarity(A.NodeSem[I], B.NodeSem[J]);
  if (Sem <= 0.0)
    return 0.0;
  int32_t DA = A.Depth[I], DB = B.Depth[J];
  if (DA < 0 || DB < 0)
    return 0.25 * Sem; // Unreachable block: weak evidence only.
  return Sem * std::exp(-0.2 * std::abs(DA - DB));
}

/// Seeded greedy graph matching; returns the graph-edit similarity of the
/// best matching found, in [0, 1].
double graphEditSimilarity(const FuncGraph &A, const FuncGraph &B) {
  size_t NA = A.NodeSem.size(), NB = B.NodeSem.size();
  if (NA == 0 || NB == 0)
    return NA == NB ? 1.0 : 0.0;

  constexpr double MinNodeSim = 0.1;
  std::vector<int32_t> MatchA(NA, -1), MatchB(NB, -1);
  std::vector<std::pair<uint32_t, uint32_t>> Matched;
  Matched.reserve(std::min(NA, NB));
  double NodeScore = 0.0;

  // Candidate pairs proposed by already-matched pairs; the entry pair
  // seeds the expansion (function entries always correspond). Node
  // similarity is a pure function of the pair, so it is computed once at
  // push time and cached with the candidate.
  struct Candidate {
    std::pair<uint32_t, uint32_t> Pair;
    double Sim;
  };
  std::vector<Candidate> Frontier;
  auto Adopt = [&](uint32_t I, uint32_t J, double Sim) {
    MatchA[I] = static_cast<int32_t>(J);
    MatchB[J] = static_cast<int32_t>(I);
    Matched.push_back({I, J});
    NodeScore += Sim;
    auto Push = [&](uint32_t CI, uint32_t CJ) {
      double S = nodeSimilarity(A, CI, B, CJ);
      if (S > MinNodeSim)
        Frontier.push_back({{CI, CJ}, S});
    };
    for (uint32_t SA : A.Succs[I])
      for (uint32_t SB : B.Succs[J])
        if (SA < NA && SB < NB)
          Push(SA, SB);
    for (uint32_t CA : A.DomChildren[I])
      for (uint32_t CB : B.DomChildren[J])
        Push(CA, CB);
  };
  double EntrySim = nodeSimilarity(A, 0, B, 0);
  Adopt(0, 0, std::max(EntrySim, MinNodeSim));

  // Greedy expansion: scan the frontier for the best still-consistent
  // candidate, adopt it, repeat. Ties break on (A index, B index), so the
  // matching — and with it the whole DiffResult — is a pure function of
  // the two graphs. Candidates invalidated by an adoption are compacted
  // away up front, so each survives at most one scan beyond its last
  // consideration and similarities are never recomputed.
  for (;;) {
    Frontier.erase(std::remove_if(Frontier.begin(), Frontier.end(),
                                  [&](const Candidate &C) {
                                    return MatchA[C.Pair.first] >= 0 ||
                                           MatchB[C.Pair.second] >= 0;
                                  }),
                   Frontier.end());
    double BestSim = MinNodeSim;
    size_t BestIdx = SIZE_MAX;
    for (size_t C = 0; C != Frontier.size(); ++C) {
      if (Frontier[C].Sim > BestSim ||
          (Frontier[C].Sim == BestSim && BestIdx != SIZE_MAX &&
           Frontier[C].Pair < Frontier[BestIdx].Pair))
        BestSim = Frontier[C].Sim, BestIdx = C;
    }
    if (BestIdx == SIZE_MAX)
      break;
    auto [I, J] = Frontier[BestIdx].Pair;
    Adopt(I, J, BestSim);
  }

  // Preserved-edge ratio: a matched A edge whose endpoints map to a B
  // edge of the same kind costs no edit; everything else does.
  size_t Preserved = 0;
  auto HasEdge = [](const std::vector<uint32_t> &Edges, uint32_t To) {
    return std::find(Edges.begin(), Edges.end(), To) != Edges.end();
  };
  for (auto [I, J] : Matched) {
    for (uint32_t SA : A.Succs[I])
      if (SA < NA && MatchA[SA] >= 0 &&
          HasEdge(B.Succs[J], static_cast<uint32_t>(MatchA[SA])))
        ++Preserved;
    for (uint32_t CA : A.DomChildren[I])
      if (MatchA[CA] >= 0 &&
          HasEdge(B.DomChildren[J], static_cast<uint32_t>(MatchA[CA])))
        ++Preserved;
  }
  double EdgeScore = A.NumEdges + B.NumEdges == 0
                         ? 1.0
                         : 2.0 * (double)Preserved /
                               (double)(A.NumEdges + B.NumEdges);
  double MatchedNodeScore = 2.0 * NodeScore / (double)(NA + NB);
  return 0.65 * MatchedNodeScore + 0.35 * EdgeScore;
}

class OrcasTool : public DiffTool {
public:
  const char *getName() const override { return "orcas"; }
  ToolTraits getTraits() const override {
    ToolTraits T;
    T.TimeConsuming = true; // Per-pair graph matching.
    T.UsesCallGraph = true; // Call-context term + callee features.
    return T;
  }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;
};

/// Call-graph context agreement in (0, 1]: in/out degree similarity.
double callContext(const FunctionFeatures &X, const FunctionFeatures &Y) {
  double In = 1.0 - std::abs((double)X.CallGraphIn - (double)Y.CallGraphIn) /
                        (X.CallGraphIn + Y.CallGraphIn + 1.0);
  double Out = 1.0 -
               std::abs((double)X.CallGraphOut - (double)Y.CallGraphOut) /
                   (X.CallGraphOut + Y.CallGraphOut + 1.0);
  return In * Out;
}

DiffResult OrcasTool::diff(const BinaryImage & /*A*/, const ImageFeatures &FA,
                           const BinaryImage & /*B*/,
                           const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  std::vector<FuncGraph> GA(NA), GB(NB);
  for (size_t I = 0; I != NA; ++I)
    GA[I] = buildGraph(FA.Funcs[I]);
  for (size_t J = 0; J != NB; ++J)
    GB[J] = buildGraph(FB.Funcs[J]);

  double TopSum = 0.0;
  for (size_t I = 0; I != NA; ++I) {
    std::vector<double> Sim(NB);
    for (size_t J = 0; J != NB; ++J) {
      // Cheap pre-filter: a pair whose whole-function semantics and shape
      // are hopeless never reaches the quadratic matcher. The fallback
      // score stays below any matched pair's, preserving ranking quality
      // while bounding cost on large matrices.
      double Gate = cosineSimilarity(FA.Funcs[I].SemanticVec,
                                     FB.Funcs[J].SemanticVec) *
                    shapeAffinity(FA.Funcs[I], FB.Funcs[J]);
      if (Gate < 0.005) {
        Sim[J] = 0.05 * std::max(Gate, 0.0);
        continue;
      }
      Sim[J] = graphEditSimilarity(GA[I], GB[J]) *
               (0.85 + 0.15 * callContext(FA.Funcs[I], FB.Funcs[J]));
    }
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) { return Sim[X] > Sim[Y]; });
    if (!Order.empty())
      TopSum += std::min(std::max(Sim[Order.front()], 0.0), 1.0);
    R.Rankings[I] = std::move(Order);
  }
  R.WholeBinarySimilarity = NA ? TopSum / NA : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createOrcasTool() {
  return std::make_unique<OrcasTool>();
}
