//===- diffing/DiffTool.h - Binary diffing tool interface -------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five confrontation targets of the paper (Table 1), reimplemented as
/// published-algorithm analogues over our BinaryImage:
///
///   | tool        | granularity | symbols | call graph | heavy        |
///   |-------------|-------------|---------|------------|--------------|
///   | BinDiff     | function    | yes     | yes        | no           |
///   | VulSeeker   | function    | no      | no         | time+memory  |
///   | Asm2Vec     | function    | no      | no         | no           |
///   | SAFE        | function    | no      | no         | no           |
///   | DeepBinDiff | basic block | no      | yes        | time+memory  |
///
/// Each tool ranks, for every function of binary A (the un-obfuscated
/// reference), the functions of binary B (the obfuscated build) by
/// similarity. The harness computes Precision@1 / escape@k from the
/// rankings with the paper's relaxed pairing judgment.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_DIFFTOOL_H
#define KHAOS_DIFFING_DIFFTOOL_H

#include "diffing/BinaryFeatures.h"

#include <memory>
#include <string>
#include <vector>

namespace khaos {

/// Diffing output: per-A-function candidate rankings plus a BinDiff-style
/// whole-binary similarity score in [0, 1].
struct DiffResult {
  /// Rankings[i] lists B-function indices, most similar first.
  std::vector<std::vector<uint32_t>> Rankings;
  double WholeBinarySimilarity = 0.0;
};

/// Static tool characteristics (paper Table 1).
struct ToolTraits {
  const char *Granularity = "function";
  bool UsesSymbols = false;
  bool TimeConsuming = false;
  bool MemoryConsuming = false;
  bool UsesCallGraph = false;
};

/// Abstract diffing technique.
class DiffTool {
public:
  virtual ~DiffTool();
  virtual const char *getName() const = 0;
  virtual ToolTraits getTraits() const = 0;
  virtual DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                          const BinaryImage &B,
                          const ImageFeatures &FB) const = 0;
};

std::unique_ptr<DiffTool> createBinDiffTool();
std::unique_ptr<DiffTool> createVulSeekerTool();
std::unique_ptr<DiffTool> createAsm2VecTool();
std::unique_ptr<DiffTool> createSafeTool();
std::unique_ptr<DiffTool> createDeepBinDiffTool();

/// All five, in the paper's order.
std::vector<std::unique_ptr<DiffTool>> createAllDiffTools();

} // namespace khaos

#endif // KHAOS_DIFFING_DIFFTOOL_H
