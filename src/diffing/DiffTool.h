//===- diffing/DiffTool.h - Binary diffing tool interface -------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five confrontation targets of the paper (Table 1), reimplemented as
/// published-algorithm analogues over our BinaryImage:
///
///   | tool        | granularity | symbols | call graph | heavy        |
///   |-------------|-------------|---------|------------|--------------|
///   | BinDiff     | function    | yes     | yes        | no           |
///   | VulSeeker   | function    | no      | no         | time+memory  |
///   | Asm2Vec     | function    | no      | no         | no           |
///   | SAFE        | function    | no      | no         | no           |
///   | DeepBinDiff | basic block | no      | yes        | time+memory  |
///
/// Two post-paper backends extend the roster beyond Table 1 — the
/// obfuscation-resilient families the arms race should be measured
/// against (ROADMAP "more diffing backends"):
///
///   | jtrans      | function    | no      | no         | time         |
///   | orcas       | function    | no      | yes        | time         |
///   | semdiff     | function    | no      | yes        | time         |
///
/// Each in-process tool also has a subprocess-served twin (`safe-oop`,
/// `jtrans-oop`, `orcas-oop`, `semdiff-oop`) registered by the
/// SubprocessDiffTool adapter, bit-identical to its in-process
/// counterpart.
///
/// Each tool ranks, for every function of binary A (the un-obfuscated
/// reference), the functions of binary B (the obfuscated build) by
/// similarity. The harness computes Precision@1 / escape@k from the
/// rankings with the paper's relaxed pairing judgment.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_DIFFTOOL_H
#define KHAOS_DIFFING_DIFFTOOL_H

#include "diffing/BinaryFeatures.h"

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace khaos {

/// Diffing output: per-A-function candidate rankings plus a BinDiff-style
/// whole-binary similarity score in [0, 1].
struct DiffResult {
  /// Rankings[i] lists B-function indices, most similar first.
  std::vector<std::vector<uint32_t>> Rankings;
  double WholeBinarySimilarity = 0.0;
};

/// Matching granularity of a tool (paper Table 1). An enum so registry
/// consumers can branch on it without string compares.
enum class ToolGranularity : uint8_t { Function, BasicBlock };

/// Printable granularity, spelled as in the paper's Table 1.
const char *toolGranularityName(ToolGranularity G);

/// Runtime failure of a diffing backend — a subprocess worker timed out,
/// crashed past its retry, or returned garbage. Matrix front-ends catch
/// this per (cell × tool) task, report the task as failed and keep the
/// run going; a misconfigured backend must never stall a shard.
class DiffToolError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Static tool characteristics (paper Table 1).
struct ToolTraits {
  ToolGranularity Granularity = ToolGranularity::Function;
  bool UsesSymbols = false;
  bool TimeConsuming = false;
  bool MemoryConsuming = false;
  bool UsesCallGraph = false;
};

/// Abstract diffing technique.
class DiffTool {
public:
  virtual ~DiffTool();
  virtual const char *getName() const = 0;
  virtual ToolTraits getTraits() const = 0;
  virtual DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                          const BinaryImage &B,
                          const ImageFeatures &FB) const = 0;
};

std::unique_ptr<DiffTool> createBinDiffTool();
std::unique_ptr<DiffTool> createVulSeekerTool();
std::unique_ptr<DiffTool> createAsm2VecTool();
std::unique_ptr<DiffTool> createSafeTool();
std::unique_ptr<DiffTool> createDeepBinDiffTool();
std::unique_ptr<DiffTool> createJTransTool();
std::unique_ptr<DiffTool> createOrcasTool();
std::unique_ptr<DiffTool> createSemDiffTool();

//===----------------------------------------------------------------------===//
// Tool registry: a string-keyed factory table. The five paper tools are
// pre-registered in Table-1 order; new backends (an ORCAS- or jTrans-style
// analogue) register themselves and immediately become addressable by every
// matrix bench through EvalScheduler::precisionMatrix.
//===----------------------------------------------------------------------===//

using DiffToolFactory = std::function<std::unique_ptr<DiffTool>()>;

/// Registers \p Factory under \p Name. Returns false (and registers
/// nothing) if the name is already taken. Thread-safe.
bool registerDiffTool(const std::string &Name, DiffToolFactory Factory);

/// Instantiates the registered tool \p Name. Unknown names are a hard
/// error (message + abort): a misspelled tool would otherwise render as an
/// all-zero figure row.
std::unique_ptr<DiffTool> createDiffTool(const std::string &Name);

/// Like createDiffTool, but returns nullptr for unknown names.
std::unique_ptr<DiffTool> tryCreateDiffTool(const std::string &Name);

/// True if \p Name is registered.
bool isDiffToolRegistered(const std::string &Name);

/// Registered names, in registration order (the five paper tools first, in
/// Table-1 order: BinDiff, VulSeeker, Asm2Vec, SAFE, DeepBinDiff).
std::vector<std::string> registeredToolNames();

/// One instance of every registered tool, in registration order.
std::vector<std::unique_ptr<DiffTool>> createAllDiffTools();

} // namespace khaos

#endif // KHAOS_DIFFING_DIFFTOOL_H
