//===- diffing/BinaryFeatures.cpp - Shared feature extraction -------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "diffing/BinaryFeatures.h"

#include <cmath>

using namespace khaos;

unsigned khaos::semanticCategory(const MInst &I) {
  switch (I.Op) {
  case MOp::Mov:
  case MOp::MovImm:
  case MOp::Movsx:
  case MOp::Movzx:
  case MOp::Lea:
  case MOp::SetCC:
  case MOp::Cmov:
    return 0; // transfer
  case MOp::Add:
  case MOp::Sub:
  case MOp::IMul:
  case MOp::IDiv:
  case MOp::Cdq:
  case MOp::Neg:
    return 1; // arithmetic
  case MOp::And:
  case MOp::Or:
  case MOp::Xor:
  case MOp::Not:
  case MOp::Shl:
  case MOp::Sar:
  case MOp::Shr:
    return 2; // logic
  case MOp::LoadM:
  case MOp::StoreM:
  case MOp::Push:
  case MOp::Pop:
    return 3; // memory / stack
  case MOp::Cmp:
  case MOp::Test:
  case MOp::Ucomis:
    return 4; // compare
  case MOp::Call:
  case MOp::CallIndirect:
    return 5; // call
  case MOp::Jmp:
  case MOp::Jcc:
  case MOp::Ret:
  case MOp::Leave:
  case MOp::Ud2:
    return 6; // branch / control
  default:
    return 7; // fp & rest
  }
}

ImageFeatures khaos::extractFeatures(const BinaryImage &Image) {
  ImageFeatures Out;
  Out.Funcs.resize(Image.Functions.size());

  for (size_t FI = 0; FI != Image.Functions.size(); ++FI) {
    const MFunction &MF = Image.Functions[FI];
    FunctionFeatures &FF = Out.Funcs[FI];
    FF.Name = MF.Name;
    FF.NumBlocks = MF.Blocks.size();
    FF.OpcodeHist.assign(NumMOpcodes, 0.0);
    FF.SemanticVec.assign(NumSemanticCategories, 0.0);

    for (const MBlock &B : MF.Blocks) {
      FF.NumEdges += B.Succs.size();
      std::vector<double> BlockHist(NumMOpcodes, 0.0);
      std::vector<uint32_t> Succs(B.Succs.begin(), B.Succs.end());
      for (const MInst &I : B.Insts) {
        ++FF.NumInsts;
        FF.OpcodeHist[(unsigned)I.Op] += 1.0;
        BlockHist[(unsigned)I.Op] += 1.0;
        FF.SemanticVec[semanticCategory(I)] += 1.0;
        FF.TokenSeq.push_back((unsigned)I.Op);
        // Constants with information content: skip tiny idiom values,
        // power-of-two strides and all-ones masks — they appear in every
        // function and carry no identity.
        if (I.HasImmediate && (I.Imm > 16 || I.Imm < -16)) {
          uint64_t U = static_cast<uint64_t>(I.Imm);
          bool Mask = I.Imm > 0 && ((U + 1) & U) == 0;
          bool Pow2 = I.Imm > 0 && (U & (U - 1)) == 0;
          if (!Mask && !Pow2)
            FF.Immediates.push_back(I.Imm);
        }
        if (I.Op == MOp::Call) {
          ++FF.NumCalls;
          if (I.SymId >= 0) {
            auto It = Image.FunctionIndex.find(Image.Symbols[I.SymId]);
            if (It != Image.FunctionIndex.end())
              FF.Callees.push_back(It->second);
          }
        } else if (I.Op == MOp::CallIndirect) {
          ++FF.NumCalls;
          ++FF.NumIndirectCalls;
        }
      }
      FF.BlockHists.push_back(std::move(BlockHist));
      FF.BlockSuccs.push_back(std::move(Succs));
    }
  }

  // Call graph degrees.
  for (size_t FI = 0; FI != Out.Funcs.size(); ++FI) {
    Out.Funcs[FI].CallGraphOut = Out.Funcs[FI].Callees.size();
    for (uint32_t Callee : Out.Funcs[FI].Callees)
      if (Callee < Out.Funcs.size())
        ++Out.Funcs[Callee].CallGraphIn;
  }
  return Out;
}

unsigned khaos::robustTokenClass(unsigned Opcode) {
  unsigned Cat = semanticCategory(MInst(static_cast<MOp>(Opcode)));
  return Cat == 2 ? 1 : Cat; // Merge logic into arithmetic.
}

std::vector<int32_t>
khaos::computeBlockIDoms(const std::vector<std::vector<uint32_t>> &Succs) {
  size_t N = Succs.size();
  std::vector<int32_t> IDoms(N, -1);
  if (N == 0)
    return IDoms;

  // Reverse postorder from the entry (block 0) and predecessor lists
  // restricted to reachable blocks.
  std::vector<int32_t> RPONum(N, -1);
  std::vector<uint32_t> RPO;
  {
    std::vector<uint8_t> State(N, 0); // 0 unseen, 1 on stack, 2 done.
    std::vector<std::pair<uint32_t, size_t>> Stack{{0, 0}};
    State[0] = 1;
    std::vector<uint32_t> Post;
    while (!Stack.empty()) {
      auto &[BB, Next] = Stack.back();
      if (Next < Succs[BB].size()) {
        uint32_t S = Succs[BB][Next++];
        if (S < N && State[S] == 0) {
          State[S] = 1;
          Stack.push_back({S, 0});
        }
      } else {
        State[BB] = 2;
        Post.push_back(BB);
        Stack.pop_back();
      }
    }
    RPO.assign(Post.rbegin(), Post.rend());
    for (size_t I = 0; I != RPO.size(); ++I)
      RPONum[RPO[I]] = static_cast<int32_t>(I);
  }
  std::vector<std::vector<uint32_t>> Preds(N);
  for (uint32_t B = 0; B != N; ++B) {
    if (RPONum[B] < 0)
      continue;
    for (uint32_t S : Succs[B])
      if (S < N && RPONum[S] >= 0)
        Preds[S].push_back(B);
  }

  // Cooper-Harvey-Kennedy iteration to fixpoint over the RPO.
  std::vector<int32_t> Doms(N, -1); // IDom per block; entry = itself.
  Doms[0] = 0;
  auto Intersect = [&](int32_t A, int32_t B) {
    while (A != B) {
      while (RPONum[A] > RPONum[B])
        A = Doms[A];
      while (RPONum[B] > RPONum[A])
        B = Doms[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < RPO.size(); ++I) {
      uint32_t BB = RPO[I];
      int32_t NewIDom = -1;
      for (uint32_t P : Preds[BB])
        if (Doms[P] >= 0)
          NewIDom = NewIDom < 0 ? static_cast<int32_t>(P)
                                : Intersect(NewIDom, static_cast<int32_t>(P));
      if (NewIDom >= 0 && Doms[BB] != NewIDom) {
        Doms[BB] = NewIDom;
        Changed = true;
      }
    }
  }
  for (size_t B = 1; B != N; ++B)
    if (RPONum[B] >= 0)
      IDoms[B] = Doms[B];
  return IDoms;
}

std::vector<int32_t> khaos::dominatorDepths(const std::vector<int32_t> &IDoms) {
  std::vector<int32_t> Depth(IDoms.size(), -1);
  if (IDoms.empty())
    return Depth;
  Depth[0] = 0;
  // IDoms form a tree rooted at the entry; resolve each chain iteratively
  // (chains are short, and memoization keeps the total linear).
  for (size_t B = 1; B != IDoms.size(); ++B) {
    if (Depth[B] >= 0 || IDoms[B] < 0)
      continue;
    std::vector<size_t> Chain;
    size_t Cur = B;
    while (Depth[Cur] < 0 && IDoms[Cur] >= 0) {
      Chain.push_back(Cur);
      Cur = static_cast<size_t>(IDoms[Cur]);
    }
    int32_t D = Depth[Cur];
    if (D < 0)
      continue; // Chain ends in an unreachable block.
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
      Depth[*It] = ++D;
  }
  return Depth;
}

std::vector<double>
khaos::semanticHistogram(const std::vector<double> &OpcodeHist) {
  std::vector<double> Sem(NumSemanticCategories, 0.0);
  for (unsigned Op = 0; Op != OpcodeHist.size() && Op != NumMOpcodes; ++Op)
    if (OpcodeHist[Op] > 0)
      Sem[semanticCategory(MInst(static_cast<MOp>(Op)))] += OpcodeHist[Op];
  return Sem;
}

double khaos::shapeAffinity(const FunctionFeatures &A,
                            const FunctionFeatures &B) {
  auto D = [](double X, double Y) {
    return std::fabs(std::log1p(X) - std::log1p(Y));
  };
  double L1 = D(A.NumBlocks, B.NumBlocks) + D(A.NumEdges, B.NumEdges) +
              D(A.NumCalls, B.NumCalls) + D(A.NumInsts, B.NumInsts);
  return std::exp(-L1);
}
