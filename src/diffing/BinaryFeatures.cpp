//===- diffing/BinaryFeatures.cpp - Shared feature extraction -------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "diffing/BinaryFeatures.h"

#include <cmath>

using namespace khaos;

unsigned khaos::semanticCategory(const MInst &I) {
  switch (I.Op) {
  case MOp::Mov:
  case MOp::MovImm:
  case MOp::Movsx:
  case MOp::Movzx:
  case MOp::Lea:
  case MOp::SetCC:
  case MOp::Cmov:
    return 0; // transfer
  case MOp::Add:
  case MOp::Sub:
  case MOp::IMul:
  case MOp::IDiv:
  case MOp::Cdq:
  case MOp::Neg:
    return 1; // arithmetic
  case MOp::And:
  case MOp::Or:
  case MOp::Xor:
  case MOp::Not:
  case MOp::Shl:
  case MOp::Sar:
  case MOp::Shr:
    return 2; // logic
  case MOp::LoadM:
  case MOp::StoreM:
  case MOp::Push:
  case MOp::Pop:
    return 3; // memory / stack
  case MOp::Cmp:
  case MOp::Test:
  case MOp::Ucomis:
    return 4; // compare
  case MOp::Call:
  case MOp::CallIndirect:
    return 5; // call
  case MOp::Jmp:
  case MOp::Jcc:
  case MOp::Ret:
  case MOp::Leave:
  case MOp::Ud2:
    return 6; // branch / control
  default:
    return 7; // fp & rest
  }
}

ImageFeatures khaos::extractFeatures(const BinaryImage &Image) {
  ImageFeatures Out;
  Out.Funcs.resize(Image.Functions.size());

  for (size_t FI = 0; FI != Image.Functions.size(); ++FI) {
    const MFunction &MF = Image.Functions[FI];
    FunctionFeatures &FF = Out.Funcs[FI];
    FF.Name = MF.Name;
    FF.NumBlocks = MF.Blocks.size();
    FF.OpcodeHist.assign(NumMOpcodes, 0.0);
    FF.SemanticVec.assign(NumSemanticCategories, 0.0);

    for (const MBlock &B : MF.Blocks) {
      FF.NumEdges += B.Succs.size();
      std::vector<double> BlockHist(NumMOpcodes, 0.0);
      std::vector<uint32_t> Succs(B.Succs.begin(), B.Succs.end());
      for (const MInst &I : B.Insts) {
        ++FF.NumInsts;
        FF.OpcodeHist[(unsigned)I.Op] += 1.0;
        BlockHist[(unsigned)I.Op] += 1.0;
        FF.SemanticVec[semanticCategory(I)] += 1.0;
        FF.TokenSeq.push_back((unsigned)I.Op);
        // Constants with information content: skip tiny idiom values,
        // power-of-two strides and all-ones masks — they appear in every
        // function and carry no identity.
        if (I.HasImmediate && (I.Imm > 16 || I.Imm < -16)) {
          uint64_t U = static_cast<uint64_t>(I.Imm);
          bool Mask = I.Imm > 0 && ((U + 1) & U) == 0;
          bool Pow2 = I.Imm > 0 && (U & (U - 1)) == 0;
          if (!Mask && !Pow2)
            FF.Immediates.push_back(I.Imm);
        }
        if (I.Op == MOp::Call) {
          ++FF.NumCalls;
          if (I.SymId >= 0) {
            auto It = Image.FunctionIndex.find(Image.Symbols[I.SymId]);
            if (It != Image.FunctionIndex.end())
              FF.Callees.push_back(It->second);
          }
        } else if (I.Op == MOp::CallIndirect) {
          ++FF.NumCalls;
          ++FF.NumIndirectCalls;
        }
      }
      FF.BlockHists.push_back(std::move(BlockHist));
      FF.BlockSuccs.push_back(std::move(Succs));
    }
  }

  // Call graph degrees.
  for (size_t FI = 0; FI != Out.Funcs.size(); ++FI) {
    Out.Funcs[FI].CallGraphOut = Out.Funcs[FI].Callees.size();
    for (uint32_t Callee : Out.Funcs[FI].Callees)
      if (Callee < Out.Funcs.size())
        ++Out.Funcs[Callee].CallGraphIn;
  }
  return Out;
}

unsigned khaos::robustTokenClass(unsigned Opcode) {
  unsigned Cat = semanticCategory(MInst(static_cast<MOp>(Opcode)));
  return Cat == 2 ? 1 : Cat; // Merge logic into arithmetic.
}

double khaos::shapeAffinity(const FunctionFeatures &A,
                            const FunctionFeatures &B) {
  auto D = [](double X, double Y) {
    return std::fabs(std::log1p(X) - std::log1p(Y));
  };
  double L1 = D(A.NumBlocks, B.NumBlocks) + D(A.NumEdges, B.NumEdges) +
              D(A.NumCalls, B.NumCalls) + D(A.NumInsts, B.NumInsts);
  return std::exp(-L1);
}
