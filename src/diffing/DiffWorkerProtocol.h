//===- diffing/DiffWorkerProtocol.h - Worker wire protocol ------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between the harness and an out-of-process diffing
/// worker (jTrans-style learned models cannot run in-process; they speak
/// this protocol instead — see README "Out-of-process diffing workers").
///
/// Transport: length-prefixed frames over a pipe pair (worker stdin /
/// stdout). Each frame is a little-endian u32 payload length followed by
/// the payload. Every payload begins with a fixed header:
///
///   u32 magic   0x4B445731 ("KDW1" read as bytes 31 57 44 4B)
///   u16 version 1
///   u8  type    1 = request, 2 = response (ok), 3 = response (error)
///
/// A request carries the registry name of the tool to run plus the full
/// diff() signature — both BinaryImages and both ImageFeatures — encoded
/// field-for-field (doubles as raw IEEE-754 bit patterns), so a worker
/// that deserializes a request and runs the in-process tool produces a
/// bit-identical DiffResult to an in-process run. An ok-response carries
/// the DiffResult; an error-response carries a message string.
///
/// The encoding has no optional fields and no alignment padding: the same
/// value always encodes to the same bytes (DiffWorkerTest pins a golden
/// frame so the format cannot drift silently).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_DIFFWORKERPROTOCOL_H
#define KHAOS_DIFFING_DIFFWORKERPROTOCOL_H

#include "diffing/DiffTool.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace khaos {

/// Protocol constants.
constexpr uint32_t DiffWireMagic = 0x4B445731; // "KDW1"
constexpr uint16_t DiffWireVersion = 1;

//===----------------------------------------------------------------------===//
// Little-endian buffer writer/reader. Fixed-width fields only, no padding:
// identical values always encode to identical bytes. Shared by the diff
// worker frames, the on-disk ArtifactStore tier (harness/DiskCache) and the
// khaos-evald service protocol (harness/EvalService) so every serialized
// form in the project has one byte-level convention.
//===----------------------------------------------------------------------===//

class WireWriter {
public:
  std::vector<uint8_t> Buf;

  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) { raw(&V, 2); }
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }
  void i32(int32_t V) { raw(&V, 4); }
  void i64(int64_t V) { raw(&V, 8); }
  void f64(double V) {
    // Raw bit pattern: the decoder reproduces the exact double, which is
    // what makes serialized results bit-identical to in-process ones.
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  template <typename T, typename WriteOne>
  void vec(const std::vector<T> &V, WriteOne One) {
    u32(static_cast<uint32_t>(V.size()));
    for (const T &E : V)
      One(E);
  }

private:
  void raw(const void *P, size_t N) {
    // Host byte order is little-endian on every platform this project
    // targets (x86-64, AArch64); a big-endian port would swap here.
    const uint8_t *B = static_cast<const uint8_t *>(P);
    Buf.insert(Buf.end(), B, B + N);
  }
};

class WireReader {
public:
  WireReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}

  bool ok() const { return !Failed; }
  bool atEnd() const { return P == End; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, 1);
    return V;
  }
  uint16_t u16() {
    uint16_t V = 0;
    raw(&V, 2);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, 8);
    return V;
  }
  int32_t i32() {
    int32_t V = 0;
    raw(&V, 4);
    return V;
  }
  int64_t i64() {
    int64_t V = 0;
    raw(&V, 8);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (Failed || static_cast<size_t>(End - P) < N) {
      Failed = true;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }
  /// Reads a u32 element count, bounded by the bytes actually left (each
  /// element encodes to >= 1 byte, so a count beyond that is malformed).
  uint32_t count() {
    uint32_t N = u32();
    if (!Failed && N > static_cast<size_t>(End - P))
      Failed = true;
    return Failed ? 0 : N;
  }

private:
  void raw(void *Out, size_t N) {
    if (Failed || static_cast<size_t>(End - P) < N) {
      Failed = true;
      return;
    }
    std::memcpy(Out, P, N);
    P += N;
  }

  const uint8_t *P;
  const uint8_t *End;
  bool Failed = false;
};

/// Field-for-field BinaryImage encoding (the request-frame body format,
/// reused verbatim by the DiskCache image artifacts). readBinaryImage
/// returns false on a truncated buffer.
void writeBinaryImage(WireWriter &W, const BinaryImage &Img);
bool readBinaryImage(WireReader &R, BinaryImage &Img);

/// Field-for-field ImageFeatures encoding.
void writeImageFeatures(WireWriter &W, const ImageFeatures &F);
bool readImageFeatures(WireReader &R, ImageFeatures &F);

enum class DiffWireType : uint8_t {
  Request = 1,
  ResponseOk = 2,
  ResponseError = 3,
};

/// One diffing request: run tool \c Tool over the (A, B) pair.
struct DiffWireRequest {
  std::string Tool;
  BinaryImage A, B;
  ImageFeatures FA, FB;
};

/// One diffing response: \c Result when \c Ok, else \c Error.
struct DiffWireResponse {
  bool Ok = false;
  std::string Error;
  DiffResult Result;
};

/// Encodes \p Req into a frame payload (header included, length prefix
/// excluded — the transport adds it).
std::vector<uint8_t> encodeDiffRequest(const DiffWireRequest &Req);

/// Encodes \p Resp into a frame payload.
std::vector<uint8_t> encodeDiffResponse(const DiffWireResponse &Resp);

/// Decodes a request payload. Returns false (with \p Err set) on a
/// malformed frame: bad magic/version/type, truncated body, or trailing
/// garbage.
bool decodeDiffRequest(const std::vector<uint8_t> &Payload,
                       DiffWireRequest &Req, std::string &Err);

/// Decodes a response payload (either ok or error type).
bool decodeDiffResponse(const std::vector<uint8_t> &Payload,
                        DiffWireResponse &Resp, std::string &Err);

//===----------------------------------------------------------------------===//
// Frame transport over file descriptors.
//===----------------------------------------------------------------------===//

/// Outcome of one frame read/write, so callers can tell a hung worker
/// (Timeout — kill it, do not retry) from a dead one (Eof — respawn and
/// retry once) from a desynced stream (Malformed — fail hard).
enum class FrameIOResult : uint8_t { Ok, Timeout, Eof, Error, Malformed };

/// Printable FrameIOResult for diagnostics.
const char *frameIOResultName(FrameIOResult R);

/// Writes the length prefix and \p Payload to \p Fd. \p TimeoutMs < 0
/// blocks indefinitely. Partial writes are resumed; EPIPE (worker died)
/// reports Eof.
FrameIOResult writeDiffFrame(int Fd, const std::vector<uint8_t> &Payload,
                             int TimeoutMs, std::string &Err);

/// Reads one length-prefixed frame from \p Fd into \p Payload. A clean
/// end-of-stream before the first prefix byte reports Eof with an empty
/// \p Err; a mid-frame EOF reports Eof with a diagnostic. Frames above an
/// internal sanity cap (1 GiB) report Malformed (a desynced stream would
/// otherwise ask for an absurd allocation).
FrameIOResult readDiffFrame(int Fd, std::vector<uint8_t> &Payload,
                            int TimeoutMs, std::string &Err);

} // namespace khaos

#endif // KHAOS_DIFFING_DIFFWORKERPROTOCOL_H
