//===- diffing/DiffWorkerProtocol.h - Worker wire protocol ------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between the harness and an out-of-process diffing
/// worker (jTrans-style learned models cannot run in-process; they speak
/// this protocol instead — see README "Out-of-process diffing workers").
///
/// Transport: length-prefixed frames over a pipe pair (worker stdin /
/// stdout). Each frame is a little-endian u32 payload length followed by
/// the payload. Every payload begins with a fixed header:
///
///   u32 magic   0x4B445731 ("KDW1" read as bytes 31 57 44 4B)
///   u16 version 1
///   u8  type    1 = request, 2 = response (ok), 3 = response (error)
///
/// A request carries the registry name of the tool to run plus the full
/// diff() signature — both BinaryImages and both ImageFeatures — encoded
/// field-for-field (doubles as raw IEEE-754 bit patterns), so a worker
/// that deserializes a request and runs the in-process tool produces a
/// bit-identical DiffResult to an in-process run. An ok-response carries
/// the DiffResult; an error-response carries a message string.
///
/// The encoding has no optional fields and no alignment padding: the same
/// value always encodes to the same bytes (DiffWorkerTest pins a golden
/// frame so the format cannot drift silently).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_DIFFWORKERPROTOCOL_H
#define KHAOS_DIFFING_DIFFWORKERPROTOCOL_H

#include "diffing/DiffTool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

/// Protocol constants.
constexpr uint32_t DiffWireMagic = 0x4B445731; // "KDW1"
constexpr uint16_t DiffWireVersion = 1;

enum class DiffWireType : uint8_t {
  Request = 1,
  ResponseOk = 2,
  ResponseError = 3,
};

/// One diffing request: run tool \c Tool over the (A, B) pair.
struct DiffWireRequest {
  std::string Tool;
  BinaryImage A, B;
  ImageFeatures FA, FB;
};

/// One diffing response: \c Result when \c Ok, else \c Error.
struct DiffWireResponse {
  bool Ok = false;
  std::string Error;
  DiffResult Result;
};

/// Encodes \p Req into a frame payload (header included, length prefix
/// excluded — the transport adds it).
std::vector<uint8_t> encodeDiffRequest(const DiffWireRequest &Req);

/// Encodes \p Resp into a frame payload.
std::vector<uint8_t> encodeDiffResponse(const DiffWireResponse &Resp);

/// Decodes a request payload. Returns false (with \p Err set) on a
/// malformed frame: bad magic/version/type, truncated body, or trailing
/// garbage.
bool decodeDiffRequest(const std::vector<uint8_t> &Payload,
                       DiffWireRequest &Req, std::string &Err);

/// Decodes a response payload (either ok or error type).
bool decodeDiffResponse(const std::vector<uint8_t> &Payload,
                        DiffWireResponse &Resp, std::string &Err);

//===----------------------------------------------------------------------===//
// Frame transport over file descriptors.
//===----------------------------------------------------------------------===//

/// Outcome of one frame read/write, so callers can tell a hung worker
/// (Timeout — kill it, do not retry) from a dead one (Eof — respawn and
/// retry once) from a desynced stream (Malformed — fail hard).
enum class FrameIOResult : uint8_t { Ok, Timeout, Eof, Error, Malformed };

/// Printable FrameIOResult for diagnostics.
const char *frameIOResultName(FrameIOResult R);

/// Writes the length prefix and \p Payload to \p Fd. \p TimeoutMs < 0
/// blocks indefinitely. Partial writes are resumed; EPIPE (worker died)
/// reports Eof.
FrameIOResult writeDiffFrame(int Fd, const std::vector<uint8_t> &Payload,
                             int TimeoutMs, std::string &Err);

/// Reads one length-prefixed frame from \p Fd into \p Payload. A clean
/// end-of-stream before the first prefix byte reports Eof with an empty
/// \p Err; a mid-frame EOF reports Eof with a diagnostic. Frames above an
/// internal sanity cap (1 GiB) report Malformed (a desynced stream would
/// otherwise ask for an absurd allocation).
FrameIOResult readDiffFrame(int Fd, std::vector<uint8_t> &Payload,
                            int TimeoutMs, std::string &Err);

} // namespace khaos

#endif // KHAOS_DIFFING_DIFFWORKERPROTOCOL_H
