//===- diffing/DiffWorkerProtocol.cpp - Worker wire protocol --------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "diffing/DiffWorkerProtocol.h"

#include <chrono>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

using namespace khaos;

namespace {

/// Sanity cap on one frame: a desynced stream must not be able to request
/// an absurd allocation from a bogus length prefix.
constexpr uint32_t MaxFrameBytes = 1u << 30;

//===----------------------------------------------------------------------===//
// Image / feature / result encoding.
//===----------------------------------------------------------------------===//

} // namespace

void khaos::writeBinaryImage(WireWriter &W, const BinaryImage &Img) {
  W.str(Img.Name);
  W.vec(Img.Functions, [&](const MFunction &F) {
    W.str(F.Name);
    W.u64(F.Address);
    W.u8(F.Exported ? 1 : 0);
    W.vec(F.Origins, [&](const std::string &O) { W.str(O); });
    W.vec(F.Blocks, [&](const MBlock &B) {
      W.str(B.Name);
      W.vec(B.Insts, [&](const MInst &I) {
        W.u8(static_cast<uint8_t>(I.Op));
        W.u8(static_cast<uint8_t>((I.HasMemOperand ? 1 : 0) |
                                  (I.HasImmediate ? 2 : 0)));
        W.i32(I.SymId);
        W.i64(I.Imm);
      });
      W.vec(B.Succs, [&](uint32_t S) { W.u32(S); });
    });
  });
  W.vec(Img.Symbols, [&](const std::string &S) { W.str(S); });
  W.vec(Img.DataRelocs, [&](const DataRelocation &R) {
    W.str(R.GlobalName);
    W.u64(R.Offset);
    W.i32(R.SymId);
    W.i64(R.Addend);
  });
  // The name->index map is serialized explicitly rather than rebuilt, so a
  // decoded image is field-for-field identical to the encoded one even for
  // degenerate inputs (duplicate names, stale entries).
  W.u32(static_cast<uint32_t>(Img.FunctionIndex.size()));
  for (const auto &Entry : Img.FunctionIndex) {
    W.str(Entry.first);
    W.u32(Entry.second);
  }
}

bool khaos::readBinaryImage(WireReader &R, BinaryImage &Img) {
  Img.Name = R.str();
  uint32_t NF = R.count();
  Img.Functions.resize(NF);
  for (uint32_t FI = 0; FI != NF && R.ok(); ++FI) {
    MFunction &F = Img.Functions[FI];
    F.Name = R.str();
    F.Address = R.u64();
    F.Exported = R.u8() != 0;
    uint32_t NO = R.count();
    F.Origins.resize(NO);
    for (uint32_t I = 0; I != NO && R.ok(); ++I)
      F.Origins[I] = R.str();
    uint32_t NB = R.count();
    F.Blocks.resize(NB);
    for (uint32_t BI = 0; BI != NB && R.ok(); ++BI) {
      MBlock &B = F.Blocks[BI];
      B.Name = R.str();
      uint32_t NI = R.count();
      B.Insts.resize(NI);
      for (uint32_t I = 0; I != NI && R.ok(); ++I) {
        MInst &In = B.Insts[I];
        In.Op = static_cast<MOp>(R.u8());
        uint8_t Flags = R.u8();
        In.HasMemOperand = (Flags & 1) != 0;
        In.HasImmediate = (Flags & 2) != 0;
        In.SymId = R.i32();
        In.Imm = R.i64();
      }
      uint32_t NS = R.count();
      B.Succs.resize(NS);
      for (uint32_t I = 0; I != NS && R.ok(); ++I)
        B.Succs[I] = R.u32();
    }
  }
  uint32_t NSym = R.count();
  Img.Symbols.resize(NSym);
  for (uint32_t I = 0; I != NSym && R.ok(); ++I)
    Img.Symbols[I] = R.str();
  uint32_t NRel = R.count();
  Img.DataRelocs.resize(NRel);
  for (uint32_t I = 0; I != NRel && R.ok(); ++I) {
    DataRelocation &Rel = Img.DataRelocs[I];
    Rel.GlobalName = R.str();
    Rel.Offset = R.u64();
    Rel.SymId = R.i32();
    Rel.Addend = R.i64();
  }
  uint32_t NIdx = R.count();
  Img.FunctionIndex.clear();
  for (uint32_t I = 0; I != NIdx && R.ok(); ++I) {
    std::string Name = R.str();
    uint32_t Idx = R.u32();
    Img.FunctionIndex.emplace(std::move(Name), Idx);
  }
  return R.ok();
}

void khaos::writeImageFeatures(WireWriter &W, const ImageFeatures &F) {
  W.vec(F.Funcs, [&](const FunctionFeatures &FF) {
    W.str(FF.Name);
    W.u32(FF.NumBlocks);
    W.u32(FF.NumEdges);
    W.u32(FF.NumCalls);
    W.u32(FF.NumIndirectCalls);
    W.u32(FF.NumInsts);
    W.u32(FF.CallGraphIn);
    W.u32(FF.CallGraphOut);
    W.vec(FF.Callees, [&](uint32_t C) { W.u32(C); });
    W.vec(FF.OpcodeHist, [&](double D) { W.f64(D); });
    W.vec(FF.SemanticVec, [&](double D) { W.f64(D); });
    W.vec(FF.Immediates, [&](int64_t V) { W.i64(V); });
    W.vec(FF.TokenSeq, [&](unsigned T) { W.u32(T); });
    W.vec(FF.BlockHists, [&](const std::vector<double> &H) {
      W.vec(H, [&](double D) { W.f64(D); });
    });
    W.vec(FF.BlockSuccs, [&](const std::vector<uint32_t> &S) {
      W.vec(S, [&](uint32_t V) { W.u32(V); });
    });
  });
}

bool khaos::readImageFeatures(WireReader &R, ImageFeatures &F) {

  uint32_t NF = R.count();
  F.Funcs.resize(NF);
  for (uint32_t I = 0; I != NF && R.ok(); ++I) {
    FunctionFeatures &FF = F.Funcs[I];
    FF.Name = R.str();
    FF.NumBlocks = R.u32();
    FF.NumEdges = R.u32();
    FF.NumCalls = R.u32();
    FF.NumIndirectCalls = R.u32();
    FF.NumInsts = R.u32();
    FF.CallGraphIn = R.u32();
    FF.CallGraphOut = R.u32();
    uint32_t N = R.count();
    FF.Callees.resize(N);
    for (uint32_t J = 0; J != N && R.ok(); ++J)
      FF.Callees[J] = R.u32();
    N = R.count();
    FF.OpcodeHist.resize(N);
    for (uint32_t J = 0; J != N && R.ok(); ++J)
      FF.OpcodeHist[J] = R.f64();
    N = R.count();
    FF.SemanticVec.resize(N);
    for (uint32_t J = 0; J != N && R.ok(); ++J)
      FF.SemanticVec[J] = R.f64();
    N = R.count();
    FF.Immediates.resize(N);
    for (uint32_t J = 0; J != N && R.ok(); ++J)
      FF.Immediates[J] = R.i64();
    N = R.count();
    FF.TokenSeq.resize(N);
    for (uint32_t J = 0; J != N && R.ok(); ++J)
      FF.TokenSeq[J] = R.u32();
    N = R.count();
    FF.BlockHists.resize(N);
    for (uint32_t J = 0; J != N && R.ok(); ++J) {
      uint32_t M = R.count();
      FF.BlockHists[J].resize(M);
      for (uint32_t K = 0; K != M && R.ok(); ++K)
        FF.BlockHists[J][K] = R.f64();
    }
    N = R.count();
    FF.BlockSuccs.resize(N);
    for (uint32_t J = 0; J != N && R.ok(); ++J) {
      uint32_t M = R.count();
      FF.BlockSuccs[J].resize(M);
      for (uint32_t K = 0; K != M && R.ok(); ++K)
        FF.BlockSuccs[J][K] = R.u32();
    }
  }
  return R.ok();
}

namespace {

void writeHeader(WireWriter &W, DiffWireType Type) {
  W.u32(DiffWireMagic);
  W.u16(DiffWireVersion);
  W.u8(static_cast<uint8_t>(Type));
}

/// Checks magic + version and returns the message type (0 on failure).
uint8_t readHeader(WireReader &R, std::string &Err) {
  uint32_t Magic = R.u32();
  uint16_t Version = R.u16();
  uint8_t Type = R.u8();
  if (!R.ok()) {
    Err = "truncated frame header";
    return 0;
  }
  if (Magic != DiffWireMagic) {
    Err = "bad frame magic";
    return 0;
  }
  if (Version != DiffWireVersion) {
    Err = "unsupported protocol version " + std::to_string(Version);
    return 0;
  }
  return Type;
}

} // namespace

std::vector<uint8_t> khaos::encodeDiffRequest(const DiffWireRequest &Req) {
  WireWriter W;
  writeHeader(W, DiffWireType::Request);
  W.str(Req.Tool);
  writeBinaryImage(W, Req.A);
  writeImageFeatures(W, Req.FA);
  writeBinaryImage(W, Req.B);
  writeImageFeatures(W, Req.FB);
  return std::move(W.Buf);
}

std::vector<uint8_t> khaos::encodeDiffResponse(const DiffWireResponse &Resp) {
  WireWriter W;
  if (!Resp.Ok) {
    writeHeader(W, DiffWireType::ResponseError);
    W.str(Resp.Error);
    return std::move(W.Buf);
  }
  writeHeader(W, DiffWireType::ResponseOk);
  W.vec(Resp.Result.Rankings, [&](const std::vector<uint32_t> &Ranking) {
    W.vec(Ranking, [&](uint32_t V) { W.u32(V); });
  });
  W.f64(Resp.Result.WholeBinarySimilarity);
  return std::move(W.Buf);
}

bool khaos::decodeDiffRequest(const std::vector<uint8_t> &Payload,
                              DiffWireRequest &Req, std::string &Err) {
  WireReader R(Payload.data(), Payload.size());
  uint8_t Type = readHeader(R, Err);
  if (Type == 0)
    return false;
  if (Type != static_cast<uint8_t>(DiffWireType::Request)) {
    Err = "expected a request frame";
    return false;
  }
  Req.Tool = R.str();
  if (!readBinaryImage(R, Req.A) || !readImageFeatures(R, Req.FA) ||
      !readBinaryImage(R, Req.B) || !readImageFeatures(R, Req.FB)) {
    Err = "truncated request body";
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing bytes after request body";
    return false;
  }
  return true;
}

bool khaos::decodeDiffResponse(const std::vector<uint8_t> &Payload,
                               DiffWireResponse &Resp, std::string &Err) {
  WireReader R(Payload.data(), Payload.size());
  uint8_t Type = readHeader(R, Err);
  if (Type == 0)
    return false;
  if (Type == static_cast<uint8_t>(DiffWireType::ResponseError)) {
    Resp.Ok = false;
    Resp.Error = R.str();
    if (!R.ok() || !R.atEnd()) {
      Err = "malformed error response";
      return false;
    }
    return true;
  }
  if (Type != static_cast<uint8_t>(DiffWireType::ResponseOk)) {
    Err = "expected a response frame";
    return false;
  }
  Resp.Ok = true;
  uint32_t N = R.count();
  Resp.Result.Rankings.resize(N);
  for (uint32_t I = 0; I != N && R.ok(); ++I) {
    uint32_t M = R.count();
    Resp.Result.Rankings[I].resize(M);
    for (uint32_t J = 0; J != M && R.ok(); ++J)
      Resp.Result.Rankings[I][J] = R.u32();
  }
  Resp.Result.WholeBinarySimilarity = R.f64();
  if (!R.ok()) {
    Err = "truncated response body";
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing bytes after response body";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Frame transport.
//===----------------------------------------------------------------------===//

const char *khaos::frameIOResultName(FrameIOResult R) {
  switch (R) {
  case FrameIOResult::Ok:
    return "ok";
  case FrameIOResult::Timeout:
    return "timeout";
  case FrameIOResult::Eof:
    return "eof";
  case FrameIOResult::Error:
    return "error";
  case FrameIOResult::Malformed:
    return "malformed";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until \p Deadline for poll(); -1 for "no deadline",
/// 0 once the deadline has passed.
int remainingMs(bool HasDeadline, Clock::time_point Deadline) {
  if (!HasDeadline)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
      Deadline - Clock::now());
  if (Left.count() <= 0)
    return 0;
  return static_cast<int>(Left.count());
}

/// Waits until \p Fd is ready for \p Events. Ok, Timeout or Error.
FrameIOResult waitFd(int Fd, short Events, bool HasDeadline,
                     Clock::time_point Deadline, std::string &Err) {
  for (;;) {
    int Left = remainingMs(HasDeadline, Deadline);
    if (HasDeadline && Left == 0)
      return FrameIOResult::Timeout;
    struct pollfd P;
    P.fd = Fd;
    P.events = Events;
    P.revents = 0;
    int N = ::poll(&P, 1, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("poll: ") + std::strerror(errno);
      return FrameIOResult::Error;
    }
    if (N == 0)
      return FrameIOResult::Timeout;
    // Readable/writable — or HUP/ERR, which the read()/write() below will
    // turn into a precise Eof/Error.
    return FrameIOResult::Ok;
  }
}

FrameIOResult readAll(int Fd, uint8_t *Out, size_t N, bool HasDeadline,
                      Clock::time_point Deadline, bool &SawAnyByte,
                      std::string &Err) {
  size_t Done = 0;
  while (Done != N) {
    FrameIOResult W = waitFd(Fd, POLLIN, HasDeadline, Deadline, Err);
    if (W != FrameIOResult::Ok)
      return W;
    ssize_t R = ::read(Fd, Out + Done, N - Done);
    if (R < 0) {
      // EAGAIN: O_NONBLOCK fd raced another consumer or poll woke us
      // spuriously — re-poll against the deadline.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      Err = std::string("read: ") + std::strerror(errno);
      return FrameIOResult::Error;
    }
    if (R == 0) {
      if (Done != 0 || SawAnyByte)
        Err = "stream ended mid-frame";
      return FrameIOResult::Eof;
    }
    Done += static_cast<size_t>(R);
    SawAnyByte = true;
  }
  return FrameIOResult::Ok;
}

} // namespace

FrameIOResult khaos::writeDiffFrame(int Fd,
                                    const std::vector<uint8_t> &Payload,
                                    int TimeoutMs, std::string &Err) {
  if (Payload.size() > MaxFrameBytes) {
    Err = "frame exceeds the 1 GiB sanity cap";
    return FrameIOResult::Malformed;
  }
  bool HasDeadline = TimeoutMs >= 0;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs < 0 ? 0 : TimeoutMs);

  uint32_t Len = static_cast<uint32_t>(Payload.size());
  std::vector<uint8_t> Buf(4 + Payload.size());
  std::memcpy(Buf.data(), &Len, 4);
  std::memcpy(Buf.data() + 4, Payload.data(), Payload.size());

  size_t Done = 0;
  while (Done != Buf.size()) {
    FrameIOResult W = waitFd(Fd, POLLOUT, HasDeadline, Deadline, Err);
    if (W != FrameIOResult::Ok)
      return W;
    ssize_t R = ::write(Fd, Buf.data() + Done, Buf.size() - Done);
    if (R < 0) {
      // EAGAIN only occurs on O_NONBLOCK fds (the harness sets its pipe
      // ends non-blocking precisely so a full pipe cannot swallow the
      // deadline: a blocking pipe write of more than PIPE_BUF bytes
      // blocks until ALL bytes are written, past any poll() timeout).
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      if (errno == EPIPE) {
        // The reader is gone: report Eof so the pool respawns the worker.
        Err = "peer closed the pipe";
        return FrameIOResult::Eof;
      }
      Err = std::string("write: ") + std::strerror(errno);
      return FrameIOResult::Error;
    }
    Done += static_cast<size_t>(R);
  }
  return FrameIOResult::Ok;
}

FrameIOResult khaos::readDiffFrame(int Fd, std::vector<uint8_t> &Payload,
                                   int TimeoutMs, std::string &Err) {
  bool HasDeadline = TimeoutMs >= 0;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs < 0 ? 0 : TimeoutMs);

  bool SawAnyByte = false;
  uint32_t Len = 0;
  FrameIOResult R =
      readAll(Fd, reinterpret_cast<uint8_t *>(&Len), 4, HasDeadline,
              Deadline, SawAnyByte, Err);
  if (R != FrameIOResult::Ok)
    return R;
  if (Len > MaxFrameBytes) {
    Err = "frame length " + std::to_string(Len) +
          " exceeds the 1 GiB sanity cap (desynced stream?)";
    return FrameIOResult::Malformed;
  }
  Payload.resize(Len);
  return readAll(Fd, Payload.data(), Len, HasDeadline, Deadline, SawAnyByte,
                 Err);
}
