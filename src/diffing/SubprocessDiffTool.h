//===- diffing/SubprocessDiffTool.h - Out-of-process backends ---*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-process diffing backends. Real-world counterparts of the matrix
/// tools are external programs and learned models (a jTrans-style
/// transformer cannot run in-process); this adapter runs any binary that
/// speaks the DiffWorkerProtocol as a registry tool:
///
///   * registerSubprocessDiffTool() registers a DiffTool whose diff()
///     performs one request/response round trip against a pooled worker
///     process,
///   * workers are spawned lazily, reused across calls (and across tool
///     instances — the pool is keyed by the worker command line), killed
///     and respawned on failure,
///   * every round trip runs under a per-backend timeout: a hung worker
///     is SIGKILLed and the call throws DiffToolError — it never stalls a
///     shard; a crashed worker (EOF) is respawned and the request retried
///     once,
///   * the `khaos-diff-worker` executable (tools/) serves the in-process
///     registry tools over the protocol, which is what the pre-registered
///     `safe-oop` backend runs — proving the adapter end-to-end with
///     bit-identical results to the in-process "SAFE" tool.
///
/// Spawning installs SIG_IGN for SIGPIPE process-wide (a dead worker's
/// pipe must surface as an error return, not kill the harness).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_SUBPROCESSDIFFTOOL_H
#define KHAOS_DIFFING_SUBPROCESSDIFFTOOL_H

#include "diffing/DiffTool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

/// Description of one subprocess-backed tool.
struct SubprocessToolSpec {
  /// Registry name (what --tools and precisionMatrix address).
  std::string Name;
  /// Tool name placed in the request frame. A khaos-diff-worker serves
  /// the in-process registry under these names; an external model binary
  /// is free to ignore the field.
  std::string RemoteTool;
  /// argv of the worker. Empty = the bundled khaos-diff-worker (next to
  /// the running executable, overridable via $KHAOS_DIFF_WORKER) invoked
  /// as `khaos-diff-worker --tool <RemoteTool>`.
  std::vector<std::string> Command;
  /// Static Table-1 traits reported without consulting the worker
  /// (trait queries must not spawn processes).
  ToolTraits Traits;
  /// Per-backend round-trip timeout; 0 = the global default
  /// (setDiffWorkerTimeoutMs / --tool-timeout-ms).
  unsigned TimeoutMs = 0;
};

/// Registers \p Spec as a registry tool (same contract as
/// registerDiffTool: false if the name is taken). Thread-safe.
bool registerSubprocessDiffTool(const SubprocessToolSpec &Spec);

/// True if \p Name is a subprocess-backed registry tool. The worker uses
/// this to refuse serving such a name (which would recurse into another
/// worker process).
bool isSubprocessDiffTool(const std::string &Name);

/// Global default round-trip timeout in ms (0 = wait forever). The
/// benches set it from --tool-timeout-ms. Default: 60000.
void setDiffWorkerTimeoutMs(unsigned Ms);
unsigned diffWorkerTimeoutMs();

/// Path of the bundled worker executable: $KHAOS_DIFF_WORKER if set, else
/// `khaos-diff-worker` in the running executable's directory.
std::string defaultDiffWorkerPath();

/// Monotonic count of request frames sent to workers. The warm-cache
/// tests assert a re-run performs zero round trips.
uint64_t diffWorkerRoundTrips();

/// Kills and reaps every idle pooled worker (spawning stays possible —
/// the next diff() respawns on demand). Tests use this to force the
/// respawn path; benches need not call it.
void shutdownDiffWorkers();

/// Appends the built-in subprocess backends (currently `safe-oop`, the
/// out-of-process SAFE) to a registry seeding list. Called once by the
/// DiffTool registry while it seeds — that path must not call
/// registerDiffTool, which would re-enter the seeding guard.
void appendBuiltinSubprocessTools(
    std::vector<std::pair<std::string, DiffToolFactory>> &Tools);

} // namespace khaos

#endif // KHAOS_DIFFING_SUBPROCESSDIFFTOOL_H
