//===- diffing/Embedding.h - Deterministic token embeddings -----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-based stand-in for the learned token embeddings of
/// Asm2Vec/SAFE/DeepBinDiff: every token id maps to a fixed
/// pseudo-random unit vector, so cosine similarity between aggregated
/// vectors behaves like the published models' representation distance —
/// near-identical code maps to near-identical vectors, and similarity
/// degrades smoothly with edit distance of the token stream.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_EMBEDDING_H
#define KHAOS_DIFFING_EMBEDDING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace khaos {

constexpr unsigned EmbeddingDim = 32;

/// Deterministic pseudo-random vector for a token id.
std::vector<double> tokenVector(uint64_t Token);

/// Adds Scale * tokenVector(Token) into \p Acc.
void accumulateToken(std::vector<double> &Acc, uint64_t Token,
                     double Scale = 1.0);

/// Combines two token ids into a bigram token.
uint64_t bigramToken(uint64_t A, uint64_t B);

/// L2-normalizes \p Segment and appends Weight * Segment to \p Out.
/// Embeddings built from several segments give each feature family a
/// controlled share of the cosine similarity.
void appendSegment(std::vector<double> &Out, std::vector<double> Segment,
                   double Weight);

/// Similarity discount for mismatched function sizes (harmonic ratio).
/// Intra-procedural obfuscation keeps sizes comparable; fission shrinks
/// the remFunc and fusion doubles the fusFunc, which is precisely the
/// signal the published models lose accuracy to.
double sizeAffinity(double SizeA, double SizeB);

//===----------------------------------------------------------------------===//
// Position-aware attention helpers (the jTrans-style analogue). A
// transformer's two levers — positional encodings and attention pooling —
// reduce, in this deterministic stand-in, to coarse position buckets
// folded into the token vocabulary and a softmax over token/summary dot
// products. Everything is a pure function of its inputs.
//===----------------------------------------------------------------------===//

/// Number of coarse relative-position buckets in the position-aware
/// vocabularies (jump-target tokens, positional bigrams).
constexpr unsigned NumPositionBuckets = 16;

/// Coarse relative position of element \p Index in a sequence of
/// \p Total, in [0, NumPositionBuckets). Relative (not absolute) so that
/// uniformly inserted instructions — substitution, bogus blocks — shift
/// buckets only near bucket boundaries.
unsigned positionBucket(size_t Index, size_t Total);

/// Dot product of two equally-sized vectors (raw attention score).
double dotProduct(const std::vector<double> &A, const std::vector<double> &B);

/// Numerically stable softmax of \p Scores at temperature \p Temperature
/// (> 0; lower = sharper). Returns weights summing to 1; empty input
/// yields an empty vector.
std::vector<double> softmaxWeights(const std::vector<double> &Scores,
                                   double Temperature);

} // namespace khaos

#endif // KHAOS_DIFFING_EMBEDDING_H
