//===- diffing/DeepBinDiffTool.cpp - DeepBinDiff-style block matching -------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DeepBinDiff (Duan et al., NDSS'20) analogue: basic-block embeddings
/// (token vectors + two rounds of propagation over the inter-procedural
/// CFG, including call edges into callee entry blocks) matched greedily
/// across binaries. Function-level rankings are derived from how many of a
/// function's blocks match blocks of the candidate — the paper judges a
/// block pair successful when the owning functions match, so this is the
/// relaxed judgment's natural aggregation. The real tool is notoriously
/// memory-hungry; the traits reflect that.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "diffing/Embedding.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace khaos;

namespace {

/// Global block id: (function index, block index).
struct BlockRef {
  uint32_t Func = 0;
  uint32_t Block = 0;
};

class DeepBinDiffTool : public DiffTool {
public:
  const char *getName() const override { return "DeepBinDiff"; }
  ToolTraits getTraits() const override {
    ToolTraits T;
    T.Granularity = ToolGranularity::BasicBlock;
    T.TimeConsuming = true;
    T.MemoryConsuming = true;
    T.UsesCallGraph = true;
    return T;
  }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;

private:
  static std::vector<std::vector<double>>
  embedBlocks(const ImageFeatures &F, std::vector<BlockRef> &Refs);
};

std::vector<std::vector<double>>
DeepBinDiffTool::embedBlocks(const ImageFeatures &F,
                             std::vector<BlockRef> &Refs) {
  // Initial embeddings: token vectors from the block histogram.
  std::vector<std::vector<double>> Vecs;
  std::vector<size_t> FuncStart(F.Funcs.size() + 1, 0);
  for (size_t FI = 0; FI != F.Funcs.size(); ++FI) {
    FuncStart[FI] = Vecs.size();
    const FunctionFeatures &FF = F.Funcs[FI];
    for (size_t BI = 0; BI != FF.BlockHists.size(); ++BI) {
      std::vector<double> Content(EmbeddingDim, 0.0);
      for (unsigned Op = 0; Op != NumMOpcodes; ++Op)
        if (FF.BlockHists[BI][Op] > 0) {
          accumulateToken(Content, 100 + robustTokenClass(Op),
                          FF.BlockHists[BI][Op]);
          accumulateToken(Content, Op, 0.2 * FF.BlockHists[BI][Op]);
        }
      // Intra-function position and local shape: fission relocates blocks
      // into fresh functions (positions collapse towards the entry) and
      // fusion shifts them behind the ctrl dispatch.
      double NB = std::max<double>(FF.BlockHists.size(), 1.0);
      std::vector<double> Pos = {
          (double)BI / NB, std::log1p(NB) / 4.0,
          (double)FF.BlockSuccs[BI].size() / 3.0,
          std::log1p((double)FF.NumCalls) / 3.0};
      std::vector<double> V;
      appendSegment(V, std::move(Content), 1.0);
      appendSegment(V, std::move(Pos), 1.2);
      Vecs.push_back(std::move(V));
      Refs.push_back({(uint32_t)FI, (uint32_t)BI});
    }
  }
  FuncStart[F.Funcs.size()] = Vecs.size();

  // Inter-procedural adjacency: CFG successors + call edges into callee
  // entries.
  std::vector<std::vector<uint32_t>> Adj(Vecs.size());
  for (size_t FI = 0; FI != F.Funcs.size(); ++FI) {
    const FunctionFeatures &FF = F.Funcs[FI];
    for (size_t BI = 0; BI != FF.BlockSuccs.size(); ++BI) {
      uint32_t Self = static_cast<uint32_t>(FuncStart[FI] + BI);
      for (uint32_t S : FF.BlockSuccs[BI])
        if (FuncStart[FI] + S < FuncStart[FI + 1])
          Adj[Self].push_back(static_cast<uint32_t>(FuncStart[FI] + S));
    }
    for (uint32_t Callee : FF.Callees)
      if (Callee < F.Funcs.size() &&
          FuncStart[Callee] < FuncStart[Callee + 1])
        Adj[FuncStart[FI]].push_back(
            static_cast<uint32_t>(FuncStart[Callee]));
  }

  // Four strong propagation rounds: the program-wide context dominates
  // the embedding, which is what makes the real tool sensitive to
  // call-graph and control-flow restructuring (paper §4.2).
  for (int Round = 0; Round != 4; ++Round) {
    std::vector<std::vector<double>> Next = Vecs;
    for (size_t I = 0; I != Vecs.size(); ++I) {
      if (Adj[I].empty())
        continue;
      for (uint32_t N : Adj[I])
        for (unsigned K = 0; K != Vecs[I].size(); ++K)
          Next[I][K] += 0.8 * Vecs[N][K] / Adj[I].size();
    }
    Vecs = std::move(Next);
  }
  return Vecs;
}

DiffResult DeepBinDiffTool::diff(const BinaryImage & /*A*/,
                                 const ImageFeatures &FA,
                                 const BinaryImage & /*B*/,
                                 const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  std::vector<BlockRef> RefsA, RefsB;
  std::vector<std::vector<double>> VA = embedBlocks(FA, RefsA);
  std::vector<std::vector<double>> VB = embedBlocks(FB, RefsB);

  // For each A block, its best-matching B block contributes a vote to
  // (ownerA, ownerB).
  std::vector<std::vector<double>> Votes(NA, std::vector<double>(NB, 0.0));
  for (size_t I = 0; I != VA.size(); ++I) {
    double Best = -2.0;
    size_t BestJ = 0;
    for (size_t J = 0; J != VB.size(); ++J) {
      double S = cosineSimilarity(VA[I], VB[J]);
      if (S > Best) {
        Best = S;
        BestJ = J;
      }
    }
    if (!VB.empty() && Best > 0)
      Votes[RefsA[I].Func][RefsB[BestJ].Func] += Best;
  }

  double TopSum = 0.0;
  for (size_t I = 0; I != NA; ++I) {
    double NumBlocks = std::max<double>(FA.Funcs[I].NumBlocks, 1.0);
    std::vector<double> Score(NB);
    for (size_t J = 0; J != NB; ++J)
      Score[J] = Votes[I][J] / NumBlocks;
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) {
                       return Score[X] > Score[Y];
                     });
    if (!Order.empty())
      TopSum += std::min(Score[Order.front()], 1.0);
    R.Rankings[I] = std::move(Order);
  }
  R.WholeBinarySimilarity = NA ? TopSum / NA : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createDeepBinDiffTool() {
  return std::make_unique<DeepBinDiffTool>();
}
