//===- diffing/SafeTool.cpp - SAFE-style sequence embeddings -----------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SAFE (Massarelli et al., DIMVA'19) analogue: a self-attentive sequence
/// embedding approximated by position-decayed token vectors over the
/// function's linearized instruction stream. Order-aware (unlike the
/// Asm2Vec surrogate) and oblivious to symbols and the call graph.
///
//===----------------------------------------------------------------------===//

#include "diffing/DiffTool.h"
#include "diffing/Embedding.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace khaos;

namespace {

class SafeTool : public DiffTool {
public:
  const char *getName() const override { return "SAFE"; }
  ToolTraits getTraits() const override { return {}; }
  DiffResult diff(const BinaryImage &A, const ImageFeatures &FA,
                  const BinaryImage &B,
                  const ImageFeatures &FB) const override;

private:
  static std::vector<double> embed(const FunctionFeatures &F);
};

std::vector<double> SafeTool::embed(const FunctionFeatures &F) {
  // Attention surrogate: early instructions (prologue/shape) and call
  // sites get higher weight; weight decays with position. Segments as in
  // the Asm2Vec surrogate but order-aware.
  std::vector<double> Classes(EmbeddingDim, 0.0);
  std::vector<double> Raw(EmbeddingDim, 0.0);
  for (size_t I = 0; I != F.TokenSeq.size(); ++I) {
    double W = 1.0 / (1.0 + 0.015 * (double)I);
    MOp Op = (MOp)F.TokenSeq[I];
    if (Op == MOp::Call || Op == MOp::CallIndirect)
      W *= 2.0;
    accumulateToken(Classes, 100 + robustTokenClass(F.TokenSeq[I]), W);
    accumulateToken(Raw, F.TokenSeq[I], W);
    if (I + 1 < F.TokenSeq.size())
      accumulateToken(Classes,
                      bigramToken(robustTokenClass(F.TokenSeq[I]),
                                  robustTokenClass(F.TokenSeq[I + 1])),
                      0.6 * W);
  }
  // Distinctive constants: preserved by intra-procedural obfuscation,
  // scattered across functions by fission/fusion.
  std::vector<double> Imms(EmbeddingDim, 0.0);
  for (int64_t V : F.Immediates)
    accumulateToken(Imms, 0x1000000ull + static_cast<uint64_t>(V));
  std::vector<double> Out;
  appendSegment(Out, std::move(Classes), 1.0);
  appendSegment(Out, std::move(Raw), 0.35);
  appendSegment(Out, std::move(Imms), 0.7);
  return Out;
}

DiffResult SafeTool::diff(const BinaryImage & /*A*/, const ImageFeatures &FA,
                          const BinaryImage & /*B*/,
                          const ImageFeatures &FB) const {
  DiffResult R;
  size_t NA = FA.Funcs.size(), NB = FB.Funcs.size();
  R.Rankings.resize(NA);

  std::vector<std::vector<double>> EA(NA), EB(NB);
  for (size_t I = 0; I != NA; ++I)
    EA[I] = embed(FA.Funcs[I]);
  for (size_t J = 0; J != NB; ++J)
    EB[J] = embed(FB.Funcs[J]);

  double TopSum = 0.0;
  for (size_t I = 0; I != NA; ++I) {
    std::vector<double> Sim(NB);
    for (size_t J = 0; J != NB; ++J)
      Sim[J] = cosineSimilarity(EA[I], EB[J]) *
               std::pow(shapeAffinity(FA.Funcs[I], FB.Funcs[J]),
                        0.6);
    std::vector<uint32_t> Order(NB);
    for (size_t J = 0; J != NB; ++J)
      Order[J] = static_cast<uint32_t>(J);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t X, uint32_t Y) {
                       return Sim[X] > Sim[Y];
                     });
    if (!Order.empty())
      TopSum += Sim[Order.front()];
    R.Rankings[I] = std::move(Order);
  }
  R.WholeBinarySimilarity = NA ? TopSum / NA : 0.0;
  return R;
}

} // namespace

std::unique_ptr<DiffTool> khaos::createSafeTool() {
  return std::make_unique<SafeTool>();
}
