//===- diffing/BinaryFeatures.h - Shared feature extraction -----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline feature extraction (the first stage of every diffing workflow,
/// paper §2.1). Each tool consumes a subset: BinDiff the
/// (blocks, edges, calls) triple + names + call graph; VulSeeker semantic
/// category counts; Asm2Vec/SAFE token sequences; DeepBinDiff per-block
/// vectors + the inter-procedural CFG.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_BINARYFEATURES_H
#define KHAOS_DIFFING_BINARYFEATURES_H

#include "codegen/BinaryImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

/// Number of semantic categories VulSeeker-style features use.
constexpr unsigned NumSemanticCategories = 8;

/// Per-function features.
struct FunctionFeatures {
  std::string Name;
  // BinDiff triple.
  unsigned NumBlocks = 0;
  unsigned NumEdges = 0;
  unsigned NumCalls = 0;
  unsigned NumIndirectCalls = 0;
  unsigned NumInsts = 0;
  // Call-graph degrees.
  unsigned CallGraphIn = 0;
  unsigned CallGraphOut = 0;
  std::vector<uint32_t> Callees; ///< Function indices (direct, resolved).
  // Vectors.
  std::vector<double> OpcodeHist;           ///< NumMOpcodes
  std::vector<double> SemanticVec;          ///< NumSemanticCategories
  std::vector<int64_t> Immediates;          ///< Distinctive constants.
  std::vector<unsigned> TokenSeq;           ///< Opcode tokens in layout order.
  std::vector<std::vector<double>> BlockHists; ///< Per-block opcode hist.
  std::vector<std::vector<uint32_t>> BlockSuccs;
};

/// Whole-image features.
struct ImageFeatures {
  std::vector<FunctionFeatures> Funcs; ///< Parallel to Image.Functions.
};

/// Extracts all features from \p Image.
ImageFeatures extractFeatures(const BinaryImage &Image);

/// Semantic category of one machine instruction (VulSeeker-style):
/// 0 transfer, 1 arithmetic, 2 logic, 3 memory, 4 compare, 5 call,
/// 6 branch, 7 fp.
unsigned semanticCategory(const MInst &I);

/// Obfuscation-robust token class used by the learned-embedding
/// analogues: like semanticCategory but with arithmetic and logic merged,
/// because instruction substitution rewrites within that union.
unsigned robustTokenClass(unsigned Opcode);

/// Multiplicative affinity in (0, 1] from the CFG shape distance
/// exp(-L1(log-shape)). Intra-procedural obfuscation perturbs the shape
/// mildly; moving code across functions (fission/fusion) changes every
/// component multiplicatively and drives the affinity towards zero.
double shapeAffinity(const FunctionFeatures &A, const FunctionFeatures &B);

/// Immediate dominator of every block of a machine CFG given as per-block
/// successor lists (entry = block 0), computed with the Cooper-Harvey-
/// Kennedy algorithm — the machine-level mirror of analysis/DominatorTree,
/// which the graph-matching backends (ORCAS-style) consume because
/// dominance survives block reordering and edge obfuscation better than
/// layout order does. Entry and unreachable blocks get -1.
std::vector<int32_t>
computeBlockIDoms(const std::vector<std::vector<uint32_t>> &Succs);

/// Dominator-tree depth of every block (entry = 0) from a
/// computeBlockIDoms result; unreachable blocks get -1.
std::vector<int32_t> dominatorDepths(const std::vector<int32_t> &IDoms);

/// Condenses a per-block opcode histogram (length NumMOpcodes) to the
/// NumSemanticCategories semantic categories — the node labels of the
/// semantic graphs.
std::vector<double> semanticHistogram(const std::vector<double> &OpcodeHist);

} // namespace khaos

#endif // KHAOS_DIFFING_BINARYFEATURES_H
