//===- diffing/Metrics.h - Precision@1 / escape@k ---------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation metrics with the paper's relaxed pairing judgment (§4.2):
/// for fission, pairing the oriFunc with any of its sepFuncs or with the
/// remFunc counts as success; for fusion, pairing with the containing
/// fusFunc counts. Our provenance metadata (MFunction::Origins) encodes
/// exactly this relation.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_DIFFING_METRICS_H
#define KHAOS_DIFFING_METRICS_H

#include "diffing/DiffTool.h"

#include <limits>
#include <string>
#include <vector>

namespace khaos {

/// Relaxed pairing: does \p Candidate contain code originating from
/// \p OrigName?
bool pairingMatches(const MFunction &Candidate, const std::string &OrigName);

/// Fraction of A's functions whose top-ranked candidate in B passes the
/// relaxed pairing judgment (the paper's Precision@1).
double precisionAt1(const BinaryImage &A, const BinaryImage &B,
                    const DiffResult &R);

/// 1-based rank of the first true match for \p FuncName's A-side entry;
/// returns UINT32_MAX when the function or a true match is absent.
uint32_t trueMatchRank(const BinaryImage &A, const BinaryImage &B,
                       const DiffResult &R, const std::string &FuncName);

/// Fraction of \p VulnFuncs whose true match ranks strictly below the
/// top-K (the paper's escape@K; higher = better hiding).
double escapeRatioAtK(const BinaryImage &A, const BinaryImage &B,
                      const DiffResult &R,
                      const std::vector<std::string> &VulnFuncs,
                      unsigned K);

} // namespace khaos

#endif // KHAOS_DIFFING_METRICS_H
