//===- diffing/Metrics.cpp - Precision@1 / escape@k -----------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "diffing/Metrics.h"

#include <algorithm>

using namespace khaos;

bool khaos::pairingMatches(const MFunction &Candidate,
                           const std::string &OrigName) {
  return std::find(Candidate.Origins.begin(), Candidate.Origins.end(),
                   OrigName) != Candidate.Origins.end();
}

double khaos::precisionAt1(const BinaryImage &A, const BinaryImage &B,
                           const DiffResult &R) {
  if (A.Functions.empty())
    return 0.0;
  unsigned Hits = 0, Considered = 0;
  for (size_t I = 0; I != A.Functions.size(); ++I) {
    if (I >= R.Rankings.size() || R.Rankings[I].empty())
      continue;
    ++Considered;
    const MFunction &Top = B.Functions[R.Rankings[I].front()];
    if (pairingMatches(Top, A.Functions[I].Name))
      ++Hits;
  }
  return Considered ? static_cast<double>(Hits) / Considered : 0.0;
}

uint32_t khaos::trueMatchRank(const BinaryImage &A, const BinaryImage &B,
                              const DiffResult &R,
                              const std::string &FuncName) {
  auto It = A.FunctionIndex.find(FuncName);
  if (It == A.FunctionIndex.end() || It->second >= R.Rankings.size())
    return UINT32_MAX;
  const std::vector<uint32_t> &Order = R.Rankings[It->second];
  for (size_t Rank = 0; Rank != Order.size(); ++Rank)
    if (pairingMatches(B.Functions[Order[Rank]], FuncName))
      return static_cast<uint32_t>(Rank + 1);
  return UINT32_MAX;
}

double khaos::escapeRatioAtK(const BinaryImage &A, const BinaryImage &B,
                             const DiffResult &R,
                             const std::vector<std::string> &VulnFuncs,
                             unsigned K) {
  if (VulnFuncs.empty())
    return 0.0;
  unsigned Escaped = 0;
  for (const std::string &V : VulnFuncs)
    if (trueMatchRank(A, B, R, V) > K)
      ++Escaped;
  return static_cast<double>(Escaped) / VulnFuncs.size();
}
