//===- analysis/CallGraph.cpp - Module call graph ------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "ir/Module.h"

using namespace khaos;

const std::set<Function *> CallGraph::EmptySet;
const std::vector<CallInst *> CallGraph::EmptyVec;

CallGraph::CallGraph(const Module &M) {
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->insts()) {
        auto *CI = dyn_cast<CallInst>(I.get());
        if (!CI)
          continue;
        if (Function *Callee = CI->getCalledFunction()) {
          Callees[F.get()].insert(Callee);
          Callers[Callee].insert(F.get());
          CallSites[F.get()].push_back(CI);
        } else {
          IndirectSites[F.get()].push_back(CI);
        }
      }
    }
  }
}

const std::set<Function *> &CallGraph::getCallees(const Function *F) const {
  auto It = Callees.find(F);
  return It == Callees.end() ? EmptySet : It->second;
}

const std::set<Function *> &CallGraph::getCallers(const Function *F) const {
  auto It = Callers.find(F);
  return It == Callers.end() ? EmptySet : It->second;
}

const std::vector<CallInst *> &
CallGraph::getCallSites(const Function *F) const {
  auto It = CallSites.find(F);
  return It == CallSites.end() ? EmptyVec : It->second;
}

const std::vector<CallInst *> &
CallGraph::getIndirectCallSites(const Function *F) const {
  auto It = IndirectSites.find(F);
  return It == IndirectSites.end() ? EmptyVec : It->second;
}

bool CallGraph::haveDirectCallRelation(const Function *A,
                                       const Function *B) const {
  return getCallees(A).count(const_cast<Function *>(B)) ||
         getCallees(B).count(const_cast<Function *>(A));
}
