//===- analysis/EscapeAnalysis.h - Function address escape ------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides whether a function's address may propagate outside the current
/// module (paper §3.3.3, "handling function calls across modules"). Fusion
/// must route such functions through a trampoline that keeps the original
/// ABI, because external code cannot be taught about tags or the fusFunc
/// signature.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_ANALYSIS_ESCAPEANALYSIS_H
#define KHAOS_ANALYSIS_ESCAPEANALYSIS_H

#include <set>

namespace khaos {

class Function;
class Module;

/// Conservative may-escape analysis for function addresses.
class EscapeAnalysis {
public:
  explicit EscapeAnalysis(const Module &M);

  /// True when \p F's address may be observed outside the module: F is
  /// exported, F's address is passed to a declared (external) function,
  /// stored to non-local memory reachable from outside, or returned by an
  /// exported function.
  bool addressMayEscapeModule(const Function *F) const {
    return Escaping.count(F) != 0;
  }

private:
  std::set<const Function *> Escaping;
};

} // namespace khaos

#endif // KHAOS_ANALYSIS_ESCAPEANALYSIS_H
