//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop discovery from back edges (edges whose target dominates the
/// source). Fission's Algorithm 1 multiplies a region's cut cost by the
/// assumed trip count of the innermost loop containing it.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_ANALYSIS_LOOPINFO_H
#define KHAOS_ANALYSIS_LOOPINFO_H

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace khaos {

class BasicBlock;
class DominatorTree;

/// One natural loop.
struct Loop {
  BasicBlock *Header = nullptr;
  Loop *Parent = nullptr;
  unsigned Depth = 1;
  std::set<BasicBlock *> Blocks;
  std::vector<Loop *> SubLoops;

  bool contains(const BasicBlock *BB) const {
    return Blocks.count(const_cast<BasicBlock *>(BB)) != 0;
  }
};

/// Loop nest of one function.
class LoopInfo {
public:
  explicit LoopInfo(const DominatorTree &DT);

  /// Innermost loop containing \p BB, or null.
  Loop *getLoopFor(const BasicBlock *BB) const;

  /// Nesting depth (0 = not in any loop).
  unsigned getLoopDepth(const BasicBlock *BB) const;

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Assumed trip count used as the cost multiplier in Algorithm 1.
  static constexpr unsigned AssumedTripCount = 10;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::map<const BasicBlock *, Loop *> InnermostLoop;
};

} // namespace khaos

#endif // KHAOS_ANALYSIS_LOOPINFO_H
