//===- analysis/InnocuousAnalysis.h - Innocuous block analysis --*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifies *innocuous* basic blocks (paper §3.3.4): blocks whose
/// execution cannot affect the global memory state, so they may be executed
/// speculatively on a control path that does not belong to their function.
/// Deep fusion merges innocuous blocks from the two halves of a fusFunc to
/// entangle their control and data flow.
///
/// The analysis is conservative:
///   - stores must target memory proven local (an alloca of the same
///     function, possibly through GEPs);
///   - no calls/invokes/throws at all;
///   - no division or remainder (re-execution with garbage operands could
///     trap).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_ANALYSIS_INNOCUOUSANALYSIS_H
#define KHAOS_ANALYSIS_INNOCUOUSANALYSIS_H

namespace khaos {

class BasicBlock;
class Instruction;
class Value;

/// True when every store in \p BB provably writes function-local memory and
/// the block has no other side effects.
bool isInnocuousBlock(const BasicBlock &BB);

/// True when \p I alone is innocuous under the same rules.
bool isInnocuousInstruction(const Instruction &I);

/// True when \p Ptr provably points into an alloca of its own function
/// (walking through GEP/bitcast chains).
bool pointsToLocalAlloca(const Value *Ptr);

} // namespace khaos

#endif // KHAOS_ANALYSIS_INNOCUOUSANALYSIS_H
