//===- analysis/DominatorTree.cpp - Dominance analysis ----------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace khaos;

const std::vector<BasicBlock *> DominatorTree::Empty;

static void postorderVisit(BasicBlock *BB, std::set<BasicBlock *> &Seen,
                           std::vector<BasicBlock *> &Out) {
  if (!Seen.insert(BB).second)
    return;
  for (BasicBlock *S : BB->successors())
    postorderVisit(S, Seen, Out);
  Out.push_back(BB);
}

DominatorTree::DominatorTree(const Function &F) : F(F) {
  if (F.blocks().empty())
    return;

  // Reverse postorder from the entry.
  std::set<BasicBlock *> Seen;
  std::vector<BasicBlock *> Post;
  postorderVisit(F.getEntryBlock(), Seen, Post);
  RPO.assign(Post.rbegin(), Post.rend());
  for (unsigned I = 0, E = RPO.size(); I != E; ++I)
    RPONumber[RPO[I]] = I;

  // Cooper-Harvey-Kennedy iteration.
  BasicBlock *Entry = F.getEntryBlock();
  IDom[Entry] = Entry;

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPONumber[A] > RPONumber[B])
        A = IDom[A];
      while (RPONumber[B] > RPONumber[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : BB->predecessors()) {
        if (!RPONumber.count(P) || !IDom.count(P))
          continue; // Unreachable or unprocessed predecessor.
        NewIDom = NewIDom ? Intersect(NewIDom, P) : P;
      }
      assert(NewIDom && "reachable block without processed predecessor");
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }

  // Entry's IDom is conventionally null; build children lists.
  IDom[Entry] = nullptr;
  for (BasicBlock *BB : RPO)
    if (BasicBlock *D = IDom[BB])
      Children[D].push_back(BB);
}

BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  return It == IDom.end() ? nullptr : It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  const BasicBlock *Cur = B;
  while (Cur) {
    if (Cur == A)
      return true;
    Cur = getIDom(Cur);
  }
  return false;
}

const std::vector<BasicBlock *> &
DominatorTree::getChildren(const BasicBlock *BB) const {
  auto It = Children.find(BB);
  return It == Children.end() ? Empty : It->second;
}

std::vector<BasicBlock *>
DominatorTree::getSubtree(const BasicBlock *BB) const {
  std::vector<BasicBlock *> Out;
  if (!isReachable(BB))
    return Out;
  std::vector<const BasicBlock *> Work{BB};
  while (!Work.empty()) {
    const BasicBlock *Cur = Work.back();
    Work.pop_back();
    Out.push_back(const_cast<BasicBlock *>(Cur));
    for (BasicBlock *C : getChildren(Cur))
      Work.push_back(C);
  }
  return Out;
}
