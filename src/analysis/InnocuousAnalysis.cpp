//===- analysis/InnocuousAnalysis.cpp - Innocuous block analysis ---------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/InnocuousAnalysis.h"

#include "ir/BasicBlock.h"
#include "ir/Instruction.h"

using namespace khaos;

bool khaos::pointsToLocalAlloca(const Value *Ptr) {
  while (true) {
    if (isa<AllocaInst>(Ptr))
      return true;
    if (const auto *GEP = dyn_cast<GEPInst>(Ptr)) {
      Ptr = GEP->getPointer();
      continue;
    }
    if (const auto *CI = dyn_cast<CastInst>(Ptr)) {
      if (CI->getCastKind() == CastKind::Bitcast) {
        Ptr = CI->getSource();
        continue;
      }
      return false;
    }
    return false;
  }
}

bool khaos::isInnocuousInstruction(const Instruction &I) {
  switch (I.getOpcode()) {
  case Opcode::Call:
  case Opcode::Invoke:
  case Opcode::Throw:
  case Opcode::LandingPad: // Reads unwinder state; must stay in place.
    return false;
  case Opcode::Store:
    return pointsToLocalAlloca(cast<StoreInst>(&I)->getPointer());
  case Opcode::BinOp:
    return !cast<BinaryInst>(&I)->isDivRem() &&
           cast<BinaryInst>(&I)->getBinOp() != BinOp::SRem;
  case Opcode::Alloca:
    // Moving an alloca out of the entry block changes its lifetime; deep
    // fusion never merges blocks containing allocas.
    return false;
  default:
    return true;
  }
}

bool khaos::isInnocuousBlock(const BasicBlock &BB) {
  for (const auto &I : BB.insts()) {
    if (I->isTerminator())
      continue; // Terminators are handled by the merge itself.
    if (!isInnocuousInstruction(*I))
      return false;
  }
  return true;
}
