//===- analysis/EscapeAnalysis.cpp - Function address escape -------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/EscapeAnalysis.h"

#include "analysis/InnocuousAnalysis.h"
#include "ir/Module.h"

using namespace khaos;

EscapeAnalysis::EscapeAnalysis(const Module &M) {
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    if (F->isExported()) {
      Escaping.insert(F.get());
      continue;
    }
    for (const Instruction *U : F->users()) {
      // Callee slot of a direct call never escapes.
      if (const auto *CI = dyn_cast<CallInst>(U)) {
        bool IsArg = false;
        for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A)
          if (CI->getArg(A) == F.get())
            IsArg = true;
        if (!IsArg)
          continue;
        // Address passed as an argument: escapes if the callee is external
        // or unknown (indirect).
        const Function *Callee = CI->getCalledFunction();
        if (!Callee || Callee->isDeclaration() || Callee->isIntrinsic()) {
          Escaping.insert(F.get());
          break;
        }
        continue;
      }
      if (const auto *SI = dyn_cast<StoreInst>(U)) {
        // Stored somewhere: escapes unless the destination is provably a
        // local alloca.
        if (!pointsToLocalAlloca(SI->getPointer())) {
          Escaping.insert(F.get());
          break;
        }
        continue;
      }
      if (isa<ReturnInst>(U)) {
        // Returned: escape only if the returning function is exported; be
        // conservative and treat it as escaping.
        Escaping.insert(F.get());
        break;
      }
      // Cast/select/GEP/...: the address flows onward — conservative.
      Escaping.insert(F.get());
      break;
    }
  }

  // Note: addresses in global *initializers* are module-private data, not
  // escapes — the paper's appendix A.1 tags exactly these statically
  // initialized pointers through the relocation addend. Fusion treats them
  // as intra-module address-taking instead.
}
