//===- analysis/BlockFrequency.cpp - Static execution frequency ---------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/BlockFrequency.h"

#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"

#include <cmath>

using namespace khaos;

BlockFrequency::BlockFrequency(const DominatorTree &DT, const LoopInfo &LI) {
  const Function &F = DT.getFunction();
  if (F.blocks().empty())
    return;

  // Pass 1: propagate probabilities along the RPO, dropping back edges
  // (edges into a dominator). Entry gets probability 1.
  for (BasicBlock *BB : DT.getRPO())
    Freq[BB] = 0.0;
  Freq[F.getEntryBlock()] = 1.0;

  for (BasicBlock *BB : DT.getRPO()) {
    double P = Freq[BB];
    if (P == 0.0)
      continue;
    std::vector<BasicBlock *> Succs = BB->successors();
    if (Succs.empty())
      continue;
    double Share = P / Succs.size();
    for (BasicBlock *S : Succs) {
      if (DT.dominates(S, BB))
        continue; // Back edge: the loop scale below accounts for it.
      Freq[S] += Share;
    }
  }

  // Pass 2: scale by assumed trip count per loop nesting level.
  for (const auto &BB : F.blocks()) {
    unsigned Depth = LI.getLoopDepth(BB.get());
    if (Depth)
      Freq[BB.get()] *= std::pow((double)LoopInfo::AssumedTripCount, Depth);
  }
}

double BlockFrequency::getFrequency(const BasicBlock *BB) const {
  auto It = Freq.find(BB);
  return It == Freq.end() ? 0.0 : It->second;
}
