//===- analysis/DominatorTree.h - Dominance analysis ------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree built with the Cooper-Harvey-Kennedy algorithm
/// ("A Simple, Fast Dominance Algorithm"). Fission's region identification
/// (paper Algorithm 1) enumerates dominator-tree subtrees as candidate
/// regions, because a subtree is single-entry and can become a function.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_ANALYSIS_DOMINATORTREE_H
#define KHAOS_ANALYSIS_DOMINATORTREE_H

#include <map>
#include <vector>

namespace khaos {

class BasicBlock;
class Function;

/// Dominator tree over a function's CFG. Unreachable blocks are excluded
/// from the tree (isReachable() reports membership).
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  const Function &getFunction() const { return F; }

  bool isReachable(const BasicBlock *BB) const {
    return RPONumber.count(BB) != 0;
  }

  /// Immediate dominator; null for the entry block and unreachable blocks.
  BasicBlock *getIDom(const BasicBlock *BB) const;

  /// True when \p A dominates \p B (reflexively).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Children of \p BB in the dominator tree.
  const std::vector<BasicBlock *> &getChildren(const BasicBlock *BB) const;

  /// All blocks dominated by \p BB (the subtree rooted at \p BB),
  /// in dominator-tree preorder. This is a candidate fission region.
  std::vector<BasicBlock *> getSubtree(const BasicBlock *BB) const;

  /// Reachable blocks in reverse postorder.
  const std::vector<BasicBlock *> &getRPO() const { return RPO; }

private:
  const Function &F;
  std::vector<BasicBlock *> RPO;
  std::map<const BasicBlock *, unsigned> RPONumber;
  std::map<const BasicBlock *, BasicBlock *> IDom;
  std::map<const BasicBlock *, std::vector<BasicBlock *>> Children;
  static const std::vector<BasicBlock *> Empty;
};

} // namespace khaos

#endif // KHAOS_ANALYSIS_DOMINATORTREE_H
