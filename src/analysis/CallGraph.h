//===- analysis/CallGraph.h - Module call graph ----------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct-call graph over a module plus indirect call-site inventory. The
/// fusion primitive refuses to aggregate two functions with a direct call
/// relationship (recursion blow-up, paper §3.3.1); the inliner and the
/// diffing feature extractor consume it too.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_ANALYSIS_CALLGRAPH_H
#define KHAOS_ANALYSIS_CALLGRAPH_H

#include <map>
#include <set>
#include <vector>

namespace khaos {

class CallInst;
class Function;
class Module;

/// Call graph of one module.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Functions \p F calls directly (deduplicated).
  const std::set<Function *> &getCallees(const Function *F) const;

  /// Functions calling \p F directly (deduplicated).
  const std::set<Function *> &getCallers(const Function *F) const;

  /// Direct call sites inside \p F.
  const std::vector<CallInst *> &getCallSites(const Function *F) const;

  /// Indirect call sites inside \p F.
  const std::vector<CallInst *> &getIndirectCallSites(const Function *F)
      const;

  /// True when A calls B or B calls A directly.
  bool haveDirectCallRelation(const Function *A, const Function *B) const;

private:
  std::map<const Function *, std::set<Function *>> Callees;
  std::map<const Function *, std::set<Function *>> Callers;
  std::map<const Function *, std::vector<CallInst *>> CallSites;
  std::map<const Function *, std::vector<CallInst *>> IndirectSites;
  static const std::set<Function *> EmptySet;
  static const std::vector<CallInst *> EmptyVec;
};

} // namespace khaos

#endif // KHAOS_ANALYSIS_CALLGRAPH_H
