//===- analysis/LoopInfo.cpp - Natural loop detection -------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/DominatorTree.h"
#include "ir/Function.h"

#include <algorithm>

using namespace khaos;

LoopInfo::LoopInfo(const DominatorTree &DT) {
  const Function &F = DT.getFunction();

  // Collect back edges grouped by header.
  std::map<BasicBlock *, std::vector<BasicBlock *>> Latches;
  for (const auto &BB : F.blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    for (BasicBlock *S : BB->successors())
      if (DT.dominates(S, BB.get()))
        Latches[S].push_back(BB.get());
  }

  // Build one loop per header: blocks reaching a latch without passing the
  // header.
  for (auto &[Header, Tails] : Latches) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Blocks.insert(Header);
    std::vector<BasicBlock *> Work = Tails;
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L->Blocks.insert(BB).second)
        continue;
      for (BasicBlock *P : BB->predecessors())
        if (DT.isReachable(P))
          Work.push_back(P);
    }
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B if B contains A's header and A != B.
  // Sort by size so the innermost (smallest) loops are found first.
  std::vector<Loop *> BySize;
  for (auto &L : Loops)
    BySize.push_back(L.get());
  std::sort(BySize.begin(), BySize.end(), [](Loop *A, Loop *B) {
    return A->Blocks.size() < B->Blocks.size();
  });

  for (Loop *L : BySize) {
    // The parent is the smallest strictly-larger loop containing the header.
    Loop *Best = nullptr;
    for (Loop *Cand : BySize) {
      if (Cand == L || Cand->Blocks.size() < L->Blocks.size())
        continue;
      if (!Cand->contains(L->Header) || Cand == L)
        continue;
      if (Cand->Blocks.size() == L->Blocks.size() &&
          Cand->Header == L->Header)
        continue;
      if (!Best || Cand->Blocks.size() < Best->Blocks.size())
        Best = Cand;
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L);
  }
  for (Loop *L : BySize) {
    unsigned D = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++D;
    L->Depth = D;
  }

  // Innermost loop per block: smallest containing loop wins.
  for (Loop *L : BySize)
    for (BasicBlock *BB : L->Blocks)
      if (!InnermostLoop.count(BB))
        InnermostLoop[BB] = L;
}

Loop *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  auto It = InnermostLoop.find(BB);
  return It == InnermostLoop.end() ? nullptr : It->second;
}

unsigned LoopInfo::getLoopDepth(const BasicBlock *BB) const {
  Loop *L = getLoopFor(BB);
  return L ? L->Depth : 0;
}
