//===- analysis/BlockFrequency.h - Static execution frequency ---*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static block frequency estimation in the spirit of LLVM's
/// BlockFrequencyInfo: probabilities flow along the acyclic CFG (back edges
/// removed) with equal branch splitting, then every block is scaled by the
/// assumed trip count of each enclosing loop. Algorithm 1 uses this as the
/// "cost" of cutting a region at its head.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_ANALYSIS_BLOCKFREQUENCY_H
#define KHAOS_ANALYSIS_BLOCKFREQUENCY_H

#include <map>

namespace khaos {

class BasicBlock;
class DominatorTree;
class LoopInfo;

/// Per-block static execution frequency (entry block = 1.0).
class BlockFrequency {
public:
  BlockFrequency(const DominatorTree &DT, const LoopInfo &LI);

  /// Estimated executions of \p BB per function invocation.
  double getFrequency(const BasicBlock *BB) const;

private:
  std::map<const BasicBlock *, double> Freq;
};

} // namespace khaos

#endif // KHAOS_ANALYSIS_BLOCKFREQUENCY_H
