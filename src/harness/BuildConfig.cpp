//===- harness/BuildConfig.cpp - Baseline build configuration -------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/BuildConfig.h"

#include <cctype>

using namespace khaos;

BuildConfig BuildConfig::forLevel(OptLevel Level) {
  BuildConfig BC;
  BC.Level = Level;
  BC.Codegen.SpillEverything = Level == OptLevel::O0;
  return BC;
}

uint64_t BuildConfig::fingerprint() const {
  uint64_t F = static_cast<uint64_t>(Level);
  F |= static_cast<uint64_t>(Codegen.SpillEverything) << 8;
  F |= static_cast<uint64_t>(Codegen.UseLea) << 9;
  F |= static_cast<uint64_t>(Codegen.UseCmov) << 10;
  F |= static_cast<uint64_t>(Codegen.UseJumpTables) << 11;
  F |= static_cast<uint64_t>(Codegen.AlignLoops) << 12;
  F |= static_cast<uint64_t>(Codegen.Style == CompilerStyle::GccLike) << 13;
  return F;
}

uint8_t BuildConfig::packedCodegen() const {
  uint8_t P = 0;
  P |= static_cast<uint8_t>(Codegen.SpillEverything) << 0;
  P |= static_cast<uint8_t>(Codegen.UseLea) << 1;
  P |= static_cast<uint8_t>(Codegen.UseCmov) << 2;
  P |= static_cast<uint8_t>(Codegen.UseJumpTables) << 3;
  P |= static_cast<uint8_t>(Codegen.AlignLoops) << 4;
  P |= static_cast<uint8_t>(Codegen.Style == CompilerStyle::GccLike) << 5;
  return P;
}

CodegenOptions BuildConfig::unpackCodegen(uint8_t Packed) {
  CodegenOptions CG;
  CG.SpillEverything = (Packed >> 0) & 1;
  CG.UseLea = (Packed >> 1) & 1;
  CG.UseCmov = (Packed >> 2) & 1;
  CG.UseJumpTables = (Packed >> 3) & 1;
  CG.AlignLoops = (Packed >> 4) & 1;
  CG.Style = ((Packed >> 5) & 1) ? CompilerStyle::GccLike
                                 : CompilerStyle::ClangLike;
  return CG;
}

std::string BuildConfig::name() const {
  const CodegenOptions Ref = forLevel(Level).Codegen;
  std::string N = optLevelName(Level);
  if (Codegen.SpillEverything != Ref.SpillEverything)
    N += Codegen.SpillEverything ? "+spill" : "-spill";
  if (!Codegen.UseLea)
    N += "-lea";
  if (!Codegen.UseCmov)
    N += "-cmov";
  if (!Codegen.UseJumpTables)
    N += "-jt";
  if (!Codegen.AlignLoops)
    N += "-align";
  if (Codegen.Style == CompilerStyle::GccLike)
    N += "+gcc";
  return N;
}

bool BuildConfig::operator==(const BuildConfig &O) const {
  return fingerprint() == O.fingerprint();
}

const char *khaos::optLevelName(OptLevel Level) {
  switch (Level) {
  case OptLevel::O0:
    return "O0";
  case OptLevel::O1:
    return "O1";
  case OptLevel::O2:
    return "O2";
  case OptLevel::O3:
    return "O3";
  }
  return "O?";
}

bool khaos::parseOptLevelName(const std::string &Text, OptLevel &Out) {
  if (Text.size() != 2 || (Text[0] != 'O' && Text[0] != 'o'))
    return false;
  if (Text[1] < '0' || Text[1] > '3')
    return false;
  Out = static_cast<OptLevel>(Text[1] - '0');
  return true;
}

namespace {

std::vector<std::string> splitCommas(const std::string &Text) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : Text) {
    if (C == ',') {
      Out.push_back(Cur);
      Cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(C))) {
      Cur.push_back(C);
    }
  }
  Out.push_back(Cur);
  return Out;
}

} // namespace

bool khaos::parseBaselineOptList(const std::string &Text,
                                 std::vector<BuildConfig> &Out,
                                 std::string &Err) {
  std::vector<BuildConfig> Parsed;
  for (const std::string &Tok : splitCommas(Text)) {
    if (Tok.empty()) {
      Err = "empty entry in opt-level list '" + Text + "'";
      return false;
    }
    OptLevel Level;
    if (!parseOptLevelName(Tok, Level)) {
      Err = "unknown opt level '" + Tok + "' (expected O0..O3)";
      return false;
    }
    BuildConfig BC = BuildConfig::forLevel(Level);
    for (const BuildConfig &Seen : Parsed)
      if (Seen == BC) {
        Err = "duplicate opt level '" + Tok + "'";
        return false;
      }
    Parsed.push_back(BC);
  }
  Out = std::move(Parsed);
  return true;
}

bool khaos::applyCodegenTokens(const std::string &Text, CodegenOptions &CG,
                               std::string &Err) {
  for (const std::string &Tok : splitCommas(Text)) {
    if (Tok.empty()) {
      // A trailing comma would otherwise surface as the baffling
      // "unknown codegen token ''".
      Err = "empty entry in codegen token list '" + Text + "'";
      return false;
    }
    bool On = true;
    std::string Name = Tok;
    if (Name.rfind("no-", 0) == 0) {
      On = false;
      Name = Name.substr(3);
    }
    if (Name == "spill")
      CG.SpillEverything = On;
    else if (Name == "lea")
      CG.UseLea = On;
    else if (Name == "cmov")
      CG.UseCmov = On;
    else if (Name == "jump-tables")
      CG.UseJumpTables = On;
    else if (Name == "align-loops")
      CG.AlignLoops = On;
    else {
      Err = "unknown codegen token '" + Tok +
            "' (expected [no-]{spill,lea,cmov,jump-tables,align-loops})";
      return false;
    }
  }
  return true;
}

bool khaos::parseCompilerStyleName(const std::string &Text,
                                   CompilerStyle &Out) {
  std::string Lower;
  for (char C : Text)
    Lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
  if (Lower == "clang") {
    Out = CompilerStyle::ClangLike;
    return true;
  }
  if (Lower == "gcc") {
    Out = CompilerStyle::GccLike;
    return true;
  }
  return false;
}

bool khaos::parseCompilerStyleList(const std::string &Text,
                                   std::vector<CompilerStyle> &Out,
                                   std::string &Err) {
  std::vector<CompilerStyle> Parsed;
  for (const std::string &Tok : splitCommas(Text)) {
    if (Tok.empty()) {
      Err = "empty entry in compiler-style list '" + Text + "'";
      return false;
    }
    CompilerStyle Style;
    if (!parseCompilerStyleName(Tok, Style)) {
      Err = "unknown compiler style '" + Tok + "' (expected clang or gcc)";
      return false;
    }
    for (CompilerStyle Seen : Parsed)
      if (Seen == Style) {
        Err = "duplicate compiler style '" + Tok + "'";
        return false;
      }
    Parsed.push_back(Style);
  }
  Out = std::move(Parsed);
  return true;
}
