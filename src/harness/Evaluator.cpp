//===- harness/Evaluator.cpp - Staged evaluation pipeline -----------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/Evaluator.h"

#include "diffing/DiffWorkerProtocol.h"
#include "diffing/Metrics.h"
#include "frontend/IRGen.h"
#include "vm/PrecompiledInterpreter.h"
#include "ir/Verifier.h"
#include "transform/Cloning.h"

using namespace khaos;

namespace {

/// FNV-1a of the workload's MiniC source: keys must distinguish two
/// workloads that merely share a name (the content-address part of the
/// ArtifactKey contract).
uint64_t fingerprintSource(const Workload &W) {
  uint64_t F = 0xcbf29ce484222325ull;
  for (char C : W.Source) {
    F ^= static_cast<unsigned char>(C);
    F *= 0x100000001b3ull;
  }
  return F;
}

/// FNV-1a of a tool name, half of the DiffOutcome stage's Extra: two
/// tools over the same cell must not alias.
uint64_t fingerprintToolName(const std::string &Name) {
  uint64_t F = 0xcbf29ce484222325ull;
  for (char C : Name) {
    F ^= static_cast<unsigned char>(C);
    F *= 0x100000001b3ull;
  }
  return F;
}

/// The DiffOutcome stage's Extra: tool name mixed with the baseline
/// build config. A cell diffed against an O0 reference is a different
/// experiment than the same cell against O2 — the keys must say so.
uint64_t fingerprintToolAndConfig(const std::string &Name,
                                  const BuildConfig &BC) {
  uint64_t F = fingerprintToolName(Name);
  F ^= BC.fingerprint() + 0x9e3779b97f4a7c15ull + (F << 6) + (F >> 2);
  return F;
}

/// Stage-key fingerprint of the fission options (fission has no seed; its
/// output is a pure function of the module and these knobs).
uint64_t fingerprintFission(const FissionOptions &Opts) {
  uint64_t F = 0xcbf29ce484222325ull;
  auto Mix = [&F](uint64_t V) {
    F ^= V;
    F *= 0x100000001b3ull;
  };
  Mix(Opts.Regions.MinBlocks);
  Mix(Opts.Regions.MaxRegionsPerFunction);
  Mix(Opts.Regions.IgnoreFrequencyCost);
  for (char C : Opts.SepSuffix)
    Mix(static_cast<unsigned char>(C));
  return F;
}

//===----------------------------------------------------------------------===//
// Disk-tier codecs. Only plain-data stages have one: the module-holding
// stages (Baseline, FissionStage, PrecompiledModule) would need an IR
// serializer to persist, and recompiling them is exactly what a disk-hit
// on the downstream image/run/diff stages avoids anyway. Every codec
// declines to Encode failure artifacts — a transient failure (frontend
// bug under a fuzzer seed, a worker timeout) must not become permanent
// across processes. Encodings reuse the diff-worker wire primitives, so
// a decoded artifact is field-for-field identical to the computed one
// (doubles travel as raw bit patterns): cold vs. warm runs stay
// byte-identical, the disk tier's contract.
//===----------------------------------------------------------------------===//

void writeExecResult(WireWriter &W, const ExecResult &R) {
  W.u8(R.Ok ? 1 : 0);
  W.str(R.Error);
  W.str(R.FaultFunction);
  W.str(R.FaultBlock);
  W.i64(R.ExitValue);
  W.str(R.Stdout);
  W.u64(R.Steps);
  W.u64(R.Cost);
}

bool readExecResult(WireReader &R, ExecResult &Out) {
  Out.Ok = R.u8() != 0;
  Out.Error = R.str();
  Out.FaultFunction = R.str();
  Out.FaultBlock = R.str();
  Out.ExitValue = R.i64();
  Out.Stdout = R.str();
  Out.Steps = R.u64();
  Out.Cost = R.u64();
  return R.ok();
}

const ArtifactCodec &baselineRunCodec() {
  static const ArtifactCodec C{
      [](const void *V, std::vector<uint8_t> &Out) {
        const auto *A =
            static_cast<const EvalPipeline::BaselineRunArtifact *>(V);
        if (!A->Ok)
          return false;
        WireWriter W;
        writeExecResult(W, A->Run);
        Out = std::move(W.Buf);
        return true;
      },
      [](const uint8_t *D, size_t N) -> std::shared_ptr<const void> {
        WireReader R(D, N);
        auto A = std::make_shared<EvalPipeline::BaselineRunArtifact>();
        if (!readExecResult(R, A->Run) || !R.atEnd())
          return nullptr;
        A->Ok = true;
        return A;
      }};
  return C;
}

const ArtifactCodec &imageCodec() {
  static const ArtifactCodec C{
      [](const void *V, std::vector<uint8_t> &Out) {
        const auto *A = static_cast<const EvalPipeline::ImageArtifact *>(V);
        if (!A->Ok)
          return false;
        WireWriter W;
        writeBinaryImage(W, A->Image);
        writeImageFeatures(W, A->Features);
        // Pass telemetry travels with the image: a run served entirely
        // from the disk tier must print the same [passes] totals as the
        // run that populated it. Entries written before this field
        // existed fail the atEnd() check below and recompute.
        W.u64(A->Report.SitesRewritten);
        W.u64(A->Report.StringsEncrypted);
        W.u64(A->Report.BlocksSplit);
        W.u64(A->Report.BlocksInserted);
        W.u64(A->Report.BytesGrown);
        Out = std::move(W.Buf);
        return true;
      },
      [](const uint8_t *D, size_t N) -> std::shared_ptr<const void> {
        WireReader R(D, N);
        auto A = std::make_shared<EvalPipeline::ImageArtifact>();
        if (!readBinaryImage(R, A->Image) ||
            !readImageFeatures(R, A->Features))
          return nullptr;
        A->Report.SitesRewritten = static_cast<unsigned>(R.u64());
        A->Report.StringsEncrypted = static_cast<unsigned>(R.u64());
        A->Report.BlocksSplit = static_cast<unsigned>(R.u64());
        A->Report.BlocksInserted = static_cast<unsigned>(R.u64());
        A->Report.BytesGrown = R.u64();
        if (!R.ok() || !R.atEnd())
          return nullptr;
        A->Ok = true;
        return A;
      }};
  return C;
}

const ArtifactCodec &diffOutcomeCodec() {
  static const ArtifactCodec C{
      [](const void *V, std::vector<uint8_t> &Out) {
        const auto *A = static_cast<const EvalPipeline::DiffArtifact *>(V);
        if (!A->Ok)
          return false;
        WireWriter W;
        W.f64(A->Outcome.Precision);
        W.f64(A->Outcome.Similarity);
        W.vec(A->Outcome.Raw.Rankings,
              [&](const std::vector<uint32_t> &Ranking) {
                W.vec(Ranking, [&](uint32_t I) { W.u32(I); });
              });
        W.f64(A->Outcome.Raw.WholeBinarySimilarity);
        Out = std::move(W.Buf);
        return true;
      },
      [](const uint8_t *D, size_t N) -> std::shared_ptr<const void> {
        WireReader R(D, N);
        auto A = std::make_shared<EvalPipeline::DiffArtifact>();
        A->Outcome.Precision = R.f64();
        A->Outcome.Similarity = R.f64();
        uint32_t NR = R.count();
        A->Outcome.Raw.Rankings.resize(NR);
        for (uint32_t I = 0; I != NR && R.ok(); ++I) {
          uint32_t M = R.count();
          A->Outcome.Raw.Rankings[I].resize(M);
          for (uint32_t J = 0; J != M && R.ok(); ++J)
            A->Outcome.Raw.Rankings[I][J] = R.u32();
        }
        A->Outcome.Raw.WholeBinarySimilarity = R.f64();
        if (!R.ok() || !R.atEnd())
          return nullptr;
        A->Ok = true;
        return A;
      }};
  return C;
}

} // namespace

std::shared_ptr<const CompiledWorkload>
EvalPipeline::baseline(const Workload &W) {
  return baseline(W, Cfg.Baseline.Level);
}

std::shared_ptr<const CompiledWorkload>
EvalPipeline::baseline(const Workload &W, OptLevel Level) {
  ArtifactKey K{W.Name, ObfuscationMode::None, 0, ArtifactStage::Baseline,
                static_cast<uint64_t>(Level), fingerprintSource(W)};
  return Store.getOrCompute<CompiledWorkload>(
      K, W.Source.size(), [&]() -> std::shared_ptr<const CompiledWorkload> {
        auto Out = std::make_shared<CompiledWorkload>();
        Out->Ctx = std::make_shared<Context>();
        Out->M = compileMiniC(W.Source, *Out->Ctx, W.Name, Out->Error);
        if (Out->M)
          optimizeModule(*Out->M, Level);
        return Out;
      });
}

std::shared_ptr<const EvalPipeline::PrecompiledArtifact>
EvalPipeline::precompiledBaseline(const Workload &W) {
  return precompiledBaseline(W, Cfg.Baseline.Level);
}

std::shared_ptr<const EvalPipeline::PrecompiledArtifact>
EvalPipeline::precompiledBaseline(const Workload &W, OptLevel Level) {
  ArtifactKey K{W.Name, ObfuscationMode::None, 0,
                ArtifactStage::PrecompiledModule,
                static_cast<uint64_t>(Level), fingerprintSource(W)};
  return Store.getOrCompute<PrecompiledArtifact>(
      K, W.Source.size(),
      [&]() -> std::shared_ptr<const PrecompiledArtifact> {
        auto Out = std::make_shared<PrecompiledArtifact>();
        Out->Base = baseline(W, Level);
        if (!*Out->Base)
          return Out;
        precompileModule(*Out->Base->M, Out->BM);
        Out->Ok = true;
        return Out;
      });
}

std::shared_ptr<const EvalPipeline::BaselineRunArtifact>
EvalPipeline::baselineRun(const Workload &W) {
  return baselineRun(W, Cfg.Baseline.Level);
}

std::shared_ptr<const EvalPipeline::BaselineRunArtifact>
EvalPipeline::baselineRun(const Workload &W, OptLevel Level) {
  // The engine is part of the key: both engines produce identical results
  // on verified IR (the cross-VM oracle pins that), but an A/B pipeline
  // must never let one engine's run satisfy the other's request. Ditto
  // the opt level: O0 and O2 runs have different costs.
  ArtifactKey K{W.Name, ObfuscationMode::None, 0, ArtifactStage::BaselineRun,
                static_cast<uint64_t>(Level) |
                    (static_cast<uint64_t>(Cfg.Engine) << 8),
                fingerprintSource(W)};
  return Store.getOrCompute<BaselineRunArtifact>(
      K, W.Source.size(),
      [&]() -> std::shared_ptr<const BaselineRunArtifact> {
        auto Out = std::make_shared<BaselineRunArtifact>();
        if (Cfg.Engine == VMEngine::Precompiled) {
          // Run from the shared bytecode artifact: the decode cost is paid
          // once per workload, not per execution.
          std::shared_ptr<const PrecompiledArtifact> PB =
              precompiledBaseline(W, Level);
          if (!PB->Ok)
            return Out;
          Out->Run = runPrecompiled(PB->BM);
        } else {
          std::shared_ptr<const CompiledWorkload> Base = baseline(W, Level);
          if (!*Base)
            return Out;
          ExecOptions EO;
          EO.Engine = Cfg.Engine;
          Out->Run = runModule(*Base->M, EO);
        }
        Out->Ok = Out->Run.Ok && Out->Run.Cost != 0;
        return Out;
      },
      &baselineRunCodec());
}

std::shared_ptr<const EvalPipeline::ImageArtifact>
EvalPipeline::baselineImage(const Workload &W) {
  return baselineImage(W, Cfg.Baseline);
}

std::shared_ptr<const EvalPipeline::ImageArtifact>
EvalPipeline::baselineImage(const Workload &W, const BuildConfig &BC) {
  ArtifactKey K{W.Name, ObfuscationMode::None, 0,
                ArtifactStage::BaselineImage, BC.fingerprint(),
                fingerprintSource(W)};
  return Store.getOrCompute<ImageArtifact>(
      K, W.Source.size(), [&]() -> std::shared_ptr<const ImageArtifact> {
        auto Out = std::make_shared<ImageArtifact>();
        std::shared_ptr<const CompiledWorkload> Base =
            baseline(W, BC.Level);
        if (!*Base)
          return Out;
        Out->Image = lowerToBinary(*Base->M, BC.Codegen);
        Out->Features = extractFeatures(Out->Image);
        Out->Ok = true;
        return Out;
      },
      &imageCodec());
}

std::shared_ptr<const EvalPipeline::FissionArtifact>
EvalPipeline::fissionStage(const Workload &W, const FissionOptions &Opts) {
  ArtifactKey K{W.Name, ObfuscationMode::Fission, 0,
                ArtifactStage::FissionStage, fingerprintFission(Opts),
                fingerprintSource(W)};
  return Store.getOrCompute<FissionArtifact>(
      K, W.Source.size(), [&]() -> std::shared_ptr<const FissionArtifact> {
        auto Out = std::make_shared<FissionArtifact>();
        Out->Ctx = std::make_shared<Context>();
        Out->M = compileMiniC(W.Source, *Out->Ctx, W.Name, Out->Error);
        if (!Out->M)
          return Out;
        Out->Phase = runFissionPhase(*Out->M, Opts);
        Out->Ok = true;
        return Out;
      });
}

CompiledWorkload EvalPipeline::obfuscate(const Workload &W,
                                         ObfuscationMode Mode,
                                         ObfuscationResult *StatsOut,
                                         uint64_t Seed) {
  KhaosOptions Opts;
  Opts.Seed = Seed;
  return obfuscate(W, Mode, Opts, StatsOut);
}

CompiledWorkload EvalPipeline::obfuscate(const Workload &W,
                                         ObfuscationMode Mode,
                                         const KhaosOptions &Opts,
                                         ObfuscationResult *StatsOut) {
  CompiledWorkload Out;
  ObfuscationResult R;
  if (modeUsesFission(Mode)) {
    // Clone the shared fission-stage artifact and run only the fusion
    // suffix. The uncached path takes exactly the same route (the store
    // recomputes the artifact per request), so results cannot depend on
    // whether caching is enabled.
    std::shared_ptr<const FissionArtifact> FA =
        fissionStage(W, Opts.Fission);
    Out.Ctx = FA->Ctx;
    if (!FA->Ok) {
      Out.Error = FA->Error;
      return Out;
    }
    {
      // cloneModule transiently registers the copy's instructions in the
      // artifact's use lists; serialize clones of the shared module.
      std::lock_guard<std::mutex> CloneLock(FA->CloneMutex);
      Out.M = cloneModule(*FA->M);
    }
    R = finishFissionMode(*Out.M, Mode, Opts, FA->Phase);
  } else {
    Out.Ctx = std::make_shared<Context>();
    Out.M = compileMiniC(W.Source, *Out.Ctx, W.Name, Out.Error);
    if (!Out.M)
      return Out;
    R = obfuscateModule(*Out.M, Mode, Opts);
  }
  if (StatsOut)
    *StatsOut = R;
  std::vector<std::string> Problems = verifyModule(*Out.M);
  if (!Problems.empty()) {
    Out.Error = "verifier: " + Problems.front();
    Out.M.reset();
  }
  return Out;
}

std::shared_ptr<const EvalPipeline::ImageArtifact>
EvalPipeline::obfuscatedImage(const Workload &W, ObfuscationMode Mode,
                              uint64_t Seed) {
  ArtifactKey K{W.Name, Mode, Seed, ArtifactStage::ObfuscatedImage, 0,
                fingerprintSource(W)};
  return Store.getOrCompute<ImageArtifact>(
      K, W.Source.size(), [&]() -> std::shared_ptr<const ImageArtifact> {
        auto Out = std::make_shared<ImageArtifact>();
        ObfuscationResult Stats;
        CompiledWorkload Obf = obfuscate(W, Mode, &Stats, Seed);
        if (!Obf)
          return Out;
        Out->Image = lowerToBinary(*Obf.M);
        Out->Features = extractFeatures(Out->Image);
        Out->Report = Stats.Report;
        Out->Ok = true;
        return Out;
      },
      &imageCodec());
}

std::shared_ptr<const EvalPipeline::DiffArtifact>
EvalPipeline::diffOutcome(const Workload &W, ObfuscationMode Mode,
                          uint64_t Seed, const std::string &ToolName) {
  return diffOutcome(W, Mode, Seed, ToolName, baselineImage(W),
                     obfuscatedImage(W, Mode, Seed));
}

std::shared_ptr<const EvalPipeline::DiffArtifact>
EvalPipeline::diffOutcome(const Workload &W, ObfuscationMode Mode,
                          uint64_t Seed, const std::string &ToolName,
                          const std::shared_ptr<const ImageArtifact> &A,
                          const std::shared_ptr<const ImageArtifact> &B) {
  return diffOutcome(W, Cfg.Baseline, Mode, Seed, ToolName, A, B);
}

std::shared_ptr<const EvalPipeline::DiffArtifact>
EvalPipeline::diffOutcome(const Workload &W, const BuildConfig &BC,
                          ObfuscationMode Mode, uint64_t Seed,
                          const std::string &ToolName,
                          const std::shared_ptr<const ImageArtifact> &A,
                          const std::shared_ptr<const ImageArtifact> &B) {
  ArtifactKey K{W.Name, Mode, Seed, ArtifactStage::DiffOutcome,
                fingerprintToolAndConfig(ToolName, BC),
                fingerprintSource(W)};
  return Store.getOrCompute<DiffArtifact>(
      K, W.Source.size(), [&]() -> std::shared_ptr<const DiffArtifact> {
        auto Out = std::make_shared<DiffArtifact>();
        if (!A->Ok || !B->Ok) {
          Out->Error = "image pair could not be built";
          return Out;
        }
        // Every compute instantiates its own tool, so concurrent tasks
        // stay independent even if a future backend grows mutable state.
        std::unique_ptr<DiffTool> Tool = createDiffTool(ToolName);
        try {
          Out->Outcome = runDiffTool(*Tool, A->Image, A->Features,
                                     B->Image, B->Features);
          Out->Ok = true;
        } catch (const DiffToolError &E) {
          // A hung/crashed worker is an artifact-shaped failure: cached
          // like a success, reported per task by the scheduler, and never
          // allowed to take down the run.
          Out->Error = E.what();
        }
        return Out;
      },
      &diffOutcomeCodec());
}

DiffImages EvalPipeline::diffImages(const Workload &W, ObfuscationMode Mode,
                                    uint64_t Seed) {
  DiffImages Out;
  std::shared_ptr<const ImageArtifact> A = baselineImage(W);
  std::shared_ptr<const ImageArtifact> B = obfuscatedImage(W, Mode, Seed);
  if (!A->Ok || !B->Ok)
    return Out;
  Out.A = A->Image;
  Out.FA = A->Features;
  Out.B = B->Image;
  Out.FB = B->Features;
  Out.Ok = true;
  return Out;
}

bool EvalPipeline::overheadPercent(const Workload &W, ObfuscationMode Mode,
                                   double &OverheadOut, uint64_t Seed) {
  std::shared_ptr<const BaselineRunArtifact> Base = baselineRun(W);
  if (!Base->Ok)
    return false;

  CompiledWorkload Obf = obfuscate(W, Mode, nullptr, Seed);
  if (!Obf)
    return false;
  ExecOptions EO;
  EO.Engine = Cfg.Engine;
  ExecResult ObfRun = runModule(*Obf.M, EO);
  if (!ObfRun.Ok)
    return false;
  // Behavioural equality is part of the experiment's validity.
  if (ObfRun.Stdout != Base->Run.Stdout ||
      ObfRun.ExitValue != Base->Run.ExitValue)
    return false;

  OverheadOut = (static_cast<double>(ObfRun.Cost) -
                 static_cast<double>(Base->Run.Cost)) /
                static_cast<double>(Base->Run.Cost) * 100.0;
  return true;
}

DiffOutcome EvalPipeline::runDiffTool(const DiffTool &Tool,
                                      const DiffImages &Imgs) const {
  return runDiffTool(Tool, Imgs.A, Imgs.FA, Imgs.B, Imgs.FB);
}

DiffOutcome EvalPipeline::runDiffTool(const DiffTool &Tool,
                                      const BinaryImage &A,
                                      const ImageFeatures &FA,
                                      const BinaryImage &B,
                                      const ImageFeatures &FB) const {
  DiffOutcome Out;
  Out.Raw = Tool.diff(A, FA, B, FB);
  Out.Precision = precisionAt1(A, B, Out.Raw);
  Out.Similarity = Out.Raw.WholeBinarySimilarity;
  return Out;
}
