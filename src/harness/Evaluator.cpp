//===- harness/Evaluator.cpp - Evaluation pipeline -------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/Evaluator.h"

#include "diffing/Metrics.h"
#include "frontend/IRGen.h"
#include "ir/Verifier.h"

using namespace khaos;

CompiledWorkload khaos::compileBaseline(const Workload &W, OptLevel Level) {
  CompiledWorkload Out;
  Out.Ctx = std::make_unique<Context>();
  Out.M = compileMiniC(W.Source, *Out.Ctx, W.Name, Out.Error);
  if (!Out.M)
    return Out;
  optimizeModule(*Out.M, Level);
  return Out;
}

CompiledWorkload khaos::compileObfuscated(const Workload &W,
                                          ObfuscationMode Mode,
                                          ObfuscationResult *StatsOut,
                                          uint64_t Seed) {
  KhaosOptions Opts;
  Opts.Seed = Seed;
  return compileObfuscated(W, Mode, Opts, StatsOut);
}

CompiledWorkload khaos::compileObfuscated(const Workload &W,
                                          ObfuscationMode Mode,
                                          const KhaosOptions &Opts,
                                          ObfuscationResult *StatsOut) {
  CompiledWorkload Out;
  Out.Ctx = std::make_unique<Context>();
  Out.M = compileMiniC(W.Source, *Out.Ctx, W.Name, Out.Error);
  if (!Out.M)
    return Out;
  ObfuscationResult R = obfuscateModule(*Out.M, Mode, Opts);
  if (StatsOut)
    *StatsOut = R;
  std::vector<std::string> Problems = verifyModule(*Out.M);
  if (!Problems.empty()) {
    Out.Error = "verifier: " + Problems.front();
    Out.M.reset();
  }
  return Out;
}

bool khaos::measureOverheadPercent(const Workload &W, ObfuscationMode Mode,
                                   double &OverheadOut, uint64_t Seed) {
  CompiledWorkload Base = compileBaseline(W);
  if (!Base)
    return false;
  ExecResult BaseRun = runModule(*Base.M);
  if (!BaseRun.Ok || BaseRun.Cost == 0)
    return false;

  CompiledWorkload Obf = compileObfuscated(W, Mode, nullptr, Seed);
  if (!Obf)
    return false;
  ExecResult ObfRun = runModule(*Obf.M);
  if (!ObfRun.Ok)
    return false;
  // Behavioural equality is part of the experiment's validity.
  if (ObfRun.Stdout != BaseRun.Stdout ||
      ObfRun.ExitValue != BaseRun.ExitValue)
    return false;

  OverheadOut = (static_cast<double>(ObfRun.Cost) -
                 static_cast<double>(BaseRun.Cost)) /
                static_cast<double>(BaseRun.Cost) * 100.0;
  return true;
}

DiffImages khaos::buildDiffImages(const Workload &W, ObfuscationMode Mode,
                                  uint64_t Seed) {
  DiffImages Out;
  CompiledWorkload Base = compileBaseline(W);
  CompiledWorkload Obf = compileObfuscated(W, Mode, nullptr, Seed);
  if (!Base || !Obf)
    return Out;
  Out.A = lowerToBinary(*Base.M);
  Out.B = lowerToBinary(*Obf.M);
  Out.FA = extractFeatures(Out.A);
  Out.FB = extractFeatures(Out.B);
  Out.Ok = true;
  return Out;
}

DiffOutcome khaos::runDiffTool(const DiffTool &Tool,
                               const DiffImages &Imgs) {
  DiffOutcome Out;
  Out.Raw = Tool.diff(Imgs.A, Imgs.FA, Imgs.B, Imgs.FB);
  Out.Precision = precisionAt1(Imgs.A, Imgs.B, Out.Raw);
  Out.Similarity = Out.Raw.WholeBinarySimilarity;
  return Out;
}
