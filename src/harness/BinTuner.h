//===- harness/BinTuner.h - Iterative compilation search --------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BinTuner (Ren et al., PLDI'21) analogue: searches compiler option
/// tuples (optimization level + codegen style flags) to *maximize* the
/// binary difference against a baseline build, scored with the BinDiff
/// similarity. The paper compares Khaos against BinTuner in Fig. 9 and
/// reports BinTuner's ~30% overhead.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_BINTUNER_H
#define KHAOS_HARNESS_BINTUNER_H

#include "harness/Evaluator.h"

namespace khaos {

/// One point in BinTuner's search space.
struct CompilerConfig {
  OptLevel Level = OptLevel::O2;
  CodegenOptions Codegen;
};

struct BinTunerOptions {
  unsigned Budget = 24; ///< Candidate configurations to evaluate.
  uint64_t Seed = 0x717;
  OptLevel BaselineLevel = OptLevel::O0; ///< The paper tunes against O0.
};

struct BinTunerResult {
  bool Ok = false;
  CompilerConfig Best;
  /// BinDiff similarity of the best candidate against builds at O0..O3.
  double SimilarityVsLevel[4] = {0, 0, 0, 0};
  /// Runtime overhead of the best candidate vs the O2 baseline (percent).
  double OverheadPercent = 0.0;
};

/// Runs the search on one workload.
BinTunerResult runBinTuner(const Workload &W,
                           const BinTunerOptions &Opts = {});

/// Builds \p W at \p Config (compile + optimize + lower).
BinaryImage buildWithConfig(const Workload &W, const CompilerConfig &Config,
                            bool &Ok);

} // namespace khaos

#endif // KHAOS_HARNESS_BINTUNER_H
