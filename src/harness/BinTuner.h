//===- harness/BinTuner.h - Iterative compilation search --------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BinTuner (Ren et al., PLDI'21) analogue: searches compiler option
/// tuples (optimization level + codegen style flags) to *maximize* the
/// binary difference against a baseline build, scored with the BinDiff
/// similarity. The paper compares Khaos against BinTuner in Fig. 9 and
/// reports BinTuner's ~30% overhead.
///
/// The search runs on an EvalPipeline: every candidate build is a cached
/// Baseline/BaselineImage artifact keyed on its BuildConfig, so a tuning
/// run shares builds with the confound matrix (and with its own repeats —
/// a warm re-run performs zero recompiles), and seeds come from the
/// caller (derive them from the run seed; there is no default).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_BINTUNER_H
#define KHAOS_HARNESS_BINTUNER_H

#include "harness/Evaluator.h"

namespace khaos {

struct BinTunerResult {
  bool Ok = false;
  /// The configuration the search judged most dissimilar to the baseline.
  BuildConfig Best;
  /// BinDiff similarity of the best candidate against builds at O0..O3.
  double SimilarityVsLevel[4] = {0, 0, 0, 0};
  /// Runtime overhead of the best candidate vs the O2 baseline (percent).
  double OverheadPercent = 0.0;
};

/// The search, bound to the pipeline whose ArtifactStore caches its
/// candidate builds.
class BinTuner {
public:
  struct Options {
    unsigned Budget = 24; ///< Candidate configurations to evaluate.
    OptLevel BaselineLevel = OptLevel::O0; ///< The paper tunes against O0.
  };

  explicit BinTuner(EvalPipeline &Pipe) : Pipe(Pipe) {}
  BinTuner(EvalPipeline &Pipe, Options Opts) : Pipe(Pipe), Opts(Opts) {}

  /// Runs the search on one workload. \p Seed drives the candidate draw;
  /// pass a scheduler-derived seed (deriveCellSeed) so results are stable
  /// across thread counts but still keyed to the run seed.
  BinTunerResult run(const Workload &W, uint64_t Seed) const;

private:
  EvalPipeline &Pipe;
  Options Opts;
};

} // namespace khaos

#endif // KHAOS_HARNESS_BINTUNER_H
