//===- harness/EvalScheduler.h - Parallel evaluation batches ----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch engine over the EvalPipeline: fans the (workload ×
/// ObfuscationMode) matrix — and, for diffing, the (cell × tool) task
/// plane — across a std::thread pool. Four properties make parallel runs
/// bit-for-bit reproducible at any thread count, shard decomposition and
/// cache setting:
///
///  1. Per-task isolation — every cell compiles into its own
///     Context/Module; shared pipeline artifacts are immutable and
///     consumers clone before mutating.
///  2. Deterministic seeding — each cell's RNG seed is derived from
///     (base seed, workload name, mode), never from scheduling order.
///  3. Deterministic aggregation — per-task results land at their
///     row-major matrix index; shared run statistics are merged under a
///     mutex and are integer counters, so merge order cannot change them.
///  4. Schedule-independent artifacts — every cached artifact is a pure
///     function of its key, and cached/uncached runs share one code path.
///
/// Cross-process sharding: cells are partitioned by FlatIdx % Shards, and
/// a scheduler configured with (Shards, ShardIdx) executes only its own
/// cells (results for foreign cells keep Ran == false). Because per-cell
/// seeds are scheduling-independent, the union of all shards' results is
/// cell-for-cell identical to an unsharded run.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_EVALSCHEDULER_H
#define KHAOS_HARNESS_EVALSCHEDULER_H

#include "harness/EvalService.h"
#include "harness/Evaluator.h"

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace khaos {

/// One cell of the (workload × mode) evaluation matrix.
struct EvalCell {
  const Workload *W = nullptr;
  ObfuscationMode Mode = ObfuscationMode::None;
  uint64_t Seed = 0;       ///< Derived via deriveCellSeed().
  size_t WorkloadIdx = 0;  ///< Row: position of W in the workload list.
  size_t ModeIdx = 0;      ///< Column: position of Mode in the mode list.
  size_t FlatIdx = 0;      ///< Row-major index into the matrix.
};

/// One task of the (cell × tool) plane: one diffing tool over one cell.
/// Heavy tools (DeepBinDiff, VulSeeker — Table 1's time+memory column) get
/// their own pool slots instead of serializing inside a cell worker; the
/// cell's image pair is built once in the ArtifactStore and shared.
struct EvalTask {
  EvalCell Cell;
  size_t ToolIdx = 0; ///< Position in the tool list.
  size_t TaskIdx = 0; ///< Cell.FlatIdx * NumTools + ToolIdx.
};

/// Derives the per-cell seed from the run's base seed, the workload's name
/// and the mode — stable across thread counts and scheduling orders.
uint64_t deriveCellSeed(uint64_t BaseSeed, const std::string &WorkloadName,
                        ObfuscationMode Mode);

/// Aggregate counters for one scheduler run, merged under a mutex by the
/// batch front-ends. All fields are integral, so the merge order that the
/// pool happens to produce cannot change the totals.
struct EvalRunStats {
  size_t Cells = 0;    ///< Cells executed (owned by this shard).
  size_t Failures = 0; ///< Cells whose compile/measure step failed.
  /// (cell × tool) tasks whose tool failed at runtime (subprocess worker
  /// timeout/crash). The cell's other tools still report; the failed
  /// task renders as "n/a".
  size_t ToolFailures = 0;
  FissionStats Fission;
  FusionStats Fusion;
  /// Per-pass potency/cost totals (MBA sites, encrypted strings, block
  /// splits, byte growth) folded in from every cell's ObfuscationResult.
  PassReport Passes;

  // Cache telemetry, folded in from the ArtifactStore after each matrix
  // run (reportScheduler prints it on stderr; stdout stays byte-identical).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0; ///< LRU evictions under --store-max-bytes.
  uint64_t CacheBytesSaved = 0; ///< Bytes of recompilation avoided.
  // Disk-tier telemetry (--cache-dir); all zero without a disk tier.
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
  uint64_t DiskEvictions = 0; ///< File evictions under --disk-max-bytes.
  uint64_t DiskCorrupt = 0;   ///< Invalid on-disk artifacts discarded.

  /// Thread-safe: folds one cell's transformation stats into the totals.
  void mergeCell(const ObfuscationResult &R, bool Failed);

  /// Thread-safe: counts a cell that produced no transformation stats
  /// (e.g. an overhead measurement).
  void countCell(bool Failed);

  /// Thread-safe: folds one image's pass telemetry into the totals
  /// without counting a cell (the cell×tool planes count cells in their
  /// deterministic post-pass instead).
  void mergePasses(const PassReport &R);

  /// Thread-safe: counts one failed (cell × tool) task.
  void countToolFailure();

  /// Thread-safe: folds an ArtifactStore counter delta into the totals.
  void mergeCache(const ArtifactStore::Snapshot &Delta);

private:
  std::mutex M;
};

class EvalScheduler {
public:
  struct Config {
    unsigned Threads = 0;  ///< 0 = hardware concurrency.
    uint64_t Seed = 0xc906;
    bool CacheEnabled = true; ///< false = --no-cache (recompute per use).
    unsigned Shards = 1;      ///< Total shard count (cross-process split).
    unsigned ShardIdx = 0;    ///< This process's shard in [0, Shards).
    uint64_t StoreMaxBytes = 0; ///< ArtifactStore LRU cap (0 = unbounded).
    /// VM engine for every execution this scheduler's pipeline performs
    /// (--vm reference|precompiled). Both engines produce byte-identical
    /// stdout, so shard merging is engine-agnostic.
    VMEngine Engine = VMEngine::Precompiled;
    /// Persistent disk tier for the pipeline's store (--cache-dir);
    /// empty = memory-only.
    std::string CacheDir = {};
    /// Disk-tier byte cap (--disk-max-bytes); 0 = unbounded.
    uint64_t DiskMaxBytes = 0;
    /// khaos-evald socket (--connect); when set, the overhead and
    /// (cell × tool) matrix front-ends execute their cells on the daemon
    /// against its shared warm store instead of in-process. Per-cell
    /// seeds are derived locally and shipped in the request, so remote
    /// results — and bench stdout — are byte-identical to in-process
    /// runs. The constructor pings the daemon and aborts on a
    /// configuration mismatch (engine, cache setting or baseline build
    /// config), which would silently break that identity.
    std::string ConnectPath = {};
    /// The default baseline build config for every front-end that does
    /// not sweep the axis explicitly (--baseline-opt / --codegen).
    /// Forwarded to the pipeline and checked against the daemon's ping.
    BuildConfig Baseline = {};
  };

  explicit EvalScheduler(Config C);
  EvalScheduler() : EvalScheduler(Config{}) {}
  ~EvalScheduler();

  /// True when matrix cells execute on a khaos-evald daemon (--connect).
  bool remote() const { return !Cfg.ConnectPath.empty(); }

  /// The worker count actually used (>= 1).
  unsigned threadCount() const { return Workers; }
  uint64_t baseSeed() const { return Cfg.Seed; }
  unsigned shardCount() const { return Cfg.Shards; }
  unsigned shardIndex() const { return Cfg.ShardIdx; }

  /// True if this scheduler's shard owns \p FlatIdx.
  bool ownsCell(size_t FlatIdx) const {
    return FlatIdx % Cfg.Shards == Cfg.ShardIdx;
  }

  /// The pipeline whose ArtifactStore backs every matrix run of this
  /// scheduler (telemetry, tests, and direct stage access for benches).
  EvalPipeline &pipeline() const { return *Pipe; }

  /// Runs \p Fn over every owned cell of the matrix on the pool. \p Fn
  /// executes concurrently: it must confine itself to per-cell state or
  /// lock any shared state it touches.
  void forEachCell(const std::vector<Workload> &Workloads,
                   const std::vector<ObfuscationMode> &Modes,
                   const std::function<void(const EvalCell &)> &Fn) const;

  /// Runs \p Fn over the (owned cell × tool index) task plane — the unit
  /// benches use when per-tool work dominates per-cell work.
  void forEachCellTask(const std::vector<Workload> &Workloads,
                       const std::vector<ObfuscationMode> &Modes,
                       size_t NumTools,
                       const std::function<void(const EvalTask &)> &Fn) const;

  //===--------------------------------------------------------------------===//
  // Batch front-ends over the EvalPipeline stages. Result vectors always
  // have one slot per matrix cell; slots of cells owned by other shards
  // keep Ran == false and are otherwise default-initialized.
  //===--------------------------------------------------------------------===//

  /// Compiled cell: the obfuscated module plus its transformation stats.
  struct CellCompilation {
    bool Ran = false;
    CompiledWorkload Compiled;
    ObfuscationResult Stats;
  };

  /// EvalPipeline::obfuscate() over the whole matrix.
  std::vector<CellCompilation>
  compileMatrix(const std::vector<Workload> &Workloads,
                const std::vector<ObfuscationMode> &Modes,
                EvalRunStats *RunStats = nullptr) const;

  /// Runtime overhead of one cell; Ok=false when compile/run/verify failed.
  struct CellOverhead {
    bool Ran = false;
    bool Ok = false;
    double Percent = 0.0;
  };

  /// EvalPipeline::overheadPercent() over the whole matrix.
  std::vector<CellOverhead>
  overheadMatrix(const std::vector<Workload> &Workloads,
                 const std::vector<ObfuscationMode> &Modes,
                 EvalRunStats *RunStats = nullptr) const;

  /// Per-cell diffing result: Precision@1 of each tool in \p ToolNames
  /// order, or a negative sentinel when the image pair could not be built.
  struct CellPrecision {
    bool Ran = false;
    bool Ok = false;
    std::vector<double> PerTool;
  };

  /// Diffing over the (cell × tool) task plane: each task fetches the
  /// cell's shared image pair from the ArtifactStore (built once per cell)
  /// and runs one registry tool over it, so heavy tools never serialize a
  /// cell. Every entry of \p ToolNames must be registered (hard error
  /// otherwise — a silent mismatch would render as an all-zero figure row).
  std::vector<CellPrecision>
  precisionMatrix(const std::vector<Workload> &Workloads,
                  const std::vector<ObfuscationMode> &Modes,
                  const std::vector<std::string> &ToolNames,
                  EvalRunStats *RunStats = nullptr) const;

  /// Per-cell search ranks of the workload's vulnerable functions — the
  /// escape@k / Table-3 front-end (fig10, table3). PerTool[toolIdx] is
  /// parallel to Workload::VulnFunctions (UINT32_MAX = not found) and
  /// empty when the cell's images could not be built.
  struct CellRanks {
    bool Ran = false;
    bool Ok = false;
    std::vector<std::vector<uint32_t>> PerTool;
  };

  /// trueMatchRank over the (cell × tool) task plane, sharing each cell's
  /// cached image pair exactly like precisionMatrix. Tool names must be
  /// registered (hard error otherwise).
  std::vector<CellRanks>
  vulnRankMatrix(const std::vector<Workload> &Workloads,
                 const std::vector<ObfuscationMode> &Modes,
                 const std::vector<std::string> &ToolNames,
                 EvalRunStats *RunStats = nullptr) const;

  /// One cell of the (workload × baseline config × mode) confound matrix.
  /// Sentinel -1.0 marks a tool that failed at runtime.
  struct ConfoundCell {
    bool Ran = false;
    bool Ok = false;
    std::vector<double> PerToolPrecision;
    std::vector<double> PerToolSimilarity;
  };

  /// The confound front-end: diffs every (workload, baseline config,
  /// mode, tool) combination, so a figure can separate what the *build
  /// delta* does to a tool (Mode == None columns) from what the
  /// *obfuscation* adds on top. Cells are row-major over
  /// (workload, config, mode) — Flat = (WI * NumConfigs + CI) * NumModes
  /// + MI — and sharded/executed with precisionMatrix's determinism
  /// guarantees. Per-cell seeds are derived from (workload, mode) alone,
  /// deliberately config-independent: every config row diffs against the
  /// *same* obfuscated B-side, so a warm sweep over N configs builds each
  /// obfuscated image once and each baseline once per config, nothing
  /// more. Works in --connect mode (the per-cell config travels in the
  /// DiffTask request).
  std::vector<ConfoundCell>
  confoundMatrix(const std::vector<Workload> &Workloads,
                 const std::vector<BuildConfig> &Configs,
                 const std::vector<ObfuscationMode> &Modes,
                 const std::vector<std::string> &ToolNames,
                 EvalRunStats *RunStats = nullptr) const;

private:
  /// Shared precisionMatrix/vulnRankMatrix plumbing: validates \p
  /// ToolNames against the registry (abort on unknown), fans the (owned
  /// cell × tool) task plane over the pool, fetches each task's cached
  /// DiffOutcome (the cell's image pair is built once and shared;
  /// subprocess backends round-trip at most once per key) and hands it
  /// to \p Fn together with the images. A task whose tool failed at
  /// runtime (DiffArtifact::Ok == false: worker timeout or crash past
  /// retry) is reported loudly on stderr and counted into
  /// RunStats.ToolFailures instead of running Fn — one hung backend
  /// never stalls the shard. Returns per-cell image-build success,
  /// indexed by FlatIdx (foreign-shard cells stay 0).
  std::vector<uint8_t> runCellToolPlane(
      const std::vector<Workload> &Workloads,
      const std::vector<ObfuscationMode> &Modes,
      const std::vector<std::string> &ToolNames,
      const std::function<void(const EvalTask &,
                               const EvalPipeline::ImageArtifact &,
                               const EvalPipeline::ImageArtifact &,
                               const DiffOutcome &)> &Fn,
      EvalRunStats *RunStats) const;
  /// Remote twin of runCellToolPlane: ships each (cell × tool) task to
  /// the daemon as a DiffTask request and feeds the response to \p Fn.
  /// Same failure reporting, same CellOk bookkeeping, byte-identical
  /// downstream output.
  std::vector<uint8_t> remoteCellToolPlane(
      const std::vector<Workload> &Workloads,
      const std::vector<ObfuscationMode> &Modes,
      const std::vector<std::string> &ToolNames,
      const std::function<void(const EvalTask &, const EvalResponse &)> &Fn,
      EvalRunStats *RunStats) const;

  /// Borrows a connected client from the pool (one per concurrent
  /// worker; new connections are opened on demand). die-on-failure: a
  /// daemon that vanishes mid-run cannot produce a correct matrix.
  std::unique_ptr<EvalClient> acquireClient() const;
  void releaseClient(std::unique_ptr<EvalClient> C) const;

  /// Runs Fn(0..N-1) on the worker pool (atomic-ticket work stealing).
  void runPool(size_t N, const std::function<void(size_t)> &Fn) const;

  /// Enumerates the owned cells of the matrix, in row-major order.
  std::vector<EvalCell>
  ownedCells(const std::vector<Workload> &Workloads,
             const std::vector<ObfuscationMode> &Modes) const;

  Config Cfg;
  unsigned Workers;
  std::shared_ptr<EvalPipeline> Pipe;
  mutable std::mutex ClientsM;
  mutable std::vector<std::unique_ptr<EvalClient>> Clients;
};

} // namespace khaos

#endif // KHAOS_HARNESS_EVALSCHEDULER_H
