//===- harness/EvalScheduler.h - Parallel evaluation batches ----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch engine for the evaluation pipeline: fans the (workload ×
/// ObfuscationMode) matrix across a std::thread pool. Three properties make
/// parallel runs bit-for-bit reproducible at any thread count:
///
///  1. Per-task isolation — every cell compiles into its own Context/Module
///     (the Evaluator primitives already guarantee this).
///  2. Deterministic seeding — each cell's RNG seed is derived from
///     (base seed, workload name, mode), never from scheduling order.
///  3. Deterministic aggregation — per-cell results land at their row-major
///     matrix index; shared run statistics are merged under a mutex and are
///     integer counters, so merge order cannot change them.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_EVALSCHEDULER_H
#define KHAOS_HARNESS_EVALSCHEDULER_H

#include "harness/Evaluator.h"

#include <functional>
#include <mutex>
#include <vector>

namespace khaos {

/// One cell of the (workload × mode) evaluation matrix.
struct EvalCell {
  const Workload *W = nullptr;
  ObfuscationMode Mode = ObfuscationMode::None;
  uint64_t Seed = 0;       ///< Derived via deriveCellSeed().
  size_t WorkloadIdx = 0;  ///< Row: position of W in the workload list.
  size_t ModeIdx = 0;      ///< Column: position of Mode in the mode list.
  size_t FlatIdx = 0;      ///< Row-major index into the matrix.
};

/// Derives the per-cell seed from the run's base seed, the workload's name
/// and the mode — stable across thread counts and scheduling orders.
uint64_t deriveCellSeed(uint64_t BaseSeed, const std::string &WorkloadName,
                        ObfuscationMode Mode);

/// Aggregate counters for one scheduler run, merged under a mutex by the
/// batch front-ends. All fields are integral, so the merge order that the
/// pool happens to produce cannot change the totals.
struct EvalRunStats {
  size_t Cells = 0;    ///< Cells executed.
  size_t Failures = 0; ///< Cells whose compile/measure step failed.
  FissionStats Fission;
  FusionStats Fusion;

  /// Thread-safe: folds one cell's transformation stats into the totals.
  void mergeCell(const ObfuscationResult &R, bool Failed);

  /// Thread-safe: counts a cell that produced no transformation stats
  /// (e.g. an overhead measurement).
  void countCell(bool Failed);

private:
  std::mutex M;
};

class EvalScheduler {
public:
  struct Config {
    unsigned Threads = 0;  ///< 0 = hardware concurrency.
    uint64_t Seed = 0xc906;
  };

  explicit EvalScheduler(Config C);
  EvalScheduler() : EvalScheduler(Config{}) {}

  /// The worker count actually used (>= 1).
  unsigned threadCount() const { return Workers; }
  uint64_t baseSeed() const { return Cfg.Seed; }

  /// Runs \p Fn over every cell of the matrix on the pool. \p Fn executes
  /// concurrently: it must confine itself to per-cell state or lock any
  /// shared state it touches.
  void forEachCell(const std::vector<Workload> &Workloads,
                   const std::vector<ObfuscationMode> &Modes,
                   const std::function<void(const EvalCell &)> &Fn) const;

  //===--------------------------------------------------------------------===//
  // Batch front-ends over the Evaluator primitives.
  //===--------------------------------------------------------------------===//

  /// Compiled cell: the obfuscated module plus its transformation stats.
  struct CellCompilation {
    CompiledWorkload Compiled;
    ObfuscationResult Stats;
  };

  /// compileObfuscated() over the whole matrix.
  std::vector<CellCompilation>
  compileMatrix(const std::vector<Workload> &Workloads,
                const std::vector<ObfuscationMode> &Modes,
                EvalRunStats *RunStats = nullptr) const;

  /// Runtime overhead of one cell; Ok=false when compile/run/verify failed.
  struct CellOverhead {
    bool Ok = false;
    double Percent = 0.0;
  };

  /// measureOverheadPercent() over the whole matrix.
  std::vector<CellOverhead>
  overheadMatrix(const std::vector<Workload> &Workloads,
                 const std::vector<ObfuscationMode> &Modes,
                 EvalRunStats *RunStats = nullptr) const;

  /// Per-cell diffing result: Precision@1 of each tool in \p ToolNames
  /// order, or a negative sentinel when the image pair could not be built.
  struct CellPrecision {
    bool Ok = false;
    std::vector<double> PerTool;
  };

  /// buildDiffImages() + runDiffTool() over the whole matrix. Every cell
  /// instantiates its own tool set (tools are cheap, stateless objects), so
  /// no diffing state is shared between workers. Every entry of
  /// \p ToolNames must name a registered tool (hard error otherwise — a
  /// silent mismatch would render as an all-zero figure row).
  std::vector<CellPrecision>
  precisionMatrix(const std::vector<Workload> &Workloads,
                  const std::vector<ObfuscationMode> &Modes,
                  const std::vector<std::string> &ToolNames,
                  EvalRunStats *RunStats = nullptr) const;

private:
  Config Cfg;
  unsigned Workers;
};

} // namespace khaos

#endif // KHAOS_HARNESS_EVALSCHEDULER_H
