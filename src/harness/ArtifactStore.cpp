//===- harness/ArtifactStore.cpp - Content-addressed artifacts ------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/ArtifactStore.h"

#include "harness/DiskCache.h"

#include <cassert>
#include <tuple>

using namespace khaos;

ArtifactStore::ArtifactStore(Config C) : Cfg(std::move(C)) {
  if (!Cfg.CacheDir.empty())
    Disk.reset(new DiskCache(
        DiskCache::Config{Cfg.CacheDir, Cfg.DiskMaxBytes}));
}

ArtifactStore::~ArtifactStore() = default;

const char *khaos::artifactStageName(ArtifactStage Stage) {
  switch (Stage) {
  case ArtifactStage::Baseline:
    return "baseline";
  case ArtifactStage::BaselineRun:
    return "baseline-run";
  case ArtifactStage::BaselineImage:
    return "baseline-image";
  case ArtifactStage::FissionStage:
    return "fission-stage";
  case ArtifactStage::ObfuscatedImage:
    return "obfuscated-image";
  case ArtifactStage::DiffOutcome:
    return "diff-outcome";
  case ArtifactStage::PrecompiledModule:
    return "precompiled-module";
  case ArtifactStage::NumStages:
    break;
  }
  return "?";
}

bool ArtifactKey::operator<(const ArtifactKey &O) const {
  return std::tie(Stage, Workload, Mode, Seed, Extra, SourceHash) <
         std::tie(O.Stage, O.Workload, O.Mode, O.Seed, O.Extra,
                  O.SourceHash);
}

bool ArtifactKey::operator==(const ArtifactKey &O) const {
  return Stage == O.Stage && Workload == O.Workload && Mode == O.Mode &&
         Seed == O.Seed && Extra == O.Extra && SourceHash == O.SourceHash;
}

uint64_t ArtifactKey::address() const {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 0x100000001b3ull;
    }
  };
  for (char C : Workload) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  Mix(static_cast<uint64_t>(Mode));
  Mix(Seed);
  Mix(static_cast<uint64_t>(Stage));
  Mix(Extra);
  Mix(SourceHash);
  return H;
}

ArtifactStore::Snapshot
ArtifactStore::Snapshot::delta(const Snapshot &After,
                               const Snapshot &Before) {
  Snapshot D;
  for (size_t S = 0; S != static_cast<size_t>(ArtifactStage::NumStages);
       ++S) {
    D.PerStage[S].Hits = After.PerStage[S].Hits - Before.PerStage[S].Hits;
    D.PerStage[S].Misses =
        After.PerStage[S].Misses - Before.PerStage[S].Misses;
    D.PerStage[S].Evictions =
        After.PerStage[S].Evictions - Before.PerStage[S].Evictions;
    D.PerStage[S].DiskHits =
        After.PerStage[S].DiskHits - Before.PerStage[S].DiskHits;
    D.PerStage[S].DiskMisses =
        After.PerStage[S].DiskMisses - Before.PerStage[S].DiskMisses;
    D.PerStage[S].DiskEvictions =
        After.PerStage[S].DiskEvictions - Before.PerStage[S].DiskEvictions;
    D.PerStage[S].DiskCorrupt =
        After.PerStage[S].DiskCorrupt - Before.PerStage[S].DiskCorrupt;
  }
  D.Hits = After.Hits - Before.Hits;
  D.Misses = After.Misses - Before.Misses;
  D.Evictions = After.Evictions - Before.Evictions;
  D.BytesSaved = After.BytesSaved - Before.BytesSaved;
  D.DiskHits = After.DiskHits - Before.DiskHits;
  D.DiskMisses = After.DiskMisses - Before.DiskMisses;
  D.DiskEvictions = After.DiskEvictions - Before.DiskEvictions;
  D.DiskCorrupt = After.DiskCorrupt - Before.DiskCorrupt;
  return D;
}

std::shared_ptr<const void>
ArtifactStore::diskLoad(const ArtifactKey &K, const ArtifactCodec *Codec) {
  size_t StageIdx = static_cast<size_t>(K.Stage);
  std::vector<uint8_t> Payload;
  DiskGetStatus S = Disk->get(K, Payload);
  std::shared_ptr<const void> Value;
  if (S == DiskGetStatus::Hit) {
    Value = Codec->Decode(Payload.data(), Payload.size());
    if (!Value)
      S = DiskGetStatus::Corrupt; // Envelope valid, payload not: the
                                  // codec rejected it. Recompute.
  }
  std::lock_guard<std::mutex> Lock(M);
  switch (S) {
  case DiskGetStatus::Hit:
    Counters.DiskHits += 1;
    Counters.PerStage[StageIdx].DiskHits += 1;
    break;
  case DiskGetStatus::Corrupt:
    Counters.DiskCorrupt += 1;
    Counters.PerStage[StageIdx].DiskCorrupt += 1;
    // A corrupt entry is also a miss: the artifact gets recomputed.
    Counters.DiskMisses += 1;
    Counters.PerStage[StageIdx].DiskMisses += 1;
    break;
  case DiskGetStatus::Miss:
    Counters.DiskMisses += 1;
    Counters.PerStage[StageIdx].DiskMisses += 1;
    break;
  }
  return Value;
}

void ArtifactStore::diskStore(const ArtifactKey &K, const void *Value,
                              const ArtifactCodec *Codec) {
  std::vector<uint8_t> Payload;
  if (!Codec->Encode(Value, Payload))
    return; // The codec declined (e.g. a failure artifact).
  unsigned Evicted = Disk->put(K, Payload);
  if (Evicted == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  Counters.DiskEvictions += Evicted;
  Counters.PerStage[static_cast<size_t>(K.Stage)].DiskEvictions += Evicted;
}

void ArtifactStore::trimLocked() {
  if (Cfg.MaxBytes == 0)
    return;
  while (TotalBytes > Cfg.MaxBytes) {
    // Least-recently-used *ready* entry; in-flight entries are pinned
    // (evicting one would break its single-flight waiters). Linear scan:
    // stores hold hundreds of artifacts, and eviction is off the
    // compute path.
    auto Victim = Artifacts.end();
    for (auto It = Artifacts.begin(); It != Artifacts.end(); ++It)
      if (It->second.Ready &&
          (Victim == Artifacts.end() ||
           It->second.LastUse < Victim->second.LastUse))
        Victim = It;
    if (Victim == Artifacts.end())
      return; // Everything left is pinned.
    size_t StageIdx = static_cast<size_t>(Victim->first.Stage);
    Counters.Evictions += 1;
    Counters.PerStage[StageIdx].Evictions += 1;
    TotalBytes -= Victim->second.CostBytes;
    // Dropping the entry only stops retention: requesters holding the
    // shared_ptr (or mid-wait on the shared_future) are unaffected.
    Artifacts.erase(Victim);
  }
}

void ArtifactStore::markReady(const ArtifactKey &K) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Artifacts.find(K);
  if (It == Artifacts.end())
    return; // A concurrent clear() dropped the whole map.
  It->second.Ready = true;
  trimLocked();
}

std::shared_ptr<const void> ArtifactStore::getOrComputeErased(
    const ArtifactKey &K, uint64_t CostBytes, std::type_index Type,
    const std::function<std::shared_ptr<const void>()> &F,
    const ArtifactCodec *Codec) {
  size_t StageIdx = static_cast<size_t>(K.Stage);
  assert(StageIdx < static_cast<size_t>(ArtifactStage::NumStages) &&
         "key has an invalid stage");

  if (!Cfg.Enabled) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Counters.Misses += 1;
      Counters.PerStage[StageIdx].Misses += 1;
    }
    return F();
  }

  std::promise<std::shared_ptr<const void>> Promise;
  std::shared_future<std::shared_ptr<const void>> Existing;
  bool Hit = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Artifacts.find(K);
    if (It != Artifacts.end()) {
      assert(It->second.Type == Type &&
             "one key requested with two artifact types");
      Counters.Hits += 1;
      Counters.PerStage[StageIdx].Hits += 1;
      Counters.BytesSaved += It->second.CostBytes;
      It->second.LastUse = ++UseTick;
      Existing = It->second.Value;
      Hit = true;
    } else {
      Counters.Misses += 1;
      Counters.PerStage[StageIdx].Misses += 1;
      Entry E{Promise.get_future().share(), Type, CostBytes,
              /*LastUse=*/++UseTick, /*Ready=*/false};
      Artifacts.emplace(K, std::move(E));
      TotalBytes += CostBytes;
      // The new entry itself is in-flight (pinned); trimming here can
      // only evict colder ready entries.
      trimLocked();
    }
  }

  // Waiting (outside the lock) on a computation another thread started
  // still counts as a hit: the work is not redone.
  if (Hit)
    return Existing.get();

  // First requester: memory missed, so consult the disk tier before
  // computing. Both the disk I/O and the compute run outside the lock
  // (single-flight: waiters block on the shared future either way).
  bool UseDisk = Disk && Codec;
  if (UseDisk) {
    if (std::shared_ptr<const void> Value = diskLoad(K, Codec)) {
      Promise.set_value(Value);
      markReady(K);
      return Value;
    }
  }

  // Compute. If the computation throws, the exception must reach the
  // promise too — otherwise every later requester of this key would
  // block forever on a never-ready future.
  std::shared_ptr<const void> Value;
  try {
    Value = F();
  } catch (...) {
    Promise.set_exception(std::current_exception());
    // Exceptional artifacts become ready (and thus evictable) like
    // values: a hit rethrows, an eviction allows a retry.
    markReady(K);
    throw;
  }
  Promise.set_value(Value);
  markReady(K);
  if (UseDisk && Value)
    diskStore(K, Value.get(), Codec);
  return Value;
}

ArtifactStore::Snapshot ArtifactStore::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters;
}

size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Artifacts.size();
}

uint64_t ArtifactStore::totalBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return TotalBytes;
}

bool ArtifactStore::contains(const ArtifactKey &K) const {
  std::lock_guard<std::mutex> Lock(M);
  return Artifacts.count(K) != 0;
}

void ArtifactStore::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Artifacts.clear();
  TotalBytes = 0;
}
