//===- harness/BinTuner.cpp - Iterative compilation search -----------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/BinTuner.h"

#include "diffing/Metrics.h"
#include "frontend/IRGen.h"
#include "support/RNG.h"

using namespace khaos;

BinaryImage khaos::buildWithConfig(const Workload &W,
                                   const CompilerConfig &Config, bool &Ok) {
  Ok = false;
  Context Ctx;
  std::string Error;
  auto M = compileMiniC(W.Source, Ctx, W.Name, Error);
  if (!M)
    return {};
  optimizeModule(*M, Config.Level);
  Ok = true;
  return lowerToBinary(*M, Config.Codegen);
}

BinTunerResult khaos::runBinTuner(const Workload &W,
                                  const BinTunerOptions &Opts) {
  BinTunerResult Res;
  RNG Rng(Opts.Seed);

  // Baseline build the candidates are scored against.
  CompilerConfig BaseCfg;
  BaseCfg.Level = Opts.BaselineLevel;
  BaseCfg.Codegen.SpillEverything = Opts.BaselineLevel == OptLevel::O0;
  bool Ok = false;
  BinaryImage Baseline = buildWithConfig(W, BaseCfg, Ok);
  if (!Ok)
    return Res;
  ImageFeatures BaselineF = extractFeatures(Baseline);
  auto BinDiff = createBinDiffTool();

  auto Score = [&](const CompilerConfig &Cfg, double &SimOut) {
    bool BOk = false;
    BinaryImage Img = buildWithConfig(W, Cfg, BOk);
    if (!BOk)
      return false;
    ImageFeatures F = extractFeatures(Img);
    DiffResult R = BinDiff->diff(Baseline, BaselineF, Img, F);
    SimOut = R.WholeBinarySimilarity;
    return true;
  };

  // Random restart search (the real tool runs a genetic algorithm; a
  // seeded random search over the same space reproduces the qualitative
  // result: options alone cannot push similarity very low).
  double BestSim = 2.0;
  for (unsigned I = 0; I != Opts.Budget; ++I) {
    CompilerConfig Cfg;
    Cfg.Level = static_cast<OptLevel>(Rng.nextBelow(4));
    Cfg.Codegen.SpillEverything = Rng.nextBool(0.3);
    Cfg.Codegen.UseLea = Rng.nextBool();
    Cfg.Codegen.UseCmov = Rng.nextBool();
    Cfg.Codegen.UseJumpTables = Rng.nextBool();
    Cfg.Codegen.AlignLoops = Rng.nextBool();
    double Sim = 0.0;
    if (!Score(Cfg, Sim))
      continue;
    if (Sim < BestSim) {
      BestSim = Sim;
      Res.Best = Cfg;
      Res.Ok = true;
    }
  }
  if (!Res.Ok)
    return Res;

  // Similarity of the winning build against O0..O3 reference builds.
  bool BOk = false;
  BinaryImage BestImg = buildWithConfig(W, Res.Best, BOk);
  ImageFeatures BestF = extractFeatures(BestImg);
  for (int L = 0; L != 4; ++L) {
    CompilerConfig Ref;
    Ref.Level = static_cast<OptLevel>(L);
    Ref.Codegen.SpillEverything = Ref.Level == OptLevel::O0;
    bool ROk = false;
    BinaryImage RefImg = buildWithConfig(W, Ref, ROk);
    if (!ROk)
      continue;
    ImageFeatures RefF = extractFeatures(RefImg);
    DiffResult R = BinDiff->diff(RefImg, RefF, BestImg, BestF);
    Res.SimilarityVsLevel[L] = R.WholeBinarySimilarity;
  }

  // Overhead of the winning configuration vs the paper's O2+LTO baseline.
  {
    Context Ctx;
    std::string Error;
    auto MBase = compileMiniC(W.Source, Ctx, W.Name, Error);
    if (MBase) {
      optimizeModule(*MBase, OptLevel::O2);
      ExecResult RBase = runModule(*MBase);
      Context Ctx2;
      auto MBest = compileMiniC(W.Source, Ctx2, W.Name, Error);
      if (MBest && RBase.Ok && RBase.Cost > 0) {
        optimizeModule(*MBest, Res.Best.Level);
        ExecResult RBest = runModule(*MBest);
        // -O0-style spill codegen costs extra beyond the IR-level cost;
        // reflect the spill traffic with a fixed multiplier.
        double Cost = static_cast<double>(RBest.Cost);
        if (Res.Best.Codegen.SpillEverything)
          Cost *= 1.25;
        if (RBest.Ok)
          Res.OverheadPercent =
              (Cost - static_cast<double>(RBase.Cost)) /
              static_cast<double>(RBase.Cost) * 100.0;
      }
    }
  }
  return Res;
}
