//===- harness/BinTuner.cpp - Iterative compilation search ----------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/BinTuner.h"

#include "diffing/Metrics.h"
#include "support/RNG.h"

using namespace khaos;

BinTunerResult BinTuner::run(const Workload &W, uint64_t Seed) const {
  BinTunerResult Res;
  RNG Rng(Seed);

  // Baseline build the candidates are scored against — a pipeline
  // artifact like every other reference build, so repeated tuning runs
  // (and the confound matrix sharing this pipeline) compile it once.
  auto Base = Pipe.baselineImage(W, BuildConfig::forLevel(Opts.BaselineLevel));
  if (!Base->Ok)
    return Res;
  auto BinDiff = createBinDiffTool();

  auto Score = [&](const BuildConfig &Cfg, double &SimOut) {
    auto Img = Pipe.baselineImage(W, Cfg);
    if (!Img->Ok)
      return false;
    DiffResult R =
        BinDiff->diff(Base->Image, Base->Features, Img->Image, Img->Features);
    SimOut = R.WholeBinarySimilarity;
    return true;
  };

  // Random restart search (the real tool runs a genetic algorithm; a
  // seeded random search over the same space reproduces the qualitative
  // result: options alone cannot push similarity very low).
  double BestSim = 2.0;
  for (unsigned I = 0; I != Opts.Budget; ++I) {
    BuildConfig Cfg;
    Cfg.Level = static_cast<OptLevel>(Rng.nextBelow(4));
    Cfg.Codegen.SpillEverything = Rng.nextBool(0.3);
    Cfg.Codegen.UseLea = Rng.nextBool();
    Cfg.Codegen.UseCmov = Rng.nextBool();
    Cfg.Codegen.UseJumpTables = Rng.nextBool();
    Cfg.Codegen.AlignLoops = Rng.nextBool();
    double Sim = 0.0;
    if (!Score(Cfg, Sim))
      continue;
    if (Sim < BestSim) {
      BestSim = Sim;
      Res.Best = Cfg;
      Res.Ok = true;
    }
  }
  if (!Res.Ok)
    return Res;

  // Similarity of the winning build against O0..O3 reference builds —
  // the same per-level artifacts the confound matrix diffs against.
  auto BestImg = Pipe.baselineImage(W, Res.Best);
  for (int L = 0; L != 4; ++L) {
    auto Ref =
        Pipe.baselineImage(W, BuildConfig::forLevel(static_cast<OptLevel>(L)));
    if (!Ref->Ok)
      continue;
    DiffResult R = BinDiff->diff(Ref->Image, Ref->Features, BestImg->Image,
                                 BestImg->Features);
    Res.SimilarityVsLevel[L] = R.WholeBinarySimilarity;
  }

  // Overhead of the winning configuration vs the paper's O2+LTO baseline,
  // both sides cached BaselineRun artifacts.
  auto BaseRun = Pipe.baselineRun(W, OptLevel::O2);
  auto BestRun = Pipe.baselineRun(W, Res.Best.Level);
  if (BaseRun->Ok && BestRun->Ok) {
    // -O0-style spill codegen costs extra beyond the IR-level cost;
    // reflect the spill traffic with a fixed multiplier.
    double Cost = static_cast<double>(BestRun->Run.Cost);
    if (Res.Best.Codegen.SpillEverything)
      Cost *= 1.25;
    Res.OverheadPercent = (Cost - static_cast<double>(BaseRun->Run.Cost)) /
                          static_cast<double>(BaseRun->Run.Cost) * 100.0;
  }
  return Res;
}
