//===- harness/DifferentialFuzzer.h - Obfuscation correctness fuzzer -*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing of the obfuscation pipeline: the whole Khaos claim
/// rests on obfuscated binaries behaving identically to their baselines,
/// so this subsystem adversarially searches the obfuscation space for
/// semantic divergences instead of trusting the fixed T-I/T-II/T-III
/// suites. A seeded spec-mutator samples randomized MiniC programs
/// (sweeping function count, FP/recursion mix, indirect calls, EH, setjmp
/// and loop depth into corners the suites never hit), pushes each program
/// through every ObfuscationMode on the EvalPipeline/EvalScheduler
/// (baseline artifacts cached per program, cells fanned over the worker
/// pool), and asserts ExitValue/Stdout/termination equivalence on the VM.
///
/// On a divergence the fuzzer minimizes automatically: a greedy spec-level
/// shrinker (fewer functions, fewer iterations, features off), a greedy
/// source-level function dropper, then a bisection over the driver's named
/// step sequence (obfuscationStepNames / obfuscateModulePrefix) that names
/// the guilty pass — emitting a self-contained repro file that replays
/// with `khaos-fuzz --replay`.
///
/// Everything is deterministic end-to-end: a given (seed, budget, modes)
/// produces bit-identical verdict lines and repro files at any thread
/// count and across reruns.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_DIFFERENTIALFUZZER_H
#define KHAOS_HARNESS_DIFFERENTIALFUZZER_H

#include "obfuscation/KhaosDriver.h"
#include "vm/Interpreter.h"
#include "workloads/SyntheticProgram.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace khaos {

/// How one (program, mode) cell's behaviour differed from its baseline.
enum class DivergenceKind : uint8_t {
  None,         ///< Behaviour identical.
  CompileError, ///< Obfuscated module failed to build or verify.
  Trap,         ///< Obfuscated run trapped while the baseline ran clean.
  Timeout,      ///< Obfuscated run blew the step budget (termination bug
                ///< or a catastrophic, far-beyond-paper overhead).
  ExitValue,    ///< main() returned a different value.
  StdoutBytes,  ///< Captured stdout differs.
  /// Cross-VM mode only: the two execution engines disagreed with each
  /// other (on the baseline or the obfuscated run) — a VM bug, not an
  /// obfuscation bug, and the A/B oracle the precompiled engine is
  /// continuously validated against.
  EngineMismatch,
};

/// Printable kind name ("none", "compile", "trap", "timeout",
/// "exit-value", "stdout", "engine-mismatch").
const char *divergenceKindName(DivergenceKind K);

/// Result of minimizing one divergence.
struct ShrinkResult {
  ProgramSpec Spec;     ///< Minimized generator spec.
  std::string Source;   ///< Minimized source (after function dropping).
  DivergenceKind Kind = DivergenceKind::None; ///< Kind at the minimum.
  std::string Detail;   ///< Expected-vs-got line at the minimum.
  std::string GuiltyStep;     ///< Step named by the pass bisection.
  size_t GuiltyStepIndex = 0; ///< 1-based index into the step sequence.
  size_t StepCount = 0;       ///< Total steps of the mode's pipeline.
  unsigned SpecReductions = 0;   ///< Accepted spec-level shrinks.
  unsigned DroppedFunctions = 0; ///< Accepted source-level drops.
  unsigned Probes = 0;           ///< Divergence probes spent in total.
};

/// One confirmed divergence with its minimized, replayable repro.
struct FuzzDivergence {
  unsigned CaseIndex = 0;
  ProgramSpec Spec; ///< Spec as sampled (pre-shrink).
  ObfuscationMode Mode = ObfuscationMode::None;
  uint64_t ObfSeed = 0; ///< deriveCellSeed(seed, name, mode) of the cell.
  VMEngine Engine = VMEngine::Precompiled; ///< Engine that found it.
  bool CrossVM = false;                    ///< Found under --cross-vm.
  DivergenceKind Kind = DivergenceKind::None; ///< Kind as found.
  std::string Detail;    ///< Expected-vs-got one-liner as found.
  ShrinkResult Shrunk;   ///< Minimized state (== original when !Shrink).
  std::string ReproText; ///< Self-contained repro file contents.
  std::string ReproName; ///< Deterministic repro file name.
};

/// Aggregate outcome of one fuzzing run.
struct FuzzReport {
  unsigned Cases = 0;          ///< Programs generated.
  unsigned Cells = 0;          ///< (case × mode) cells executed.
  unsigned Passes = 0;         ///< Cells with identical behaviour.
  unsigned BaselineErrors = 0; ///< Cells whose baseline itself failed.
  std::vector<FuzzDivergence> Divergences;
};

/// The differential obfuscation-correctness fuzzer.
class DifferentialFuzzer {
public:
  struct Config {
    uint64_t Seed = 0xf422;
    unsigned Budget = 100; ///< Number of generated programs.
    unsigned Threads = 0;  ///< Worker pool size (0 = hardware).
    /// Modes to differentiate against the baseline; empty = all.
    std::vector<ObfuscationMode> Modes;
    bool Shrink = true; ///< Minimize + bisect each divergence.
    /// Cap on divergence probes (compile+run pairs) spent per shrink.
    unsigned MaxShrinkProbes = 400;
    /// When set, each divergence's repro file is written here.
    std::string ReproDir;
    /// ArtifactStore LRU cap per batch; soaks stay memory-bounded.
    uint64_t StoreMaxBytes = 256u << 20;
    /// Cases per scheduler batch (matrix granularity; result order —
    /// and thus output — is independent of this and of Threads).
    unsigned CasesPerBatch = 32;
    bool Verbose = true; ///< false = only divergence + summary lines.
    /// VM engine executing every baseline and obfuscated run (--vm).
    VMEngine Engine = VMEngine::Precompiled;
    /// --cross-vm: run every check on BOTH engines and report engine
    /// disagreement (on any ExecResult field, Steps and trap context
    /// included) as DivergenceKind::EngineMismatch — the fuzzer doubles
    /// as an adversarial A/B search over the precompiled engine.
    bool CrossVM = false;
    /// Verdict stream (defaults to std::cout). Stderr-style telemetry is
    /// never written here, so the stream is byte-stable across runs.
    std::ostream *Out = nullptr;
  };

  explicit DifferentialFuzzer(Config C) : Cfg(std::move(C)) {}

  /// Runs the whole budget. Deterministic: bit-identical report, verdict
  /// lines and repro files at any Config::Threads / CasesPerBatch.
  FuzzReport run();

  //===--------------------------------------------------------------------===//
  // Deterministic building blocks (exposed for tests, replay, tools).
  //===--------------------------------------------------------------------===//

  /// Termination policy. The baseline runs under a hard step cap (a spec
  /// whose baseline is hotter is reported as a baseline error — it would
  /// probe nothing but wall-clock). The obfuscated run gets
  /// ObfStepsMultiplier × the baseline's actual step count (floored at
  /// MinObfSteps so constant obfuscation overhead never trips on tiny
  /// programs): far above any legitimate overhead in the paper, so
  /// exceeding it is reported as a "timeout" divergence — a
  /// non-termination bug or a catastrophic slowdown.
  static constexpr uint64_t BaselineMaxSteps = 8'000'000;
  static constexpr uint64_t ObfStepsMultiplier = 16;
  static constexpr uint64_t MinObfSteps = 1'000'000;

  /// The seeded spec-mutator: case \p Index of a run seeded \p BaseSeed.
  /// Sweeps shape knobs well past the fixed suites (loop depth to 4,
  /// FP-heavy, EH × setjmp × indirect-call combinations, 3..32 functions).
  static ProgramSpec sampleSpec(uint64_t BaseSeed, unsigned Index);

  /// Compiles + runs baseline and obfuscated variants of \p Source and
  /// classifies the difference. Returns false when the baseline itself
  /// failed (compile error or trap) — such probes say nothing about the
  /// obfuscator. \p PrefixSteps limits the obfuscation pipeline to its
  /// first N steps (SIZE_MAX = full pipeline; the bisection's probe).
  /// Runs execute under \p Engine; with \p CrossVM both engines run and
  /// any disagreement is reported as EngineMismatch (checked before the
  /// baseline-vs-obfuscated classification, on baseline and obfuscated
  /// runs alike).
  static bool probeSource(const std::string &Source, const std::string &Name,
                          ObfuscationMode Mode, uint64_t ObfSeed,
                          size_t PrefixSteps, DivergenceKind &KindOut,
                          std::string *DetailOut = nullptr,
                          VMEngine Engine = VMEngine::Precompiled,
                          bool CrossVM = false);

  /// Minimizes a diverging (spec, mode, seed): greedy spec reduction,
  /// greedy function dropping, then pass bisection. Deterministic.
  /// \p Engine / \p CrossVM must match the configuration that found the
  /// divergence, or the shrinker probes a different predicate.
  static ShrinkResult shrink(const ProgramSpec &Spec, ObfuscationMode Mode,
                             uint64_t ObfSeed, unsigned MaxProbes,
                             VMEngine Engine = VMEngine::Precompiled,
                             bool CrossVM = false);

  /// Formats \p D as a self-contained repro file (header + MiniC source).
  static std::string formatRepro(const FuzzDivergence &D);

  /// Replays a repro file: parses the header + source and re-probes
  /// under \p Engine (with \p CrossVM, on both engines). Repro files
  /// record the engine that produced them, but replay deliberately takes
  /// the engine from the caller — old repros are replayable against
  /// either engine via khaos-fuzz --replay --vm=....
  /// Returns the observed kind (None = the bug no longer reproduces);
  /// on a malformed repro or failing baseline sets \p Error and returns
  /// None.
  static DivergenceKind replayRepro(const std::string &ReproText,
                                    std::string &Error,
                                    VMEngine Engine = VMEngine::Precompiled,
                                    bool CrossVM = false);

private:
  Config Cfg;
};

/// Parses an obfuscation mode by its obfuscationModeName() spelling
/// (case-insensitive; accepts "FuFi.all" and "fufi_all" alike).
bool parseObfuscationModeName(const std::string &Name, ObfuscationMode &Out);

} // namespace khaos

#endif // KHAOS_HARNESS_DIFFERENTIALFUZZER_H
