//===- harness/DifferentialFuzzer.cpp - Obfuscation correctness fuzzer ------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/DifferentialFuzzer.h"

#include "frontend/IRGen.h"
#include "harness/EvalScheduler.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "support/StringUtils.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>

using namespace khaos;

const char *khaos::divergenceKindName(DivergenceKind K) {
  switch (K) {
  case DivergenceKind::None:
    return "none";
  case DivergenceKind::CompileError:
    return "compile";
  case DivergenceKind::Trap:
    return "trap";
  case DivergenceKind::Timeout:
    return "timeout";
  case DivergenceKind::ExitValue:
    return "exit-value";
  case DivergenceKind::StdoutBytes:
    return "stdout";
  case DivergenceKind::EngineMismatch:
    return "engine-mismatch";
  }
  return "?";
}

bool khaos::parseObfuscationModeName(const std::string &Name,
                                     ObfuscationMode &Out) {
  auto Canon = [](const std::string &S) {
    std::string C;
    for (char Ch : S) {
      if (Ch == '.' || Ch == '-' || Ch == '_')
        continue;
      C += static_cast<char>(std::tolower(static_cast<unsigned char>(Ch)));
    }
    return C;
  };
  const std::string Want = Canon(Name);
  const ObfuscationMode All[] = {
      ObfuscationMode::None,    ObfuscationMode::Sub,
      ObfuscationMode::Bog,     ObfuscationMode::Fla,
      ObfuscationMode::Fla10,   ObfuscationMode::MBA,
      ObfuscationMode::StrEnc,  ObfuscationMode::IndCall,
      ObfuscationMode::SplitBB, ObfuscationMode::Fission,
      ObfuscationMode::Fusion,  ObfuscationMode::FuFiSep,
      ObfuscationMode::FuFiOri, ObfuscationMode::FuFiAll,
  };
  for (ObfuscationMode M : All)
    if (Canon(obfuscationModeName(M)) == Want) {
      Out = M;
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// Spec sampling
//===----------------------------------------------------------------------===//

ProgramSpec DifferentialFuzzer::sampleSpec(uint64_t BaseSeed,
                                           unsigned Index) {
  RNG R = RNG::fromName("fuzz-case-" + std::to_string(Index), BaseSeed);
  ProgramSpec S;
  S.Name = formatStr("fuzz-%llx-%05u", (unsigned long long)BaseSeed, Index);
  S.Seed = R.next();
  S.NumFunctions = 3 + static_cast<unsigned>(R.nextBelow(30)); // 3..32
  S.FloatRatio = 0.15 * static_cast<double>(R.nextBelow(5));   // 0..0.6
  S.RecursionRatio = 0.12 * static_cast<double>(R.nextBelow(4));
  S.UseIndirectCalls = R.nextBool(0.6);
  S.UseExceptions = R.nextBool(0.4);
  S.UseSetjmp = R.nextBool(0.3);
  S.MaxLoopDepth = static_cast<unsigned>(R.nextBelow(5)); // 0..4
  // Couple the hot knobs: deep loop nests multiply the dynamic cost, so
  // they get fewer main iterations (and at depth 4, fewer functions) —
  // otherwise a noticeable fraction of cases burns the whole VM step
  // budget in the baseline and probes nothing.
  S.MainIterations =
      1 + static_cast<unsigned>(R.nextBelow(S.MaxLoopDepth >= 3 ? 3 : 8));
  if (S.MaxLoopDepth == 4)
    S.NumFunctions = 3 + S.NumFunctions % 14;
  // Adversarial idioms (appended draws: changes fuzz case shapes only,
  // never the fixed eval workloads).
  S.StringRatio = R.nextBool(0.35) ? 0.3 * (1 + R.nextBelow(3)) : 0.0;
  S.UseSwitchDispatch = R.nextBool(0.35);
  S.UseGotos = R.nextBool(0.35);
  return S;
}

//===----------------------------------------------------------------------===//
// Probing
//===----------------------------------------------------------------------===//

namespace {

/// The step budget the obfuscated twin of a baseline run gets.
uint64_t obfStepBudget(const ExecResult &Ref) {
  return std::max(Ref.Steps * DifferentialFuzzer::ObfStepsMultiplier,
                  DifferentialFuzzer::MinObfSteps);
}

/// Cross-VM oracle: full observational comparison of the two engines'
/// runs of the same module. Empty string = identical; otherwise a
/// one-liner naming the first differing ExecResult field with both
/// values (\p A ran under \p AEngine, \p B under the other engine).
std::string engineMismatchDetail(const ExecResult &A, const ExecResult &B,
                                 VMEngine AEngine) {
  const char *AN = vmEngineName(AEngine);
  const char *BN = vmEngineName(AEngine == VMEngine::Precompiled
                                    ? VMEngine::Reference
                                    : VMEngine::Precompiled);
  if (A.Ok != B.Ok)
    return formatStr("engines disagree: %s %s but %s %s (%s)", AN,
                     A.Ok ? "ok" : "trapped", BN, B.Ok ? "ok" : "trapped",
                     (A.Ok ? B.Error : A.Error).c_str());
  if (A.Error != B.Error)
    return formatStr("engines disagree on trap: %s '%s' != %s '%s'", AN,
                     A.Error.c_str(), BN, B.Error.c_str());
  if (A.FaultFunction != B.FaultFunction || A.FaultBlock != B.FaultBlock)
    return formatStr("engines disagree on fault context: %s %s:%s != %s "
                     "%s:%s",
                     AN, A.FaultFunction.c_str(), A.FaultBlock.c_str(), BN,
                     B.FaultFunction.c_str(), B.FaultBlock.c_str());
  if (A.ExitValue != B.ExitValue)
    return formatStr("engines disagree on exit: %s %lld != %s %lld", AN,
                     (long long)A.ExitValue, BN, (long long)B.ExitValue);
  if (A.Stdout != B.Stdout)
    return formatStr("engines disagree on stdout: %s %zu bytes != %s %zu "
                     "bytes",
                     AN, A.Stdout.size(), BN, B.Stdout.size());
  if (A.Steps != B.Steps)
    return formatStr("engines disagree on steps: %s %llu != %s %llu", AN,
                     (unsigned long long)A.Steps, BN,
                     (unsigned long long)B.Steps);
  if (A.Cost != B.Cost)
    return formatStr("engines disagree on cost: %s %llu != %s %llu", AN,
                     (unsigned long long)A.Cost, BN,
                     (unsigned long long)B.Cost);
  return {};
}

/// Runs \p M under \p Opts' engine; with \p CrossVM also under the other
/// engine, setting \p MismatchOut to the disagreement detail (empty =
/// engines agree). Returns the primary engine's result either way.
ExecResult runChecked(const Module &M, ExecOptions Opts, bool CrossVM,
                      std::string *MismatchOut) {
  if (MismatchOut)
    MismatchOut->clear();
  ExecResult Primary = runModule(M, Opts);
  if (CrossVM) {
    ExecOptions Other = Opts;
    Other.Engine = Opts.Engine == VMEngine::Precompiled
                       ? VMEngine::Reference
                       : VMEngine::Precompiled;
    std::string Detail =
        engineMismatchDetail(Primary, runModule(M, Other), Opts.Engine);
    if (!Detail.empty() && MismatchOut)
      *MismatchOut = std::move(Detail);
  }
  return Primary;
}

/// Classifies an obfuscated run against the baseline's reference run.
/// \p ObfMaxSteps is the budget Got ran under (to tell a timeout apart
/// from a genuine trap).
DivergenceKind classifyRuns(const ExecResult &Ref, const ExecResult &Got,
                            uint64_t ObfMaxSteps, std::string *DetailOut) {
  if (!Got.Ok) {
    if (Got.Steps >= ObfMaxSteps) {
      if (DetailOut)
        *DetailOut = formatStr(
            "obfuscated run exceeded %llu steps (baseline took %llu)",
            (unsigned long long)ObfMaxSteps, (unsigned long long)Ref.Steps);
      return DivergenceKind::Timeout;
    }
    if (DetailOut)
      *DetailOut = "obfuscated run failed: " + Got.Error;
    return DivergenceKind::Trap;
  }
  if (Got.ExitValue != Ref.ExitValue) {
    if (DetailOut)
      *DetailOut = formatStr("exit %lld != baseline %lld",
                             (long long)Got.ExitValue,
                             (long long)Ref.ExitValue);
    return DivergenceKind::ExitValue;
  }
  if (Got.Stdout != Ref.Stdout) {
    size_t FirstDiff = 0;
    size_t Common = std::min(Got.Stdout.size(), Ref.Stdout.size());
    while (FirstDiff < Common && Got.Stdout[FirstDiff] == Ref.Stdout[FirstDiff])
      ++FirstDiff;
    if (DetailOut)
      *DetailOut = formatStr(
          "stdout %zu bytes != baseline %zu bytes (first diff at %zu)",
          Got.Stdout.size(), Ref.Stdout.size(), FirstDiff);
    return DivergenceKind::StdoutBytes;
  }
  return DivergenceKind::None;
}

} // namespace

bool DifferentialFuzzer::probeSource(const std::string &Source,
                                     const std::string &Name,
                                     ObfuscationMode Mode, uint64_t ObfSeed,
                                     size_t PrefixSteps,
                                     DivergenceKind &KindOut,
                                     std::string *DetailOut, VMEngine Engine,
                                     bool CrossVM) {
  KindOut = DivergenceKind::None;

  Context RefCtx;
  std::string Error;
  std::unique_ptr<Module> Ref = compileMiniC(Source, RefCtx, Name, Error);
  if (!Ref)
    return false;
  optimizeModule(*Ref, OptLevel::O2);
  ExecOptions RefOpts;
  RefOpts.MaxSteps = BaselineMaxSteps;
  RefOpts.Engine = Engine;
  std::string Mismatch;
  ExecResult RefRun = runChecked(*Ref, RefOpts, CrossVM, &Mismatch);
  if (!Mismatch.empty()) {
    // An engine disagreement on the baseline is the strongest possible
    // finding for the A/B oracle — report it even though the probe never
    // reaches the obfuscated twin.
    KindOut = DivergenceKind::EngineMismatch;
    if (DetailOut)
      *DetailOut = "baseline: " + Mismatch;
    return true;
  }
  if (!RefRun.Ok)
    return false;

  Context ObfCtx;
  std::unique_ptr<Module> Obf = compileMiniC(Source, ObfCtx, Name, Error);
  if (!Obf)
    return false;
  KhaosOptions Opts;
  Opts.Seed = ObfSeed;
  obfuscateModulePrefix(*Obf, Mode, Opts, PrefixSteps);
  std::vector<std::string> Problems = verifyModule(*Obf);
  if (!Problems.empty()) {
    KindOut = DivergenceKind::CompileError;
    if (DetailOut)
      *DetailOut = "verifier: " + Problems.front();
    return true;
  }
  ExecOptions ObfOpts;
  ObfOpts.MaxSteps = obfStepBudget(RefRun);
  ObfOpts.Engine = Engine;
  ExecResult Got = runChecked(*Obf, ObfOpts, CrossVM, &Mismatch);
  if (!Mismatch.empty()) {
    KindOut = DivergenceKind::EngineMismatch;
    if (DetailOut)
      *DetailOut = "obfuscated: " + Mismatch;
    return true;
  }
  KindOut = classifyRuns(RefRun, Got, ObfOpts.MaxSteps, DetailOut);
  return true;
}

//===----------------------------------------------------------------------===//
// Shrinking
//===----------------------------------------------------------------------===//

namespace {

/// One top-level unit of generated MiniC source: a function definition
/// (droppable unless it is main) or a preamble line (global, blank).
struct SourceChunk {
  std::string Text;
  bool Droppable = false;
};

/// Splits generated MiniC into top-level chunks by brace depth. The
/// generator emits no brace characters inside string literals, so plain
/// per-line counting is exact for this grammar.
std::vector<SourceChunk> chunkMiniC(const std::string &Source) {
  std::vector<SourceChunk> Chunks;
  SourceChunk Cur;
  int Depth = 0;
  bool SawBrace = false;
  bool SawParen = false;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t NL = Source.find('\n', Pos);
    std::string Line = Source.substr(
        Pos, NL == std::string::npos ? std::string::npos : NL - Pos + 1);
    Pos = NL == std::string::npos ? Source.size() + 1 : NL + 1;
    if (Line.empty())
      break;
    if (Cur.Text.empty()) {
      SawBrace = false;
      SawParen = Line.find('(') != std::string::npos;
    }
    Cur.Text += Line;
    for (char C : Line) {
      if (C == '{') {
        ++Depth;
        SawBrace = true;
      } else if (C == '}') {
        --Depth;
      }
    }
    if (Depth == 0) {
      // A function definition is a braced chunk with a parameter list;
      // main() stays, everything else is fair game for the dropper.
      Cur.Droppable = SawBrace && SawParen &&
                      Cur.Text.find("int main()") == std::string::npos;
      Chunks.push_back(std::move(Cur));
      Cur = SourceChunk();
    }
  }
  if (!Cur.Text.empty())
    Chunks.push_back(std::move(Cur));
  return Chunks;
}

std::string joinChunks(const std::vector<SourceChunk> &Chunks,
                       const std::vector<uint8_t> &Dropped) {
  std::string Out;
  for (size_t I = 0; I != Chunks.size(); ++I)
    if (!Dropped[I])
      Out += Chunks[I].Text;
  return Out;
}

/// A probe wrapper that both enforces the budget and requires the
/// baseline to stay healthy: a shrink candidate that breaks the baseline
/// is rejected outright.
bool divergesWithin(const std::string &Source, const std::string &Name,
                    ObfuscationMode Mode, uint64_t ObfSeed,
                    size_t PrefixSteps, unsigned MaxProbes,
                    unsigned &Probes, DivergenceKind &KindOut,
                    std::string *DetailOut, VMEngine Engine, bool CrossVM) {
  if (Probes >= MaxProbes)
    return false;
  ++Probes;
  DivergenceKind K = DivergenceKind::None;
  if (!DifferentialFuzzer::probeSource(Source, Name, Mode, ObfSeed,
                                       PrefixSteps, K, DetailOut, Engine,
                                       CrossVM))
    return false;
  if (K == DivergenceKind::None)
    return false;
  KindOut = K;
  return true;
}

} // namespace

ShrinkResult DifferentialFuzzer::shrink(const ProgramSpec &Spec,
                                        ObfuscationMode Mode,
                                        uint64_t ObfSeed, unsigned MaxProbes,
                                        VMEngine Engine, bool CrossVM) {
  ShrinkResult Res;
  Res.Spec = Spec;
  const size_t Full = std::numeric_limits<size_t>::max();

  auto SpecDiverges = [&](const ProgramSpec &S, DivergenceKind &K,
                          std::string *Detail) {
    return divergesWithin(generateMiniCProgram(S), S.Name, Mode, ObfSeed,
                          Full, MaxProbes, Res.Probes, K, Detail, Engine,
                          CrossVM);
  };

  // Establish the starting state (and its kind/detail).
  {
    DivergenceKind K = DivergenceKind::None;
    std::string Detail;
    if (!SpecDiverges(Res.Spec, K, &Detail)) {
      // The divergence does not reproduce standalone — report as-is so
      // the caller still gets a repro of the original spec.
      Res.Source = generateMiniCProgram(Res.Spec);
      return Res;
    }
    Res.Kind = K;
    Res.Detail = Detail;
  }

  // Phase 1: greedy spec-level reduction, fixed candidate order, repeated
  // until a full round accepts nothing. Every acceptance re-records the
  // (possibly different) divergence kind at the smaller spec.
  bool Changed = true;
  while (Changed && Res.Probes < MaxProbes) {
    Changed = false;
    auto Try = [&](ProgramSpec Candidate) {
      DivergenceKind K = DivergenceKind::None;
      std::string Detail;
      if (!SpecDiverges(Candidate, K, &Detail))
        return false;
      Res.Spec = std::move(Candidate);
      Res.Kind = K;
      Res.Detail = std::move(Detail);
      ++Res.SpecReductions;
      Changed = true;
      return true;
    };

    // Function count: halve toward the generator's floor of 3, falling
    // back to single steps when the big jump overshoots the bug.
    while (Res.Spec.NumFunctions > 3 && Res.Probes < MaxProbes) {
      ProgramSpec Half = Res.Spec;
      Half.NumFunctions = std::max(3u, Half.NumFunctions / 2);
      if (Half.NumFunctions != Res.Spec.NumFunctions &&
          Try(std::move(Half)))
        continue;
      ProgramSpec Dec = Res.Spec;
      --Dec.NumFunctions;
      if (!Try(std::move(Dec)))
        break;
    }
    while (Res.Spec.MainIterations > 1 && Res.Probes < MaxProbes) {
      ProgramSpec Half = Res.Spec;
      Half.MainIterations = std::max(1u, Half.MainIterations / 2);
      if (Half.MainIterations != Res.Spec.MainIterations &&
          Try(std::move(Half)))
        continue;
      ProgramSpec Dec = Res.Spec;
      --Dec.MainIterations;
      if (!Try(std::move(Dec)))
        break;
    }
    while (Res.Spec.MaxLoopDepth > 0 && Res.Probes < MaxProbes) {
      ProgramSpec C = Res.Spec;
      --C.MaxLoopDepth;
      if (!Try(std::move(C)))
        break;
    }
    for (int Feature = 0; Feature != 8 && Res.Probes < MaxProbes;
         ++Feature) {
      ProgramSpec C = Res.Spec;
      switch (Feature) {
      case 0:
        if (!C.UseExceptions)
          continue;
        C.UseExceptions = false;
        break;
      case 1:
        if (!C.UseSetjmp)
          continue;
        C.UseSetjmp = false;
        break;
      case 2:
        if (!C.UseIndirectCalls)
          continue;
        C.UseIndirectCalls = false;
        break;
      case 3:
        if (C.FloatRatio == 0.0)
          continue;
        C.FloatRatio = 0.0;
        break;
      case 4:
        if (C.StringRatio == 0.0)
          continue;
        C.StringRatio = 0.0;
        break;
      case 5:
        if (!C.UseSwitchDispatch)
          continue;
        C.UseSwitchDispatch = false;
        break;
      case 6:
        if (!C.UseGotos)
          continue;
        C.UseGotos = false;
        break;
      default:
        if (C.RecursionRatio == 0.0)
          continue;
        C.RecursionRatio = 0.0;
        break;
      }
      Try(std::move(C));
    }
  }

  // Phase 2: greedy function dropping on the minimized source. Dropping a
  // function that is still referenced fails to compile, which the probe
  // rejects (the baseline must stay healthy) — so this is safely greedy.
  Res.Source = generateMiniCProgram(Res.Spec);
  {
    std::vector<SourceChunk> Chunks = chunkMiniC(Res.Source);
    std::vector<uint8_t> Dropped(Chunks.size(), 0);
    bool DropChanged = true;
    while (DropChanged && Res.Probes < MaxProbes) {
      DropChanged = false;
      // Reverse order: later functions are callers of earlier ones, so
      // they become unreferenced (and droppable) first.
      for (size_t I = Chunks.size(); I-- > 0;) {
        if (Dropped[I] || !Chunks[I].Droppable || Res.Probes >= MaxProbes)
          continue;
        Dropped[I] = 1;
        DivergenceKind K = DivergenceKind::None;
        std::string Detail;
        if (divergesWithin(joinChunks(Chunks, Dropped), Res.Spec.Name, Mode,
                           ObfSeed, Full, MaxProbes, Res.Probes, K, &Detail,
                           Engine, CrossVM)) {
          Res.Kind = K;
          Res.Detail = std::move(Detail);
          ++Res.DroppedFunctions;
          DropChanged = true;
        } else {
          Dropped[I] = 0;
        }
      }
    }
    Res.Source = joinChunks(Chunks, Dropped);
  }

  // Phase 3: pass bisection over the driver's named step sequence. The
  // full prefix diverges (just re-established above) and the empty prefix
  // runs the unobfuscated module, which matches the baseline; bisect the
  // boundary and name the step that flips behaviour.
  {
    KhaosOptions Opts;
    Opts.Seed = ObfSeed;
    std::vector<std::string> Steps = obfuscationStepNames(Mode, Opts);
    Res.StepCount = Steps.size();
    auto PrefixDiverges = [&](size_t K) {
      DivergenceKind Kind = DivergenceKind::None;
      std::string Detail;
      // The bisection runs outside the probe budget: it is O(log steps)
      // and a repro without a guilty step is not actionable.
      ++Res.Probes;
      if (!probeSource(Res.Source, Res.Spec.Name, Mode, ObfSeed, K, Kind,
                       &Detail, Engine, CrossVM))
        return false;
      return Kind != DivergenceKind::None;
    };
    if (!Steps.empty() && PrefixDiverges(0)) {
      // The unobfuscated module already disagrees with the baseline —
      // a frontend/optimizer bug, not an obfuscation pass.
      Res.GuiltyStep = "(pre-obfuscation)";
    } else if (!Steps.empty()) {
      size_t Lo = 0, Hi = Steps.size(); // Lo agrees, Hi diverges.
      while (Hi - Lo > 1) {
        size_t Mid = Lo + (Hi - Lo) / 2;
        if (PrefixDiverges(Mid))
          Hi = Mid;
        else
          Lo = Mid;
      }
      Res.GuiltyStep = Steps[Hi - 1];
      Res.GuiltyStepIndex = Hi;
    }
  }
  return Res;
}

//===----------------------------------------------------------------------===//
// Repro files
//===----------------------------------------------------------------------===//

static const char ReproMagic[] = "# khaos-fuzz repro v1";
static const char ReproSourceMarker[] = "# --- MiniC source ---";

std::string DifferentialFuzzer::formatRepro(const FuzzDivergence &D) {
  const ShrinkResult &S = D.Shrunk;
  std::string Out;
  Out += ReproMagic;
  Out += '\n';
  Out += formatStr("# name: %s\n", S.Spec.Name.c_str());
  Out += formatStr("# mode: %s\n", obfuscationModeName(D.Mode));
  Out += formatStr("# obf-seed: 0x%llx\n", (unsigned long long)D.ObfSeed);
  // Which engine produced the verdict (informational: --replay takes the
  // engine from its own --vm flag, so old repros replay on either).
  Out += formatStr("# engine: %s%s\n", vmEngineName(D.Engine),
                   D.CrossVM ? " (cross-vm)" : "");
  Out += formatStr("# kind: %s\n", divergenceKindName(S.Kind));
  if (!S.GuiltyStep.empty())
    Out += formatStr("# guilty-step: %s (step %zu of %zu)\n",
                     S.GuiltyStep.c_str(), S.GuiltyStepIndex, S.StepCount);
  Out += formatStr("# spec: nfun=%u fp=%.2f rec=%.2f ind=%d eh=%d sj=%d "
                   "loop=%u iters=%u str=%.2f sw=%d goto=%d gseed=0x%llx\n",
                   S.Spec.NumFunctions, S.Spec.FloatRatio,
                   S.Spec.RecursionRatio, S.Spec.UseIndirectCalls ? 1 : 0,
                   S.Spec.UseExceptions ? 1 : 0, S.Spec.UseSetjmp ? 1 : 0,
                   S.Spec.MaxLoopDepth, S.Spec.MainIterations,
                   S.Spec.StringRatio, S.Spec.UseSwitchDispatch ? 1 : 0,
                   S.Spec.UseGotos ? 1 : 0,
                   (unsigned long long)S.Spec.Seed);
  if (!S.Detail.empty())
    Out += "# detail: " + S.Detail + "\n";
  Out += formatStr("# shrink: spec-reductions=%u dropped-funcs=%u probes=%u\n",
                   S.SpecReductions, S.DroppedFunctions, S.Probes);
  Out += "# replay: khaos-fuzz --replay <this file>\n";
  Out += ReproSourceMarker;
  Out += '\n';
  Out += S.Source;
  if (Out.back() != '\n')
    Out += '\n';
  return Out;
}

DivergenceKind DifferentialFuzzer::replayRepro(const std::string &ReproText,
                                               std::string &Error,
                                               VMEngine Engine,
                                               bool CrossVM) {
  Error.clear();
  std::string Name, Source;
  ObfuscationMode Mode = ObfuscationMode::None;
  bool HaveMode = false;
  uint64_t ObfSeed = 0;
  bool InSource = false;
  size_t Pos = 0;
  bool First = true;
  while (Pos <= ReproText.size()) {
    size_t NL = ReproText.find('\n', Pos);
    std::string Line = ReproText.substr(
        Pos, NL == std::string::npos ? std::string::npos : NL - Pos);
    Pos = NL == std::string::npos ? ReproText.size() + 1 : NL + 1;
    if (First) {
      if (Line != ReproMagic) {
        Error = "not a khaos-fuzz repro (bad magic line)";
        return DivergenceKind::None;
      }
      First = false;
      continue;
    }
    if (InSource) {
      Source += Line;
      Source += '\n';
      continue;
    }
    if (Line == ReproSourceMarker) {
      InSource = true;
      continue;
    }
    auto Field = [&Line](const char *Key) -> const char * {
      std::string Prefix = std::string("# ") + Key + ": ";
      return startsWith(Line, Prefix) ? Line.c_str() + Prefix.size()
                                      : nullptr;
    };
    if (const char *V = Field("name"))
      Name = V;
    else if (const char *V2 = Field("mode"))
      HaveMode = parseObfuscationModeName(V2, Mode);
    else if (const char *V3 = Field("obf-seed"))
      ObfSeed = std::strtoull(V3, nullptr, 0);
  }
  if (Name.empty() || !HaveMode || Source.empty()) {
    Error = "malformed repro: missing name, mode or source";
    return DivergenceKind::None;
  }
  DivergenceKind Kind = DivergenceKind::None;
  std::string Detail;
  if (!probeSource(Source, Name, Mode, ObfSeed,
                   std::numeric_limits<size_t>::max(), Kind, &Detail, Engine,
                   CrossVM)) {
    Error = "repro baseline failed to compile or run";
    return DivergenceKind::None;
  }
  Error = Detail;
  return Kind;
}

//===----------------------------------------------------------------------===//
// The fuzzing loop
//===----------------------------------------------------------------------===//

namespace {

/// Outcome of one (case × mode) cell, recorded at its matrix slot so the
/// report order is scheduling-independent.
struct CellOutcome {
  bool BaselineOk = true;
  DivergenceKind Kind = DivergenceKind::None;
  std::string Detail;
  uint64_t ObfSeed = 0;
};

std::string sanitizeFileToken(std::string S) {
  for (char &C : S)
    if (C == '.' || C == '/' || C == ' ')
      C = '_';
  return S;
}

} // namespace

FuzzReport DifferentialFuzzer::run() {
  FuzzReport Report;
  std::ostream &OS = Cfg.Out ? *Cfg.Out : std::cout;
  if (!Cfg.ReproDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Cfg.ReproDir, EC);
    if (EC)
      std::cerr << "khaos-fuzz: cannot create repro dir '" << Cfg.ReproDir
                << "': " << EC.message() << "\n";
  }
  std::vector<ObfuscationMode> Modes =
      Cfg.Modes.empty() ? allObfuscationModes() : Cfg.Modes;
  const unsigned Batch = std::max(1u, Cfg.CasesPerBatch);

  for (unsigned Start = 0; Start < Cfg.Budget; Start += Batch) {
    const unsigned End = std::min(Cfg.Budget, Start + Batch);

    // Materialize the batch's programs (the spec-mutator is pure).
    std::vector<ProgramSpec> Specs;
    std::vector<Workload> Workloads;
    for (unsigned I = Start; I != End; ++I) {
      Specs.push_back(sampleSpec(Cfg.Seed, I));
      Workload W;
      W.Name = Specs.back().Name;
      W.Source = generateMiniCProgram(Specs.back());
      Workloads.push_back(std::move(W));
    }

    // Fan the (case × mode) matrix over the scheduler pool. A fresh
    // scheduler per batch keeps the ArtifactStore bounded; verdicts land
    // at their matrix slot, so output order is thread-independent.
    EvalScheduler::Config SchedCfg;
    SchedCfg.Threads = Cfg.Threads;
    SchedCfg.Seed = Cfg.Seed;
    SchedCfg.StoreMaxBytes = Cfg.StoreMaxBytes;
    SchedCfg.Engine = Cfg.Engine;
    EvalScheduler Sched(SchedCfg);
    EvalPipeline &Pipe = Sched.pipeline();

    // Baseline pre-pass (one cell per program on the pool): compile via
    // the cached pipeline stage and run under the fuzzer's baseline step
    // cap. Specs whose baseline is hotter probe nothing and are reported
    // as baseline errors instead of burning wall-clock in every mode.
    struct BaselineInfo {
      bool Ok = false;
      std::string Error;
      std::string EngineMismatch; ///< Non-empty = engines disagreed.
      ExecResult Run;
    };
    std::vector<BaselineInfo> Baselines(Workloads.size());
    const std::vector<ObfuscationMode> NoneMode = {ObfuscationMode::None};
    Sched.forEachCell(Workloads, NoneMode, [&](const EvalCell &Cell) {
      BaselineInfo &B = Baselines[Cell.WorkloadIdx];
      auto Base = Pipe.baseline(*Cell.W);
      if (!*Base) {
        B.Error = "baseline compile failed: " + Base->Error;
        return;
      }
      ExecOptions RefOpts;
      RefOpts.MaxSteps = BaselineMaxSteps;
      RefOpts.Engine = Cfg.Engine;
      B.Run = runChecked(*Base->M, RefOpts, Cfg.CrossVM, &B.EngineMismatch);
      if (!B.EngineMismatch.empty())
        return; // Reported as an engine-mismatch divergence per cell.
      if (!B.Run.Ok) {
        B.Error = "baseline failed: " + B.Run.Error;
        return;
      }
      B.Ok = true;
    });

    std::vector<CellOutcome> Cells(Workloads.size() * Modes.size());
    Sched.forEachCell(Workloads, Modes, [&](const EvalCell &Cell) {
      CellOutcome &Out = Cells[Cell.FlatIdx];
      Out.ObfSeed = Cell.Seed;
      const BaselineInfo &Base = Baselines[Cell.WorkloadIdx];
      if (!Base.EngineMismatch.empty()) {
        Out.Kind = DivergenceKind::EngineMismatch;
        Out.Detail = "baseline: " + Base.EngineMismatch;
        return;
      }
      if (!Base.Ok) {
        Out.BaselineOk = false;
        Out.Detail = Base.Error;
        return;
      }
      CompiledWorkload Obf =
          Pipe.obfuscate(*Cell.W, Cell.Mode, nullptr, Cell.Seed);
      if (!Obf) {
        Out.Kind = DivergenceKind::CompileError;
        Out.Detail = Obf.Error;
        return;
      }
      ExecOptions ObfOpts;
      ObfOpts.MaxSteps = obfStepBudget(Base.Run);
      ObfOpts.Engine = Cfg.Engine;
      std::string Mismatch;
      ExecResult Got = runChecked(*Obf.M, ObfOpts, Cfg.CrossVM, &Mismatch);
      if (!Mismatch.empty()) {
        Out.Kind = DivergenceKind::EngineMismatch;
        Out.Detail = "obfuscated: " + Mismatch;
        return;
      }
      Out.Kind = classifyRuns(Base.Run, Got, ObfOpts.MaxSteps, &Out.Detail);
    });

    // Sequential, matrix-ordered reporting + shrinking: this is what
    // makes the verdict stream and repro files bit-identical at any
    // thread count.
    for (size_t WI = 0; WI != Workloads.size(); ++WI) {
      const unsigned CaseIdx = Start + static_cast<unsigned>(WI);
      const ProgramSpec &Spec = Specs[WI];
      unsigned OkModes = 0, DivModes = 0, BaseErrs = 0;
      for (size_t MI = 0; MI != Modes.size(); ++MI) {
        const CellOutcome &Cell = Cells[WI * Modes.size() + MI];
        if (!Cell.BaselineOk)
          ++BaseErrs;
        else if (Cell.Kind == DivergenceKind::None)
          ++OkModes;
        else
          ++DivModes;
      }
      Report.Cases += 1;
      Report.Cells += static_cast<unsigned>(Modes.size());
      Report.Passes += OkModes;
      Report.BaselineErrors += BaseErrs;

      if (Cfg.Verbose || DivModes != 0 || BaseErrs != 0)
        OS << formatStr(
            "case %06u %s nfun=%u fp=%.2f rec=%.2f ind=%d eh=%d sj=%d "
            "loop=%u iters=%u str=%.2f sw=%d goto=%d : ok=%u div=%u "
            "base-err=%u\n",
            CaseIdx, Spec.Name.c_str(), Spec.NumFunctions, Spec.FloatRatio,
            Spec.RecursionRatio, Spec.UseIndirectCalls ? 1 : 0,
            Spec.UseExceptions ? 1 : 0, Spec.UseSetjmp ? 1 : 0,
            Spec.MaxLoopDepth, Spec.MainIterations, Spec.StringRatio,
            Spec.UseSwitchDispatch ? 1 : 0, Spec.UseGotos ? 1 : 0, OkModes,
            DivModes, BaseErrs);

      for (size_t MI = 0; MI != Modes.size(); ++MI) {
        const CellOutcome &Cell = Cells[WI * Modes.size() + MI];
        if (!Cell.BaselineOk) {
          OS << formatStr("baseline-error %06u %s : %s\n", CaseIdx,
                          Spec.Name.c_str(), Cell.Detail.c_str());
          break; // One line per case: every mode shares the baseline.
        }
        if (Cell.Kind == DivergenceKind::None)
          continue;

        FuzzDivergence D;
        D.CaseIndex = CaseIdx;
        D.Spec = Spec;
        D.Mode = Modes[MI];
        D.ObfSeed = Cell.ObfSeed;
        D.Engine = Cfg.Engine;
        D.CrossVM = Cfg.CrossVM;
        D.Kind = Cell.Kind;
        D.Detail = Cell.Detail;
        OS << formatStr("divergence %06u %s mode=%s obf-seed=0x%llx "
                        "kind=%s : %s\n",
                        CaseIdx, Spec.Name.c_str(),
                        obfuscationModeName(D.Mode),
                        (unsigned long long)D.ObfSeed,
                        divergenceKindName(D.Kind), D.Detail.c_str());

        if (Cfg.Shrink) {
          D.Shrunk = shrink(Spec, D.Mode, D.ObfSeed, Cfg.MaxShrinkProbes,
                            Cfg.Engine, Cfg.CrossVM);
          if (D.Shrunk.Kind == DivergenceKind::None) {
            // The divergence did not reproduce in the shrinker's
            // standalone probe; keep the matrix verdict on the repro
            // rather than emitting a contradictory "kind: none" header.
            D.Shrunk.Kind = D.Kind;
            D.Shrunk.Detail = D.Detail;
          }
          OS << formatStr(
              "shrink %06u mode=%s nfun %u->%u iters %u->%u "
              "spec-reductions=%u dropped-funcs=%u probes=%u kind=%s\n",
              CaseIdx, obfuscationModeName(D.Mode), Spec.NumFunctions,
              D.Shrunk.Spec.NumFunctions, Spec.MainIterations,
              D.Shrunk.Spec.MainIterations, D.Shrunk.SpecReductions,
              D.Shrunk.DroppedFunctions, D.Shrunk.Probes,
              divergenceKindName(D.Shrunk.Kind));
          if (!D.Shrunk.GuiltyStep.empty())
            OS << formatStr("bisect %06u mode=%s guilty-step=%s (%zu/%zu)\n",
                            CaseIdx, obfuscationModeName(D.Mode),
                            D.Shrunk.GuiltyStep.c_str(),
                            D.Shrunk.GuiltyStepIndex, D.Shrunk.StepCount);
        } else {
          D.Shrunk.Spec = Spec;
          D.Shrunk.Source = Workloads[WI].Source;
          D.Shrunk.Kind = D.Kind;
          D.Shrunk.Detail = D.Detail;
        }

        D.ReproText = formatRepro(D);
        D.ReproName =
            formatStr("repro-%s-%s.minic", Spec.Name.c_str(),
                      sanitizeFileToken(obfuscationModeName(D.Mode)).c_str());
        OS << formatStr("repro %s bytes=%zu\n", D.ReproName.c_str(),
                        D.ReproText.size());
        if (!Cfg.ReproDir.empty()) {
          std::ofstream File(Cfg.ReproDir + "/" + D.ReproName,
                             std::ios::binary | std::ios::trunc);
          if (File)
            File << D.ReproText;
          else
            std::cerr << "khaos-fuzz: cannot write repro to '"
                      << Cfg.ReproDir << "/" << D.ReproName << "'\n";
        }
        Report.Divergences.push_back(std::move(D));
      }
    }
  }

  OS << formatStr("summary seed=0x%llx budget=%u modes=%zu cells=%u "
                  "pass=%u divergences=%zu baseline-errors=%u engine=%s%s\n",
                  (unsigned long long)Cfg.Seed, Cfg.Budget, Modes.size(),
                  Report.Cells, Report.Passes, Report.Divergences.size(),
                  Report.BaselineErrors, vmEngineName(Cfg.Engine),
                  Cfg.CrossVM ? " cross-vm" : "");
  return Report;
}
