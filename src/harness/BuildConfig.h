//===- harness/BuildConfig.h - Baseline build configuration -----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline build configuration — optimization level plus codegen
/// style — as a first-class value. Historically the pipeline hard-coded
/// an O2 baseline; the confound experiments (does the *build delta* or
/// the *obfuscation* defeat a diffing tool?) need the baseline to be an
/// explicit axis: part of every artifact key, part of the daemon wire
/// protocol, and parseable from the shared bench flags.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_BUILDCONFIG_H
#define KHAOS_HARNESS_BUILDCONFIG_H

#include "codegen/ISel.h"
#include "transform/Pass.h"

#include <cstdint>
#include <string>
#include <vector>

namespace khaos {

/// One baseline build configuration: what `-O<n>` plus codegen tuning
/// flags are to a real compiler. Equality and the fingerprint cover every
/// field, so two configs that could produce different images never share
/// an artifact-store entry (in memory or on disk).
struct BuildConfig {
  OptLevel Level = OptLevel::O2;
  CodegenOptions Codegen;

  /// The repo's reference-build convention: unoptimized builds keep every
  /// value in memory (SpillEverything at O0), optimized builds use the
  /// default codegen style.
  static BuildConfig forLevel(OptLevel Level);

  /// Stage-key fingerprint: one bit per knob, the same layout the
  /// BaselineImage stage has always used, so a config is content-addressed
  /// identically wherever it appears.
  uint64_t fingerprint() const;

  /// The codegen knobs packed into one byte for the wire protocol
  /// (bit 0 = SpillEverything, 1 = UseLea, 2 = UseCmov, 3 = UseJumpTables,
  /// 4 = AlignLoops, 5 = GccLike compiler style — the KEV1 v3 addition).
  uint8_t packedCodegen() const;
  static CodegenOptions unpackCodegen(uint8_t Packed);

  /// Human-readable name, stable and space-free so it can be a column in
  /// byte-identical bench output: "O2", "O0+spill", "O1+spill-lea",
  /// "O2+gcc", … Deviations from the level's reference convention are
  /// appended; the gcc compiler style always is.
  std::string name() const;

  bool operator==(const BuildConfig &O) const;
  bool operator!=(const BuildConfig &O) const { return !(*this == O); }
};

/// "O0".."O3" for a level (used in bench tables and daemon diagnostics).
const char *optLevelName(OptLevel Level);

/// Parses "O0".."O3" (case-insensitive). Returns false on anything else.
bool parseOptLevelName(const std::string &Text, OptLevel &Out);

/// Parses a `--baseline-opt` comma list ("O0,O2") into reference configs
/// (BuildConfig::forLevel per entry, duplicates rejected). On failure
/// returns false with a diagnostic in \p Err.
bool parseBaselineOptList(const std::string &Text,
                          std::vector<BuildConfig> &Out, std::string &Err);

/// Applies a `--codegen` comma token list to \p CG. Tokens: spill,
/// no-spill, lea, no-lea, cmov, no-cmov, jump-tables, no-jump-tables,
/// align-loops, no-align-loops. On failure returns false with a
/// diagnostic in \p Err.
bool applyCodegenTokens(const std::string &Text, CodegenOptions &CG,
                        std::string &Err);

/// Parses "clang" / "gcc" (case-insensitive). Returns false on anything
/// else.
bool parseCompilerStyleName(const std::string &Text, CompilerStyle &Out);

/// Parses a `--compiler-style` comma list ("clang,gcc") into styles
/// (duplicates and empty entries rejected). On failure returns false with
/// a diagnostic in \p Err.
bool parseCompilerStyleList(const std::string &Text,
                            std::vector<CompilerStyle> &Out,
                            std::string &Err);

} // namespace khaos

#endif // KHAOS_HARNESS_BUILDCONFIG_H
