//===- harness/EvalScheduler.cpp - Parallel evaluation batches ------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/EvalScheduler.h"

#include "support/RNG.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace khaos;

uint64_t khaos::deriveCellSeed(uint64_t BaseSeed,
                               const std::string &WorkloadName,
                               ObfuscationMode Mode) {
  // Name the stream after the cell and salt it with the base seed and the
  // mode. RNG::fromName is an FNV-1a mix, so distinct workloads get
  // uncorrelated streams while the same cell always maps to the same seed.
  uint64_t Salt =
      BaseSeed * 0x100000001b3ull + static_cast<uint64_t>(Mode) + 1;
  return RNG::fromName(WorkloadName, Salt).next();
}

void EvalRunStats::mergeCell(const ObfuscationResult &R, bool Failed) {
  std::lock_guard<std::mutex> Lock(M);
  Cells += 1;
  Failures += Failed ? 1 : 0;
  Fission.OriFuncs += R.Fission.OriFuncs;
  Fission.ProcessedFuncs += R.Fission.ProcessedFuncs;
  Fission.SepFuncs += R.Fission.SepFuncs;
  Fission.SepBlocks += R.Fission.SepBlocks;
  Fission.LazyAllocas += R.Fission.LazyAllocas;
  Fission.OriInstructions += R.Fission.OriInstructions;
  Fission.MovedInstructions += R.Fission.MovedInstructions;
  Fusion.Candidates += R.Fusion.Candidates;
  Fusion.Fused += R.Fusion.Fused;
  Fusion.Pairs += R.Fusion.Pairs;
  Fusion.CompressedParams += R.Fusion.CompressedParams;
  Fusion.DeepMergedBlocks += R.Fusion.DeepMergedBlocks;
  Fusion.Trampolines += R.Fusion.Trampolines;
  Fusion.TaggedPointerSites += R.Fusion.TaggedPointerSites;
}

void EvalRunStats::countCell(bool Failed) {
  std::lock_guard<std::mutex> Lock(M);
  Cells += 1;
  Failures += Failed ? 1 : 0;
}

EvalScheduler::EvalScheduler(Config C) : Cfg(C) {
  Workers = Cfg.Threads;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
}

void EvalScheduler::forEachCell(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes,
    const std::function<void(const EvalCell &)> &Fn) const {
  std::vector<EvalCell> Cells;
  Cells.reserve(Workloads.size() * Modes.size());
  for (size_t WI = 0; WI != Workloads.size(); ++WI)
    for (size_t MI = 0; MI != Modes.size(); ++MI) {
      EvalCell C;
      C.W = &Workloads[WI];
      C.Mode = Modes[MI];
      C.Seed = deriveCellSeed(Cfg.Seed, Workloads[WI].Name, Modes[MI]);
      C.WorkloadIdx = WI;
      C.ModeIdx = MI;
      C.FlatIdx = WI * Modes.size() + MI;
      Cells.push_back(C);
    }

  unsigned Pool = Workers;
  if (Pool > Cells.size())
    Pool = static_cast<unsigned>(Cells.size());

  if (Pool <= 1) {
    for (const EvalCell &C : Cells)
      Fn(C);
    return;
  }

  // Work-stealing by atomic ticket: workers pull the next unclaimed cell,
  // so stragglers never serialize the rest of the matrix.
  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Cells.size())
        return;
      Fn(Cells[I]);
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(Pool);
  for (unsigned T = 0; T != Pool; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
}

std::vector<EvalScheduler::CellCompilation>
EvalScheduler::compileMatrix(const std::vector<Workload> &Workloads,
                             const std::vector<ObfuscationMode> &Modes,
                             EvalRunStats *RunStats) const {
  std::vector<CellCompilation> Out(Workloads.size() * Modes.size());
  forEachCell(Workloads, Modes, [&](const EvalCell &C) {
    CellCompilation &Slot = Out[C.FlatIdx];
    Slot.Compiled =
        compileObfuscated(*C.W, C.Mode, &Slot.Stats, C.Seed);
    if (RunStats)
      RunStats->mergeCell(Slot.Stats, !Slot.Compiled);
  });
  return Out;
}

std::vector<EvalScheduler::CellOverhead>
EvalScheduler::overheadMatrix(const std::vector<Workload> &Workloads,
                              const std::vector<ObfuscationMode> &Modes,
                              EvalRunStats *RunStats) const {
  std::vector<CellOverhead> Out(Workloads.size() * Modes.size());
  forEachCell(Workloads, Modes, [&](const EvalCell &C) {
    CellOverhead &Slot = Out[C.FlatIdx];
    Slot.Ok = measureOverheadPercent(*C.W, C.Mode, Slot.Percent, C.Seed);
    if (RunStats)
      RunStats->countCell(!Slot.Ok);
  });
  return Out;
}

std::vector<EvalScheduler::CellPrecision>
EvalScheduler::precisionMatrix(const std::vector<Workload> &Workloads,
                               const std::vector<ObfuscationMode> &Modes,
                               const std::vector<std::string> &ToolNames,
                               EvalRunStats *RunStats) const {
  // A misspelled tool name would silently yield an all-zero figure row;
  // fail fast instead.
  {
    std::vector<std::unique_ptr<DiffTool>> Known = createAllDiffTools();
    for (const std::string &Name : ToolNames) {
      bool Found = false;
      for (const auto &Tool : Known)
        Found |= Name == Tool->getName();
      if (!Found) {
        std::fprintf(stderr,
                     "EvalScheduler::precisionMatrix: unknown diffing tool "
                     "'%s'\n",
                     Name.c_str());
        std::abort();
      }
    }
  }
  std::vector<CellPrecision> Out(Workloads.size() * Modes.size());
  forEachCell(Workloads, Modes, [&](const EvalCell &C) {
    CellPrecision &Slot = Out[C.FlatIdx];
    Slot.PerTool.assign(ToolNames.size(), -1.0);
    DiffImages Imgs = buildDiffImages(*C.W, C.Mode, C.Seed);
    if (RunStats)
      RunStats->countCell(!Imgs.Ok);
    if (!Imgs.Ok)
      return;
    Slot.Ok = true;
    // Fresh tool instances per cell: DiffTool::diff is const and the tools
    // are stateless, but per-cell construction keeps workers fully
    // independent even if a future tool grows caches.
    std::vector<std::unique_ptr<DiffTool>> Tools = createAllDiffTools();
    for (const auto &Tool : Tools) {
      for (size_t TI = 0; TI != ToolNames.size(); ++TI) {
        if (ToolNames[TI] != Tool->getName())
          continue;
        Slot.PerTool[TI] = runDiffTool(*Tool, Imgs).Precision;
      }
    }
  });
  return Out;
}
