//===- harness/EvalScheduler.cpp - Parallel evaluation batches ------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/EvalScheduler.h"

#include "diffing/Metrics.h"
#include "support/RNG.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace khaos;

uint64_t khaos::deriveCellSeed(uint64_t BaseSeed,
                               const std::string &WorkloadName,
                               ObfuscationMode Mode) {
  // Name the stream after the cell and salt it with the base seed and the
  // mode. RNG::fromName is an FNV-1a mix, so distinct workloads get
  // uncorrelated streams while the same cell always maps to the same seed.
  uint64_t Salt =
      BaseSeed * 0x100000001b3ull + static_cast<uint64_t>(Mode) + 1;
  return RNG::fromName(WorkloadName, Salt).next();
}

void EvalRunStats::mergeCell(const ObfuscationResult &R, bool Failed) {
  std::lock_guard<std::mutex> Lock(M);
  Cells += 1;
  Failures += Failed ? 1 : 0;
  Fission.OriFuncs += R.Fission.OriFuncs;
  Fission.ProcessedFuncs += R.Fission.ProcessedFuncs;
  Fission.SepFuncs += R.Fission.SepFuncs;
  Fission.SepBlocks += R.Fission.SepBlocks;
  Fission.LazyAllocas += R.Fission.LazyAllocas;
  Fission.OriInstructions += R.Fission.OriInstructions;
  Fission.MovedInstructions += R.Fission.MovedInstructions;
  Fusion.Candidates += R.Fusion.Candidates;
  Fusion.Fused += R.Fusion.Fused;
  Fusion.Pairs += R.Fusion.Pairs;
  Fusion.CompressedParams += R.Fusion.CompressedParams;
  Fusion.DeepMergedBlocks += R.Fusion.DeepMergedBlocks;
  Fusion.Trampolines += R.Fusion.Trampolines;
  Fusion.TaggedPointerSites += R.Fusion.TaggedPointerSites;
}

void EvalRunStats::countCell(bool Failed) {
  std::lock_guard<std::mutex> Lock(M);
  Cells += 1;
  Failures += Failed ? 1 : 0;
}

void EvalRunStats::countToolFailure() {
  std::lock_guard<std::mutex> Lock(M);
  ToolFailures += 1;
}

void EvalRunStats::mergeCache(const ArtifactStore::Snapshot &Delta) {
  std::lock_guard<std::mutex> Lock(M);
  CacheHits += Delta.Hits;
  CacheMisses += Delta.Misses;
  CacheEvictions += Delta.Evictions;
  CacheBytesSaved += Delta.BytesSaved;
}

EvalScheduler::EvalScheduler(Config C) : Cfg(C) {
  if (Cfg.Shards == 0)
    Cfg.Shards = 1;
  if (Cfg.ShardIdx >= Cfg.Shards) {
    std::fprintf(stderr,
                 "EvalScheduler: shard index %u out of range for %u "
                 "shards\n",
                 Cfg.ShardIdx, Cfg.Shards);
    std::abort();
  }
  Workers = Cfg.Threads;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  EvalPipeline::Config PC;
  PC.CacheEnabled = Cfg.CacheEnabled;
  PC.StoreMaxBytes = Cfg.StoreMaxBytes;
  PC.Engine = Cfg.Engine;
  Pipe = std::make_shared<EvalPipeline>(PC);
}

void EvalScheduler::runPool(size_t N,
                            const std::function<void(size_t)> &Fn) const {
  unsigned Pool = Workers;
  if (Pool > N)
    Pool = static_cast<unsigned>(N);

  if (Pool <= 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }

  // Work-stealing by atomic ticket: workers pull the next unclaimed item,
  // so stragglers never serialize the rest of the matrix.
  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      Fn(I);
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(Pool);
  for (unsigned T = 0; T != Pool; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
}

std::vector<EvalCell>
EvalScheduler::ownedCells(const std::vector<Workload> &Workloads,
                          const std::vector<ObfuscationMode> &Modes) const {
  std::vector<EvalCell> Cells;
  Cells.reserve(Workloads.size() * Modes.size() / Cfg.Shards + 1);
  for (size_t WI = 0; WI != Workloads.size(); ++WI)
    for (size_t MI = 0; MI != Modes.size(); ++MI) {
      size_t Flat = WI * Modes.size() + MI;
      if (!ownsCell(Flat))
        continue;
      EvalCell C;
      C.W = &Workloads[WI];
      C.Mode = Modes[MI];
      C.Seed = deriveCellSeed(Cfg.Seed, Workloads[WI].Name, Modes[MI]);
      C.WorkloadIdx = WI;
      C.ModeIdx = MI;
      C.FlatIdx = Flat;
      Cells.push_back(C);
    }
  return Cells;
}

void EvalScheduler::forEachCell(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes,
    const std::function<void(const EvalCell &)> &Fn) const {
  std::vector<EvalCell> Cells = ownedCells(Workloads, Modes);
  runPool(Cells.size(), [&](size_t I) { Fn(Cells[I]); });
}

void EvalScheduler::forEachCellTask(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes, size_t NumTools,
    const std::function<void(const EvalTask &)> &Fn) const {
  std::vector<EvalCell> Cells = ownedCells(Workloads, Modes);
  std::vector<EvalTask> Tasks;
  Tasks.reserve(Cells.size() * NumTools);
  for (const EvalCell &C : Cells)
    for (size_t TI = 0; TI != NumTools; ++TI) {
      EvalTask T;
      T.Cell = C;
      T.ToolIdx = TI;
      T.TaskIdx = C.FlatIdx * NumTools + TI;
      Tasks.push_back(T);
    }
  runPool(Tasks.size(), [&](size_t I) { Fn(Tasks[I]); });
}

std::vector<EvalScheduler::CellCompilation>
EvalScheduler::compileMatrix(const std::vector<Workload> &Workloads,
                             const std::vector<ObfuscationMode> &Modes,
                             EvalRunStats *RunStats) const {
  ArtifactStore::Snapshot Before = Pipe->store().stats();
  std::vector<CellCompilation> Out(Workloads.size() * Modes.size());
  forEachCell(Workloads, Modes, [&](const EvalCell &C) {
    CellCompilation &Slot = Out[C.FlatIdx];
    Slot.Ran = true;
    Slot.Compiled = Pipe->obfuscate(*C.W, C.Mode, &Slot.Stats, C.Seed);
    if (RunStats)
      RunStats->mergeCell(Slot.Stats, !Slot.Compiled);
  });
  if (RunStats)
    RunStats->mergeCache(
        ArtifactStore::Snapshot::delta(Pipe->store().stats(), Before));
  return Out;
}

std::vector<EvalScheduler::CellOverhead>
EvalScheduler::overheadMatrix(const std::vector<Workload> &Workloads,
                              const std::vector<ObfuscationMode> &Modes,
                              EvalRunStats *RunStats) const {
  ArtifactStore::Snapshot Before = Pipe->store().stats();
  std::vector<CellOverhead> Out(Workloads.size() * Modes.size());
  forEachCell(Workloads, Modes, [&](const EvalCell &C) {
    CellOverhead &Slot = Out[C.FlatIdx];
    Slot.Ran = true;
    Slot.Ok = Pipe->overheadPercent(*C.W, C.Mode, Slot.Percent, C.Seed);
    if (RunStats)
      RunStats->countCell(!Slot.Ok);
  });
  if (RunStats)
    RunStats->mergeCache(
        ArtifactStore::Snapshot::delta(Pipe->store().stats(), Before));
  return Out;
}

std::vector<uint8_t> EvalScheduler::runCellToolPlane(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes,
    const std::vector<std::string> &ToolNames,
    const std::function<void(const EvalTask &,
                             const EvalPipeline::ImageArtifact &,
                             const EvalPipeline::ImageArtifact &,
                             const DiffOutcome &)> &Fn,
    EvalRunStats *RunStats) const {
  // A misspelled tool name would silently yield an all-zero figure row;
  // fail fast against the registry instead.
  for (const std::string &Name : ToolNames) {
    if (!isDiffToolRegistered(Name)) {
      std::fprintf(stderr,
                   "EvalScheduler: unknown diffing tool '%s'\n",
                   Name.c_str());
      std::abort();
    }
  }

  ArtifactStore::Snapshot Before = Pipe->store().stats();
  std::vector<uint8_t> CellOk(Workloads.size() * Modes.size(), 0);

  // (cell × tool) tasks: the cell's image pair is built once by whichever
  // task gets there first (single-flight in the ArtifactStore) and
  // shared. The task with ToolIdx 0 records the cell's image-build
  // outcome — cells are owned whole, so it always runs in this shard, and
  // it is the cell's only writer. Each task then pulls its cached
  // DiffOutcome stage: a warm re-run (or a sibling shard on a shared
  // store) reuses results without re-running the tool — for subprocess
  // backends that means zero worker round trips.
  forEachCellTask(
      Workloads, Modes, ToolNames.empty() ? 1 : ToolNames.size(),
      [&](const EvalTask &T) {
        auto A = Pipe->baselineImage(*T.Cell.W);
        auto B = Pipe->obfuscatedImage(*T.Cell.W, T.Cell.Mode, T.Cell.Seed);
        bool ImagesOk = A->Ok && B->Ok;
        if (T.ToolIdx == 0)
          CellOk[T.Cell.FlatIdx] = ImagesOk ? 1 : 0;
        if (!ImagesOk || T.ToolIdx >= ToolNames.size())
          return;
        auto D = Pipe->diffOutcome(*T.Cell.W, T.Cell.Mode, T.Cell.Seed,
                                   ToolNames[T.ToolIdx], A, B);
        if (!D->Ok) {
          // Loud per-task failure (timeout, crashed worker): the task
          // renders as "n/a", siblings and the shard keep going.
          std::fprintf(stderr,
                       "[scheduler] tool '%s' failed on %s/%s: %s\n",
                       ToolNames[T.ToolIdx].c_str(), T.Cell.W->Name.c_str(),
                       obfuscationModeName(T.Cell.Mode), D->Error.c_str());
          if (RunStats)
            RunStats->countToolFailure();
          return;
        }
        Fn(T, *A, *B, D->Outcome);
      });

  // Deterministic post-pass: count owned cells in row-major order.
  if (RunStats) {
    for (size_t Flat = 0; Flat != CellOk.size(); ++Flat)
      if (ownsCell(Flat))
        RunStats->countCell(!CellOk[Flat]);
    RunStats->mergeCache(
        ArtifactStore::Snapshot::delta(Pipe->store().stats(), Before));
  }
  return CellOk;
}

std::vector<EvalScheduler::CellPrecision>
EvalScheduler::precisionMatrix(const std::vector<Workload> &Workloads,
                               const std::vector<ObfuscationMode> &Modes,
                               const std::vector<std::string> &ToolNames,
                               EvalRunStats *RunStats) const {
  std::vector<CellPrecision> Out(Workloads.size() * Modes.size());
  for (size_t Flat = 0; Flat != Out.size(); ++Flat) {
    if (!ownsCell(Flat))
      continue;
    Out[Flat].Ran = true;
    Out[Flat].PerTool.assign(ToolNames.size(), -1.0);
  }

  std::vector<uint8_t> CellOk = runCellToolPlane(
      Workloads, Modes, ToolNames,
      [&](const EvalTask &T, const EvalPipeline::ImageArtifact &,
          const EvalPipeline::ImageArtifact &, const DiffOutcome &O) {
        Out[T.Cell.FlatIdx].PerTool[T.ToolIdx] = O.Precision;
      },
      RunStats);

  for (size_t Flat = 0; Flat != Out.size(); ++Flat)
    if (Out[Flat].Ran)
      Out[Flat].Ok = CellOk[Flat] != 0;
  return Out;
}

std::vector<EvalScheduler::CellRanks>
EvalScheduler::vulnRankMatrix(const std::vector<Workload> &Workloads,
                              const std::vector<ObfuscationMode> &Modes,
                              const std::vector<std::string> &ToolNames,
                              EvalRunStats *RunStats) const {
  std::vector<CellRanks> Out(Workloads.size() * Modes.size());
  for (size_t Flat = 0; Flat != Out.size(); ++Flat) {
    if (!ownsCell(Flat))
      continue;
    Out[Flat].Ran = true;
    Out[Flat].PerTool.resize(ToolNames.size());
  }

  std::vector<uint8_t> CellOk = runCellToolPlane(
      Workloads, Modes, ToolNames,
      [&](const EvalTask &T, const EvalPipeline::ImageArtifact &A,
          const EvalPipeline::ImageArtifact &B, const DiffOutcome &O) {
        std::vector<uint32_t> &Ranks =
            Out[T.Cell.FlatIdx].PerTool[T.ToolIdx];
        Ranks.reserve(T.Cell.W->VulnFunctions.size());
        for (const std::string &V : T.Cell.W->VulnFunctions)
          Ranks.push_back(trueMatchRank(A.Image, B.Image, O.Raw, V));
      },
      RunStats);

  for (size_t Flat = 0; Flat != Out.size(); ++Flat)
    if (Out[Flat].Ran)
      Out[Flat].Ok = CellOk[Flat] != 0;
  return Out;
}
