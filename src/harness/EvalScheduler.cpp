//===- harness/EvalScheduler.cpp - Parallel evaluation batches ------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/EvalScheduler.h"

#include "diffing/Metrics.h"
#include "support/RNG.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace khaos;

uint64_t khaos::deriveCellSeed(uint64_t BaseSeed,
                               const std::string &WorkloadName,
                               ObfuscationMode Mode) {
  // Name the stream after the cell and salt it with the base seed and the
  // mode. RNG::fromName is an FNV-1a mix, so distinct workloads get
  // uncorrelated streams while the same cell always maps to the same seed.
  uint64_t Salt =
      BaseSeed * 0x100000001b3ull + static_cast<uint64_t>(Mode) + 1;
  return RNG::fromName(WorkloadName, Salt).next();
}

void EvalRunStats::mergeCell(const ObfuscationResult &R, bool Failed) {
  std::lock_guard<std::mutex> Lock(M);
  Cells += 1;
  Failures += Failed ? 1 : 0;
  Fission.OriFuncs += R.Fission.OriFuncs;
  Fission.ProcessedFuncs += R.Fission.ProcessedFuncs;
  Fission.SepFuncs += R.Fission.SepFuncs;
  Fission.SepBlocks += R.Fission.SepBlocks;
  Fission.LazyAllocas += R.Fission.LazyAllocas;
  Fission.OriInstructions += R.Fission.OriInstructions;
  Fission.MovedInstructions += R.Fission.MovedInstructions;
  Fusion.Candidates += R.Fusion.Candidates;
  Fusion.Fused += R.Fusion.Fused;
  Fusion.Pairs += R.Fusion.Pairs;
  Fusion.CompressedParams += R.Fusion.CompressedParams;
  Fusion.DeepMergedBlocks += R.Fusion.DeepMergedBlocks;
  Fusion.Trampolines += R.Fusion.Trampolines;
  Fusion.TaggedPointerSites += R.Fusion.TaggedPointerSites;
  Passes.merge(R.Report);
}

void EvalRunStats::countCell(bool Failed) {
  std::lock_guard<std::mutex> Lock(M);
  Cells += 1;
  Failures += Failed ? 1 : 0;
}

void EvalRunStats::mergePasses(const PassReport &R) {
  std::lock_guard<std::mutex> Lock(M);
  Passes.merge(R);
}

void EvalRunStats::countToolFailure() {
  std::lock_guard<std::mutex> Lock(M);
  ToolFailures += 1;
}

void EvalRunStats::mergeCache(const ArtifactStore::Snapshot &Delta) {
  std::lock_guard<std::mutex> Lock(M);
  CacheHits += Delta.Hits;
  CacheMisses += Delta.Misses;
  CacheEvictions += Delta.Evictions;
  CacheBytesSaved += Delta.BytesSaved;
  DiskHits += Delta.DiskHits;
  DiskMisses += Delta.DiskMisses;
  DiskEvictions += Delta.DiskEvictions;
  DiskCorrupt += Delta.DiskCorrupt;
}

EvalScheduler::EvalScheduler(Config C) : Cfg(std::move(C)) {
  if (Cfg.Shards == 0)
    Cfg.Shards = 1;
  if (Cfg.ShardIdx >= Cfg.Shards) {
    std::fprintf(stderr,
                 "EvalScheduler: shard index %u out of range for %u "
                 "shards\n",
                 Cfg.ShardIdx, Cfg.Shards);
    std::abort();
  }
  Workers = Cfg.Threads;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  EvalPipeline::Config PC;
  PC.CacheEnabled = Cfg.CacheEnabled;
  PC.StoreMaxBytes = Cfg.StoreMaxBytes;
  PC.Engine = Cfg.Engine;
  PC.CacheDir = Cfg.CacheDir;
  PC.DiskMaxBytes = Cfg.DiskMaxBytes;
  PC.Baseline = Cfg.Baseline;
  Pipe = std::make_shared<EvalPipeline>(PC);

  if (!Cfg.ConnectPath.empty()) {
    // Fail fast, and fail loud: a daemon whose engine or cache setting
    // differs from this run's flags would NOT produce byte-identical
    // results, which is the whole --connect contract.
    auto Client = std::unique_ptr<EvalClient>(new EvalClient());
    std::string Err;
    EvalRequest Req;
    Req.Kind = EvalWireKind::Ping;
    EvalResponse Resp;
    if (!Client->connect(Cfg.ConnectPath, Err) ||
        !Client->call(Req, Resp, Err) || !Resp.Ok) {
      std::fprintf(stderr, "EvalScheduler: cannot reach khaos-evald at "
                           "'%s': %s\n",
                   Cfg.ConnectPath.c_str(), Err.c_str());
      std::abort();
    }
    if (Resp.Engine != static_cast<uint8_t>(Cfg.Engine) ||
        (Resp.CacheEnabled != 0) != Cfg.CacheEnabled) {
      std::fprintf(stderr,
                   "EvalScheduler: khaos-evald at '%s' runs engine=%s "
                   "cache=%s but this run wants engine=%s cache=%s — "
                   "results would not be comparable\n",
                   Cfg.ConnectPath.c_str(),
                   vmEngineName(static_cast<VMEngine>(Resp.Engine)),
                   Resp.CacheEnabled ? "on" : "off",
                   vmEngineName(Cfg.Engine),
                   Cfg.CacheEnabled ? "on" : "off");
      std::abort();
    }
    // The baseline build config is an axis of the artifact keys: a client
    // wanting O0 cells from a daemon warmed at O2 must abort loudly here,
    // never silently mix keys.
    BuildConfig DaemonBC;
    DaemonBC.Level = static_cast<OptLevel>(Resp.BaselineLevel);
    DaemonBC.Codegen = BuildConfig::unpackCodegen(Resp.BaselineCodegen);
    if (DaemonBC != Cfg.Baseline) {
      std::fprintf(stderr,
                   "EvalScheduler: khaos-evald at '%s' runs baseline=%s "
                   "but this run wants baseline=%s — results would not "
                   "be comparable\n",
                   Cfg.ConnectPath.c_str(), DaemonBC.name().c_str(),
                   Cfg.Baseline.name().c_str());
      std::abort();
    }
    std::lock_guard<std::mutex> Lock(ClientsM);
    Clients.push_back(std::move(Client));
  }
}

EvalScheduler::~EvalScheduler() = default;

std::unique_ptr<EvalClient> EvalScheduler::acquireClient() const {
  {
    std::lock_guard<std::mutex> Lock(ClientsM);
    if (!Clients.empty()) {
      std::unique_ptr<EvalClient> C = std::move(Clients.back());
      Clients.pop_back();
      return C;
    }
  }
  auto C = std::unique_ptr<EvalClient>(new EvalClient());
  std::string Err;
  if (!C->connect(Cfg.ConnectPath, Err)) {
    std::fprintf(stderr, "EvalScheduler: cannot reach khaos-evald at "
                         "'%s': %s\n",
                 Cfg.ConnectPath.c_str(), Err.c_str());
    std::abort();
  }
  return C;
}

void EvalScheduler::releaseClient(std::unique_ptr<EvalClient> C) const {
  std::lock_guard<std::mutex> Lock(ClientsM);
  Clients.push_back(std::move(C));
}

void EvalScheduler::runPool(size_t N,
                            const std::function<void(size_t)> &Fn) const {
  unsigned Pool = Workers;
  if (Pool > N)
    Pool = static_cast<unsigned>(N);

  if (Pool <= 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }

  // Work-stealing by atomic ticket: workers pull the next unclaimed item,
  // so stragglers never serialize the rest of the matrix.
  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      Fn(I);
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(Pool);
  for (unsigned T = 0; T != Pool; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
}

std::vector<EvalCell>
EvalScheduler::ownedCells(const std::vector<Workload> &Workloads,
                          const std::vector<ObfuscationMode> &Modes) const {
  std::vector<EvalCell> Cells;
  Cells.reserve(Workloads.size() * Modes.size() / Cfg.Shards + 1);
  for (size_t WI = 0; WI != Workloads.size(); ++WI)
    for (size_t MI = 0; MI != Modes.size(); ++MI) {
      size_t Flat = WI * Modes.size() + MI;
      if (!ownsCell(Flat))
        continue;
      EvalCell C;
      C.W = &Workloads[WI];
      C.Mode = Modes[MI];
      C.Seed = deriveCellSeed(Cfg.Seed, Workloads[WI].Name, Modes[MI]);
      C.WorkloadIdx = WI;
      C.ModeIdx = MI;
      C.FlatIdx = Flat;
      Cells.push_back(C);
    }
  return Cells;
}

void EvalScheduler::forEachCell(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes,
    const std::function<void(const EvalCell &)> &Fn) const {
  std::vector<EvalCell> Cells = ownedCells(Workloads, Modes);
  runPool(Cells.size(), [&](size_t I) { Fn(Cells[I]); });
}

void EvalScheduler::forEachCellTask(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes, size_t NumTools,
    const std::function<void(const EvalTask &)> &Fn) const {
  std::vector<EvalCell> Cells = ownedCells(Workloads, Modes);
  std::vector<EvalTask> Tasks;
  Tasks.reserve(Cells.size() * NumTools);
  for (const EvalCell &C : Cells)
    for (size_t TI = 0; TI != NumTools; ++TI) {
      EvalTask T;
      T.Cell = C;
      T.ToolIdx = TI;
      T.TaskIdx = C.FlatIdx * NumTools + TI;
      Tasks.push_back(T);
    }
  runPool(Tasks.size(), [&](size_t I) { Fn(Tasks[I]); });
}

std::vector<EvalScheduler::CellCompilation>
EvalScheduler::compileMatrix(const std::vector<Workload> &Workloads,
                             const std::vector<ObfuscationMode> &Modes,
                             EvalRunStats *RunStats) const {
  ArtifactStore::Snapshot Before = Pipe->store().stats();
  std::vector<CellCompilation> Out(Workloads.size() * Modes.size());
  forEachCell(Workloads, Modes, [&](const EvalCell &C) {
    CellCompilation &Slot = Out[C.FlatIdx];
    Slot.Ran = true;
    Slot.Compiled = Pipe->obfuscate(*C.W, C.Mode, &Slot.Stats, C.Seed);
    if (RunStats)
      RunStats->mergeCell(Slot.Stats, !Slot.Compiled);
  });
  if (RunStats)
    RunStats->mergeCache(
        ArtifactStore::Snapshot::delta(Pipe->store().stats(), Before));
  return Out;
}

std::vector<EvalScheduler::CellOverhead>
EvalScheduler::overheadMatrix(const std::vector<Workload> &Workloads,
                              const std::vector<ObfuscationMode> &Modes,
                              EvalRunStats *RunStats) const {
  ArtifactStore::Snapshot Before = Pipe->store().stats();
  std::vector<CellOverhead> Out(Workloads.size() * Modes.size());
  if (remote()) {
    // Same fan-out, same per-cell seeds — the measurement just happens on
    // the daemon's warm pipeline. The percent travels as raw double bits,
    // so downstream formatting is byte-identical to an in-process run.
    forEachCell(Workloads, Modes, [&](const EvalCell &C) {
      std::unique_ptr<EvalClient> Client = acquireClient();
      EvalRequest Req;
      Req.Kind = EvalWireKind::Overhead;
      Req.WorkloadName = C.W->Name;
      Req.WorkloadSource = C.W->Source;
      Req.Mode = C.Mode;
      Req.Seed = C.Seed;
      EvalResponse Resp;
      std::string Err;
      if (!Client->call(Req, Resp, Err) || !Resp.Ok) {
        std::fprintf(stderr,
                     "EvalScheduler: evald overhead request failed: %s\n",
                     Err.empty() ? Resp.Error.c_str() : Err.c_str());
        std::abort();
      }
      releaseClient(std::move(Client));
      CellOverhead &Slot = Out[C.FlatIdx];
      Slot.Ran = true;
      Slot.Ok = Resp.Measured != 0;
      Slot.Percent = Resp.Percent;
      if (RunStats)
        RunStats->countCell(!Slot.Ok);
    });
    return Out;
  }
  forEachCell(Workloads, Modes, [&](const EvalCell &C) {
    CellOverhead &Slot = Out[C.FlatIdx];
    Slot.Ran = true;
    Slot.Ok = Pipe->overheadPercent(*C.W, C.Mode, Slot.Percent, C.Seed);
    if (RunStats)
      RunStats->countCell(!Slot.Ok);
  });
  if (RunStats)
    RunStats->mergeCache(
        ArtifactStore::Snapshot::delta(Pipe->store().stats(), Before));
  return Out;
}

std::vector<uint8_t> EvalScheduler::remoteCellToolPlane(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes,
    const std::vector<std::string> &ToolNames,
    const std::function<void(const EvalTask &, const EvalResponse &)> &Fn,
    EvalRunStats *RunStats) const {
  // Validate locally against the same registry the daemon checks; a
  // mismatch is version skew and the daemon would reject the request.
  for (const std::string &Name : ToolNames) {
    if (!isDiffToolRegistered(Name)) {
      std::fprintf(stderr, "EvalScheduler: unknown diffing tool '%s'\n",
                   Name.c_str());
      std::abort();
    }
  }

  std::vector<uint8_t> CellOk(Workloads.size() * Modes.size(), 0);
  forEachCellTask(
      Workloads, Modes, ToolNames.empty() ? 1 : ToolNames.size(),
      [&](const EvalTask &T) {
        std::unique_ptr<EvalClient> Client = acquireClient();
        EvalRequest Req;
        Req.Kind = EvalWireKind::DiffTask;
        Req.WorkloadName = T.Cell.W->Name;
        Req.WorkloadSource = T.Cell.W->Source;
        Req.VulnFunctions = T.Cell.W->VulnFunctions;
        Req.Mode = T.Cell.Mode;
        Req.Seed = T.Cell.Seed;
        if (T.ToolIdx < ToolNames.size())
          Req.Tool = ToolNames[T.ToolIdx];
        Req.BaselineLevel = static_cast<uint8_t>(Cfg.Baseline.Level);
        Req.BaselineCodegen = Cfg.Baseline.packedCodegen();
        EvalResponse Resp;
        std::string Err;
        if (!Client->call(Req, Resp, Err) || !Resp.Ok) {
          std::fprintf(stderr,
                       "EvalScheduler: evald diff request failed: %s\n",
                       Err.empty() ? Resp.Error.c_str() : Err.c_str());
          std::abort();
        }
        releaseClient(std::move(Client));
        bool ImagesOk = Resp.ImagesOk != 0;
        if (T.ToolIdx == 0)
          CellOk[T.Cell.FlatIdx] = ImagesOk ? 1 : 0;
        if (!ImagesOk || T.ToolIdx >= ToolNames.size())
          return;
        if (!Resp.ToolOk) {
          // Same failure shape as the in-process plane: the task renders
          // as "n/a", siblings and the run keep going.
          std::fprintf(stderr,
                       "[scheduler] tool '%s' failed on %s/%s: %s\n",
                       ToolNames[T.ToolIdx].c_str(),
                       T.Cell.W->Name.c_str(),
                       obfuscationModeName(T.Cell.Mode),
                       Resp.ToolError.c_str());
          if (RunStats)
            RunStats->countToolFailure();
          return;
        }
        Fn(T, Resp);
      });

  // Deterministic post-pass, mirroring runCellToolPlane. Cache counters
  // stay zero: the artifacts live in the daemon's store, which reports
  // its own telemetry.
  if (RunStats)
    for (size_t Flat = 0; Flat != CellOk.size(); ++Flat)
      if (ownsCell(Flat))
        RunStats->countCell(!CellOk[Flat]);
  return CellOk;
}

std::vector<uint8_t> EvalScheduler::runCellToolPlane(
    const std::vector<Workload> &Workloads,
    const std::vector<ObfuscationMode> &Modes,
    const std::vector<std::string> &ToolNames,
    const std::function<void(const EvalTask &,
                             const EvalPipeline::ImageArtifact &,
                             const EvalPipeline::ImageArtifact &,
                             const DiffOutcome &)> &Fn,
    EvalRunStats *RunStats) const {
  // A misspelled tool name would silently yield an all-zero figure row;
  // fail fast against the registry instead.
  for (const std::string &Name : ToolNames) {
    if (!isDiffToolRegistered(Name)) {
      std::fprintf(stderr,
                   "EvalScheduler: unknown diffing tool '%s'\n",
                   Name.c_str());
      std::abort();
    }
  }

  ArtifactStore::Snapshot Before = Pipe->store().stats();
  std::vector<uint8_t> CellOk(Workloads.size() * Modes.size(), 0);

  // (cell × tool) tasks: the cell's image pair is built once by whichever
  // task gets there first (single-flight in the ArtifactStore) and
  // shared. The task with ToolIdx 0 records the cell's image-build
  // outcome — cells are owned whole, so it always runs in this shard, and
  // it is the cell's only writer. Each task then pulls its cached
  // DiffOutcome stage: a warm re-run (or a sibling shard on a shared
  // store) reuses results without re-running the tool — for subprocess
  // backends that means zero worker round trips.
  forEachCellTask(
      Workloads, Modes, ToolNames.empty() ? 1 : ToolNames.size(),
      [&](const EvalTask &T) {
        auto A = Pipe->baselineImage(*T.Cell.W);
        auto B = Pipe->obfuscatedImage(*T.Cell.W, T.Cell.Mode, T.Cell.Seed);
        bool ImagesOk = A->Ok && B->Ok;
        if (T.ToolIdx == 0) {
          CellOk[T.Cell.FlatIdx] = ImagesOk ? 1 : 0;
          // The ToolIdx-0 task is the cell's only writer, so the pass
          // telemetry the obfuscated image carries is folded exactly
          // once per cell; PassReport::merge is additive, so thread
          // scheduling cannot change the totals.
          if (RunStats && ImagesOk)
            RunStats->mergePasses(B->Report);
        }
        if (!ImagesOk || T.ToolIdx >= ToolNames.size())
          return;
        auto D = Pipe->diffOutcome(*T.Cell.W, T.Cell.Mode, T.Cell.Seed,
                                   ToolNames[T.ToolIdx], A, B);
        if (!D->Ok) {
          // Loud per-task failure (timeout, crashed worker): the task
          // renders as "n/a", siblings and the shard keep going.
          std::fprintf(stderr,
                       "[scheduler] tool '%s' failed on %s/%s: %s\n",
                       ToolNames[T.ToolIdx].c_str(), T.Cell.W->Name.c_str(),
                       obfuscationModeName(T.Cell.Mode), D->Error.c_str());
          if (RunStats)
            RunStats->countToolFailure();
          return;
        }
        Fn(T, *A, *B, D->Outcome);
      });

  // Deterministic post-pass: count owned cells in row-major order.
  if (RunStats) {
    for (size_t Flat = 0; Flat != CellOk.size(); ++Flat)
      if (ownsCell(Flat))
        RunStats->countCell(!CellOk[Flat]);
    RunStats->mergeCache(
        ArtifactStore::Snapshot::delta(Pipe->store().stats(), Before));
  }
  return CellOk;
}

std::vector<EvalScheduler::CellPrecision>
EvalScheduler::precisionMatrix(const std::vector<Workload> &Workloads,
                               const std::vector<ObfuscationMode> &Modes,
                               const std::vector<std::string> &ToolNames,
                               EvalRunStats *RunStats) const {
  std::vector<CellPrecision> Out(Workloads.size() * Modes.size());
  for (size_t Flat = 0; Flat != Out.size(); ++Flat) {
    if (!ownsCell(Flat))
      continue;
    Out[Flat].Ran = true;
    Out[Flat].PerTool.assign(ToolNames.size(), -1.0);
  }

  std::vector<uint8_t> CellOk =
      remote() ? remoteCellToolPlane(
                     Workloads, Modes, ToolNames,
                     [&](const EvalTask &T, const EvalResponse &Resp) {
                       Out[T.Cell.FlatIdx].PerTool[T.ToolIdx] =
                           Resp.Precision;
                     },
                     RunStats)
               : runCellToolPlane(
                     Workloads, Modes, ToolNames,
                     [&](const EvalTask &T,
                         const EvalPipeline::ImageArtifact &,
                         const EvalPipeline::ImageArtifact &,
                         const DiffOutcome &O) {
                       Out[T.Cell.FlatIdx].PerTool[T.ToolIdx] = O.Precision;
                     },
                     RunStats);

  for (size_t Flat = 0; Flat != Out.size(); ++Flat)
    if (Out[Flat].Ran)
      Out[Flat].Ok = CellOk[Flat] != 0;
  return Out;
}

std::vector<EvalScheduler::ConfoundCell>
EvalScheduler::confoundMatrix(const std::vector<Workload> &Workloads,
                              const std::vector<BuildConfig> &Configs,
                              const std::vector<ObfuscationMode> &Modes,
                              const std::vector<std::string> &ToolNames,
                              EvalRunStats *RunStats) const {
  for (const std::string &Name : ToolNames) {
    if (!isDiffToolRegistered(Name)) {
      std::fprintf(stderr, "EvalScheduler: unknown diffing tool '%s'\n",
                   Name.c_str());
      std::abort();
    }
  }

  // One cell per (workload, config, mode); the config axis is the middle
  // dimension so a workload's rows stay contiguous in figure output.
  struct CCell {
    const Workload *W;
    const BuildConfig *BC;
    ObfuscationMode Mode;
    uint64_t Seed;
    size_t FlatIdx;
  };
  const size_t NumCells = Workloads.size() * Configs.size() * Modes.size();
  std::vector<ConfoundCell> Out(NumCells);
  std::vector<CCell> Cells;
  for (size_t WI = 0; WI != Workloads.size(); ++WI)
    for (size_t CI = 0; CI != Configs.size(); ++CI)
      for (size_t MI = 0; MI != Modes.size(); ++MI) {
        size_t Flat = (WI * Configs.size() + CI) * Modes.size() + MI;
        if (!ownsCell(Flat))
          continue;
        Out[Flat].Ran = true;
        Out[Flat].PerToolPrecision.assign(ToolNames.size(), -1.0);
        Out[Flat].PerToolSimilarity.assign(ToolNames.size(), -1.0);
        // Seeds are derived from (workload, mode) alone — NOT the config
        // — so every config row diffs against the same obfuscated image,
        // which is both the experiment's point and what makes a sweep
        // over N configs build each B-side exactly once.
        Cells.push_back({&Workloads[WI], &Configs[CI], Modes[MI],
                         deriveCellSeed(Cfg.Seed, Workloads[WI].Name,
                                        Modes[MI]),
                         Flat});
      }

  const size_t NumTools = ToolNames.empty() ? 1 : ToolNames.size();
  std::vector<uint8_t> CellOk(NumCells, 0);
  ArtifactStore::Snapshot Before = Pipe->store().stats();

  runPool(Cells.size() * NumTools, [&](size_t I) {
    const CCell &C = Cells[I / NumTools];
    const size_t TI = I % NumTools;
    if (remote()) {
      std::unique_ptr<EvalClient> Client = acquireClient();
      EvalRequest Req;
      Req.Kind = EvalWireKind::DiffTask;
      Req.WorkloadName = C.W->Name;
      Req.WorkloadSource = C.W->Source;
      Req.VulnFunctions = C.W->VulnFunctions;
      Req.Mode = C.Mode;
      Req.Seed = C.Seed;
      if (TI < ToolNames.size())
        Req.Tool = ToolNames[TI];
      Req.BaselineLevel = static_cast<uint8_t>(C.BC->Level);
      Req.BaselineCodegen = C.BC->packedCodegen();
      EvalResponse Resp;
      std::string Err;
      if (!Client->call(Req, Resp, Err) || !Resp.Ok) {
        std::fprintf(stderr,
                     "EvalScheduler: evald diff request failed: %s\n",
                     Err.empty() ? Resp.Error.c_str() : Err.c_str());
        std::abort();
      }
      releaseClient(std::move(Client));
      if (TI == 0)
        CellOk[C.FlatIdx] = Resp.ImagesOk != 0 ? 1 : 0;
      if (!Resp.ImagesOk || TI >= ToolNames.size())
        return;
      if (!Resp.ToolOk) {
        std::fprintf(stderr,
                     "[scheduler] tool '%s' failed on %s/%s/%s: %s\n",
                     ToolNames[TI].c_str(), C.W->Name.c_str(),
                     C.BC->name().c_str(), obfuscationModeName(C.Mode),
                     Resp.ToolError.c_str());
        if (RunStats)
          RunStats->countToolFailure();
        return;
      }
      Out[C.FlatIdx].PerToolPrecision[TI] = Resp.Precision;
      Out[C.FlatIdx].PerToolSimilarity[TI] = Resp.Similarity;
      return;
    }
    auto A = Pipe->baselineImage(*C.W, *C.BC);
    auto B = Pipe->obfuscatedImage(*C.W, C.Mode, C.Seed);
    bool ImagesOk = A->Ok && B->Ok;
    if (TI == 0) {
      CellOk[C.FlatIdx] = ImagesOk ? 1 : 0;
      if (RunStats && ImagesOk)
        RunStats->mergePasses(B->Report);
    }
    if (!ImagesOk || TI >= ToolNames.size())
      return;
    auto D =
        Pipe->diffOutcome(*C.W, *C.BC, C.Mode, C.Seed, ToolNames[TI], A, B);
    if (!D->Ok) {
      std::fprintf(stderr, "[scheduler] tool '%s' failed on %s/%s/%s: %s\n",
                   ToolNames[TI].c_str(), C.W->Name.c_str(),
                   C.BC->name().c_str(), obfuscationModeName(C.Mode),
                   D->Error.c_str());
      if (RunStats)
        RunStats->countToolFailure();
      return;
    }
    Out[C.FlatIdx].PerToolPrecision[TI] = D->Outcome.Precision;
    Out[C.FlatIdx].PerToolSimilarity[TI] = D->Outcome.Similarity;
  });

  // Deterministic post-pass, mirroring the other planes. Remote runs keep
  // cache counters zero — the artifacts live in the daemon's store.
  if (RunStats) {
    for (size_t Flat = 0; Flat != NumCells; ++Flat)
      if (ownsCell(Flat))
        RunStats->countCell(!CellOk[Flat]);
    if (!remote())
      RunStats->mergeCache(
          ArtifactStore::Snapshot::delta(Pipe->store().stats(), Before));
  }

  for (size_t Flat = 0; Flat != NumCells; ++Flat)
    if (Out[Flat].Ran)
      Out[Flat].Ok = CellOk[Flat] != 0;
  return Out;
}

std::vector<EvalScheduler::CellRanks>
EvalScheduler::vulnRankMatrix(const std::vector<Workload> &Workloads,
                              const std::vector<ObfuscationMode> &Modes,
                              const std::vector<std::string> &ToolNames,
                              EvalRunStats *RunStats) const {
  std::vector<CellRanks> Out(Workloads.size() * Modes.size());
  for (size_t Flat = 0; Flat != Out.size(); ++Flat) {
    if (!ownsCell(Flat))
      continue;
    Out[Flat].Ran = true;
    Out[Flat].PerTool.resize(ToolNames.size());
  }

  std::vector<uint8_t> CellOk =
      remote() ? remoteCellToolPlane(
                     Workloads, Modes, ToolNames,
                     [&](const EvalTask &T, const EvalResponse &Resp) {
                       // The daemon computed trueMatchRank over the same
                       // images and raw rankings; ranks travel verbatim.
                       Out[T.Cell.FlatIdx].PerTool[T.ToolIdx] =
                           Resp.VulnRanks;
                     },
                     RunStats)
               : runCellToolPlane(
                     Workloads, Modes, ToolNames,
                     [&](const EvalTask &T,
                         const EvalPipeline::ImageArtifact &A,
                         const EvalPipeline::ImageArtifact &B,
                         const DiffOutcome &O) {
                       std::vector<uint32_t> &Ranks =
                           Out[T.Cell.FlatIdx].PerTool[T.ToolIdx];
                       Ranks.reserve(T.Cell.W->VulnFunctions.size());
                       for (const std::string &V : T.Cell.W->VulnFunctions)
                         Ranks.push_back(
                             trueMatchRank(A.Image, B.Image, O.Raw, V));
                     },
                     RunStats);

  for (size_t Flat = 0; Flat != Out.size(); ++Flat)
    if (Out[Flat].Ran)
      Out[Flat].Ok = CellOk[Flat] != 0;
  return Out;
}
