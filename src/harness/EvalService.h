//===- harness/EvalService.h - Long-lived eval/diff service -----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The khaos-evald wire protocol and its server/client endpoints: a
/// long-lived daemon serves eval/diff/fuzz-batch requests from many
/// concurrent clients against ONE shared warm EvalPipeline — the serving
/// shape where compiles, images and diff outcomes are paid once per
/// daemon (and, with a --cache-dir disk tier, once per machine) instead
/// of once per bench process.
///
/// Transport: the DiffWorkerProtocol length-prefixed frames
/// (readDiffFrame/writeDiffFrame) over a Unix-domain stream socket; each
/// connection carries a sequence of request→response round trips. Every
/// payload begins with a fixed header:
///
///   u32 magic   0x4B455631 ("KEV1" read as bytes 31 56 45 4B)
///   u16 version 3 (v2 added the baseline build config to DiffTask
///                  requests and Ping responses; v3 added the compiler
///                  style — bit 5 of the baseline codegen byte — so a v2
///                  peer, which would silently ignore the style and alias
///                  clang/gcc artifact keys, is rejected at the header)
///   u8  type    1 = request, 2 = response (ok), 3 = response (error)
///   u8  kind    EvalWireKind
///
/// Encodings use the same conventions as the diff-worker frames — fixed
/// layout per kind, no optional fields, doubles as raw IEEE-754 bit
/// patterns — so a bench running --connect produces byte-identical
/// stdout to the same bench running in-process (EvalServiceTest pins a
/// golden frame so the format cannot drift silently).
///
/// Isolation: each connection is served by its own thread; diff tools
/// keep their per-request subprocess isolation (the SubprocessDiffTool
/// pool with its timeout → SIGKILL → error-artifact machinery), so one
/// hung worker fails one request without stalling the daemon's other
/// clients. A request that fails at the eval level (tool timeout, image
/// build failure) is a normal ok-response carrying the failure; an
/// error-response is reserved for protocol-level trouble (unknown tool,
/// malformed frame, unsupported kind).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_EVALSERVICE_H
#define KHAOS_HARNESS_EVALSERVICE_H

#include "harness/Evaluator.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace khaos {

/// Protocol constants.
constexpr uint32_t EvalWireMagic = 0x4B455631; // "KEV1"
constexpr uint16_t EvalWireVersion = 3;

enum class EvalWireKind : uint8_t {
  /// Liveness + configuration probe: the response carries the daemon's
  /// engine/cache configuration so clients can refuse a daemon whose
  /// results would not be byte-identical to their in-process run.
  Ping = 1,
  /// One overhead-matrix cell: run (workload, mode, seed) and report the
  /// runtime overhead percentage.
  Overhead = 2,
  /// One (cell × tool) task: build the cell's image pair, run one
  /// registry diff tool, report precision/similarity plus the search
  /// ranks of the workload's vulnerable functions. An empty tool name
  /// builds the images only (the probe the plane's ToolIdx-0 bookkeeping
  /// uses when no tools are requested).
  DiffTask = 3,
  /// One deterministic fuzz batch: (seed, budget, engine, cross-vm) in,
  /// verdict text + counters out.
  FuzzBatch = 4,
};

enum class EvalWireType : uint8_t {
  Request = 1,
  ResponseOk = 2,
  ResponseError = 3,
};

/// One request, tagged by Kind; only the fields of that kind are
/// meaningful (all of them are always encoded for the active kind).
struct EvalRequest {
  EvalWireKind Kind = EvalWireKind::Ping;

  // Overhead + DiffTask: the cell.
  std::string WorkloadName;
  std::string WorkloadSource;
  std::vector<std::string> VulnFunctions; ///< DiffTask rank targets.
  ObfuscationMode Mode = ObfuscationMode::None;
  uint64_t Seed = 0;
  std::string Tool; ///< DiffTask registry tool ("" = images only).
  /// DiffTask baseline build config (wire form): the A-side is built at
  /// this opt level + packed codegen knobs (bit 5 carries the compiler
  /// style since v3). Defaults mirror BuildConfig{} (O2, clang-like
  /// reference codegen) so pre-confound callers are unchanged.
  uint8_t BaselineLevel = 2;     ///< static_cast<uint8_t>(OptLevel::O2).
  uint8_t BaselineCodegen = 0x1e; ///< BuildConfig{}.packedCodegen().

  // FuzzBatch.
  uint64_t FuzzSeed = 0;
  uint32_t FuzzBudget = 0;
  uint8_t FuzzEngine = 0;  ///< VMEngine for the batch.
  uint8_t FuzzCrossVM = 0;
  uint8_t FuzzVerbose = 0;
};

/// One response. Ok=false carries only Error (protocol-level failure);
/// Ok=true carries the fields of the request's kind.
struct EvalResponse {
  EvalWireKind Kind = EvalWireKind::Ping;
  bool Ok = false;
  std::string Error;

  // Ping.
  uint8_t Engine = 0;       ///< VMEngine the daemon's pipeline runs.
  uint8_t CacheEnabled = 0;
  uint8_t HasDiskTier = 0;
  uint8_t BaselineLevel = 0;   ///< Daemon default baseline opt level.
  uint8_t BaselineCodegen = 0; ///< Daemon default packed codegen knobs.

  // Overhead.
  uint8_t Measured = 0; ///< overheadPercent() succeeded.
  double Percent = 0.0;

  // DiffTask.
  uint8_t ImagesOk = 0;
  uint8_t ToolOk = 0;
  std::string ToolError;
  double Precision = 0.0;
  double Similarity = 0.0;
  std::vector<uint32_t> VulnRanks; ///< Parallel to request VulnFunctions.

  // FuzzBatch.
  uint32_t Cases = 0;
  uint32_t Cells = 0;
  uint32_t Passes = 0;
  uint32_t BaselineErrors = 0;
  uint32_t DivergenceCount = 0;
  std::string Text; ///< The batch's verdict/summary stream.
};

/// Payload builders/parsers (exposed so tests can pin golden frames).
std::vector<uint8_t> encodeEvalRequest(const EvalRequest &Req);
bool decodeEvalRequest(const std::vector<uint8_t> &Payload, EvalRequest &Req,
                       std::string &Err);
std::vector<uint8_t> encodeEvalResponse(const EvalResponse &Resp);
bool decodeEvalResponse(const std::vector<uint8_t> &Payload,
                        EvalResponse &Resp, std::string &Err);

/// Synchronous client for one daemon connection. Not thread-safe; use
/// one per thread (the EvalScheduler keeps a pool).
class EvalClient {
public:
  EvalClient() = default;
  ~EvalClient();
  EvalClient(const EvalClient &) = delete;
  EvalClient &operator=(const EvalClient &) = delete;

  /// Connects to the daemon's Unix socket.
  bool connect(const std::string &SocketPath, std::string &Err);
  void close();
  bool connected() const { return Fd >= 0; }

  /// One request→response round trip. False on transport/protocol
  /// failure (\p Err set); an application-level failure (tool timeout
  /// etc.) is an Ok response describing it.
  bool call(const EvalRequest &Req, EvalResponse &Resp, std::string &Err);

private:
  int Fd = -1;
};

/// The daemon: accepts connections on a Unix socket and serves each on
/// its own thread against one shared pipeline.
class EvalServer {
public:
  struct Config {
    std::string SocketPath;
    EvalPipeline::Config Pipeline;
  };

  explicit EvalServer(Config C);
  ~EvalServer();

  /// Binds + listens + starts the acceptor thread. False (with \p Err)
  /// when the socket cannot be bound.
  bool start(std::string &Err);

  /// Stops accepting, closes every connection and joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  EvalPipeline &pipeline() { return Pipe; }
  const std::string &socketPath() const { return Cfg.SocketPath; }
  /// Requests served so far (telemetry/test hook).
  uint64_t requestsServed() const { return Served.load(); }

private:
  void acceptLoop();
  void serveConnection(int ConnFd);
  EvalResponse handle(const EvalRequest &Req);

  Config Cfg;
  EvalPipeline Pipe;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> Served{0};
  std::thread Acceptor;
  std::mutex ConnM;
  std::vector<std::thread> ConnThreads;
  std::vector<int> ConnFds;
};

} // namespace khaos

#endif // KHAOS_HARNESS_EVALSERVICE_H
