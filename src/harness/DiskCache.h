//===- harness/DiskCache.h - On-disk artifact tier --------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed blob store backing the ArtifactStore's disk tier.
/// One artifact = one file under the cache directory, named
///
///   <stage-name>-<16 hex digits of ArtifactKey::address()>.art
///
/// Each file carries a self-validating envelope (magic, version, FNV-1a
/// checksum, the full key, then the payload), so a truncated, bit-flipped
/// or wrong-version file is detected on read, deleted, and reported as
/// Corrupt — the caller recomputes and overwrites. The full embedded key
/// also makes the (telemetry-grade) 64-bit filename address safe: a
/// colliding key reads as a plain Miss, never as someone else's bytes.
///
/// Retention is an LRU byte cap over the file sizes (Config::MaxBytes,
/// 0 = unbounded). The LRU order is process-local (seeded from file
/// mtimes at startup, refreshed on every hit); eviction unlinks files.
/// Writes are atomic: payloads land in a tmp file first and rename(2)
/// into place, so concurrent readers — including other processes sharing
/// the directory, e.g. shards on one machine — see either the old
/// complete artifact or the new one, never a torn write.
///
/// The class is a dumb byte store: (de)serialization of artifact values
/// lives with the stage codecs (harness/Evaluator.cpp), and hit/miss
/// accounting lives in the ArtifactStore that owns this tier.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_DISKCACHE_H
#define KHAOS_HARNESS_DISKCACHE_H

#include "harness/ArtifactStore.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace khaos {

/// On-disk envelope constants (pinned by DiskCacheTest).
constexpr uint32_t DiskCacheMagic = 0x4B444331; // "KDC1"
constexpr uint16_t DiskCacheVersion = 1;

/// Outcome of one disk lookup.
enum class DiskGetStatus : uint8_t {
  Hit,     ///< Payload returned, envelope fully validated.
  Miss,    ///< No file for this key (or an address-colliding other key).
  Corrupt, ///< File existed but failed validation; it has been deleted.
};

class DiskCache {
public:
  struct Config {
    /// Cache directory; created (one level) if missing.
    std::string Dir;
    /// LRU byte cap over stored file sizes; 0 = unbounded.
    uint64_t MaxBytes = 0;
  };

  /// Scans \p C.Dir and seeds the LRU index from the surviving files
  /// (oldest mtime = first eviction candidate). Leftover tmp files from a
  /// crashed writer are removed.
  explicit DiskCache(Config C);

  /// Looks up \p K. On Hit, \p Payload holds the stored bytes.
  DiskGetStatus get(const ArtifactKey &K, std::vector<uint8_t> &Payload);

  /// Stores \p Payload under \p K (overwriting any previous file at the
  /// same address), then evicts LRU files until the byte cap fits.
  /// Returns the number of files evicted. A payload whose file would
  /// alone exceed the cap is not stored (returns 0).
  unsigned put(const ArtifactKey &K, const std::vector<uint8_t> &Payload);

  /// Sum of indexed file sizes (the value MaxBytes bounds).
  uint64_t totalBytes() const;

  /// Number of indexed artifact files.
  size_t fileCount() const;

  const std::string &dir() const { return Cfg.Dir; }

private:
  struct FileInfo {
    uint64_t Bytes = 0;
    uint64_t LastUse = 0;
  };

  std::string pathFor(const ArtifactKey &K) const;
  void evictLocked(const std::string &Keep);
  void forgetLocked(const std::string &Name);

  const Config Cfg;
  mutable std::mutex M;
  /// Filename (not full path) -> size + LRU tick.
  std::map<std::string, FileInfo> Files;
  uint64_t TotalBytes = 0;
  uint64_t UseTick = 0;
  uint64_t TmpCounter = 0;
};

} // namespace khaos

#endif // KHAOS_HARNESS_DISKCACHE_H
