//===- harness/DiskCache.cpp - On-disk artifact tier ----------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/DiskCache.h"

#include "diffing/DiffWorkerProtocol.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <tuple>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace khaos;

namespace {

/// FNV-1a over a byte range — the envelope checksum. Covers everything
/// after the checksum field itself (key + payload), so any bit flip in
/// either is caught.
uint64_t fnv1a(const uint8_t *P, size_t N) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

void writeKey(WireWriter &W, const ArtifactKey &K) {
  W.str(K.Workload);
  W.u8(static_cast<uint8_t>(K.Mode));
  W.u64(K.Seed);
  W.u8(static_cast<uint8_t>(K.Stage));
  W.u64(K.Extra);
  W.u64(K.SourceHash);
}

bool readKey(WireReader &R, ArtifactKey &K) {
  K.Workload = R.str();
  K.Mode = static_cast<ObfuscationMode>(R.u8());
  K.Seed = R.u64();
  K.Stage = static_cast<ArtifactStage>(R.u8());
  K.Extra = R.u64();
  K.SourceHash = R.u64();
  return R.ok();
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    ::close(Fd);
    return false;
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Done = 0;
  while (Done != Out.size()) {
    ssize_t N = ::read(Fd, Out.data() + Done, Out.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break; // The file shrank under us; validation will reject it.
    Done += static_cast<size_t>(N);
  }
  ::close(Fd);
  Out.resize(Done);
  return true;
}

bool hasSuffix(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

DiskCache::DiskCache(Config C) : Cfg(std::move(C)) {
  // One mkdir level is enough for the common "fresh --cache-dir" case;
  // a missing parent surfaces naturally as every put failing to open its
  // tmp file (the cache then just never hits, it does not crash).
  ::mkdir(Cfg.Dir.c_str(), 0755);

  struct Seen {
    std::string Name;
    uint64_t Bytes;
    int64_t Mtime;
  };
  std::vector<Seen> Found;
  if (DIR *D = ::opendir(Cfg.Dir.c_str())) {
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      std::string Path = Cfg.Dir + "/" + Name;
      if (hasSuffix(Name, ".tmp")) {
        ::unlink(Path.c_str()); // A crashed writer's leftovers.
        continue;
      }
      if (!hasSuffix(Name, ".art"))
        continue;
      struct stat St;
      if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
        continue;
      // Nanosecond mtime: whole-second st_mtime collapses every artifact
      // a fast run writes into one tie, and the startup eviction order
      // then depends on nothing but the name — not on actual recency.
      int64_t MtimeNs = static_cast<int64_t>(St.st_mtim.tv_sec) *
                            1000000000ll +
                        static_cast<int64_t>(St.st_mtim.tv_nsec);
      Found.push_back(
          {std::move(Name), static_cast<uint64_t>(St.st_size), MtimeNs});
    }
    ::closedir(D);
  }
  // Seed the LRU order from mtimes: the stalest file on disk is the first
  // eviction candidate of this process. Ties (e.g. a filesystem that
  // truncates timestamps) break by name so the order is deterministic.
  std::sort(Found.begin(), Found.end(), [](const Seen &A, const Seen &B) {
    return std::tie(A.Mtime, A.Name) < std::tie(B.Mtime, B.Name);
  });
  for (Seen &S : Found) {
    Files[S.Name] = {S.Bytes, ++UseTick};
    TotalBytes += S.Bytes;
  }
}

std::string DiskCache::pathFor(const ArtifactKey &K) const {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(K.address()));
  return std::string(artifactStageName(K.Stage)) + "-" + Hex + ".art";
}

void DiskCache::forgetLocked(const std::string &Name) {
  auto It = Files.find(Name);
  if (It == Files.end())
    return;
  TotalBytes -= It->second.Bytes;
  Files.erase(It);
}

DiskGetStatus DiskCache::get(const ArtifactKey &K,
                             std::vector<uint8_t> &Payload) {
  std::string Name = pathFor(K);
  std::string Path = Cfg.Dir + "/" + Name;

  std::lock_guard<std::mutex> Lock(M);
  std::vector<uint8_t> Raw;
  if (!readWholeFile(Path, Raw)) {
    // Not indexed or unreadable — either way, nothing to serve. Another
    // process may have evicted a file we still index; drop it.
    forgetLocked(Name);
    return DiskGetStatus::Miss;
  }

  // Validate the envelope. Header first, then the checksum over the
  // remainder, then the full key.
  auto Reject = [&]() {
    ::unlink(Path.c_str());
    forgetLocked(Name);
    return DiskGetStatus::Corrupt;
  };
  WireReader Hdr(Raw.data(), Raw.size());
  uint32_t Magic = Hdr.u32();
  uint16_t Version = Hdr.u16();
  uint64_t Checksum = Hdr.u64();
  if (!Hdr.ok() || Magic != DiskCacheMagic || Version != DiskCacheVersion)
    return Reject();
  constexpr size_t ChecksummedOff = 4 + 2 + 8;
  if (Checksum != fnv1a(Raw.data() + ChecksummedOff,
                        Raw.size() - ChecksummedOff))
    return Reject();

  WireReader R(Raw.data() + ChecksummedOff, Raw.size() - ChecksummedOff);
  ArtifactKey Stored;
  if (!readKey(R, Stored))
    return Reject();
  if (!(Stored == K)) {
    // A valid artifact for a different key at the same 64-bit address:
    // serve nothing, keep the file (the next put for our key overwrites).
    return DiskGetStatus::Miss;
  }
  uint32_t N = R.count();
  if (!R.ok() || R.remaining() != N)
    return Reject();
  Payload.assign(Raw.end() - N, Raw.end());

  // Refresh the LRU tick; (re)index files another process wrote.
  FileInfo &FI = Files[Name];
  TotalBytes += Raw.size() - FI.Bytes;
  FI.Bytes = Raw.size();
  FI.LastUse = ++UseTick;
  return DiskGetStatus::Hit;
}

void DiskCache::evictLocked(const std::string &Keep) {
  if (Cfg.MaxBytes == 0)
    return;
  while (TotalBytes > Cfg.MaxBytes) {
    auto Victim = Files.end();
    for (auto It = Files.begin(); It != Files.end(); ++It)
      if (It->first != Keep &&
          (Victim == Files.end() ||
           It->second.LastUse < Victim->second.LastUse))
        Victim = It;
    if (Victim == Files.end())
      return; // Only the just-written file remains.
    ::unlink((Cfg.Dir + "/" + Victim->first).c_str());
    TotalBytes -= Victim->second.Bytes;
    Files.erase(Victim);
  }
}

unsigned DiskCache::put(const ArtifactKey &K,
                        const std::vector<uint8_t> &Payload) {
  WireWriter Body; // Everything the checksum covers.
  writeKey(Body, K);
  Body.u32(static_cast<uint32_t>(Payload.size()));
  Body.Buf.insert(Body.Buf.end(), Payload.begin(), Payload.end());

  WireWriter File;
  File.Buf.reserve(14 + Body.Buf.size()); // magic + version + checksum
  File.u32(DiskCacheMagic);
  File.u16(DiskCacheVersion);
  File.u64(fnv1a(Body.Buf.data(), Body.Buf.size()));
  File.Buf.insert(File.Buf.end(), Body.Buf.begin(), Body.Buf.end());

  if (Cfg.MaxBytes != 0 && File.Buf.size() > Cfg.MaxBytes)
    return 0; // Larger than the whole cache: not storable.

  std::string Name = pathFor(K);
  std::string Path = Cfg.Dir + "/" + Name;

  std::lock_guard<std::mutex> Lock(M);
  // Tmp name is unique per (process, put): concurrent writers never step
  // on each other's staging file, and rename() makes publication atomic.
  std::string Tmp = Path + "." + std::to_string(::getpid()) + "-" +
                    std::to_string(++TmpCounter) + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return 0;
  size_t Done = 0;
  bool WriteOk = true;
  while (Done != File.Buf.size()) {
    ssize_t N = ::write(Fd, File.Buf.data() + Done, File.Buf.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      WriteOk = false;
      break;
    }
    Done += static_cast<size_t>(N);
  }
  ::close(Fd);
  if (!WriteOk || ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return 0; // Disk full / permission trouble: the cache degrades to
              // a no-op rather than failing the computation.
  }

  FileInfo &FI = Files[Name];
  TotalBytes += File.Buf.size() - FI.Bytes;
  FI.Bytes = File.Buf.size();
  FI.LastUse = ++UseTick;

  size_t Before = Files.size();
  evictLocked(Name);
  return static_cast<unsigned>(Before - Files.size());
}

uint64_t DiskCache::totalBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return TotalBytes;
}

size_t DiskCache::fileCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Files.size();
}
