//===- harness/ArtifactStore.h - Content-addressed artifacts ----*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-safe, content-addressed store for evaluation-pipeline artifacts.
/// Every artifact is a pure function of its key — (workload name, mode,
/// seed, stage, options fingerprint) — so re-runs, sibling modes and
/// sibling (cell × tool) tasks can share one computation:
///
///   * the un-obfuscated baseline (and its A-side image) is built once per
///     workload and shared by all obfuscation modes,
///   * the fission-stage module is computed once and cloned by the Fission
///     and FuFi.{sep,ori,all} consumers,
///   * the five diffing tools of one cell diff the same cached image pair.
///
/// Lookups are single-flight: the first requester of a key computes the
/// artifact outside the store lock while later requesters block on a
/// shared future, so no artifact is ever computed twice — and with the
/// store disabled (--no-cache) every request computes, which keeps cached
/// and uncached runs on the same code path and byte-identical output.
///
/// Retention is bounded by an optional LRU byte cap (Config::MaxBytes,
/// default unbounded): when the per-artifact cost accounting exceeds the
/// cap, least-recently-used *completed* artifacts are dropped. In-flight
/// computations are pinned — eviction never breaks a single-flight wait —
/// and because every artifact is a pure function of its key, an evicted
/// stage transparently recomputes on the next request, so a byte-capped
/// run produces byte-identical results to an unbounded one.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_ARTIFACTSTORE_H
#define KHAOS_HARNESS_ARTIFACTSTORE_H

#include "obfuscation/KhaosDriver.h"

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <vector>

namespace khaos {

/// The pipeline stages whose outputs are worth sharing. Stage is part of
/// the artifact key, and the store keeps hit/miss counters per stage.
enum class ArtifactStage : uint8_t {
  Baseline,        ///< Compiled + optimized un-obfuscated module.
  BaselineRun,     ///< VM execution of the O2 baseline (cost/stdout/exit).
  BaselineImage,   ///< Lowered A-side BinaryImage + ImageFeatures.
  FissionStage,    ///< Post-fission module shared by Fission/FuFi modes.
  ObfuscatedImage, ///< Lowered B-side BinaryImage + ImageFeatures.
  DiffOutcome,     ///< One tool's result over a cell's image pair — the
                   ///< key subprocess backends cache under, so a warm
                   ///< re-run performs zero worker round trips.
  PrecompiledModule, ///< Bytecode lowering of the O2 baseline: decoded
                     ///< once, shared by every precompiled-engine run of
                     ///< the workload.
  NumStages,
};

/// Printable stage name for telemetry.
const char *artifactStageName(ArtifactStage Stage);

/// Identity of one artifact: the tuple the artifact is a pure function of.
/// \c Extra fingerprints stage-specific options (opt level, codegen style,
/// fission options) and \c SourceHash fingerprints the workload's MiniC
/// source, so neither incompatible configurations nor two workloads that
/// merely share a name can alias.
struct ArtifactKey {
  std::string Workload;
  ObfuscationMode Mode = ObfuscationMode::None;
  uint64_t Seed = 0;
  ArtifactStage Stage = ArtifactStage::Baseline;
  uint64_t Extra = 0;
  uint64_t SourceHash = 0;

  bool operator<(const ArtifactKey &O) const;
  bool operator==(const ArtifactKey &O) const;

  /// The content address: an FNV-1a mix of every field. Collisions are
  /// harmless for correctness (the store compares full keys); the address
  /// exists for telemetry and cross-process artifact naming.
  uint64_t address() const;
};

class DiskCache;

/// Byte-level (de)serialization of one artifact type for the disk tier.
/// Stages whose artifacts hold live LLVM-analogue state (modules,
/// contexts) have no codec and simply never persist; stages that are
/// plain data (run results, images, diff outcomes) register one in
/// Evaluator.cpp. Encode may decline (return false) — the policy hook
/// that keeps transient failures (e.g. a worker timeout's error
/// artifact) from becoming permanent on disk. Decode returns null on a
/// malformed payload; the store then counts the entry corrupt and
/// recomputes.
struct ArtifactCodec {
  std::function<bool(const void *Value, std::vector<uint8_t> &Out)> Encode;
  std::function<std::shared_ptr<const void>(const uint8_t *Data,
                                            size_t Size)>
      Decode;
};

class ArtifactStore {
public:
  struct Config {
    /// false = --no-cache: every request recomputes (counted as a miss)
    /// and the disk tier is bypassed entirely.
    bool Enabled = true;
    /// LRU byte cap over the per-artifact CostBytes accounting;
    /// 0 = unbounded (--store-max-bytes).
    uint64_t MaxBytes = 0;
    /// Disk-tier directory; empty = no disk tier (--cache-dir).
    std::string CacheDir = {};
    /// Disk-tier LRU byte cap over stored file sizes; 0 = unbounded
    /// (--disk-max-bytes).
    uint64_t DiskMaxBytes = 0;
  };

  struct StageCounters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    /// Disk-tier counters. A memory miss that loads from disk is a
    /// DiskHit (the stage's Misses still counts the memory miss, so
    /// existing memory-tier assertions keep their meaning); DiskCorrupt
    /// entries (validation failures) also count as DiskMisses since the
    /// artifact had to be recomputed.
    uint64_t DiskHits = 0;
    uint64_t DiskMisses = 0;
    uint64_t DiskEvictions = 0;
    uint64_t DiskCorrupt = 0;
  };

  /// Monotonic counter snapshot. Matrix runs diff two snapshots to report
  /// per-run telemetry while the store itself lives across runs.
  struct Snapshot {
    StageCounters PerStage[static_cast<size_t>(ArtifactStage::NumStages)];
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    /// Bytes of MiniC source whose recompilation hits avoided.
    uint64_t BytesSaved = 0;
    uint64_t DiskHits = 0;
    uint64_t DiskMisses = 0;
    uint64_t DiskEvictions = 0;
    uint64_t DiskCorrupt = 0;

    StageCounters stage(ArtifactStage S) const {
      return PerStage[static_cast<size_t>(S)];
    }
    /// Counter-wise After - Before.
    static Snapshot delta(const Snapshot &After, const Snapshot &Before);
  };

  /// A disabled store never retains anything: every request recomputes
  /// (counted as a miss), which is what --no-cache runs use.
  explicit ArtifactStore(bool Enabled = true)
      : ArtifactStore(Config{Enabled, 0, {}, 0}) {}
  explicit ArtifactStore(Config C);
  ~ArtifactStore();

  bool enabled() const { return Cfg.Enabled; }
  uint64_t maxBytes() const { return Cfg.MaxBytes; }
  /// The disk tier, if configured (test/telemetry hook).
  DiskCache *diskCache() const { return Disk.get(); }

  /// Returns the artifact for \p K, computing it with \p Compute on first
  /// request. \p CostBytes is the recompilation cost a future hit on this
  /// key avoids (by convention the workload's MiniC source size).
  ///
  /// \p Compute must be a pure function of the key; it runs outside the
  /// store lock. Failed computations are artifacts too (e.g. a
  /// CompiledWorkload carrying its frontend error), so failures are
  /// computed once like successes, never retried.
  ///
  /// When a \p Codec is given and the disk tier is configured, a memory
  /// miss first consults the disk: a validated stored payload decodes in
  /// place of \p Compute, and a computed value is written back for the
  /// next process. Without a codec the key is memory-only.
  template <typename T>
  std::shared_ptr<const T>
  getOrCompute(const ArtifactKey &K, uint64_t CostBytes,
               const std::function<std::shared_ptr<const T>()> &Compute,
               const ArtifactCodec *Codec = nullptr) {
    return std::static_pointer_cast<const T>(getOrComputeErased(
        K, CostBytes, std::type_index(typeid(T)),
        [&Compute]() -> std::shared_ptr<const void> { return Compute(); },
        Codec));
  }

  /// Current counters (cheap copy under the lock).
  Snapshot stats() const;

  /// Number of retained artifacts.
  size_t size() const;

  /// Sum of the retained (and in-flight) artifacts' CostBytes — the value
  /// the MaxBytes cap bounds.
  uint64_t totalBytes() const;

  /// True while \p K is retained (ready or in-flight). Test hook for the
  /// eviction-order assertions; racy by nature under concurrent use.
  bool contains(const ArtifactKey &K) const;

  /// Drops every artifact (counters are kept: they are monotonic).
  void clear();

private:
  std::shared_ptr<const void>
  getOrComputeErased(const ArtifactKey &K, uint64_t CostBytes,
                     std::type_index Type,
                     const std::function<std::shared_ptr<const void>()> &F,
                     const ArtifactCodec *Codec);

  /// Disk-tier lookup for a first requester (memory miss). Returns the
  /// decoded value or null, updating disk counters.
  std::shared_ptr<const void> diskLoad(const ArtifactKey &K,
                                       const ArtifactCodec *Codec);

  /// Writes a freshly computed value through to the disk tier.
  void diskStore(const ArtifactKey &K, const void *Value,
                 const ArtifactCodec *Codec);

  struct Entry {
    std::shared_future<std::shared_ptr<const void>> Value;
    std::type_index Type;
    uint64_t CostBytes = 0;
    /// LRU clock: monotonically increasing use tick, updated on every
    /// hit. Eviction drops the ready entry with the smallest tick.
    uint64_t LastUse = 0;
    /// Set once the computing thread fulfilled the future. An entry that
    /// is not ready is pinned: evicting it would break the single-flight
    /// wait of every concurrent requester.
    bool Ready = false;
  };

  /// Evicts LRU ready entries until TotalBytes fits MaxBytes (requires M
  /// held). Pinned (in-flight) entries are skipped.
  void trimLocked();

  /// Marks K ready after its compute fulfilled the future (no-op if a
  /// concurrent clear() dropped the entry), then trims.
  void markReady(const ArtifactKey &K);

  const Config Cfg;
  /// The disk tier (null without Config::CacheDir). Its I/O happens
  /// outside \c M, on the first-requester path only.
  std::unique_ptr<DiskCache> Disk;
  mutable std::mutex M;
  std::map<ArtifactKey, Entry> Artifacts;
  Snapshot Counters;
  uint64_t UseTick = 0;
  uint64_t TotalBytes = 0;
};

} // namespace khaos

#endif // KHAOS_HARNESS_ARTIFACTSTORE_H
