//===- harness/Evaluator.h - Staged evaluation pipeline ---------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pipeline shared by all benchmarks, as a stage graph over
/// a content-addressed ArtifactStore:
///
///   MiniC source ──► Baseline ──► BaselineRun        (VM cost reference)
///                       │
///                       └───────► BaselineImage ──┐  (A-side of a diff)
///   MiniC source ──► FissionStage ─ clone ─┐      │
///                                          ▼      ▼
///                    Obfuscated ──► ObfuscatedImage ──► diff tools
///
/// Every boxed stage is cached in the ArtifactStore keyed on
/// (workload, mode, seed, stage): the baseline (and its A-side image) is
/// built once per workload and shared by every obfuscation mode, and the
/// FuFi modes clone the cached fission-stage module instead of re-running
/// the whole fission prefix. Cached and uncached runs execute the same
/// code path — a disabled store recomputes per request — so results are
/// bit-identical with the cache on or off. The default baseline
/// configuration matches the paper — O2 with whole-program (LTO-style)
/// visibility — but the baseline build config (opt level + codegen style)
/// is a first-class axis: every baseline-derived stage is keyed per
/// config, so one pipeline serves O0 and O2 cells side by side without
/// the keys aliasing (the confound experiments depend on it).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_EVALUATOR_H
#define KHAOS_HARNESS_EVALUATOR_H

#include "codegen/ISel.h"
#include "diffing/DiffTool.h"
#include "harness/ArtifactStore.h"
#include "harness/BuildConfig.h"
#include "ir/Module.h"
#include "obfuscation/KhaosDriver.h"
#include "vm/Bytecode.h"
#include "vm/Interpreter.h"
#include "workloads/Suites.h"

#include <memory>
#include <mutex>
#include <string>

namespace khaos {

/// A compiled workload owns its Module. The Context is shared: a module
/// cloned from a cached fission-stage artifact lives in the artifact's
/// Context (type interning is mutex-guarded, see ir/Type.h), and keeping a
/// reference here makes the artifact's lifetime a non-issue for callers.
struct CompiledWorkload {
  std::shared_ptr<Context> Ctx;
  std::unique_ptr<Module> M;
  std::string Error;

  explicit operator bool() const { return M != nullptr; }
};

/// A/B images for the diffing experiments: A is the un-obfuscated
/// (un-stripped) reference, B the obfuscated build.
struct DiffImages {
  BinaryImage A, B;
  ImageFeatures FA, FB;
  bool Ok = false;
};

/// Precision@1 (relaxed pairing judgment) and whole-binary similarity of
/// one tool run.
struct DiffOutcome {
  double Precision = 0.0;
  double Similarity = 0.0;
  DiffResult Raw;
};

/// The staged evaluation pipeline. One instance serves any number of
/// threads: every stage entry point consults the ArtifactStore first, and
/// computations are single-flight, so concurrent (cell × tool) tasks that
/// need the same artifact share one computation.
class EvalPipeline {
public:
  struct Config {
    /// false = --no-cache: every request recomputes (same code path, same
    /// results; the store only stops retaining).
    bool CacheEnabled = true;
    /// LRU byte cap on the ArtifactStore (0 = unbounded,
    /// --store-max-bytes): full-suite sharded runs bound their memory,
    /// evicted stages transparently recompute.
    uint64_t StoreMaxBytes = 0;
    /// Which VM engine executes programs (--vm). Part of the BaselineRun
    /// artifact key, so one pipeline can serve A/B comparisons.
    VMEngine Engine = VMEngine::Precompiled;
    /// Persistent disk tier under this directory (--cache-dir); empty =
    /// memory-only. Stages that are plain data (BaselineRun, the two
    /// image stages, DiffOutcome) survive process restarts; module-
    /// holding stages stay memory-only.
    std::string CacheDir = {};
    /// Disk-tier byte cap (--disk-max-bytes); 0 = unbounded.
    uint64_t DiskMaxBytes = 0;
    /// The pipeline's default baseline build configuration
    /// (--baseline-opt / --codegen). Stage entry points that take no
    /// explicit config build against this one; explicit-config variants
    /// exist for callers sweeping the axis (confoundMatrix, BinTuner).
    BuildConfig Baseline = {};
  };

  explicit EvalPipeline(Config C)
      : Cfg(C), Store(ArtifactStore::Config{C.CacheEnabled, C.StoreMaxBytes,
                                            C.CacheDir, C.DiskMaxBytes}) {}
  EvalPipeline() : EvalPipeline(Config{}) {}

  const Config &config() const { return Cfg; }

  //===--------------------------------------------------------------------===//
  // Cached stages. Artifacts are shared and immutable.
  //===--------------------------------------------------------------------===//

  /// Stage Baseline: compile \p W and optimize at \p Level, no
  /// obfuscation. Keyed per level; the no-argument form builds at the
  /// pipeline's configured baseline level.
  std::shared_ptr<const CompiledWorkload> baseline(const Workload &W);
  std::shared_ptr<const CompiledWorkload> baseline(const Workload &W,
                                                   OptLevel Level);

  /// Stage BaselineRun: VM execution of the baseline at \p Level (the
  /// overhead denominator). Ok requires a clean run with a nonzero cost.
  /// Keyed per (level, engine); the no-argument form runs the pipeline's
  /// configured baseline level.
  struct BaselineRunArtifact {
    bool Ok = false;
    ExecResult Run;
  };
  std::shared_ptr<const BaselineRunArtifact> baselineRun(const Workload &W);
  std::shared_ptr<const BaselineRunArtifact> baselineRun(const Workload &W,
                                                         OptLevel Level);

  /// Stage PrecompiledModule: the baseline at \p Level lowered to
  /// bytecode. Decoding happens once per (workload, level); every
  /// precompiled-engine run (BaselineRun, repeated bench iterations) then
  /// starts from the cached BytecodeModule. The artifact pins the
  /// Baseline artifact it points into.
  struct PrecompiledArtifact {
    bool Ok = false;
    std::shared_ptr<const CompiledWorkload> Base; ///< Keeps BM's module alive.
    BytecodeModule BM;
  };
  std::shared_ptr<const PrecompiledArtifact>
  precompiledBaseline(const Workload &W);
  std::shared_ptr<const PrecompiledArtifact>
  precompiledBaseline(const Workload &W, OptLevel Level);

  /// Stage BaselineImage: the A-side binary + features under build config
  /// \p BC (the confound axis sweeps these; fig9 diffs reference builds
  /// at O0..O3). Keyed on the config fingerprint — O0 and O2 baselines
  /// never alias, in memory or in the disk tier.
  struct ImageArtifact {
    bool Ok = false;
    BinaryImage Image;
    ImageFeatures Features;
    /// Per-pass transformation counts from the obfuscation that produced
    /// this image (empty for baseline images). Carried inside the
    /// artifact — and its on-disk encoding — so schedulers that only ever
    /// see cached images still aggregate pass telemetry.
    PassReport Report;
  };
  std::shared_ptr<const ImageArtifact> baselineImage(const Workload &W);
  std::shared_ptr<const ImageArtifact>
  baselineImage(const Workload &W, const BuildConfig &BC);

  /// Stage FissionStage: compile + fission prefix, shared by the Fission
  /// and FuFi.{sep,ori,all} modes (fission takes no seed, so the stage is
  /// keyed on the workload and the fission options alone). Consumers clone
  /// the module — never mutate it.
  struct FissionArtifact {
    bool Ok = false;          ///< false = frontend failure (see Error).
    std::string Error;
    std::shared_ptr<Context> Ctx;
    std::unique_ptr<Module> M;
    FissionPhase Phase;
    /// cloneModule transiently touches M's use lists; concurrent consumers
    /// (one per FuFi cell) must hold this while cloning.
    mutable std::mutex CloneMutex;
  };
  std::shared_ptr<const FissionArtifact>
  fissionStage(const Workload &W, const FissionOptions &Opts = {});

  /// Stage ObfuscatedImage: the B-side binary + features of
  /// (workload, mode, seed).
  std::shared_ptr<const ImageArtifact>
  obfuscatedImage(const Workload &W, ObfuscationMode Mode,
                  uint64_t Seed = 0xc906);

  /// Stage DiffOutcome: one registry tool's DiffOutcome over the cell's
  /// cached image pair, keyed on (workload, mode, seed, tool name,
  /// baseline build config). This is the stage that makes out-of-process
  /// backends cheap to re-run: a warm re-run hits here and performs zero
  /// worker round trips. A tool that throws DiffToolError (worker
  /// timeout/crash) yields Ok = false with the message — failures are
  /// artifacts too, computed once.
  struct DiffArtifact {
    bool Ok = false;      ///< Tool ran to completion.
    std::string Error;    ///< DiffToolError message when !Ok.
    DiffOutcome Outcome;
  };
  std::shared_ptr<const DiffArtifact>
  diffOutcome(const Workload &W, ObfuscationMode Mode, uint64_t Seed,
              const std::string &ToolName);

  /// Variant for callers that already hold the cell's image artifacts
  /// (the scheduler's task plane): skips the stage re-fetch, which with
  /// the store disabled (--no-cache) would recompile the pair a second
  /// time. \p A and \p B must be the stages of (W, config) and
  /// (W, Mode, Seed); the config-free form keys against the pipeline's
  /// configured baseline.
  std::shared_ptr<const DiffArtifact>
  diffOutcome(const Workload &W, ObfuscationMode Mode, uint64_t Seed,
              const std::string &ToolName,
              const std::shared_ptr<const ImageArtifact> &A,
              const std::shared_ptr<const ImageArtifact> &B);
  std::shared_ptr<const DiffArtifact>
  diffOutcome(const Workload &W, const BuildConfig &BC, ObfuscationMode Mode,
              uint64_t Seed, const std::string &ToolName,
              const std::shared_ptr<const ImageArtifact> &A,
              const std::shared_ptr<const ImageArtifact> &B);

  //===--------------------------------------------------------------------===//
  // Uncached products built from the stages.
  //===--------------------------------------------------------------------===//

  /// Compiles \p W and applies \p Mode (obfuscate, then O2 per the paper).
  /// Fission modes clone the cached FissionStage artifact and run only the
  /// fusion suffix. The returned module is private to the caller.
  CompiledWorkload obfuscate(const Workload &W, ObfuscationMode Mode,
                             ObfuscationResult *StatsOut = nullptr,
                             uint64_t Seed = 0xc906);

  /// Variant with full driver options (Opts.Seed is honored; Table 2 sets
  /// RunPostOpt=false to measure the primitives themselves).
  CompiledWorkload obfuscate(const Workload &W, ObfuscationMode Mode,
                             const KhaosOptions &Opts,
                             ObfuscationResult *StatsOut = nullptr);

  /// The A/B image pair of (workload, mode, seed), composed by value from
  /// the BaselineImage and ObfuscatedImage stages.
  DiffImages diffImages(const Workload &W, ObfuscationMode Mode,
                        uint64_t Seed = 0xc906);

  /// Runtime overhead of \p Mode on \p W in percent (VM dynamic cost ratio
  /// against the cached baseline run). Returns false on any
  /// execution/verification failure.
  bool overheadPercent(const Workload &W, ObfuscationMode Mode,
                       double &OverheadOut, uint64_t Seed = 0xc906);

  /// Runs \p Tool over prebuilt images. Pure; needs no store access.
  DiffOutcome runDiffTool(const DiffTool &Tool, const DiffImages &Imgs) const;
  DiffOutcome runDiffTool(const DiffTool &Tool, const BinaryImage &A,
                          const ImageFeatures &FA, const BinaryImage &B,
                          const ImageFeatures &FB) const;

  /// The store, for telemetry (hit/miss/bytes-saved counters per stage).
  ArtifactStore &store() { return Store; }
  const ArtifactStore &store() const { return Store; }

private:
  Config Cfg;
  ArtifactStore Store;
};

} // namespace khaos

#endif // KHAOS_HARNESS_EVALUATOR_H
