//===- harness/Evaluator.h - Evaluation pipeline ----------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end pipeline shared by all benchmarks: MiniC source -> KIR ->
/// (obfuscation) -> O2 optimization -> VM cost measurement and/or binary
/// lowering -> diffing. The baseline configuration matches the paper: O2
/// with whole-program (LTO-style) visibility.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_EVALUATOR_H
#define KHAOS_HARNESS_EVALUATOR_H

#include "codegen/ISel.h"
#include "ir/Module.h"
#include "diffing/DiffTool.h"
#include "obfuscation/KhaosDriver.h"
#include "vm/Interpreter.h"
#include "workloads/Suites.h"

#include <memory>
#include <string>

namespace khaos {

/// A compiled workload owns its Context + Module.
struct CompiledWorkload {
  std::unique_ptr<Context> Ctx;
  std::unique_ptr<Module> M;
  std::string Error;

  explicit operator bool() const { return M != nullptr; }
};

/// Compiles \p W and optimizes at \p Level (no obfuscation).
CompiledWorkload compileBaseline(const Workload &W,
                                 OptLevel Level = OptLevel::O2);

/// Compiles \p W and applies \p Mode (obfuscate, then O2 per the paper).
CompiledWorkload compileObfuscated(const Workload &W, ObfuscationMode Mode,
                                   ObfuscationResult *StatsOut = nullptr,
                                   uint64_t Seed = 0xc906);

/// Variant with full driver options (Opts.Seed is honored; Table 2 sets
/// RunPostOpt=false to measure the primitives themselves).
CompiledWorkload compileObfuscated(const Workload &W, ObfuscationMode Mode,
                                   const KhaosOptions &Opts,
                                   ObfuscationResult *StatsOut = nullptr);

/// Runtime overhead of \p Mode on \p W in percent (VM dynamic cost ratio).
/// Returns false on any execution/verification failure.
bool measureOverheadPercent(const Workload &W, ObfuscationMode Mode,
                            double &OverheadOut, uint64_t Seed = 0xc906);

/// A/B images for the diffing experiments: A is the un-obfuscated
/// (un-stripped) reference, B the obfuscated build.
struct DiffImages {
  BinaryImage A, B;
  ImageFeatures FA, FB;
  bool Ok = false;
};

/// Builds the image pair for (workload, mode).
DiffImages buildDiffImages(const Workload &W, ObfuscationMode Mode,
                           uint64_t Seed = 0xc906);

/// Runs \p Tool over prebuilt images; returns Precision@1 (relaxed
/// pairing judgment) and the whole-binary similarity.
struct DiffOutcome {
  double Precision = 0.0;
  double Similarity = 0.0;
  DiffResult Raw;
};
DiffOutcome runDiffTool(const DiffTool &Tool, const DiffImages &Imgs);

} // namespace khaos

#endif // KHAOS_HARNESS_EVALUATOR_H
