//===- harness/TableRenderer.cpp - Fixed-width table output ----------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/TableRenderer.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace khaos;

TableRenderer::TableRenderer(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TableRenderer::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TableRenderer::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size() && C != Widths.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (size_t C = 0; C != Widths.size(); ++C) {
      std::string Cell = C < Cells.size() ? Cells[C] : "";
      Line += " " + Cell + std::string(Widths[C] - Cell.size(), ' ') + " |";
    }
    return Line + "\n";
  };

  std::string Out = RenderRow(Headers);
  std::string Sep = "|";
  for (size_t C = 0; C != Widths.size(); ++C)
    Sep += std::string(Widths[C] + 2, '-') + "|";
  Out += Sep + "\n";
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

void TableRenderer::print() const {
  std::fputs(render().c_str(), stdout);
}

std::string TableRenderer::fmtPercent(double V) {
  return formatStr("%.1f%%", V);
}

std::string TableRenderer::fmtRatio(double V) {
  return formatStr("%.3f", V);
}
