//===- harness/TableRenderer.h - Fixed-width table output -------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fixed-width table printer used by the bench binaries to emit
/// the paper's tables and figure data series.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_HARNESS_TABLERENDERER_H
#define KHAOS_HARNESS_TABLERENDERER_H

#include <string>
#include <vector>

namespace khaos {

/// Collects rows and prints them with aligned columns.
class TableRenderer {
public:
  explicit TableRenderer(std::vector<std::string> Headers);

  void addRow(std::vector<std::string> Cells);
  /// Renders to a string (also convenient for tests).
  std::string render() const;
  /// Prints to stdout.
  void print() const;

  static std::string fmtPercent(double V);
  static std::string fmtRatio(double V);

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace khaos

#endif // KHAOS_HARNESS_TABLERENDERER_H
