//===- harness/EvalService.cpp - Long-lived eval/diff service -------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "harness/EvalService.h"

#include "diffing/DiffWorkerProtocol.h"
#include "diffing/Metrics.h"
#include "harness/DifferentialFuzzer.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace khaos;

namespace {

/// A dying client connection must never kill the daemon with SIGPIPE;
/// writeDiffFrame turns EPIPE into a clean Eof instead.
void ignoreSigpipeOnce() {
  static bool Done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)Done;
}

void writeHeader(WireWriter &W, EvalWireType Type, EvalWireKind Kind) {
  W.u32(EvalWireMagic);
  W.u16(EvalWireVersion);
  W.u8(static_cast<uint8_t>(Type));
  W.u8(static_cast<uint8_t>(Kind));
}

/// Checks magic + version; returns false with \p Err on mismatch.
bool readHeader(WireReader &R, uint8_t &Type, uint8_t &Kind,
                std::string &Err) {
  uint32_t Magic = R.u32();
  uint16_t Version = R.u16();
  Type = R.u8();
  Kind = R.u8();
  if (!R.ok()) {
    Err = "truncated frame header";
    return false;
  }
  if (Magic != EvalWireMagic) {
    Err = "bad frame magic";
    return false;
  }
  if (Version != EvalWireVersion) {
    Err = "unsupported protocol version " + std::to_string(Version);
    return false;
  }
  return true;
}

void writeStrVec(WireWriter &W, const std::vector<std::string> &V) {
  W.vec(V, [&](const std::string &S) { W.str(S); });
}

bool readStrVec(WireReader &R, std::vector<std::string> &V) {
  uint32_t N = R.count();
  V.resize(N);
  for (uint32_t I = 0; I != N && R.ok(); ++I)
    V[I] = R.str();
  return R.ok();
}

} // namespace

std::vector<uint8_t> khaos::encodeEvalRequest(const EvalRequest &Req) {
  WireWriter W;
  writeHeader(W, EvalWireType::Request, Req.Kind);
  switch (Req.Kind) {
  case EvalWireKind::Ping:
    break;
  case EvalWireKind::Overhead:
    W.str(Req.WorkloadName);
    W.str(Req.WorkloadSource);
    W.u8(static_cast<uint8_t>(Req.Mode));
    W.u64(Req.Seed);
    break;
  case EvalWireKind::DiffTask:
    W.str(Req.WorkloadName);
    W.str(Req.WorkloadSource);
    writeStrVec(W, Req.VulnFunctions);
    W.u8(static_cast<uint8_t>(Req.Mode));
    W.u64(Req.Seed);
    W.str(Req.Tool);
    W.u8(Req.BaselineLevel);
    W.u8(Req.BaselineCodegen);
    break;
  case EvalWireKind::FuzzBatch:
    W.u64(Req.FuzzSeed);
    W.u32(Req.FuzzBudget);
    W.u8(Req.FuzzEngine);
    W.u8(Req.FuzzCrossVM);
    W.u8(Req.FuzzVerbose);
    break;
  }
  return std::move(W.Buf);
}

bool khaos::decodeEvalRequest(const std::vector<uint8_t> &Payload,
                              EvalRequest &Req, std::string &Err) {
  WireReader R(Payload.data(), Payload.size());
  uint8_t Type = 0, Kind = 0;
  if (!readHeader(R, Type, Kind, Err))
    return false;
  if (Type != static_cast<uint8_t>(EvalWireType::Request)) {
    Err = "expected a request frame";
    return false;
  }
  Req.Kind = static_cast<EvalWireKind>(Kind);
  switch (Req.Kind) {
  case EvalWireKind::Ping:
    break;
  case EvalWireKind::Overhead:
    Req.WorkloadName = R.str();
    Req.WorkloadSource = R.str();
    Req.Mode = static_cast<ObfuscationMode>(R.u8());
    Req.Seed = R.u64();
    break;
  case EvalWireKind::DiffTask:
    Req.WorkloadName = R.str();
    Req.WorkloadSource = R.str();
    readStrVec(R, Req.VulnFunctions);
    Req.Mode = static_cast<ObfuscationMode>(R.u8());
    Req.Seed = R.u64();
    Req.Tool = R.str();
    Req.BaselineLevel = R.u8();
    Req.BaselineCodegen = R.u8();
    break;
  case EvalWireKind::FuzzBatch:
    Req.FuzzSeed = R.u64();
    Req.FuzzBudget = R.u32();
    Req.FuzzEngine = R.u8();
    Req.FuzzCrossVM = R.u8();
    Req.FuzzVerbose = R.u8();
    break;
  default:
    Err = "unknown request kind " + std::to_string(Kind);
    return false;
  }
  if (!R.ok()) {
    Err = "truncated request body";
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing bytes after request body";
    return false;
  }
  return true;
}

std::vector<uint8_t> khaos::encodeEvalResponse(const EvalResponse &Resp) {
  WireWriter W;
  if (!Resp.Ok) {
    writeHeader(W, EvalWireType::ResponseError, Resp.Kind);
    W.str(Resp.Error);
    return std::move(W.Buf);
  }
  writeHeader(W, EvalWireType::ResponseOk, Resp.Kind);
  switch (Resp.Kind) {
  case EvalWireKind::Ping:
    W.u8(Resp.Engine);
    W.u8(Resp.CacheEnabled);
    W.u8(Resp.HasDiskTier);
    W.u8(Resp.BaselineLevel);
    W.u8(Resp.BaselineCodegen);
    break;
  case EvalWireKind::Overhead:
    W.u8(Resp.Measured);
    W.f64(Resp.Percent);
    break;
  case EvalWireKind::DiffTask:
    W.u8(Resp.ImagesOk);
    W.u8(Resp.ToolOk);
    W.str(Resp.ToolError);
    W.f64(Resp.Precision);
    W.f64(Resp.Similarity);
    W.vec(Resp.VulnRanks, [&](uint32_t V) { W.u32(V); });
    break;
  case EvalWireKind::FuzzBatch:
    W.u32(Resp.Cases);
    W.u32(Resp.Cells);
    W.u32(Resp.Passes);
    W.u32(Resp.BaselineErrors);
    W.u32(Resp.DivergenceCount);
    W.str(Resp.Text);
    break;
  }
  return std::move(W.Buf);
}

bool khaos::decodeEvalResponse(const std::vector<uint8_t> &Payload,
                               EvalResponse &Resp, std::string &Err) {
  WireReader R(Payload.data(), Payload.size());
  uint8_t Type = 0, Kind = 0;
  if (!readHeader(R, Type, Kind, Err))
    return false;
  Resp.Kind = static_cast<EvalWireKind>(Kind);
  if (Type == static_cast<uint8_t>(EvalWireType::ResponseError)) {
    Resp.Ok = false;
    Resp.Error = R.str();
    if (!R.ok() || !R.atEnd()) {
      Err = "malformed error response";
      return false;
    }
    return true;
  }
  if (Type != static_cast<uint8_t>(EvalWireType::ResponseOk)) {
    Err = "expected a response frame";
    return false;
  }
  Resp.Ok = true;
  switch (Resp.Kind) {
  case EvalWireKind::Ping:
    Resp.Engine = R.u8();
    Resp.CacheEnabled = R.u8();
    Resp.HasDiskTier = R.u8();
    Resp.BaselineLevel = R.u8();
    Resp.BaselineCodegen = R.u8();
    break;
  case EvalWireKind::Overhead:
    Resp.Measured = R.u8();
    Resp.Percent = R.f64();
    break;
  case EvalWireKind::DiffTask: {
    Resp.ImagesOk = R.u8();
    Resp.ToolOk = R.u8();
    Resp.ToolError = R.str();
    Resp.Precision = R.f64();
    Resp.Similarity = R.f64();
    uint32_t N = R.count();
    Resp.VulnRanks.resize(N);
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Resp.VulnRanks[I] = R.u32();
    break;
  }
  case EvalWireKind::FuzzBatch:
    Resp.Cases = R.u32();
    Resp.Cells = R.u32();
    Resp.Passes = R.u32();
    Resp.BaselineErrors = R.u32();
    Resp.DivergenceCount = R.u32();
    Resp.Text = R.str();
    break;
  default:
    Err = "unknown response kind " + std::to_string(Kind);
    return false;
  }
  if (!R.ok()) {
    Err = "truncated response body";
    return false;
  }
  if (!R.atEnd()) {
    Err = "trailing bytes after response body";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Client.
//===----------------------------------------------------------------------===//

EvalClient::~EvalClient() { close(); }

bool EvalClient::connect(const std::string &SocketPath, std::string &Err) {
  ignoreSigpipeOnce();
  close();
  if (SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Err = "socket path too long";
    return false;
  }
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect " + SocketPath + ": " + std::strerror(errno);
    ::close(S);
    return false;
  }
  Fd = S;
  return true;
}

void EvalClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool EvalClient::call(const EvalRequest &Req, EvalResponse &Resp,
                      std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::vector<uint8_t> Payload = encodeEvalRequest(Req);
  FrameIOResult W = writeDiffFrame(Fd, Payload, /*TimeoutMs=*/-1, Err);
  if (W != FrameIOResult::Ok) {
    if (Err.empty())
      Err = std::string("send failed: ") + frameIOResultName(W);
    return false;
  }
  std::vector<uint8_t> RespPayload;
  FrameIOResult R = readDiffFrame(Fd, RespPayload, /*TimeoutMs=*/-1, Err);
  if (R != FrameIOResult::Ok) {
    if (Err.empty())
      Err = std::string("receive failed: ") + frameIOResultName(R);
    return false;
  }
  return decodeEvalResponse(RespPayload, Resp, Err);
}

//===----------------------------------------------------------------------===//
// Server.
//===----------------------------------------------------------------------===//

EvalServer::EvalServer(Config C)
    : Cfg(std::move(C)), Pipe(Cfg.Pipeline) {}

EvalServer::~EvalServer() { stop(); }

bool EvalServer::start(std::string &Err) {
  ignoreSigpipeOnce();
  if (Cfg.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Err = "socket path too long";
    return false;
  }
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A previous daemon's socket file would make bind fail; the path is
  // ours by contract, so replace it.
  ::unlink(Cfg.SocketPath.c_str());
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Cfg.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "bind " + Cfg.SocketPath + ": " + std::strerror(errno);
    ::close(S);
    return false;
  }
  if (::listen(S, 64) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(S);
    ::unlink(Cfg.SocketPath.c_str());
    return false;
  }
  ListenFd = S;
  Stopping.store(false);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void EvalServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true);
  // Closing the listen socket pops the acceptor out of accept(); closing
  // the connection sockets pops every serving thread out of its read.
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  ListenFd = -1;
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnM);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(ConnM);
    for (int Fd : ConnFds)
      ::close(Fd);
    ConnFds.clear();
  }
  ::unlink(Cfg.SocketPath.c_str());
}

void EvalServer::acceptLoop() {
  for (;;) {
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      return; // stop() closed the listen socket (or it failed hard).
    }
    if (Stopping.load()) {
      ::close(Conn);
      return;
    }
    std::lock_guard<std::mutex> Lock(ConnM);
    ConnFds.push_back(Conn);
    ConnThreads.emplace_back([this, Conn] { serveConnection(Conn); });
  }
}

void EvalServer::serveConnection(int ConnFd) {
  for (;;) {
    std::vector<uint8_t> Payload;
    std::string Err;
    FrameIOResult R = readDiffFrame(ConnFd, Payload, /*TimeoutMs=*/-1, Err);
    if (R != FrameIOResult::Ok)
      return; // Client closed (Eof), stop() shut us down, or desync.

    EvalRequest Req;
    EvalResponse Resp;
    if (!decodeEvalRequest(Payload, Req, Err)) {
      Resp.Ok = false;
      Resp.Error = "malformed request: " + Err;
    } else {
      Resp = handle(Req);
    }
    Served.fetch_add(1);
    std::vector<uint8_t> Out = encodeEvalResponse(Resp);
    if (writeDiffFrame(ConnFd, Out, /*TimeoutMs=*/-1, Err) !=
        FrameIOResult::Ok)
      return;
  }
}

EvalResponse EvalServer::handle(const EvalRequest &Req) {
  EvalResponse Resp;
  Resp.Kind = Req.Kind;
  try {
    switch (Req.Kind) {
    case EvalWireKind::Ping: {
      Resp.Ok = true;
      Resp.Engine = static_cast<uint8_t>(Pipe.config().Engine);
      Resp.CacheEnabled = Pipe.config().CacheEnabled ? 1 : 0;
      Resp.HasDiskTier = Pipe.config().CacheDir.empty() ? 0 : 1;
      Resp.BaselineLevel =
          static_cast<uint8_t>(Pipe.config().Baseline.Level);
      Resp.BaselineCodegen = Pipe.config().Baseline.packedCodegen();
      return Resp;
    }
    case EvalWireKind::Overhead: {
      Workload W;
      W.Name = Req.WorkloadName;
      W.Source = Req.WorkloadSource;
      double Pct = 0.0;
      bool Ok = Pipe.overheadPercent(W, Req.Mode, Pct, Req.Seed);
      Resp.Ok = true;
      Resp.Measured = Ok ? 1 : 0;
      Resp.Percent = Ok ? Pct : 0.0;
      return Resp;
    }
    case EvalWireKind::DiffTask: {
      if (!Req.Tool.empty() && !isDiffToolRegistered(Req.Tool)) {
        // Protocol-level: the client validates against the same registry
        // before sending, so a mismatch means version skew, and silently
        // rendering an all-n/a row would hide it.
        Resp.Ok = false;
        Resp.Error = "unknown diffing tool '" + Req.Tool + "'";
        return Resp;
      }
      Workload W;
      W.Name = Req.WorkloadName;
      W.Source = Req.WorkloadSource;
      W.VulnFunctions = Req.VulnFunctions;
      // The request carries its cell's baseline build config explicitly,
      // so one daemon serves a confound sweep over many configs; the
      // artifact keys never alias across configs.
      BuildConfig BC;
      BC.Level = static_cast<OptLevel>(Req.BaselineLevel);
      BC.Codegen = BuildConfig::unpackCodegen(Req.BaselineCodegen);
      auto A = Pipe.baselineImage(W, BC);
      auto B = Pipe.obfuscatedImage(W, Req.Mode, Req.Seed);
      Resp.Ok = true;
      Resp.ImagesOk = (A->Ok && B->Ok) ? 1 : 0;
      if (!Resp.ImagesOk || Req.Tool.empty())
        return Resp;
      auto D = Pipe.diffOutcome(W, BC, Req.Mode, Req.Seed, Req.Tool, A, B);
      Resp.ToolOk = D->Ok ? 1 : 0;
      if (!D->Ok) {
        Resp.ToolError = D->Error;
        return Resp;
      }
      Resp.Precision = D->Outcome.Precision;
      Resp.Similarity = D->Outcome.Similarity;
      Resp.VulnRanks.reserve(W.VulnFunctions.size());
      for (const std::string &V : W.VulnFunctions)
        Resp.VulnRanks.push_back(
            trueMatchRank(A->Image, B->Image, D->Outcome.Raw, V));
      return Resp;
    }
    case EvalWireKind::FuzzBatch: {
      std::ostringstream Text;
      DifferentialFuzzer::Config FC;
      FC.Seed = Req.FuzzSeed;
      FC.Budget = Req.FuzzBudget;
      FC.Engine = static_cast<VMEngine>(Req.FuzzEngine);
      FC.CrossVM = Req.FuzzCrossVM != 0;
      FC.Verbose = Req.FuzzVerbose != 0;
      FC.Out = &Text;
      DifferentialFuzzer Fuzzer(FC);
      FuzzReport Report = Fuzzer.run();
      Resp.Ok = true;
      Resp.Cases = Report.Cases;
      Resp.Cells = Report.Cells;
      Resp.Passes = Report.Passes;
      Resp.BaselineErrors = Report.BaselineErrors;
      Resp.DivergenceCount =
          static_cast<uint32_t>(Report.Divergences.size());
      Resp.Text = Text.str();
      return Resp;
    }
    }
    Resp.Ok = false;
    Resp.Error =
        "unsupported request kind " +
        std::to_string(static_cast<unsigned>(Req.Kind));
  } catch (const std::exception &E) {
    // No request may take the daemon down; the failure travels back to
    // the one client that asked.
    Resp.Ok = false;
    Resp.Error = std::string("server exception: ") + E.what();
  }
  return Resp;
}
