//===- transform/ConstantFold.cpp - Constant folding ---------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds binops/compares/casts/selects whose operands are constants. This
/// is the pass that erases O-LLVM's instruction substitution at -O3 (the
/// paper's §5 observation) and cleans up after fission/fusion rewiring.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "transform/Pass.h"

using namespace khaos;

namespace {

class ConstantFoldPass : public Pass {
public:
  const char *getName() const override { return "constfold"; }
  bool run(Module &M) override;

private:
  Constant *foldInstruction(Module &M, Instruction *I);
  Constant *foldBinOp(Module &M, BinaryInst *B, ConstantInt *L,
                      ConstantInt *R);
};

} // namespace

Constant *ConstantFoldPass::foldBinOp(Module &M, BinaryInst *B,
                                      ConstantInt *L, ConstantInt *R) {
  int64_t A = L->getValue(), C = R->getValue(), Out;
  switch (B->getBinOp()) {
  case BinOp::Add:
    Out = A + C;
    break;
  case BinOp::Sub:
    Out = A - C;
    break;
  case BinOp::Mul:
    Out = A * C;
    break;
  case BinOp::SDiv:
    if (C == 0 || (A == INT64_MIN && C == -1))
      return nullptr; // Preserve the trap.
    Out = A / C;
    break;
  case BinOp::SRem:
    if (C == 0 || (A == INT64_MIN && C == -1))
      return nullptr;
    Out = A % C;
    break;
  case BinOp::And:
    Out = A & C;
    break;
  case BinOp::Or:
    Out = A | C;
    break;
  case BinOp::Xor:
    Out = A ^ C;
    break;
  case BinOp::Shl:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A) << (C & 63));
    break;
  case BinOp::AShr:
    Out = A >> (C & 63);
    break;
  case BinOp::LShr:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A) >> (C & 63));
    break;
  default:
    return nullptr;
  }
  return M.getConstantInt(B->getType(), Out);
}

Constant *ConstantFoldPass::foldInstruction(Module &M, Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::BinOp: {
    auto *B = cast<BinaryInst>(I);
    auto *L = dyn_cast<ConstantInt>(B->getLHS());
    auto *R = dyn_cast<ConstantInt>(B->getRHS());
    if (L && R)
      return foldBinOp(M, B, L, R);
    // Identities: x+0, x-0, x*1, x&-1, x|0, x^0, x<<0, x>>0.
    if (R && !B->isFloatOp()) {
      Value *X = B->getLHS();
      int64_t C = R->getValue();
      switch (B->getBinOp()) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Or:
      case BinOp::Xor:
      case BinOp::Shl:
      case BinOp::AShr:
      case BinOp::LShr:
        if (C == 0 && isa<Instruction>(X))
          return nullptr; // Handled below via RAUW-to-value.
        break;
      default:
        break;
      }
    }
    return nullptr;
  }
  case Opcode::Cmp: {
    auto *C = cast<CmpInst>(I);
    auto *L = dyn_cast<ConstantInt>(C->getLHS());
    auto *R = dyn_cast<ConstantInt>(C->getRHS());
    if (!L || !R)
      return nullptr;
    int64_t A = L->getValue(), B2 = R->getValue();
    bool Res = false;
    switch (C->getPredicate()) {
    case CmpPred::EQ:
      Res = A == B2;
      break;
    case CmpPred::NE:
      Res = A != B2;
      break;
    case CmpPred::SLT:
      Res = A < B2;
      break;
    case CmpPred::SLE:
      Res = A <= B2;
      break;
    case CmpPred::SGT:
      Res = A > B2;
      break;
    case CmpPred::SGE:
      Res = A >= B2;
      break;
    }
    return M.getInt1(Res);
  }
  case Opcode::Cast: {
    auto *CI = cast<CastInst>(I);
    auto *C = dyn_cast<ConstantInt>(CI->getSource());
    if (!C)
      return nullptr;
    switch (CI->getCastKind()) {
    case CastKind::Trunc:
    case CastKind::SExt:
    case CastKind::ZExt:
      // getConstantInt normalizes to the destination width. ZExt needs the
      // unsigned source value.
      if (CI->getCastKind() == CastKind::ZExt) {
        uint64_t U = static_cast<uint64_t>(C->getValue());
        switch (CI->getSource()->getType()->getKind()) {
        case TypeKind::Int1:
          U &= 1;
          break;
        case TypeKind::Int8:
          U &= 0xFF;
          break;
        case TypeKind::Int32:
          U &= 0xFFFFFFFF;
          break;
        default:
          break;
        }
        return M.getConstantInt(I->getType(), static_cast<int64_t>(U));
      }
      return M.getConstantInt(I->getType(), C->getValue());
    default:
      return nullptr;
    }
  }
  case Opcode::Select: {
    auto *S = cast<SelectInst>(I);
    auto *C = dyn_cast<ConstantInt>(S->getCondition());
    if (!C)
      return nullptr;
    Value *Chosen = C->isZero() ? S->getFalseValue() : S->getTrueValue();
    if (auto *K = dyn_cast<Constant>(Chosen))
      return const_cast<Constant *>(K);
    return nullptr;
  }
  default:
    return nullptr;
  }
}

bool ConstantFoldPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    bool LocalChanged = true;
    while (LocalChanged) {
      LocalChanged = false;
      for (const auto &BB : F->blocks()) {
        for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
          Instruction *I = BB->getInst(Idx);
          // Algebraic identity: op with a zero RHS that is a no-op.
          if (auto *B = dyn_cast<BinaryInst>(I)) {
            auto *R = dyn_cast<ConstantInt>(B->getRHS());
            if (R && R->isZero() && !B->isFloatOp() &&
                (B->getBinOp() == BinOp::Add ||
                 B->getBinOp() == BinOp::Sub ||
                 B->getBinOp() == BinOp::Or ||
                 B->getBinOp() == BinOp::Xor ||
                 B->getBinOp() == BinOp::Shl ||
                 B->getBinOp() == BinOp::AShr ||
                 B->getBinOp() == BinOp::LShr)) {
              if (I->hasUses()) {
                I->replaceAllUsesWith(B->getLHS());
                LocalChanged = true;
                continue;
              }
            }
            if (R && R->isOne() && B->getBinOp() == BinOp::Mul &&
                I->hasUses()) {
              I->replaceAllUsesWith(B->getLHS());
              LocalChanged = true;
              continue;
            }
          }
          Constant *C = foldInstruction(M, I);
          if (!C || !I->hasUses())
            continue;
          I->replaceAllUsesWith(C);
          LocalChanged = true;
        }
      }
      Changed |= LocalChanged;
    }
  }
  return Changed;
}

std::unique_ptr<Pass> khaos::createConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}
