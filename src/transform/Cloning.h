//===- transform/Cloning.h - IR cloning utilities ---------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block cloning with value remapping, shared by the inliner and the bogus
/// control flow obfuscation.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_TRANSFORM_CLONING_H
#define KHAOS_TRANSFORM_CLONING_H

#include <map>
#include <memory>
#include <vector>

namespace khaos {

class BasicBlock;
class Function;
class Module;
class Value;

/// Clones every block of \p Src into \p Dst. \p VMap must already map
/// Src's arguments to replacement values; it is extended with every cloned
/// instruction and block mapping. Cloned blocks are appended to \p Dst and
/// returned in source order. Operands and successors are remapped through
/// VMap (identity when absent).
std::vector<BasicBlock *>
cloneFunctionBlocks(const Function &Src, Function &Dst,
                    std::map<const Value *, Value *> &VMap);

/// Deep-copies \p Src into a fresh Module that shares Src's Context (types
/// are interned per Context, so sharing it makes the copy remap-free for
/// types; Context interning is mutex-guarded, so clones may be transformed
/// concurrently). Function/global/block order, all symbol and value names,
/// per-function flags, provenance and the uniqueName() counters are
/// preserved exactly: a pass run on the clone produces byte-identical
/// printed IR to the same pass run on \p Src. Constants are re-interned in
/// the new module, so the clone's lifetime is independent of \p Src — only
/// the Context must outlive it.
///
/// This is what lets the evaluation pipeline cache the fission-stage module
/// once per workload and hand each FuFi mode its own mutable copy.
///
/// Concurrency: cloning temporarily registers the copy's instructions in
/// \p Src's use lists (instruction constructors track users) and unlinks
/// them again while remapping, so \p Src is bit-identical afterwards but
/// NOT safe to clone or read-with-uses from two threads at once — callers
/// sharing a module across threads must serialize clones (EvalPipeline
/// locks its FissionArtifact::CloneMutex).
std::unique_ptr<Module> cloneModule(const Module &Src);

} // namespace khaos

#endif // KHAOS_TRANSFORM_CLONING_H
