//===- transform/Cloning.h - IR cloning utilities ---------------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block cloning with value remapping, shared by the inliner and the bogus
/// control flow obfuscation.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_TRANSFORM_CLONING_H
#define KHAOS_TRANSFORM_CLONING_H

#include <map>
#include <vector>

namespace khaos {

class BasicBlock;
class Function;
class Value;

/// Clones every block of \p Src into \p Dst. \p VMap must already map
/// Src's arguments to replacement values; it is extended with every cloned
/// instruction and block mapping. Cloned blocks are appended to \p Dst and
/// returned in source order. Operands and successors are remapped through
/// VMap (identity when absent).
std::vector<BasicBlock *>
cloneFunctionBlocks(const Function &Src, Function &Dst,
                    std::map<const Value *, Value *> &VMap);

} // namespace khaos

#endif // KHAOS_TRANSFORM_CLONING_H
