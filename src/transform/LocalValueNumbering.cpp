//===- transform/LocalValueNumbering.cpp - Block-local CSE ---------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local value numbering: pure instructions (binop/cmp/cast/GEP/select)
/// with identical opcodes and operands inside one block collapse to the
/// first occurrence.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "transform/Pass.h"

#include <map>
#include <tuple>
#include <vector>

using namespace khaos;

namespace {

using VNKey = std::tuple<int, int, const void *, std::vector<const Value *>>;

class LocalValueNumberingPass : public Pass {
public:
  const char *getName() const override { return "lvn"; }
  bool run(Module &M) override;

private:
  bool runOnBlock(BasicBlock &BB);
};

/// Sub-opcode discriminator (binop kind, predicate, cast kind).
int subKind(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::BinOp:
    return (int)cast<BinaryInst>(I)->getBinOp();
  case Opcode::Cmp:
    return (int)cast<CmpInst>(I)->getPredicate();
  case Opcode::Cast:
    return (int)cast<CastInst>(I)->getCastKind();
  default:
    return 0;
  }
}

bool isPure(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Cmp:
  case Opcode::Cast:
  case Opcode::GEP:
  case Opcode::Select:
    return true;
  case Opcode::BinOp:
    return !cast<BinaryInst>(I)->isDivRem(); // Keep traps.
  default:
    return false;
  }
}

} // namespace

bool LocalValueNumberingPass::runOnBlock(BasicBlock &BB) {
  bool Changed = false;
  std::map<VNKey, Instruction *> Seen;
  for (size_t Idx = 0; Idx < BB.size(); ++Idx) {
    Instruction *I = BB.getInst(Idx);
    if (!isPure(I))
      continue;
    std::vector<const Value *> Ops(I->operands().begin(),
                                   I->operands().end());
    VNKey Key{(int)I->getOpcode(), subKind(I), (const void *)I->getType(),
              std::move(Ops)};
    auto [It, Inserted] = Seen.try_emplace(Key, I);
    if (Inserted)
      continue;
    if (I->hasUses()) {
      I->replaceAllUsesWith(It->second);
      Changed = true;
    }
  }
  return Changed;
}

bool LocalValueNumberingPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      Changed |= runOnBlock(*BB);
  return Changed;
}

std::unique_ptr<Pass> khaos::createLocalValueNumberingPass() {
  return std::make_unique<LocalValueNumberingPass>();
}
