//===- transform/DCE.cpp - Dead code elimination --------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deletes side-effect-free instructions without users, unused allocas with
/// only stores, and (whole-module) unreferenced internal functions. The
/// last part is the LTO-style cleanup the paper's single-binary builds get
/// for free.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "transform/Pass.h"

#include <set>

using namespace khaos;

namespace {

class DCEPass : public Pass {
public:
  const char *getName() const override { return "dce"; }
  bool run(Module &M) override;

private:
  bool runOnFunction(Function &F);
  bool removeDeadFunctions(Module &M);
};

} // namespace

bool DCEPass::runOnFunction(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks()) {
      for (size_t Idx = BB->size(); Idx-- > 0;) {
        Instruction *I = BB->getInst(Idx);
        if (I->hasUses() || I->isTerminator())
          continue;
        if (I->mayHaveSideEffects()) {
          // Dead stores into a dead alloca are handled below.
          continue;
        }
        BB->erase(I);
        Changed = true;
      }
    }

    // Allocas whose only uses are stores can vanish with their stores.
    for (const auto &BB : F.blocks()) {
      for (size_t Idx = BB->size(); Idx-- > 0;) {
        auto *AI = dyn_cast<AllocaInst>(BB->getInst(Idx));
        if (!AI)
          continue;
        bool OnlyStores = true;
        for (Instruction *U : AI->users()) {
          auto *SI = dyn_cast<StoreInst>(U);
          if (!SI || SI->getStoredValue() == AI) {
            OnlyStores = false;
            break;
          }
        }
        if (!OnlyStores || !AI->hasUses())
          continue;
        std::vector<Instruction *> Stores(AI->users());
        for (Instruction *S : Stores)
          S->getParent()->erase(S);
        Changed = true;
      }
    }
    Any |= Changed;
  }
  return Any;
}

bool DCEPass::removeDeadFunctions(Module &M) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Tagged function constants (global initializers, fusion-rewritten
    // operands) reference functions outside the use-list system; collect
    // them so they stay alive.
    std::set<const Function *> TaggedRefs;
    for (const auto &G : M.globals())
      for (const Constant *C : G->getInitializer())
        if (const auto *TF = dyn_cast<ConstantTaggedFunc>(C))
          TaggedRefs.insert(TF->getFunction());
    for (const auto &F : M.functions())
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->insts())
          for (const Value *Op : I->operands())
            if (const auto *TF = dyn_cast<ConstantTaggedFunc>(Op))
              TaggedRefs.insert(TF->getFunction());

    std::vector<Function *> Dead;
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isExported() || F->hasUses())
        continue;
      if (F->getName() == "main" || TaggedRefs.count(F.get()))
        continue;
      Dead.push_back(F.get());
    }
    for (Function *F : Dead) {
      M.eraseFunction(F);
      Changed = true;
      Any = true;
    }
  }
  return Any;
}

bool DCEPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Changed |= runOnFunction(*F);
  Changed |= removeDeadFunctions(M);
  return Changed;
}

std::unique_ptr<Pass> khaos::createDCEPass() {
  return std::make_unique<DCEPass>();
}
