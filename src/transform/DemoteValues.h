//===- transform/DemoteValues.h - reg2mem-style demotion --------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demotes cross-block SSA values to entry allocas (LLVM's reg2mem).
/// Required before transformations that destroy dominance relations:
/// control-flow flattening and deep fusion both rewire the CFG so that a
/// definition may no longer dominate its former uses.
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_TRANSFORM_DEMOTEVALUES_H
#define KHAOS_TRANSFORM_DEMOTEVALUES_H

namespace khaos {

class Function;
class Module;

/// Rewrites every value defined in a non-entry block and used in another
/// block to flow through an entry alloca. Invoke results spill at the head
/// of their (single-predecessor) normal destination. Returns false when
/// some value could not be demoted (multi-predecessor invoke normal
/// destination) — callers must then refrain from dominance-breaking
/// transforms.
bool demoteCrossBlockValues(Module &M, Function &F);

class Instruction;

/// Demotes one instruction's value to an entry alloca (spill after the
/// definition, reload before every cross-block use). Returns false for
/// invoke results whose normal destination has multiple predecessors.
bool demoteInstruction(Module &M, Function &F, Instruction *I);

} // namespace khaos

#endif // KHAOS_TRANSFORM_DEMOTEVALUES_H
