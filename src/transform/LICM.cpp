//===- transform/LICM.cpp - Loop-invariant code motion ---------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists pure loop-invariant computations into the loop's unique
/// preheader. Conservative by design: only side-effect-free, non-trapping
/// instructions whose operands are defined outside the loop move, and
/// only when the header has a unique outside predecessor ending in an
/// unconditional branch (the shape the MiniC IRGen emits for for/while
/// loops). Part of the -O3 pipeline.
///
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"
#include "transform/Pass.h"

using namespace khaos;

namespace {

class LICMPass : public Pass {
public:
  const char *getName() const override { return "licm"; }
  bool run(Module &M) override;

private:
  bool runOnLoop(Function &F, Loop &L);
};

/// Pure, non-trapping, rematerializable anywhere.
bool isHoistableKind(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Cmp:
  case Opcode::Cast:
  case Opcode::GEP:
  case Opcode::Select:
    return true;
  case Opcode::BinOp:
    return !cast<BinaryInst>(I)->isDivRem(); // Division may trap.
  default:
    return false;
  }
}

/// The unique out-of-loop predecessor of the header with an unconditional
/// terminator, or null.
BasicBlock *findPreheader(Loop &L) {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *P : L.Header->predecessors()) {
    if (L.contains(P))
      continue;
    if (Pre)
      return nullptr; // Multiple entries.
    Pre = P;
  }
  if (!Pre)
    return nullptr;
  auto *BR = dyn_cast_or_null<BranchInst>(Pre->getTerminator());
  if (!BR || BR->isConditional())
    return nullptr;
  return Pre;
}

} // namespace

bool LICMPass::runOnLoop(Function & /*F*/, Loop &L) {
  BasicBlock *Pre = findPreheader(L);
  if (!Pre)
    return false;

  auto IsInvariantOperand = [&](const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return true; // Constants, globals, arguments, functions.
    return !L.contains(I->getParent());
  };

  bool Changed = false;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (BasicBlock *BB : L.Blocks) {
      for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
        Instruction *I = BB->getInst(Idx);
        if (!isHoistableKind(I))
          continue;
        bool Invariant = true;
        for (const Value *Op : I->operands())
          if (!IsInvariantOperand(Op)) {
            Invariant = false;
            break;
          }
        if (!Invariant)
          continue;
        // Move before the preheader's terminator; the def then dominates
        // the whole loop.
        std::unique_ptr<Instruction> Owned = BB->take(I);
        I->setParent(Pre);
        Pre->insertBefore(Pre->getTerminator(), Owned.release());
        Progress = true;
        Changed = true;
        --Idx; // The vector shifted.
      }
    }
  }
  return Changed;
}

bool LICMPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    DominatorTree DT(*F);
    LoopInfo LI(DT);
    // Innermost loops first (sorted by size ascending already in LI? —
    // just iterate; the fixed point inside runOnLoop handles nesting).
    for (const auto &L : LI.loops())
      Changed |= runOnLoop(*F, *L);
  }
  return Changed;
}

std::unique_ptr<Pass> khaos::createLICMPass() {
  return std::make_unique<LICMPass>();
}
