//===- transform/PassManager.cpp - Pass manager ---------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Pass.h"

#include "ir/Module.h"
#include "ir/Verifier.h"

using namespace khaos;

Pass::~Pass() = default;

bool PassManager::run(Module &M) {
  bool Changed = false;
  for (auto &P : Passes) {
    Changed |= P->run(M);
    if (!VerifyEach)
      continue;
    std::vector<std::string> Problems = verifyModule(M);
    if (!Problems.empty()) {
      VerifyError =
          std::string(P->getName()) + ": " + Problems.front();
      return Changed;
    }
  }
  return Changed;
}

void khaos::buildOptPipeline(PassManager &PM, OptLevel Level) {
  if (Level == OptLevel::O0)
    return;
  PM.add(createSimplifyCFGPass());
  PM.add(createConstantFoldPass());
  PM.add(createDCEPass());
  if (Level == OptLevel::O1)
    return;
  PM.add(createLocalValueNumberingPass());
  PM.add(createLoadForwardingPass());
  PM.add(createDCEPass());
  PM.add(createInlinerPass(Level == OptLevel::O3 ? 120 : 48));
  PM.add(createSimplifyCFGPass());
  PM.add(createConstantFoldPass());
  PM.add(createLocalValueNumberingPass());
  PM.add(createLoadForwardingPass());
  PM.add(createDCEPass());
  if (Level == OptLevel::O3) {
    // A second late round approximates the extra aggressiveness of -O3.
    PM.add(createInlinerPass(160));
    PM.add(createLICMPass());
    PM.add(createSimplifyCFGPass());
    PM.add(createConstantFoldPass());
    PM.add(createLocalValueNumberingPass());
    PM.add(createDCEPass());
  }
}

void khaos::optimizeModule(Module &M, OptLevel Level) {
  PassManager PM;
  buildOptPipeline(PM, Level);
  PM.run(M);
}
