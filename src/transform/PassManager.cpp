//===- transform/PassManager.cpp - Pass manager ---------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Pass.h"

#include "ir/Module.h"
#include "ir/Verifier.h"

using namespace khaos;

Pass::~Pass() = default;

bool PassManager::run(Module &M) {
  bool Changed = false;
  for (auto &P : Passes) {
    Changed |= P->run(M);
    if (!VerifyEach)
      continue;
    std::vector<std::string> Problems = verifyModule(M);
    if (!Problems.empty()) {
      VerifyError =
          std::string(P->getName()) + ": " + Problems.front();
      return Changed;
    }
  }
  return Changed;
}

std::vector<std::unique_ptr<Pass>> khaos::buildOptPassList(OptLevel Level) {
  std::vector<std::unique_ptr<Pass>> Passes;
  if (Level == OptLevel::O0)
    return Passes;
  Passes.push_back(createSimplifyCFGPass());
  Passes.push_back(createConstantFoldPass());
  Passes.push_back(createDCEPass());
  if (Level == OptLevel::O1)
    return Passes;
  Passes.push_back(createLocalValueNumberingPass());
  Passes.push_back(createLoadForwardingPass());
  Passes.push_back(createDCEPass());
  Passes.push_back(createInlinerPass(Level == OptLevel::O3 ? 120 : 48));
  Passes.push_back(createSimplifyCFGPass());
  Passes.push_back(createConstantFoldPass());
  Passes.push_back(createLocalValueNumberingPass());
  Passes.push_back(createLoadForwardingPass());
  Passes.push_back(createDCEPass());
  if (Level == OptLevel::O3) {
    // A second late round approximates the extra aggressiveness of -O3.
    Passes.push_back(createInlinerPass(160));
    Passes.push_back(createLICMPass());
    Passes.push_back(createSimplifyCFGPass());
    Passes.push_back(createConstantFoldPass());
    Passes.push_back(createLocalValueNumberingPass());
    Passes.push_back(createDCEPass());
  }
  return Passes;
}

void khaos::buildOptPipeline(PassManager &PM, OptLevel Level) {
  for (auto &P : buildOptPassList(Level))
    PM.add(std::move(P));
}

void khaos::optimizeModule(Module &M, OptLevel Level) {
  PassManager PM;
  buildOptPipeline(PM, Level);
  PM.run(M);
}
