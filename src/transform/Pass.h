//===- transform/Pass.h - Pass manager and pass factories -------*- C++ -*-===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module pass interface plus the standard optimization pipeline. Khaos
/// relies on the optimizer re-optimizing code after it has been moved
/// across functions — "once the code is restructured among functions, the
/// generated binary code after compilation optimizations can be very
/// different" (paper §3.1).
///
//===----------------------------------------------------------------------===//

#ifndef KHAOS_TRANSFORM_PASS_H
#define KHAOS_TRANSFORM_PASS_H

#include <memory>
#include <string>
#include <vector>

namespace khaos {

class Module;

/// A module transformation.
class Pass {
public:
  virtual ~Pass();
  virtual const char *getName() const = 0;
  /// Returns true when the module changed.
  virtual bool run(Module &M) = 0;
};

/// Runs passes in order; optionally verifies after each pass.
class PassManager {
public:
  explicit PassManager(bool VerifyEach = false) : VerifyEach(VerifyEach) {}

  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// Runs all passes. Returns true when any pass changed the module.
  /// When verification fails the offending pass name is recorded in
  /// \p VerifyError and execution stops.
  bool run(Module &M);

  const std::string &getVerifyError() const { return VerifyError; }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  bool VerifyEach;
  std::string VerifyError;
};

/// Optimization levels mirroring the paper's compiler settings (the Khaos
/// baseline is O2 with LTO-style whole-program visibility).
enum class OptLevel : uint8_t { O0, O1, O2, O3 };

// Pass factories.
std::unique_ptr<Pass> createSimplifyCFGPass();
/// simplifycfg's shape-preserving subset (constant-branch folds +
/// unreachable-block removal, no threading or chain merging) — for
/// pipelines whose obfuscation full simplification would undo.
std::unique_ptr<Pass> createCFGCleanupPass();
std::unique_ptr<Pass> createConstantFoldPass();
std::unique_ptr<Pass> createDCEPass();
std::unique_ptr<Pass> createLoadForwardingPass();
std::unique_ptr<Pass> createLocalValueNumberingPass();
std::unique_ptr<Pass> createInlinerPass(unsigned InstructionThreshold);
std::unique_ptr<Pass> createLICMPass();

/// The standard pipeline for \p Level as an ordered pass list. The
/// obfuscation driver's pass-bisection hooks (obfuscationStepNames /
/// obfuscateModulePrefix) enumerate this list to name and prefix-run the
/// post-optimization steps individually.
std::vector<std::unique_ptr<Pass>> buildOptPassList(OptLevel Level);

/// Populates \p PM with the standard pipeline for \p Level.
void buildOptPipeline(PassManager &PM, OptLevel Level);

/// Convenience: run the standard pipeline over \p M.
void optimizeModule(Module &M, OptLevel Level);

} // namespace khaos

#endif // KHAOS_TRANSFORM_PASS_H
