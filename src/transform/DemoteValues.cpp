//===- transform/DemoteValues.cpp - reg2mem-style demotion -----------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/DemoteValues.h"

#include "ir/Module.h"

using namespace khaos;

bool khaos::demoteInstruction(Module &M, Function &F, Instruction *I) {
  (void)M;
  BasicBlock *Entry = F.getEntryBlock();
  BasicBlock *Home = I->getParent();
  BasicBlock *SpillBlock = Home;
  size_t SpillIdx = Home->indexOf(I) + 1;
  if (auto *IV = dyn_cast<InvokeInst>(I)) {
    // The result only exists on the normal path.
    BasicBlock *Normal = IV->getNormalDest();
    if (Normal->predecessors().size() != 1)
      return false;
    SpillBlock = Normal;
    SpillIdx = 0;
  } else if (I->isTerminator()) {
    return false; // No other value-producing terminators exist.
  }

  auto *Slot = new AllocaInst(I->getType(), I->getName() + ".demoted");
  Entry->insertAt(0, Slot);
  SpillBlock->insertAt(SpillIdx, new StoreInst(I, Slot));

  std::vector<Instruction *> Users(I->users());
  for (Instruction *U : Users) {
    if (U->getParent() == Home && !isa<InvokeInst>(I))
      continue; // Local uses keep the register.
    if (auto *SI = dyn_cast<StoreInst>(U))
      if (SI->getStoredValue() == I && SI->getPointer() == Slot)
        continue; // Our own spill store.
    auto *Reload = new LoadInst(Slot, I->getName() + ".reload");
    U->getParent()->insertBefore(U, Reload);
    for (unsigned OpIdx = 0, E = U->getNumOperands(); OpIdx != E; ++OpIdx)
      if (U->getOperand(OpIdx) == I)
        U->setOperand(OpIdx, Reload);
  }
  return true;
}

bool khaos::demoteCrossBlockValues(Module &M, Function &F) {
  BasicBlock *Entry = F.getEntryBlock();
  bool AllDemoted = true;

  std::vector<Instruction *> ToDemote;
  for (const auto &BB : F.blocks()) {
    if (BB.get() == Entry)
      continue; // Entry dominates everything; no demotion needed.
    for (const auto &I : BB->insts()) {
      if (!I->getType() || I->getType()->isVoid() || !I->hasUses())
        continue;
      for (const Instruction *U : I->users())
        if (U->getParent() != BB.get()) {
          ToDemote.push_back(I.get());
          break;
        }
    }
  }
  for (Instruction *I : ToDemote)
    AllDemoted &= demoteInstruction(M, F, I);
  return AllDemoted;
}
