//===- transform/LoadForwarding.cpp - Block-local store-to-load forwarding -----===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phi-free stand-in for mem2reg: within one block, a load from pointer P
/// after a store to the same P (with no intervening clobber) yields the
/// stored value; repeated loads from P are CSE'd. Any call or store through
/// an unrelated pointer conservatively clobbers everything except
/// non-escaping allocas.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "transform/Pass.h"

#include <map>

using namespace khaos;

namespace {

class LoadForwardingPass : public Pass {
public:
  const char *getName() const override { return "loadfwd"; }
  bool run(Module &M) override;

private:
  bool runOnBlock(BasicBlock &BB);
};

/// True when the alloca's address is never stored anywhere or passed to a
/// call, i.e. only direct loads/stores/GEPs use it. A store through a GEP
/// still clobbers it; we only use this to survive calls.
bool allocaDoesNotEscape(const AllocaInst *AI) {
  for (const Instruction *U : AI->users()) {
    switch (U->getOpcode()) {
    case Opcode::Load:
      break;
    case Opcode::Store:
      if (cast<StoreInst>(U)->getStoredValue() == AI)
        return false;
      break;
    default:
      return false; // GEP, call argument, cast, ... — may escape.
    }
  }
  return true;
}

} // namespace

bool LoadForwardingPass::runOnBlock(BasicBlock &BB) {
  bool Changed = false;
  // Known contents per pointer value.
  std::map<Value *, Value *> Known;

  for (size_t Idx = 0; Idx < BB.size(); ++Idx) {
    Instruction *I = BB.getInst(Idx);
    switch (I->getOpcode()) {
    case Opcode::Store: {
      auto *SI = cast<StoreInst>(I);
      Value *Ptr = SI->getPointer();
      // A store through any pointer may alias other pointers; drop
      // everything that is not a provably distinct non-escaping alloca.
      for (auto It = Known.begin(); It != Known.end();) {
        auto *AI = dyn_cast<AllocaInst>(It->first);
        bool Safe = AI && AI != Ptr && isa<AllocaInst>(Ptr);
        It = Safe ? ++It : Known.erase(It);
      }
      Known[Ptr] = SI->getStoredValue();
      break;
    }
    case Opcode::Load: {
      auto *LI = cast<LoadInst>(I);
      auto It = Known.find(LI->getPointer());
      if (It != Known.end() && It->second->getType() == LI->getType()) {
        if (LI->hasUses()) {
          LI->replaceAllUsesWith(It->second);
          Changed = true;
        }
      } else {
        Known[LI->getPointer()] = LI;
      }
      break;
    }
    case Opcode::Call:
    case Opcode::Invoke: {
      // Calls clobber everything except non-escaping allocas.
      for (auto It = Known.begin(); It != Known.end();) {
        auto *AI = dyn_cast<AllocaInst>(It->first);
        It = (AI && allocaDoesNotEscape(AI)) ? ++It : Known.erase(It);
      }
      break;
    }
    default:
      break;
    }
  }
  return Changed;
}

bool LoadForwardingPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      Changed |= runOnBlock(*BB);
  return Changed;
}

std::unique_ptr<Pass> khaos::createLoadForwardingPass() {
  return std::make_unique<LoadForwardingPass>();
}
