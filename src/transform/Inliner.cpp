//===- transform/Inliner.cpp - Function inlining --------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Size-bounded inlining of direct calls. This is the optimization the
/// paper credits for fission's occasionally *negative* overhead: after a
/// function sheds cold regions into sepFuncs, the slimmer remFunc becomes
/// eligible for inlining into its callers.
///
/// Inlining is restricted to plain Call sites (an IRGen invariant
/// guarantees plain calls never sit inside a try region, so exception
/// semantics are preserved) and to callees without EH constructs, setjmp,
/// varargs or non-entry allocas.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "transform/Cloning.h"
#include "transform/Pass.h"

using namespace khaos;

namespace {

class InlinerPass : public Pass {
public:
  explicit InlinerPass(unsigned Threshold) : Threshold(Threshold) {}

  const char *getName() const override { return "inline"; }
  bool run(Module &M) override;

private:
  bool isInlinableCallee(const Function &Callee) const;
  void inlineCall(Module &M, Function &Caller, CallInst *Call);

  unsigned Threshold;
};

} // namespace

bool InlinerPass::isInlinableCallee(const Function &Callee) const {
  if (Callee.isDeclaration() || Callee.isIntrinsic() || Callee.isVarArg())
    return false;
  if (Callee.isNoInline())
    return false; // sepFuncs and trampolines must survive optimization.
  if (Callee.instructionCount() > Threshold)
    return false;
  for (const auto &BB : Callee.blocks()) {
    for (const auto &I : BB->insts()) {
      switch (I->getOpcode()) {
      case Opcode::Invoke:
      case Opcode::LandingPad:
      case Opcode::Throw:
        return false; // EH frames must stay call frames.
      case Opcode::Alloca:
        if (BB.get() != Callee.getEntryBlock())
          return false; // Dynamic allocas would leak caller stack.
        break;
      case Opcode::Call: {
        const Function *F = cast<CallInst>(I.get())->getCalledFunction();
        if (F && (F->getName() == "setjmp" || F->getName() == "longjmp"))
          return false; // returns_twice semantics.
        if (F == &Callee)
          return false; // Direct recursion.
        break;
      }
      default:
        break;
      }
    }
  }
  return true;
}

void InlinerPass::inlineCall(Module &M, Function &Caller, CallInst *Call) {
  Function *Callee = Call->getCalledFunction();
  BasicBlock *CallBB = Call->getParent();

  // Split so the call is the last real instruction of CallBB; execution
  // continues in Cont.
  size_t CallIdx = CallBB->indexOf(Call);
  BasicBlock *Cont;
  if (CallIdx + 1 < CallBB->size()) {
    Cont = CallBB->splitBefore(CallBB->getInst(CallIdx + 1),
                               CallBB->getName() + ".cont");
  } else {
    // The call is already last (shouldn't happen: a call never terminates
    // a block), so create an empty continuation.
    Cont = Caller.addBlockAfter(CallBB, CallBB->getName() + ".cont");
    Cont->push(new UnreachableInst(M.getContext().getVoidType()));
  }

  // Map formals to actuals and clone the body.
  std::map<const Value *, Value *> VMap;
  for (unsigned I = 0, E = Callee->arg_size(); I != E; ++I)
    VMap[Callee->getArg(I)] = Call->getArg(I);
  std::vector<BasicBlock *> Cloned =
      cloneFunctionBlocks(*Callee, Caller, VMap);
  BasicBlock *InlineEntry = Cloned.front();

  // Hoist cloned allocas into the caller's entry so stack space is reused
  // across loop iterations — then re-zero them at the inline entry. A KIR
  // alloca zeroes its slot on every execution (the semantic oracle's
  // deterministic-memory contract), so a callee invoked in a loop gets
  // fresh zeroed locals on each call; the hoisted alloca executes once
  // per *caller* invocation, and without the explicit stores the second
  // trip through the inlined body would read the first trip's data (found
  // by the differential fuzzer as a checksum divergence).
  BasicBlock *CallerEntry = Caller.getEntryBlock();
  std::vector<Instruction *> ToHoist;
  for (const auto &I : InlineEntry->insts())
    if (isa<AllocaInst>(I.get()))
      ToHoist.push_back(I.get());
  std::vector<Instruction *> ZeroInit;
  for (Instruction *AI : ToHoist) {
    Type *Ty = cast<AllocaInst>(AI)->getAllocatedType();
    if (auto *ATy = dyn_cast<ArrayType>(Ty)) {
      if (ATy->getElementType()->isArray())
        continue; // Nested arrays stay in the inline entry (re-executed
                  // per trip, which zeroes them — correct, just unhoisted).
      for (uint64_t E = 0; E != ATy->getNumElements(); ++E) {
        // GEP on a pointer-to-array addresses its elements directly.
        auto *Ptr = new GEPInst(AI, M.getInt64(static_cast<int64_t>(E)));
        ZeroInit.push_back(Ptr);
        ZeroInit.push_back(
            new StoreInst(M.getZeroValue(ATy->getElementType()), Ptr));
      }
    } else {
      ZeroInit.push_back(new StoreInst(M.getZeroValue(Ty), AI));
    }
    std::unique_ptr<Instruction> Owned = InlineEntry->take(AI);
    AI->setParent(CallerEntry);
    CallerEntry->insertAt(0, Owned.release());
  }
  for (size_t I = 0; I != ZeroInit.size(); ++I)
    InlineEntry->insertAt(I, ZeroInit[I]);

  // Return slot for non-void callees.
  Type *RetTy = Callee->getReturnType();
  AllocaInst *RetSlot = nullptr;
  if (!RetTy->isVoid()) {
    RetSlot = new AllocaInst(RetTy, Call->getName() + ".ret");
    CallerEntry->insertAt(0, RetSlot);
  }

  // Rewrite cloned returns into stores + branch to Cont.
  for (BasicBlock *BB : Cloned) {
    auto *RI = dyn_cast_or_null<ReturnInst>(BB->getTerminator());
    if (!RI)
      continue;
    if (RetSlot && RI->hasReturnValue())
      BB->insertBefore(RI, new StoreInst(RI->getReturnValue(), RetSlot));
    BB->insertAt(BB->size(), new BranchInst(Cont));
    BB->erase(RI);
  }

  // Redirect the split branch into the inlined entry.
  CallBB->getTerminator()->replaceSuccessor(Cont, InlineEntry);

  // Replace the call's value with a load from the return slot.
  if (Call->hasUses()) {
    auto *RetLoad = new LoadInst(RetSlot, Call->getName() + ".retv");
    Cont->insertAt(0, RetLoad);
    Call->replaceAllUsesWith(RetLoad);
  }
  CallBB->erase(Call);
}

bool InlinerPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    // Collect inlinable sites first; inlining invalidates iteration.
    std::vector<CallInst *> Sites;
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->insts()) {
        if (I->getOpcode() != Opcode::Call)
          continue;
        auto *CI = cast<CallInst>(I.get());
        Function *Callee = CI->getCalledFunction();
        if (!Callee || Callee == F.get())
          continue;
        if (Callee->isNoObfuscate())
          continue; // Keep trampolines and the like intact.
        if (isInlinableCallee(*Callee))
          Sites.push_back(CI);
      }
    }
    for (CallInst *CI : Sites) {
      inlineCall(M, *F, CI);
      Changed = true;
    }
  }
  return Changed;
}

std::unique_ptr<Pass> khaos::createInlinerPass(unsigned Threshold) {
  return std::make_unique<InlinerPass>(Threshold);
}
