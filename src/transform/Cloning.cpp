//===- transform/Cloning.cpp - IR cloning utilities ---------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Cloning.h"

#include "ir/Function.h"

#include <cassert>

using namespace khaos;

std::vector<BasicBlock *>
khaos::cloneFunctionBlocks(const Function &Src, Function &Dst,
                           std::map<const Value *, Value *> &VMap) {
  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  std::vector<BasicBlock *> NewBlocks;

  // First create empty blocks so successors can be remapped.
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = Dst.addBlock(BB->getName() + ".i");
    BlockMap[BB.get()] = NewBB;
    NewBlocks.push_back(NewBB);
  }

  // Clone instructions, then remap operands/successors.
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = BlockMap[BB.get()];
    for (const auto &I : BB->insts()) {
      Instruction *NI = I->clone();
      NewBB->push(NI);
      VMap[I.get()] = NI;
    }
  }
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = BlockMap[BB.get()];
    for (const auto &NI : NewBB->insts()) {
      for (unsigned OpIdx = 0, E = NI->getNumOperands(); OpIdx != E;
           ++OpIdx) {
        auto It = VMap.find(NI->getOperand(OpIdx));
        if (It != VMap.end())
          NI->setOperand(OpIdx, It->second);
      }
      for (unsigned SIdx = 0, E = NI->getNumSuccessors(); SIdx != E;
           ++SIdx) {
        auto It = BlockMap.find(NI->getSuccessor(SIdx));
        assert(It != BlockMap.end() && "successor outside cloned function");
        NI->setSuccessor(SIdx, It->second);
      }
    }
  }
  return NewBlocks;
}
