//===- transform/Cloning.cpp - IR cloning utilities ---------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Cloning.h"

#include "ir/Function.h"
#include "ir/Module.h"

#include <cassert>

using namespace khaos;

std::vector<BasicBlock *>
khaos::cloneFunctionBlocks(const Function &Src, Function &Dst,
                           std::map<const Value *, Value *> &VMap) {
  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  std::vector<BasicBlock *> NewBlocks;

  // First create empty blocks so successors can be remapped.
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = Dst.addBlock(BB->getName() + ".i");
    BlockMap[BB.get()] = NewBB;
    NewBlocks.push_back(NewBB);
  }

  // Clone instructions, then remap operands/successors.
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = BlockMap[BB.get()];
    for (const auto &I : BB->insts()) {
      Instruction *NI = I->clone();
      NewBB->push(NI);
      VMap[I.get()] = NI;
    }
  }
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = BlockMap[BB.get()];
    for (const auto &NI : NewBB->insts()) {
      for (unsigned OpIdx = 0, E = NI->getNumOperands(); OpIdx != E;
           ++OpIdx) {
        auto It = VMap.find(NI->getOperand(OpIdx));
        if (It != VMap.end())
          NI->setOperand(OpIdx, It->second);
      }
      for (unsigned SIdx = 0, E = NI->getNumSuccessors(); SIdx != E;
           ++SIdx) {
        auto It = BlockMap.find(NI->getSuccessor(SIdx));
        assert(It != BlockMap.end() && "successor outside cloned function");
        NI->setSuccessor(SIdx, It->second);
      }
    }
  }
  return NewBlocks;
}

namespace {

/// Re-interns \p C (a constant of Src's module) in \p Dst. Functions inside
/// tagged-function constants are remapped through \p VMap.
Constant *remapConstant(const Constant *C, Module &Dst,
                        const std::map<const Value *, Value *> &VMap) {
  switch (C->getValueKind()) {
  case ValueKind::ConstantInt: {
    const auto *CI = cast<ConstantInt>(C);
    return Dst.getConstantInt(CI->getType(), CI->getValue());
  }
  case ValueKind::ConstantFP: {
    const auto *CF = cast<ConstantFP>(C);
    return Dst.getConstantFP(CF->getType(), CF->getValue());
  }
  case ValueKind::ConstantNull:
    return Dst.getNullPtr(cast<PointerType>(C->getType()));
  case ValueKind::ConstantTaggedFunc: {
    const auto *CT = cast<ConstantTaggedFunc>(C);
    auto It = VMap.find(CT->getFunction());
    assert(It != VMap.end() && "tagged function not cloned yet");
    return Dst.getTaggedFunc(CT->getType(), cast<Function>(It->second),
                             CT->getTag());
  }
  default:
    assert(false && "not a constant");
    return nullptr;
  }
}

} // namespace

std::unique_ptr<Module> khaos::cloneModule(const Module &Src) {
  auto Dst = std::make_unique<Module>(Src.getContext(), Src.getName());
  std::map<const Value *, Value *> VMap;

  // Function shells first: bodies and global initializers may reference any
  // function (calls, tagged pointers), so every Function must exist before
  // operands are remapped.
  for (const auto &F : Src.functions()) {
    Function *NF = Dst->createFunction(F->getName(), F->getFunctionType());
    NF->setExported(F->isExported());
    NF->setNoObfuscate(F->isNoObfuscate());
    NF->setNoInline(F->isNoInline());
    NF->setIntrinsic(F->isIntrinsic());
    NF->setOrigins(F->getOrigins());
    VMap[F.get()] = NF;
    for (unsigned I = 0, E = F->arg_size(); I != E; ++I) {
      NF->getArg(I)->setName(F->getArg(I)->getName());
      VMap[F->getArg(I)] = NF->getArg(I);
    }
  }

  for (const auto &G : Src.globals()) {
    GlobalVariable *NG = Dst->createGlobal(G->getName(), G->getValueType());
    std::vector<Constant *> Init;
    Init.reserve(G->getInitializer().size());
    for (const Constant *C : G->getInitializer())
      Init.push_back(remapConstant(C, *Dst, VMap));
    NG->setInitializer(std::move(Init));
    VMap[G.get()] = NG;
  }

  // Bodies: blocks keep their exact names (unlike cloneFunctionBlocks,
  // which suffixes inlined copies); operands are remapped through VMap,
  // re-interning constants on first sight.
  for (const auto &F : Src.functions()) {
    if (F->isDeclaration())
      continue;
    Function *NF = cast<Function>(VMap[F.get()]);
    std::map<const BasicBlock *, BasicBlock *> BlockMap;
    for (const auto &BB : F->blocks())
      BlockMap[BB.get()] = NF->addBlock(BB->getName());
    for (const auto &BB : F->blocks()) {
      BasicBlock *NB = BlockMap[BB.get()];
      for (const auto &I : BB->insts()) {
        Instruction *NI = I->clone();
        NB->push(NI);
        VMap[I.get()] = NI;
      }
    }
    for (const auto &BB : F->blocks()) {
      BasicBlock *NB = BlockMap[BB.get()];
      for (const auto &NI : NB->insts()) {
        for (unsigned OpIdx = 0, E = NI->getNumOperands(); OpIdx != E;
             ++OpIdx) {
          Value *Op = NI->getOperand(OpIdx);
          auto It = VMap.find(Op);
          if (It == VMap.end()) {
            assert(Op->isConstant() &&
                   "non-constant operand escaped the clone map");
            It = VMap.emplace(Op, remapConstant(cast<Constant>(Op), *Dst,
                                                VMap))
                     .first;
          }
          NI->setOperand(OpIdx, It->second);
        }
        for (unsigned SIdx = 0, E = NI->getNumSuccessors(); SIdx != E;
             ++SIdx) {
          auto It = BlockMap.find(NI->getSuccessor(SIdx));
          assert(It != BlockMap.end() &&
                 "successor outside cloned function");
          NI->setSuccessor(SIdx, It->second);
        }
      }
    }
  }

  Dst->setNameCounters(Src.nameCounters());
  return Dst;
}
