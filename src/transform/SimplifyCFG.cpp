//===- transform/SimplifyCFG.cpp - CFG cleanup ----------------------------------===//
//
// Part of the Khaos reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic CFG simplification: fold constant branches, delete unreachable
/// blocks, thread trivial forwarding blocks, merge single-pred/single-succ
/// chains. Runs to a fixed point per function.
///
/// Two pass flavours share the transforms: "simplifycfg" runs all of
/// them, "cfg-cleanup" runs only the shape-preserving subset (constant
/// folds + unreachable-block removal) for pipelines whose obfuscation
/// the threading/merging steps would undo — SplitBB's cuts are exactly
/// the single-pred/single-succ chains mergeChains exists to stitch.
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "transform/Pass.h"

#include <set>

using namespace khaos;

namespace {

bool foldConstantBranches(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    Instruction *T = BB->getTerminator();
    auto *BR = dyn_cast_or_null<BranchInst>(T);
    if (!BR || !BR->isConditional())
      continue;
    auto *C = dyn_cast<ConstantInt>(BR->getCondition());
    if (!C)
      continue;
    BasicBlock *Dest = C->isZero() ? BR->getFalseDest() : BR->getTrueDest();
    // Append past the old terminator, then erase it.
    BB->insertAt(BB->size(), new BranchInst(Dest));
    BB->erase(BR);
    Changed = true;
  }
  return Changed;
}

bool removeUnreachable(Function &F) {
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.getEntryBlock()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    for (BasicBlock *S : BB->successors())
      Work.push_back(S);
  }
  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F.blocks())
    if (!Reachable.count(BB.get()))
      Dead.push_back(BB.get());
  if (Dead.empty())
    return false;
  // Sever webs first (dead blocks may reference each other and live code).
  for (BasicBlock *BB : Dead)
    for (const auto &I : BB->insts())
      I->dropAllReferences();
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
  return true;
}

bool threadForwarders(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    if (BB.get() == F.getEntryBlock() || BB->size() != 1)
      continue;
    auto *BR = dyn_cast<BranchInst>(BB->front());
    if (!BR || BR->isConditional())
      continue;
    BasicBlock *Target = BR->getSuccessor(0);
    if (Target == BB.get())
      continue; // Self loop.
    for (BasicBlock *P : BB->predecessors())
      P->getTerminator()->replaceSuccessor(BB.get(), Target);
    Changed = true; // Now unreachable; removed next round.
  }
  return Changed;
}

bool mergeChains(Function &F) {
  bool Changed = true, Any = false;
  while (Changed) {
    Changed = false;
    for (const auto &BBOwner : F.blocks()) {
      BasicBlock *BB = BBOwner.get();
      Instruction *T = BB->getTerminator();
      auto *BR = dyn_cast_or_null<BranchInst>(T);
      if (!BR || BR->isConditional())
        continue;
      BasicBlock *Succ = BR->getSuccessor(0);
      if (Succ == BB || Succ == F.getEntryBlock())
        continue;
      if (Succ->predecessors().size() != 1)
        continue;
      if (!Succ->empty() && isa<LandingPadInst>(Succ->front()))
        continue; // Must stay an invoke unwind target.
      // Merge Succ into BB.
      BB->erase(BR);
      while (!Succ->empty()) {
        Instruction *I = Succ->front();
        std::unique_ptr<Instruction> Owned = Succ->take(I);
        I->setParent(BB);
        // push() asserts on a terminator mid-block, so append manually via
        // insertAt at the end.
        BB->insertAt(BB->size(), Owned.release());
      }
      F.eraseBlock(Succ);
      Changed = true;
      Any = true;
      break; // Block list mutated; restart the scan.
    }
  }
  return Any;
}

class SimplifyCFGPass : public Pass {
public:
  const char *getName() const override { return "simplifycfg"; }
  bool run(Module &M) override;

private:
  bool runOnFunction(Function &F);
};

/// The shape-preserving subset: dead code still dies (the verifier's
/// dominance sets treat unreachable blocks as self-dominating islands
/// that poison every reachable successor), but no block is threaded
/// away or merged into its predecessor.
class CFGCleanupPass : public Pass {
public:
  const char *getName() const override { return "cfg-cleanup"; }
  bool run(Module &M) override;

private:
  bool runOnFunction(Function &F);
};

} // namespace

bool SimplifyCFGPass::runOnFunction(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= foldConstantBranches(F);
    Changed |= threadForwarders(F);
    Changed |= removeUnreachable(F);
    Changed |= mergeChains(F);
    Any |= Changed;
  }
  return Any;
}

bool SimplifyCFGPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Changed |= runOnFunction(*F);
  return Changed;
}

bool CFGCleanupPass::runOnFunction(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= foldConstantBranches(F);
    Changed |= removeUnreachable(F);
    Any |= Changed;
  }
  return Any;
}

bool CFGCleanupPass::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Changed |= runOnFunction(*F);
  return Changed;
}

std::unique_ptr<Pass> khaos::createSimplifyCFGPass() {
  return std::make_unique<SimplifyCFGPass>();
}

std::unique_ptr<Pass> khaos::createCFGCleanupPass() {
  return std::make_unique<CFGCleanupPass>();
}
